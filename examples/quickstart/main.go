// Quickstart: train the template-based run-time predictor on a synthetic
// workload, predict a job's run time, and predict how long a new submission
// would wait in the queue.
//
// Run with:
//
//	go run ./examples/quickstart
//
// With -trace, one prediction is traced end to end and its span tree is
// pretty-printed — template matching, category lookups, and the estimate,
// with real durations (`make trace-demo` runs this).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

func main() {
	traceOn := flag.Bool("trace", false, "trace one prediction and print its span tree")
	flag.Parse()
	// 1. A workload. Study("ANL", 20, 7) generates a 1/20-scale synthetic
	// stand-in for the paper's Argonne SP trace: ~400 jobs from a Zipf user
	// population, each user re-running a few applications with similar run
	// times — the structure history-based prediction exploits. To use a
	// real trace instead, see workload.ReadSWF.
	w, err := workload.Study("ANL", 20, 7)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d jobs on %d nodes\n\n", w.Name, len(w.Jobs), w.MachineNodes)

	// 2. A predictor. DefaultTemplates builds a sensible template set for
	// the characteristics this trace records; cmd/gasearch finds better
	// ones with the paper's genetic algorithm.
	pred := core.NewDefault(w)

	// 3. Train on the first 80% of the trace (observing each completed
	// job), then predict the rest.
	split := len(w.Jobs) * 8 / 10
	for _, j := range w.Jobs[:split] {
		pred.Observe(j)
	}

	var hits, misses int
	var smithErr, maxErr float64
	for _, j := range w.Jobs[split:] {
		det, ok := pred.PredictDetailed(j, 0)
		if !ok {
			misses++
			continue
		}
		hits++
		smithErr += abs(det.Seconds - j.RunTime)
		maxErr += abs(j.MaxRunTime - j.RunTime)
	}
	fmt.Printf("predicted %d of %d held-out jobs (%d had no similar history)\n",
		hits, hits+misses, misses)
	fmt.Printf("mean |error|: template predictor %.1f min, user max run times %.1f min\n\n",
		smithErr/float64(hits)/60, maxErr/float64(hits)/60)

	// 4. One prediction in detail: which template won and how confident it is.
	j := w.Jobs[len(w.Jobs)-1]
	det, ok := pred.PredictDetailed(j, 0)
	if ok {
		tpl := pred.Templates()[det.Template]
		fmt.Printf("job %d (user %s, %d nodes): predicted %d s, actual %d s\n",
			j.ID, j.User, j.Nodes, det.Seconds, j.RunTime)
		fmt.Printf("  winning template %s, category of %d similar jobs, 90%% CI ±%.0f s\n\n",
			tpl, det.N, det.Interval)
	}

	// 4b. With -trace: repeat that prediction under a tracer and print the
	// span tree — where the time went, template by template.
	if *traceOn {
		tr := trace.New(trace.WithWallClock(), trace.WithSampleRate(1))
		ctx, root := tr.StartRoot(context.Background(), "quickstart.predict")
		pred.PredictDetailedCtx(ctx, j, 0)
		root.End()
		if recent := tr.Recent(); len(recent) > 0 {
			fmt.Printf("%s\n", recent[0].Pretty())
		}
	}

	// 5. Queue wait-time prediction (§3 of the paper): simulate the
	// scheduler forward with predicted run times. Here: a busy 4-job state.
	running := []*workload.Job{
		{ID: 9001, User: "user000", Nodes: 60, RunTime: 7200, MaxRunTime: 10800, StartTime: 0},
	}
	queued := []*workload.Job{
		{ID: 9002, User: "user001", Nodes: 40, RunTime: 3600, MaxRunTime: 7200, SubmitTime: 600},
	}
	newJob := &workload.Job{ID: 9003, User: "user002", Nodes: 50, RunTime: 1800, MaxRunTime: 3600, SubmitTime: 900}
	queue := append(queued, newJob)

	for _, pol := range sched.All() {
		wait, err := waitpred.PredictWait(900, newJob, queue, running,
			w.MachineNodes, pol, pred, predict.MaxRuntime{}, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("predicted wait for job %d under %-8s: %5.1f minutes\n",
			newJob.ID, pol.Name(), float64(wait)/60)
	}
}

func abs(x int64) float64 {
	if x < 0 {
		return float64(-x)
	}
	return float64(x)
}
