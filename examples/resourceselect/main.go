// Resource selection: the paper's opening motivation — "estimates of queue
// wait times are useful to guide resource selection when several systems
// are available" (§1). This example stands up three simulated machines with
// different loads, trains a run-time predictor on each machine's history,
// and routes a batch of candidate jobs to the machine with the smallest
// predicted TURNAROUND (predicted wait + predicted run time), comparing the
// outcome against random placement.
//
// Run with:
//
//	go run ./examples/resourceselect
package main

import (
	"fmt"
	"log"
	"math/rand"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// site is one machine: its workload history and live scheduler state at the
// decision instant.
type site struct {
	name    string
	w       *workload.Workload
	pred    *core.Predictor
	queue   []*workload.Job
	running []*workload.Job
	now     int64
}

// snapshotAt replays the site's trace up to a cutoff time and captures the
// scheduler state (queue and running set) at that instant.
func snapshotAt(w *workload.Workload, cutoff int64) (queue, running []*workload.Job, pred *core.Predictor, err error) {
	pred = core.NewDefault(w)
	opts := sim.Options{
		OnSubmit: func(now int64, j *workload.Job, q, r []*workload.Job) {
			if now <= cutoff {
				queue = append([]*workload.Job(nil), q...)
				running = append([]*workload.Job(nil), r...)
			}
		},
		OnFinish: func(now int64, j *workload.Job) {
			if now <= cutoff {
				pred.Observe(j)
			}
		},
	}
	if _, err := sim.Run(w, sched.Backfill{}, predict.MaxRuntime{}, opts); err != nil {
		return nil, nil, nil, err
	}
	return queue, running, pred, nil
}

func main() {
	// Three machines with very different offered loads.
	specs := []struct {
		name string
		wl   string
		seed int64
	}{
		{"argonne", "ANL", 11},     // high load
		{"cornell", "CTC", 12},     // medium load
		{"sandiego", "SDSC95", 13}, // low load
	}
	var sites []*site
	for _, s := range specs {
		w, err := workload.Study(s.wl, 20, s.seed)
		if err != nil {
			log.Fatal(err)
		}
		cutoff := w.Jobs[len(w.Jobs)/2].SubmitTime // mid-trace decision point
		q, r, pred, err := snapshotAt(w, cutoff)
		if err != nil {
			log.Fatal(err)
		}
		sites = append(sites, &site{name: s.name, w: w, pred: pred, queue: q, running: r, now: cutoff})
		fmt.Printf("site %-9s %3d nodes, %2d queued, %2d running at decision time\n",
			s.name, w.MachineNodes, len(q), len(r))
	}
	fmt.Println()

	// Candidate jobs from a user who has history on every site (user000
	// exists in all synthetic populations).
	rng := rand.New(rand.NewSource(99))
	var chosenBetter, total int
	var sumChosen, sumRandom float64
	for trial := 0; trial < 10; trial++ {
		job := &workload.Job{
			ID:    100000 + trial,
			User:  "user000",
			Nodes: 8 << rng.Intn(3),
			// The submitter does not know the run time; only a limit.
			RunTime:    int64(600 + rng.Intn(7200)),
			MaxRunTime: 4 * 3600,
		}

		best, bestTurn := -1, 0.0
		turns := make([]float64, len(sites))
		for i, s := range sites {
			j := job.Clone()
			j.SubmitTime = s.now
			queue := append(append([]*workload.Job(nil), s.queue...), j)
			wait, err := waitpred.PredictWait(s.now, j, queue, s.running,
				s.w.MachineNodes, sched.Backfill{}, s.pred, predict.MaxRuntime{}, 0)
			if err != nil {
				log.Fatal(err)
			}
			rt := predict.Estimate(s.pred, j, 0, predict.DefaultRuntime)
			turns[i] = float64(wait+rt) / 60
			if best < 0 || turns[i] < bestTurn {
				best, bestTurn = i, turns[i]
			}
		}
		random := rng.Intn(len(sites))
		fmt.Printf("job %d (%3d nodes): predicted turnaround", job.ID, job.Nodes)
		for i, s := range sites {
			marker := " "
			if i == best {
				marker = "*"
			}
			fmt.Printf("  %s%s %6.1f min", marker, s.name, turns[i])
		}
		fmt.Println()
		sumChosen += bestTurn
		sumRandom += turns[random]
		if bestTurn <= turns[random] {
			chosenBetter++
		}
		total++
	}
	fmt.Printf("\nprediction-guided selection ≤ random placement in %d of %d trials\n", chosenBetter, total)
	fmt.Printf("mean predicted turnaround: guided %.1f min, random %.1f min\n",
		sumChosen/float64(total), sumRandom/float64(total))
}
