// Co-allocation with advance reservations: the paper's §5 closes with
// "we will expand our work ... to the problem of combining queue-based
// scheduling and reservations. Reservations are one way to co-allocate
// resources in metacomputing systems." This example exercises that
// combination end to end:
//
//  1. two machines each run their own synthetic batch workload under
//     backfill;
//  2. a metascheduler negotiates the earliest simultaneous 1-hour window
//     for a two-component application (coalloc.Negotiate);
//  3. the booked reservations are walled off from the batch queues by
//     ReservingBackfill, and the simulation verifies that no batch job
//     intrudes on either window.
//
// Run with:
//
//	go run ./examples/coallocation
package main

import (
	"fmt"
	"log"
	"sort"

	"repro/internal/coalloc"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	// Two machines with their own workloads.
	wa, err := workload.Study("SDSC95", 40, 5)
	if err != nil {
		log.Fatal(err)
	}
	wb, err := workload.Study("SDSC96", 40, 6)
	if err != nil {
		log.Fatal(err)
	}
	ra := &coalloc.Resource{Name: "paragon-95", Total: wa.MachineNodes, Book: &sched.ReservationBook{}}
	rb := &coalloc.Resource{Name: "paragon-96", Total: wb.MachineNodes, Book: &sched.ReservationBook{}}

	// The metascheduler wants 1 hour on 200 + 150 nodes, simultaneously,
	// no earlier than 6 hours into the traces.
	const notBefore = 6 * 3600
	const duration = 3600
	start, grants, err := coalloc.Negotiate([]coalloc.Component{
		{Resource: ra, Nodes: 200},
		{Resource: rb, Nodes: 150},
	}, notBefore, duration)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("negotiated co-allocation: [%d, %d) — %d nodes on %s, %d nodes on %s\n",
		start, start+duration, 200, ra.Name, 150, rb.Name)

	// Run both machines' batch workloads under ReservingBackfill and check
	// the reservation windows stay clear.
	check := func(w *workload.Workload, r *coalloc.Resource, nodes int) {
		res, err := sim.Run(w, sched.ReservingBackfill{Book: r.Book}, predict.MaxRuntime{}, sim.Options{})
		if err != nil {
			log.Fatal(err)
		}
		// True simultaneous peak of batch usage inside the window, by
		// sweeping start/end events clipped to it.
		type ev struct {
			t     int64
			delta int
		}
		var evs []ev
		for _, j := range res.Jobs {
			if j.StartTime < start+duration && j.EndTime > start {
				s, e := j.StartTime, j.EndTime
				if s < start {
					s = start
				}
				if e > start+duration {
					e = start + duration
				}
				evs = append(evs, ev{s, j.Nodes}, ev{e, -j.Nodes})
			}
		}
		sort.Slice(evs, func(i, k int) bool {
			if evs[i].t != evs[k].t {
				return evs[i].t < evs[k].t
			}
			return evs[i].delta < evs[k].delta // releases first
		})
		peak, cur := 0, 0
		for _, e := range evs {
			cur += e.delta
			if cur > peak {
				peak = cur
			}
		}
		fmt.Printf("%s: util %.1f%%, mean wait %.2f min; batch usage inside the window: %d of %d nodes (%d walled off)\n",
			r.Name, 100*res.Utilization, res.MeanWaitMinutes(),
			peak, r.Total, nodes)
		if peak > r.Total-nodes {
			log.Fatalf("%s: reservation violated (%d batch nodes, only %d allowed)",
				r.Name, peak, r.Total-nodes)
		}
	}
	check(wa, ra, 200)
	check(wb, rb, 150)

	// Cost of the reservations: rerun machine A without the book.
	plain, err := sim.Run(wa, sched.Backfill{}, predict.MaxRuntime{}, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	with, err := sim.Run(wa, sched.ReservingBackfill{Book: ra.Book}, predict.MaxRuntime{}, sim.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nreservation cost on %s: mean batch wait %.2f → %.2f min\n",
		ra.Name, plain.MeanWaitMinutes(), with.MeanWaitMinutes())

	coalloc.Release(grants)
	fmt.Printf("released %d grants; books now hold %d + %d reservations\n",
		len(grants), ra.Book.Len(), rb.Book.Len())
}
