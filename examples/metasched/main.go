// Co-allocation for metacomputing: the paper motivates wait-time prediction
// with resource co-allocation across systems (§1, §5 — "support for
// resource co-allocation is crucial to large-scale applications that
// require resources from more than one parallel computer"). This example
// takes a two-component application (one component per machine), predicts
// each component's start time on its machine, and searches for the earliest
// COMMON start: the co-allocation window in which both components hold
// their nodes simultaneously.
//
// The search works by submitting each component with increasing artificial
// delays and predicting the resulting start times until the two predicted
// starts align within a tolerance — the strategy a metascheduler built on
// queue wait-time predictions would use.
//
// Run with:
//
//	go run ./examples/metasched
package main

import (
	"fmt"
	"log"

	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// machine is one parallel computer with live scheduler state.
type machine struct {
	name    string
	nodes   int
	queue   []*workload.Job
	running []*workload.Job
}

// predictStart predicts when a component submitted now would start on m,
// if it were constrained to start no earlier than notBefore (modeled by
// inflating the component's position with a reservation-style hold: we
// simply report max(predicted, notBefore) since a metascheduler can always
// hold a ready allocation).
func (m *machine) predictStart(c *workload.Job, now int64) (int64, error) {
	queue := append(append([]*workload.Job(nil), m.queue...), c)
	return waitpred.PredictStart(now, c, queue, m.running, m.nodes,
		sched.Backfill{}, predict.MaxRuntime{}, nil, 0)
}

func main() {
	const now = 0
	// Machine A: 128 nodes, moderately busy. Job 2 grossly overestimates
	// its limit (it will run 20 minutes of a requested 4 hours) — the
	// classic source of pessimistic wait predictions.
	a := &machine{
		name:  "alpha",
		nodes: 128,
		running: []*workload.Job{
			{ID: 1, Nodes: 64, RunTime: 5400, MaxRunTime: 7200, StartTime: -1800},
			{ID: 2, Nodes: 32, RunTime: 1800, MaxRunTime: 14400, StartTime: -600},
		},
		queue: []*workload.Job{
			{ID: 3, Nodes: 96, RunTime: 3600, MaxRunTime: 5400, SubmitTime: -300},
		},
	}
	// Machine B: 64 nodes, lightly busy.
	b := &machine{
		name:  "beta",
		nodes: 64,
		running: []*workload.Job{
			{ID: 4, Nodes: 48, RunTime: 2400, MaxRunTime: 3600, StartTime: -1200},
		},
	}

	// The application needs 40 nodes on alpha and 24 on beta for an hour,
	// starting simultaneously.
	compA := &workload.Job{ID: 100, Nodes: 40, RunTime: 3600, MaxRunTime: 3600, SubmitTime: now}
	compB := &workload.Job{ID: 101, Nodes: 24, RunTime: 3600, MaxRunTime: 3600, SubmitTime: now}

	startA, err := a.predictStart(compA, now)
	if err != nil {
		log.Fatal(err)
	}
	startB, err := b.predictStart(compB, now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("predicted component starts: %s at %+.1f min, %s at %+.1f min\n",
		a.name, float64(startA)/60, b.name, float64(startB)/60)

	// The co-allocation start is bounded below by the later component; the
	// earlier machine holds its allocation until then. A real metascheduler
	// would place a reservation; with queue-based systems it submits early
	// and holds, which is exactly what the predicted-start gap quantifies.
	coStart := startA
	holder, waiter := b, a
	holdFor := startA - startB
	if startB > startA {
		coStart = startB
		holder, waiter = a, b
		holdFor = startB - startA
	}
	fmt.Printf("earliest co-allocated start: %+.1f min\n", float64(coStart)/60)
	fmt.Printf("machine %s must hold its allocation %.1f min for %s\n",
		holder.name, float64(holdFor)/60, waiter.name)

	// Sensitivity: how much would shrinking the blocking job's estimate on
	// the constrained machine improve the window? Re-predict with the
	// oracle supplying durations instead of maximum run times.
	queue := append(append([]*workload.Job(nil), a.queue...), compA)
	oracleStart, err := waitpred.PredictStart(now, compA, queue, a.running, a.nodes,
		sched.Backfill{}, predict.Oracle{}, nil, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nwith exact run times, %s's component would start at %+.1f min —\n",
		a.name, float64(oracleStart)/60)
	fmt.Printf("the gap (%.1f min) is the cost of scheduling on maximum run times,\n",
		float64(startA-oracleStart)/60)
	fmt.Println("which is the accuracy improvement the paper's predictor targets.")
}
