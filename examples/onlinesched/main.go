// Online scheduling with predicted run times: §4 of the paper plugs the
// run-time predictors into the LWF and backfill algorithms and measures
// utilization and mean wait time. This example does the same on one
// synthetic workload, printing a live comparison of every predictor on
// both algorithms — the library usage behind Tables 10–15.
//
// Run with:
//
//	go run ./examples/onlinesched
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/exp"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	w, err := workload.Study("ANL", 10, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload %s: %d jobs on %d nodes, offered load %.2f\n\n",
		w.Name, len(w.Jobs), w.MachineNodes, w.OfferedLoad())

	kinds := []exp.PredictorKind{
		exp.KindActual, exp.KindMaxRT, exp.KindSmith,
		exp.KindGibbons, exp.KindDowneyAvg, exp.KindDowneyMed,
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "predictor\tpolicy\tutilization\tmean wait (min)\tmax wait (min)\tpredictions")
	for _, kind := range kinds {
		for _, pol := range []sim.Policy{sched.LWF{}, sched.Backfill{}} {
			pred, err := exp.NewPredictor(kind, w)
			if err != nil {
				log.Fatal(err)
			}
			res, err := sim.Run(w, pol, pred, sim.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Fprintf(tw, "%s\t%s\t%.2f%%\t%.2f\t%.1f\t%d\n",
				kind, pol.Name(), 100*res.Utilization, res.MeanWaitMinutes(),
				float64(res.MaxWaitSec)/60, res.Predictions)
		}
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nwhat to look for (the paper's findings):")
	fmt.Println(" - utilization barely moves with the predictor;")
	fmt.Println(" - the oracle bounds achievable mean wait;")
	fmt.Println(" - the template predictor (smith) approaches the oracle and beats")
	fmt.Println("   maximum run times, most visibly on this high-load workload;")
	fmt.Println(" - backfill depends on prediction accuracy more than LWF, which only")
	fmt.Println("   needs to order jobs by size.")
}
