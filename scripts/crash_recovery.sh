#!/usr/bin/env sh
# Crash-recovery check for qwaitd's durable history store.
#
# Builds the daemon, streams observations into a -data store, captures a
# set of predictions, kills the process with SIGKILL mid-WAL (no graceful
# shutdown, no snapshot), restarts it on the same directory, and asserts
# the restarted daemon returns byte-identical predictions and the same
# category count. This is the end-to-end version of the histstore
# durability unit tests: if WAL replay lost or double-counted anything,
# the prediction JSON would differ.
#
# Usage: scripts/crash_recovery.sh [port]
set -eu

PORT="${1:-18642}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
DATA="${WORK}/hist"
BIN="${WORK}/qwaitd"
PID=""

cleanup() {
    [ -n "${PID}" ] && kill -9 "${PID}" 2>/dev/null || true
    rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

wait_ready() {
    i=0
    while ! curl -sf "http://${ADDR}/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "FAIL: daemon did not become ready on ${ADDR}" >&2
            exit 1
        fi
        sleep 0.2
    done
}

predict_all() {
    # Predictions for a spread of users/sizes, concatenated byte-for-byte.
    out="$1"
    : >"${out}"
    for u in alice bob carol; do
        for n in 2 8 32; do
            curl -sf -X POST "http://${ADDR}/v1/predict" \
                -d "{\"job\":{\"id\":9999,\"user\":\"${u}\",\"executable\":\"${u}/app\",\"nodes\":${n},\"maxRunTime\":7200}}" \
                >>"${out}"
            printf '\n' >>"${out}"
        done
    done
}

go build -o "${BIN}" ./cmd/qwaitd

"${BIN}" -addr "${ADDR}" -nodes 128 -data "${DATA}" -snapshot-interval 0 &
PID=$!
wait_ready

# Stream completions: three users, varied run times and node counts.
i=0
for u in alice bob carol; do
    for rt in 120 340 560 780 1000 1220 1440 1660; do
        i=$((i + 1))
        curl -sf -X POST "http://${ADDR}/v1/observe" \
            -d "{\"job\":{\"id\":${i},\"user\":\"${u}\",\"executable\":\"${u}/app\",\"nodes\":$((2 + i % 30)),\"runTime\":${rt},\"maxRunTime\":$((rt * 2))}}" \
            >/dev/null
    done
done

predict_all "${WORK}/before.json"
CATS_BEFORE=$(curl -sf "http://${ADDR}/v1/stats" | sed 's/.*"categories":\([0-9]*\).*/\1/')

# Hard kill: no graceful shutdown, no snapshot — the WAL alone must carry
# the history.
kill -9 "${PID}"
wait "${PID}" 2>/dev/null || true
PID=""

"${BIN}" -addr "${ADDR}" -nodes 128 -data "${DATA}" -snapshot-interval 0 &
PID=$!
wait_ready

predict_all "${WORK}/after.json"
CATS_AFTER=$(curl -sf "http://${ADDR}/v1/stats" | sed 's/.*"categories":\([0-9]*\).*/\1/')

if ! cmp -s "${WORK}/before.json" "${WORK}/after.json"; then
    echo "FAIL: predictions changed across crash recovery" >&2
    diff "${WORK}/before.json" "${WORK}/after.json" >&2 || true
    exit 1
fi
if [ "${CATS_BEFORE}" != "${CATS_AFTER}" ] || [ "${CATS_BEFORE}" = "0" ]; then
    echo "FAIL: categories ${CATS_BEFORE} -> ${CATS_AFTER} across crash recovery" >&2
    exit 1
fi
echo "OK: ${CATS_BEFORE} categories and all predictions identical after SIGKILL + restart"
