#!/usr/bin/env sh
# Admission-control smoke test for qwaitd's /v1/admit surface.
#
# Builds the daemon, boots it with predictive SLO admission and tracing
# enabled, and asserts against a live process:
#
#   - a short job on an empty machine is admitted within budget via the
#     forward simulation;
#   - a standard job behind a machine-filling two-hour hog is shed (its
#     7200s predicted wait exceeds the 3600s budget), while an interactive
#     job behind the same hog passes on its always-admit contract;
#   - /v1/metrics counts the three decisions (2 admitted, 1 shed, with the
#     per-class and per-reason breakdowns agreeing);
#   - /v1/traces kept an http.admit trace that decomposes into the
#     admission.decide and waitpred.simulate child spans.
#
# Usage: scripts/admit_smoke.sh [port]
set -eu

PORT="${1:-18653}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
BIN="${WORK}/qwaitd"
PID=""

cleanup() {
    [ -n "${PID}" ] && kill -9 "${PID}" 2>/dev/null || true
    rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

wait_ready() {
    i=0
    while ! curl -sf "http://${ADDR}/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            fail "daemon did not become ready on ${ADDR}"
        fi
        sleep 0.2
    done
}

go build -o "${BIN}" ./cmd/qwaitd

"${BIN}" -addr "${ADDR}" -nodes 64 -snapshot-interval 0 \
    -admit-classes 'interactive=10m:always,standard=1h:shed,batch=4h:shed' \
    -trace-sample 1 -trace-ring 32 &
PID=$!
wait_ready

# Empty machine: a standard 8-node job waits 0s and is admitted.
D1="${WORK}/d1.json"
curl -sf -X POST "http://${ADDR}/v1/admit" \
    -d '{"now":0,"job":{"id":1,"user":"alice","nodes":8,"maxRunTime":600,"class":"standard"}}' \
    >"${D1}"
grep -q '"admit":true' "${D1}" || fail "empty machine did not admit: $(cat "${D1}")"
grep -q '"reason":"within_budget"' "${D1}" || fail "admit reason: $(cat "${D1}")"
grep -q '"source":"forward"' "${D1}" || fail "admit source: $(cat "${D1}")"

# The whole machine is held for two hours: the standard job's predicted
# wait (7200s) blows its 3600s budget and it is shed.
HOG='{"id":100,"user":"bob","nodes":64,"maxRunTime":7200,"startTime":0}'
D2="${WORK}/d2.json"
curl -sf -X POST "http://${ADDR}/v1/admit" \
    -d "{\"now\":0,\"job\":{\"id\":2,\"user\":\"alice\",\"nodes\":8,\"maxRunTime\":600,\"class\":\"standard\"},\"running\":[${HOG}]}" \
    >"${D2}"
grep -q '"admit":false' "${D2}" || fail "hogged machine did not shed: $(cat "${D2}")"
grep -q '"reason":"shed_budget"' "${D2}" || fail "shed reason: $(cat "${D2}")"
grep -q '"predictedWaitSec":7200' "${D2}" || fail "predicted wait: $(cat "${D2}")"

# The same hog cannot block an interactive job: always-admit contract.
D3="${WORK}/d3.json"
curl -sf -X POST "http://${ADDR}/v1/admit" \
    -d "{\"now\":0,\"job\":{\"id\":3,\"user\":\"alice\",\"nodes\":8,\"maxRunTime\":600,\"class\":\"interactive\"},\"running\":[${HOG}]}" \
    >"${D3}"
grep -q '"admit":true' "${D3}" || fail "interactive job was not admitted: $(cat "${D3}")"
grep -q '"reason":"always"' "${D3}" || fail "interactive reason: $(cat "${D3}")"

# /v1/metrics: the three decisions, with per-reason and per-class agreement.
METRICS="${WORK}/metrics.json"
curl -sf "http://${ADDR}/v1/metrics" >"${METRICS}"
grep -q '"admission.decisions":3' "${METRICS}" || fail "admission.decisions != 3"
grep -q '"admission.admitted":2' "${METRICS}" || fail "admission.admitted != 2"
grep -q '"admission.shed":1' "${METRICS}" || fail "admission.shed != 1"
grep -q '"admission.shed_budget":1' "${METRICS}" || fail "admission.shed_budget != 1"
grep -q '"admission.class.standard.shed":1' "${METRICS}" || fail "per-class shed counter"
grep -q '"admission.class.interactive.admitted":1' "${METRICS}" || fail "per-class admitted counter"
grep -q '"admission.headroom":1' "${METRICS}" || fail "admission.headroom gauge"

# /v1/traces: the admit trace decomposes into the decision and the forward
# simulation underneath it.
TRACES="${WORK}/traces.json"
curl -sf "http://${ADDR}/v1/traces" >"${TRACES}"
grep -q '"enabled":true' "${TRACES}" || fail "/v1/traces not enabled"
for span in http.admit admission.decide waitpred.simulate; do
    grep -q "\"${span}\"" "${TRACES}" || fail "trace missing span ${span}"
done

kill "${PID}" 2>/dev/null || true
wait "${PID}" 2>/dev/null || true
PID=""
echo "OK: /v1/admit admits within budget, sheds over budget, honors always-admit; metrics and traces agree"
