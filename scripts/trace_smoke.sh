#!/usr/bin/env sh
# Tracing + accuracy smoke test for qwaitd's observability surface.
#
# Builds the daemon, boots it with tracing enabled (sample rate 1, durable
# history store), drives observe/predict/predictwait traffic, and asserts:
#
#   - /v1/traces is well-formed JSON, enabled, and contains a predict trace
#     that decomposes into the named child spans (core.predict,
#     template_match, histstore.view) plus an observe trace reaching the
#     WAL append and a batch trace (core.predict_batch);
#   - /v1/predict/batch returns one result per job, its hit agrees with the
#     single-job endpoint, and its miss falls back to the job's maximum;
#   - /v1/accuracy reports the scored completions ("all" stream with a
#     positive count and drift state);
#   - /v1/metrics serves JSON by default and Prometheus text exposition
#     under content negotiation, each with the right Content-Type.
#
# Usage: scripts/trace_smoke.sh [port]
set -eu

PORT="${1:-18652}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
BIN="${WORK}/qwaitd"
PID=""

cleanup() {
    [ -n "${PID}" ] && kill -9 "${PID}" 2>/dev/null || true
    rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

wait_ready() {
    i=0
    while ! curl -sf "http://${ADDR}/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            fail "daemon did not become ready on ${ADDR}"
        fi
        sleep 0.2
    done
}

go build -o "${BIN}" ./cmd/qwaitd

"${BIN}" -addr "${ADDR}" -nodes 128 -data "${WORK}/hist" -snapshot-interval 0 \
    -trace-sample 1 -trace-ring 32 &
PID=$!
wait_ready

# Batch predict against the empty store: a job with no history must come
# back as a miss falling back to its own maximum run time.
BATCH="${WORK}/batch.json"
curl -sf -X POST "http://${ADDR}/v1/predict/batch" \
    -d '{"jobs":[{"job":{"id":101,"user":"nobody","executable":"none","nodes":64,"maxRunTime":555}}]}' \
    >"${BATCH}"
grep -q '"ok":false' "${BATCH}" || fail "batch predict on empty store was not a miss"
grep -q '"seconds":555' "${BATCH}" || fail "batch miss did not fall back to maxRunTime"

# Traffic: completions for two users, then predictions over the history.
i=0
for u in alice bob; do
    for rt in 300 600 900 1200 1500; do
        i=$((i + 1))
        curl -sf -X POST "http://${ADDR}/v1/observe" \
            -d "{\"job\":{\"id\":${i},\"user\":\"${u}\",\"executable\":\"${u}/app\",\"nodes\":4,\"runTime\":${rt},\"maxRunTime\":$((rt * 2))}}" \
            >/dev/null
    done
done
curl -sf -X POST "http://${ADDR}/v1/predict" \
    -d '{"job":{"id":99,"user":"alice","executable":"alice/app","nodes":4,"maxRunTime":7200}}' \
    >/dev/null
# Batch predict over the history: two jobs in one request; the response
# carries one result per job, in order, and the first must agree with the
# single-job endpoint's answer for the same job.
curl -sf -X POST "http://${ADDR}/v1/predict/batch" \
    -d '{"jobs":[{"job":{"id":99,"user":"alice","executable":"alice/app","nodes":4,"maxRunTime":7200}},{"job":{"id":102,"user":"bob","executable":"bob/app","nodes":4,"maxRunTime":3600}}]}' \
    >"${BATCH}"
SINGLE=$(curl -sf -X POST "http://${ADDR}/v1/predict" \
    -d '{"job":{"id":99,"user":"alice","executable":"alice/app","nodes":4,"maxRunTime":7200}}')
FIRST=$(sed 's/.*"results":\[\([^]]*\)\].*/\1/; s/},{.*/}/' "${BATCH}")
[ "${FIRST}" = "${SINGLE}" ] || fail "batch result [0] (${FIRST}) != single predict (${SINGLE})"
curl -sf -X POST "http://${ADDR}/v1/predictwait" \
    -d '{"now":1000,"policy":"Backfill","target":{"id":100,"user":"bob","executable":"bob/app","nodes":4,"maxRunTime":3600,"submitTime":1000},"queue":[{"id":100,"user":"bob","executable":"bob/app","nodes":4,"maxRunTime":3600,"submitTime":1000}],"running":[]}' \
    >/dev/null

# /v1/traces: enabled, with the predict decomposition and the WAL append.
TRACES="${WORK}/traces.json"
curl -sf "http://${ADDR}/v1/traces" >"${TRACES}"
grep -q '"enabled":true' "${TRACES}" || fail "/v1/traces not enabled"
grep -q '"http.predict"' "${TRACES}" || fail "no http.predict trace kept"
for span in core.predict core.predict_batch template_match histstore.view histstore.insert histstore.wal_append waitpred.simulate; do
    grep -q "\"${span}\"" "${TRACES}" || fail "trace missing span ${span}"
done

# /v1/accuracy: completions were scored, drift state is reported.
ACC="${WORK}/accuracy.json"
curl -sf "http://${ADDR}/v1/accuracy" >"${ACC}"
grep -q '"all"' "${ACC}" || fail "/v1/accuracy missing the \"all\" stream"
grep -q '"count"' "${ACC}" || fail "/v1/accuracy missing counts"
grep -q '"drift"' "${ACC}" || fail "/v1/accuracy missing drift state"
grep -q '"count":0' "${ACC}" && fail "/v1/accuracy scored nothing"

# /v1/metrics content negotiation: JSON default, Prometheus on request.
CT_JSON=$(curl -sf -o /dev/null -w '%{content_type}' "http://${ADDR}/v1/metrics")
case "${CT_JSON}" in
application/json*) ;;
*) fail "/v1/metrics default Content-Type is ${CT_JSON}" ;;
esac
PROM="${WORK}/metrics.prom"
CT_PROM=$(curl -sf -H 'Accept: text/plain' -o "${PROM}" -w '%{content_type}' "http://${ADDR}/v1/metrics")
case "${CT_PROM}" in
text/plain*version=0.0.4*) ;;
*) fail "/v1/metrics Prometheus Content-Type is ${CT_PROM}" ;;
esac
grep -q '# TYPE trace_traces_kept counter' "${PROM}" || fail "Prometheus exposition missing tracer counters"
grep -q 'accuracy_all_count' "${PROM}" || fail "Prometheus exposition missing accuracy gauges"

kill "${PID}" 2>/dev/null || true
wait "${PID}" 2>/dev/null || true
PID=""
echo "OK: traces decompose, accuracy scores completions, metrics negotiate JSON/Prometheus"
