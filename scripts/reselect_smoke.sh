#!/usr/bin/env sh
# Re-selection smoke test for qwaitd's shadow-scored predictor stable.
#
# Builds the daemon, boots it with -reselect (small window and dwell so
# drift confirms within ~100 observations) and tracing, injects a run-time
# step through /v1/observe — phase one trains the template predictor on
# short jobs, phase two runs every job near its limit so the template
# predictor under-predicts by most of it — and asserts:
#
#   - /v1/stable is enabled with switching armed, ranks all six stable
#     members as eligible, reports at least one switch away from the
#     template predictor, and carries the structured switch event
#     (from/to, scores, drift state);
#   - /v1/predict names the serving predictor, and it is the scoreboard's
#     — not the template predictor the daemon booted with;
#   - /v1/metrics (Prometheus exposition) carries the accuracy.reselect.*
#     counter family with switches >= 1 and the accuracy.shadow.* family;
#   - /v1/traces shows the http.observe trace decomposing into the
#     accuracy.reselect span emitted at the switch.
#
# Usage: scripts/reselect_smoke.sh [port]
set -eu

PORT="${1:-18654}"
ADDR="127.0.0.1:${PORT}"
WORK="$(mktemp -d)"
BIN="${WORK}/qwaitd"
PID=""

cleanup() {
    [ -n "${PID}" ] && kill -9 "${PID}" 2>/dev/null || true
    rm -rf "${WORK}"
}
trap cleanup EXIT INT TERM

fail() {
    echo "FAIL: $1" >&2
    exit 1
}

wait_ready() {
    i=0
    while ! curl -sf "http://${ADDR}/v1/stats" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            fail "daemon did not become ready on ${ADDR}"
        fi
        sleep 0.2
    done
}

go build -o "${BIN}" ./cmd/qwaitd

"${BIN}" -addr "${ADDR}" -nodes 128 \
    -reselect -reselect-window 8 -reselect-dwell 8 -tail-cost 2 \
    -trace-sample 1 -trace-ring 64 &
PID=$!
wait_ready

# Before any traffic: the stable is mounted, armed, and unswitched.
STABLE="${WORK}/stable.json"
curl -sf "http://${ADDR}/v1/stable" >"${STABLE}"
grep -q '"enabled":true' "${STABLE}" || fail "/v1/stable not enabled"
grep -q '"reselect":true' "${STABLE}" || fail "/v1/stable switching not armed"
grep -q '"serving":"smith"' "${STABLE}" || fail "daemon did not boot serving the template predictor"

observe() {
    curl -sf -X POST "http://${ADDR}/v1/observe" \
        -d "{\"job\":{\"id\":$1,\"user\":\"alice\",\"executable\":\"alice/app\",\"nodes\":4,\"runTime\":$2,\"maxRunTime\":4000}}" \
        >/dev/null
}

# Phase one: 40 short completions. The template predictor learns ~600s.
i=0
while [ "$i" -lt 40 ]; do
    observe "$i" $((600 + i % 5))
    i=$((i + 1))
done

curl -sf "http://${ADDR}/v1/stable" >"${STABLE}"
grep -q '"switches":0' "${STABLE}" || fail "switched during the stationary phase"

# Phase two: 60 completions running near the limit. The template predictor
# under-predicts by ~3300s while maxrt is off by ~100s; the serving stream
# drifts, and the controller installs the scoreboard winner.
while [ "$i" -lt 100 ]; do
    observe "$i" $((3900 + i % 5))
    i=$((i + 1))
done

curl -sf "http://${ADDR}/v1/stable" >"${STABLE}"
grep -q '"switches":0' "${STABLE}" && fail "no switch after the injected step"
grep -q '"serving":"smith"' "${STABLE}" && fail "still serving the template predictor after the step"
grep -q '"from":"smith"' "${STABLE}" || fail "switch event does not leave the template predictor"
grep -q '"drifting":true' "${STABLE}" || fail "switch event carries no confirmed drift state"
for member in smith gibbons downey-avg maxrt globalmean; do
    grep -q "\"name\":\"${member}\"" "${STABLE}" || fail "scoreboard missing member ${member}"
done
# encoding/json HTML-escapes '>' in the chain's name.
grep -qF "\"name\":\"smith\\u003emaxrt\"" "${STABLE}" || fail "scoreboard missing the smith>maxrt chain"
grep -q '"eligible":false' "${STABLE}" && fail "a stable member is still ineligible after 100 completions"

# Predictions are served — and labeled — by the switched predictor.
PRED="${WORK}/predict.json"
curl -sf -X POST "http://${ADDR}/v1/predict" \
    -d '{"job":{"id":9999,"user":"alice","executable":"alice/app","nodes":4,"maxRunTime":4000}}' \
    >"${PRED}"
grep -q '"predictor"' "${PRED}" || fail "/v1/predict does not name the serving predictor"
grep -q '"predictor":"smith"' "${PRED}" && fail "/v1/predict still served by the template predictor"

# The counter families surface in Prometheus exposition.
PROM="${WORK}/metrics.prom"
curl -sf -H 'Accept: text/plain' "http://${ADDR}/v1/metrics" >"${PROM}"
grep -q '^accuracy_reselect_switches [1-9]' "${PROM}" || fail "accuracy_reselect_switches not >= 1"
grep -q '^accuracy_reselect_completions 100' "${PROM}" || fail "accuracy_reselect_completions != 100"
grep -q '^accuracy_shadow_maxrt_window_tail_score' "${PROM}" || fail "Prometheus exposition missing shadow gauges"
grep -q '^accuracy_serving_window_tail_score' "${PROM}" || fail "Prometheus exposition missing serving-stream gauges"

# The switch decomposes into a span on the observe trace.
TRACES="${WORK}/traces.json"
curl -sf "http://${ADDR}/v1/traces" >"${TRACES}"
grep -q '"http.observe"' "${TRACES}" || fail "no http.observe trace kept"
grep -q '"accuracy.reselect"' "${TRACES}" || fail "no accuracy.reselect span on the observe trace"

kill "${PID}" 2>/dev/null || true
wait "${PID}" 2>/dev/null || true
PID=""
echo "OK: stable scoreboard live, drift switched the serving predictor, counters and spans recorded it"
