package repro

// One benchmark per table of the paper's evaluation (Tables 1 and 4–15),
// plus the §4 compression experiment, the ablations of DESIGN.md §5, and
// microbenchmarks of the hot paths. Each table benchmark regenerates the
// table and reports its headline numbers as custom metrics; run with -v to
// see the rendered tables.
//
//	go test -bench=. -benchmem
//
// Benchmarks run at a reduced workload scale so the full suite finishes in
// minutes; set -benchtime=1x for a single regeneration of each table.

import (
	"context"
	"strconv"
	"testing"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ga"
	"repro/internal/histstore"
	"repro/internal/obs/trace"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// benchCfg scales the study workloads to ~2.5% of the Table-1 sizes so the
// expensive wait-time prediction tables stay tractable under -bench.
var benchCfg = exp.Config{Scale: 40, Seed: 42}

// benchTable regenerates one table per iteration and logs it once.
func benchTable(b *testing.B, fn exp.TableFunc, cfg exp.Config) {
	b.Helper()
	var last *exp.Table
	for i := 0; i < b.N; i++ {
		t, err := fn(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = t
	}
	if last != nil {
		b.Log("\n" + last.String())
	}
}

func BenchmarkTable01_Workloads(b *testing.B)      { benchTable(b, exp.Table1, benchCfg) }
func BenchmarkTable04_WaitPredActual(b *testing.B) { benchTable(b, exp.Table4, benchCfg) }
func BenchmarkTable05_WaitPredMax(b *testing.B)    { benchTable(b, exp.Table5, benchCfg) }
func BenchmarkTable06_WaitPredSmith(b *testing.B)  { benchTable(b, exp.Table6, benchCfg) }
func BenchmarkTable07_WaitPredGibbons(b *testing.B) {
	benchTable(b, exp.Table7, benchCfg)
}
func BenchmarkTable08_WaitPredDowneyAvg(b *testing.B) {
	benchTable(b, exp.Table8, benchCfg)
}
func BenchmarkTable09_WaitPredDowneyMed(b *testing.B) {
	benchTable(b, exp.Table9, benchCfg)
}
func BenchmarkTable10_SchedActual(b *testing.B)  { benchTable(b, exp.Table10, benchCfg) }
func BenchmarkTable11_SchedMax(b *testing.B)     { benchTable(b, exp.Table11, benchCfg) }
func BenchmarkTable12_SchedSmith(b *testing.B)   { benchTable(b, exp.Table12, benchCfg) }
func BenchmarkTable13_SchedGibbons(b *testing.B) { benchTable(b, exp.Table13, benchCfg) }
func BenchmarkTable14_SchedDowneyAvg(b *testing.B) {
	benchTable(b, exp.Table14, benchCfg)
}
func BenchmarkTable15_SchedDowneyMed(b *testing.B) {
	benchTable(b, exp.Table15, benchCfg)
}
func BenchmarkSec4_Compression(b *testing.B) {
	benchTable(b, exp.Section4Compression, benchCfg)
}
func BenchmarkAblation_BackfillVariants(b *testing.B) {
	benchTable(b, exp.AblationBackfillVariants, benchCfg)
}

// BenchmarkFutureWork_StateWait compares the paper's simulation-based
// wait-time prediction against the state-based method it proposes as
// future work (§5).
func BenchmarkFutureWork_StateWait(b *testing.B) {
	benchTable(b, exp.FutureWorkStateWait, benchCfg)
}

// BenchmarkText_RuntimeErrors regenerates the run-time accuracy numbers the
// paper quotes in its §3/§4 prose (error as % of mean run time).
func BenchmarkText_RuntimeErrors(b *testing.B) {
	benchTable(b, exp.RuntimeErrors, benchCfg)
}

// BenchmarkAblation_GAvsGreedy compares the paper's genetic-algorithm
// template search against the greedy search (the paper's earlier work found
// GA superior); the best errors of both are reported as metrics.
func BenchmarkAblation_GAvsGreedy(b *testing.B) {
	w, err := workload.Study("ANL", 40, benchCfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	enc := ga.NewEncoding(w)
	eval := ga.RuntimeError(ga.FromTrace(w))
	var gaErr, greedyErr float64
	for i := 0; i < b.N; i++ {
		gr, err := ga.Search(enc, eval, ga.Config{PopSize: 24, Generations: 25, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		gd, err := ga.GreedySearch(enc, eval, ga.CandidatePool(enc))
		if err != nil {
			b.Fatal(err)
		}
		gaErr, greedyErr = gr.BestError, gd.BestError
	}
	b.ReportMetric(gaErr/60, "ga-err-min")
	b.ReportMetric(greedyErr/60, "greedy-err-min")
}

// BenchmarkAblation_CISelection compares the paper's smallest-confidence-
// interval estimate selection against Gibbons-style first-match ordering
// over the same template set (DESIGN.md §5.2).
func BenchmarkAblation_CISelection(b *testing.B) {
	w, err := workload.Study("ANL", 40, benchCfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	pw := ga.FromTrace(w)
	var ciErr, fmErr float64
	for i := 0; i < b.N; i++ {
		ts := core.DefaultTemplates(w.Chars, w.HasMaxRT)
		ciErr = replayError(pw, core.New(ts))
		fmErr = replayError(pw, core.New(ts, core.WithFirstMatch()))
	}
	b.ReportMetric(ciErr/60, "smallest-ci-err-min")
	b.ReportMetric(fmErr/60, "first-match-err-min")
}

// BenchmarkAblation_PredTypes compares the four within-category prediction
// types over a single-user-executable template (DESIGN.md §5.3; the paper
// found the mean best).
func BenchmarkAblation_PredTypes(b *testing.B) {
	w, err := workload.Study("ANL", 40, benchCfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	pw := ga.FromTrace(w)
	errs := make([]float64, core.NumPredTypes)
	for i := 0; i < b.N; i++ {
		for pt := core.PredType(0); pt < core.NumPredTypes; pt++ {
			tpl := core.Template{
				Chars: workload.MaskOf(workload.CharUser, workload.CharExec),
				Pred:  pt,
			}
			errs[pt] = replayError(pw, core.New([]core.Template{tpl}))
		}
	}
	for pt := core.PredType(0); pt < core.NumPredTypes; pt++ {
		b.ReportMetric(errs[pt]/60, pt.String()+"-err-min")
	}
}

// BenchmarkAblation_HistoryBound sweeps the maximum-history bound
// (DESIGN.md §5.4): small histories track regime changes, large ones smooth
// noise.
func BenchmarkAblation_HistoryBound(b *testing.B) {
	w, err := workload.Study("ANL", 40, benchCfg.Seed)
	if err != nil {
		b.Fatal(err)
	}
	pw := ga.FromTrace(w)
	bounds := []int{4, 64, 1024, 0} // 0 = unlimited
	errs := make([]float64, len(bounds))
	for i := 0; i < b.N; i++ {
		for k, h := range bounds {
			tpl := core.Template{
				Chars:      workload.MaskOf(workload.CharUser, workload.CharExec),
				MaxHistory: h,
				Pred:       core.PredMean,
			}
			errs[k] = replayError(pw, core.New([]core.Template{tpl}))
		}
	}
	for k, h := range bounds {
		name := "h" + strconv.Itoa(h)
		if h == 0 {
			name = "h-unlimited"
		}
		b.ReportMetric(errs[k]/60, name+"-err-min")
	}
}

// replayError replays a prediction workload through a predictor, returning
// the mean absolute error in seconds (with the standard fallback chain).
func replayError(pw ga.PredWorkload, p predict.Predictor) float64 {
	var sum float64
	var n int
	for _, ev := range pw {
		switch ev.Kind {
		case ga.EvPredict:
			est := predict.Estimate(p, ev.Job, ev.Age, predict.DefaultRuntime)
			d := float64(est - ev.Job.RunTime)
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		case ga.EvInsert:
			p.Observe(ev.Job)
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// --- Microbenchmarks of the hot paths ---

// warmedStorePredictor trains a store-backed predictor on the full ANL/20
// study workload: the concurrency-safe configuration whose predict path is
// lock-free snapshot loads.
func warmedStorePredictor(b *testing.B) (*core.Predictor, *workload.Job) {
	b.Helper()
	w, err := workload.Study("ANL", 20, 7)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewDefault(w, core.WithStore(histstore.New()))
	for _, j := range w.Jobs {
		p.Observe(j)
	}
	if err := p.StoreErr(); err != nil {
		b.Fatal(err)
	}
	return p, w.Jobs[len(w.Jobs)-1]
}

// BenchmarkPredictParallel measures store-backed prediction throughput as
// reader goroutines scale — run with -cpu 1,2,4,8 for the scaling series.
// The predict path performs zero mutex acquisitions (category lookups are
// atomic snapshot loads and the estimate consumes finalized moments), so
// per-op time should stay near-flat as readers are added; a slope here
// means a serialization point crept back into the hot path.
func BenchmarkPredictParallel(b *testing.B) {
	p, probe := warmedStorePredictor(b)
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, ok := p.Predict(probe, 0); !ok {
				b.Fatal("no prediction")
			}
		}
	})
}

// BenchmarkPredictBatch measures the amortized per-job cost of the batch
// prediction API scoring 100 jobs per call against a warmed store.
func BenchmarkPredictBatch(b *testing.B) {
	p, probe := warmedStorePredictor(b)
	items := make([]core.BatchItem, 100)
	for i := range items {
		items[i] = core.BatchItem{Job: probe}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.PredictDetailedBatch(items)
		if !res[0].OK {
			b.Fatal("no prediction")
		}
	}
}

// warmedPredictor trains a default predictor on the full ANL/20 study
// workload and returns it with a probe job, for hot-path benchmarks.
func warmedPredictor(b *testing.B) (*core.Predictor, *workload.Job) {
	b.Helper()
	w, err := workload.Study("ANL", 20, 7)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewDefault(w)
	for _, j := range w.Jobs {
		p.Observe(j)
	}
	return p, w.Jobs[len(w.Jobs)-1]
}

// BenchmarkPredictHotPathBaseline is the reference point for the tracer
// overhead pair below: one detailed prediction through the non-context API.
func BenchmarkPredictHotPathBaseline(b *testing.B) {
	p, probe := warmedPredictor(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.PredictDetailed(probe, 0); !ok {
			b.Fatal("no prediction")
		}
	}
}

// BenchmarkPredictHotPathTracerDisabled measures the context-threaded
// prediction path with no tracer installed — the cost every request pays
// when tracing is off. The acceptance bar is ≤5% over the baseline.
func BenchmarkPredictHotPathTracerDisabled(b *testing.B) {
	p, probe := warmedPredictor(b)
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.PredictDetailedCtx(ctx, probe, 0); !ok {
			b.Fatal("no prediction")
		}
	}
}

// BenchmarkPredictHotPathTracerEnabled measures a fully sampled prediction:
// root span, per-template children, and ring insertion each iteration.
func BenchmarkPredictHotPathTracerEnabled(b *testing.B) {
	p, probe := warmedPredictor(b)
	tr := trace.New(trace.WithSampleRate(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx, root := tr.StartRoot(context.Background(), "bench.predict")
		if _, ok := p.PredictDetailedCtx(ctx, probe, 0); !ok {
			b.Fatal("no prediction")
		}
		root.End()
	}
}

// BenchmarkPredictorObserve measures history insertion across a full
// template set.
func BenchmarkPredictorObserve(b *testing.B) {
	w, err := workload.Study("ANL", 20, 7)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewDefault(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(w.Jobs[i%len(w.Jobs)])
	}
}

// BenchmarkBackfillPick measures one conservative-backfill scheduling pass
// over a deep queue.
func BenchmarkBackfillPick(b *testing.B) {
	const total = 400
	var running []*workload.Job
	used := 0
	for i := 0; used+8 <= total/2; i++ {
		j := &workload.Job{ID: i, Nodes: 8, RunTime: int64(1000 + i*100), StartTime: -int64(i * 50)}
		j.MaxRunTime = j.RunTime * 2
		running = append(running, j)
		used += 8
	}
	var queue []*workload.Job
	for i := 0; i < 100; i++ {
		queue = append(queue, &workload.Job{
			ID: 1000 + i, Nodes: 1 << (i % 8), RunTime: int64(600 + i*37),
			MaxRunTime: int64(1200 + i*37),
		})
	}
	est := func(j *workload.Job, age int64) int64 {
		return predict.Estimate(predict.MaxRuntime{}, j, age, predict.DefaultRuntime)
	}
	pol := sched.Backfill{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol.Pick(0, queue, running, total-used, total, est)
	}
}

// BenchmarkProfileEarliestFit measures the availability-profile search used
// inside backfill.
func BenchmarkProfileEarliestFit(b *testing.B) {
	p := sched.NewProfile(0, 400)
	for i := 0; i < 200; i++ {
		s := int64(i * 100)
		if err := p.Allocate(s, s+150, 1+(i%16)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.EarliestFit(0, 500, 300)
	}
}

// BenchmarkPredictWait measures one queue wait-time prediction against a
// deep queue — the latency a resource-selection client sees per candidate
// system.
func BenchmarkPredictWait(b *testing.B) {
	const total = 400
	var running []*workload.Job
	used := 0
	for i := 0; used+8 <= total*3/4; i++ {
		j := &workload.Job{ID: i, Nodes: 8, RunTime: int64(1000 + i*100), StartTime: -int64(i * 50)}
		j.MaxRunTime = j.RunTime * 2
		running = append(running, j)
		used += 8
	}
	var queue []*workload.Job
	for i := 0; i < 60; i++ {
		queue = append(queue, &workload.Job{
			ID: 1000 + i, Nodes: 1 << (i % 7), RunTime: int64(600 + i*37),
			MaxRunTime: int64(1800 + i*37),
		})
	}
	target := queue[len(queue)-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := waitpred.PredictWait(0, target, queue, running, total,
			sched.Backfill{}, predict.MaxRuntime{}, nil, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimRun measures a full scheduling simulation (ANL/40, backfill,
// maximum run times).
func BenchmarkSimRun(b *testing.B) {
	w, err := workload.Study("ANL", 40, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(w, sched.Backfill{}, predict.MaxRuntime{}, sim.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Cancellations checks the predictor ranking under
// queue-withdrawal failure injection (30% cancellable jobs).
func BenchmarkAblation_Cancellations(b *testing.B) {
	benchTable(b, exp.AblationCancellations, benchCfg)
}

// BenchmarkValidation_WalkForward measures the predictors under pure
// holdout (train on a prefix, test on the next segment with no feedback).
func BenchmarkValidation_WalkForward(b *testing.B) {
	benchTable(b, exp.WalkForwardTable, benchCfg)
}

// BenchmarkValidation_Replication checks the headline scheduling
// comparison across independently drawn workload seeds.
func BenchmarkValidation_Replication(b *testing.B) {
	benchTable(b, exp.ReplicationTable, benchCfg)
}

// BenchmarkMotivation_Metascheduling quantifies the paper's §1 use case:
// routing across machines by predicted turnaround vs uninformed routers.
func BenchmarkMotivation_Metascheduling(b *testing.B) {
	benchTable(b, exp.MetaschedulingTable, benchCfg)
}
