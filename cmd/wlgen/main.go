// Command wlgen generates the calibrated synthetic study workloads (or
// summarizes an existing SWF trace) and writes them in Standard Workload
// Format so they can be inspected or fed to external tools.
//
// Usage:
//
//	wlgen -workload ANL [-scale N] [-seed S] [-o trace.swf] [-users] [-summary]
//	wlgen -in trace.swf [-nodes N] [-summary]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlgen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wlgen", flag.ContinueOnError)
	name := fs.String("workload", "", "study workload to generate (ANL, CTC, SDSC95, SDSC96)")
	scale := fs.Int("scale", 1, "divide the Table-1 trace size by this factor")
	seed := fs.Int64("seed", 42, "generator seed")
	out := fs.String("o", "", "write the workload in SWF to this file")
	in := fs.String("in", "", "read an SWF trace instead of generating")
	nodes := fs.Int("nodes", 0, "machine size when reading SWF (0 = infer)")
	users := fs.Bool("users", false, "print the user-activity distribution")
	summary := fs.Bool("summary", true, "print the Table-1-style summary")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *workload.Workload
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		defer f.Close() //lint:allow errdrop read-only file; a close error cannot lose data
		w, err = workload.ReadSWF(f, workload.SWFOptions{Name: *in, MachineNodes: *nodes})
	case *name != "":
		w, err = workload.Study(*name, *scale, *seed)
	default:
		return fmt.Errorf("need -workload or -in (see -h)")
	}
	if err != nil {
		return err
	}

	if *summary {
		if err := workload.WriteTable(stdout, []*workload.Workload{w}); err != nil {
			return err
		}
	}
	if *users {
		names, counts := workload.UserActivity(w)
		n := len(names)
		if n > 20 {
			n = 20
		}
		fmt.Fprintf(stdout, "top %d users by job count:\n", n)
		for i := 0; i < n; i++ {
			fmt.Fprintf(stdout, "  %-12s %6d\n", names[i], counts[i])
		}
	}
	if *out != "" {
		f, ferr := os.Create(*out)
		if ferr != nil {
			return ferr
		}
		if err := workload.WriteSWF(f, w); err != nil {
			_ = f.Close() // the WriteSWF error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote %d jobs to %s\n", len(w.Jobs), *out)
	}
	return nil
}
