package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGenerateAndSummary(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "ANL", "-scale", "100", "-users"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ANL") || !strings.Contains(out, "top") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestExportAndReimport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.swf")
	var sb strings.Builder
	if err := run([]string{"-workload", "SDSC95", "-scale", "200", "-o", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	sb.Reset()
	if err := run([]string{"-in", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "trace.swf") {
		t.Fatalf("reimport output:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no source should error")
	}
	if err := run([]string{"-workload", "NERSC"}, &sb); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-in", "/nonexistent/file.swf"}, &sb); err == nil {
		t.Error("missing input should error")
	}
	if err := run([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag should error")
	}
}
