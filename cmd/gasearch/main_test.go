package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
)

func TestRunGA(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	var sb strings.Builder
	err := run([]string{"-workload", "ANL", "-scale", "100",
		"-pop", "8", "-gens", "3", "-o", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"best template set", "convergence", "baselines", "maxrt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ts, err := core.UnmarshalTemplates(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) == 0 {
		t.Fatal("empty exported template set")
	}
}

func TestRunGreedyWithPolicy(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "SDSC95", "-scale", "200",
		"-policy", "LWF", "-greedy"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "best template set") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "NERSC"}, &sb); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-policy", "EDF"}, &sb); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"-scale", "100", "-o", "/nonexistent/dir/x.json",
		"-pop", "6", "-gens", "2"}, &sb); err == nil {
		t.Error("unwritable output should error")
	}
}

func TestRunGAProgressLines(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "ANL", "-scale", "200",
		"-pop", "6", "-gens", "2"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	// Generations 0..2 inclusive.
	for _, want := range []string{"gen  0/2", "gen  1/2", "gen  2/2"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing progress line %q:\n%s", want, out)
		}
	}
	// -progress=false silences them.
	sb.Reset()
	err = run([]string{"-workload", "ANL", "-scale", "200",
		"-pop", "6", "-gens", "2", "-progress=false"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "gen  0/2") {
		t.Fatalf("progress lines printed despite -progress=false:\n%s", sb.String())
	}
}
