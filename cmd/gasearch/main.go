// Command gasearch searches for good template sets for a workload with the
// paper's genetic algorithm (or the greedy search it was compared against),
// reporting the best set and how it fares against the baseline predictors.
//
// Usage:
//
//	gasearch -workload ANL [-scale N] [-policy LWF] [-pop 20] [-gens 15] [-greedy] [-o set.json]
//
// With -policy, the fitness is evaluated on the prediction workload that
// the scheduling algorithm generates (predictions of all waiting and
// running applications at every submission); without it, on the simple
// predict-at-submission trace replay.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/ga"
	"repro/internal/predict"
	"repro/internal/predict/downey"
	"repro/internal/predict/gibbons"
	"repro/internal/sched"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gasearch:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("gasearch", flag.ContinueOnError)
	name := fs.String("workload", "ANL", "study workload (ANL, CTC, SDSC95, SDSC96)")
	scale := fs.Int("scale", 20, "divide the Table-1 trace size by this factor")
	seed := fs.Int64("seed", 42, "generator seed")
	policy := fs.String("policy", "", "generate the fitness workload from this scheduler (FCFS, LWF, Backfill)")
	pop := fs.Int("pop", 20, "GA population size")
	gens := fs.Int("gens", 15, "GA generations")
	gaSeed := fs.Int64("gaseed", 1, "GA random seed")
	greedy := fs.Bool("greedy", false, "use the greedy search instead of the GA")
	progress := fs.Bool("progress", true, "print per-generation progress lines")
	out := fs.String("o", "", "write the best template set as JSON (for tables -templates)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := workload.Study(*name, *scale, *seed)
	if err != nil {
		return err
	}

	var pw ga.PredWorkload
	if *policy != "" {
		pol := sched.ByName(*policy)
		if pol == nil {
			return fmt.Errorf("unknown policy %q", *policy)
		}
		pw, err = ga.FromSchedule(w, pol)
		if err != nil {
			return err
		}
	} else {
		pw = ga.FromTrace(w)
	}
	fmt.Fprintf(stdout, "fitness workload: %d events on %s (%d jobs)\n", len(pw), w.Name, len(w.Jobs))

	enc := ga.NewEncoding(w)
	eval := ga.RuntimeError(pw)

	var res *ga.SearchResult
	if *greedy {
		res, err = ga.GreedySearch(enc, eval, ga.CandidatePool(enc))
	} else {
		// time.Now is injected here, at the edge: the search itself must
		// stay wall-clock-free (repolint wallclock check).
		cfg := ga.Config{PopSize: *pop, Generations: *gens, Seed: *gaSeed, Now: time.Now}
		if *progress {
			// Progress lines from the search's per-generation hook: best
			// error so far, evaluator invocations, and generation wall time.
			cfg.OnGeneration = func(g ga.GenerationStats) {
				fmt.Fprintf(stdout, "gen %2d/%d  best %7.2fm  evals %4d  (%.2fs)\n",
					g.Generation, g.Generations, g.BestError/60, g.Evaluations,
					g.Elapsed.Seconds())
			}
		}
		res, err = ga.Search(enc, eval, cfg)
	}
	if err != nil {
		return err
	}

	fmt.Fprintf(stdout, "\nbest template set (mean abs error %.2f minutes, %d evaluations):\n",
		res.BestError/60, res.Evaluations)
	for _, t := range res.Best {
		fmt.Fprintf(stdout, "  %s\n", t)
	}
	fmt.Fprint(stdout, "\nconvergence (best error per round, minutes):")
	for _, e := range res.History {
		fmt.Fprintf(stdout, " %.1f", e/60)
	}
	fmt.Fprintln(stdout)

	if *out != "" {
		data, err := core.MarshalTemplates(res.Best)
		if err != nil {
			return err
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "\ntemplate set written to %s\n", *out)
	}

	fmt.Fprintln(stdout, "\nbaselines on the same fitness workload (mean abs error, minutes):")
	base := ga.BaselineErrors(pw, []predict.Predictor{
		predict.MaxRuntime{},
		gibbons.New(),
		downey.New(downey.ConditionalAverage),
		downey.New(downey.ConditionalMedian),
	})
	for _, n := range []string{"maxrt", "gibbons", "downey-avg", "downey-med"} {
		fmt.Fprintf(stdout, "  %-12s %.2f\n", n, base[n]/60)
	}
	return nil
}
