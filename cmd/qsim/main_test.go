package main

import (
	"encoding/csv"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunBasic(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "SDSC95", "-scale", "100", "-policy", "LWF",
		"-predictor", "actual"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"utilization", "mean wait", "policy      LWF", "predictor   actual"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestRunCSVOutputs(t *testing.T) {
	dir := t.TempDir()
	sched := filepath.Join(dir, "sched.csv")
	usage := filepath.Join(dir, "usage.csv")
	var sb strings.Builder
	err := run([]string{"-workload", "ANL", "-scale", "100", "-predictor", "maxrt",
		"-csv", sched, "-usage", usage}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{sched, usage} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := csv.NewReader(f).ReadAll()
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(recs) < 2 {
			t.Fatalf("%s: only %d rows", p, len(recs))
		}
	}
}

func TestRunWithCancellations(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "SDSC96", "-scale", "50", "-predictor", "maxrt",
		"-compress", "8", "-cancel", "0.5"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	// Cancellation line appears only when jobs were withdrawn; at this load
	// some should be.
	if !strings.Contains(sb.String(), "cancelled") {
		t.Logf("no cancellations fired; output:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no workload should error")
	}
	if err := run([]string{"-workload", "ANL", "-scale", "200", "-policy", "EDF"}, &sb); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"-workload", "ANL", "-scale", "200", "-predictor", "psychic"}, &sb); err == nil {
		t.Error("unknown predictor should error")
	}
	if err := run([]string{"-in", "/nonexistent.swf"}, &sb); err == nil {
		t.Error("missing trace should error")
	}
}

func TestRunRegretSweep(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "regret.json")
	var sb strings.Builder
	err := run([]string{"-regret", "-scale", "100",
		"-err-scales", "0,1", "-biases", "0", "-headrooms", "1",
		"-regret-json", out}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	for _, want := range []string{"fcfs-always", "sjf-admit", "mean regret (headroom 1)", "err 1 ->"} {
		if !strings.Contains(got, want) {
			t.Fatalf("missing %q in:\n%s", want, got)
		}
	}
	b, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var report map[string]any
	if err := json.Unmarshal(b, &report); err != nil {
		t.Fatalf("report not JSON: %v", err)
	}
	if cells, ok := report["cells"].([]any); !ok || len(cells) == 0 {
		t.Fatalf("report has no cells: %v", report["cells"])
	}
}

func TestRunRegretFlagErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-regret", "-err-scales", "zero"}, &sb); err == nil {
		t.Error("bad -err-scales should error")
	}
	if err := run([]string{"-regret", "-scale", "100", "-headrooms", ""}, &sb); err != nil {
		t.Errorf("empty override should keep defaults, got %v", err)
	}
}

func TestRunAccuracySummary(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "SDSC95", "-scale", "100", "-predictor", "smith",
		"-accuracy"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"accuracy[SDSC95] scored", "mean err", "rms", "abs p50/p90/p99",
		"signed p50/p90/p99", "asym cost", "(ratio 2)", "tail score"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Without the flag the summary stays out of the report.
	sb.Reset()
	if err := run([]string{"-workload", "SDSC95", "-scale", "100", "-predictor", "smith"}, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "accuracy[") {
		t.Fatalf("accuracy printed without -accuracy:\n%s", sb.String())
	}
}

func TestRunAccuracyShadowScoreboard(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "CTC", "-scale", "100", "-predictor", "smith",
		"-accuracy", "-shadow", "-tail-cost", "4"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"shadow scoreboard", "(ratio 4)",
		"smith", "gibbons", "downey-avg", "maxrt", "globalmean", "smith>maxrt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Count(out, "#") < 6 {
		t.Fatalf("scoreboard should rank all six stable members:\n%s", out)
	}
}

// TestRunReselectSweep drives the full drift-injection pipeline on one
// small workload: the injected step must fire drift, switch the serving
// predictor away from the template predictor, and report the Welch-t
// comparison against the pinned baseline.
func TestRunReselectSweep(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-reselect", "-workload", "CTC", "-scale", "40"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"drift-injection re-selection sweep",
		"baseline smith", "adaptive", "switch #1", "welch t="} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}
