// Command qsim runs one scheduling simulation: a workload replayed through
// a scheduling algorithm with a run-time predictor, reporting utilization
// and mean wait time (the cells of Tables 10–15) and optionally the per-job
// schedule and the node-usage timeline as CSV.
//
// Usage:
//
//	qsim -workload ANL -policy Backfill -predictor smith [-scale N] [-seed S] [-csv out.csv]
//	qsim -in trace.swf -policy LWF -predictor maxrt [-usage usage.csv]
//	qsim -workload ANL -predictor smith -accuracy        # per-run error summary
//	qsim -workload ANL -accuracy -shadow                 # + live stable scoreboard
//	qsim -regret [-regret-json out.json]                 # price-of-misprediction sweep
//	qsim -reselect [-tail-cost 2] [-fill 0.95]           # drift → re-selection sweep
//
// With -accuracy, every completion is scored (the prediction made just
// before the predictor observes it, against the actual run time) and the
// run ends with the workload's mean/RMS error, absolute-error quantiles,
// signed tail quantiles, asymmetric cost (-tail-cost sets the
// under-prediction ratio) and over/under counts — the live counterpart of
// the paper's Tables 4–9 with the TARE-style tail view. Adding -shadow
// also scores the whole predictor stable against every completion and
// prints the resulting scoreboard.
//
// With -regret, the four study workloads are swept through the predictive
// SLO admission experiment (SJF + admission control under injected
// prediction error versus FCFS/always-admit); -err-scales, -biases and
// -headrooms override the sweep grid, and -regret-json writes the full
// machine-readable report.
//
// With -reselect, each study workload (or just -workload) gets a run-time
// step change injected halfway through (-fill sets the post-step run time
// as a fraction of the user limit) and is scheduled twice — template
// predictor pinned versus drift-adaptive re-selection over the stable —
// reporting switches, post-step tail scores, and the Welch-t significance
// of the per-completion asymmetric cost difference.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/exp"
	"repro/internal/obs/accuracy"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qsim:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qsim", flag.ContinueOnError)
	name := fs.String("workload", "", "study workload (ANL, CTC, SDSC95, SDSC96)")
	in := fs.String("in", "", "SWF trace to read instead of generating")
	nodes := fs.Int("nodes", 0, "machine size when reading SWF (0 = infer)")
	scale := fs.Int("scale", 10, "divide the Table-1 trace size by this factor")
	seed := fs.Int64("seed", 42, "generator seed")
	policy := fs.String("policy", "Backfill", "FCFS, LWF, LWF/blocking, Backfill, or Backfill/EASY")
	kind := fs.String("predictor", "smith", "actual, maxrt, smith, gibbons, downey-avg, downey-med")
	compress := fs.Float64("compress", 1, "divide interarrival times by this factor")
	cancel := fs.Float64("cancel", 0, "make this fraction of jobs cancellable (failure injection)")
	csvOut := fs.String("csv", "", "write the per-job schedule as CSV to this file")
	usageOut := fs.String("usage", "", "write the node-usage timeline as CSV to this file")
	accOn := fs.Bool("accuracy", false, "score every completion and print the prediction-error summary")
	shadowOn := fs.Bool("shadow", false, "with -accuracy, shadow-score the whole predictor stable and print the scoreboard")
	tailCost := fs.Float64("tail-cost", stats.DefaultCostRatio, "asymmetric cost of under-prediction relative to over-prediction")
	reselectOn := fs.Bool("reselect", false, "run the drift-injection re-selection sweep over the study workloads")
	fill := fs.Float64("fill", 0.95, "with -reselect, post-step run time as a fraction of the user limit")
	stepFrac := fs.Float64("step-frac", 0.5, "with -reselect, step position as a fraction of the trace")
	regretOn := fs.Bool("regret", false, "run the predictive-admission regret sweep over the study workloads")
	regretJSON := fs.String("regret-json", "", "with -regret, write the machine-readable report to this file")
	errScales := fs.String("err-scales", "", "with -regret, comma-separated error scales (default 0,0.5,1,2)")
	biases := fs.String("biases", "", "with -regret, comma-separated error sign biases (default -1,0,1)")
	headrooms := fs.String("headrooms", "", "with -regret, comma-separated budget headrooms (default 1,2)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *regretOn {
		return runRegret(stdout, *scale, *seed, *errScales, *biases, *headrooms, *regretJSON)
	}
	if *reselectOn {
		return runReselect(stdout, *name, *scale, *seed, *tailCost, *fill, *stepFrac)
	}

	w, err := loadWorkload(*name, *in, *nodes, *scale, *seed)
	if err != nil {
		return err
	}
	if *compress != 1 { //lint:allow floatcmp flag-default check; "1" parses to exactly 1.0
		w = workload.Compress(w, *compress)
	}
	if *cancel > 0 {
		w = w.InjectCancellations(*cancel, 1800, *seed)
	}
	pol := sched.ByName(*policy)
	if pol == nil {
		return fmt.Errorf("unknown policy %q", *policy)
	}
	pred, err := exp.NewPredictor(exp.PredictorKind(*kind), w)
	if err != nil {
		return err
	}

	var acc *accuracy.Tracker
	var shadow *accuracy.Shadow
	opts := sim.Options{}
	if *accOn {
		acc = accuracy.New(accuracy.WithCostRatio(*tailCost))
		opts.Accuracy = acc
		if *shadowOn {
			stable, err := exp.Stable(w)
			if err != nil {
				return err
			}
			shadow = accuracy.NewShadow(stable,
				accuracy.New(accuracy.WithCostRatio(*tailCost)), 0)
			// OnFinish runs before the serving predictor observes the
			// completion, so the stable scores on the same footing.
			opts.OnFinish = func(now int64, j *workload.Job) {
				shadow.ScoreAndObserve(j, float64(j.RunTime))
			}
		}
	}
	res, err := sim.Run(w, pol, pred, opts)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "workload    %s (%d jobs, %d nodes)\n", w.Name, len(w.Jobs), w.MachineNodes)
	fmt.Fprintf(stdout, "policy      %s\n", res.Policy)
	fmt.Fprintf(stdout, "predictor   %s\n", res.Predictor)
	fmt.Fprintf(stdout, "utilization %.2f%%\n", 100*res.Utilization)
	fmt.Fprintf(stdout, "mean wait   %.2f minutes\n", res.MeanWaitMinutes())
	fmt.Fprintf(stdout, "wait p50/p90/p99  %.1f / %.1f / %.1f minutes\n",
		res.WaitDist.P50/60, res.WaitDist.P90/60, res.WaitDist.P99/60)
	fmt.Fprintf(stdout, "max wait    %.2f minutes\n", float64(res.MaxWaitSec)/60)
	fmt.Fprintf(stdout, "makespan    %.2f hours\n", float64(res.MakespanSec)/3600)
	fmt.Fprintf(stdout, "predictions %d\n", res.Predictions)
	if res.Cancelled > 0 {
		fmt.Fprintf(stdout, "cancelled   %d jobs withdrawn from the queue\n", res.Cancelled)
	}
	if acc != nil {
		printAccuracy(stdout, acc)
	}
	if shadow != nil {
		printScoreboard(stdout, shadow)
	}

	if *csvOut != "" {
		if err := writeCSV(*csvOut, res); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "schedule written to %s\n", *csvOut)
	}
	if *usageOut != "" {
		if err := writeUsageCSV(*usageOut, res); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "usage timeline written to %s\n", *usageOut)
	}
	return nil
}

// runRegret executes the predictive-admission regret sweep and prints the
// cell table plus the headline mean-regret-by-scale series per headroom.
func runRegret(stdout io.Writer, scale int, seed int64, errScales, biases, headrooms, jsonOut string) error {
	cfg := exp.DefaultRegretConfig()
	cfg.Scale, cfg.Seed = scale, seed
	var err error
	if cfg.ErrScales, err = overrideFloats(cfg.ErrScales, errScales); err != nil {
		return fmt.Errorf("-err-scales: %w", err)
	}
	if cfg.Biases, err = overrideFloats(cfg.Biases, biases); err != nil {
		return fmt.Errorf("-biases: %w", err)
	}
	if cfg.Headrooms, err = overrideFloats(cfg.Headrooms, headrooms); err != nil {
		return fmt.Errorf("-headrooms: %w", err)
	}
	report, err := exp.RegretExperiment(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(stdout, exp.TableRegret(report).String())
	for _, h := range cfg.Headrooms {
		mean := report.MeanRegretByScale(h)
		fmt.Fprintf(stdout, "mean regret (headroom %g):", h)
		for _, s := range cfg.ErrScales {
			fmt.Fprintf(stdout, "  err %g -> %.4f", s, mean[s])
		}
		fmt.Fprintln(stdout)
	}
	if jsonOut != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonOut, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "report written to %s\n", jsonOut)
	}
	return nil
}

// overrideFloats parses a comma-separated flag value, keeping the default
// when the flag was not set.
//
// taint: sanitizer rejects sweep lists that are not comma-separated floats
func overrideFloats(def []float64, s string) ([]float64, error) {
	if s == "" {
		return def, nil
	}
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// printAccuracy reports the per-key prediction-error summary accumulated
// during the run (one key per workload name; minutes for readability, as
// in the paper's tables), including the signed tail quantiles and the
// asymmetric cost the TARE view argues schedulers actually pay.
func printAccuracy(stdout io.Writer, acc *accuracy.Tracker) {
	for _, key := range acc.Keys() {
		ks := acc.Snapshot()[key]
		fmt.Fprintf(stdout, "accuracy[%s] scored %d completions (%d over, %d under, %d exact)\n",
			key, ks.Count, ks.Over, ks.Under, ks.Exact)
		fmt.Fprintf(stdout, "accuracy[%s] mean err %.2f min, rms %.2f min, abs p50/p90/p99 %.1f / %.1f / %.1f min\n",
			key, ks.MeanError/60, ks.RMSError/60,
			ks.P50AbsError/60, ks.P90AbsError/60, ks.P99AbsError/60)
		fmt.Fprintf(stdout, "accuracy[%s] signed p50/p90/p99 %.1f / %.1f / %.1f min, asym cost %.2f min (ratio %g), tail score %.2f min\n",
			key, ks.P50Error/60, ks.P90Error/60, ks.P99Error/60,
			ks.MeanAsymCost/60, ks.CostRatio, ks.TailScore/60)
	}
}

// printScoreboard reports the shadow stable's ranking after the run.
func printScoreboard(stdout io.Writer, shadow *accuracy.Shadow) {
	fmt.Fprintln(stdout, "shadow scoreboard (window tail score, minutes; lower is better)")
	for i, e := range shadow.Scoreboard() {
		state := "eligible"
		if !e.Eligible {
			state = "warming"
		}
		fmt.Fprintf(stdout, "  #%d %-16s %10.2f  (%s, %d scored, mean err %.2f min)\n",
			i+1, e.Name, e.Score/60, state, e.Snapshot.Count, e.Snapshot.MeanError/60)
	}
}

// runReselect executes the drift-injection re-selection comparison and
// prints one block per workload: what switched, when, and whether the
// adaptive arm's post-step asymmetric cost beats the pinned baseline.
func runReselect(stdout io.Writer, name string, scale int, seed int64, tailCost, fill, stepFrac float64) error {
	dc := exp.DefaultDriftConfig()
	dc.CostRatio, dc.Fill, dc.StepFrac = tailCost, fill, stepFrac
	var names []string
	if name != "" {
		names = []string{name}
	}
	cfg := exp.DefaultConfig
	cfg.Scale, cfg.Seed = scale, seed
	results, err := exp.ReselectSweep(names, dc, cfg)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "drift-injection re-selection sweep (policy Backfill, fill %.2f, step at %.0f%%, cost ratio %g)\n",
		dc.Fill, 100*dc.StepFrac, dc.CostRatio)
	for _, r := range results {
		fmt.Fprintf(stdout, "%s: step at job %d, %d post-step completions\n",
			r.Workload, r.StepAt, r.Baseline.N)
		fmt.Fprintf(stdout, "  baseline %-12s post-step tail %8.1f min, mean asym cost %8.1f min\n",
			r.Baseline.Predictor, r.Baseline.PostTail/60, r.Baseline.PostMeanCost/60)
		fmt.Fprintf(stdout, "  adaptive %-12s post-step tail %8.1f min, mean asym cost %8.1f min\n",
			r.Adaptive.Predictor, r.Adaptive.PostTail/60, r.Adaptive.PostMeanCost/60)
		for _, ev := range r.Adaptive.Events {
			fmt.Fprintf(stdout, "  switch #%d at completion %d: %s -> %s (score %.1f -> %.1f min, drift p=%.2g)\n",
				ev.Seq, ev.Completions, ev.From, ev.To, ev.FromScore/60, ev.ToScore/60, ev.Drift.P)
		}
		if r.Adaptive.Switches == 0 {
			fmt.Fprintln(stdout, "  no switch")
		}
		fmt.Fprintf(stdout, "  welch t=%.2f p=%.3g on per-completion asymmetric cost\n", r.T, r.P)
	}
	return nil
}

func loadWorkload(name, in string, nodes, scale int, seed int64) (*workload.Workload, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close() //lint:allow errdrop read-only file; a close error cannot lose data
		return workload.ReadSWF(f, workload.SWFOptions{Name: in, MachineNodes: nodes})
	}
	if name == "" {
		return nil, fmt.Errorf("need -workload or -in")
	}
	return workload.Study(name, scale, seed)
}

func writeCSV(path string, res *sim.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	// Close errors matter on a written file (buffered data may only hit the
	// disk at close); surface one unless an earlier error is already set.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"id", "user", "queue", "nodes", "submit", "start", "end", "wait", "runtime", "cancelled"}); err != nil {
		return err
	}
	for _, j := range res.Jobs {
		rec := []string{
			strconv.Itoa(j.ID), j.User, j.Queue, strconv.Itoa(j.Nodes),
			strconv.FormatInt(j.SubmitTime, 10), strconv.FormatInt(j.StartTime, 10),
			strconv.FormatInt(j.EndTime, 10), strconv.FormatInt(j.WaitTime(), 10),
			strconv.FormatInt(j.RunTime, 10), strconv.FormatBool(j.Cancelled),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

func writeUsageCSV(path string, res *sim.Result) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"time", "busy_nodes"}); err != nil {
		return err
	}
	for _, p := range sim.NodeUsage(res.Jobs) {
		if err := cw.Write([]string{
			strconv.FormatInt(p.Time, 10), strconv.Itoa(p.Nodes),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
