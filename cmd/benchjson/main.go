// Command benchjson turns `go test -bench` output into a schema-stable
// JSON document and gates candidate runs against a committed baseline —
// the tooling behind the repo's BENCH_<pr>.json benchmark trajectory and
// the CI bench-gate job.
//
//	go test -run '^$' -bench . -benchmem -cpu 1,2,4,8 . > bench.txt
//	benchjson parse -o BENCH_0007.json < bench.txt
//	benchjson compare BENCH_0006.json BENCH_0007.json
//
// parse reads benchmark result lines (including repeated header blocks
// from concatenated runs) and emits one JSON document: per benchmark and
// GOMAXPROCS value, iterations, ns/op, B/op, allocs/op, and any custom
// metrics. Entries are sorted and the document carries no timestamps or
// host-specific paths, so regenerating on the same machine and code
// produces stable diffs. A `-cpu` sweep shows up as one entry per procs
// value under the same name — the parallel-scaling series. Repeated
// measurements of the same benchmark (`-count=N`) collapse to a single
// entry holding the minimum over the samples — the lowest observation is
// the estimate least contaminated by scheduling noise — with `samples`
// recording how many runs were folded in.
//
// compare checks a candidate document against a baseline:
//
//   - allocs/op may never regress: allocations are deterministic for a
//     given code path, so any increase fails regardless of hardware;
//   - ns/op regressions beyond 10% fail and beyond 5% warn — but the
//     failure is downgraded to a warning when the two documents were
//     measured on different CPU models, where wall-time comparison is
//     noise (CI baselines are refreshed on the pinned runner profile);
//   - a benchmark present in the baseline but missing from the candidate
//     fails (a silently dropped benchmark is a silently dropped claim).
//
// compare exits 1 on any failure, so it can gate CI and `make bench-gate`
// directly.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

const schemaVersion = 1

// Doc is the top-level JSON document.
type Doc struct {
	Schema int     `json:"schema"`
	Goos   string  `json:"goos"`
	Goarch string  `json:"goarch"`
	CPU    string  `json:"cpu"`
	Benchs []Bench `json:"benchmarks"`
}

// Bench is one benchmark measurement at one GOMAXPROCS value. B/op and
// allocs/op are -1 when the run did not pass -benchmem. When several
// samples of the same benchmark were folded together (-count=N), Samples
// is the sample count and each numeric column holds the per-column
// minimum.
type Bench struct {
	Pkg     string             `json:"pkg"`
	Name    string             `json:"name"`
	Procs   int                `json:"procs"`
	Iters   int64              `json:"iters"`
	NsOp    float64            `json:"nsPerOp"`
	BOp     int64              `json:"bPerOp"`
	Allocs  int64              `json:"allocsPerOp"`
	Samples int                `json:"samples,omitempty"`
	Metric  map[string]float64 `json:"metrics,omitempty"`
}

func (b Bench) key() string {
	return b.Pkg + "." + b.Name + "-" + strconv.Itoa(b.Procs)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "parse":
		fs := flag.NewFlagSet("parse", flag.ExitOnError)
		out := fs.String("o", "", "output file (default stdout)")
		_ = fs.Parse(os.Args[2:])
		doc, err := Parse(os.Stdin)
		if err != nil {
			fatal(err)
		}
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if *out == "" {
			_, err = os.Stdout.Write(data)
		} else {
			err = os.WriteFile(*out, data, 0o644)
		}
		if err != nil {
			fatal(err)
		}
	case "compare":
		fs := flag.NewFlagSet("compare", flag.ExitOnError)
		failPct := fs.Float64("fail", 10, "ns/op regression percentage that fails")
		warnPct := fs.Float64("warn", 5, "ns/op regression percentage that warns")
		_ = fs.Parse(os.Args[2:])
		if fs.NArg() != 2 {
			usage()
		}
		base, err := load(fs.Arg(0))
		if err != nil {
			fatal(err)
		}
		cand, err := load(fs.Arg(1))
		if err != nil {
			fatal(err)
		}
		report, failed := Compare(base, cand, *warnPct, *failPct)
		fmt.Print(report)
		if failed {
			os.Exit(1)
		}
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage:
  benchjson parse [-o out.json] < bench.txt
  benchjson compare [-warn pct] [-fail pct] baseline.json candidate.json
`)
	os.Exit(2)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

func load(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var d Doc
	if err := json.Unmarshal(data, &d); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if d.Schema != schemaVersion {
		return nil, fmt.Errorf("%s: schema %d, this tool reads %d", path, d.Schema, schemaVersion)
	}
	return &d, nil
}

// Parse reads `go test -bench` output — possibly several concatenated
// runs — into one document. Later header blocks must agree on goos/goarch;
// the CPU string is taken from the first block that has one.
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{Schema: schemaVersion}
	var pkg string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			if doc.CPU == "" {
				doc.CPU = strings.TrimPrefix(line, "cpu: ")
			}
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, ok, err := parseResultLine(line)
			if err != nil {
				return nil, err
			}
			if ok {
				b.Pkg = pkg
				doc.Benchs = append(doc.Benchs, b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(doc.Benchs) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found")
	}
	sort.SliceStable(doc.Benchs, func(i, j int) bool {
		return doc.Benchs[i].key() < doc.Benchs[j].key()
	})
	doc.Benchs = mergeSamples(doc.Benchs)
	return doc, nil
}

// mergeSamples collapses key-adjacent entries (the slice is sorted) from
// -count=N runs into one entry per benchmark, taking the minimum of each
// numeric column: the lowest observation is the one least perturbed by
// scheduler and cache noise, so gating on minima keeps the comparison
// stable on busy machines.
func mergeSamples(in []Bench) []Bench {
	out := in[:0]
	for _, b := range in {
		if len(out) == 0 || out[len(out)-1].key() != b.key() {
			b.Samples = 1
			out = append(out, b)
			continue
		}
		m := &out[len(out)-1]
		m.Samples++
		if b.NsOp < m.NsOp {
			m.NsOp = b.NsOp
			m.Iters = b.Iters
		}
		if b.BOp >= 0 && (m.BOp < 0 || b.BOp < m.BOp) {
			m.BOp = b.BOp
		}
		if b.Allocs >= 0 && (m.Allocs < 0 || b.Allocs < m.Allocs) {
			m.Allocs = b.Allocs
		}
		for k, v := range b.Metric {
			if old, ok := m.Metric[k]; !ok || v < old {
				if m.Metric == nil {
					m.Metric = map[string]float64{}
				}
				m.Metric[k] = v
			}
		}
	}
	for i := range out {
		if out[i].Samples == 1 {
			out[i].Samples = 0 // omitted from the JSON for single-shot runs
		}
	}
	return out
}

// parseResultLine parses one result line:
//
//	BenchmarkName-8   1000000   123.4 ns/op   12 B/op   3 allocs/op   5.6 custom-metric
//
// ok=false for lines that start with Benchmark but are not results (e.g. a
// bare name echoed by -v).
func parseResultLine(line string) (Bench, bool, error) {
	f := strings.Fields(line)
	if len(f) < 3 || len(f)%2 != 0 {
		return Bench{}, false, nil
	}
	b := Bench{Name: f[0], Procs: 1, BOp: -1, Allocs: -1}
	if i := strings.LastIndexByte(b.Name, '-'); i > 0 {
		if n, err := strconv.Atoi(b.Name[i+1:]); err == nil && n > 0 {
			b.Procs = n
			b.Name = b.Name[:i]
		}
	}
	b.Name = strings.TrimPrefix(b.Name, "Benchmark")
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Bench{}, false, nil
	}
	b.Iters = iters
	for i := 2; i+1 < len(f); i += 2 {
		val, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Bench{}, false, fmt.Errorf("bad value %q in %q", f[i], line)
		}
		switch unit := f[i+1]; unit {
		case "ns/op":
			b.NsOp = val
		case "B/op":
			b.BOp = int64(val)
		case "allocs/op":
			b.Allocs = int64(val)
		case "MB/s":
			// throughput is derivable from ns/op; skip
		default:
			if b.Metric == nil {
				b.Metric = map[string]float64{}
			}
			b.Metric[unit] = val
		}
	}
	return b, true, nil
}

// Compare reports candidate vs baseline and whether the gate fails.
func Compare(base, cand *Doc, warnPct, failPct float64) (string, bool) {
	var sb strings.Builder
	failed := false
	cpuMatch := base.CPU != "" && base.CPU == cand.CPU
	if !cpuMatch {
		fmt.Fprintf(&sb, "note: cpu profiles differ (%q vs %q); ns/op failures downgraded to warnings\n",
			base.CPU, cand.CPU)
	}
	candBy := make(map[string]Bench, len(cand.Benchs))
	for _, b := range cand.Benchs {
		candBy[b.key()] = b
	}
	baseKeys := make(map[string]bool, len(base.Benchs))
	for _, bb := range base.Benchs {
		baseKeys[bb.key()] = true
		cb, ok := candBy[bb.key()]
		if !ok {
			fmt.Fprintf(&sb, "FAIL %s: present in baseline but missing from candidate\n", bb.key())
			failed = true
			continue
		}
		if bb.Allocs >= 0 && cb.Allocs >= 0 && cb.Allocs > bb.Allocs {
			fmt.Fprintf(&sb, "FAIL %s: allocs/op %d -> %d (allocation regressions are deterministic)\n",
				bb.key(), bb.Allocs, cb.Allocs)
			failed = true
		}
		if bb.NsOp <= 0 {
			continue
		}
		pct := (cb.NsOp - bb.NsOp) / bb.NsOp * 100
		switch {
		case pct > failPct && cpuMatch:
			fmt.Fprintf(&sb, "FAIL %s: ns/op %.1f -> %.1f (%+.1f%%, limit %+.1f%%)\n",
				bb.key(), bb.NsOp, cb.NsOp, pct, failPct)
			failed = true
		case pct > failPct:
			fmt.Fprintf(&sb, "warn %s: ns/op %.1f -> %.1f (%+.1f%%; would fail on the baseline's cpu profile)\n",
				bb.key(), bb.NsOp, cb.NsOp, pct)
		case pct > warnPct:
			fmt.Fprintf(&sb, "warn %s: ns/op %.1f -> %.1f (%+.1f%%)\n",
				bb.key(), bb.NsOp, cb.NsOp, pct)
		}
	}
	extra := 0
	for _, cb := range cand.Benchs {
		if !baseKeys[cb.key()] {
			extra++
		}
	}
	if extra > 0 {
		fmt.Fprintf(&sb, "note: %d benchmark(s) in candidate have no baseline yet\n", extra)
	}
	if failed {
		sb.WriteString("bench-gate: FAIL\n")
	} else {
		fmt.Fprintf(&sb, "bench-gate: ok (%d benchmarks compared)\n", len(base.Benchs))
	}
	return sb.String(), failed
}
