package main

import (
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: repro
cpu: Example CPU @ 2.40GHz
BenchmarkPredictParallel      	 1000000	       950.0 ns/op	     256 B/op	       6 allocs/op
BenchmarkPredictParallel-2    	 2000000	       500.0 ns/op	     256 B/op	       6 allocs/op
BenchmarkPredictParallel-4    	 4000000	       260.0 ns/op	     256 B/op	       6 allocs/op
BenchmarkPredictParallel-8    	 7500000	       140.0 ns/op	     256 B/op	       6 allocs/op
BenchmarkAblation_GAvsGreedy-8	       3	 400000000 ns/op	        12.50 ga-err-min	        14.00 greedy-err-min
PASS
ok  	repro	12.3s
goos: linux
goarch: amd64
pkg: repro/internal/histstore
cpu: Example CPU @ 2.40GHz
BenchmarkStoreGet-8           	50000000	        25.0 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	repro/internal/histstore	2.1s
`

func parseSample(t *testing.T, text string) *Doc {
	t.Helper()
	doc, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return doc
}

func TestParse(t *testing.T) {
	doc := parseSample(t, sampleBench)
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.CPU != "Example CPU @ 2.40GHz" {
		t.Fatalf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.CPU)
	}
	if len(doc.Benchs) != 6 {
		t.Fatalf("got %d benchmarks, want 6", len(doc.Benchs))
	}
	// The -cpu sweep becomes a per-procs series under one name.
	var procs []int
	for _, b := range doc.Benchs {
		if b.Pkg == "repro" && b.Name == "PredictParallel" {
			procs = append(procs, b.Procs)
		}
	}
	if len(procs) != 4 || procs[0] != 1 || procs[3] != 8 {
		t.Fatalf("PredictParallel procs series = %v", procs)
	}
	// Custom metrics survive; memory columns default to -1 when absent.
	for _, b := range doc.Benchs {
		if b.Name == "Ablation_GAvsGreedy" {
			if b.Metric["ga-err-min"] != 12.5 || b.Metric["greedy-err-min"] != 14 {
				t.Fatalf("metrics = %v", b.Metric)
			}
		}
		if b.Name == "StoreGet" {
			if b.Pkg != "repro/internal/histstore" || b.BOp != 0 || b.Allocs != 0 {
				t.Fatalf("StoreGet = %+v", b)
			}
		}
	}
	// Entries are sorted by key, so re-parsing concatenations is stable.
	for i := 1; i < len(doc.Benchs); i++ {
		if doc.Benchs[i-1].key() >= doc.Benchs[i].key() {
			t.Fatalf("not sorted: %s >= %s", doc.Benchs[i-1].key(), doc.Benchs[i].key())
		}
	}
}

func TestParseMergesRepeatedSamples(t *testing.T) {
	// Simulate -count=3: the same benchmark reported three times with
	// different timings collapses to one entry holding the minimum.
	text := strings.Replace(sampleBench,
		"BenchmarkStoreGet-8           	50000000	        25.0 ns/op	       0 B/op	       0 allocs/op",
		"BenchmarkStoreGet-8           	50000000	        25.0 ns/op	       0 B/op	       0 allocs/op\n"+
			"BenchmarkStoreGet-8           	40000000	        31.0 ns/op	       0 B/op	       0 allocs/op\n"+
			"BenchmarkStoreGet-8           	60000000	        22.5 ns/op	       0 B/op	       0 allocs/op", 1)
	doc := parseSample(t, text)
	if len(doc.Benchs) != 6 {
		t.Fatalf("got %d benchmarks, want 6 (samples must merge)", len(doc.Benchs))
	}
	for _, b := range doc.Benchs {
		if b.Name == "StoreGet" {
			if b.Samples != 3 || b.NsOp != 22.5 || b.Iters != 60000000 {
				t.Fatalf("merged StoreGet = %+v", b)
			}
		} else if b.Samples != 0 {
			t.Fatalf("single-shot %s has samples=%d, want omitted", b.Name, b.Samples)
		}
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse(strings.NewReader("goos: linux\nPASS\n")); err == nil {
		t.Fatal("expected an error for output with no result lines")
	}
}

// withNs returns a copy of the sample with PredictParallel-1's ns/op
// rescaled.
func withNs(t *testing.T, ns string) *Doc {
	t.Helper()
	return parseSample(t, strings.Replace(sampleBench,
		"950.0 ns/op", ns+" ns/op", 1))
}

func TestCompareGate(t *testing.T) {
	base := parseSample(t, sampleBench)

	// Identical docs pass.
	report, failed := Compare(base, parseSample(t, sampleBench), 5, 10)
	if failed || !strings.Contains(report, "bench-gate: ok") {
		t.Fatalf("identical compare failed:\n%s", report)
	}

	// >10%% ns/op regression on the same cpu profile fails.
	report, failed = Compare(base, withNs(t, "1100.0"), 5, 10)
	if !failed || !strings.Contains(report, "FAIL repro.PredictParallel-1") {
		t.Fatalf("regression did not fail:\n%s", report)
	}

	// 5–10%% warns but passes.
	report, failed = Compare(base, withNs(t, "1020.0"), 5, 10)
	if failed || !strings.Contains(report, "warn repro.PredictParallel-1") {
		t.Fatalf("mid regression mishandled:\n%s", report)
	}

	// On a different cpu profile, the same regression downgrades to a warning.
	cand := withNs(t, "1100.0")
	cand.CPU = "Other CPU @ 3.00GHz"
	report, failed = Compare(base, cand, 5, 10)
	if failed || !strings.Contains(report, "would fail on the baseline's cpu profile") {
		t.Fatalf("cross-profile compare mishandled:\n%s", report)
	}

	// allocs/op regressions fail even across cpu profiles.
	cand = parseSample(t, strings.Replace(sampleBench, "6 allocs/op", "7 allocs/op", 1))
	cand.CPU = "Other CPU @ 3.00GHz"
	report, failed = Compare(base, cand, 5, 10)
	if !failed || !strings.Contains(report, "allocs/op 6 -> 7") {
		t.Fatalf("alloc regression mishandled:\n%s", report)
	}

	// A benchmark dropped from the candidate fails.
	cand = parseSample(t, strings.Replace(sampleBench,
		"BenchmarkStoreGet-8           	50000000	        25.0 ns/op	       0 B/op	       0 allocs/op\n", "", 1))
	report, failed = Compare(base, cand, 5, 10)
	if !failed || !strings.Contains(report, "missing from candidate") {
		t.Fatalf("dropped benchmark mishandled:\n%s", report)
	}
}
