package main

import (
	"strings"
	"testing"
)

func TestReport(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "CTC", "-scale", "100"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"workload CTC", "run time", "arrivals by hour"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Without simulation there are no wait statistics.
	if strings.Contains(out, "wait ") {
		t.Fatalf("unexpected wait stats:\n%s", out)
	}
}

func TestReportWithSimulation(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "ANL", "-scale", "50", "-simulate", "Backfill"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ANL/Backfill") || !strings.Contains(out, "wait") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run(nil, &sb); err == nil {
		t.Error("no source should error")
	}
	if err := run([]string{"-workload", "ANL", "-scale", "100", "-simulate", "EDF"}, &sb); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"-in", "/missing.swf"}, &sb); err == nil {
		t.Error("missing trace should error")
	}
}
