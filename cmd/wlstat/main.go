// Command wlstat characterizes a workload: the distributions and structure
// that decide whether history-based run-time prediction can work on it
// (run-time and node distributions, user concentration, repetition of
// (user, application) keys, arrival cycles, and the user overestimation
// profile).
//
// Usage:
//
//	wlstat -workload ANL [-scale N] [-seed S]
//	wlstat -in trace.swf [-nodes N]
//	wlstat -in trace.swf -simulate Backfill   # adds realized wait stats
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "wlstat:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("wlstat", flag.ContinueOnError)
	name := fs.String("workload", "", "study workload (ANL, CTC, SDSC95, SDSC96)")
	in := fs.String("in", "", "SWF trace to read instead of generating")
	nodes := fs.Int("nodes", 0, "machine size when reading SWF (0 = infer)")
	scale := fs.Int("scale", 10, "divide the Table-1 trace size by this factor")
	seed := fs.Int64("seed", 42, "generator seed")
	simulate := fs.String("simulate", "", "run this policy (with max run times) to add wait statistics")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var w *workload.Workload
	var err error
	switch {
	case *in != "":
		f, ferr := os.Open(*in)
		if ferr != nil {
			return ferr
		}
		w, err = workload.ReadSWF(f, workload.SWFOptions{Name: *in, MachineNodes: *nodes})
		_ = f.Close() // read-only file; the ReadSWF error is the interesting one
	case *name != "":
		w, err = workload.Study(*name, *scale, *seed)
	default:
		return fmt.Errorf("need -workload or -in (see -h)")
	}
	if err != nil {
		return err
	}

	if *simulate != "" {
		pol := sched.ByName(*simulate)
		if pol == nil {
			return fmt.Errorf("unknown policy %q", *simulate)
		}
		res, err := sim.Run(w, pol, predict.MaxRuntime{}, sim.Options{})
		if err != nil {
			return err
		}
		w = &workload.Workload{
			Name: w.Name + "/" + pol.Name(), MachineNodes: w.MachineNodes,
			Jobs: res.Jobs, Chars: w.Chars, HasMaxRT: w.HasMaxRT,
		}
	}

	return workload.Analyze(w).Report(stdout)
}
