package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-list"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"table1", "table6", "table15", "section4", "walkforward"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("list missing %s:\n%s", want, out.String())
		}
	}
}

func TestSingleTable(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scale", "100", "table1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 1") || !strings.Contains(out.String(), "ANL") {
		t.Fatalf("output:\n%s", out.String())
	}
	// Only the requested table is produced.
	if strings.Contains(out.String(), "Table 10") {
		t.Fatal("unrequested table rendered")
	}
}

func TestSchedulingTables(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scale", "100", "-timing", "table10", "table11"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table 10") || !strings.Contains(s, "Table 11") {
		t.Fatalf("output:\n%s", s)
	}
	if !strings.Contains(s, "took") {
		t.Fatal("timing lines missing")
	}
}

func TestUnknownTable(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"table99"}, &out, &errOut); err == nil {
		t.Fatal("unknown table id should error")
	}
}

func TestLoadTemplatesFlag(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "anl.json")
	if err := os.WriteFile(path, []byte(`[{"chars":["u"],"pred":"mean"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut strings.Builder
	err := run([]string{"-scale", "100", "-templates", "ANL=" + path, "table1"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errOut.String(), "loaded 1 templates for ANL") {
		t.Fatalf("stderr:\n%s", errOut.String())
	}

	// Malformed specs fail.
	for _, spec := range []string{"ANL", "NERSC=" + path, "ANL=/missing.json"} {
		if err := run([]string{"-templates", spec, "table1"}, &out, &errOut); err == nil {
			t.Errorf("spec %q should error", spec)
		}
	}
}

func TestJSONOutput(t *testing.T) {
	var out, errOut strings.Builder
	if err := run([]string{"-scale", "200", "-json", "table1"}, &out, &errOut); err != nil {
		t.Fatal(err)
	}
	var obj struct {
		ID      string     `json:"id"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(out.String())), &obj); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, out.String())
	}
	if obj.ID != "Table 1" || len(obj.Rows) != 4 {
		t.Fatalf("JSON = %+v", obj)
	}
}
