// Command tables regenerates every table of the paper (Tables 1 and 4–15),
// the §4 interarrival-compression experiment, and the repository's
// ablations, printing them in the paper's layout.
//
// Usage:
//
//	tables [-scale N] [-seed S] [-list] [-search] [-templates SPEC] [table ids...]
//
// With no ids, every table is produced. Scale divides the Table-1 trace
// sizes (scale 1 = full size; the default 10 runs the full suite in under a
// minute). -search first runs the paper's GA template search per workload;
// -templates loads searched sets produced by gasearch -o.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/exp"
	"repro/internal/ga"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "tables:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	scale := fs.Int("scale", 10, "divide Table-1 trace sizes by this factor (1 = full size)")
	seed := fs.Int64("seed", 42, "workload generator seed")
	list := fs.Bool("list", false, "list table identifiers and exit")
	timing := fs.Bool("timing", false, "print per-table wall-clock time")
	asJSON := fs.Bool("json", false, "emit tables as JSON objects (one per line)")
	search := fs.Bool("search", false, "GA-search template sets per workload before running (as the paper does)")
	templates := fs.String("templates", "",
		"load searched template sets, e.g. ANL=anl.json,CTC=ctc.json (from gasearch -o)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	all := exp.AllTables()
	if *list {
		for _, e := range all {
			fmt.Fprintln(stdout, e.ID)
		}
		return nil
	}

	want := map[string]bool{}
	for _, a := range fs.Args() {
		want[a] = true
	}
	known := map[string]bool{}
	for _, e := range all {
		known[e.ID] = true
	}
	for id := range want {
		if !known[id] {
			return fmt.Errorf("unknown table %q (use -list)", id)
		}
	}

	cfg := exp.Config{Scale: *scale, Seed: *seed}
	if *templates != "" {
		if err := loadTemplates(*templates, stderr); err != nil {
			return fmt.Errorf("-templates: %w", err)
		}
	}
	if *search {
		if err := searchTemplates(cfg, stderr); err != nil {
			return fmt.Errorf("template search: %w", err)
		}
	}
	for _, e := range all {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		start := time.Now()
		t, err := e.Fn(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if *asJSON {
			data, err := json.Marshal(t)
			if err != nil {
				return fmt.Errorf("json: %w", err)
			}
			fmt.Fprintln(stdout, string(data))
		} else if err := t.Render(stdout); err != nil {
			return fmt.Errorf("render: %w", err)
		}
		if *timing {
			fmt.Fprintf(stdout, "[%s took %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// searchTemplates runs the paper's GA template search once per study
// workload (on a reduced sample for speed) and installs the best sets for
// the "smith" predictor via exp.SetTemplates. The paper searches per
// algorithm/trace pair; one set per trace captures most of the benefit at a
// fraction of the cost.
func searchTemplates(cfg exp.Config, stderr io.Writer) error {
	searchScale := cfg.Scale * 4
	if searchScale < 20 {
		searchScale = 20
	}
	for i, name := range workload.StudyNames {
		w, err := workload.Study(name, searchScale, cfg.Seed+int64(i)*1000)
		if err != nil {
			return err
		}
		enc := ga.NewEncoding(w)
		res, err := ga.Search(enc, ga.RuntimeError(ga.FromTrace(w)), ga.Config{
			PopSize: 20, Generations: 15, Seed: 1, Now: time.Now,
		})
		if err != nil {
			return err
		}
		exp.SetTemplates(name, res.Best)
		fmt.Fprintf(stderr, "searched %s: %d templates, fitness error %.1f min\n",
			name, len(res.Best), res.BestError/60)
	}
	return nil
}

// loadTemplates parses "-templates WORKLOAD=file[,WORKLOAD=file...]" and
// installs each JSON template set (produced by gasearch -o) for its
// workload.
func loadTemplates(spec string, stderr io.Writer) error {
	for _, pair := range strings.Split(spec, ",") {
		name, file, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			return fmt.Errorf("malformed entry %q (want WORKLOAD=file)", pair)
		}
		known := false
		for _, n := range workload.StudyNames {
			if n == name {
				known = true
			}
		}
		if !known {
			return fmt.Errorf("unknown workload %q (want one of %v)", name, workload.StudyNames)
		}
		data, err := os.ReadFile(file)
		if err != nil {
			return err
		}
		ts, err := core.UnmarshalTemplates(data)
		if err != nil {
			return fmt.Errorf("%s: %v", file, err)
		}
		exp.SetTemplates(name, ts)
		fmt.Fprintf(stderr, "loaded %d templates for %s from %s\n", len(ts), name, file)
	}
	return nil
}
