package main

import (
	"encoding/csv"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func TestRunSummary(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-workload", "SDSC95", "-scale", "100", "-policy", "FCFS",
		"-predictor", "actual"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "mean error    0.00 minutes") {
		t.Fatalf("FCFS+actual should be exact:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "preds.csv")
	var sb strings.Builder
	err := run([]string{"-workload", "SDSC95", "-scale", "100", "-policy", "FCFS",
		"-predictor", "actual", "-csv", path}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 10 {
		t.Fatalf("only %d rows", len(recs))
	}
	// Exactness carries to the CSV: predicted == actual for every row.
	for _, r := range recs[1:] {
		p, _ := strconv.ParseInt(r[2], 10, 64)
		a, _ := strconv.ParseInt(r[3], 10, 64)
		if p != a {
			t.Fatalf("row %v: predicted %d != actual %d", r, p, a)
		}
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-workload", "NERSC"}, &sb); err == nil {
		t.Error("unknown workload should error")
	}
	if err := run([]string{"-policy", "EDF"}, &sb); err == nil {
		t.Error("unknown policy should error")
	}
	if err := run([]string{"-scale", "100", "-predictor", "psychic"}, &sb); err == nil {
		t.Error("unknown predictor should error")
	}
}
