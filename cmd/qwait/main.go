// Command qwait runs one wait-time prediction experiment: a workload is
// replayed through a scheduling algorithm (scheduling with maximum run
// times, the deployed configuration), and the wait time of every
// application is predicted at submission by forward-simulating the
// scheduler with the chosen run-time predictor. It reports the mean error
// in minutes and as a percentage of the mean wait time — the cells of
// Tables 4–9 — and optionally the per-job predictions as CSV.
//
// Usage:
//
//	qwait -workload ANL -policy Backfill -predictor smith [-scale N] [-seed S]
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"

	"repro/internal/exp"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "qwait:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("qwait", flag.ContinueOnError)
	name := fs.String("workload", "ANL", "study workload (ANL, CTC, SDSC95, SDSC96)")
	scale := fs.Int("scale", 10, "divide the Table-1 trace size by this factor")
	seed := fs.Int64("seed", 42, "generator seed")
	policy := fs.String("policy", "Backfill", "FCFS, LWF, Backfill, or Backfill/EASY")
	kind := fs.String("predictor", "smith", "actual, maxrt, smith, gibbons, downey-avg, downey-med")
	csvOut := fs.String("csv", "", "write per-job (predicted, actual) waits as CSV")
	if err := fs.Parse(args); err != nil {
		return err
	}

	w, err := workload.Study(*name, *scale, *seed)
	if err != nil {
		return err
	}
	pol := sched.ByName(*policy)
	if pol == nil {
		return fmt.Errorf("unknown policy %q", *policy)
	}
	cfg := exp.Config{Scale: *scale, Seed: *seed}

	if *csvOut == "" {
		r, err := exp.WaitTimeExperiment(w, pol, exp.PredictorKind(*kind), cfg)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "workload      %s (%d jobs)\n", r.Workload, r.N)
		fmt.Fprintf(stdout, "policy        %s\n", r.Policy)
		fmt.Fprintf(stdout, "predictor     %s\n", r.Predictor)
		fmt.Fprintf(stdout, "mean wait     %.2f minutes\n", r.MeanWaitMin)
		fmt.Fprintf(stdout, "mean error    %.2f minutes\n", r.MeanErrMin)
		fmt.Fprintf(stdout, "pct mean wait %.0f%%\n", r.PctMeanWait)
		return nil
	}

	// CSV mode re-runs the experiment recording per-job detail.
	underTest, err := exp.NewPredictor(exp.PredictorKind(*kind), w)
	if err != nil {
		return err
	}
	type rec struct {
		job  *workload.Job
		pred int64
	}
	var recs []rec
	var hookErr error
	opts := sim.Options{
		OnSubmit: func(now int64, j *workload.Job, queue, running []*workload.Job) {
			if hookErr != nil {
				return
			}
			wait, err := waitpred.PredictWait(now, j, queue, running,
				w.MachineNodes, pol, underTest, predict.MaxRuntime{}, 0)
			if err != nil {
				hookErr = err
				return
			}
			recs = append(recs, rec{j, wait})
		},
		OnFinish: func(now int64, j *workload.Job) { underTest.Observe(j) },
	}
	if _, err := sim.Run(w, pol, predict.MaxRuntime{}, opts); err != nil {
		return err
	}
	if hookErr != nil {
		return hookErr
	}
	f, err := os.Create(*csvOut)
	if err != nil {
		return err
	}
	// Backstop for the early-return error paths; the success path closes
	// explicitly below so a flush-at-close failure is reported.
	defer func() { _ = f.Close() }() //lint:allow errdrop backstop close on early-return error paths; the success path closes and checks explicitly below
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"id", "submit", "predicted_wait", "actual_wait"}); err != nil {
		return err
	}
	for _, r := range recs {
		if err := cw.Write([]string{
			strconv.Itoa(r.job.ID),
			strconv.FormatInt(r.job.SubmitTime, 10),
			strconv.FormatInt(r.pred, 10),
			strconv.FormatInt(r.job.WaitTime(), 10),
		}); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "wrote %d predictions to %s\n", len(recs), *csvOut)
	return nil
}
