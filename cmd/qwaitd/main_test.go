package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/workload"
)

// writeTestSWF produces a small SWF trace for warming.
func writeTestSWF(t *testing.T, path string) int {
	t.Helper()
	w, err := workload.Study("ANL", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSWF(f, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return len(w.Jobs)
}

func TestBuildDefault(t *testing.T) {
	var sb strings.Builder
	srv, addr, state, err := build([]string{"-addr", ":9999", "-nodes", "128"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if srv == nil || addr != ":9999" || state != "" {
		t.Fatalf("build = %v %q %q", srv, addr, state)
	}
	if !strings.Contains(sb.String(), "128-node machine") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestBuildWithWarmAndState(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "warm.swf")
	state := filepath.Join(dir, "state.jsonl")
	n := writeTestSWF(t, trace)

	var sb strings.Builder
	srv, _, statePath, err := build([]string{"-warm", trace, "-state", state}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if statePath != state {
		t.Fatalf("state path = %q", statePath)
	}
	if !strings.Contains(sb.String(), "warmed with") {
		t.Fatalf("output:\n%s", sb.String())
	}
	_ = n

	// Serve, checkpoint, rebuild from state: predictions survive.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}

	sb.Reset()
	srv2, _, _, err := build([]string{"-state", state}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "restored") {
		t.Fatalf("restore output:\n%s", sb.String())
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	statsResp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st service.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Categories == 0 {
		t.Fatal("restored server has no categories")
	}
}

func TestBuildWithTemplates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	if err := os.WriteFile(path, []byte(`[{"chars":["u"],"pred":"mean"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, _, _, err := build([]string{"-templates", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1 templates") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestBuildErrors(t *testing.T) {
	var sb strings.Builder
	if _, _, _, err := build([]string{"-templates", "/missing.json"}, &sb); err == nil {
		t.Error("missing templates should error")
	}
	if _, _, _, err := build([]string{"-warm", "/missing.swf"}, &sb); err == nil {
		t.Error("missing warm trace should error")
	}
	if _, _, _, err := build([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag should error")
	}
}
