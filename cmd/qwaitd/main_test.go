package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// writeTestSWF produces a small SWF trace for warming.
func writeTestSWF(t *testing.T, path string) int {
	t.Helper()
	w, err := workload.Study("ANL", 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := workload.WriteSWF(f, w); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return len(w.Jobs)
}

func TestBuildDefault(t *testing.T) {
	var sb strings.Builder
	a, err := build([]string{"-addr", ":9999", "-nodes", "128"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if a.srv == nil || a.addr != ":9999" || a.statePath != "" {
		t.Fatalf("build = %+v", a)
	}
	if a.pprofOn || a.metricsInterval != 0 || a.logLevel != obs.LevelInfo {
		t.Fatalf("observability defaults = %+v", a)
	}
	if !strings.Contains(sb.String(), "128-node machine") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestBuildObservabilityFlags(t *testing.T) {
	var sb strings.Builder
	a, err := build([]string{"-pprof", "-metrics-interval", "15s", "-log-level", "debug"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !a.pprofOn || a.metricsInterval != 15*time.Second || a.logLevel != obs.LevelDebug {
		t.Fatalf("flags not applied: %+v", a)
	}
	// pprof actually mounted on the handler.
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}
}

func TestBuildReselectFlags(t *testing.T) {
	var sb strings.Builder
	a, err := build([]string{"-reselect", "-tail-cost", "3", "-reselect-window", "16"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	r := a.srv.Reselector()
	if r == nil {
		t.Fatal("-reselect did not attach a controller")
	}
	if got := r.Serving().CostRatio(); got != 3 {
		t.Fatalf("cost ratio = %v, want 3", got)
	}
	if got := r.Serving().Window(); got != 16 {
		t.Fatalf("window = %d, want 16", got)
	}
	if n := len(r.Shadow().Members()); n != 6 {
		t.Fatalf("stable has %d members, want 6", n)
	}
	if !strings.Contains(sb.String(), "stable: shadow scoring 6 predictors (reselect on confirmed drift)") {
		t.Fatalf("output:\n%s", sb.String())
	}
	// /v1/stable mounted and live.
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stable")
	if err != nil {
		t.Fatal(err)
	}
	var stable struct {
		Enabled  bool `json:"enabled"`
		Reselect bool `json:"reselect"`
	}
	err = json.NewDecoder(resp.Body).Decode(&stable)
	resp.Body.Close()
	if err != nil || !stable.Enabled || !stable.Reselect {
		t.Fatalf("stable = %+v (err %v), want enabled with switching", stable, err)
	}

	// -shadow alone leaves switching off.
	sb.Reset()
	a, err = build([]string{"-shadow"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if a.srv.Reselector() == nil {
		t.Fatal("-shadow did not attach the stable")
	}
	if !strings.Contains(sb.String(), "(shadow-only)") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestBuildWithWarmAndState(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "warm.swf")
	state := filepath.Join(dir, "state.jsonl")
	writeTestSWF(t, trace)

	var sb strings.Builder
	a, err := build([]string{"-warm", trace, "-state", state}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if a.statePath != state {
		t.Fatalf("state path = %q", a.statePath)
	}
	if !strings.Contains(sb.String(), "warmed with") {
		t.Fatalf("output:\n%s", sb.String())
	}

	// Serve, checkpoint, rebuild from state: predictions survive.
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/checkpoint", "application/json", bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}

	sb.Reset()
	a2, err := build([]string{"-state", state}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "restored") {
		t.Fatalf("restore output:\n%s", sb.String())
	}
	ts2 := httptest.NewServer(a2.srv.Handler())
	defer ts2.Close()
	statsResp, err := http.Get(ts2.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer statsResp.Body.Close()
	var st service.StatsResponse
	if err := json.NewDecoder(statsResp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Categories == 0 {
		t.Fatal("restored server has no categories")
	}
}

func TestBuildWithTemplates(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "set.json")
	if err := os.WriteFile(path, []byte(`[{"chars":["u"],"pred":"mean"}]`), 0o644); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if _, err := build([]string{"-templates", path}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "1 templates") {
		t.Fatalf("output:\n%s", sb.String())
	}
}

func TestBuildErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := build([]string{"-templates", "/missing.json"}, &sb); err == nil {
		t.Error("missing templates should error")
	}
	if _, err := build([]string{"-warm", "/missing.swf"}, &sb); err == nil {
		t.Error("missing warm trace should error")
	}
	if _, err := build([]string{"-badflag"}, &sb); err == nil {
		t.Error("bad flag should error")
	}
}

// TestServeAndShutdown drives the daemon's serve path end to end: bind a
// random port, answer a metrics request, cancel, expect a clean return.
func TestServeAndShutdown(t *testing.T) {
	var sb strings.Builder
	a, err := build(nil, &sb)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.srv.ServeListener(ctx, ln) }()

	resp, err := http.Get("http://" + ln.Addr().String() + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Gauges["predictor.templates"] <= 0 {
		t.Fatalf("metrics = %+v", snap)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no shutdown")
	}
}

func TestMetricsFieldsFlattening(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("b.count").Add(2)
	reg.Gauge("a.depth").Set(1.5)
	reg.Histogram("lat").Observe(0.5)
	kv := metricsFields(reg.Snapshot())
	// Sorted counters/gauges first, then histogram p99s.
	want := []interface{}{"a.depth", 1.5, "b.count", int64(2)}
	if len(kv) != 6 {
		t.Fatalf("kv = %v", kv)
	}
	for i, w := range want {
		if kv[i] != w {
			t.Fatalf("kv[%d] = %v, want %v", i, kv[i], w)
		}
	}
	if kv[4] != "lat.p99" {
		t.Fatalf("kv[4] = %v", kv[4])
	}
}

// observeJob posts one completed job to a test server.
func observeJob(t *testing.T, url string, id int, user string, runTime int64) {
	t.Helper()
	body, err := json.Marshal(map[string]interface{}{
		"job": map[string]interface{}{
			"id": id, "user": user, "nodes": 4,
			"runTime": runTime, "maxRunTime": runTime * 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/observe", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("observe status %d", resp.StatusCode)
	}
}

// TestBuildWithDataRecovers drives the durable path end to end: observe
// through the HTTP surface into a -data store, abandon the daemon without
// any snapshot (simulated kill — the WAL alone carries the history), then
// rebuild on the same directory and expect identical categories.
func TestBuildWithDataRecovers(t *testing.T) {
	dir := t.TempDir()
	var sb strings.Builder
	a, err := build([]string{"-data", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if a.store == nil {
		t.Fatal("no store attached with -data")
	}
	ts := httptest.NewServer(a.srv.Handler())
	for i := 0; i < 30; i++ {
		observeJob(t, ts.URL, i, "alice", int64(600+i))
	}
	ts.Close()
	wantCats := a.store.Categories()
	if wantCats == 0 {
		t.Fatal("observations produced no categories")
	}
	// No Snapshot, no Close: recovery must come from the WAL.
	sb.Reset()
	a2, err := build([]string{"-data", dir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if a2.store.Categories() != wantCats {
		t.Fatalf("recovered %d categories, want %d", a2.store.Categories(), wantCats)
	}
	if !strings.Contains(sb.String(), "recovered") {
		t.Fatalf("output:\n%s", sb.String())
	}
	if err := a2.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildStateMigration covers the -state deprecation shim: a legacy
// checkpoint is imported once into an empty -data store, the store
// snapshots immediately, and later boots ignore the old file.
func TestBuildStateMigration(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "warm.swf")
	state := filepath.Join(dir, "state.jsonl")
	storeDir := filepath.Join(dir, "hist")
	writeTestSWF(t, trace)

	// Produce a legacy checkpoint with the old single-file flow.
	var sb strings.Builder
	legacy, err := build([]string{"-warm", trace, "-state", state}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "-state is deprecated") {
		t.Fatalf("no deprecation warning:\n%s", sb.String())
	}
	if err := legacy.srv.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Boot with both flags: the legacy file migrates into the store.
	sb.Reset()
	a, err := build([]string{"-state", state, "-data", storeDir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "migrated legacy state") {
		t.Fatalf("output:\n%s", sb.String())
	}
	wantCats := a.store.Categories()
	if wantCats == 0 {
		t.Fatal("migration imported nothing")
	}
	if err := a.store.Close(); err != nil {
		t.Fatal(err)
	}

	// A second boot finds the store populated and ignores -state.
	sb.Reset()
	a2, err := build([]string{"-state", state, "-data", storeDir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "ignoring -state") {
		t.Fatalf("output:\n%s", sb.String())
	}
	if a2.store.Categories() != wantCats {
		t.Fatalf("second boot: %d categories, want %d", a2.store.Categories(), wantCats)
	}
	if err := a2.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildWarmSkippedOnWarmStore: -warm must not double-train a store
// that already carries recovered history.
func TestBuildWarmSkippedOnWarmStore(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "warm.swf")
	storeDir := filepath.Join(dir, "hist")
	writeTestSWF(t, trace)

	var sb strings.Builder
	a, err := build([]string{"-warm", trace, "-data", storeDir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "warmed with") {
		t.Fatalf("cold store was not warmed:\n%s", sb.String())
	}
	wantPoints := a.store.Points()
	if err := a.store.Close(); err != nil {
		t.Fatal(err)
	}

	sb.Reset()
	a2, err := build([]string{"-warm", trace, "-data", storeDir}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "skipping -warm") {
		t.Fatalf("output:\n%s", sb.String())
	}
	if a2.store.Points() != wantPoints {
		t.Fatalf("warm store re-trained: %d points, want %d", a2.store.Points(), wantPoints)
	}
	if err := a2.store.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestBuildTraceFlags: -trace-sample/-trace-slow attach a tracer, so kept
// request traces become readable at /v1/traces.
func TestBuildTraceFlags(t *testing.T) {
	var sb strings.Builder
	a, err := build([]string{"-trace-sample", "1", "-trace-ring", "8"}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "tracing: sample 1") {
		t.Fatalf("output:\n%s", sb.String())
	}
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	var tr service.TracesResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !tr.Enabled {
		t.Fatalf("tracer not enabled: %+v", tr)
	}
	// The GET above was itself traced at sample rate 1.
	resp, err = http.Get(ts.URL + "/v1/traces")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(tr.Traces) == 0 || tr.Traces[0].Root != "http.traces" {
		t.Fatalf("traces = %+v", tr.Traces)
	}

	// Without trace flags no tracer is attached.
	sb.Reset()
	if _, err := build(nil, &sb); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(sb.String(), "tracing:") {
		t.Fatalf("tracer attached by default:\n%s", sb.String())
	}
}

func TestBuildAdmissionFlags(t *testing.T) {
	var sb strings.Builder
	a, err := build([]string{
		"-nodes", "64",
		"-admit-classes", "interactive=10m:always,standard=1h:shed,batch=4h:shed:tokens=50",
		"-admit-headroom", "1.5",
		"-admit-policy", "FCFS",
		"-admit-overflow", "batch",
		"-admit-state",
	}, &sb)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "admission:") ||
		!strings.Contains(sb.String(), "headroom 1.5") ||
		!strings.Contains(sb.String(), "policy FCFS") {
		t.Fatalf("output:\n%s", sb.String())
	}

	// /v1/admit is live and admits on an empty machine.
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(service.AdmitRequest{
		Now: 0,
		Job: service.JobJSON{ID: 1, User: "u", Nodes: 4, MaxRunTime: 600, Class: "standard"},
	})
	resp, err := http.Post(ts.URL+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var d service.AdmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !d.Admit || d.Class != "standard" {
		t.Fatalf("admit: status %d %+v", resp.StatusCode, d)
	}
	if d.EffectiveBudgetSec != 5400 {
		t.Fatalf("effective budget = %d, want 1.5 × 3600", d.EffectiveBudgetSec)
	}
}

func TestBuildAdmissionErrors(t *testing.T) {
	var sb strings.Builder
	if _, err := build([]string{"-admit-classes", "bad spec"}, &sb); err == nil {
		t.Error("bad class spec should error")
	}
	if _, err := build([]string{"-admit-classes", "a=600", "-admit-policy", "EDF"}, &sb); err == nil {
		t.Error("unknown admission policy should error")
	}
	if _, err := build([]string{"-admit-classes", "a=600", "-admit-overflow", "missing"}, &sb); err == nil {
		t.Error("unknown overflow class should error")
	}
	// Without -admit-classes the endpoint stays off.
	a, err := build(nil, &sb)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(a.srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(service.AdmitRequest{Job: service.JobJSON{ID: 1, Nodes: 1}})
	resp, err := http.Post(ts.URL+"/v1/admit", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("disabled admission: status %d, want 503", resp.StatusCode)
	}
}
