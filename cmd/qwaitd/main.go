// Command qwaitd serves run-time and queue wait-time predictions over
// HTTP/JSON — the deployment surface for the paper's resource-selection and
// co-allocation use cases (§1). A scheduler reports completions and asks
// for predictions:
//
//	qwaitd -addr :8642 -nodes 512 [-templates set.json] [-warm trace.swf]
//	       [-state file] [-pprof] [-metrics-interval 30s] [-log-level info]
//
//	POST /v1/observe      {"job": {...}}                 record a completion
//	POST /v1/predict      {"job": {...}, "age": 120}     run-time prediction
//	POST /v1/predictwait  {"now":..., "policy":"Backfill",
//	                       "target":{...}, "queue":[...], "running":[...]}
//	POST /v1/checkpoint                                   save state (-state)
//	GET  /v1/stats                                        service counters
//	GET  /v1/metrics                                      full metrics snapshot
//	GET  /debug/pprof/                                    profiles (-pprof)
//
// Job objects carry the Table-2 characteristics (user, executable, queue,
// ...), nodes, and maxRunTime; see internal/service for the full schema.
// With -state, the predictor history is restored at boot and saved after a
// graceful SIGINT/SIGTERM shutdown. With -metrics-interval, a metrics
// snapshot is logged (logfmt, stderr) at that period.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/workload"
)

// app is the configured-but-not-yet-listening daemon, separated from main
// so the construction path is testable end to end.
type app struct {
	srv             *service.Server
	addr            string
	statePath       string
	pprofOn         bool
	metricsInterval time.Duration
	logLevel        obs.Level
}

func main() {
	a, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qwaitd:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, a.logLevel)
	a.srv.SetLogger(logger)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if a.metricsInterval > 0 {
		go logMetricsPeriodically(ctx, logger, a.srv.Metrics(), a.metricsInterval)
	}
	logger.Info("listening", "addr", a.addr, "pprof", a.pprofOn,
		"metrics_interval", a.metricsInterval)
	if err := a.srv.Serve(ctx, a.addr); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	// Graceful shutdown path: drain done, save state if configured.
	if a.statePath != "" {
		if err := a.srv.Checkpoint(); err != nil {
			logger.Error("checkpoint on shutdown failed", "err", err)
			os.Exit(1)
		}
		logger.Info("state saved", "path", a.statePath)
	}
}

// logMetricsPeriodically emits one logfmt line per interval with every
// counter and gauge, plus the p99 of every latency histogram — enough to
// watch category growth and tail latency from a log stream alone.
func logMetricsPeriodically(ctx context.Context, logger *obs.Logger, reg *obs.Registry, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			logger.Info("metrics", metricsFields(reg.Snapshot())...)
		}
	}
}

// metricsFields flattens a snapshot into sorted logfmt key-value pairs.
func metricsFields(s obs.Snapshot) []interface{} {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	var kv []interface{}
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			kv = append(kv, n, v)
		} else {
			kv = append(kv, n, s.Gauges[n])
		}
	}
	var hists []string
	for n := range s.Histograms {
		hists = append(hists, n)
	}
	sort.Strings(hists)
	for _, n := range hists {
		h := s.Histograms[n]
		if h.Count > 0 {
			kv = append(kv, n+".p99", h.P99)
		}
	}
	return kv
}

// build constructs the configured daemon without starting to listen.
func build(args []string, stdout io.Writer) (*app, error) {
	fs := flag.NewFlagSet("qwaitd", flag.ContinueOnError)
	addr := fs.String("addr", ":8642", "listen address")
	nodes := fs.Int("nodes", 512, "machine size in nodes (for wait predictions)")
	templates := fs.String("templates", "", "JSON template set (from gasearch -o); default: a generic set")
	warm := fs.String("warm", "", "SWF trace to pre-train the predictor with")
	state := fs.String("state", "", "checkpoint file: restored at boot, saved on graceful shutdown and POST /v1/checkpoint")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	metricsInterval := fs.Duration("metrics-interval", 0, "log a metrics snapshot at this period (0 disables)")
	logLevel := fs.String("log-level", "info", "log threshold: debug, info, warn, error")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	var ts []core.Template
	if *templates != "" {
		data, err := os.ReadFile(*templates)
		if err != nil {
			return nil, err
		}
		ts, err = core.UnmarshalTemplates(data)
		if err != nil {
			return nil, err
		}
	} else {
		// A generic template set over the characteristics SWF traces carry.
		ts = core.DefaultTemplates(
			workload.MaskOf(workload.CharUser, workload.CharExec, workload.CharQueue), true)
	}
	pred := core.New(ts)

	if *warm != "" {
		f, err := os.Open(*warm)
		if err != nil {
			return nil, err
		}
		w, err := workload.ReadSWF(f, workload.SWFOptions{Name: *warm})
		_ = f.Close() // read-only file; the ReadSWF error is the interesting one
		if err != nil {
			return nil, err
		}
		for _, j := range w.Jobs {
			pred.Observe(j)
		}
		fmt.Fprintf(stdout, "warmed with %d jobs from %s (%d categories)\n",
			len(w.Jobs), *warm, pred.Categories())
	}

	srv := service.New(pred, *nodes)
	if *state != "" {
		srv.SetStatePath(*state)
		restored, err := service.LoadStateFile(pred, *state)
		if err != nil {
			return nil, fmt.Errorf("restoring %s: %w", *state, err)
		}
		if restored {
			fmt.Fprintf(stdout, "restored %d categories from %s\n", pred.Categories(), *state)
		}
	}
	if *pprofOn {
		srv.EnablePprof()
	}
	fmt.Fprintf(stdout, "configured: %d templates, %d-node machine\n", len(ts), *nodes)
	return &app{
		srv: srv, addr: *addr, statePath: *state,
		pprofOn: *pprofOn, metricsInterval: *metricsInterval,
		logLevel: obs.ParseLevel(*logLevel),
	}, nil
}
