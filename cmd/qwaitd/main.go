// Command qwaitd serves run-time and queue wait-time predictions over
// HTTP/JSON — the deployment surface for the paper's resource-selection and
// co-allocation use cases (§1). A scheduler reports completions and asks
// for predictions:
//
//	qwaitd -addr :8642 -nodes 512 [-templates set.json] [-warm trace.swf] [-state file]
//
//	POST /v1/observe      {"job": {...}}                 record a completion
//	POST /v1/predict      {"job": {...}, "age": 120}     run-time prediction
//	POST /v1/predictwait  {"now":..., "policy":"Backfill",
//	                       "target":{...}, "queue":[...], "running":[...]}
//	POST /v1/checkpoint                                   save state (-state)
//	GET  /v1/stats                                        service counters
//
// Job objects carry the Table-2 characteristics (user, executable, queue,
// ...), nodes, and maxRunTime; see internal/service for the full schema.
// With -state, the predictor history is restored at boot and saved on
// SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/workload"
)

func main() {
	srv, addr, statePath, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qwaitd:", err)
		os.Exit(1)
	}
	if statePath != "" {
		// Save on shutdown.
		sigs := make(chan os.Signal, 1)
		signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sigs
			if err := srv.Checkpoint(); err != nil {
				log.Printf("qwaitd: checkpoint on shutdown failed: %v", err)
			} else {
				fmt.Printf("state saved to %s\n", statePath)
			}
			os.Exit(0)
		}()
	}
	fmt.Printf("qwaitd listening on %s\n", addr)
	log.Fatal(http.ListenAndServe(addr, srv.Handler()))
}

// build constructs the configured server without starting to listen, so it
// is testable end to end.
func build(args []string, stdout io.Writer) (*service.Server, string, string, error) {
	fs := flag.NewFlagSet("qwaitd", flag.ContinueOnError)
	addr := fs.String("addr", ":8642", "listen address")
	nodes := fs.Int("nodes", 512, "machine size in nodes (for wait predictions)")
	templates := fs.String("templates", "", "JSON template set (from gasearch -o); default: a generic set")
	warm := fs.String("warm", "", "SWF trace to pre-train the predictor with")
	state := fs.String("state", "", "checkpoint file: restored at boot, saved on SIGINT/SIGTERM and POST /v1/checkpoint")
	if err := fs.Parse(args); err != nil {
		return nil, "", "", err
	}

	var ts []core.Template
	if *templates != "" {
		data, err := os.ReadFile(*templates)
		if err != nil {
			return nil, "", "", err
		}
		ts, err = core.UnmarshalTemplates(data)
		if err != nil {
			return nil, "", "", err
		}
	} else {
		// A generic template set over the characteristics SWF traces carry.
		ts = core.DefaultTemplates(
			workload.MaskOf(workload.CharUser, workload.CharExec, workload.CharQueue), true)
	}
	pred := core.New(ts)

	if *warm != "" {
		f, err := os.Open(*warm)
		if err != nil {
			return nil, "", "", err
		}
		w, err := workload.ReadSWF(f, workload.SWFOptions{Name: *warm})
		f.Close()
		if err != nil {
			return nil, "", "", err
		}
		for _, j := range w.Jobs {
			pred.Observe(j)
		}
		fmt.Fprintf(stdout, "warmed with %d jobs from %s (%d categories)\n",
			len(w.Jobs), *warm, pred.Categories())
	}

	srv := service.New(pred, *nodes)
	if *state != "" {
		srv.SetStatePath(*state)
		restored, err := service.LoadStateFile(pred, *state)
		if err != nil {
			return nil, "", "", fmt.Errorf("restoring %s: %w", *state, err)
		}
		if restored {
			fmt.Fprintf(stdout, "restored %d categories from %s\n", pred.Categories(), *state)
		}
	}
	fmt.Fprintf(stdout, "configured: %d templates, %d-node machine\n", len(ts), *nodes)
	return srv, *addr, *state, nil
}
