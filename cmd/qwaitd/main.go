// Command qwaitd serves run-time and queue wait-time predictions over
// HTTP/JSON — the deployment surface for the paper's resource-selection and
// co-allocation use cases (§1). A scheduler reports completions and asks
// for predictions:
//
//	qwaitd -addr :8642 -nodes 512 [-templates set.json] [-warm trace.swf]
//	       [-data dir] [-snapshot-interval 5m] [-pprof]
//	       [-metrics-interval 30s] [-log-level info]
//	       [-trace-sample 0.01] [-trace-slow 250ms] [-trace-ring 64]
//	       [-admit-classes interactive=10m:always,standard=1h:shed]
//	       [-admit-headroom 1.5] [-admit-policy Backfill]
//	       [-admit-overflow batch] [-admit-token-window 1h] [-admit-state]
//	       [-shadow] [-reselect] [-tail-cost 2] [-reselect-window 64]
//	       [-reselect-dwell 128]
//
//	POST /v1/observe      {"job": {...}}                 record a completion
//	POST /v1/predict      {"job": {...}, "age": 120}     run-time prediction
//	POST /v1/predict/batch {"jobs": [{"job": {...}}, ...]} score many jobs at once
//	POST /v1/predictwait  {"now":..., "policy":"Backfill",
//	                       "target":{...}, "queue":[...], "running":[...]}
//	POST /v1/admit        {"now":..., "job":{...},
//	                       "queue":[...], "running":[...]}  admit/shed decision
//	POST /v1/checkpoint                                   snapshot the store
//	GET  /v1/stats                                        service counters
//	GET  /v1/metrics                                      metrics (JSON or Prometheus text)
//	GET  /v1/traces                                       recently kept request traces
//	GET  /v1/accuracy                                     online prediction-accuracy stats
//	GET  /v1/stable                                       predictor scoreboard + switch events (-shadow/-reselect)
//	GET  /debug/pprof/                                    profiles (-pprof)
//
// Job objects carry the Table-2 characteristics (user, executable, queue,
// ...), nodes, and maxRunTime; see internal/service for the full schema.
//
// With -data, the category history lives in a durable internal/histstore
// store under that directory: every observation is journaled to a
// write-ahead log, snapshots are taken periodically (-snapshot-interval),
// on POST /v1/checkpoint, and on graceful shutdown, and a restart — even
// after a hard kill — recovers the exact history from snapshot + WAL.
//
// With -trace-sample and/or -trace-slow, requests are traced: each sampled
// (or slower-than-threshold) request keeps a span tree decomposing the
// handler into predictor, store, and simulation work, readable at
// /v1/traces; -trace-ring bounds how many traces are retained. Every
// observation also scores the prediction the daemon would have made for
// it, so /v1/accuracy reports live mean/RMS error, absolute-error
// quantiles, over/under counts, and drift state per stream, with drift
// transitions logged as warnings.
//
// With -admit-classes, the daemon runs a predictive SLO admission
// controller (internal/admission): POST /v1/admit estimates the job's
// queue wait by forward simulation under -admit-policy (plus, with
// -admit-state, the §5 state-based predictor) and decides admit/shed
// against the per-class budgets; -admit-headroom scales every budget,
// -admit-overflow names the spill-over class, and -admit-token-window
// sets the admission-token replenishment period. Decisions surface as
// admission.* counters on /v1/metrics and admission.decide trace spans.
//
// With -shadow, every observation also scores a whole predictor stable
// (template predictor, Gibbons, Downey, maximum run times, global mean,
// smith>maxrt) side by side; GET /v1/stable serves the live tail-score
// scoreboard and the accuracy.shadow.* gauges join /v1/metrics. -reselect
// additionally arms the drift-adaptive controller: when the serving
// predictor's error distribution deteriorates (Welch-t confirmed), the
// daemon switches to the scoreboard winner — predictions then come from,
// and are labeled with, the new predictor — with hysteresis and a
// -reselect-dwell completion floor between switches. -tail-cost sets the
// asymmetric cost ratio (how many over-prediction seconds one second of
// under-prediction is worth) used by every accuracy stream, and
// -reselect-window the scoring window.
//
// The -state flag (single-file checkpoints, saved only on graceful
// shutdown) is deprecated. With both -state and -data, the old state file
// is imported once into an empty store and the store takes over; with
// -state alone the legacy behavior remains, with a warning. With
// -metrics-interval, a metrics snapshot is logged (logfmt, stderr) at that
// period.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/histstore"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/service"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// app is the configured-but-not-yet-listening daemon, separated from main
// so the construction path is testable end to end.
type app struct {
	srv              *service.Server
	store            *histstore.Store // nil without -data
	addr             string
	statePath        string
	pprofOn          bool
	metricsInterval  time.Duration
	snapshotInterval time.Duration
	logLevel         obs.Level
}

func main() {
	a, err := build(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "qwaitd:", err)
		os.Exit(1)
	}
	logger := obs.NewLogger(os.Stderr, a.logLevel)
	a.srv.SetLogger(logger)
	if a.statePath != "" {
		logger.Warn("flag -state is deprecated; use -data for durable history storage")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if a.metricsInterval > 0 {
		go logMetricsPeriodically(ctx, logger, a.srv.Metrics(), a.metricsInterval)
	}
	if a.store != nil && a.snapshotInterval > 0 {
		go snapshotPeriodically(ctx, logger, a.store, a.snapshotInterval)
	}
	logger.Info("listening", "addr", a.addr, "pprof", a.pprofOn,
		"metrics_interval", a.metricsInterval)
	if err := a.srv.Serve(ctx, a.addr); err != nil {
		logger.Error("serve failed", "err", err)
		os.Exit(1)
	}
	// Graceful shutdown path: drain done, persist the history.
	if a.store != nil {
		if err := a.store.Snapshot(); err != nil {
			logger.Error("snapshot on shutdown failed", "err", err)
			os.Exit(1)
		}
		if err := a.store.Close(); err != nil {
			logger.Error("store close failed", "err", err)
			os.Exit(1)
		}
		logger.Info("history store snapshotted", "dir", a.store.Dir())
	} else if a.statePath != "" {
		if err := a.srv.Checkpoint(); err != nil {
			logger.Error("checkpoint on shutdown failed", "err", err)
			os.Exit(1)
		}
		logger.Info("state saved", "path", a.statePath)
	}
}

// snapshotPeriodically compacts the store's WAL into a snapshot at the
// given period, so recovery replay stays short on long-running daemons.
func snapshotPeriodically(ctx context.Context, logger *obs.Logger, st *histstore.Store, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			if err := st.SnapshotCtx(ctx); err != nil {
				logger.Error("periodic snapshot failed", "err", err)
			} else if logger.Enabled(obs.LevelDebug) {
				logger.Debug("periodic snapshot", "dir", st.Dir())
			}
		}
	}
}

// logMetricsPeriodically emits one logfmt line per interval with every
// counter and gauge, plus the p99 of every latency histogram — enough to
// watch category growth and tail latency from a log stream alone.
func logMetricsPeriodically(ctx context.Context, logger *obs.Logger, reg *obs.Registry, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			logger.Info("metrics", metricsFields(reg.Snapshot())...)
		}
	}
}

// metricsFields flattens a snapshot into sorted logfmt key-value pairs.
func metricsFields(s obs.Snapshot) []interface{} {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	var kv []interface{}
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			kv = append(kv, n, v)
		} else {
			kv = append(kv, n, s.Gauges[n])
		}
	}
	var hists []string
	for n := range s.Histograms {
		hists = append(hists, n)
	}
	sort.Strings(hists)
	for _, n := range hists {
		h := s.Histograms[n]
		if h.Count > 0 {
			kv = append(kv, n+".p99", h.P99)
		}
	}
	return kv
}

// defaultAdmitClass picks the class unlabeled jobs fall into: "standard"
// when the operator's table has it, otherwise the alphabetically first
// class, so any valid -admit-classes value yields a working controller.
func defaultAdmitClass(classes map[string]admission.ClassConfig) string {
	if _, ok := classes["standard"]; ok {
		return "standard"
	}
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	return names[0]
}

// build constructs the configured daemon without starting to listen.
func build(args []string, stdout io.Writer) (*app, error) {
	fs := flag.NewFlagSet("qwaitd", flag.ContinueOnError)
	addr := fs.String("addr", ":8642", "listen address")
	nodes := fs.Int("nodes", 512, "machine size in nodes (for wait predictions)")
	templates := fs.String("templates", "", "JSON template set (from gasearch -o); default: a generic set")
	warm := fs.String("warm", "", "SWF trace to pre-train the predictor with (skipped when the history store already has data)")
	dataDir := fs.String("data", "", "history store directory: WAL-journaled observations, snapshots on checkpoint/shutdown, crash recovery at boot")
	state := fs.String("state", "", "DEPRECATED single-file checkpoint; with -data it is imported once into an empty store")
	snapshotInterval := fs.Duration("snapshot-interval", 5*time.Minute, "period between automatic history-store snapshots (0 disables; requires -data)")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	metricsInterval := fs.Duration("metrics-interval", 0, "log a metrics snapshot at this period (0 disables)")
	logLevel := fs.String("log-level", "info", "log threshold: debug, info, warn, error")
	traceSample := fs.Float64("trace-sample", 0, "probability of keeping a request trace (0 disables sampling)")
	traceSlow := fs.Duration("trace-slow", 0, "always keep traces slower than this (0 disables the slow rule)")
	traceRing := fs.Int("trace-ring", trace.DefaultCapacity, "how many kept traces to retain for /v1/traces")
	admitClasses := fs.String("admit-classes", "", "enable predictive SLO admission with this class table, e.g. interactive=10m:always,standard=1h:shed,batch=4h:shed:tokens=200 (empty disables /v1/admit)")
	admitHeadroom := fs.Float64("admit-headroom", 1.0, "multiplier applied to every admission wait budget (requires -admit-classes)")
	admitPolicy := fs.String("admit-policy", "Backfill", "scheduling policy the admission forward simulation replays")
	admitOverflow := fs.String("admit-overflow", "", "class whose remaining budget over-budget sheddable jobs may overflow into")
	admitTokenWindow := fs.Duration("admit-token-window", time.Hour, "replenishment window for per-class admission tokens")
	admitState := fs.Bool("admit-state", false, "also learn state-based wait estimates (paper §5) from admitted jobs' realized waits")
	shadowOn := fs.Bool("shadow", false, "shadow-score the full predictor stable on every observation (scoreboard at /v1/stable)")
	reselectOn := fs.Bool("reselect", false, "switch the serving predictor to the shadow-scoreboard winner on confirmed drift (implies -shadow)")
	tailCost := fs.Float64("tail-cost", 0, "asymmetric cost ratio for accuracy scoring: seconds of over-prediction one under-prediction second costs (0 = default 2)")
	reselectWindow := fs.Int("reselect-window", 0, "accuracy window for the serving and shadow streams (0 = default 64)")
	reselectDwell := fs.Int64("reselect-dwell", 0, "minimum completions between predictor switches (0 = 2x window)")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}

	var ts []core.Template
	if *templates != "" {
		data, err := os.ReadFile(*templates)
		if err != nil {
			return nil, err
		}
		ts, err = core.UnmarshalTemplates(data)
		if err != nil {
			return nil, err
		}
	} else {
		// A generic template set over the characteristics SWF traces carry.
		ts = core.DefaultTemplates(
			workload.MaskOf(workload.CharUser, workload.CharExec, workload.CharQueue), true)
	}

	var (
		st   *histstore.Store
		opts []core.Option
	)
	if *dataDir != "" {
		var err error
		st, err = histstore.Open(*dataDir)
		if err != nil {
			return nil, fmt.Errorf("opening history store %s: %w", *dataDir, err)
		}
		opts = append(opts, core.WithStore(st),
			core.WithStoreErrorHandler(func(err error) {
				fmt.Fprintln(os.Stderr, "qwaitd: history store insert failed:", err)
			}))
	}
	pred := core.New(ts, opts...)
	if st != nil && st.Categories() > 0 {
		fmt.Fprintf(stdout, "recovered %d categories (%d points) from %s\n",
			st.Categories(), st.Points(), *dataDir)
	}

	if *state != "" {
		fmt.Fprintln(stdout, "warning: -state is deprecated; use -data for durable history storage")
	}
	if *state != "" && st != nil {
		// One-time migration: import the legacy checkpoint into an empty
		// store, snapshot immediately so the store owns the history, and
		// never touch the old file again.
		switch {
		case st.Categories() > 0:
			fmt.Fprintf(stdout, "ignoring -state %s: history store already has data\n", *state)
		default:
			restored, err := service.LoadStateFile(pred, *state)
			if err != nil {
				return nil, fmt.Errorf("migrating legacy state %s: %w", *state, err)
			}
			if restored {
				if err := st.Snapshot(); err != nil {
					return nil, fmt.Errorf("snapshotting migrated state: %w", err)
				}
				fmt.Fprintf(stdout, "migrated legacy state %s into %s (%d categories)\n",
					*state, *dataDir, pred.Categories())
			}
		}
	}

	if *warm != "" {
		if st != nil && st.Categories() > 0 {
			fmt.Fprintf(stdout, "skipping -warm %s: history store already has data\n", *warm)
		} else {
			f, err := os.Open(*warm)
			if err != nil {
				return nil, err
			}
			w, err := workload.ReadSWF(f, workload.SWFOptions{Name: *warm})
			_ = f.Close() // read-only file; the ReadSWF error is the interesting one
			if err != nil {
				return nil, err
			}
			if err := w.Validate(); err != nil {
				return nil, fmt.Errorf("warm trace %s: %w", *warm, err)
			}
			for _, j := range w.Jobs {
				pred.Observe(j)
			}
			if err := pred.StoreErr(); err != nil {
				return nil, fmt.Errorf("warming history store: %w", err)
			}
			fmt.Fprintf(stdout, "warmed with %d jobs from %s (%d categories)\n",
				len(w.Jobs), *warm, pred.Categories())
		}
	}

	srv := service.New(pred, *nodes)
	if st != nil {
		srv.SetStore(st)
	} else if *state != "" {
		srv.SetStatePath(*state)
		restored, err := service.LoadStateFile(pred, *state)
		if err != nil {
			return nil, fmt.Errorf("restoring %s: %w", *state, err)
		}
		if restored {
			fmt.Fprintf(stdout, "restored %d categories from %s\n", pred.Categories(), *state)
		}
	}
	if *pprofOn {
		srv.EnablePprof()
	}
	if *traceSample > 0 || *traceSlow > 0 {
		srv.SetTracer(trace.New(
			trace.WithWallClock(),
			trace.WithSampleRate(*traceSample),
			trace.WithSlowThreshold(*traceSlow),
			trace.WithCapacity(*traceRing),
		))
		fmt.Fprintf(stdout, "tracing: sample %g, slow threshold %s, ring %d\n",
			*traceSample, *traceSlow, *traceRing)
	}
	if *admitClasses != "" {
		classes, err := admission.ParseClasses(*admitClasses)
		if err != nil {
			return nil, err
		}
		pol := sched.ByName(*admitPolicy)
		if pol == nil {
			return nil, fmt.Errorf("unknown -admit-policy %q", *admitPolicy)
		}
		cfg := admission.Config{
			Classes:        classes,
			DefaultClass:   defaultAdmitClass(classes),
			Headroom:       *admitHeadroom,
			OverflowClass:  *admitOverflow,
			TokenWindowSec: int64(*admitTokenWindow / time.Second),
			TotalNodes:     *nodes,
			Policy:         pol,
			Predictor:      pred,
			Decision:       predict.MaxRuntime{},
			Metrics:        srv.Metrics(),
		}
		if *admitState {
			cfg.StatePred = waitpred.NewStatePredictor(waitpred.DefaultStateTemplates(true))
		}
		// The headroom, overflow, and token-window knobs came straight off
		// the command line; reject bad values before the class tables are
		// installed.
		if err := cfg.Validate(); err != nil {
			return nil, err
		}
		ctrl, err := admission.New(cfg)
		if err != nil {
			return nil, err
		}
		srv.SetAdmission(ctrl)
		fmt.Fprintf(stdout, "admission: %s, headroom %g, policy %s\n",
			admission.FormatClasses(classes), *admitHeadroom, pol.Name())
	}
	if *reselectOn || *shadowOn {
		srv.EnableReselect(service.ReselectOptions{
			CostRatio: *tailCost,
			Window:    *reselectWindow,
			MinDwell:  *reselectDwell,
			Switching: *reselectOn,
		})
		mode := "shadow-only"
		if *reselectOn {
			mode = "reselect on confirmed drift"
		}
		fmt.Fprintf(stdout, "stable: shadow scoring %d predictors (%s)\n",
			len(srv.Reselector().Shadow().Members()), mode)
	}
	fmt.Fprintf(stdout, "configured: %d templates, %d-node machine\n", len(ts), *nodes)
	return &app{
		srv: srv, store: st, addr: *addr, statePath: *state,
		pprofOn: *pprofOn, metricsInterval: *metricsInterval,
		snapshotInterval: *snapshotInterval,
		logLevel:         obs.ParseLevel(*logLevel),
	}, nil
}
