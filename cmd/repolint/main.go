// Command repolint runs the repository's custom static-analysis suite
// (internal/lint) over the module: detrand, wallclock, floatcmp, errdrop,
// and obsnames — the invariants that keep the paper's tables reproducible
// and the service's telemetry parseable.
//
// Usage:
//
//	repolint [-checks detrand,wallclock,...] [packages]
//
// Packages default to ./... (the whole module). Diagnostics print as
// file:line:col: message [check]; the exit status is 1 when any diagnostic
// is reported, 2 on usage or load errors. Suppress an individual finding
// with a justified directive:
//
//	//lint:allow wallclock measures real request latency
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/lint"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
	}
	os.Exit(code)
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "all", "comma-separated checks to run (see -list)")
	list := fs.Bool("list", false, "list the available checks and exit")
	dir := fs.String("C", "", "run as if started in this directory (module root autodetected from it)")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		return 2, err
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		return 2, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 2, err
	}
	paths, err := loader.ExpandPatterns(fs.Args())
	if err != nil {
		return 2, err
	}
	diags, err := lint.Run(loader, analyzers, paths)
	if err != nil {
		return 2, err
	}
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(diags))
		return 1, nil
	}
	return 0, nil
}

// findModuleRoot walks up from dir (default: the working directory) to the
// nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
