// Command repolint runs the repository's custom static-analysis suite
// (internal/lint) over the module: detrand, wallclock, floatcmp, errdrop,
// obsnames, lockflow, ctxflow, atomicfield, hotpath, goleak, validflow,
// and boundflow — the invariants that keep the paper's tables
// reproducible, the service deadlock- and leak-free, the durable store
// fed only validated input, and the predict hot path cheap.
//
// Usage:
//
//	repolint [-checks detrand,wallclock,...] [-format text|json|sarif]
//	         [-cache dir] [-strict] [-require sym]... [packages]
//
// Packages default to ./... (the whole module). Diagnostics print as
// file:line:col: message [check] (paths relative to the working directory
// when possible), as a JSON array with -format json for editor and CI
// tooling, or as a SARIF 2.1.0 log with -format sarif for GitHub code
// scanning. The exit status is 0 when clean, 1 when any diagnostic is
// reported, and 2 on usage, load, or type-check errors — CI can therefore
// distinguish "the tree has findings" from "the tool could not run".
//
// -cache dir enables the incremental fact cache: results are keyed by
// content hashes of everything they can depend on, so a warm run with no
// source changes loads nothing and finishes in tens of milliseconds
// (cache traffic is reported on stderr for CI to assert on). -strict
// widens conservative analyzers — goleak reports goroutine spawns it
// cannot resolve instead of staying silent. -require (repeatable) names
// entry points that must declare a // hotpath: contract; the benchmark
// gate uses it in place of grepping for annotations.
// Suppress an individual finding with a justified directive:
//
//	//lint:allow wallclock measures real request latency
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
	"repro/internal/lint/cache"
)

// stringList is a repeatable string flag.
type stringList []string

func (s *stringList) String() string { return strings.Join(*s, ",") }
func (s *stringList) Set(v string) error {
	*s = append(*s, v)
	return nil
}

func main() {
	code, err := run(os.Args[1:], os.Stdout, os.Stderr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "repolint:", err)
	}
	os.Exit(code)
}

func run(args []string, stdout, stderr io.Writer) (int, error) {
	fs := flag.NewFlagSet("repolint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	checks := fs.String("checks", "all", "comma-separated checks to run (see -list)")
	list := fs.Bool("list", false, "list the available checks and exit")
	dir := fs.String("C", "", "run as if started in this directory (module root autodetected from it)")
	format := fs.String("format", "text", "output format: text (file:line:col), json, or sarif")
	cacheDir := fs.String("cache", "", "fact-cache directory (empty disables caching)")
	helpBase := fs.String("help-base", "CONTRIBUTING.md", "base URI for SARIF rule helpUri links into the check catalog")
	strict := fs.Bool("strict", false, "report conservatively-silenced findings (unresolvable goroutine spawns)")
	var require stringList
	fs.Var(&require, "require", "entry point that must declare a // hotpath: contract (repeatable): <import-path>.<Func> or <import-path>.<Type>.<Method>")
	if err := fs.Parse(args); err != nil {
		return 2, nil
	}
	if *format != "text" && *format != "json" && *format != "sarif" {
		return 2, fmt.Errorf("unknown -format %q (want text, json, or sarif)", *format)
	}
	if *list {
		for _, a := range lint.All() {
			fmt.Fprintf(stdout, "%-10s %s\n", a.Name, a.Doc)
		}
		return 0, nil
	}

	analyzers, err := lint.ByName(*checks)
	if err != nil {
		return 2, err
	}
	root, err := findModuleRoot(*dir)
	if err != nil {
		return 2, err
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		return 2, err
	}
	paths, err := loader.ExpandPatterns(fs.Args())
	if err != nil {
		return 2, err
	}
	opts := lint.Options{Strict: *strict}
	if *cacheDir != "" {
		opts.Cache, err = cache.Open(*cacheDir)
		if err != nil {
			return 2, err
		}
	}
	diags, stats, err := lint.RunWith(loader, analyzers, paths, opts)
	if err != nil {
		return 2, err
	}
	if len(require) > 0 {
		reqDiags, err := lint.CheckRequired(loader, require)
		if err != nil {
			return 2, err
		}
		diags = append(diags, reqDiags...)
	}
	if opts.Cache != nil {
		fmt.Fprintf(stderr, "repolint: cache %d hit(s), %d miss(es)\n", stats.Hits, stats.Misses)
	}
	relativize(diags)
	switch *format {
	case "json":
		if err := writeJSON(stdout, diags); err != nil {
			return 2, err
		}
	case "sarif":
		if err := writeSARIF(stdout, *helpBase, analyzers, diags); err != nil {
			return 2, err
		}
	default:
		for _, d := range diags {
			fmt.Fprintln(stdout, d)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "repolint: %d finding(s)\n", len(diags))
		return 1, nil
	}
	return 0, nil
}

// relativize rewrites diagnostic file names relative to the working
// directory when they are inside it, so output (and the CI problem
// matcher, which annotates files by workspace-relative path) stays stable
// across checkout locations.
func relativize(diags []lint.Diagnostic) {
	wd, err := os.Getwd()
	if err != nil {
		return
	}
	for i := range diags {
		rel, err := filepath.Rel(wd, diags[i].Pos.Filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			continue
		}
		diags[i].Pos.Filename = rel
	}
}

// jsonDiag is the -format json shape of one finding. It flattens the
// position so consumers need no knowledge of go/token.
type jsonDiag struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
	Check   string `json:"check"`
}

// writeJSON emits the findings as one indented JSON array ([] when clean),
// so the output is always a valid document.
func writeJSON(w io.Writer, diags []lint.Diagnostic) error {
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:    d.Pos.Filename,
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Message: d.Message,
			Check:   d.Check,
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// findModuleRoot walks up from dir (default: the working directory) to the
// nearest go.mod.
func findModuleRoot(dir string) (string, error) {
	if dir == "" {
		wd, err := os.Getwd()
		if err != nil {
			return "", err
		}
		dir = wd
	}
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
