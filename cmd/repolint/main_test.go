package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestListPrintsEveryCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-list"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{"detrand", "wallclock", "floatcmp", "errdrop", "obsnames"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-checks", "nosuch"}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("run(-checks nosuch) = %d, %v; want exit 2 and an error", code, err)
	}
}

// TestRealTreeIsClean is the end-to-end form of the self-check: the
// shipped binary over the shipped tree reports nothing.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "./..."}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("repolint ./... exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}
