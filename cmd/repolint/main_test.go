package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestListPrintsEveryCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-list"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{
		"detrand", "wallclock", "floatcmp", "errdrop", "obsnames",
		"lockflow", "ctxflow", "atomicfield",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-checks", "nosuch"}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("run(-checks nosuch) = %d, %v; want exit 2 and an error", code, err)
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-format", "xml"}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("run(-format xml) = %d, %v; want exit 2 and an error", code, err)
	}
}

// TestJSONFormatIsValidJSON runs one cheap check over one package and
// requires the output to be a well-formed JSON array — [] on a clean run,
// never an empty document.
func TestJSONFormatIsValidJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "-format", "json", "-checks", "detrand", "./internal/lint/cfg"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Message string `json:"message"`
		Check   string `json:"check"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected a clean run, got %d findings:\n%s", len(findings), stdout.String())
	}
}

// TestRealTreeIsClean is the end-to-end form of the self-check: the
// shipped binary over the shipped tree reports nothing.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "./..."}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("repolint ./... exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}

// writeTempModule lays down a one-package module for driving the binary
// end-to-end against known-dirty or known-broken trees.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestExitCodeOneOnFindings pins the exit-code contract: findings exit 1,
// with no tool error.
func TestExitCodeOneOnFindings(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"a.go": "package a\n\nimport \"os\"\n\nfunc f() { os.Remove(\"x\") }\n",
	})
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", dir, "-checks", "errdrop", "./..."}, &stdout, &stderr)
	if err != nil || code != 1 {
		t.Fatalf("run over a dirty tree = %d, %v; want exit 1 and no error\n%s", code, err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "errdrop") {
		t.Errorf("finding not printed:\n%s", stdout.String())
	}
}

// TestExitCodeTwoOnTypeError pins the other half of the contract: a tree
// that does not type-check exits 2, so CI can tell "findings" from "the
// tool could not run".
func TestExitCodeTwoOnTypeError(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"a.go": "package a\n\nfunc f() { undefined() }\n",
	})
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", dir, "./..."}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("run over a broken tree = %d, %v; want exit 2 and an error", code, err)
	}
}

// TestSARIFFormat runs over a dirty tree and checks the SARIF log's shape:
// schema fields, rule metadata for the selected analyzer, and a result
// pointing at the finding.
func TestSARIFFormat(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"a.go": "package a\n\nimport \"os\"\n\nfunc f() { os.Remove(\"x\") }\n",
	})
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", dir, "-checks", "errdrop", "-format", "sarif", "./..."}, &stdout, &stderr)
	if err != nil || code != 1 {
		t.Fatalf("run = %d, %v\n%s", code, err, stderr.String())
	}
	var log struct {
		Schema  string `json:"$schema"`
		Version string `json:"version"`
		Runs    []struct {
			Tool struct {
				Driver struct {
					Name  string `json:"name"`
					Rules []struct {
						ID               string `json:"id"`
						ShortDescription struct {
							Text string `json:"text"`
						} `json:"shortDescription"`
						FullDescription struct {
							Text string `json:"text"`
						} `json:"fullDescription"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
			Results []struct {
				RuleID  string `json:"ruleId"`
				Level   string `json:"level"`
				Message struct {
					Text string `json:"text"`
				} `json:"message"`
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI       string `json:"uri"`
							URIBaseID string `json:"uriBaseId"`
						} `json:"artifactLocation"`
						Region struct {
							StartLine int `json:"startLine"`
						} `json:"region"`
					} `json:"physicalLocation"`
				} `json:"locations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("want SARIF 2.1.0 with one run, got version %q, %d runs", log.Version, len(log.Runs))
	}
	run0 := log.Runs[0]
	if run0.Tool.Driver.Name != "repolint" {
		t.Errorf("driver name = %q, want repolint", run0.Tool.Driver.Name)
	}
	if len(run0.Tool.Driver.Rules) != 1 || run0.Tool.Driver.Rules[0].ID != "errdrop" {
		t.Errorf("want one rule 'errdrop', got %+v", run0.Tool.Driver.Rules)
	}
	// Rule metadata links the CONTRIBUTING check catalog: helpUri anchors
	// by check name, shortDescription is the Doc's first clause (one line
	// for the code-scanning card), fullDescription the whole Doc.
	rule := run0.Tool.Driver.Rules[0]
	if rule.HelpURI != "CONTRIBUTING.md#errdrop" {
		t.Errorf("helpUri = %q, want CONTRIBUTING.md#errdrop", rule.HelpURI)
	}
	if rule.ShortDescription.Text == "" || strings.Contains(rule.ShortDescription.Text, "\n") {
		t.Errorf("shortDescription = %q, want a non-empty single line", rule.ShortDescription.Text)
	}
	if full := rule.FullDescription.Text; full == "" || !strings.HasPrefix(full, rule.ShortDescription.Text) {
		t.Errorf("fullDescription = %q, want the full Doc extending the short clause", full)
	}
	if len(run0.Results) != 1 {
		t.Fatalf("want one result, got %d", len(run0.Results))
	}
	r := run0.Results[0]
	if r.RuleID != "errdrop" || r.Level != "error" || r.Message.Text == "" {
		t.Errorf("result = %+v", r)
	}
	loc := r.Locations[0].PhysicalLocation
	if !strings.HasSuffix(loc.ArtifactLocation.URI, "a.go") || loc.ArtifactLocation.URIBaseID != "%SRCROOT%" || loc.Region.StartLine != 5 {
		t.Errorf("location = %+v", loc)
	}
}

// TestSARIFCleanRunIsValid asserts a clean run still emits a well-formed
// log with rule metadata and an empty (not absent) results array.
func TestSARIFCleanRunIsValid(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "-format", "sarif", "-checks", "detrand", "./internal/lint/cfg"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, stderr.String())
	}
	var log struct {
		Runs []struct {
			Results []any `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	if len(log.Runs) != 1 || log.Runs[0].Results == nil || len(log.Runs[0].Results) != 0 {
		t.Errorf("clean run must have one run with an empty results array:\n%s", stdout.String())
	}
}

// TestSARIFHelpBaseOverride: CI passes the repository blob URL as
// -help-base so the code-scanning card's "Learn more" resolves from
// anywhere; every selected rule must anchor its own catalog entry.
func TestSARIFHelpBaseOverride(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "-format", "sarif",
		"-help-base", "https://example.test/CONTRIBUTING.md",
		"-checks", "errdrop,detrand", "./internal/lint/cfg"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, stderr.String())
	}
	var log struct {
		Runs []struct {
			Tool struct {
				Driver struct {
					Rules []struct {
						ID      string `json:"id"`
						HelpURI string `json:"helpUri"`
					} `json:"rules"`
				} `json:"driver"`
			} `json:"tool"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &log); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, stdout.String())
	}
	rules := log.Runs[0].Tool.Driver.Rules
	if len(rules) != 2 {
		t.Fatalf("want 2 rules, got %+v", rules)
	}
	for _, r := range rules {
		if r.HelpURI != "https://example.test/CONTRIBUTING.md#"+r.ID {
			t.Errorf("rule %s helpUri = %q, want the overridden base with its own anchor", r.ID, r.HelpURI)
		}
	}
}

// TestRequireContract pins the -require contract: a required entry point
// without a // hotpath: annotation is a finding (exit 1), and a symbol
// the type checker cannot resolve is a tool error (exit 2) — a rename
// must fail the gate loudly, not retire the check.
func TestRequireContract(t *testing.T) {
	dir := writeTempModule(t, map[string]string{
		"a.go": "package a\n\n// hotpath: no-lock no-clock\nfunc Fast() {}\n\nfunc Slow() {}\n",
	})
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", dir, "-checks", "hotpath", "-require", "tmpmod.Fast", "./..."}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("contracted entry point: run = %d, %v\n%s", code, err, stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code, err = run([]string{"-C", dir, "-checks", "hotpath", "-require", "tmpmod.Slow", "./..."}, &stdout, &stderr)
	if err != nil || code != 1 {
		t.Fatalf("uncontracted entry point: run = %d, %v; want exit 1\n%s", code, err, stderr.String())
	}
	if !strings.Contains(stdout.String(), "declares no // hotpath: contract") {
		t.Errorf("missing-contract finding not printed:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	code, err = run([]string{"-C", dir, "-checks", "hotpath", "-require", "tmpmod.Renamed", "./..."}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("stale symbol: run = %d, %v; want exit 2 and an error", code, err)
	}
}
