package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestListPrintsEveryCheck(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-list"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run(-list) = %d, %v", code, err)
	}
	for _, name := range []string{
		"detrand", "wallclock", "floatcmp", "errdrop", "obsnames",
		"lockflow", "ctxflow", "atomicfield",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, stdout.String())
		}
	}
}

func TestUnknownCheckIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-checks", "nosuch"}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("run(-checks nosuch) = %d, %v; want exit 2 and an error", code, err)
	}
}

func TestUnknownFormatIsUsageError(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-format", "xml"}, &stdout, &stderr)
	if code != 2 || err == nil {
		t.Fatalf("run(-format xml) = %d, %v; want exit 2 and an error", code, err)
	}
}

// TestJSONFormatIsValidJSON runs one cheap check over one package and
// requires the output to be a well-formed JSON array — [] on a clean run,
// never an empty document.
func TestJSONFormatIsValidJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "-format", "json", "-checks", "detrand", "./internal/lint/cfg"}, &stdout, &stderr)
	if err != nil || code != 0 {
		t.Fatalf("run = %d, %v\n%s", code, err, stderr.String())
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Column  int    `json:"column"`
		Message string `json:"message"`
		Check   string `json:"check"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, stdout.String())
	}
	if len(findings) != 0 {
		t.Errorf("expected a clean run, got %d findings:\n%s", len(findings), stdout.String())
	}
}

// TestRealTreeIsClean is the end-to-end form of the self-check: the
// shipped binary over the shipped tree reports nothing.
func TestRealTreeIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	var stdout, stderr bytes.Buffer
	code, err := run([]string{"-C", "..", "./..."}, &stdout, &stderr)
	if err != nil {
		t.Fatal(err)
	}
	if code != 0 {
		t.Fatalf("repolint ./... exited %d:\n%s%s", code, stdout.String(), stderr.String())
	}
}
