package main

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

// SARIF 2.1.0 output, reduced to the subset GitHub code scanning consumes:
// one run, one rule per analyzer that was selected (so rule metadata is
// stable even on clean runs), one result per finding. File URIs are
// slash-separated and resolved against %SRCROOT% (the checkout root), the
// base GitHub substitutes when annotating pull requests.

const (
	sarifSchema  = "https://json.schemastore.org/sarif-2.1.0.json"
	sarifVersion = "2.1.0"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID                   string       `json:"id"`
	ShortDescription     sarifMessage `json:"shortDescription"`
	FullDescription      sarifMessage `json:"fullDescription"`
	HelpURI              string       `json:"helpUri"`
	DefaultConfiguration sarifConfig  `json:"defaultConfiguration"`
}

type sarifConfig struct {
	Level string `json:"level"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// shortDoc truncates an analyzer Doc to its first clause for the SARIF
// shortDescription (code-scanning cards show roughly one line; the full
// Doc goes in fullDescription).
func shortDoc(doc string) string {
	if i := strings.IndexAny(doc, ".;:("); i > 0 {
		doc = doc[:i]
	}
	return strings.TrimSpace(doc)
}

// ruleHelpURI links a rule to its entry in the CONTRIBUTING check
// catalog, whose headings anchor by check name. helpBase defaults to the
// repo-relative "CONTRIBUTING.md"; CI passes the repository blob URL so
// the code-scanning card's "Learn more" resolves from anywhere.
func ruleHelpURI(helpBase, name string) string {
	return helpBase + "#" + name
}

// writeSARIF emits one SARIF run covering the selected analyzers. Findings
// gate CI, so every rule (and every result) carries level "error".
func writeSARIF(w io.Writer, helpBase string, analyzers []*lint.Analyzer, diags []lint.Diagnostic) error {
	rules := make([]sarifRule, 0, len(analyzers))
	index := make(map[string]int, len(analyzers))
	for i, a := range analyzers {
		index[a.Name] = i
		rules = append(rules, sarifRule{
			ID:                   a.Name,
			ShortDescription:     sarifMessage{Text: shortDoc(a.Doc)},
			FullDescription:      sarifMessage{Text: a.Doc},
			HelpURI:              ruleHelpURI(helpBase, a.Name),
			DefaultConfiguration: sarifConfig{Level: "error"},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarifResult{
			RuleID:    d.Check,
			RuleIndex: index[d.Check],
			Level:     "error",
			Message:   sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{
						URI:       filepath.ToSlash(d.Pos.Filename),
						URIBaseID: "%SRCROOT%",
					},
					Region: sarifRegion{
						StartLine:   d.Pos.Line,
						StartColumn: d.Pos.Column,
					},
				},
			}},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(sarifLog{
		Schema:  sarifSchema,
		Version: sarifVersion,
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "repolint", Rules: rules}},
			Results: results,
		}},
	})
}
