# Common development tasks for the reproduction repository.

GO ?= go

.PHONY: all build vet lint vuln test race cover bench tables examples clean fmt-check bench-smoke bench-gate fuzz-smoke trace-smoke admit-smoke reselect-smoke trace-demo ci

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Repository-specific static analysis: determinism (detrand, wallclock),
# float comparisons, dropped errors, observability naming, lock/ctx/
# atomic/taint flow, unbounded growth. See CONTRIBUTING.md for the
# invariant list, the taint/bounded annotation grammars, and //lint:allow
# usage. The fact cache makes an unchanged re-run finish in tens of
# milliseconds; it lives in .repolint-cache (gitignored) and is safe to
# delete at any time.
lint:
	$(GO) run ./cmd/repolint -cache .repolint-cache ./...

# govulncheck is not vendored; run it when the tool is on PATH (CI installs
# it), skip quietly otherwise so offline development keeps working.
vuln:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# -shuffle=on randomizes test execution order each run, so accidental
# inter-test state dependence surfaces instead of hiding.
test:
	$(GO) test -shuffle=on ./...

race:
	$(GO) test -race -shuffle=on ./...

cover:
	$(GO) test -cover ./...

# One iteration of every table/figure benchmark (fast); drop -benchtime for
# the full statistical run.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every table of the paper at 1/10 trace scale.
tables:
	$(GO) run ./cmd/tables -scale 10

# Run every example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/resourceselect
	$(GO) run ./examples/metasched
	$(GO) run ./examples/onlinesched
	$(GO) run ./examples/coallocation

clean:
	$(GO) clean ./...

# Fail when any file is not gofmt-formatted (the CI lint job's check).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "unformatted files:"; echo "$$unformatted"; exit 1; \
	fi

# One iteration of every benchmark so benchmark code cannot bit-rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...

# Run the gated benchmark suite (predict hot path, reader-scaling sweep,
# history store) and compare against the committed BENCH_*.json baseline —
# the exact pipeline the CI bench-gate job runs. Override the baseline
# with BENCH_BASELINE=...; iteration/sample counts come from the script's
# BENCHTIME_* / BENCHCOUNT environment knobs (see scripts/bench_gate.sh).
BENCH_BASELINE ?= BENCH_0006.json
bench-gate:
	sh scripts/bench_gate.sh $(BENCH_BASELINE)

# A short fuzzing run of the SWF parser — long enough to catch regressions
# in input validation, short enough for a pre-push check.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzReadSWF -fuzztime=10s ./internal/workload

# Boot qwaitd with tracing, drive observe/predict traffic, and assert the
# /v1/traces and /v1/accuracy endpoints are well-formed (the CI step).
trace-smoke:
	sh scripts/trace_smoke.sh

# Boot qwaitd with predictive SLO admission, drive /v1/admit with admit
# and shed scenarios, and assert the metrics and trace surface (the CI
# admit-smoke step).
admit-smoke:
	sh scripts/admit_smoke.sh

# Boot qwaitd with -reselect, inject a run-time step through /v1/observe,
# and assert the /v1/stable scoreboard, the switch to the scoreboard
# winner, and the accuracy.reselect.* metric and span surface (the CI
# reselect-smoke step).
reselect-smoke:
	sh scripts/reselect_smoke.sh

# Trace one prediction end to end and pretty-print its span tree.
trace-demo:
	$(GO) run ./examples/quickstart -trace

# The exact pipeline .github/workflows/ci.yml runs, for local use before
# pushing: format check, vet, repolint, vuln scan, build, test, race, bench
# smoke.
ci: fmt-check vet lint vuln build test race bench-smoke
