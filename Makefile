# Common development tasks for the reproduction repository.

GO ?= go

.PHONY: all build vet test race cover bench tables examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One iteration of every table/figure benchmark (fast); drop -benchtime for
# the full statistical run.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every table of the paper at 1/10 trace scale.
tables:
	$(GO) run ./cmd/tables -scale 10

# Run every example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/resourceselect
	$(GO) run ./examples/metasched
	$(GO) run ./examples/onlinesched
	$(GO) run ./examples/coallocation

clean:
	$(GO) clean ./...
