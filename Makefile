# Common development tasks for the reproduction repository.

GO ?= go

.PHONY: all build vet test race cover bench tables examples clean fmt-check bench-smoke ci

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

cover:
	$(GO) test -cover ./...

# One iteration of every table/figure benchmark (fast); drop -benchtime for
# the full statistical run.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x ./...

# Regenerate every table of the paper at 1/10 trace scale.
tables:
	$(GO) run ./cmd/tables -scale 10

# Run every example.
examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/resourceselect
	$(GO) run ./examples/metasched
	$(GO) run ./examples/onlinesched
	$(GO) run ./examples/coallocation

clean:
	$(GO) clean ./...

# Fail when any file is not gofmt-formatted (the CI lint job's check).
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "unformatted files:"; echo "$$unformatted"; exit 1; \
	fi

# One iteration of every benchmark so benchmark code cannot bit-rot.
bench-smoke:
	$(GO) test -bench=. -benchtime=1x -benchmem ./...

# The exact pipeline .github/workflows/ci.yml runs, for local use before
# pushing: lint, build, test, race, bench smoke.
ci: fmt-check vet build test race bench-smoke
