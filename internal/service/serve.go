package service

import (
	"context"
	"net"
	"net/http"
	"time"
)

// Timeouts for the production HTTP server. Request bodies are small JSON
// documents, but /v1/predictwait simulates a whole schedule and pprof
// profiles stream for tens of seconds, so the write timeout is generous.
const (
	readHeaderTimeout = 10 * time.Second
	readTimeout       = 30 * time.Second
	writeTimeout      = 90 * time.Second
	idleTimeout       = 2 * time.Minute
	shutdownGrace     = 10 * time.Second
)

// Serve listens on addr and serves the handler until ctx is cancelled,
// then drains in-flight requests gracefully (bounded by shutdownGrace).
// It returns nil after a clean shutdown.
func (s *Server) Serve(ctx context.Context, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.ServeListener(ctx, ln)
}

// ServeListener is Serve on an existing listener, so tests and embedders
// can bind port 0 and learn the address before serving. The listener is
// closed when serving stops.
func (s *Server) ServeListener(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(), //lint:allow ctxflow handler registration, not a request: per-request traces ride r.Context(), and the Checkpoint→Snapshot hop only runs when no store is attached
		ReadHeaderTimeout: readHeaderTimeout,
		ReadTimeout:       readTimeout,
		WriteTimeout:      writeTimeout,
		IdleTimeout:       idleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		s.log.Info("shutting down", "addr", ln.Addr().String())
		sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace) //lint:allow ctxflow the server ctx is already done here; the shutdown grace period must outlive it
		defer cancel()
		if err := hs.Shutdown(sctx); err != nil {
			return err
		}
		// Serve returns ErrServerClosed once Shutdown begins; drain it.
		<-errc
		return nil
	}
}
