package service

// Re-selection wiring: the service's predictor stable, the shadow scorer
// that ranks it on every /v1/observe, and the controller that — when
// enabled — switches the serving predictor to the scoreboard winner on
// confirmed drift. GET /v1/stable exposes the scoreboard and the switch
// history; the accuracy.shadow.* and accuracy.reselect.* gauge families
// surface on /v1/metrics.

import (
	"net/http"

	"repro/internal/obs/accuracy"
	"repro/internal/predict"
	"repro/internal/predict/downey"
	"repro/internal/predict/gibbons"
)

// ReselectOptions configures EnableReselect. Zero values take defaults.
type ReselectOptions struct {
	// CostRatio is the asymmetric cost ratio applied to every accuracy
	// stream (serving, shadow, and the /v1/accuracy tracker): how many
	// seconds of over-prediction one second of under-prediction is worth.
	// 0 keeps stats.DefaultCostRatio.
	CostRatio float64
	// Window is the accuracy window for the serving and shadow streams;
	// it also becomes the serving drift detector's baseline requirement,
	// so the detector is armed one window after a switch or cold start.
	// 0 keeps the tracker default.
	Window int
	// MinDwell is the minimum number of completions between switches.
	// 0 defaults to 2× the serving window.
	MinDwell int64
	// Hysteresis is the fractional scoreboard margin a challenger must
	// win by. 0 keeps accuracy.DefaultHysteresis.
	Hysteresis float64
	// Switching enables automatic re-selection. When false the stable is
	// shadow-scored only: the scoreboard and drift telemetry stay live
	// but the serving predictor never changes.
	Switching bool
}

// EnableReselect attaches the predictor stable to the server: the core
// template predictor (serving, scored but trained by the observe path
// itself), Gibbons, Downey, maximum run times, the global mean, and the
// smith>maxrt chain. Every completion POSTed to /v1/observe scores the
// serving predictor and the whole stable; with opts.Switching the
// controller swaps the serving predictor to the scoreboard winner on
// confirmed deterioration, and /v1/predict, /v1/predict/batch, and
// /v1/predictwait follow the switch.
//
// Call it during configuration, before the handler serves traffic.
func (s *Server) EnableReselect(opts ReselectOptions) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var topt []accuracy.Option
	if opts.CostRatio > 0 {
		topt = append(topt, accuracy.WithCostRatio(opts.CostRatio))
		// Keep /v1/accuracy's streams costed consistently with the stable.
		s.acc = s.newAccuracyTracker(accuracy.WithCostRatio(opts.CostRatio))
	}
	if opts.Window > 0 {
		topt = append(topt, accuracy.WithWindow(opts.Window))
	}
	maxrt := predict.MaxRuntime{}
	chain := predict.NewChain(s.pred, maxrt)
	gib := gibbons.New()
	dow := downey.New(downey.ConditionalAverage)
	mean := &predict.RunningMean{}
	stable := []accuracy.Member{
		// The core predictor is External: handleObserve already feeds every
		// completion to it, so the shadow scores it without a second Observe.
		// The chain shares the core instance, so it is External for the same
		// reason (MaxRuntime is stateless; there is nothing else to train).
		{Name: s.pred.Name(), P: s.pred, External: true},
		{Name: gib.Name(), P: gib},
		{Name: dow.Name(), P: dow},
		{Name: maxrt.Name(), P: maxrt},
		{Name: mean.Name(), P: mean},
		{Name: chain.Name(), P: chain, External: true},
	}
	shadow := accuracy.NewShadow(stable, accuracy.New(topt...), 0)
	sopt := make([]accuracy.Option, len(topt), len(topt)+2)
	copy(sopt, topt)
	sopt = append(sopt,
		accuracy.WithMinBaseline(servingWindow(opts.Window)),
		accuracy.WithOnDrift(func(key string, d accuracy.Drift) {
			s.log.Warn("serving predictor drift", "key", key,
				"window_mean_seconds", d.WindowMean, "baseline_mean_seconds", d.BaselineMean,
				"p", d.P, "t", d.T)
		}))
	s.resel = accuracy.NewReselector(predict.NewSwitchable(s.pred), shadow,
		accuracy.New(sopt...), accuracy.ReselectConfig{
			MinDwell:   opts.MinDwell,
			Hysteresis: opts.Hysteresis,
			Frozen:     !opts.Switching,
			OnSwitch: func(ev accuracy.SwitchEvent) {
				s.log.Warn("serving predictor reselected", "from", ev.From, "to", ev.To,
					"seq", ev.Seq, "from_score_seconds", ev.FromScore,
					"to_score_seconds", ev.ToScore, "completions", ev.Completions)
			},
		})
	s.reselSwitching = opts.Switching
}

// servingWindow resolves the serving tracker's drift baseline: the
// configured window, or the tracker default when unset.
func servingWindow(w int) int {
	if w > 0 {
		return w
	}
	return accuracy.DefaultWindow
}

// Reselector returns the attached controller, or nil before EnableReselect.
func (s *Server) Reselector() *accuracy.Reselector { return s.resel }

// servingOverride reports the predictor a switch has installed in place of
// the core template predictor, or nil while the core (or nothing) serves.
func (s *Server) servingOverride() predict.Predictor {
	if s.resel == nil {
		return nil
	}
	cur := s.resel.Switchable().Current()
	s.mu.RLock()
	serving := predict.Predictor(s.pred)
	s.mu.RUnlock()
	// Interface identity: the switchable starts on s.pred and only a
	// controller switch replaces it, so pointer equality is exact.
	if cur != serving {
		return cur
	}
	return nil
}

// StableResponse is the GET /v1/stable payload: the serving predictor, the
// live shadow scoreboard (window tail scores, lower is better), and the
// retained switch events, oldest first.
type StableResponse struct {
	Enabled    bool                   `json:"enabled"`
	Reselect   bool                   `json:"reselect"` // switching armed (false = shadow-only)
	Serving    string                 `json:"serving,omitempty"`
	CostRatio  float64                `json:"costRatio,omitempty"`
	Window     int                    `json:"window,omitempty"`
	Switches   int64                  `json:"switches"`
	Scoreboard []accuracy.BoardEntry  `json:"scoreboard"`
	Events     []accuracy.SwitchEvent `json:"events"`
}

func (s *Server) handleStable(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := StableResponse{
		Scoreboard: []accuracy.BoardEntry{},
		Events:     []accuracy.SwitchEvent{},
	}
	if s.resel != nil {
		resp.Enabled = true
		resp.Reselect = s.reselSwitching
		resp.Serving = s.resel.Name()
		resp.CostRatio = s.resel.Serving().CostRatio()
		resp.Window = s.resel.Serving().Window()
		resp.Switches = s.resel.Switches()
		resp.Scoreboard = s.resel.Shadow().Scoreboard()
		resp.Events = s.resel.Events()
	}
	writeJSON(w, http.StatusOK, resp)
}
