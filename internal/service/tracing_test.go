package service

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// getWithAccept issues a GET with an Accept header and returns the
// response plus its body.
func getWithAccept(t *testing.T, url, accept string) (*http.Response, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

// TestMetricsContentNegotiation is the regression for /v1/metrics
// representation selection: JSON (with its explicit Content-Type) stays
// the default; text/plain or openmetrics Accept values and the
// ?format=prometheus override switch to Prometheus text exposition.
func TestMetricsContentNegotiation(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(1, "alice", 4, 100, 200)}, nil)

	resp, body := getWithAccept(t, ts.URL+"/v1/metrics", "")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("default Content-Type = %q, want application/json", ct)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("default body is not JSON: %v", err)
	}

	for _, accept := range []string{
		"text/plain",
		"text/plain; version=0.0.4",
		"application/openmetrics-text; version=1.0.0, text/plain",
	} {
		resp, body = getWithAccept(t, ts.URL+"/v1/metrics", accept)
		if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
			t.Fatalf("Accept %q: Content-Type = %q, want %q", accept, ct, obs.PrometheusContentType)
		}
		if !strings.Contains(body, "# TYPE http_metrics_requests counter") {
			t.Fatalf("Accept %q: body not Prometheus exposition:\n%s", accept, body)
		}
		if !strings.Contains(body, "service_observe_jobs 1") {
			t.Fatalf("Accept %q: observe counter missing:\n%s", accept, body)
		}
	}

	// A client preferring JSON keeps JSON even when text/plain follows.
	resp, _ = getWithAccept(t, ts.URL+"/v1/metrics", "application/json, text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("json-first Accept: Content-Type = %q", ct)
	}

	// Explicit query override beats the Accept header.
	resp, _ = getWithAccept(t, ts.URL+"/v1/metrics?format=prometheus", "application/json")
	if ct := resp.Header.Get("Content-Type"); ct != obs.PrometheusContentType {
		t.Fatalf("?format=prometheus: Content-Type = %q", ct)
	}
	resp, _ = getWithAccept(t, ts.URL+"/v1/metrics?format=json", "text/plain")
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("?format=json: Content-Type = %q", ct)
	}
}

// TestPredictTraceDecomposition is the tracing acceptance check: with a
// tracer attached, a kept /v1/predict trace decomposes into at least four
// named child spans below the HTTP root, through the predictor into the
// history store.
func TestPredictTraceDecomposition(t *testing.T) {
	ts, s, _ := newStoreServer(t)
	tr := trace.New(trace.WithSampleRate(1))
	s.SetTracer(tr)

	for i := 1; i <= 5; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "alice", 4, int64(100*i), 1000)}, nil)
	}
	var pr PredictResponse
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(9, "alice", 4, 0, 1000)}, &pr)
	if !pr.OK {
		t.Fatalf("predict missed after observations: %+v", pr)
	}

	var got *trace.Trace
	for i := range tr.Recent() {
		if tr.Recent()[i].Root == "http.predict" {
			got = &tr.Recent()[i]
			break
		}
	}
	if got == nil {
		t.Fatalf("no http.predict trace kept; recent: %+v", tr.Recent())
	}
	names := make(map[string]int)
	children := 0
	for _, sp := range got.Spans {
		names[sp.Name]++
		if sp.Parent >= 0 {
			children++
		}
	}
	for _, want := range []string{"core.predict", "template_match", "histstore.view", "estimate"} {
		if names[want] == 0 {
			t.Fatalf("trace missing %q span; spans: %v", want, names)
		}
	}
	if children < 4 {
		t.Fatalf("predict trace has %d child spans, want >= 4", children)
	}

	// The observe path decomposes too, down to the WAL append.
	var obsTrace *trace.Trace
	for i := range tr.Recent() {
		if tr.Recent()[i].Root == "http.observe" {
			obsTrace = &tr.Recent()[i]
			break
		}
	}
	if obsTrace == nil {
		t.Fatalf("no http.observe trace kept")
	}
	obsNames := make(map[string]int)
	for _, sp := range obsTrace.Spans {
		obsNames[sp.Name]++
	}
	for _, want := range []string{"core.observe", "histstore.insert", "histstore.wal_append"} {
		if obsNames[want] == 0 {
			t.Fatalf("observe trace missing %q span; spans: %v", want, obsNames)
		}
	}

	// And /v1/traces serves the same ring.
	resp, body := getWithAccept(t, ts.URL+"/v1/traces", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/traces status %d", resp.StatusCode)
	}
	var tres TracesResponse
	if err := json.Unmarshal([]byte(body), &tres); err != nil {
		t.Fatalf("/v1/traces not JSON: %v", err)
	}
	if !tres.Enabled || len(tres.Traces) == 0 {
		t.Fatalf("/v1/traces = enabled %v, %d traces", tres.Enabled, len(tres.Traces))
	}
	if tres.Traces[0].ID == "" || len(tres.Traces[0].Spans) == 0 {
		t.Fatalf("/v1/traces first trace malformed: %+v", tres.Traces[0])
	}
}

// TestTracesEndpointWithoutTracer stays well-formed when no tracer is set.
func TestTracesEndpointWithoutTracer(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, body := getWithAccept(t, ts.URL+"/v1/traces", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var tres TracesResponse
	if err := json.Unmarshal([]byte(body), &tres); err != nil {
		t.Fatalf("not JSON: %v", err)
	}
	if tres.Enabled || tres.Traces == nil || len(tres.Traces) != 0 {
		t.Fatalf("tracerless response = %+v, want disabled with empty list", tres)
	}
}

// TestAccuracyEndpointScoresCompletions: every /v1/observe scores the
// prediction the server would have made, so the accuracy endpoint reports
// the live error statistics, including the per-template stream.
func TestAccuracyEndpointScoresCompletions(t *testing.T) {
	ts, _ := newTestServer(t)
	// The first two completions cannot be scored (a confidence interval
	// needs two points of history); the remaining four can.
	for i := 1; i <= 6; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "alice", 4, 100, 1000)}, nil)
	}
	resp, body := getWithAccept(t, ts.URL+"/v1/accuracy", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/accuracy status %d", resp.StatusCode)
	}
	var ar AccuracyResponse
	if err := json.Unmarshal([]byte(body), &ar); err != nil {
		t.Fatalf("/v1/accuracy not JSON: %v", err)
	}
	if ar.Window <= 0 {
		t.Fatalf("window = %d", ar.Window)
	}
	all, ok := ar.Keys["all"]
	if !ok {
		t.Fatalf("accuracy keys missing \"all\": %v", ar.Keys)
	}
	if all.Count != 4 {
		t.Fatalf("scored %d completions, want 4 (first two lack history)", all.Count)
	}
	// Identical 100s run times predict exactly; errors must be zero.
	if all.Exact != 4 || all.MeanError != 0 || all.RMSError != 0 {
		t.Fatalf("constant stream scored %+v, want exact zero error", all)
	}
	var hasTemplate bool
	for k := range ar.Keys {
		if strings.HasPrefix(k, "template_") {
			hasTemplate = true
		}
	}
	if !hasTemplate {
		t.Fatalf("no per-template accuracy stream: %v", ar.Keys)
	}

	// The accuracy gauges reach /v1/metrics under both representations.
	snap := getMetrics(t, ts.URL)
	if _, ok := snap.Gauges["accuracy.all.count"]; !ok {
		t.Fatalf("accuracy gauges not published: %v", snap.Gauges)
	}
	_, promBody := getWithAccept(t, ts.URL+"/v1/metrics", "text/plain")
	if !strings.Contains(promBody, "accuracy_all_count 4") {
		t.Fatalf("prometheus exposition missing accuracy gauge:\n%s", promBody)
	}
}
