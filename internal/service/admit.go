package service

import (
	"net/http"

	"repro/internal/admission"
	"repro/internal/workload"
)

// SetAdmission attaches a predictive SLO admission controller: POST
// /v1/admit becomes live, evaluating each submitted job's estimated wait
// against its class budget. The controller should be constructed with
// this server's Metrics() registry (and its predictor) so the
// admission.* counters appear on /v1/metrics.
func (s *Server) SetAdmission(c *admission.Controller) { s.adm = c }

// AdmitRequest asks whether Job should be admitted given the scheduler's
// current queue (arrival order, WITHOUT the job — it has not been
// admitted yet; entries sharing the job's ID are ignored) and running
// set. Now is the submission instant in trace seconds.
type AdmitRequest struct {
	Now     int64     `json:"now"`
	Job     JobJSON   `json:"job"`
	Queue   []JobJSON `json:"queue"`
	Running []JobJSON `json:"running"`
}

// AdmitResponse is the admission verdict: the decision (admit/shed with
// its reason), the wait estimate that produced it, and the budget it was
// held against.
type AdmitResponse struct {
	admission.Decision
}

func (s *Server) handleAdmit(w http.ResponseWriter, r *http.Request) {
	if s.adm == nil {
		errorJSON(w, http.StatusServiceUnavailable, "admission controller not configured")
		return
	}
	var req AdmitRequest
	if !decode(w, r, &req) {
		return
	}
	target := req.Job.toJob()
	if target.Nodes <= 0 {
		errorJSON(w, http.StatusBadRequest, "job needs a positive nodes count")
		return
	}
	queue := make([]*workload.Job, 0, len(req.Queue))
	for i := range req.Queue {
		j := req.Queue[i].toJob()
		if j.ID == target.ID {
			continue // tolerate clients that already queued the job
		}
		queue = append(queue, j)
	}
	running := make([]*workload.Job, 0, len(req.Running))
	for i := range req.Running {
		running = append(running, req.Running[i].toJob())
	}
	// The forward simulation reads the predictor's history: share the read
	// lock exactly like /v1/predictwait.
	s.mu.RLock()
	d := s.adm.EvaluateCtx(r.Context(), req.Now, target, queue, running)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, AdmitResponse{Decision: d})
}
