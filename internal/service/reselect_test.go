package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/core"
	"repro/internal/workload"
)

// newReselectServer builds a test server with the stable attached, using a
// small window so drift confirms within a few dozen observations.
func newReselectServer(t *testing.T, switching bool) (*httptest.Server, *Server) {
	t.Helper()
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	s := New(pred, 64)
	s.EnableReselect(ReselectOptions{
		Window: 8, MinDwell: 8, CostRatio: 2, Switching: switching,
	})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func getStable(t *testing.T, baseURL string) StableResponse {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/stable")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/stable status %d", resp.StatusCode)
	}
	var sr StableResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		t.Fatal(err)
	}
	return sr
}

// observeStep posts n completions from one user with the given run time
// and limit, so the core predictor's category history is exercised.
func observeStep(t *testing.T, baseURL string, startID, n int, rt, maxRT int64) int {
	t.Helper()
	for i := 0; i < n; i++ {
		var ok map[string]bool
		resp := post(t, baseURL+"/v1/observe",
			ObserveRequest{Job: job(startID+i, "alice", 8, rt+int64(i%5), maxRT)}, &ok)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("observe %d: status %d", startID+i, resp.StatusCode)
		}
	}
	return startID + n
}

func TestStableEndpointDisabled(t *testing.T) {
	ts, _ := newTestServer(t)
	sr := getStable(t, ts.URL)
	if sr.Enabled || sr.Reselect || len(sr.Scoreboard) != 0 || len(sr.Events) != 0 {
		t.Fatalf("stable without EnableReselect = %+v, want disabled and empty", sr)
	}
}

// TestShadowOnlyScoreboard: without switching armed, the stable is scored
// and ranked — and drift is detected — but the serving predictor is pinned.
func TestShadowOnlyScoreboard(t *testing.T) {
	ts, s := newReselectServer(t, false)
	id := observeStep(t, ts.URL, 0, 40, 600, 4000)
	observeStep(t, ts.URL, id, 40, 3900, 4000) // step change the core predicts badly

	sr := getStable(t, ts.URL)
	if !sr.Enabled || sr.Reselect {
		t.Fatalf("stable = %+v, want enabled shadow-only", sr)
	}
	if sr.Serving != "smith" || sr.Switches != 0 || len(sr.Events) != 0 {
		t.Fatalf("shadow-only mode switched: %+v", sr)
	}
	if sr.CostRatio != 2 || sr.Window != 8 {
		t.Fatalf("config echo = ratio %v window %d", sr.CostRatio, sr.Window)
	}
	if len(sr.Scoreboard) != 6 {
		t.Fatalf("scoreboard has %d rows, want 6", len(sr.Scoreboard))
	}
	names := map[string]bool{}
	for _, e := range sr.Scoreboard {
		names[e.Name] = true
		if !e.Eligible {
			t.Fatalf("member %q ineligible after 80 completions", e.Name)
		}
	}
	for _, want := range []string{"smith", "gibbons", "downey-avg", "maxrt", "globalmean", "smith>maxrt"} {
		if !names[want] {
			t.Fatalf("scoreboard missing %q: %+v", want, sr.Scoreboard)
		}
	}
	// The stable's drift still registers even though no switch fires.
	if d := s.Reselector().Serving().DriftState("serving"); !d.Drifting {
		t.Fatalf("serving stream not drifting after the step: %+v", d)
	}

	// The new gauge families surface on /v1/metrics.
	snap := getMetrics(t, ts.URL)
	if snap.Gauges["accuracy.shadow.maxrt.count"] != 80 {
		t.Fatalf("accuracy.shadow.maxrt.count = %v, want 80", snap.Gauges["accuracy.shadow.maxrt.count"])
	}
	if v, ok := snap.Gauges["accuracy.serving.window_tail_score"]; !ok || v <= 0 {
		t.Fatalf("accuracy.serving.window_tail_score = %v,%v", v, ok)
	}
	if v, ok := snap.Gauges["accuracy.reselect.switches"]; !ok || v != 0 {
		t.Fatalf("accuracy.reselect.switches = %v,%v, want present and 0", v, ok)
	}

	// Predictions name the serving predictor.
	var pr PredictResponse
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(999, "alice", 8, 0, 4000)}, &pr)
	if pr.Predictor != "smith" {
		t.Fatalf("predict served by %q, want smith", pr.Predictor)
	}
}

// TestReselectSwitchesServing is the end-to-end HTTP test: a run-time step
// the template predictor cannot follow drives confirmed drift, the
// controller installs the scoreboard winner, and the predict endpoints
// serve — and name — the new predictor.
func TestReselectSwitchesServing(t *testing.T) {
	ts, _ := newReselectServer(t, true)
	id := observeStep(t, ts.URL, 0, 40, 600, 4000)
	sr := getStable(t, ts.URL)
	if sr.Switches != 0 || sr.Serving != "smith" {
		t.Fatalf("switched during the stationary phase: %+v", sr)
	}
	observeStep(t, ts.URL, id, 60, 3900, 4000)

	sr = getStable(t, ts.URL)
	if !sr.Enabled || !sr.Reselect {
		t.Fatalf("stable = %+v, want enabled with switching", sr)
	}
	if sr.Switches < 1 || len(sr.Events) == 0 {
		t.Fatalf("no switch after the step: %+v", sr)
	}
	if sr.Serving == "smith" {
		t.Fatalf("still serving smith after the step: %+v", sr)
	}
	ev := sr.Events[0]
	if ev.From != "smith" {
		t.Fatalf("first event %+v, want a switch away from smith", ev)
	}
	if sr.Switches == 1 && ev.To != sr.Serving {
		t.Fatalf("single switch to %q but serving %q", ev.To, sr.Serving)
	}
	if !ev.Drift.Drifting || !(ev.ToScore < ev.FromScore) {
		t.Fatalf("switch without confirmed improvement: %+v", ev)
	}
	if ev.At == 0 {
		t.Fatalf("event missing wall-time stamp: %+v", ev)
	}

	// Single and batch predictions follow the switch and say who served.
	var pr PredictResponse
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(9999, "alice", 8, 0, 4000)}, &pr)
	if pr.Predictor != sr.Serving {
		t.Fatalf("predict served by %q, stable reports %q", pr.Predictor, sr.Serving)
	}
	if !pr.OK || pr.Seconds <= 0 {
		t.Fatalf("switched predictor gave no estimate: %+v", pr)
	}
	var br PredictBatchResponse
	post(t, ts.URL+"/v1/predict/batch", PredictBatchRequest{Jobs: []PredictRequest{
		{Job: job(9998, "alice", 8, 0, 4000)},
	}}, &br)
	if len(br.Results) != 1 || br.Results[0].Predictor != sr.Serving {
		t.Fatalf("batch results %+v, want served by %q", br.Results, sr.Serving)
	}

	// The switch is visible in the reselect counter family.
	snap := getMetrics(t, ts.URL)
	if v := snap.Gauges["accuracy.reselect.switches"]; v < 1 {
		t.Fatalf("accuracy.reselect.switches = %v, want >= 1", v)
	}
}
