package service

import (
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/obs/trace"
	"repro/internal/sched"
	"repro/internal/workload"
)

// newAdmitServer builds a server with an attached admission controller on
// a 64-node machine: interactive always admits, standard sheds beyond an
// hour. The controller shares the server's predictor and registry.
func newAdmitServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	s := New(pred, 64)
	ctrl, err := admission.New(admission.Config{
		Classes:    admission.DefaultClasses(),
		TotalNodes: 64,
		Policy:     sched.FCFS{},
		Predictor:  pred,
		Metrics:    s.Metrics(),
	})
	if err != nil {
		t.Fatal(err)
	}
	s.SetAdmission(ctrl)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func classedJob(id int, nodes int, maxRT int64, class string) JobJSON {
	return JobJSON{ID: id, User: "u", Nodes: nodes, MaxRunTime: maxRT, Class: class}
}

func TestAdmitEndpointAdmitsAndSheds(t *testing.T) {
	ts, _ := newAdmitServer(t)

	// Empty machine: a standard job waits 0s and is admitted.
	var d AdmitResponse
	resp := post(t, ts.URL+"/v1/admit", AdmitRequest{
		Now: 0, Job: classedJob(1, 8, 600, "standard"),
	}, &d)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if !d.Admit || d.Reason != admission.ReasonWithinBudget || d.Source != "forward" {
		t.Fatalf("empty machine: %+v", d)
	}
	if d.BudgetSec != 3600 || d.EffectiveBudgetSec != 3600 {
		t.Fatalf("budget fields: %+v", d)
	}

	// The whole machine is held for two hours: a standard job's estimated
	// wait (7200s ≥ its 3600s budget) sheds it; an interactive job passes.
	hog := JobJSON{ID: 100, User: "u", Nodes: 64, MaxRunTime: 7200, StartTime: 0}
	resp = post(t, ts.URL+"/v1/admit", AdmitRequest{
		Now: 0, Job: classedJob(2, 8, 600, "standard"),
		Running: []JobJSON{hog},
	}, &d)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if d.Admit || d.Reason != admission.ReasonShedBudget || d.PredictedWaitSec != 7200 {
		t.Fatalf("hogged machine: %+v, want shed at 7200s", d)
	}
	resp = post(t, ts.URL+"/v1/admit", AdmitRequest{
		Now: 0, Job: classedJob(3, 8, 600, "interactive"),
		Running: []JobJSON{hog},
	}, &d)
	if resp.StatusCode != http.StatusOK || !d.Admit || d.Reason != admission.ReasonAlways {
		t.Fatalf("interactive: status %d %+v", resp.StatusCode, d)
	}
}

func TestAdmitQueueToleratesTarget(t *testing.T) {
	ts, _ := newAdmitServer(t)
	// The client mistakenly includes the job in the queue: the duplicate is
	// dropped, so the forward simulation sees it exactly once.
	target := classedJob(7, 64, 600, "standard")
	var d AdmitResponse
	resp := post(t, ts.URL+"/v1/admit", AdmitRequest{
		Now: 0, Job: target, Queue: []JobJSON{target},
	}, &d)
	if resp.StatusCode != http.StatusOK || !d.Admit || d.PredictedWaitSec != 0 {
		t.Fatalf("status %d %+v, want admit at 0s", resp.StatusCode, d)
	}
}

func TestAdmitValidation(t *testing.T) {
	ts, _ := newAdmitServer(t)
	var e map[string]string
	resp := post(t, ts.URL+"/v1/admit", AdmitRequest{Now: 0, Job: JobJSON{ID: 1}}, &e)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero nodes: status %d, want 400", resp.StatusCode)
	}

	// Without a controller the endpoint reports unavailability.
	pred := core.New(core.DefaultTemplates(workload.MaskOf(workload.CharUser), true))
	bare := New(pred, 64)
	bareTS := httptest.NewServer(bare.Handler())
	defer bareTS.Close()
	resp = post(t, bareTS.URL+"/v1/admit", AdmitRequest{Now: 0, Job: classedJob(1, 2, 60, "standard")}, &e)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("no controller: status %d, want 503", resp.StatusCode)
	}
}

func TestAdmitMetricsOnSnapshot(t *testing.T) {
	ts, s := newAdmitServer(t)
	hog := JobJSON{ID: 100, User: "u", Nodes: 64, MaxRunTime: 7200, StartTime: 0}
	var d AdmitResponse
	post(t, ts.URL+"/v1/admit", AdmitRequest{Now: 0, Job: classedJob(1, 8, 600, "standard")}, &d)
	post(t, ts.URL+"/v1/admit", AdmitRequest{
		Now: 0, Job: classedJob(2, 8, 600, "standard"), Running: []JobJSON{hog}}, &d)

	snap := s.Metrics().Snapshot()
	for name, want := range map[string]int64{
		"admission.decisions":               2,
		"admission.admitted":                1,
		"admission.shed":                    1,
		"admission.shed_budget":             1,
		"admission.class.standard.admitted": 1,
		"admission.class.standard.shed":     1,
		"http.admit.requests":               2,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
	if got := snap.Gauges["admission.headroom"]; got != 1.0 { //lint:allow floatcmp exact configured value
		t.Errorf("admission.headroom = %g, want 1", got)
	}
}

func TestAdmitTraceDecomposition(t *testing.T) {
	ts, s := newAdmitServer(t)
	tr := trace.New(trace.WithSampleRate(1))
	s.SetTracer(tr)

	var d AdmitResponse
	post(t, ts.URL+"/v1/admit", AdmitRequest{Now: 0, Job: classedJob(1, 8, 600, "standard")}, &d)

	recent := tr.Recent()
	if len(recent) == 0 {
		t.Fatal("no trace kept")
	}
	names := map[string]bool{}
	for _, sp := range recent[0].Spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"http.admit", "admission.decide", "waitpred.simulate"} {
		if !names[want] {
			t.Errorf("trace missing span %q (have %v)", want, names)
		}
	}
}
