// Package service exposes the run-time predictor and the queue wait-time
// predictor over HTTP/JSON — the deployment surface the paper's §1
// motivates: "estimates of queue wait times are useful to guide resource
// selection when several systems are available, to co-allocate resources
// from multiple systems, to schedule other activities, and so forth."
// A scheduler (or metascheduler) feeds completions to /v1/observe and asks
// /v1/predict for run times (/v1/predict/batch to score a whole queue in
// one request) and /v1/predictwait for queue waits. With an admission
// controller attached (SetAdmission), POST /v1/admit turns those wait
// estimates into admit/shed decisions against per-class SLO budgets.
//
// The server guards the predictor with a read-write mutex: observations
// and checkpoints take the write lock, while predictions — which never
// mutate the category database — share a read lock, so concurrent
// /v1/predict and /v1/predictwait requests proceed in parallel and only
// serialize behind observes.
//
// Every endpoint is instrumented through an internal/obs registry
// (request counts, error counts, latency histograms, predictor hit/miss
// tallies); GET /v1/metrics returns the full snapshot as JSON or, under
// content negotiation, Prometheus text exposition. EnablePprof mounts
// net/http/pprof under /debug/pprof/.
//
// With SetTracer attached, every request opens a root span and the hot
// paths decompose into child spans (template matching, shard reads, WAL
// appends, the wait-time forward simulation); GET /v1/traces returns the
// ring of recently kept traces. Every completion POSTed to /v1/observe
// also scores the prediction the server would have made for it, feeding
// the accuracy tracker behind GET /v1/accuracy — the paper's Tables 4–9
// error columns, computed live, with drift warnings in the log.
//
// With EnableReselect (reselect.go), every completion additionally
// shadow-scores a whole predictor stable — template predictor, Gibbons,
// Downey, maximum run times, global mean, and the smith>maxrt chain — and
// GET /v1/stable serves the live scoreboard. When switching is armed, a
// confirmed deterioration of the serving predictor swaps it for the
// scoreboard winner; /v1/predict, /v1/predict/batch, and /v1/predictwait
// follow the switch, and accuracy.reselect.* counters plus structured
// switch events record the history.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/admission"
	"repro/internal/core"
	"repro/internal/histstore"
	"repro/internal/obs"
	"repro/internal/obs/accuracy"
	"repro/internal/obs/trace"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// JobJSON is the wire form of a job. Fields mirror workload.Job; times are
// seconds. For running jobs StartTime must be set.
type JobJSON struct {
	ID         int    `json:"id"`
	Type       string `json:"type,omitempty"`
	Queue      string `json:"queue,omitempty"`
	Class      string `json:"class,omitempty"`
	User       string `json:"user,omitempty"`
	Script     string `json:"script,omitempty"`
	Executable string `json:"executable,omitempty"`
	Arguments  string `json:"arguments,omitempty"`
	NetAdaptor string `json:"netAdaptor,omitempty"`
	Nodes      int    `json:"nodes"`
	SubmitTime int64  `json:"submitTime,omitempty"`
	RunTime    int64  `json:"runTime,omitempty"`
	MaxRunTime int64  `json:"maxRunTime,omitempty"`
	StartTime  int64  `json:"startTime,omitempty"`
}

// toJob converts wire form to the internal model.
func (j *JobJSON) toJob() *workload.Job {
	return &workload.Job{
		ID: j.ID, Type: j.Type, Queue: j.Queue, Class: j.Class, User: j.User,
		Script: j.Script, Executable: j.Executable, Arguments: j.Arguments,
		NetAdaptor: j.NetAdaptor, Nodes: j.Nodes, SubmitTime: j.SubmitTime,
		RunTime: j.RunTime, MaxRunTime: j.MaxRunTime, StartTime: j.StartTime,
	}
}

// Server is the HTTP prediction service.
type Server struct {
	mu           sync.RWMutex
	pred         *core.Predictor  // guarded by mu
	store        *histstore.Store // non-nil when the predictor is store-backed
	machineNodes int
	observations atomic.Int64
	statePath    string // legacy checkpoint destination; "" disables it
	reg          *obs.Registry
	log          *obs.Logger
	pprof        bool
	tracer       *trace.Tracer // nil until SetTracer; nil tracer is inert
	acc          *accuracy.Tracker
	adm          *admission.Controller // nil until SetAdmission; /v1/admit 503s

	// Re-selection (reselect.go): nil until EnableReselect. The controller
	// serializes the shadow stable behind its own mutex; callers only need
	// s.mu for the core predictor reads the pipeline makes.
	resel          *accuracy.Reselector
	reselSwitching bool // false = shadow-only (scoreboard without switching)

	// Cached instrument handles (allocated once in New, not per request).
	mObserve     *obs.Counter
	mPredictOK   *obs.Counter
	mPredictMiss *obs.Counter
	mWaitErrors  *obs.Counter
}

// New creates a Server around a predictor for a machine of the given size.
func New(pred *core.Predictor, machineNodes int) *Server {
	reg := obs.NewRegistry()
	s := &Server{
		pred: pred, machineNodes: machineNodes,
		reg:          reg,
		log:          obs.Nop(),
		mObserve:     reg.Counter("service.observe.jobs"),
		mPredictOK:   reg.Counter("service.predict.hits"),
		mPredictMiss: reg.Counter("service.predict.misses"),
		mWaitErrors:  reg.Counter("service.predictwait.errors"),
	}
	s.acc = s.newAccuracyTracker()
	return s
}

// newAccuracyTracker builds an accuracy tracker wired to the server's
// drift-warning log, with any extra options appended.
func (s *Server) newAccuracyTracker(opts ...accuracy.Option) *accuracy.Tracker {
	opts = append(opts, accuracy.WithOnDrift(func(key string, d accuracy.Drift) {
		s.log.Warn("prediction accuracy drift", "key", key,
			"window_mean_seconds", d.WindowMean, "baseline_mean_seconds", d.BaselineMean,
			"p", d.P, "t", d.T)
	}))
	return accuracy.New(opts...)
}

// SetTracer attaches a request tracer: every endpoint opens a root span,
// the tracer's counters register on the server's registry, and kept traces
// become readable at GET /v1/traces. A nil tracer (the default) keeps the
// span plumbing fully inert.
func (s *Server) SetTracer(t *trace.Tracer) {
	s.tracer = t
	if t != nil {
		t.SetMetrics(s.reg)
	}
}

// Accuracy returns the server's prediction-accuracy tracker (never nil),
// so embedders can feed completions observed outside the HTTP surface.
func (s *Server) Accuracy() *accuracy.Tracker { return s.acc }

// SetStatePath configures where /v1/checkpoint (and Checkpoint) write the
// predictor state in the legacy single-file format. Ignored when a history
// store is attached — the store's snapshot mechanism takes over.
func (s *Server) SetStatePath(path string) { s.statePath = path }

// SetStore attaches the history store backing the predictor. Checkpoints
// become store snapshots, the store's metrics register with the server's
// registry, and observes run under the read lock (the store's shard locks
// make them safe), so they no longer serialize against predictions.
func (s *Server) SetStore(st *histstore.Store) {
	s.store = st
	if st != nil {
		st.SetMetrics(s.reg)
	}
}

// SetLogger replaces the server's logger (default: discard).
func (s *Server) SetLogger(l *obs.Logger) {
	if l != nil {
		s.log = l
	}
}

// EnablePprof mounts net/http/pprof under /debug/pprof/ on handlers
// returned by subsequent Handler calls.
func (s *Server) EnablePprof() { s.pprof = true }

// Metrics returns the server's metrics registry, so embedders (cmd/qwaitd)
// can log periodic snapshots or add their own series.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Checkpoint persists the predictor's history: a store snapshot when a
// history store is attached, otherwise the legacy single-file state dump.
func (s *Server) Checkpoint() error {
	if s.store != nil {
		return s.store.Snapshot()
	}
	if s.statePath == "" {
		return fmt.Errorf("service: no state path configured")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return saveStateFile(s.pred, s.statePath)
}

// checkpointDest reports where Checkpoint writes, for the HTTP response.
func (s *Server) checkpointDest() string {
	if s.store != nil {
		return s.store.Dir()
	}
	return s.statePath
}

// Handler returns the service's HTTP handler. Every endpoint is wrapped
// with request/error counters and a latency histogram named after it.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/observe", s.instrument("observe", s.handleObserve))
	mux.HandleFunc("/v1/predict", s.instrument("predict", s.handlePredict))
	mux.HandleFunc("/v1/predict/batch", s.instrument("predict_batch", s.handlePredictBatch))
	mux.HandleFunc("/v1/predictwait", s.instrument("predictwait", s.handlePredictWait))
	mux.HandleFunc("/v1/admit", s.instrument("admit", s.handleAdmit))
	mux.HandleFunc("/v1/stats", s.instrument("stats", s.handleStats))
	mux.HandleFunc("/v1/checkpoint", s.instrument("checkpoint", s.handleCheckpoint))
	mux.HandleFunc("/v1/metrics", s.instrument("metrics", s.handleMetrics))
	mux.HandleFunc("/v1/traces", s.instrument("traces", s.handleTraces))
	mux.HandleFunc("/v1/accuracy", s.instrument("accuracy", s.handleAccuracy))
	mux.HandleFunc("/v1/stable", s.instrument("stable", s.handleStable))
	if s.pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// statusWriter captures the response status for error counting.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// instrument wraps an endpoint handler with a request counter, an error
// counter (status ≥ 400), and a latency histogram, all named
// http.<endpoint>.*.
func (s *Server) instrument(name string, h http.HandlerFunc) http.HandlerFunc {
	requests := s.reg.Counter("http." + name + ".requests")
	errors := s.reg.Counter("http." + name + ".errors")
	latency := s.reg.Histogram("http." + name + ".latency_seconds")
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //lint:allow wallclock real HTTP request latency is exactly what this measures
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		ctx, sp := s.tracer.StartRoot(r.Context(), "http."+name)
		if sp != nil {
			r = r.WithContext(ctx)
		}
		h(sw, r)
		if sp != nil {
			sp.SetAttrInt("status", int64(sw.status))
			sp.End()
		}
		elapsed := time.Since(start).Seconds() //lint:allow wallclock real HTTP request latency is exactly what this measures
		requests.Inc()
		if sw.status >= 400 {
			errors.Inc()
		}
		latency.Observe(elapsed)
		if s.log.Enabled(obs.LevelDebug) {
			s.log.Debug("request", "endpoint", name, "status", sw.status,
				"seconds", elapsed)
		}
	}
}

// handleMetrics serves the full metrics snapshot, refreshing the predictor
// gauges (category count, stored history size, template count) and the
// accuracy gauges first. The representation is negotiated: JSON by
// default, Prometheus text exposition when the Accept header asks for
// text/plain or application/openmetrics-text (or ?format=prometheus),
// each with its explicit Content-Type.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	cats := s.pred.Categories()
	hist := s.pred.HistorySize()
	tmpl := len(s.pred.Templates())
	s.mu.RUnlock()
	s.reg.Gauge("predictor.categories").SetInt(int64(cats))
	s.reg.Gauge("predictor.history_size").SetInt(int64(hist))
	s.reg.Gauge("predictor.templates").SetInt(int64(tmpl))
	if s.store != nil {
		s.store.RefreshMetrics()
	}
	s.acc.Publish(s.reg)
	if s.resel != nil {
		s.resel.Serving().Publish(s.reg) // accuracy.serving.*
		s.resel.Shadow().Publish(s.reg)  // accuracy.shadow.<member>.*
		s.resel.Publish(s.reg)           // accuracy.reselect.*
	}
	snap := s.reg.Snapshot()
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", obs.PrometheusContentType)
		w.WriteHeader(http.StatusOK)
		_ = snap.WritePrometheus(w) // client gone mid-write; nothing to do
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// wantsPrometheus decides the /v1/metrics representation: an explicit
// ?format=prometheus (or json) query wins, otherwise the first recognized
// media type in the Accept header does, and the default stays JSON so
// existing scrapers keep working.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus", "openmetrics":
		return true
	case "json":
		return false
	}
	for _, part := range strings.Split(r.Header.Get("Accept"), ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch mt {
		case "application/json":
			return false
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// TracesResponse is the GET /v1/traces payload: the tracer's ring of
// recently kept traces, newest first.
type TracesResponse struct {
	Enabled bool          `json:"enabled"`
	Traces  []trace.Trace `json:"traces"`
}

func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	resp := TracesResponse{Enabled: s.tracer.Enabled(), Traces: s.tracer.Recent()}
	if resp.Traces == nil {
		resp.Traces = []trace.Trace{}
	}
	writeJSON(w, http.StatusOK, resp)
}

// AccuracyResponse is the GET /v1/accuracy payload: per-key prediction
// accuracy summaries (signed error moments, absolute-error quantiles,
// over/under counts, drift state).
type AccuracyResponse struct {
	Window int                             `json:"window"`
	Keys   map[string]accuracy.KeySnapshot `json:"keys"`
}

func (s *Server) handleAccuracy(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		errorJSON(w, http.StatusMethodNotAllowed, "GET required")
		return
	}
	writeJSON(w, http.StatusOK, AccuracyResponse{
		Window: s.acc.Window(),
		Keys:   s.acc.Snapshot(),
	})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var err error
	if s.store != nil {
		err = s.store.SnapshotCtx(r.Context())
	} else {
		err = s.Checkpoint()
	}
	if err != nil {
		errorJSON(w, http.StatusInternalServerError, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"saved": s.checkpointDest()})
}

// writeJSON writes v as a JSON response.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// errorJSON writes a JSON error envelope.
func errorJSON(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// decode reads a JSON request body into v.
//
// taint: source HTTP request bodies are caller-controlled and unvalidated
func decode(w http.ResponseWriter, r *http.Request, v interface{}) bool {
	if r.Method != http.MethodPost {
		errorJSON(w, http.StatusMethodNotAllowed, "POST required")
		return false
	}
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		errorJSON(w, http.StatusBadRequest, "bad request: %v", err)
		return false
	}
	return true
}

// ObserveRequest feeds one completed job to the predictor.
type ObserveRequest struct {
	Job JobJSON `json:"job"`
}

// validateObserved rejects a reported completion whose fields would
// corrupt the durable history: run time and node count must be positive
// and the user-supplied maximum non-negative — the values the store (and
// recovery) would refuse, rejected before they are journaled. The empty
// string means the job may enter the history.
//
// taint: sanitizer rejects completions the durable history (and its recovery) would refuse
func validateObserved(job *workload.Job) string {
	switch {
	case job.RunTime <= 0:
		return "completed job needs a positive runTime"
	case job.Nodes <= 0:
		return "completed job needs a positive nodes count"
	case job.MaxRunTime < 0:
		return "maxRunTime must not be negative"
	}
	return ""
}

func (s *Server) handleObserve(w http.ResponseWriter, r *http.Request) {
	var req ObserveRequest
	if !decode(w, r, &req) {
		return
	}
	job := req.Job.toJob()
	if msg := validateObserved(job); msg != "" {
		errorJSON(w, http.StatusBadRequest, "%s", msg)
		return
	}
	ctx := r.Context()
	// Score the prediction this completion would have received before it
	// enters the history (afterwards the job would predict itself): the
	// online counterpart of the paper's Tables 4–9 error columns, tracked
	// for the whole stream and for the winning template.
	score := func() {
		if det, ok := s.pred.PredictDetailedCtx(ctx, job, 0); ok {
			err, actual := float64(det.Seconds), float64(job.RunTime)
			s.acc.Record("all", err, actual)
			s.acc.Record("template_"+strconv.Itoa(det.Template), err, actual)
		}
		// The re-selection pipeline also scores pre-observe: the serving
		// estimate and every shadow member's estimate are the ones a queued
		// job would have received at this instant. Switch events are stamped
		// with arrival wall time — the service's event clock.
		if s.resel != nil {
			s.resel.ObserveAt(ctx, float64(time.Now().Unix()), job) //lint:allow wallclock switch events record real arrival time
		}
	}
	if s.store != nil {
		// Store-backed observes are concurrency-safe (the store's shard
		// locks guard them), so they share the read lock and proceed in
		// parallel with predictions; the write lock is only needed to
		// exclude whole-database swaps (LoadState).
		s.mu.RLock()
		score()
		s.pred.ObserveCtx(ctx, job)
		s.mu.RUnlock()
	} else {
		s.mu.Lock()
		score()
		s.pred.ObserveCtx(ctx, job)
		s.mu.Unlock()
	}
	s.observations.Add(1)
	s.mObserve.Inc()
	writeJSON(w, http.StatusOK, map[string]bool{"ok": true})
}

// PredictRequest asks for a run-time prediction.
type PredictRequest struct {
	Job JobJSON `json:"job"`
	Age int64   `json:"age,omitempty"` // seconds already executed
}

// PredictResponse carries the prediction. When the history cannot provide
// one, OK is false and Seconds falls back to the job's maximum run time
// (zero when there is none). With re-selection enabled, Predictor names
// the serving predictor that produced the estimate; a value other than
// the core template predictor means a switch is in effect, and the
// template/interval details are absent.
type PredictResponse struct {
	OK        bool    `json:"ok"`
	Seconds   int64   `json:"seconds"`
	Interval  float64 `json:"interval,omitempty"` // CI half-width, seconds
	Template  int     `json:"template,omitempty"`
	Points    int     `json:"points,omitempty"`
	Predictor string  `json:"predictor,omitempty"` // serving predictor (re-selection only)
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	var req PredictRequest
	if !decode(w, r, &req) {
		return
	}
	job := req.Job.toJob()
	// A re-selection switch replaces the serving predictor: predictions
	// come from the scoreboard winner (no template details) until the
	// controller switches again.
	if p := s.servingOverride(); p != nil {
		s.mu.RLock()
		sec, ok := p.Predict(job, req.Age)
		s.mu.RUnlock()
		resp := PredictResponse{OK: ok, Predictor: p.Name()}
		if ok {
			s.mPredictOK.Inc()
			resp.Seconds = sec
		} else {
			s.mPredictMiss.Inc()
			resp.Seconds = job.MaxRunTime
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.mu.RLock()
	det, ok := s.pred.PredictDetailedCtx(r.Context(), job, req.Age)
	var servedBy string
	if s.resel != nil {
		servedBy = s.pred.Name()
	}
	s.mu.RUnlock()
	if ok {
		s.mPredictOK.Inc()
	} else {
		s.mPredictMiss.Inc()
	}
	resp := PredictResponse{OK: ok, Predictor: servedBy}
	if ok {
		resp.Seconds = det.Seconds
		resp.Interval = det.Interval
		resp.Template = det.Template
		resp.Points = det.N
	} else {
		resp.Seconds = job.MaxRunTime
	}
	writeJSON(w, http.StatusOK, resp)
}

// maxPredictBatch bounds one /v1/predict/batch request. It is generous —
// one scheduling pass over a large queue fits comfortably — while keeping a
// single request from monopolizing the server.
const maxPredictBatch = 10000

// PredictBatchRequest asks for run-time predictions for many jobs at once.
// Batching amortizes request overhead and category resolution: within one
// batch every distinct category is resolved against the history at most
// once, so all jobs are scored from the same consistent snapshot — exactly
// what a scheduler wants when ranking a whole queue in one pass.
type PredictBatchRequest struct {
	Jobs []PredictRequest `json:"jobs"`
}

// PredictBatchResponse carries one PredictResponse per requested job, in
// request order.
type PredictBatchResponse struct {
	Results []PredictResponse `json:"results"`
}

func (s *Server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	var req PredictBatchRequest
	if !decode(w, r, &req) {
		return
	}
	if len(req.Jobs) > maxPredictBatch {
		errorJSON(w, http.StatusBadRequest, "batch of %d jobs exceeds limit %d",
			len(req.Jobs), maxPredictBatch)
		return
	}
	items := make([]core.BatchItem, len(req.Jobs))
	jobs := make([]*workload.Job, len(req.Jobs))
	for i := range req.Jobs {
		jobs[i] = req.Jobs[i].Job.toJob()
		items[i] = core.BatchItem{Job: jobs[i], Age: req.Jobs[i].Age}
	}
	if p := s.servingOverride(); p != nil {
		// Switched serving predictor: score the batch member by member (no
		// category resolution to amortize outside the core predictor).
		resp := PredictBatchResponse{Results: make([]PredictResponse, len(jobs))}
		name := p.Name()
		s.mu.RLock()
		for i, j := range jobs {
			sec, ok := p.Predict(j, items[i].Age)
			pr := PredictResponse{OK: ok, Predictor: name}
			if ok {
				s.mPredictOK.Inc()
				pr.Seconds = sec
			} else {
				s.mPredictMiss.Inc()
				pr.Seconds = j.MaxRunTime
			}
			resp.Results[i] = pr
		}
		s.mu.RUnlock()
		writeJSON(w, http.StatusOK, resp)
		return
	}
	s.mu.RLock()
	res := s.pred.PredictDetailedBatchCtx(r.Context(), items)
	var servedBy string
	if s.resel != nil {
		servedBy = s.pred.Name()
	}
	s.mu.RUnlock()
	resp := PredictBatchResponse{Results: make([]PredictResponse, len(res))}
	for i, br := range res {
		pr := PredictResponse{OK: br.OK, Predictor: servedBy}
		if br.OK {
			s.mPredictOK.Inc()
			pr.Seconds = br.Seconds
			pr.Interval = br.Interval
			pr.Template = br.Template
			pr.Points = br.N
		} else {
			s.mPredictMiss.Inc()
			pr.Seconds = jobs[i].MaxRunTime
		}
		resp.Results[i] = pr
	}
	writeJSON(w, http.StatusOK, resp)
}

// PredictWaitRequest asks for a queue wait prediction for Target, given the
// scheduler's current queue (arrival order, including Target) and running
// set. Policy is one of sched.ByName's names; it defaults to "Backfill".
type PredictWaitRequest struct {
	Now     int64     `json:"now"`
	Policy  string    `json:"policy,omitempty"`
	Target  JobJSON   `json:"target"`
	Queue   []JobJSON `json:"queue"`
	Running []JobJSON `json:"running"`
}

// PredictWaitResponse carries the predicted wait in seconds.
type PredictWaitResponse struct {
	WaitSeconds  int64 `json:"waitSeconds"`
	StartSeconds int64 `json:"startSeconds"`
}

func (s *Server) handlePredictWait(w http.ResponseWriter, r *http.Request) {
	var req PredictWaitRequest
	if !decode(w, r, &req) {
		return
	}
	policyName := req.Policy
	if policyName == "" {
		policyName = "Backfill"
	}
	pol := sched.ByName(policyName)
	if pol == nil {
		errorJSON(w, http.StatusBadRequest, "unknown policy %q", policyName)
		return
	}
	var target *workload.Job
	queue := make([]*workload.Job, 0, len(req.Queue))
	for i := range req.Queue {
		j := req.Queue[i].toJob()
		queue = append(queue, j)
		if j.ID == req.Target.ID {
			target = j
		}
	}
	if target == nil {
		errorJSON(w, http.StatusBadRequest, "target (id %d) must appear in queue", req.Target.ID)
		return
	}
	running := make([]*workload.Job, 0, len(req.Running))
	for i := range req.Running {
		running = append(running, req.Running[i].toJob())
	}
	s.mu.RLock()
	// Wait predictions follow re-selection: the forward simulation runs the
	// predictor currently serving (the switchable tracks switches), so a
	// drift-driven switch changes wait estimates on the same completion.
	var rp predict.Predictor = s.pred
	if s.resel != nil {
		rp = s.resel.Switchable()
	}
	start, err := waitpred.PredictStartCtx(r.Context(), req.Now, target, queue, running,
		s.machineNodes, pol, rp, predict.MaxRuntime{}, 0)
	s.mu.RUnlock()
	if err != nil {
		s.mWaitErrors.Inc()
		errorJSON(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, PredictWaitResponse{
		WaitSeconds:  start - target.SubmitTime,
		StartSeconds: start,
	})
}

// StatsResponse reports service counters.
type StatsResponse struct {
	Categories   int   `json:"categories"`
	Observations int64 `json:"observations"`
	MachineNodes int   `json:"machineNodes"`
	Templates    int   `json:"templates"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	resp := StatsResponse{
		Categories:   s.pred.Categories(),
		Observations: s.observations.Load(),
		MachineNodes: s.machineNodes,
		Templates:    len(s.pred.Templates()),
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, resp)
}

// saveStateFile atomically writes the predictor checkpoint: write to a
// temporary file in the same directory, then rename over the destination.
func saveStateFile(pred *core.Predictor, path string) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := pred.SaveState(f); err != nil {
		_ = f.Close()      // the SaveState error is the one worth reporting
		_ = os.Remove(tmp) // best-effort cleanup of a partial checkpoint
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) // best-effort cleanup of a partial checkpoint
		return err
	}
	return os.Rename(tmp, path)
}

// LoadStateFile restores a predictor checkpoint written by Checkpoint.
// A missing file is not an error (cold start).
func LoadStateFile(pred *core.Predictor, path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return false, nil
		}
		return false, err
	}
	defer f.Close() //lint:allow errdrop read-only file; a close error cannot lose data
	if err := pred.LoadState(f); err != nil {
		return false, err
	}
	return true, nil
}
