package service

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/histstore"
	"repro/internal/obs"
	"repro/internal/workload"
)

func newTestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	s := New(pred, 64)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s
}

func post(t *testing.T, url string, body interface{}, out interface{}) *http.Response {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp
}

func job(id int, user string, nodes int, rt, maxRT int64) JobJSON {
	return JobJSON{ID: id, User: user, Executable: user + "/app", Nodes: nodes,
		RunTime: rt, MaxRunTime: maxRT}
}

func TestObserveThenPredict(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 3; i++ {
		var ok map[string]bool
		resp := post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "alice", 8, 600, 1200)}, &ok)
		if resp.StatusCode != http.StatusOK || !ok["ok"] {
			t.Fatalf("observe: status %d ok=%v", resp.StatusCode, ok)
		}
	}
	var pr PredictResponse
	resp := post(t, ts.URL+"/v1/predict",
		PredictRequest{Job: job(99, "alice", 8, 0, 1200)}, &pr)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("predict status %d", resp.StatusCode)
	}
	if !pr.OK || pr.Seconds != 600 {
		t.Fatalf("prediction = %+v, want 600s", pr)
	}
	if pr.Points != 3 {
		t.Fatalf("points = %d", pr.Points)
	}
}

func TestPredictFallsBackToMaxRT(t *testing.T) {
	ts, _ := newTestServer(t)
	var pr PredictResponse
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(1, "nobody", 4, 0, 999)}, &pr)
	if pr.OK {
		t.Fatal("no history: OK should be false")
	}
	if pr.Seconds != 999 {
		t.Fatalf("fallback = %d, want the max run time", pr.Seconds)
	}
}

func TestPredictBatchEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// No history yet: every item misses and falls back to its max run time,
	// exactly like /v1/predict.
	var br PredictBatchResponse
	resp := post(t, ts.URL+"/v1/predict/batch", PredictBatchRequest{Jobs: []PredictRequest{
		{Job: job(100, "nobody", 4, 0, 999)},
	}}, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(br.Results) != 1 || br.Results[0].OK || br.Results[0].Seconds != 999 {
		t.Fatalf("miss = %+v, want fallback 999", br.Results)
	}

	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "alice", 8, 600, 1200)}, nil)
	}
	resp = post(t, ts.URL+"/v1/predict/batch", PredictBatchRequest{Jobs: []PredictRequest{
		{Job: job(99, "alice", 8, 0, 1200)},
		{Job: job(101, "alice", 8, 0, 1200), Age: 100},
	}}, &br)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d", resp.StatusCode)
	}
	if len(br.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(br.Results))
	}
	// Item 0 must match the single-prediction endpoint bit-for-bit.
	var single PredictResponse
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(99, "alice", 8, 0, 1200)}, &single)
	if br.Results[0] != single {
		t.Fatalf("batch result %+v != single %+v", br.Results[0], single)
	}
	if !br.Results[0].OK || br.Results[0].Seconds != 600 {
		t.Fatalf("hit = %+v, want 600s", br.Results[0])
	}
	if !br.Results[1].OK {
		t.Fatalf("aged item = %+v, want a hit", br.Results[1])
	}

	// Empty batch is legal and returns an empty result list.
	post(t, ts.URL+"/v1/predict/batch", PredictBatchRequest{}, &br)
	if len(br.Results) != 0 {
		t.Fatalf("empty batch returned %d results", len(br.Results))
	}

	// Oversized batches are rejected up front.
	resp = post(t, ts.URL+"/v1/predict/batch",
		PredictBatchRequest{Jobs: make([]PredictRequest, maxPredictBatch+1)}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", resp.StatusCode)
	}
}

func TestPredictWaitEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	// Machine: 64 nodes; one running job holds all of them until t=500
	// (from its max run time, since there is no history).
	running := JobJSON{ID: 10, User: "bob", Nodes: 64, MaxRunTime: 500, StartTime: 0}
	target := JobJSON{ID: 1, User: "alice", Nodes: 64, MaxRunTime: 600, SubmitTime: 100}
	var pw PredictWaitResponse
	resp := post(t, ts.URL+"/v1/predictwait", PredictWaitRequest{
		Now:     100,
		Policy:  "FCFS",
		Target:  target,
		Queue:   []JobJSON{target},
		Running: []JobJSON{running},
	}, &pw)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if pw.StartSeconds != 500 || pw.WaitSeconds != 400 {
		t.Fatalf("predicted start/wait = %d/%d, want 500/400", pw.StartSeconds, pw.WaitSeconds)
	}
}

func TestPredictWaitValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	target := JobJSON{ID: 1, User: "a", Nodes: 4, MaxRunTime: 100}
	// Target missing from queue.
	resp := post(t, ts.URL+"/v1/predictwait", PredictWaitRequest{Target: target}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("missing target: status %d", resp.StatusCode)
	}
	// Unknown policy.
	resp = post(t, ts.URL+"/v1/predictwait", PredictWaitRequest{
		Policy: "EDF", Target: target, Queue: []JobJSON{target},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown policy: status %d", resp.StatusCode)
	}
}

func TestObserveValidation(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(1, "a", 4, 0, 0)}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero runtime observe: status %d", resp.StatusCode)
	}
	// Nodes<=0 (e.g. the field omitted) and negative maxRunTime must be
	// rejected before they reach the history store: the durable write path
	// journals what it accepts, and recovery refuses such points, so letting
	// one through would brick every subsequent boot.
	resp = post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(2, "a", 0, 600, 0)}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero nodes observe: status %d", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(3, "a", -1, 600, 0)}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative nodes observe: status %d", resp.StatusCode)
	}
	resp = post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(4, "a", 4, 600, -30)}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative maxRunTime observe: status %d", resp.StatusCode)
	}
	// Unknown fields rejected.
	raw := bytes.NewReader([]byte(`{"job":{"id":1,"nodes":1,"runTime":10},"bogus":true}`))
	r, err := http.Post(ts.URL+"/v1/observe", "application/json", raw)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: status %d", r.StatusCode)
	}
	// GET rejected.
	g, err := http.Get(ts.URL + "/v1/observe")
	if err != nil {
		t.Fatal(err)
	}
	g.Body.Close()
	if g.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET: status %d", g.StatusCode)
	}
}

func TestStatsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(1, "a", 4, 100, 200)}, nil)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Observations != 1 || st.Categories == 0 || st.MachineNodes != 64 || st.Templates == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestConcurrentClients(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			user := string(rune('a' + c))
			for i := 0; i < 20; i++ {
				post(t, ts.URL+"/v1/observe",
					ObserveRequest{Job: job(c*100+i, user, 4, int64(60+i), 600)}, nil)
				var pr PredictResponse
				post(t, ts.URL+"/v1/predict",
					PredictRequest{Job: job(c*100+i, user, 4, 0, 600)}, &pr)
			}
		}(c)
	}
	wg.Wait()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Observations != 160 {
		t.Fatalf("observations = %d, want 160", st.Observations)
	}
}

func TestCheckpointEndpointAndRestore(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/state.jsonl"
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	s := New(pred, 64)
	s.SetStatePath(path)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "alice", 8, 600, 1200)}, nil)
	}
	resp := post(t, ts.URL+"/v1/checkpoint", struct{}{}, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkpoint status %d", resp.StatusCode)
	}

	// A fresh predictor restored from the file predicts identically.
	fresh := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	restored, err := LoadStateFile(fresh, path)
	if err != nil || !restored {
		t.Fatalf("restore: %v, %v", restored, err)
	}
	got, ok := fresh.Predict(&workload.Job{User: "alice", Executable: "alice/app",
		Nodes: 8, MaxRunTime: 1200}, 0)
	if !ok || got != 600 {
		t.Fatalf("restored prediction = %d, %v", got, ok)
	}
	// Missing file is a cold start, not an error.
	if restored, err := LoadStateFile(fresh, dir+"/missing"); err != nil || restored {
		t.Fatalf("missing file: %v, %v", restored, err)
	}
}

func TestCheckpointWithoutPath(t *testing.T) {
	ts, _ := newTestServer(t)
	resp := post(t, ts.URL+"/v1/checkpoint", struct{}{}, nil)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("checkpoint without path: status %d", resp.StatusCode)
	}
}

func TestMetricsEndpointReflectsTraffic(t *testing.T) {
	ts, _ := newTestServer(t)
	// A predict before any history misses; observes then a hit.
	var pr PredictResponse
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(50, "carol", 8, 0, 900)}, &pr)
	if pr.OK {
		t.Fatal("predict with no history should miss")
	}
	for i := 0; i < 4; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "carol", 8, 300, 900)}, nil)
	}
	post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(51, "carol", 8, 0, 900)}, &pr)
	if !pr.OK {
		t.Fatal("predict after history should hit")
	}

	snap := getMetrics(t, ts.URL)
	if got := snap.Counters["http.observe.requests"]; got != 4 {
		t.Fatalf("observe requests = %d, want 4", got)
	}
	if got := snap.Counters["http.predict.requests"]; got != 2 {
		t.Fatalf("predict requests = %d, want 2", got)
	}
	if snap.Counters["service.predict.hits"] != 1 || snap.Counters["service.predict.misses"] != 1 {
		t.Fatalf("hit/miss = %d/%d, want 1/1",
			snap.Counters["service.predict.hits"], snap.Counters["service.predict.misses"])
	}
	lat := snap.Histograms["http.predict.latency_seconds"]
	if lat.Count != 2 || lat.P50 <= 0 || lat.Max <= 0 {
		t.Fatalf("predict latency histogram = %+v", lat)
	}
	if snap.Gauges["predictor.categories"] <= 0 || snap.Gauges["predictor.history_size"] <= 0 {
		t.Fatalf("predictor gauges = %+v", snap.Gauges)
	}

	// Quantiles and counts move with more traffic.
	for i := 0; i < 10; i++ {
		post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(60+i, "carol", 8, 0, 900)}, nil)
	}
	snap2 := getMetrics(t, ts.URL)
	if got := snap2.Counters["http.predict.requests"]; got != 12 {
		t.Fatalf("predict requests after more traffic = %d, want 12", got)
	}
	if snap2.Histograms["http.predict.latency_seconds"].Count != 12 {
		t.Fatalf("latency count = %d, want 12",
			snap2.Histograms["http.predict.latency_seconds"].Count)
	}
}

func getMetrics(t *testing.T, baseURL string) obs.Snapshot {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	return snap
}

// TestErrorCounting: failed requests land in the per-endpoint error counter.
func TestErrorCounting(t *testing.T) {
	ts, _ := newTestServer(t)
	post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(1, "a", 4, 0, 0)}, nil) // invalid
	snap := getMetrics(t, ts.URL)
	if snap.Counters["http.observe.errors"] != 1 {
		t.Fatalf("observe errors = %d, want 1", snap.Counters["http.observe.errors"])
	}
}

// TestParallelPredictReaders exercises the read-lock path: many concurrent
// /v1/predict and /v1/predictwait readers race observes. Run under -race
// this validates the RWMutex conversion.
func TestParallelPredictReaders(t *testing.T) {
	ts, _ := newTestServer(t)
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "dave", 4, 120, 600)}, nil)
	}
	var wg sync.WaitGroup
	for c := 0; c < 12; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				switch c % 3 {
				case 0: // writer
					post(t, ts.URL+"/v1/observe",
						ObserveRequest{Job: job(1000+c*100+i, "dave", 4, int64(60+i), 600)}, nil)
				case 1: // predict reader
					var pr PredictResponse
					post(t, ts.URL+"/v1/predict",
						PredictRequest{Job: job(2000+c*100+i, "dave", 4, 0, 600)}, &pr)
					if !pr.OK {
						t.Errorf("predict lost history mid-flight")
						return
					}
				case 2: // predictwait reader
					target := JobJSON{ID: 3000 + c*100 + i, User: "dave", Nodes: 4,
						MaxRunTime: 600, SubmitTime: 0}
					post(t, ts.URL+"/v1/predictwait", PredictWaitRequest{
						Policy: "FCFS", Target: target, Queue: []JobJSON{target},
					}, nil)
				}
			}
		}(c)
	}
	wg.Wait()
	snap := getMetrics(t, ts.URL)
	if snap.Counters["http.predict.requests"] != 100 ||
		snap.Counters["http.predictwait.requests"] != 100 {
		t.Fatalf("request counters = %+v", snap.Counters)
	}
}

func TestPprofMounting(t *testing.T) {
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	s := New(pred, 64)
	s.EnablePprof()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status %d", resp.StatusCode)
	}

	// Without EnablePprof the profile endpoints do not exist.
	ts2, _ := newTestServer(t)
	resp2, err := http.Get(ts2.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode == http.StatusOK {
		t.Fatal("pprof mounted without EnablePprof")
	}
}

// TestServeGracefulShutdown starts the production server, makes a request,
// cancels the context, and expects a clean (nil) return.
func TestServeGracefulShutdown(t *testing.T) {
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true))
	s := New(pred, 64)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- s.ServeListener(ctx, ln) }()

	url := "http://" + ln.Addr().String()
	post(t, url+"/v1/observe", ObserveRequest{Job: job(1, "eve", 2, 50, 100)}, nil)
	snap := getMetrics(t, url)
	if snap.Counters["http.observe.requests"] != 1 {
		t.Fatalf("counters = %+v", snap.Counters)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("graceful shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}

// newStoreServer builds a server whose predictor is backed by a durable
// history store in a temp dir.
func newStoreServer(t *testing.T) (*httptest.Server, *Server, *histstore.Store) {
	t.Helper()
	st, err := histstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pred := core.New(core.DefaultTemplates(
		workload.MaskOf(workload.CharUser, workload.CharExec), true),
		core.WithStore(st))
	s := New(pred, 64)
	s.SetStore(st)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts, s, st
}

// TestStoreBackedCheckpointSnapshots: with a store attached,
// /v1/checkpoint snapshots the store (reporting its directory) and a fresh
// store opened on the same directory sees the full history.
func TestStoreBackedCheckpointSnapshots(t *testing.T) {
	ts, _, st := newStoreServer(t)
	for i := 0; i < 12; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "carol", 4, 300+int64(i), 900)}, nil)
	}
	var saved map[string]string
	resp := post(t, ts.URL+"/v1/checkpoint", nil, &saved)
	if resp.StatusCode != http.StatusOK || saved["saved"] != st.Dir() {
		t.Fatalf("checkpoint: status %d saved=%q want dir %q", resp.StatusCode, saved["saved"], st.Dir())
	}
	reopened, err := histstore.Open(st.Dir())
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Categories() != st.Categories() || reopened.Points() != st.Points() {
		t.Fatalf("snapshot lost history: %d/%d categories, %d/%d points",
			st.Categories(), reopened.Categories(), st.Points(), reopened.Points())
	}
	if err := reopened.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStoreBackedMetricsExposed: /v1/metrics refreshes and reports the
// store's gauges alongside the predictor's.
func TestStoreBackedMetricsExposed(t *testing.T) {
	ts, _, st := newStoreServer(t)
	for i := 0; i < 5; i++ {
		post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(i, "dave", 2, 120, 600)}, nil)
	}
	resp, err := http.Get(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Gauges["histstore.categories"] != float64(st.Categories()) {
		t.Fatalf("histstore.categories gauge = %v, store has %d",
			snap.Gauges["histstore.categories"], st.Categories())
	}
	if snap.Gauges["histstore.wal.bytes"] <= 0 {
		t.Fatalf("histstore.wal.bytes gauge = %v", snap.Gauges["histstore.wal.bytes"])
	}
	if snap.Histograms["histstore.insert.latency_seconds"].Count == 0 {
		t.Fatal("insert latency histogram empty after observes")
	}
	if snap.Gauges["predictor.history_size"] != float64(st.Points()) {
		t.Fatalf("predictor.history_size = %v, store has %d points",
			snap.Gauges["predictor.history_size"], st.Points())
	}
}

// TestStoreBackedConcurrentObservePredict: store-backed observes share the
// read lock, so mixed traffic runs concurrently; under -race this is the
// service-layer safety proof.
func TestStoreBackedConcurrentObservePredict(t *testing.T) {
	ts, s, _ := newStoreServer(t)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				id := g*100 + i
				post(t, ts.URL+"/v1/observe", ObserveRequest{Job: job(id, "erin", 4, 450, 900)}, nil)
				var pr PredictResponse
				post(t, ts.URL+"/v1/predict", PredictRequest{Job: job(id, "erin", 4, 0, 900)}, &pr)
			}
		}(g)
	}
	wg.Wait()
	if s.observations.Load() != 100 {
		t.Fatalf("observations = %d, want 100", s.observations.Load())
	}
	if err := s.pred.StoreErr(); err != nil {
		t.Fatal(err)
	}
}
