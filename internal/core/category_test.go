package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/stats"
	"repro/internal/workload"
)

// naiveCategory is the obviously correct reference implementation: keep the
// last maxHistory jobs in a slice and recompute everything from scratch.
type naiveCategory struct {
	maxHistory int
	jobs       []*workload.Job
}

func (n *naiveCategory) insert(j *workload.Job) {
	n.jobs = append(n.jobs, j)
	if n.maxHistory > 0 && len(n.jobs) > n.maxHistory {
		n.jobs = n.jobs[1:]
	}
}

func (n *naiveCategory) meanEstimate(t Template, nodes int, age int64, level float64) (float64, float64, bool) {
	var ys []float64
	for _, j := range n.jobs {
		if t.UseAge && age > 0 && float64(j.RunTime) <= float64(age) {
			continue
		}
		if t.Relative {
			if j.MaxRunTime <= 0 {
				continue
			}
			ys = append(ys, float64(j.RunTime)/float64(j.MaxRunTime))
		} else {
			ys = append(ys, float64(j.RunTime))
		}
	}
	if len(ys) < 2 {
		return 0, 0, false
	}
	mean, half, err := stats.MeanCI(ys, level)
	if err != nil {
		return 0, 0, false
	}
	return mean, half, true
}

// TestCategoryMatchesNaiveModel drives the optimized ring-buffer category
// and the naive model with identical random operation sequences and
// compares every estimate.
func TestCategoryMatchesNaiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		maxHist := 0
		if rng.Intn(2) == 0 {
			maxHist = 1 << rng.Intn(5) // 1..16
		}
		for _, tpl := range []Template{
			{Pred: PredMean, MaxHistory: maxHist},
			{Pred: PredMean, MaxHistory: maxHist, Relative: true},
			{Pred: PredMean, MaxHistory: maxHist, UseAge: true},
		} {
			fast := newCategory(maxHist)
			naive := &naiveCategory{maxHistory: maxHist}
			for op := 0; op < 80; op++ {
				j := &workload.Job{
					Nodes:   1 + rng.Intn(32),
					RunTime: int64(10 + rng.Intn(5000)),
				}
				if rng.Intn(4) > 0 {
					j.MaxRunTime = j.RunTime * int64(1+rng.Intn(4))
				}
				fast.insert(j)
				naive.insert(j)

				age := int64(0)
				if tpl.UseAge && rng.Intn(2) == 0 {
					age = int64(rng.Intn(4000))
				}
				gm, gh, gok := fast.estimate(tpl, 8, age, 0.9)
				wm, wh, wok := naive.meanEstimate(tpl, 8, age, 0.9)
				if gok != wok {
					t.Fatalf("trial %d op %d tpl %s: ok %v vs %v (hist %d)",
						trial, op, tpl, gok, wok, maxHist)
				}
				if !gok {
					continue
				}
				if math.Abs(gm-wm) > 1e-6*(1+math.Abs(wm)) ||
					math.Abs(gh-wh) > 1e-6*(1+math.Abs(wh)) {
					t.Fatalf("trial %d op %d tpl %s: estimate (%v ± %v) vs naive (%v ± %v)",
						trial, op, tpl, gm, gh, wm, wh)
				}
			}
		}
	}
}

// TestCategoryAggregatesStayConsistent hammers one bounded category and
// verifies the O(1) aggregates equal a from-scratch recomputation at the
// end (guarding against drift from incremental add/remove).
func TestCategoryAggregatesStayConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := newCategory(32)
	for i := 0; i < 10_000; i++ {
		j := &workload.Job{Nodes: 1, RunTime: int64(1 + rng.Intn(100000))}
		if rng.Intn(3) > 0 {
			j.MaxRunTime = j.RunTime + int64(rng.Intn(100000))
		}
		c.insert(j)
	}
	var sum, sum2 float64
	n := 0
	c.forEach(func(p point) {
		sum += p.runTime
		sum2 += p.runTime * p.runTime
		n++
	})
	if n != c.absAgg.n {
		t.Fatalf("aggregate n = %d, recount %d", c.absAgg.n, n)
	}
	if math.Abs(sum-c.absAgg.sum) > 1e-6*math.Abs(sum) {
		t.Fatalf("aggregate sum drifted: %v vs %v", c.absAgg.sum, sum)
	}
	if math.Abs(sum2-c.absAgg.sum2) > 1e-6*math.Abs(sum2) {
		t.Fatalf("aggregate sum2 drifted: %v vs %v", c.absAgg.sum2, sum2)
	}
}
