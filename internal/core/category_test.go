package core

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/histstore"
	"repro/internal/stats"
	"repro/internal/workload"
)

// naiveCategory is the obviously correct reference implementation: keep the
// last maxHistory jobs in a slice and recompute everything from scratch.
type naiveCategory struct {
	maxHistory int
	jobs       []*workload.Job
}

func (n *naiveCategory) insert(j *workload.Job) {
	n.jobs = append(n.jobs, j)
	if n.maxHistory > 0 && len(n.jobs) > n.maxHistory {
		n.jobs = n.jobs[1:]
	}
}

func (n *naiveCategory) meanEstimate(t Template, nodes int, age int64, level float64) (float64, float64, bool) {
	var ys []float64
	for _, j := range n.jobs {
		if t.UseAge && age > 0 && float64(j.RunTime) <= float64(age) {
			continue
		}
		if t.Relative {
			if j.MaxRunTime <= 0 {
				continue
			}
			ys = append(ys, float64(j.RunTime)/float64(j.MaxRunTime))
		} else {
			ys = append(ys, float64(j.RunTime))
		}
	}
	if len(ys) < 2 {
		return 0, 0, false
	}
	mean, half, err := stats.MeanCI(ys, level)
	if err != nil {
		return 0, 0, false
	}
	return mean, half, true
}

// TestCategoryMatchesNaiveModel drives the ring-buffer category (with its
// O(1) Welford fast path) and the naive model with identical random
// operation sequences and compares every estimate.
func TestCategoryMatchesNaiveModel(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 60; trial++ {
		maxHist := 0
		if rng.Intn(2) == 0 {
			maxHist = 1 << rng.Intn(5) // 1..16
		}
		for _, tpl := range []Template{
			{Pred: PredMean, MaxHistory: maxHist},
			{Pred: PredMean, MaxHistory: maxHist, Relative: true},
			{Pred: PredMean, MaxHistory: maxHist, UseAge: true},
		} {
			fast := histstore.NewCategory(maxHist)
			naive := &naiveCategory{maxHistory: maxHist}
			for op := 0; op < 80; op++ {
				j := &workload.Job{
					Nodes:   1 + rng.Intn(32),
					RunTime: int64(10 + rng.Intn(5000)),
				}
				if rng.Intn(4) > 0 {
					j.MaxRunTime = j.RunTime * int64(1+rng.Intn(4))
				}
				fast.Insert(pointOf(j))
				naive.insert(j)

				age := int64(0)
				if tpl.UseAge && rng.Intn(2) == 0 {
					age = int64(rng.Intn(4000))
				}
				gm, gh, gok := estimateCategory(fast, tpl, 8, age, 0.9)
				wm, wh, wok := naive.meanEstimate(tpl, 8, age, 0.9)
				if gok != wok {
					t.Fatalf("trial %d op %d tpl %s: ok %v vs %v (hist %d)",
						trial, op, tpl, gok, wok, maxHist)
				}
				if !gok {
					continue
				}
				if math.Abs(gm-wm) > 1e-6*(1+math.Abs(wm)) ||
					math.Abs(gh-wh) > 1e-6*(1+math.Abs(wh)) {
					t.Fatalf("trial %d op %d tpl %s: estimate (%v ± %v) vs naive (%v ± %v)",
						trial, op, tpl, gm, gh, wm, wh)
				}
			}
		}
	}
}

// TestCategoryMomentsStayConsistent hammers one bounded category and
// verifies the O(1) Welford moments equal a from-scratch recomputation at
// the end (guarding against drift from incremental add/remove).
func TestCategoryMomentsStayConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	c := histstore.NewCategory(32)
	for i := 0; i < 10_000; i++ {
		j := &workload.Job{Nodes: 1, RunTime: int64(1 + rng.Intn(100000))}
		if rng.Intn(3) > 0 {
			j.MaxRunTime = j.RunTime + int64(rng.Intn(100000))
		}
		c.Insert(pointOf(j))
	}
	var vals []float64
	c.ForEach(func(p histstore.Point) { vals = append(vals, p.RunTime) })
	if len(vals) != c.Abs().N {
		t.Fatalf("moments n = %d, recount %d", c.Abs().N, len(vals))
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	wantMean := sum / float64(len(vals))
	var m2 float64
	for _, v := range vals {
		m2 += (v - wantMean) * (v - wantMean)
	}
	wantVar := m2 / float64(len(vals)-1)
	mean, variance := c.Abs().MeanVar()
	if math.Abs(mean-wantMean) > 1e-9*(1+math.Abs(wantMean)) {
		t.Fatalf("mean drifted: %v vs %v", mean, wantMean)
	}
	if math.Abs(variance-wantVar) > 1e-6*(1+math.Abs(wantVar)) {
		t.Fatalf("variance drifted: %v vs %v", variance, wantVar)
	}
}

// TestPointOf checks the job-to-point conversion, in particular the NaN
// ratio sentinel for jobs without a requested maximum.
func TestPointOf(t *testing.T) {
	p := pointOf(&workload.Job{Nodes: 4, RunTime: 30, MaxRunTime: 120})
	if p.RunTime != 30 || p.Nodes != 4 || p.Ratio != 0.25 {
		t.Fatalf("pointOf with max: %+v", p)
	}
	p = pointOf(&workload.Job{Nodes: 2, RunTime: 30})
	if !math.IsNaN(p.Ratio) {
		t.Fatalf("pointOf without max: ratio %v, want NaN", p.Ratio)
	}
}
