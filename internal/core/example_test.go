package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/workload"
)

// The predictor learns from completed jobs and predicts new ones from the
// most confident matching category.
func ExamplePredictor() {
	templates := []core.Template{
		{Chars: workload.MaskOf(workload.CharUser, workload.CharExec), Pred: core.PredMean},
		{Chars: workload.MaskOf(workload.CharUser), Pred: core.PredMean},
	}
	p := core.New(templates)

	// alice runs "render" three times with similar run times.
	for _, rt := range []int64{580, 600, 620} {
		p.Observe(&workload.Job{User: "alice", Executable: "render", Nodes: 8, RunTime: rt})
	}
	// ...and one unrelated long job.
	p.Observe(&workload.Job{User: "alice", Executable: "train", Nodes: 8, RunTime: 90000})
	p.Observe(&workload.Job{User: "alice", Executable: "train", Nodes: 8, RunTime: 90000})

	// A new "render" job matches the tight (u,e) category, not the mixed
	// (u) category.
	det, ok := p.PredictDetailed(&workload.Job{User: "alice", Executable: "render", Nodes: 8}, 0)
	fmt.Println(ok, det.Seconds, det.N)
	// Output: true 600 3
}

// Templates render in the paper's notation.
func ExampleTemplate_String() {
	t := core.Template{
		Chars:      workload.MaskOf(workload.CharUser, workload.CharExec),
		UseNodes:   true,
		NodeRange:  4,
		MaxHistory: 1024,
		Relative:   true,
		Pred:       core.PredMean,
	}
	fmt.Println(t)
	// Output: (u,e,n=4,h=1024,rel,mean)
}
