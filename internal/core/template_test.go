package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTemplateKeyPartitions(t *testing.T) {
	tpl := Template{Chars: workload.MaskOf(workload.CharUser, workload.CharExec)}
	a := &workload.Job{User: "alice", Executable: "a.out", Nodes: 4}
	b := &workload.Job{User: "alice", Executable: "a.out", Nodes: 64}
	c := &workload.Job{User: "bob", Executable: "a.out", Nodes: 4}
	if tpl.Key(0, a) != tpl.Key(0, b) {
		t.Error("same user+exec should share a category when nodes unused")
	}
	if tpl.Key(0, a) == tpl.Key(0, c) {
		t.Error("different users must not share a category")
	}
	if tpl.Key(0, a) == tpl.Key(1, a) {
		t.Error("same values under different template indices must stay distinct")
	}
}

func TestTemplateNodeBuckets(t *testing.T) {
	// Node range 4 → buckets 1-4, 5-8, 9-12, ... (paper's example:
	// (u, n=4) generates (wsmith, 1-4 nodes) and (wsmith, 5-8 nodes)).
	tpl := Template{Chars: workload.MaskOf(workload.CharUser), UseNodes: true, NodeRange: 4}
	k := func(n int) string {
		return tpl.Key(0, &workload.Job{User: "wsmith", Nodes: n})
	}
	if k(1) != k(4) {
		t.Error("nodes 1 and 4 should share a bucket")
	}
	if k(4) == k(5) {
		t.Error("nodes 4 and 5 should be in different buckets")
	}
	if k(5) != k(8) {
		t.Error("nodes 5 and 8 should share a bucket")
	}
}

func TestTemplateKeyAmbiguity(t *testing.T) {
	// Values are joined with a separator so ("ab","c") ≠ ("a","bc").
	tpl := Template{Chars: workload.MaskOf(workload.CharUser, workload.CharExec)}
	a := &workload.Job{User: "ab", Executable: "c"}
	b := &workload.Job{User: "a", Executable: "bc"}
	if tpl.Key(0, a) == tpl.Key(0, b) {
		t.Error("key is ambiguous across characteristic boundaries")
	}
}

func TestTemplateApplicable(t *testing.T) {
	chars := workload.MaskOf(workload.CharUser, workload.CharQueue)
	cases := []struct {
		tpl      Template
		hasMaxRT bool
		want     bool
	}{
		{Template{Chars: workload.MaskOf(workload.CharUser)}, false, true},
		{Template{Chars: workload.MaskOf(workload.CharExec)}, false, false},
		{Template{Relative: true}, false, false},
		{Template{Relative: true}, true, true},
		{Template{}, false, true}, // the () template is always applicable
	}
	for i, c := range cases {
		if got := c.tpl.Applicable(chars, c.hasMaxRT); got != c.want {
			t.Errorf("case %d: Applicable = %v, want %v", i, got, c.want)
		}
	}
}

func TestTemplateString(t *testing.T) {
	tpl := Template{
		Chars:      workload.MaskOf(workload.CharUser, workload.CharExec),
		UseNodes:   true,
		NodeRange:  4,
		MaxHistory: 1024,
		Relative:   true,
		UseAge:     true,
		Pred:       PredMean,
	}
	got := tpl.String()
	for _, part := range []string{"u", "e", "n=4", "h=1024", "rel", "age", "mean"} {
		if !strings.Contains(got, part) {
			t.Errorf("String() = %q, missing %q", got, part)
		}
	}
	if s := (Template{Pred: PredLog}).String(); s != "(logr)" {
		t.Errorf("bare template String() = %q", s)
	}
}

func TestPredTypeString(t *testing.T) {
	want := map[PredType]string{PredMean: "mean", PredLinear: "lr", PredInverse: "invr", PredLog: "logr"}
	for p, s := range want {
		if p.String() != s {
			t.Errorf("PredType(%d).String() = %q, want %q", p, p.String(), s)
		}
	}
}

func TestDefaultTemplatesRespectWorkload(t *testing.T) {
	for _, name := range workload.StudyNames {
		cfg, err := workload.StudyConfig(name, 100, 1)
		if err != nil {
			t.Fatal(err)
		}
		ts := DefaultTemplates(cfg.Chars, cfg.HasMaxRT)
		if len(ts) == 0 {
			t.Fatalf("%s: no default templates", name)
		}
		for _, tpl := range ts {
			if !tpl.Applicable(cfg.Chars, cfg.HasMaxRT) {
				t.Errorf("%s: inapplicable default template %s", name, tpl)
			}
		}
	}
}

func TestMinPoints(t *testing.T) {
	if (Template{Pred: PredMean}).minPoints() != 2 {
		t.Error("mean should need 2 points")
	}
	for _, p := range []PredType{PredLinear, PredInverse, PredLog} {
		if (Template{Pred: p}).minPoints() != 3 {
			t.Errorf("%v should need 3 points", p)
		}
	}
}
