package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
)

// Checkpoint/restore for the predictor's category database, so a
// long-running deployment (cmd/qwaitd) can restart without losing its
// history. The format is line-oriented JSON: a header line binding the
// checkpoint to a template set, then one line per category. Restoring into
// a predictor with a different template set is refused — category keys
// embed template indices, so histories are only meaningful to the set that
// created them.

// stateHeader is the first line of a checkpoint.
type stateHeader struct {
	Version    int    `json:"version"`
	Templates  string `json:"templates"` // canonical rendering of the template set
	Categories int    `json:"categories"`
}

// statePoint mirrors point with JSON tags. Ratio uses -1 for "absent"
// (NaN is not valid JSON).
type statePoint struct {
	RunTime float64 `json:"rt"`
	Ratio   float64 `json:"ratio"`
	Nodes   float64 `json:"nodes"`
}

// stateCategory is one category line.
type stateCategory struct {
	Key        string       `json:"key"`
	MaxHistory int          `json:"maxHistory,omitempty"`
	Head       int          `json:"head,omitempty"`
	Points     []statePoint `json:"points"`
}

// templateFingerprint canonically renders the template set for checkpoint
// compatibility checks.
func (p *Predictor) templateFingerprint() string {
	s := ""
	for i, t := range p.templates {
		s += fmt.Sprintf("%d:%s;", i, t)
	}
	return s
}

// SaveState writes the predictor's full category database.
func (p *Predictor) SaveState(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(stateHeader{
		Version:    1,
		Templates:  p.templateFingerprint(),
		Categories: len(p.cats),
	}); err != nil {
		return err
	}
	for key, c := range p.cats {
		sc := stateCategory{
			Key:        key,
			MaxHistory: c.maxHistory,
			Head:       c.head,
			Points:     make([]statePoint, 0, len(c.points)),
		}
		for _, pt := range c.points {
			sp := statePoint{RunTime: pt.runTime, Ratio: pt.ratio, Nodes: pt.nodes}
			if math.IsNaN(sp.Ratio) {
				sp.Ratio = -1
			}
			sc.Points = append(sc.Points, sp)
		}
		if err := enc.Encode(sc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState replaces the predictor's category database with a checkpoint
// previously written by SaveState. It fails (leaving the predictor
// unchanged) if the checkpoint was produced under a different template set.
func (p *Predictor) LoadState(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr stateHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: checkpoint header: %v", err)
	}
	if hdr.Version != 1 {
		return fmt.Errorf("core: unsupported checkpoint version %d", hdr.Version)
	}
	if hdr.Templates != p.templateFingerprint() {
		return fmt.Errorf("core: checkpoint was created under a different template set")
	}
	cats := make(map[string]*category, hdr.Categories)
	for i := 0; i < hdr.Categories; i++ {
		var sc stateCategory
		if err := dec.Decode(&sc); err != nil {
			return fmt.Errorf("core: checkpoint category %d: %v", i, err)
		}
		c := newCategory(sc.MaxHistory)
		if sc.MaxHistory > 0 && (sc.Head < 0 || sc.Head >= sc.MaxHistory+1) {
			return fmt.Errorf("core: checkpoint category %q: head %d out of range", sc.Key, sc.Head)
		}
		if sc.MaxHistory > 0 && len(sc.Points) > sc.MaxHistory {
			return fmt.Errorf("core: checkpoint category %q: %d points exceed history %d",
				sc.Key, len(sc.Points), sc.MaxHistory)
		}
		c.head = sc.Head
		for _, sp := range sc.Points {
			pt := point{runTime: sp.RunTime, ratio: sp.Ratio, nodes: sp.Nodes}
			if sp.Ratio < 0 {
				pt.ratio = math.NaN()
			}
			if pt.runTime <= 0 || pt.nodes <= 0 {
				return fmt.Errorf("core: checkpoint category %q: invalid point %+v", sc.Key, sp)
			}
			c.points = append(c.points, pt)
			c.absAgg.add(pt.runTime)
			c.ratAgg.add(pt.ratio)
		}
		cats[sc.Key] = c
	}
	p.cats = cats
	return nil
}
