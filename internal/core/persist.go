package core

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/histstore"
)

// Checkpoint/restore for the predictor's category database, so a
// long-running deployment (cmd/qwaitd) can restart without losing its
// history. The format is line-oriented JSON: a header line binding the
// checkpoint to a template set, then one line per category. Restoring into
// a predictor with a different template set is refused — category keys
// embed template indices, so histories are only meaningful to the set that
// created them.
//
// Store-backed deployments normally rely on the histstore's own WAL +
// snapshot durability instead; this format remains as the legacy
// interchange path (and the one-time migration source for old -state
// files). Loading into a store-backed predictor replaces the store's
// contents without journaling the import — callers should snapshot the
// store right after a successful load.

// stateHeader is the first line of a checkpoint.
type stateHeader struct {
	Version    int    `json:"version"`
	Templates  string `json:"templates"` // canonical rendering of the template set
	Categories int    `json:"categories"`
}

// statePoint mirrors histstore.Point with JSON tags. Ratio uses -1 for
// "absent" (NaN is not valid JSON).
type statePoint struct {
	RunTime float64 `json:"rt"`
	Ratio   float64 `json:"ratio"`
	Nodes   float64 `json:"nodes"`
}

// stateCategory is one category line.
type stateCategory struct {
	Key        string       `json:"key"`
	MaxHistory int          `json:"maxHistory,omitempty"`
	Head       int          `json:"head,omitempty"`
	Points     []statePoint `json:"points"`
}

// templateFingerprint canonically renders the template set for checkpoint
// compatibility checks.
func (p *Predictor) templateFingerprint() string {
	s := ""
	for i, t := range p.templates {
		s += fmt.Sprintf("%d:%s;", i, t)
	}
	return s
}

// stateCategoryOf extracts one category's checkpoint line. Category
// accessors copy, so the result stays valid after any lock protecting c is
// released.
func stateCategoryOf(key string, c *histstore.Category) stateCategory {
	pts := c.Points()
	sc := stateCategory{
		Key:        key,
		MaxHistory: c.MaxHistory(),
		Head:       c.Head(),
		Points:     make([]statePoint, 0, len(pts)),
	}
	for _, pt := range pts {
		sp := statePoint{RunTime: pt.RunTime, Ratio: pt.Ratio, Nodes: pt.Nodes}
		if math.IsNaN(sp.Ratio) {
			sp.Ratio = -1
		}
		sc.Points = append(sc.Points, sp)
	}
	return sc
}

// SaveState writes the predictor's full category database.
func (p *Predictor) SaveState(w io.Writer) error {
	var cats []stateCategory
	if p.store != nil {
		// Extract under the store's shard read locks; a concurrent writer
		// may land between shards, but each category line is consistent.
		p.store.ForEach(func(key string, c *histstore.Category) {
			cats = append(cats, stateCategoryOf(key, c))
		})
	} else {
		cats = make([]stateCategory, 0, len(p.cats))
		for key, c := range p.cats {
			cats = append(cats, stateCategoryOf(key, c))
		}
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(stateHeader{
		Version:    1,
		Templates:  p.templateFingerprint(),
		Categories: len(cats),
	}); err != nil {
		return err
	}
	for _, sc := range cats {
		if err := enc.Encode(sc); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// LoadState replaces the predictor's category database with a checkpoint
// previously written by SaveState. It fails (leaving the predictor
// unchanged) if the checkpoint was produced under a different template set
// or contains invalid data; the whole file is parsed and validated before
// anything is installed.
func (p *Predictor) LoadState(r io.Reader) error {
	dec := json.NewDecoder(bufio.NewReader(r))
	var hdr stateHeader
	if err := dec.Decode(&hdr); err != nil {
		return fmt.Errorf("core: checkpoint header: %v", err)
	}
	if hdr.Version != 1 {
		return fmt.Errorf("core: unsupported checkpoint version %d", hdr.Version)
	}
	if hdr.Templates != p.templateFingerprint() {
		return fmt.Errorf("core: checkpoint was created under a different template set")
	}
	cats := make(map[string]*histstore.Category, hdr.Categories)
	for i := 0; i < hdr.Categories; i++ {
		var sc stateCategory
		if err := dec.Decode(&sc); err != nil {
			return fmt.Errorf("core: checkpoint category %d: %v", i, err)
		}
		pts := make([]histstore.Point, 0, len(sc.Points))
		for _, sp := range sc.Points {
			pt := histstore.Point{RunTime: sp.RunTime, Ratio: sp.Ratio, Nodes: sp.Nodes}
			if sp.Ratio < 0 {
				pt.Ratio = math.NaN()
			}
			pts = append(pts, pt)
		}
		c, err := histstore.RestorePoints(sc.MaxHistory, sc.Head, pts)
		if err != nil {
			return fmt.Errorf("core: checkpoint category %q: %v", sc.Key, err)
		}
		cats[sc.Key] = c
	}
	if p.store != nil {
		p.store.Reset()
		for key, c := range cats {
			p.store.Put(key, c)
		}
		return nil
	}
	p.cats = cats
	return nil
}
