package core

import (
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestTemplateJSONRoundTrip(t *testing.T) {
	ts := []Template{
		{Pred: PredMean},
		{Pred: PredLog, Relative: true, UseAge: true,
			Chars: workload.MaskOf(workload.CharUser, workload.CharExec)},
		{Pred: PredLinear, UseNodes: true, NodeRange: 4, MaxHistory: 1024},
		{Pred: PredInverse, UseNodes: true, NodeRange: 512, MaxHistory: 65536,
			Chars: workload.MaskOf(workload.CharQueue)},
	}
	data, err := MarshalTemplates(ts)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalTemplates(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(ts) {
		t.Fatalf("round trip lost templates: %d -> %d", len(ts), len(back))
	}
	for i := range ts {
		if back[i] != ts[i] {
			t.Fatalf("template %d: %+v -> %+v", i, ts[i], back[i])
		}
	}
}

func TestTemplateJSONHumanReadable(t *testing.T) {
	data, err := MarshalTemplates([]Template{{
		Pred: PredMean, Chars: workload.MaskOf(workload.CharUser),
		UseNodes: true, NodeRange: 8,
	}})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, want := range []string{`"u"`, `"nodeRange": 8`, `"pred": "mean"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s:\n%s", want, s)
		}
	}
}

func TestUnmarshalTemplatesValidation(t *testing.T) {
	cases := []string{
		`[{"pred":"banana"}]`,
		`[{"pred":"mean","chars":["zz"]}]`,
		`[{"pred":"mean","nodeRange":1024}]`,
		`[{"pred":"mean","maxHistory":-1}]`,
		`[{"pred":"mean","maxHistory":131072}]`,
		`{not json`,
	}
	for _, c := range cases {
		if _, err := UnmarshalTemplates([]byte(c)); err == nil {
			t.Errorf("accepted invalid input %s", c)
		}
	}
	// Empty set is legal.
	ts, err := UnmarshalTemplates([]byte(`[]`))
	if err != nil || len(ts) != 0 {
		t.Errorf("empty set: %v, %v", ts, err)
	}
}

func TestTemplateJSONDefaultsOmitted(t *testing.T) {
	data, err := MarshalTemplates([]Template{{Pred: PredMean}})
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	for _, absent := range []string{"relative", "useAge", "nodeRange", "maxHistory", "chars"} {
		if strings.Contains(s, absent) {
			t.Errorf("zero-valued field %q should be omitted:\n%s", absent, s)
		}
	}
}
