// Package core implements the paper's primary contribution: run-time
// prediction from historical information of previous similar runs, where
// similarity is defined by templates of job characteristics (§2.1).
//
// A template selects a subset of the characteristics recorded in a trace
// (type, queue, class, user, script, executable, arguments, network adaptor)
// plus, optionally, a node-range bucketing. Applying a template to a job
// yields a category; all completed jobs in the same category are "similar"
// and contribute to the prediction. Each template also fixes how the
// prediction is formed from the category (mean, or a linear / inverse /
// logarithmic regression against the node count), whether absolute run
// times or run times relative to the user-supplied maximum are stored,
// whether the estimate conditions on how long the job has already been
// running, and how much history a category may retain.
//
// A Predictor evaluates every template, keeps the estimates whose
// categories can provide a valid prediction, and returns the one with the
// smallest confidence interval.
package core

import (
	"fmt"
	"strings"

	"repro/internal/workload"
)

// PredType selects how a prediction is formed from a category's data points
// (§2.1: "a mean, a linear regression, an inverse regression, and a
// logarithmic regression"). The paper found the mean to be the single best
// predictor and uses it exclusively in the 1999 study; the regressions are
// implemented for completeness and ablation.
type PredType uint8

const (
	// PredMean predicts the category mean.
	PredMean PredType = iota
	// PredLinear predicts from a linear regression of run time on nodes.
	PredLinear
	// PredInverse predicts from a regression of run time on 1/nodes.
	PredInverse
	// PredLog predicts from a regression of run time on ln(nodes).
	PredLog

	// NumPredTypes counts the prediction types (for the GA encoding).
	NumPredTypes = 4
)

// String implements fmt.Stringer.
func (p PredType) String() string {
	switch p {
	case PredMean:
		return "mean"
	case PredLinear:
		return "lr"
	case PredInverse:
		return "invr"
	case PredLog:
		return "logr"
	}
	return fmt.Sprintf("pred(%d)", uint8(p))
}

// Template defines one similarity criterion (§2.1).
type Template struct {
	// Chars is the set of enabled categorical characteristics.
	Chars workload.CharMask
	// UseNodes enables node-range bucketing with the given range size.
	UseNodes bool
	// NodeRange is the node range size: jobs with ⌈nodes/NodeRange⌉ equal
	// fall in the same bucket. The paper encodes powers of two from 1 to
	// 512. Ignored unless UseNodes.
	NodeRange int
	// MaxHistory bounds the number of points a category retains (oldest
	// evicted first). Zero means unlimited. The paper encodes powers of two
	// from 2 to 65536.
	MaxHistory int
	// Relative stores run times as fractions of the user-supplied maximum
	// run time instead of absolute values ("relative run times", §2.1).
	Relative bool
	// UseAge conditions the estimate on the job's current running time:
	// only data points whose run time exceeds the job's age contribute
	// (the paper's "running time" template attribute).
	UseAge bool
	// Pred selects the prediction type.
	Pred PredType
}

// minPoints returns the fewest data points from which this template can
// form a valid prediction with a confidence interval.
func (t Template) minPoints() int {
	if t.Pred == PredMean {
		return 2 // mean + t-interval needs n ≥ 2
	}
	return 3 // regressions need n ≥ 3 and distinct regressors
}

// nodeBucket returns the node-range bucket index for a node count.
func (t Template) nodeBucket(nodes int) int {
	r := t.NodeRange
	if r < 1 {
		r = 1
	}
	return (nodes - 1) / r
}

// Applicable reports whether the template can be evaluated at all on a
// workload recording the given characteristics: every categorical
// characteristic it uses must be recorded, and relative run times require
// user-supplied maximum run times.
func (t Template) Applicable(chars workload.CharMask, hasMaxRT bool) bool {
	for _, c := range t.Chars.Chars() {
		if !chars.Has(c) {
			return false
		}
	}
	if t.Relative && !hasMaxRT {
		return false
	}
	return true
}

// Key builds the category key for a job under this template. Keys embed the
// template's identity (its index in the template set), so identical value
// combinations under different templates stay distinct.
func (t Template) Key(idx int, j *workload.Job) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d", idx) //lint:allow hotpath key rendering is the measured allocs/op floor of the committed BENCH trajectory
	for _, c := range t.Chars.Chars() {
		b.WriteByte('|')                   //lint:allow hotpath builder growth is part of the key-rendering floor
		b.WriteString(j.Characteristic(c)) //lint:allow hotpath builder growth is part of the key-rendering floor
	}
	if t.UseNodes {
		fmt.Fprintf(&b, "|n%d", t.nodeBucket(j.Nodes)) //lint:allow hotpath key rendering is part of the committed allocs/op floor
	}
	return b.String() //lint:allow hotpath one string per key is the floor the bench gate tracks
}

// String renders the template like the paper, e.g. "(u,e,n=4,h=1024,rel,age,mean)".
func (t Template) String() string {
	var parts []string
	for _, c := range t.Chars.Chars() {
		parts = append(parts, c.Abbrev())
	}
	if t.UseNodes {
		parts = append(parts, fmt.Sprintf("n=%d", t.NodeRange))
	}
	if t.MaxHistory > 0 {
		parts = append(parts, fmt.Sprintf("h=%d", t.MaxHistory))
	}
	if t.Relative {
		parts = append(parts, "rel")
	}
	if t.UseAge {
		parts = append(parts, "age")
	}
	parts = append(parts, t.Pred.String())
	return "(" + strings.Join(parts, ",") + ")"
}

// DefaultTemplates returns a sensible hand-built template set for a
// workload recording the given characteristics — the starting point when
// no genetic-algorithm search has been run. It nests from most to least
// specific, mirroring the structure Gibbons fixed by hand but with the
// smallest-confidence-interval selection of the paper.
func DefaultTemplates(chars workload.CharMask, hasMaxRT bool) []Template {
	var identity []workload.Char // most specific identity chars available
	for _, c := range []workload.Char{workload.CharExec, workload.CharScript, workload.CharQueue} {
		if chars.Has(c) {
			identity = append(identity, c)
		}
	}
	mk := func(cs ...workload.Char) workload.CharMask { return workload.MaskOf(cs...) }
	var ts []Template
	add := func(t Template) {
		if t.Applicable(chars, hasMaxRT) {
			ts = append(ts, t)
		}
	}
	if chars.Has(workload.CharUser) {
		for _, id := range identity {
			add(Template{Chars: mk(workload.CharUser, id), UseNodes: true, NodeRange: 4,
				MaxHistory: 4096, UseAge: true, Pred: PredMean})
			add(Template{Chars: mk(workload.CharUser, id), MaxHistory: 4096, Pred: PredMean})
			if hasMaxRT {
				add(Template{Chars: mk(workload.CharUser, id), MaxHistory: 4096,
					Relative: true, Pred: PredMean})
			}
		}
		add(Template{Chars: mk(workload.CharUser), UseNodes: true, NodeRange: 8,
			MaxHistory: 4096, Pred: PredMean})
		add(Template{Chars: mk(workload.CharUser), MaxHistory: 4096, Pred: PredMean})
	}
	for _, id := range identity {
		add(Template{Chars: mk(id), UseNodes: true, NodeRange: 8, MaxHistory: 8192,
			UseAge: true, Pred: PredMean})
		add(Template{Chars: mk(id), MaxHistory: 8192, Pred: PredMean})
	}
	// Fallback: everything in one pile, bucketed by nodes.
	add(Template{UseNodes: true, NodeRange: 16, MaxHistory: 16384, Pred: PredMean})
	add(Template{MaxHistory: 16384, Pred: PredMean})
	return ts
}
