package core

import (
	"bytes"
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/histstore"
	"repro/internal/workload"
)

// mustPredictAll runs an observe/predict interleaving over a workload:
// every job is predicted (at ages 0 and 600) against the history of all
// earlier jobs, then observed. It returns the full prediction stream.
func mustPredictAll(t *testing.T, p *Predictor, w *workload.Workload) []Prediction {
	t.Helper()
	var out []Prediction
	for _, j := range w.Jobs {
		for _, age := range []int64{0, 600} {
			pr, ok := p.PredictDetailed(j, age)
			if !ok {
				pr = Prediction{Template: -1}
			}
			out = append(out, pr)
		}
		p.Observe(j)
	}
	if err := p.StoreErr(); err != nil {
		t.Fatal(err)
	}
	return out
}

// mustEqualPredictions compares two prediction streams bit-for-bit:
// integer fields exactly, the interval by its IEEE-754 bits.
func mustEqualPredictions(t *testing.T, name string, want, got []Prediction) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d vs %d predictions", name, len(want), len(got))
	}
	for i := range want {
		a, b := want[i], got[i]
		if a.Seconds != b.Seconds || a.Template != b.Template || a.Category != b.Category ||
			a.N != b.N || math.Float64bits(a.Interval) != math.Float64bits(b.Interval) {
			t.Fatalf("%s: prediction %d diverged: %+v vs %+v", name, i, a, b)
		}
	}
}

// TestStoreBackedMatchesBatch is the tentpole determinism proof: on every
// study workload, a store-backed predictor (in-memory sharded store) emits
// the bit-for-bit identical prediction stream to the batch predictor.
func TestStoreBackedMatchesBatch(t *testing.T) {
	for _, name := range workload.StudyNames {
		t.Run(name, func(t *testing.T) {
			w, err := workload.Study(name, 40, 3)
			if err != nil {
				t.Fatal(err)
			}
			ts := DefaultTemplates(w.Chars, w.HasMaxRT)
			batch := New(ts)
			stored := New(ts, WithStore(histstore.New()))
			want := mustPredictAll(t, batch, w)
			got := mustPredictAll(t, stored, w)
			mustEqualPredictions(t, name, want, got)
			if batch.Categories() != stored.Categories() ||
				batch.HistorySize() != stored.HistorySize() {
				t.Fatalf("database shape: %d/%d categories, %d/%d points",
					batch.Categories(), stored.Categories(),
					batch.HistorySize(), stored.HistorySize())
			}
		})
	}
}

// mustPredictAllBatch is mustPredictAll driven through the batch API: each
// job's two ages are one PredictDetailedBatch call, so the per-batch
// category resolve cache is exercised on every step.
func mustPredictAllBatch(t *testing.T, p *Predictor, w *workload.Workload) []Prediction {
	t.Helper()
	var out []Prediction
	for _, j := range w.Jobs {
		res := p.PredictDetailedBatch([]BatchItem{{Job: j, Age: 0}, {Job: j, Age: 600}})
		if len(res) != 2 {
			t.Fatalf("batch returned %d results for 2 items", len(res))
		}
		for _, r := range res {
			pr := r.Prediction
			if !r.OK {
				pr = Prediction{Template: -1}
			}
			out = append(out, pr)
		}
		p.Observe(j)
	}
	if err := p.StoreErr(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestBatchPredictMatchesSingle proves the batch API is a pure amortization
// of the single-prediction path: on every study workload, batch-mode and
// store-backed predictors driven through PredictDetailedBatch emit
// bit-for-bit the stream the single-call path emits.
func TestBatchPredictMatchesSingle(t *testing.T) {
	for _, name := range workload.StudyNames {
		t.Run(name, func(t *testing.T) {
			w, err := workload.Study(name, 40, 3)
			if err != nil {
				t.Fatal(err)
			}
			ts := DefaultTemplates(w.Chars, w.HasMaxRT)
			want := mustPredictAll(t, New(ts), w)
			gotBatch := mustPredictAllBatch(t, New(ts), w)
			mustEqualPredictions(t, name+"/batchmode", want, gotBatch)
			gotStored := mustPredictAllBatch(t, New(ts, WithStore(histstore.New())), w)
			mustEqualPredictions(t, name+"/storebacked", want, gotStored)
		})
	}
}

// TestBatchPredictEdgeCases pins the batch API's corner behavior: empty
// batches, nil jobs, and single-item batches (which skip cache allocation).
func TestBatchPredictEdgeCases(t *testing.T) {
	w, err := workload.Study("ANL", 30, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := DefaultTemplates(w.Chars, w.HasMaxRT)
	p := New(ts, WithStore(histstore.New()))
	for _, j := range w.Jobs[:20] {
		p.Observe(j)
	}
	if res := p.PredictDetailedBatch(nil); len(res) != 0 {
		t.Fatalf("empty batch returned %d results", len(res))
	}
	j := w.Jobs[25]
	res := p.PredictDetailedBatch([]BatchItem{{Job: nil}, {Job: j}})
	if len(res) != 2 {
		t.Fatalf("batch returned %d results for 2 items", len(res))
	}
	if res[0].OK {
		t.Fatal("nil job produced a prediction")
	}
	single, ok := p.PredictDetailed(j, 0)
	if res[1].OK != ok || res[1].Prediction != single {
		t.Fatalf("batch vs single diverged: %+v/%v vs %+v/%v",
			res[1].Prediction, res[1].OK, single, ok)
	}
	one := p.PredictDetailedBatch([]BatchItem{{Job: j}})
	if one[0].OK != ok || one[0].Prediction != single {
		t.Fatalf("single-item batch diverged: %+v/%v vs %+v/%v",
			one[0].Prediction, one[0].OK, single, ok)
	}
}

// TestStoreBackedDurableMatchesBatch adds the durability dimension: the
// store-backed predictor journals to a WAL, snapshots mid-stream, is
// abandoned (simulated crash) and recovered into a fresh predictor — and
// the combined prediction stream still matches the batch predictor
// bit-for-bit.
func TestStoreBackedDurableMatchesBatch(t *testing.T) {
	w, err := workload.Study("ANL", 40, 5)
	if err != nil {
		t.Fatal(err)
	}
	ts := DefaultTemplates(w.Chars, w.HasMaxRT)
	batch := New(ts)
	want := mustPredictAll(t, batch, w)

	dir := t.TempDir()
	st, err := histstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stored := New(ts, WithStore(st))
	half := &workload.Workload{Chars: w.Chars, HasMaxRT: w.HasMaxRT, Jobs: w.Jobs[:len(w.Jobs)/2]}
	got := mustPredictAll(t, stored, half)
	if err := st.Snapshot(); err != nil {
		t.Fatal(err)
	}
	quarter := len(w.Jobs) * 3 / 4
	tail := &workload.Workload{Chars: w.Chars, HasMaxRT: w.HasMaxRT, Jobs: w.Jobs[len(w.Jobs)/2 : quarter]}
	got = append(got, mustPredictAll(t, stored, tail)...)

	// Simulated crash: no Close, no final snapshot. Recovery replays the
	// snapshot plus the WAL tail.
	st2, err := histstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st2.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	recovered := New(ts, WithStore(st2))
	rest := &workload.Workload{Chars: w.Chars, HasMaxRT: w.HasMaxRT, Jobs: w.Jobs[quarter:]}
	got = append(got, mustPredictAll(t, recovered, rest)...)
	mustEqualPredictions(t, "durable", want, got)
}

// TestCOWHammerPredictObserveSnapshot exercises the copy-on-write swap
// where torn views would surface: concurrent predicts (single and batch),
// streaming observes, and continuous SnapshotCtx compaction on a durable
// store. Run under -race this is the CI gate for the lock-free read path;
// the final sweep asserts every published category snapshot is internally
// consistent (ring size matches moment count, finalized aggregates are
// bit-for-bit the moments' MeanVar) and the store's global counters match
// the per-category truth.
func TestCOWHammerPredictObserveSnapshot(t *testing.T) {
	w, err := workload.Study("ANL", 40, 11)
	if err != nil {
		t.Fatal(err)
	}
	ts := DefaultTemplates(w.Chars, w.HasMaxRT)
	st, err := histstore.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := st.Close(); err != nil {
			t.Fatal(err)
		}
	}()
	p := New(ts, WithStore(st))
	for _, j := range w.Jobs[:50] {
		p.Observe(j)
	}

	jobs := w.Jobs[50:]
	done := make(chan struct{})
	var writers, others sync.WaitGroup
	const nWriters, nReaders = 2, 4
	for g := 0; g < nWriters; g++ {
		writers.Add(1)
		go func(g int) {
			defer writers.Done()
			for i := g; i < len(jobs); i += nWriters {
				p.Observe(jobs[i])
			}
		}(g)
	}
	for g := 0; g < nReaders; g++ {
		others.Add(1)
		go func(g int) {
			defer others.Done()
			for i := g; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				j := w.Jobs[i%len(w.Jobs)]
				p.PredictDetailed(j, 0)
				res := p.PredictDetailedBatch([]BatchItem{{Job: j}, {Job: j, Age: 600}})
				if len(res) != 2 {
					t.Errorf("batch returned %d results", len(res))
					return
				}
			}
		}(g)
	}
	others.Add(1)
	go func() {
		defer others.Done()
		ctx := context.Background()
		for {
			select {
			case <-done:
				return
			default:
			}
			if err := st.SnapshotCtx(ctx); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	writers.Wait()
	close(done)
	others.Wait()
	if err := p.StoreErr(); err != nil {
		t.Fatal(err)
	}

	// Consistency sweep over the settled store.
	var cats, points int
	st.ForEach(func(key string, c *histstore.Category) {
		cats++
		points += c.Size()
		if c.Size() != c.Abs().N {
			t.Errorf("category %q: %d points but abs moment count %d", key, c.Size(), c.Abs().N)
		}
		mean, v := c.Abs().MeanVar()
		am, av, an := c.AbsStats()
		if an != c.Abs().N ||
			math.Float64bits(am) != math.Float64bits(mean) ||
			math.Float64bits(av) != math.Float64bits(v) {
			t.Errorf("category %q: finalized abs stats (%v,%v,%d) != moments (%v,%v,%d)",
				key, am, av, an, mean, v, c.Abs().N)
		}
	})
	if cats != st.Categories() || points != st.Points() {
		t.Fatalf("store counters: %d/%d categories, %d/%d points",
			st.Categories(), cats, st.Points(), points)
	}
}

// TestStoreBackedSaveLoadState covers the legacy checkpoint path in store
// mode: SaveState from a store-backed predictor restores into both batch
// and store-backed predictors with identical predictions.
func TestStoreBackedSaveLoadState(t *testing.T) {
	w, err := workload.Study("CTC", 50, 9)
	if err != nil {
		t.Fatal(err)
	}
	ts := DefaultTemplates(w.Chars, w.HasMaxRT)
	stored := New(ts, WithStore(histstore.New()))
	for _, j := range w.Jobs {
		stored.Observe(j)
	}
	if err := stored.StoreErr(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := stored.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	intoBatch := New(ts)
	if err := intoBatch.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	intoStore := New(ts, WithStore(histstore.New()))
	if err := intoStore.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if intoBatch.Categories() != stored.Categories() || intoStore.Categories() != stored.Categories() {
		t.Fatalf("categories: %d / %d / %d", stored.Categories(), intoBatch.Categories(), intoStore.Categories())
	}
	for _, j := range w.Jobs[len(w.Jobs)-25:] {
		a, aok := stored.PredictDetailed(j, 0)
		b, bok := intoBatch.PredictDetailed(j, 0)
		c, cok := intoStore.PredictDetailed(j, 0)
		if aok != bok || aok != cok || a.Seconds != b.Seconds || a.Seconds != c.Seconds {
			t.Fatalf("restored predictions diverged for job %d: %+v/%v %+v/%v %+v/%v",
				j.ID, a, aok, b, bok, c, cok)
		}
	}
}

// TestStoreErrSticky verifies WAL failures are always retained by StoreErr
// — with or without a handler installed — and that a handler additionally
// receives them. The sticky error is what lets warm-phase callers stream a
// whole trace and abort on a single check at the end.
func TestStoreErrSticky(t *testing.T) {
	dir := t.TempDir()
	st, err := histstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	p := New([]Template{{Pred: PredMean}}, WithStore(st))
	j := &workload.Job{Nodes: 1, RunTime: 10}
	p.Observe(j)
	if err := p.StoreErr(); err != nil {
		t.Fatal(err)
	}
	// Closing the store makes every subsequent journaled insert fail.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	p.Observe(j)
	if p.StoreErr() == nil {
		t.Fatal("insert into closed store did not surface an error")
	}

	// With a handler installed the error reaches both the handler and the
	// sticky StoreErr (qwaitd's warm-abort check relies on the latter).
	dir2 := t.TempDir()
	st2, err := histstore.Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	var handled error
	q := New([]Template{{Pred: PredMean}}, WithStore(st2),
		WithStoreErrorHandler(func(e error) { handled = e }))
	q.Observe(j)
	if handled != nil || q.StoreErr() != nil {
		t.Fatalf("healthy insert errored: %v / %v", handled, q.StoreErr())
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	q.Observe(j)
	if handled == nil {
		t.Fatal("handler did not receive the insert failure")
	}
	if q.StoreErr() == nil {
		t.Fatal("StoreErr not recorded when a handler is installed")
	}
}
