package core

import (
	"math"

	"repro/internal/stats"
	"repro/internal/workload"
)

// point is one completed job's contribution to a category.
type point struct {
	runTime float64 // absolute run time, seconds
	ratio   float64 // runTime / maxRunTime, or NaN when no maximum exists
	nodes   float64
}

// category holds the bounded history of one (template, value-combination)
// pair, with O(1) aggregates for the common case (mean prediction, no age
// conditioning) and a ring buffer for the general case.
type category struct {
	maxHistory int // 0 = unlimited
	points     []point
	head       int // ring start when bounded and full
	full       bool

	// Running aggregates over the *current* contents, maintained across
	// insertion and eviction, for absolute values and ratios.
	absAgg aggregate
	ratAgg aggregate
}

// aggregate keeps Σx and Σx² so mean/variance are O(1).
type aggregate struct {
	n    int
	sum  float64
	sum2 float64
}

func (a *aggregate) add(x float64) {
	if math.IsNaN(x) {
		return
	}
	a.n++
	a.sum += x
	a.sum2 += x * x
}

func (a *aggregate) remove(x float64) {
	if math.IsNaN(x) {
		return
	}
	a.n--
	a.sum -= x
	a.sum2 -= x * x
}

// meanVar returns the mean and unbiased sample variance of the aggregate.
// Catastrophic cancellation is clamped at zero variance.
func (a *aggregate) meanVar() (float64, float64) {
	if a.n == 0 {
		return math.NaN(), math.NaN()
	}
	mean := a.sum / float64(a.n)
	if a.n < 2 {
		return mean, math.NaN()
	}
	v := (a.sum2 - a.sum*mean) / float64(a.n-1)
	if v < 0 {
		v = 0
	}
	return mean, v
}

func newCategory(maxHistory int) *category {
	return &category{maxHistory: maxHistory}
}

// size returns the number of points currently stored.
func (c *category) size() int { return len(c.points) }

// insert adds a completed job, evicting the oldest point when the bounded
// history is full (paper step 3(b)ii).
func (c *category) insert(j *workload.Job) {
	p := point{runTime: float64(j.RunTime), nodes: float64(j.Nodes), ratio: math.NaN()}
	if j.MaxRunTime > 0 {
		p.ratio = float64(j.RunTime) / float64(j.MaxRunTime)
	}
	if c.maxHistory > 0 && len(c.points) == c.maxHistory {
		old := c.points[c.head]
		c.absAgg.remove(old.runTime)
		c.ratAgg.remove(old.ratio)
		c.points[c.head] = p
		c.head = (c.head + 1) % c.maxHistory
		c.full = true
	} else {
		c.points = append(c.points, p)
	}
	c.absAgg.add(p.runTime)
	c.ratAgg.add(p.ratio)
}

// forEach visits every stored point (order unspecified).
func (c *category) forEach(f func(point)) {
	for _, p := range c.points {
		f(p)
	}
}

// estimate computes the template's prediction from this category for a job
// requesting `nodes` nodes that has been running for `age` seconds, at the
// given confidence level. It returns the predicted value (in the template's
// value space: seconds for absolute templates, a max-run-time fraction for
// relative ones), the confidence-interval half-width in the same space, and
// whether the category could provide a valid prediction.
func (c *category) estimate(t Template, nodes int, age int64, level float64) (pred, half float64, ok bool) {
	need := t.minPoints()
	if c.size() < need {
		return 0, 0, false
	}

	// Fast path: mean prediction with no age filter uses O(1) aggregates.
	if t.Pred == PredMean && (!t.UseAge || age <= 0) {
		agg := &c.absAgg
		if t.Relative {
			agg = &c.ratAgg
		}
		if agg.n < need {
			return 0, 0, false
		}
		mean, v := agg.meanVar()
		if math.IsNaN(v) {
			return 0, 0, false
		}
		if v == 0 { //lint:allow floatcmp exact-zero variance guard for a category of identical run times
			return mean, 0, true
		}
		tq := stats.TQuantile(0.5+level/2, float64(agg.n-1))
		return mean, tq * math.Sqrt(v/float64(agg.n)), true
	}

	// General path: collect the relevant values.
	filterAge := t.UseAge && age > 0
	var ys, xs []float64
	c.forEach(func(p point) {
		if filterAge && p.runTime <= float64(age) {
			return
		}
		y := p.runTime
		if t.Relative {
			y = p.ratio
			if math.IsNaN(y) {
				return
			}
		}
		ys = append(ys, y)
		xs = append(xs, p.nodes)
	})
	if len(ys) < need {
		return 0, 0, false
	}

	switch t.Pred {
	case PredMean:
		mean, h, err := stats.MeanCI(ys, level)
		if err != nil {
			return 0, 0, false
		}
		return mean, h, true
	case PredLinear:
		r, err := stats.FitLinear(xs, ys)
		if err != nil {
			return 0, 0, false
		}
		pred, half = r.PredictInterval(float64(nodes), level)
	case PredInverse:
		r, err := stats.FitInverse(xs, ys)
		if err != nil {
			return 0, 0, false
		}
		pred, half = r.PredictInterval(float64(nodes), level)
	case PredLog:
		r, err := stats.FitLog(xs, ys)
		if err != nil {
			return 0, 0, false
		}
		pred, half = r.PredictInterval(float64(nodes), level)
	default:
		return 0, 0, false
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) || math.IsNaN(half) || math.IsInf(half, 0) {
		return 0, 0, false
	}
	return pred, half, true
}
