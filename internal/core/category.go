package core

import (
	"math"

	"repro/internal/histstore"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Categories are histstore.Category values: a bounded ring of points with
// incremental Welford moments, shared between the predictor's two modes.
// In batch mode the predictor owns a private map of them; in store-backed
// mode they live inside a sharded (optionally durable) histstore.Store and
// this file's estimate logic runs on immutable category snapshots obtained
// from lock-free atomic pointer loads.
// Using the identical category representation and arithmetic in both modes
// is what makes store-backed predictions bit-for-bit equal to the batch
// predictor's — the determinism tests rely on it.

// pointOf converts a completed job to its category contribution.
func pointOf(j *workload.Job) histstore.Point {
	p := histstore.Point{
		RunTime: float64(j.RunTime),
		Ratio:   math.NaN(),
		Nodes:   float64(j.Nodes),
	}
	if j.MaxRunTime > 0 {
		p.Ratio = float64(j.RunTime) / float64(j.MaxRunTime)
	}
	return p
}

// estimateCategory computes the template's prediction from a category for
// a job requesting `nodes` nodes that has been running for `age` seconds,
// at the given confidence level. It returns the predicted value (in the
// template's value space: seconds for absolute templates, a max-run-time
// fraction for relative ones), the confidence-interval half-width in the
// same space, and whether the category could provide a valid prediction.
func estimateCategory(c *histstore.Category, t Template, nodes int, age int64, level float64) (pred, half float64, ok bool) {
	return estimateWith(c, t, nodes, age, level, nil)
}

// estimateWith is the shared estimate body. With a non-nil predictor it
// reads that predictor's memoized Student-t quantiles (p.level must equal
// level); with nil it computes them directly. Both produce bit-for-bit
// identical results — the memo only avoids re-deriving a pure function of
// (level, n) on every request.
func estimateWith(c *histstore.Category, t Template, nodes int, age int64, level float64, p *Predictor) (pred, half float64, ok bool) {
	need := t.minPoints()
	if c.Size() < need {
		return 0, 0, false
	}

	// Fast path: mean prediction with no age filter consumes the
	// aggregates finalized at observe time — no moment arithmetic at all.
	if t.Pred == PredMean && (!t.UseAge || age <= 0) {
		var mean, v float64
		var n int
		if t.Relative {
			mean, v, n = c.RatStats()
		} else {
			mean, v, n = c.AbsStats()
		}
		if n < need {
			return 0, 0, false
		}
		if math.IsNaN(v) {
			return 0, 0, false
		}
		if v == 0 { //lint:allow floatcmp exact-zero variance guard for a category of identical run times
			return mean, 0, true
		}
		var tq float64
		if p != nil {
			tq = p.tQuantile(n)
		} else {
			tq = stats.TQuantile(0.5+level/2, float64(n-1))
		}
		return mean, tq * math.Sqrt(v/float64(n)), true
	}

	// General path: collect the relevant values.
	filterAge := t.UseAge && age > 0
	var ys, xs []float64
	c.ForEach(func(p histstore.Point) {
		if filterAge && p.RunTime <= float64(age) {
			return
		}
		y := p.RunTime
		if t.Relative {
			y = p.Ratio
			if math.IsNaN(y) {
				return
			}
		}
		ys = append(ys, y)       //lint:allow hotpath general-path sample collection, sized by the category history caps; part of the committed allocs/op floor
		xs = append(xs, p.Nodes) //lint:allow hotpath general-path sample collection; part of the committed allocs/op floor
	})
	if len(ys) < need {
		return 0, 0, false
	}

	switch t.Pred {
	case PredMean:
		mean, h, err := stats.MeanCI(ys, level)
		if err != nil {
			return 0, 0, false
		}
		return mean, h, true
	case PredLinear:
		r, err := stats.FitLinear(xs, ys)
		if err != nil {
			return 0, 0, false
		}
		pred, half = r.PredictInterval(float64(nodes), level)
	case PredInverse:
		r, err := stats.FitInverse(xs, ys)
		if err != nil {
			return 0, 0, false
		}
		pred, half = r.PredictInterval(float64(nodes), level)
	case PredLog:
		r, err := stats.FitLog(xs, ys)
		if err != nil {
			return 0, 0, false
		}
		pred, half = r.PredictInterval(float64(nodes), level)
	default:
		return 0, 0, false
	}
	if math.IsNaN(pred) || math.IsInf(pred, 0) || math.IsNaN(half) || math.IsInf(half, 0) {
		return 0, 0, false
	}
	return pred, half, true
}
