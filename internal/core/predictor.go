package core

import (
	"context"
	"math"
	"sync/atomic"

	"repro/internal/histstore"
	"repro/internal/obs/trace"
	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/workload"
)

// DefaultConfidence is the confidence level of the interval used to rank
// category estimates.
const DefaultConfidence = 0.90

// Prediction is a detailed prediction outcome, exposed for analysis tools
// and tests; scheduling code uses the plain Predictor interface.
type Prediction struct {
	Seconds  int64   // predicted total run time
	Interval float64 // confidence-interval half-width, seconds
	Template int     // index of the winning template
	Category string  // winning category key
	N        int     // points in the winning category
}

// Predictor is the paper's run-time predictor: it maintains a category
// database per template and predicts via the smallest-confidence-interval
// category estimate (§2.1, steps 1–3).
//
// The predictor has two storage modes. In batch mode (the default) it owns
// a private category map; this is the single-threaded configuration the
// simulations and experiments use, and it is not safe for concurrent use.
// With WithStore the category database lives in a sharded
// histstore.Store — Observe and Predict become concurrency-safe (writes
// serialize per shard; predictions are lock-free snapshot loads),
// completions stream in as O(templates) incremental updates, and, when the
// store was opened durably, every observation is journaled for crash
// recovery. Both modes share the same category representation and estimate
// arithmetic, so their predictions are bit-for-bit identical.
type Predictor struct {
	templates  []Template
	level      float64
	cats       map[string]*histstore.Category // batch mode; nil when store-backed
	store      *histstore.Store               // store-backed mode; nil in batch mode
	name       string
	firstMatch bool

	onStoreErr func(error)  // called on store insert failures (WAL errors)
	storeErr   atomic.Value // sticky first insert error, boxed as storedErr

	// tq memoizes Student-t quantiles for the predictor's confidence level,
	// keyed by sample count. The map is copy-on-write behind an atomic
	// pointer so the predict hot path stays mutex-free: a miss clones the
	// map, adds the entry, and swaps the pointer. Concurrent misses may lose
	// each other's updates, which is benign — TQuantile is a pure function
	// of (level, n), so a re-derived entry is always bit-identical.
	tq atomic.Pointer[map[int]float64]
}

// storedErr boxes store insert failures in one concrete type, as
// atomic.Value requires every stored value to share.
type storedErr struct{ err error }

// Option configures a Predictor.
type Option func(*Predictor)

// WithConfidence sets the confidence level (0 < level < 1) used for the
// interval that ranks category estimates.
func WithConfidence(level float64) Option {
	return func(p *Predictor) {
		if level > 0 && level < 1 {
			p.level = level
		}
	}
}

// WithName overrides the predictor's reported name (useful when comparing
// several template sets in one experiment).
func WithName(name string) Option {
	return func(p *Predictor) { p.name = name }
}

// WithFirstMatch switches the estimate selection from the paper's
// smallest-confidence-interval rule to Gibbons-style first-match: templates
// are tried in order and the first valid estimate wins. This exists for the
// ablation of DESIGN.md §5.2.
func WithFirstMatch() Option {
	return func(p *Predictor) { p.firstMatch = true }
}

// WithStore backs the predictor's category database with a sharded
// histstore.Store instead of a private map: Observe writes through the
// store (journaled when the store is durable) and predictions read
// immutable category snapshots through lock-free atomic pointer loads,
// making the predictor safe for concurrent use with zero mutex
// acquisitions on the predict path.
func WithStore(st *histstore.Store) Option {
	return func(p *Predictor) {
		if st != nil {
			p.store = st
			p.cats = nil
		}
	}
}

// WithStoreErrorHandler installs f as the handler for store insert
// failures (write-ahead-log errors surfaced by Observe, whose interface
// signature cannot return them). The first error is always retained and
// exposed by StoreErr, handler or not; the handler additionally receives
// every failure as it happens.
func WithStoreErrorHandler(f func(error)) Option {
	return func(p *Predictor) { p.onStoreErr = f }
}

// New creates a Predictor with the given template set. An empty template
// set is legal but never predicts.
func New(templates []Template, opts ...Option) *Predictor {
	p := &Predictor{
		templates: append([]Template(nil), templates...),
		level:     DefaultConfidence,
		cats:      make(map[string]*histstore.Category),
		name:      "smith",
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// NewDefault creates a Predictor with DefaultTemplates for a workload.
func NewDefault(w *workload.Workload, opts ...Option) *Predictor {
	return New(DefaultTemplates(w.Chars, w.HasMaxRT), opts...)
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return p.name }

// Templates returns a copy of the predictor's template set.
func (p *Predictor) Templates() []Template {
	return append([]Template(nil), p.templates...)
}

// Store returns the backing store, or nil in batch mode.
func (p *Predictor) Store() *histstore.Store { return p.store }

// StoreErr returns the first store insert failure seen by Observe (nil
// when none has occurred, and always nil in batch mode). It is recorded
// whether or not a WithStoreErrorHandler is installed, so callers that
// stream many observations (e.g. trace warming) can check once at the end.
func (p *Predictor) StoreErr() error {
	if v, ok := p.storeErr.Load().(storedErr); ok {
		return v.err
	}
	return nil
}

// recordStoreErr retains the first store insert failure for StoreErr.
func (p *Predictor) recordStoreErr(err error) {
	p.storeErr.CompareAndSwap(nil, storedErr{err})
}

// tQuantile returns stats.TQuantile(0.5+p.level/2, n-1), memoized. The
// distinct sample counts a predictor ever sees are bounded by the category
// history caps, so the memo converges to a small read-only map and the hot
// path settles into a single pointer load plus map probe.
func (p *Predictor) tQuantile(n int) float64 {
	if m := p.tq.Load(); m != nil {
		if v, ok := (*m)[n]; ok {
			return v
		}
	}
	v := stats.TQuantile(0.5+p.level/2, float64(n-1))
	old := p.tq.Load()
	var nm map[int]float64
	if old == nil {
		nm = map[int]float64{n: v} //lint:allow hotpath warm-up-only COW memo; converges once every sample count has been seen
	} else {
		nm = make(map[int]float64, len(*old)+1) //lint:allow hotpath warm-up-only COW memo rebuild; the steady state is the read above
		for k, x := range *old {
			nm[k] = x //lint:allow hotpath writes touch the private successor map, never the published snapshot
		}
		nm[n] = v //lint:allow hotpath warm-up-only write to the private successor map
	}
	p.tq.Store(&nm)
	return v
}

// Categories returns the number of categories currently stored.
func (p *Predictor) Categories() int {
	if p.store != nil {
		return p.store.Categories()
	}
	return len(p.cats)
}

// HistorySize returns the total number of data points stored across all
// categories — the predictor's working-set size, reported as a gauge by
// the observability layer. O(1) store-backed, O(categories) in batch mode.
func (p *Predictor) HistorySize() int {
	if p.store != nil {
		return p.store.Points()
	}
	var n int
	for _, c := range p.cats {
		n += c.Size()
	}
	return n
}

// Predict implements predict.Predictor: apply every template to the job,
// compute an estimate with a confidence interval from each category that
// can provide a valid one, and return the estimate with the smallest
// interval (paper step 2).
func (p *Predictor) Predict(j *workload.Job, age int64) (int64, bool) {
	pr, ok := p.PredictDetailed(j, age)
	if !ok {
		return 0, false
	}
	return pr.Seconds, true
}

// PredictDetailed is Predict with full diagnostic detail.
//
// The hotpath contract below is the static half of the benchmark
// trajectory's claim (BENCH_<pr>.json, DESIGN.md §10–§11): no call path
// from here may acquire a mutex, block on a channel, or read the wall
// clock. The allocation half is enforced to the same boundary the bench
// gate measures — the remaining allocation sites (template key
// rendering, the general estimate path, one-time memo warm-up) each
// carry a sited //lint:allow justification tying them to the committed
// allocs/op floor.
//
// hotpath: no-lock no-alloc no-clock
func (p *Predictor) PredictDetailed(j *workload.Job, age int64) (Prediction, bool) {
	return p.predictDetailed(context.Background(), nil, j, age, nil)
}

// PredictDetailedCtx is PredictDetailed under the trace active in ctx: the
// whole prediction becomes a "core.predict" span whose children decompose
// it into per-template "template_match" work (category lookup through the
// store's "histstore.view" spans, then "estimate"). Without an active
// trace it is exactly PredictDetailed — the span plumbing short-circuits
// on nil before allocating anything.
func (p *Predictor) PredictDetailedCtx(ctx context.Context, j *workload.Job, age int64) (Prediction, bool) {
	ctx, sp := trace.StartSpan(ctx, "core.predict")
	if sp == nil {
		return p.predictDetailed(ctx, nil, j, age, nil)
	}
	pr, ok := p.predictDetailed(ctx, sp, j, age, nil)
	if ok {
		sp.SetAttrInt("seconds", pr.Seconds)
		sp.SetAttr("category", pr.Category)
		sp.SetAttrInt("n", int64(pr.N))
	} else {
		sp.SetAttr("hit", "false")
	}
	sp.End()
	return pr, ok
}

// BatchItem is one job in a batch prediction request.
type BatchItem struct {
	Job *workload.Job
	Age int64 // seconds the job has already been running (0 at submit)
}

// BatchResult pairs one batch item's prediction with its validity: OK is
// false when no template produced a usable estimate (exactly Predict's
// second return).
type BatchResult struct {
	Prediction
	OK bool
}

// PredictDetailedBatch predicts for many jobs in one call, amortizing
// category resolution: within the batch every distinct category key is
// looked up in the store at most once, so all items are served from one
// consistent snapshot of each category even while observations stream in
// concurrently. Results are positional with items.
//
// hotpath: no-lock no-alloc no-clock
func (p *Predictor) PredictDetailedBatch(items []BatchItem) []BatchResult {
	return p.PredictDetailedBatchCtx(context.Background(), items)
}

// PredictDetailedBatchCtx is PredictDetailedBatch under the trace active in
// ctx: the batch becomes a "core.predict_batch" span whose children are the
// per-item "core.predict" spans, each decomposed exactly as
// PredictDetailedCtx decomposes a single prediction. Without an active
// trace it is exactly PredictDetailedBatch.
func (p *Predictor) PredictDetailedBatchCtx(ctx context.Context, items []BatchItem) []BatchResult {
	out := make([]BatchResult, len(items)) //lint:allow hotpath one result slice per batch is the API contract; amortized across len(items) predictions
	ctx, bsp := trace.StartSpan(ctx, "core.predict_batch")
	if bsp != nil {
		bsp.SetAttrInt("jobs", int64(len(items)))
	}
	var cache map[string]cachedCat
	if p.store != nil && len(items) > 1 {
		cache = make(map[string]cachedCat, len(p.templates)) //lint:allow hotpath one snapshot cache per batch buys at-most-once store lookups
	}
	for i, it := range items {
		if it.Job == nil {
			continue
		}
		ictx, sp := trace.StartSpan(ctx, "core.predict")
		pr, ok := p.predictDetailed(ictx, sp, it.Job, it.Age, cache)
		if sp != nil {
			if ok {
				sp.SetAttrInt("seconds", pr.Seconds)
				sp.SetAttr("category", pr.Category)
				sp.SetAttrInt("n", int64(pr.N))
			} else {
				sp.SetAttr("hit", "false")
			}
			sp.End()
		}
		out[i] = BatchResult{Prediction: pr, OK: ok}
	}
	if bsp != nil {
		bsp.End()
	}
	return out
}

// cachedCat is one entry of a batch's key→category resolve cache; ok=false
// caches a definitive miss so repeated misses skip the store too.
type cachedCat struct {
	c  *histstore.Category
	ok bool
}

// lookup resolves a category key against the backing store: a lock-free
// snapshot load, recorded as a "histstore.view" child span when tsp is an
// open template_match span.
func (p *Predictor) lookup(ctx context.Context, tsp *trace.Span, key string) (*histstore.Category, bool) {
	if tsp != nil {
		return p.store.GetCtx(trace.ContextWithSpan(ctx, tsp), key)
	}
	return p.store.Get(key) //lint:allow ctxflow no active trace when the span is nil; the ctx-less fast path skips a second StartSpan on the hot predict loop
}

// predictDetailed is the shared prediction body; sp, when non-nil, is the
// open "core.predict" span receiving per-template children. cache, when
// non-nil, memoizes store lookups (including misses) across the calls of
// one batch; single predictions pass nil and pay no cache overhead.
//
// Store-backed, the category lookup is a lock-free snapshot load
// (store.Get) and the estimate consumes the category's finalized moments —
// the predict hot path acquires no mutexes at all.
func (p *Predictor) predictDetailed(ctx context.Context, sp *trace.Span, j *workload.Job, age int64, cache map[string]cachedCat) (Prediction, bool) {
	best := Prediction{Interval: math.Inf(1), Template: -1}
	found := false
	for i, t := range p.templates {
		if t.Relative && j.MaxRunTime <= 0 {
			continue
		}
		key := t.Key(i, j)
		var (
			val, half float64
			ok        bool
			n         int
		)
		tsp := sp.StartChild("template_match")
		var c *histstore.Category
		var exists bool
		switch {
		case p.store == nil:
			c, exists = p.cats[key]
		case cache != nil:
			e, hit := cache[key]
			if !hit {
				e.c, e.ok = p.lookup(ctx, tsp, key)
				cache[key] = e //lint:allow hotpath batch-local snapshot cache, bounded by the template count
			}
			c, exists = e.c, e.ok
		default:
			c, exists = p.lookup(ctx, tsp, key)
		}
		if exists {
			esp := tsp.StartChild("estimate")
			val, half, ok = estimateWith(c, t, j.Nodes, age, p.level, p)
			n = c.Size()
			esp.End()
		}
		if tsp != nil {
			tsp.SetAttrInt("template", int64(i))
			tsp.SetAttr("category", key)
			if !ok {
				tsp.SetAttr("hit", "false")
			}
			tsp.End()
		}
		if !ok {
			continue
		}
		// Map the estimate back to seconds.
		sec, halfSec := val, half
		if t.Relative {
			sec *= float64(j.MaxRunTime)
			halfSec *= float64(j.MaxRunTime)
		}
		if sec <= 0 || math.IsNaN(sec) {
			continue
		}
		// A candidate the job has already outlived is certainly wrong, not
		// merely uncertain; prefer age-consistent estimates (the templates
		// with the running-time attribute provide them).
		if age > 0 && int64(sec) <= age {
			continue
		}
		if !found || halfSec < best.Interval {
			found = true
			best = Prediction{
				Seconds:  int64(math.Round(sec)),
				Interval: halfSec,
				Template: i,
				Category: key,
				N:        n,
			}
		}
		if found && p.firstMatch {
			break
		}
	}
	if !found {
		return Prediction{}, false
	}
	if best.Seconds < 1 {
		best.Seconds = 1
	}
	return best, true
}

// Observe implements predict.Predictor: insert the completed job into the
// category of every template, creating categories as needed (paper step 3).
// Store-backed, each insert is an O(1) streaming update (journaled when
// the store is durable); insert failures go to the configured error
// handler because this interface method cannot return them.
func (p *Predictor) Observe(j *workload.Job) {
	p.observe(context.Background(), nil, j)
}

// ObserveCtx is Observe under the trace active in ctx: the fan-out across
// templates becomes a "core.observe" span whose children are the store's
// per-category "histstore.insert" spans (including WAL appends for durable
// stores). Without an active trace it is exactly Observe.
func (p *Predictor) ObserveCtx(ctx context.Context, j *workload.Job) {
	ctx, sp := trace.StartSpan(ctx, "core.observe")
	p.observe(ctx, sp, j)
	sp.End()
}

func (p *Predictor) observe(ctx context.Context, sp *trace.Span, j *workload.Job) {
	pt := pointOf(j)
	for i, t := range p.templates {
		key := t.Key(i, j)
		if p.store != nil {
			var err error
			if sp != nil {
				err = p.store.InsertCtx(ctx, key, t.MaxHistory, pt)
			} else {
				err = p.store.Insert(key, t.MaxHistory, pt) //lint:allow ctxflow no active trace when the span is nil; the ctx-less fast path skips a second StartSpan per template
			}
			if err != nil {
				p.recordStoreErr(err)
				if p.onStoreErr != nil {
					p.onStoreErr(err)
				}
			}
			continue
		}
		c, ok := p.cats[key]
		if !ok {
			c = histstore.NewCategory(t.MaxHistory)
			p.cats[key] = c
		}
		c.Insert(pt)
	}
}

// Static check.
var _ predict.Predictor = (*Predictor)(nil)
