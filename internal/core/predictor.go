package core

import (
	"math"

	"repro/internal/predict"
	"repro/internal/workload"
)

// DefaultConfidence is the confidence level of the interval used to rank
// category estimates.
const DefaultConfidence = 0.90

// Prediction is a detailed prediction outcome, exposed for analysis tools
// and tests; scheduling code uses the plain Predictor interface.
type Prediction struct {
	Seconds  int64   // predicted total run time
	Interval float64 // confidence-interval half-width, seconds
	Template int     // index of the winning template
	Category string  // winning category key
	N        int     // points in the winning category
}

// Predictor is the paper's run-time predictor: it maintains a category
// database per template and predicts via the smallest-confidence-interval
// category estimate (§2.1, steps 1–3).
//
// Predictor is not safe for concurrent use; simulations are single-threaded
// and parallel experiments each own a Predictor.
type Predictor struct {
	templates  []Template
	level      float64
	cats       map[string]*category
	name       string
	firstMatch bool
}

// Option configures a Predictor.
type Option func(*Predictor)

// WithConfidence sets the confidence level (0 < level < 1) used for the
// interval that ranks category estimates.
func WithConfidence(level float64) Option {
	return func(p *Predictor) {
		if level > 0 && level < 1 {
			p.level = level
		}
	}
}

// WithName overrides the predictor's reported name (useful when comparing
// several template sets in one experiment).
func WithName(name string) Option {
	return func(p *Predictor) { p.name = name }
}

// WithFirstMatch switches the estimate selection from the paper's
// smallest-confidence-interval rule to Gibbons-style first-match: templates
// are tried in order and the first valid estimate wins. This exists for the
// ablation of DESIGN.md §5.2.
func WithFirstMatch() Option {
	return func(p *Predictor) { p.firstMatch = true }
}

// New creates a Predictor with the given template set. An empty template
// set is legal but never predicts.
func New(templates []Template, opts ...Option) *Predictor {
	p := &Predictor{
		templates: append([]Template(nil), templates...),
		level:     DefaultConfidence,
		cats:      make(map[string]*category),
		name:      "smith",
	}
	for _, o := range opts {
		o(p)
	}
	return p
}

// NewDefault creates a Predictor with DefaultTemplates for a workload.
func NewDefault(w *workload.Workload, opts ...Option) *Predictor {
	return New(DefaultTemplates(w.Chars, w.HasMaxRT), opts...)
}

// Name implements predict.Predictor.
func (p *Predictor) Name() string { return p.name }

// Templates returns a copy of the predictor's template set.
func (p *Predictor) Templates() []Template {
	return append([]Template(nil), p.templates...)
}

// Categories returns the number of categories currently stored.
func (p *Predictor) Categories() int { return len(p.cats) }

// HistorySize returns the total number of data points stored across all
// categories — the predictor's working-set size, reported as a gauge by
// the observability layer. O(categories).
func (p *Predictor) HistorySize() int {
	var n int
	for _, c := range p.cats {
		n += c.size()
	}
	return n
}

// Predict implements predict.Predictor: apply every template to the job,
// compute an estimate with a confidence interval from each category that
// can provide a valid one, and return the estimate with the smallest
// interval (paper step 2).
func (p *Predictor) Predict(j *workload.Job, age int64) (int64, bool) {
	pr, ok := p.PredictDetailed(j, age)
	if !ok {
		return 0, false
	}
	return pr.Seconds, true
}

// PredictDetailed is Predict with full diagnostic detail.
func (p *Predictor) PredictDetailed(j *workload.Job, age int64) (Prediction, bool) {
	best := Prediction{Interval: math.Inf(1), Template: -1}
	found := false
	for i, t := range p.templates {
		if t.Relative && j.MaxRunTime <= 0 {
			continue
		}
		key := t.Key(i, j)
		c, exists := p.cats[key]
		if !exists {
			continue
		}
		val, half, ok := c.estimate(t, j.Nodes, age, p.level)
		if !ok {
			continue
		}
		// Map the estimate back to seconds.
		sec, halfSec := val, half
		if t.Relative {
			sec *= float64(j.MaxRunTime)
			halfSec *= float64(j.MaxRunTime)
		}
		if sec <= 0 || math.IsNaN(sec) {
			continue
		}
		// A candidate the job has already outlived is certainly wrong, not
		// merely uncertain; prefer age-consistent estimates (the templates
		// with the running-time attribute provide them).
		if age > 0 && int64(sec) <= age {
			continue
		}
		if !found || halfSec < best.Interval {
			found = true
			best = Prediction{
				Seconds:  int64(math.Round(sec)),
				Interval: halfSec,
				Template: i,
				Category: key,
				N:        c.size(),
			}
		}
		if found && p.firstMatch {
			break
		}
	}
	if !found {
		return Prediction{}, false
	}
	if best.Seconds < 1 {
		best.Seconds = 1
	}
	return best, true
}

// Observe implements predict.Predictor: insert the completed job into the
// category of every template, creating categories as needed (paper step 3).
func (p *Predictor) Observe(j *workload.Job) {
	for i, t := range p.templates {
		key := t.Key(i, j)
		c, ok := p.cats[key]
		if !ok {
			c = newCategory(t.MaxHistory)
			p.cats[key] = c
		}
		c.insert(j)
	}
}

// Static check.
var _ predict.Predictor = (*Predictor)(nil)
