package core

import (
	"encoding/json"
	"fmt"

	"repro/internal/workload"
)

// JSON persistence for template sets, so searched templates (cmd/gasearch)
// can be saved and reloaded by the experiment tools (cmd/tables -templates).
// The representation uses the paper's abbreviations, e.g.:
//
//	[{"chars":["u","e"],"nodeRange":4,"maxHistory":1024,
//	  "relative":true,"useAge":true,"pred":"mean"}]

// templateJSON is the stable wire form of a Template.
type templateJSON struct {
	Chars      []string `json:"chars,omitempty"`
	NodeRange  int      `json:"nodeRange,omitempty"` // 0 = node bucketing unused
	MaxHistory int      `json:"maxHistory,omitempty"`
	Relative   bool     `json:"relative,omitempty"`
	UseAge     bool     `json:"useAge,omitempty"`
	Pred       string   `json:"pred"`
}

// MarshalTemplates encodes a template set as JSON.
func MarshalTemplates(ts []Template) ([]byte, error) {
	out := make([]templateJSON, len(ts))
	for i, t := range ts {
		j := templateJSON{
			NodeRange:  0,
			MaxHistory: t.MaxHistory,
			Relative:   t.Relative,
			UseAge:     t.UseAge,
			Pred:       t.Pred.String(),
		}
		if t.UseNodes {
			j.NodeRange = t.NodeRange
			if j.NodeRange < 1 {
				j.NodeRange = 1
			}
		}
		for _, c := range t.Chars.Chars() {
			j.Chars = append(j.Chars, c.Abbrev())
		}
		out[i] = j
	}
	return json.MarshalIndent(out, "", "  ")
}

// predTypeFromString parses the wire form of a PredType.
func predTypeFromString(s string) (PredType, error) {
	for p := PredType(0); p < NumPredTypes; p++ {
		if p.String() == s {
			return p, nil
		}
	}
	return 0, fmt.Errorf("core: unknown prediction type %q", s)
}

// UnmarshalTemplates decodes a template set from JSON, validating every
// field against the paper's bounds.
//
// taint: sanitizer rejects template JSON whose prediction types, characteristics, or node ranges are invalid
func UnmarshalTemplates(data []byte) ([]Template, error) {
	var in []templateJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("core: %v", err)
	}
	out := make([]Template, 0, len(in))
	for i, j := range in {
		var t Template
		var err error
		t.Pred, err = predTypeFromString(j.Pred)
		if err != nil {
			return nil, fmt.Errorf("core: template %d: %v", i, err)
		}
		for _, abbr := range j.Chars {
			c, ok := workload.CharFromAbbrev(abbr)
			if !ok {
				return nil, fmt.Errorf("core: template %d: unknown characteristic %q", i, abbr)
			}
			t.Chars |= workload.MaskOf(c)
		}
		if j.NodeRange < 0 || j.NodeRange > 512 {
			return nil, fmt.Errorf("core: template %d: node range %d out of [0,512]", i, j.NodeRange)
		}
		if j.NodeRange > 0 {
			t.UseNodes = true
			t.NodeRange = j.NodeRange
		}
		if j.MaxHistory < 0 || j.MaxHistory > 65536 {
			return nil, fmt.Errorf("core: template %d: history %d out of [0,65536]", i, j.MaxHistory)
		}
		t.MaxHistory = j.MaxHistory
		t.Relative = j.Relative
		t.UseAge = j.UseAge
		out = append(out, t)
	}
	return out, nil
}
