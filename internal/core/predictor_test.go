package core

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func uj(user string, nodes int, rt int64) *workload.Job {
	return &workload.Job{User: user, Executable: user + "/app", Nodes: nodes, RunTime: rt}
}

func meanTemplate(chars ...workload.Char) Template {
	return Template{Chars: workload.MaskOf(chars...), Pred: PredMean}
}

func TestPredictorRampUp(t *testing.T) {
	p := New([]Template{meanTemplate(workload.CharUser)})
	if _, ok := p.Predict(uj("alice", 4, 100), 0); ok {
		t.Fatal("no history: must not predict")
	}
	p.Observe(uj("alice", 4, 100))
	if _, ok := p.Predict(uj("alice", 4, 100), 0); ok {
		t.Fatal("one point: mean template needs two for a confidence interval")
	}
	p.Observe(uj("alice", 4, 120))
	got, ok := p.Predict(uj("alice", 4, 100), 0)
	if !ok || got != 110 {
		t.Fatalf("Predict = %d, %v; want 110", got, ok)
	}
}

func TestPredictorCategoryIsolation(t *testing.T) {
	p := New([]Template{meanTemplate(workload.CharUser)})
	p.Observe(uj("alice", 4, 100))
	p.Observe(uj("alice", 4, 100))
	p.Observe(uj("bob", 4, 9000))
	p.Observe(uj("bob", 4, 9000))
	got, _ := p.Predict(uj("alice", 4, 0), 0)
	if got != 100 {
		t.Fatalf("alice prediction contaminated: %d", got)
	}
	got, _ = p.Predict(uj("bob", 4, 0), 0)
	if got != 9000 {
		t.Fatalf("bob prediction = %d", got)
	}
	if _, ok := p.Predict(uj("carol", 4, 0), 0); ok {
		t.Fatal("unknown user must not predict with a user-only template")
	}
}

func TestPredictorSmallestCIWins(t *testing.T) {
	// Template 0: user — tight history (low variance).
	// Template 1: () — everything, high variance.
	p := New([]Template{
		meanTemplate(workload.CharUser),
		meanTemplate(),
	})
	for i := 0; i < 10; i++ {
		p.Observe(uj("alice", 4, 1000)) // alice is perfectly consistent
		p.Observe(uj("bob", 4, int64(10+i*2000)))
	}
	pr, ok := p.PredictDetailed(uj("alice", 4, 0), 0)
	if !ok {
		t.Fatal("no prediction")
	}
	if pr.Template != 0 {
		t.Fatalf("winning template = %d, want the tight user template", pr.Template)
	}
	if pr.Seconds != 1000 {
		t.Fatalf("prediction = %d", pr.Seconds)
	}
	if pr.Interval != 0 {
		t.Fatalf("interval = %v, want 0 for identical history", pr.Interval)
	}

	// A fresh user has no user category: the () template must carry.
	pr, ok = p.PredictDetailed(uj("carol", 4, 0), 0)
	if !ok || pr.Template != 1 {
		t.Fatalf("fallback template = %d (ok=%v), want 1", pr.Template, ok)
	}
}

func TestPredictorRelativeTemplates(t *testing.T) {
	tpl := Template{Chars: workload.MaskOf(workload.CharUser), Relative: true, Pred: PredMean}
	p := New([]Template{tpl})
	// Alice always uses half her requested time.
	for i := 0; i < 5; i++ {
		j := uj("alice", 4, 600)
		j.MaxRunTime = 1200
		p.Observe(j)
	}
	// New job with a different maximum: prediction scales.
	q := uj("alice", 4, 0)
	q.MaxRunTime = 4000
	got, ok := p.Predict(q, 0)
	if !ok || got != 2000 {
		t.Fatalf("relative prediction = %d, %v; want 2000", got, ok)
	}
	// A job with no maximum cannot use a relative template.
	if _, ok := p.Predict(uj("alice", 4, 0), 0); ok {
		t.Fatal("relative template must not fire without a max run time")
	}
}

func TestPredictorAgeConditioning(t *testing.T) {
	tpl := Template{Chars: workload.MaskOf(workload.CharUser), UseAge: true, Pred: PredMean}
	p := New([]Template{tpl})
	// History: many short runs and a few long ones.
	for i := 0; i < 8; i++ {
		p.Observe(uj("alice", 4, 60))
	}
	for i := 0; i < 4; i++ {
		p.Observe(uj("alice", 4, 7200))
	}
	// At age 0 the mean is pulled down by the short runs.
	got0, _ := p.Predict(uj("alice", 4, 0), 0)
	// Once the job has survived 600s, only the 7200s points remain.
	got600, ok := p.Predict(uj("alice", 4, 0), 600)
	if !ok {
		t.Fatal("age-conditioned prediction failed")
	}
	if got600 != 7200 {
		t.Fatalf("age-conditioned prediction = %d, want 7200", got600)
	}
	if got0 >= got600 {
		t.Fatalf("unconditioned %d should be below conditioned %d", got0, got600)
	}
}

func TestPredictorMaxHistoryEviction(t *testing.T) {
	tpl := Template{Chars: workload.MaskOf(workload.CharUser), MaxHistory: 4, Pred: PredMean}
	p := New([]Template{tpl})
	// Old regime: 100s. New regime: 500s.
	for i := 0; i < 10; i++ {
		p.Observe(uj("alice", 4, 100))
	}
	for i := 0; i < 4; i++ {
		p.Observe(uj("alice", 4, 500))
	}
	got, ok := p.Predict(uj("alice", 4, 0), 0)
	if !ok || got != 500 {
		t.Fatalf("bounded history should only see the new regime: %d, %v", got, ok)
	}
}

func TestPredictorRegressionTemplates(t *testing.T) {
	tpl := Template{Chars: workload.MaskOf(workload.CharUser), Pred: PredLinear}
	p := New([]Template{tpl})
	// Run time grows linearly with nodes: rt = 100*n.
	for _, n := range []int{1, 2, 4, 8, 16} {
		p.Observe(uj("alice", n, int64(100*n)))
	}
	got, ok := p.Predict(uj("alice", 32, 0), 0)
	if !ok {
		t.Fatal("linear template failed")
	}
	if got != 3200 {
		t.Fatalf("linear extrapolation = %d, want 3200", got)
	}
}

func TestPredictorInverseAndLog(t *testing.T) {
	for _, pt := range []PredType{PredInverse, PredLog} {
		tpl := Template{Chars: workload.MaskOf(workload.CharUser), Pred: pt}
		p := New([]Template{tpl})
		for _, n := range []int{1, 2, 4, 8} {
			var rt int64
			if pt == PredInverse {
				rt = int64(1000/n + 500)
			} else {
				rt = int64(300*math.Log(float64(n)) + 100)
			}
			p.Observe(uj("alice", n, rt))
		}
		if _, ok := p.Predict(uj("alice", 16, 0), 0); !ok {
			t.Errorf("%v template failed to predict", pt)
		}
	}
}

func TestPredictorNegativePredictionRejected(t *testing.T) {
	// A steep negative regression can extrapolate below zero; such
	// estimates must be discarded.
	tpl := Template{Chars: workload.MaskOf(workload.CharUser), Pred: PredLinear}
	p := New([]Template{tpl})
	for _, n := range []int{1, 2, 3, 4} {
		p.Observe(uj("alice", n, int64(1000-200*n)))
	}
	if _, ok := p.Predict(uj("alice", 16, 0), 0); ok {
		t.Fatal("negative extrapolation should be rejected")
	}
}

func TestPredictorObserveCreatesCategories(t *testing.T) {
	p := New(DefaultTemplates(workload.MaskOf(workload.CharUser, workload.CharExec), true))
	if p.Categories() != 0 {
		t.Fatal("fresh predictor should have no categories")
	}
	j := uj("alice", 4, 100)
	j.MaxRunTime = 200
	p.Observe(j)
	if p.Categories() == 0 {
		t.Fatal("Observe should create categories")
	}
}

func TestPredictorOptionsAndName(t *testing.T) {
	p := New(nil, WithName("custom"), WithConfidence(0.5))
	if p.Name() != "custom" {
		t.Errorf("name = %q", p.Name())
	}
	if p.level != 0.5 {
		t.Errorf("level = %v", p.level)
	}
	// Invalid levels are ignored.
	p2 := New(nil, WithConfidence(2))
	if p2.level != DefaultConfidence {
		t.Errorf("invalid level accepted: %v", p2.level)
	}
	// Nil template set never predicts but must not panic.
	if _, ok := p.Predict(uj("a", 1, 10), 0); ok {
		t.Error("empty predictor predicted")
	}
	p.Observe(uj("a", 1, 10))
}

func TestPredictorConfidenceAffectsRanking(t *testing.T) {
	// Narrower confidence levels shrink every interval equally in t-quantile
	// terms, so ranking is stable; this is a smoke check that level is used.
	p90 := New([]Template{meanTemplate(workload.CharUser)}, WithConfidence(0.90))
	p99 := New([]Template{meanTemplate(workload.CharUser)}, WithConfidence(0.99))
	for i := 0; i < 5; i++ {
		j := uj("alice", 4, int64(100+i*10))
		p90.Observe(j)
		p99.Observe(j)
	}
	a, _ := p90.PredictDetailed(uj("alice", 4, 0), 0)
	b, _ := p99.PredictDetailed(uj("alice", 4, 0), 0)
	if a.Seconds != b.Seconds {
		t.Errorf("point predictions differ: %d vs %d", a.Seconds, b.Seconds)
	}
	if b.Interval <= a.Interval {
		t.Errorf("99%% interval (%v) should exceed 90%% interval (%v)", b.Interval, a.Interval)
	}
}

func TestPredictorTemplatesCopy(t *testing.T) {
	ts := []Template{meanTemplate(workload.CharUser)}
	p := New(ts)
	got := p.Templates()
	got[0].MaxHistory = 777
	if p.templates[0].MaxHistory == 777 {
		t.Error("Templates() must return a copy")
	}
}

// The predictor should beat a max-run-time baseline on a repetitive
// synthetic workload once warmed up — the paper's headline property.
func TestPredictorBeatsMaxRTOnSyntheticWorkload(t *testing.T) {
	w, err := workload.Study("ANL", 10, 77)
	if err != nil {
		t.Fatal(err)
	}
	p := NewDefault(w)
	var smithErr, maxErr float64
	var n int
	for _, j := range w.Jobs {
		if got, ok := p.Predict(j, 0); ok {
			smithErr += math.Abs(float64(got - j.RunTime))
			maxErr += math.Abs(float64(j.MaxRunTime - j.RunTime))
			n++
		}
		p.Observe(j)
	}
	if n < len(w.Jobs)/2 {
		t.Fatalf("predicted only %d of %d jobs", n, len(w.Jobs))
	}
	if smithErr >= maxErr {
		t.Fatalf("template predictor (%.0f) did not beat max run times (%.0f)",
			smithErr/float64(n), maxErr/float64(n))
	}
	t.Logf("mean abs error: smith %.1f min, maxrt %.1f min over %d predictions",
		smithErr/float64(n)/60, maxErr/float64(n)/60, n)
}
