package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestSaveLoadStateRoundTrip(t *testing.T) {
	w, err := workload.Study("ANL", 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	ts := DefaultTemplates(w.Chars, w.HasMaxRT)
	orig := New(ts)
	for _, j := range w.Jobs {
		orig.Observe(j)
	}
	var buf bytes.Buffer
	if err := orig.SaveState(&buf); err != nil {
		t.Fatal(err)
	}

	restored := New(ts)
	if err := restored.LoadState(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if restored.Categories() != orig.Categories() {
		t.Fatalf("categories %d -> %d", orig.Categories(), restored.Categories())
	}
	// Every prediction must be identical.
	for _, j := range w.Jobs[len(w.Jobs)-30:] {
		for _, age := range []int64{0, 600} {
			a, aok := orig.PredictDetailed(j, age)
			b, bok := restored.PredictDetailed(j, age)
			if aok != bok || a.Seconds != b.Seconds || a.Template != b.Template {
				t.Fatalf("prediction diverged after restore: %+v vs %+v (job %d age %d)",
					a, b, j.ID, age)
			}
		}
	}
	// Bounded-history eviction continues correctly after restore: observe
	// more jobs into both and compare again.
	for _, j := range w.Jobs[:40] {
		orig.Observe(j)
		restored.Observe(j)
	}
	probe := w.Jobs[10]
	a, _ := orig.PredictDetailed(probe, 0)
	b, _ := restored.PredictDetailed(probe, 0)
	if a.Seconds != b.Seconds {
		t.Fatalf("post-restore observation diverged: %d vs %d", a.Seconds, b.Seconds)
	}
}

func TestLoadStateRejectsDifferentTemplates(t *testing.T) {
	ts1 := []Template{{Chars: workload.MaskOf(workload.CharUser), Pred: PredMean}}
	ts2 := []Template{{Chars: workload.MaskOf(workload.CharExec), Pred: PredMean}}
	p1 := New(ts1)
	p1.Observe(&workload.Job{User: "a", Nodes: 1, RunTime: 10})
	var buf bytes.Buffer
	if err := p1.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	p2 := New(ts2)
	if err := p2.LoadState(&buf); err == nil {
		t.Fatal("mismatched template set accepted")
	}
	// The failed load must leave p2 untouched.
	if p2.Categories() != 0 {
		t.Fatal("failed load modified the predictor")
	}
}

func TestLoadStateValidation(t *testing.T) {
	p := New([]Template{{Pred: PredMean}})
	cases := []string{
		``,
		`{"version":9,"templates":"","categories":0}`,
		`{"version":1,"templates":"` + p.templateFingerprint() + `","categories":1}` + "\n" +
			`{"key":"0","points":[{"rt":-5,"nodes":1}]}`,
		`{"version":1,"templates":"` + p.templateFingerprint() + `","categories":2}` + "\n" +
			`{"key":"0","points":[]}`, // truncated: missing second category
	}
	for i, c := range cases {
		if err := p.LoadState(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: invalid checkpoint accepted", i)
		}
	}
}

func TestSaveStateEmptyPredictor(t *testing.T) {
	p := New([]Template{{Pred: PredMean}})
	var buf bytes.Buffer
	if err := p.SaveState(&buf); err != nil {
		t.Fatal(err)
	}
	q := New([]Template{{Pred: PredMean}})
	if err := q.LoadState(&buf); err != nil {
		t.Fatal(err)
	}
	if q.Categories() != 0 {
		t.Fatal("empty checkpoint produced categories")
	}
}
