package coalloc

import (
	"testing"

	"repro/internal/sched"
)

func res(name string, total int) *Resource {
	return &Resource{Name: name, Total: total, Book: &sched.ReservationBook{}}
}

func TestNegotiateImmediate(t *testing.T) {
	a, b := res("a", 64), res("b", 32)
	start, grants, err := Negotiate([]Component{
		{Resource: a, Nodes: 32},
		{Resource: b, Nodes: 16},
	}, 0, 3600)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("start = %d, want 0 (both idle)", start)
	}
	if len(grants) != 2 || a.Book.Len() != 1 || b.Book.Len() != 1 {
		t.Fatalf("grants not booked: %v", grants)
	}
}

func TestNegotiateRendezvous(t *testing.T) {
	a, b := res("a", 64), res("b", 32)
	// a is fully reserved until 1000; b until 2000.
	if _, err := a.Book.Add(0, 1000, 64, 64); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Book.Add(0, 2000, 32, 32); err != nil {
		t.Fatal(err)
	}
	start, grants, err := Negotiate([]Component{
		{Resource: a, Nodes: 64},
		{Resource: b, Nodes: 32},
	}, 0, 500)
	if err != nil {
		t.Fatal(err)
	}
	if start != 2000 {
		t.Fatalf("start = %d, want 2000 (the later machine)", start)
	}
	Release(grants)
	if a.Book.Len() != 1 || b.Book.Len() != 1 {
		t.Fatal("release did not cancel the grants")
	}
}

func TestNegotiatePingPong(t *testing.T) {
	// Alternating busy windows force several rendezvous rounds:
	// a busy [0,100) and [200,300); b busy [100,200) and [300,400).
	a, b := res("a", 8), res("b", 8)
	for _, w := range [][2]int64{{0, 100}, {200, 300}} {
		if _, err := a.Book.Add(w[0], w[1], 8, 8); err != nil {
			t.Fatal(err)
		}
	}
	for _, w := range [][2]int64{{100, 200}, {300, 400}} {
		if _, err := b.Book.Add(w[0], w[1], 8, 8); err != nil {
			t.Fatal(err)
		}
	}
	start, _, err := Negotiate([]Component{
		{Resource: a, Nodes: 8},
		{Resource: b, Nodes: 8},
	}, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if start != 400 {
		t.Fatalf("start = %d, want 400 (first window free on both)", start)
	}
}

func TestNegotiatePartialNodes(t *testing.T) {
	// Half-machine components can overlap existing half-machine
	// reservations.
	a, b := res("a", 8), res("b", 8)
	if _, err := a.Book.Add(0, 1000, 4, 8); err != nil {
		t.Fatal(err)
	}
	start, _, err := Negotiate([]Component{
		{Resource: a, Nodes: 4},
		{Resource: b, Nodes: 4},
	}, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if start != 0 {
		t.Fatalf("start = %d, want 0", start)
	}
}

func TestNegotiateValidation(t *testing.T) {
	a := res("a", 8)
	if _, _, err := Negotiate(nil, 0, 100); err == nil {
		t.Error("no components should error")
	}
	if _, _, err := Negotiate([]Component{{Resource: a, Nodes: 4}}, 0, 0); err == nil {
		t.Error("zero duration should error")
	}
	if _, _, err := Negotiate([]Component{{Resource: a, Nodes: 16}}, 0, 100); err == nil {
		t.Error("oversize component should error")
	}
	if _, _, err := Negotiate([]Component{{Nodes: 4}}, 0, 100); err == nil {
		t.Error("nil resource should error")
	}
}

func TestNegotiateBookingsVisibleToBackfill(t *testing.T) {
	// End to end with the scheduler: after a negotiation, ReservingBackfill
	// on each machine keeps the window clear.
	a := res("a", 4)
	start, _, err := Negotiate([]Component{{Resource: a, Nodes: 4}}, 100, 100)
	if err != nil {
		t.Fatal(err)
	}
	if start != 100 {
		t.Fatalf("start = %d", start)
	}
	got, err := a.Book.EarliestSlot(0, 150, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got != 200 {
		t.Fatalf("slot through the booked window = %d, want 200", got)
	}
}
