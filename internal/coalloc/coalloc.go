// Package coalloc implements the co-allocation negotiation the paper
// motivates in §1 and §5: acquiring simultaneous node allocations on
// several parallel computers for a single multi-component application,
// built on advance reservations (sched.ReservationBook) layered over the
// queue-based schedulers.
//
// The negotiator performs the classic rendezvous iteration: ask every
// resource for its earliest feasible slot at or after a candidate time,
// advance the candidate to the latest answer, and repeat until all
// resources agree; then book the reservations, rolling back on any
// failure.
package coalloc

import (
	"fmt"

	"repro/internal/sched"
)

// Resource is one parallel computer accepting advance reservations.
type Resource struct {
	Name  string
	Total int // machine size in nodes
	Book  *sched.ReservationBook
}

// Component is one piece of a co-allocated application.
type Component struct {
	Resource *Resource
	Nodes    int
}

// Grant records one booked reservation of a successful negotiation.
type Grant struct {
	Resource *Resource
	ID       int
}

// maxRounds bounds the rendezvous iteration; with monotone EarliestSlot
// answers the loop converges in at most a few rounds per reservation, so
// hitting the bound indicates an inconsistent book.
const maxRounds = 1000

// Negotiate finds the earliest common start at or after `from` where every
// component can hold its nodes for `dur` seconds simultaneously, books the
// corresponding reservations, and returns the start time and grants.
// On any booking failure all grants are cancelled and an error returned.
func Negotiate(comps []Component, from, dur int64) (int64, []Grant, error) {
	if len(comps) == 0 {
		return 0, nil, fmt.Errorf("coalloc: no components")
	}
	if dur <= 0 {
		return 0, nil, fmt.Errorf("coalloc: nonpositive duration %d", dur)
	}
	for _, c := range comps {
		if c.Resource == nil || c.Resource.Book == nil {
			return 0, nil, fmt.Errorf("coalloc: component without resource")
		}
		if c.Nodes <= 0 || c.Nodes > c.Resource.Total {
			return 0, nil, fmt.Errorf("coalloc: component needs %d of %d nodes on %s",
				c.Nodes, c.Resource.Total, c.Resource.Name)
		}
	}

	// Rendezvous iteration.
	candidate := from
	for round := 0; round < maxRounds; round++ {
		latest := candidate
		for _, c := range comps {
			t, err := c.Resource.Book.EarliestSlot(candidate, dur, c.Nodes, c.Resource.Total)
			if err != nil {
				return 0, nil, err
			}
			if t > latest {
				latest = t
			}
		}
		if latest == candidate {
			// Agreement: book.
			grants := make([]Grant, 0, len(comps))
			for _, c := range comps {
				id, err := c.Resource.Book.Add(candidate, candidate+dur, c.Nodes, c.Resource.Total)
				if err != nil {
					// Roll back everything booked so far.
					for _, g := range grants {
						g.Resource.Book.Remove(g.ID)
					}
					return 0, nil, fmt.Errorf("coalloc: booking on %s failed: %w",
						c.Resource.Name, err)
				}
				grants = append(grants, Grant{Resource: c.Resource, ID: id})
			}
			return candidate, grants, nil
		}
		candidate = latest
	}
	return 0, nil, fmt.Errorf("coalloc: negotiation did not converge in %d rounds", maxRounds)
}

// Release cancels every grant of a negotiation (e.g. when the application
// finishes early or is aborted).
func Release(grants []Grant) {
	for _, g := range grants {
		g.Resource.Book.Remove(g.ID)
	}
}
