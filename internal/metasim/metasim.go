// Package metasim simulates a metacomputing broker in front of several
// parallel computers — the paper's motivating scenario for queue wait-time
// prediction: "estimates of queue wait times are useful to guide resource
// selection when several systems are available" (§1).
//
// Jobs arrive at a broker, a Router picks a machine for each, and every
// machine runs its own scheduling policy. The PredictedTurnaround router
// forward-simulates each machine's scheduler with run-time predictions
// (waitpred) and submits to the machine with the smallest predicted
// wait + predicted run time; baseline routers (random, round-robin,
// least-work) quantify what the predictions buy.
package metasim

import (
	"container/heap"
	"fmt"
	"math/rand"

	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// MachineSpec describes one machine of the pool.
type MachineSpec struct {
	Name   string
	Nodes  int
	Policy sim.Policy
}

// MachineState is the broker-visible state of one machine at routing time.
type MachineState struct {
	Name    string
	Nodes   int
	Free    int
	Queue   []*workload.Job
	Running []*workload.Job
	// QueuedWork is Σ nodes×estimate over the queue, by the broker's
	// estimator.
	QueuedWork int64
	// RunningWork is Σ nodes×(estimated remaining time) over the running
	// jobs.
	RunningWork int64
}

// Router picks a machine index for each arriving job. Machines whose Nodes
// are below the job's request are excluded before the call; idx indexes the
// provided states.
type Router interface {
	Name() string
	Route(now int64, j *workload.Job, states []MachineState) (idx int)
}

// machine is the live state of one simulated machine.
type machine struct {
	spec    MachineSpec
	queue   []*workload.Job
	running endHeap
	free    int
}

// endHeap orders running jobs by end time (ties by ID).
type endHeap []*workload.Job

func (h endHeap) Len() int { return len(h) }
func (h endHeap) Less(i, j int) bool {
	if h[i].EndTime != h[j].EndTime {
		return h[i].EndTime < h[j].EndTime
	}
	return h[i].ID < h[j].ID
}
func (h endHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *endHeap) Push(x interface{}) { *h = append(*h, x.(*workload.Job)) }
func (h *endHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return x
}

// MachineResult summarizes one machine after the run.
type MachineResult struct {
	Name        string
	Jobs        int
	Utilization float64
	MeanWaitMin float64
}

// Result summarizes a metasim run.
type Result struct {
	Router      string
	MeanWaitMin float64
	MaxWaitMin  float64
	Machines    []MachineResult
	// Routed counts jobs per machine index.
	Routed []int
}

// Run routes the workload's jobs (in submit order) across the machines.
// The predictor supplies run-time estimates both to the per-machine
// schedulers and to prediction-based routers; it observes completions
// globally (the broker sees every machine's stream). The input jobs are
// cloned.
func Run(jobs []*workload.Job, specs []MachineSpec, router Router, pred predict.Predictor) (*Result, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("metasim: no machines")
	}
	ms := make([]*machine, len(specs))
	maxNodes := 0
	for i, s := range specs {
		if s.Nodes <= 0 || s.Policy == nil {
			return nil, fmt.Errorf("metasim: machine %q misconfigured", s.Name)
		}
		ms[i] = &machine{spec: s, free: s.Nodes}
		if s.Nodes > maxNodes {
			maxNodes = s.Nodes
		}
	}

	est := func(j *workload.Job, age int64) int64 {
		return predict.Estimate(pred, j, age, predict.DefaultRuntime)
	}

	res := &Result{Router: router.Name(), Routed: make([]int, len(specs))}
	var all []*workload.Job
	var placed []int

	schedule := func(m *machine, now int64) error {
		for len(m.queue) > 0 {
			picked := m.spec.Policy.Pick(now, m.queue, m.running, m.free, m.spec.Nodes, est)
			if len(picked) == 0 {
				return nil
			}
			for _, j := range picked {
				if j.Nodes > m.free {
					return fmt.Errorf("metasim: %s overpicked", m.spec.Name)
				}
				m.free -= j.Nodes
				j.StartTime = now
				j.EndTime = now + j.RunTime
				for i, q := range m.queue {
					if q == j {
						m.queue = append(m.queue[:i], m.queue[i+1:]...)
						break
					}
				}
				heap.Push(&m.running, j)
			}
		}
		return nil
	}

	next := 0
	for next < len(jobs) || anyRunning(ms) {
		// Next event: earliest finish across machines vs next arrival.
		now := int64(1<<62 - 1)
		if next < len(jobs) {
			now = jobs[next].SubmitTime
		}
		finIdx := -1
		for i, m := range ms {
			if len(m.running) > 0 && m.running[0].EndTime < now {
				now = m.running[0].EndTime
				finIdx = i
			}
		}
		if finIdx >= 0 {
			// Drain all finishes at this instant on every machine.
			for _, m := range ms {
				for len(m.running) > 0 && m.running[0].EndTime == now {
					j := heap.Pop(&m.running).(*workload.Job)
					m.free += j.Nodes
					pred.Observe(j)
				}
				if err := schedule(m, now); err != nil {
					return nil, err
				}
			}
			continue
		}
		if next >= len(jobs) {
			// No arrivals and nothing running but queues non-empty: wedged.
			return nil, fmt.Errorf("metasim: wedged with queued jobs")
		}
		// Arrivals at this instant.
		for next < len(jobs) && jobs[next].SubmitTime == now {
			j := jobs[next].Clone()
			next++
			states := snapshot(ms, now, est)
			cands := candidates(ms, j)
			if len(cands) == 0 {
				return nil, fmt.Errorf("metasim: job %d needs %d nodes; no machine fits",
					j.ID, j.Nodes)
			}
			candStates := make([]MachineState, len(cands))
			for k, ci := range cands {
				candStates[k] = states[ci]
			}
			pick := router.Route(now, j, candStates)
			if pick < 0 || pick >= len(cands) {
				return nil, fmt.Errorf("metasim: router %s returned %d of %d candidates",
					router.Name(), pick, len(cands))
			}
			mi := cands[pick]
			res.Routed[mi]++
			ms[mi].queue = append(ms[mi].queue, j)
			all = append(all, j)
			placed = append(placed, mi)
			if err := schedule(ms[mi], now); err != nil {
				return nil, err
			}
		}
	}

	// Metrics.
	if len(all) == 0 {
		return res, nil
	}
	var waitSum float64
	perWait := make([]float64, len(specs))
	perJobs := make([]int, len(specs))
	perWork := make([]int64, len(specs))
	first, last := all[0].SubmitTime, int64(0)
	for k, j := range all {
		w := float64(j.WaitTime())
		waitSum += w
		if w/60 > res.MaxWaitMin {
			res.MaxWaitMin = w / 60
		}
		mi := placed[k]
		perWait[mi] += w
		perJobs[mi]++
		perWork[mi] += j.Work()
		if j.EndTime > last {
			last = j.EndTime
		}
	}
	res.MeanWaitMin = waitSum / float64(len(all)) / 60
	span := last - first
	for i, s := range specs {
		mr := MachineResult{Name: s.Name, Jobs: perJobs[i]}
		if perJobs[i] > 0 {
			mr.MeanWaitMin = perWait[i] / float64(perJobs[i]) / 60
		}
		if span > 0 {
			mr.Utilization = float64(perWork[i]) / (float64(s.Nodes) * float64(span))
		}
		res.Machines = append(res.Machines, mr)
	}
	return res, nil
}

func anyRunning(ms []*machine) bool {
	for _, m := range ms {
		if len(m.running) > 0 || len(m.queue) > 0 {
			return true
		}
	}
	return false
}

// snapshot captures broker-visible state for every machine at time now.
func snapshot(ms []*machine, now int64, est sim.Estimator) []MachineState {
	out := make([]MachineState, len(ms))
	for i, m := range ms {
		st := MachineState{
			Name:    m.spec.Name,
			Nodes:   m.spec.Nodes,
			Free:    m.free,
			Queue:   append([]*workload.Job(nil), m.queue...),
			Running: append([]*workload.Job(nil), m.running...),
		}
		for _, q := range m.queue {
			st.QueuedWork += int64(q.Nodes) * est(q, 0)
		}
		for _, r := range m.running {
			age := now - r.StartTime
			remaining := est(r, age) - age
			if remaining < 1 {
				remaining = 1
			}
			st.RunningWork += int64(r.Nodes) * remaining
		}
		out[i] = st
	}
	return out
}

// candidates returns the machine indices that can ever run the job.
func candidates(ms []*machine, j *workload.Job) []int {
	var out []int
	for i, m := range ms {
		if j.Nodes <= m.spec.Nodes {
			out = append(out, i)
		}
	}
	return out
}

// --- Routers ---

// RoundRobin cycles through the candidate machines.
type RoundRobin struct{ n int }

// Name implements Router.
func (*RoundRobin) Name() string { return "round-robin" }

// Route implements Router.
func (r *RoundRobin) Route(now int64, j *workload.Job, states []MachineState) int {
	r.n++
	return r.n % len(states)
}

// Random routes uniformly at random (deterministic per seed).
type Random struct{ Rng *rand.Rand }

// NewRandom creates a seeded random router.
func NewRandom(seed int64) *Random { return &Random{Rng: rand.New(rand.NewSource(seed))} }

// Name implements Router.
func (*Random) Name() string { return "random" }

// Route implements Router.
func (r *Random) Route(now int64, j *workload.Job, states []MachineState) int {
	return r.Rng.Intn(len(states))
}

// LeastWork routes to the machine with the least outstanding work (queued
// plus estimated remaining running work) per node — the informed baseline
// that needs no forward simulation.
type LeastWork struct{}

// Name implements Router.
func (LeastWork) Name() string { return "least-work" }

// Route implements Router.
func (LeastWork) Route(now int64, j *workload.Job, states []MachineState) int {
	best := 0
	score := func(st MachineState) float64 {
		return float64(st.QueuedWork+st.RunningWork) / float64(st.Nodes)
	}
	bestScore := score(states[0])
	for i := 1; i < len(states); i++ {
		if s := score(states[i]); s < bestScore {
			best, bestScore = i, s
		}
	}
	return best
}

// PredictedTurnaround is the paper's proposal: forward-simulate each
// candidate machine's scheduler (§3) and submit where predicted wait +
// predicted run time is smallest.
type PredictedTurnaround struct {
	// Pred supplies run-time predictions for the virtual simulations.
	Pred predict.Predictor
	// Policy must match the machines' scheduling policy.
	Policy sim.Policy
}

// Name implements Router.
func (PredictedTurnaround) Name() string { return "predicted-turnaround" }

// Route implements Router.
func (p PredictedTurnaround) Route(now int64, j *workload.Job, states []MachineState) int {
	best := 0
	bestTurn := int64(-1)
	for i, st := range states {
		c := j.Clone()
		c.SubmitTime = now
		queue := append(append([]*workload.Job(nil), st.Queue...), c)
		start, err := waitpred.PredictStart(now, c, queue, st.Running,
			st.Nodes, p.Policy, p.Pred, nil, 0)
		if err != nil {
			continue
		}
		turn := (start - now) + predict.Estimate(p.Pred, c, 0, predict.DefaultRuntime)
		if bestTurn < 0 || turn < bestTurn {
			best, bestTurn = i, turn
		}
	}
	return best
}

// Static checks.
var (
	_ Router = (*RoundRobin)(nil)
	_ Router = (*Random)(nil)
	_ Router = LeastWork{}
	_ Router = PredictedTurnaround{}
)
