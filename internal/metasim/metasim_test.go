package metasim

import (
	"testing"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/workload"
)

func twoMachines() []MachineSpec {
	return []MachineSpec{
		{Name: "big", Nodes: 64, Policy: sched.Backfill{}},
		{Name: "small", Nodes: 16, Policy: sched.Backfill{}},
	}
}

func jb(id int, submit, rt int64, nodes int) *workload.Job {
	return &workload.Job{ID: id, User: "u", SubmitTime: submit, RunTime: rt,
		MaxRunTime: rt * 2, Nodes: nodes}
}

func TestRunBasicRouting(t *testing.T) {
	jobs := []*workload.Job{
		jb(1, 0, 100, 8), jb(2, 10, 100, 8), jb(3, 20, 100, 8), jb(4, 30, 100, 8),
	}
	res, err := Run(jobs, twoMachines(), &RoundRobin{}, predict.MaxRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed[0]+res.Routed[1] != len(jobs) {
		t.Fatalf("routed %v", res.Routed)
	}
	if res.Routed[0] == 0 || res.Routed[1] == 0 {
		t.Fatalf("round robin should use both machines: %v", res.Routed)
	}
	if len(res.Machines) != 2 {
		t.Fatalf("machine results: %v", res.Machines)
	}
}

func TestOversizeJobsGoToBigMachine(t *testing.T) {
	jobs := []*workload.Job{jb(1, 0, 100, 32), jb(2, 10, 100, 32)}
	res, err := Run(jobs, twoMachines(), NewRandom(1), predict.MaxRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed[0] != 2 || res.Routed[1] != 0 {
		t.Fatalf("32-node jobs must go to the 64-node machine: %v", res.Routed)
	}
}

func TestNoMachineFits(t *testing.T) {
	jobs := []*workload.Job{jb(1, 0, 100, 128)}
	if _, err := Run(jobs, twoMachines(), &RoundRobin{}, predict.MaxRuntime{}); err == nil {
		t.Fatal("oversize job should error")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Run(nil, nil, &RoundRobin{}, predict.MaxRuntime{}); err == nil {
		t.Fatal("no machines should error")
	}
	bad := []MachineSpec{{Name: "x", Nodes: 0, Policy: sched.FCFS{}}}
	if _, err := Run(nil, bad, &RoundRobin{}, predict.MaxRuntime{}); err == nil {
		t.Fatal("zero-node machine should error")
	}
}

func TestLeastWorkAvoidsBusyMachine(t *testing.T) {
	// Load machine 0 heavily, then send small jobs: least-work must route
	// them to machine 1.
	jobs := []*workload.Job{
		jb(1, 0, 100000, 60), // fills "big" (arrives first, round 0 of RR? use LeastWork throughout)
		jb(2, 10, 100, 8),
		jb(3, 20, 100, 8),
	}
	res, err := Run(jobs, twoMachines(), LeastWork{}, predict.MaxRuntime{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed[1] < 2 {
		t.Fatalf("small jobs should avoid the loaded machine: %v", res.Routed)
	}
}

func TestPredictedTurnaroundBeatsRandom(t *testing.T) {
	// A pool with one busy and one idle machine under a bursty workload:
	// prediction-guided routing should achieve a mean wait no worse than
	// random routing.
	w, err := workload.Study("SDSC95", 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	// Compress to create contention.
	w = workload.Compress(w, 3)
	specs := []MachineSpec{
		{Name: "a", Nodes: 200, Policy: sched.Backfill{}},
		{Name: "b", Nodes: 200, Policy: sched.Backfill{}},
		{Name: "c", Nodes: 400, Policy: sched.Backfill{}},
	}
	runWith := func(r Router, p predict.Predictor) float64 {
		res, err := Run(w.Jobs, specs, r, p)
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanWaitMin
	}
	smith := core.NewDefault(w)
	guided := runWith(PredictedTurnaround{Pred: smith, Policy: sched.Backfill{}}, smith)
	rnd := runWith(NewRandom(3), predict.MaxRuntime{})
	t.Logf("guided %.2f min vs random %.2f min", guided, rnd)
	if guided > rnd*1.1 {
		t.Fatalf("prediction-guided routing (%.2f) much worse than random (%.2f)", guided, rnd)
	}
}

func TestDeterminism(t *testing.T) {
	w, err := workload.Study("SDSC96", 50, 4)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		res, err := Run(w.Jobs, twoMachinesBig(), LeastWork{}, predict.MaxRuntime{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.MeanWaitMin != b.MeanWaitMin || a.Routed[0] != b.Routed[0] {
		t.Fatal("metasim is nondeterministic")
	}
}

func twoMachinesBig() []MachineSpec {
	return []MachineSpec{
		{Name: "a", Nodes: 400, Policy: sched.Backfill{}},
		{Name: "b", Nodes: 400, Policy: sched.Backfill{}},
	}
}

func TestInputJobsNotMutated(t *testing.T) {
	jobs := []*workload.Job{jb(1, 0, 100, 8)}
	if _, err := Run(jobs, twoMachines(), &RoundRobin{}, predict.MaxRuntime{}); err != nil {
		t.Fatal(err)
	}
	if jobs[0].StartTime != 0 && jobs[0].EndTime != 0 {
		t.Fatal("input mutated")
	}
}
