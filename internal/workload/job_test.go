package workload

import (
	"strings"
	"testing"
)

func TestCharAbbrev(t *testing.T) {
	want := map[Char]string{
		CharType: "t", CharQueue: "q", CharClass: "c", CharUser: "u",
		CharScript: "s", CharExec: "e", CharArgs: "a", CharNetAdaptor: "na",
	}
	for c, abbr := range want {
		if got := c.Abbrev(); got != abbr {
			t.Errorf("Abbrev(%d) = %q, want %q", c, got, abbr)
		}
	}
}

func TestCharMask(t *testing.T) {
	m := MaskOf(CharUser, CharExec)
	if !m.Has(CharUser) || !m.Has(CharExec) {
		t.Fatal("mask missing members")
	}
	if m.Has(CharQueue) {
		t.Fatal("mask has spurious member")
	}
	if got := m.String(); got != "(u,e)" {
		t.Errorf("String = %q, want (u,e)", got)
	}
	if got := len(m.Chars()); got != 2 {
		t.Errorf("Chars count = %d", got)
	}
}

func TestJobCharacteristic(t *testing.T) {
	j := &Job{
		Type: "batch", Queue: "q16m", Class: "DSI", User: "wsmith",
		Script: "s1", Executable: "a.out", Arguments: "-x", NetAdaptor: "css0",
	}
	cases := map[Char]string{
		CharType: "batch", CharQueue: "q16m", CharClass: "DSI",
		CharUser: "wsmith", CharScript: "s1", CharExec: "a.out",
		CharArgs: "-x", CharNetAdaptor: "css0",
	}
	for c, want := range cases {
		if got := j.Characteristic(c); got != want {
			t.Errorf("Characteristic(%v) = %q, want %q", c, got, want)
		}
	}
}

func TestJobWaitWorkClone(t *testing.T) {
	j := &Job{Nodes: 8, RunTime: 100, SubmitTime: 50, StartTime: 80, EndTime: 180}
	if got := j.WaitTime(); got != 30 {
		t.Errorf("WaitTime = %d", got)
	}
	if got := j.Work(); got != 800 {
		t.Errorf("Work = %d", got)
	}
	c := j.Clone()
	if c.StartTime != 0 || c.EndTime != 0 {
		t.Error("Clone should reset simulation outputs")
	}
	if c.RunTime != 100 || c.Nodes != 8 {
		t.Error("Clone should preserve inputs")
	}
}

func TestWorkloadValidate(t *testing.T) {
	good := &Workload{
		Name: "w", MachineNodes: 4,
		Jobs: []*Job{
			{SubmitTime: 0, RunTime: 10, Nodes: 1},
			{SubmitTime: 5, RunTime: 10, Nodes: 4},
		},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(*Workload)
	}{
		{"unsorted", func(w *Workload) { w.Jobs[0].SubmitTime = 100 }},
		{"zero runtime", func(w *Workload) { w.Jobs[1].RunTime = 0 }},
		{"too many nodes", func(w *Workload) { w.Jobs[1].Nodes = 5 }},
		{"zero nodes", func(w *Workload) { w.Jobs[0].Nodes = 0 }},
		{"bad machine", func(w *Workload) { w.MachineNodes = 0 }},
		{"missing maxrt", func(w *Workload) { w.HasMaxRT = true }},
	}
	for _, c := range cases {
		w := good.Clone()
		c.mod(w)
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
}

func TestWorkloadCloneIsolation(t *testing.T) {
	w := &Workload{
		Name: "w", MachineNodes: 4,
		Jobs: []*Job{{SubmitTime: 0, RunTime: 10, Nodes: 1, StartTime: 3}},
	}
	c := w.Clone()
	c.Jobs[0].RunTime = 999
	if w.Jobs[0].RunTime != 10 {
		t.Error("Clone is not deep")
	}
	if c.Jobs[0].StartTime != 0 {
		t.Error("Clone should reset StartTime")
	}
}

func TestDeriveQueueMaxRunTimes(t *testing.T) {
	w := &Workload{
		Name: "w", MachineNodes: 16,
		Jobs: []*Job{
			{Queue: "a", RunTime: 10, Nodes: 1},
			{Queue: "a", RunTime: 30, Nodes: 1, SubmitTime: 1},
			{Queue: "b", RunTime: 20, Nodes: 1, SubmitTime: 2},
		},
	}
	limits := w.DeriveQueueMaxRunTimes()
	if limits["a"] != 30 || limits["b"] != 20 {
		t.Fatalf("limits = %v", limits)
	}
	w.ApplyQueueMaxRunTimes(limits)
	if !w.HasMaxRT {
		t.Error("ApplyQueueMaxRunTimes should set HasMaxRT")
	}
	for _, j := range w.Jobs {
		if j.MaxRunTime != limits[j.Queue] {
			t.Errorf("job in %s: maxRT %d, want %d", j.Queue, j.MaxRunTime, limits[j.Queue])
		}
		if j.MaxRunTime < j.RunTime {
			t.Errorf("derived max run time below actual for queue %s", j.Queue)
		}
	}
}

func TestOfferedLoad(t *testing.T) {
	// Two jobs, 4-node machine: work = 2*100 + 4*50 = 400 node-sec.
	// First submit 0; last possible completion max(0+100, 50+50)=100.
	// Load = 400 / (4*100) = 1.0.
	w := &Workload{
		Name: "w", MachineNodes: 4,
		Jobs: []*Job{
			{SubmitTime: 0, RunTime: 100, Nodes: 2},
			{SubmitTime: 50, RunTime: 50, Nodes: 4},
		},
	}
	if got := w.OfferedLoad(); got != 1.0 {
		t.Fatalf("OfferedLoad = %v, want 1.0", got)
	}
	empty := &Workload{MachineNodes: 4}
	if got := empty.OfferedLoad(); got != 0 {
		t.Fatalf("empty OfferedLoad = %v", got)
	}
}

func TestMaskStringEmpty(t *testing.T) {
	var m CharMask
	if got := m.String(); got != "()" {
		t.Errorf("empty mask = %q", got)
	}
	if strings.Contains(MaskOf(CharNetAdaptor).String(), "char") {
		t.Error("known char rendered as unknown")
	}
}
