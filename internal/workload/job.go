// Package workload defines the job model and workloads used throughout the
// reproduction: the job characteristics of Table 2 of the paper, a reader and
// writer for the Standard Workload Format (SWF) used by the Parallel
// Workloads Archive (so the pipeline can run on the real ANL/CTC/SDSC traces
// when they are available), and synthetic workload generators calibrated to
// Table 1 / Table 2 / Table 10 of the paper for fully offline reproduction.
package workload

import (
	"fmt"
	"strings"
)

// Char identifies one of the job characteristics of Table 2 of the paper
// that a template may include. The abbreviations follow the paper:
// t, q, c, u, s, e, a, na.
type Char uint8

const (
	// CharType is the job type (e.g. batch/interactive at ANL;
	// serial/parallel/pvm3 at CTC).
	CharType Char = iota
	// CharQueue is the submission queue (SDSC records 29–35 queues).
	CharQueue
	// CharClass is the job class (DSI/PIOFS at CTC).
	CharClass
	// CharUser is the submitting user (recorded in all four traces).
	CharUser
	// CharScript is the LoadLeveler script (CTC).
	CharScript
	// CharExec is the executable name (ANL).
	CharExec
	// CharArgs is the executable arguments (ANL).
	CharArgs
	// CharNetAdaptor is the network adaptor (CTC).
	CharNetAdaptor

	// NumChars is the number of distinct template characteristics.
	NumChars = 8
)

// Abbrev returns the paper's abbreviation for the characteristic
// (Table 2's "Abbr" column).
func (c Char) Abbrev() string {
	switch c {
	case CharType:
		return "t"
	case CharQueue:
		return "q"
	case CharClass:
		return "c"
	case CharUser:
		return "u"
	case CharScript:
		return "s"
	case CharExec:
		return "e"
	case CharArgs:
		return "a"
	case CharNetAdaptor:
		return "na"
	}
	return fmt.Sprintf("char(%d)", uint8(c))
}

// String implements fmt.Stringer.
func (c Char) String() string { return c.Abbrev() }

// CharFromAbbrev returns the characteristic for a Table-2 abbreviation.
func CharFromAbbrev(s string) (Char, bool) {
	for c := Char(0); c < NumChars; c++ {
		if c.Abbrev() == s {
			return c, true
		}
	}
	return 0, false
}

// CharMask is a bit set of characteristics. Each workload advertises which
// characteristics its trace records; template searches are restricted to
// that set (paper §2.1: "we are restricted to those values recorded in
// workload traces").
type CharMask uint16

// MaskOf builds a CharMask from the listed characteristics.
func MaskOf(chars ...Char) CharMask {
	var m CharMask
	for _, c := range chars {
		m |= 1 << c
	}
	return m
}

// Has reports whether the mask includes c.
func (m CharMask) Has(c Char) bool { return m&(1<<c) != 0 }

// Chars returns the characteristics present in the mask, in Table-2 order.
func (m CharMask) Chars() []Char {
	var out []Char
	for c := Char(0); c < NumChars; c++ {
		if m.Has(c) {
			out = append(out, c) //lint:allow hotpath at most NumChars appends per key render; part of the committed allocs/op floor
		}
	}
	return out
}

// String renders the mask like "(t,u,e)".
func (m CharMask) String() string {
	parts := make([]string, 0, NumChars)
	for _, c := range m.Chars() {
		parts = append(parts, c.Abbrev())
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Job is one request recorded in (or generated for) a workload trace.
// Times are in seconds relative to the start of the trace. RunTime is the
// actual execution time; MaxRunTime is the user-supplied limit (0 when the
// trace does not record one). StartTime and EndTime are outputs of a
// scheduling simulation; they are zero until the job has been scheduled.
type Job struct {
	ID int

	// Characteristics (Table 2). Empty strings mean "not recorded".
	Type       string
	Queue      string
	Class      string
	User       string
	Script     string
	Executable string
	Arguments  string
	NetAdaptor string

	Nodes      int   // number of nodes requested
	SubmitTime int64 // seconds since trace start
	RunTime    int64 // actual run time, seconds
	MaxRunTime int64 // user-supplied maximum run time, seconds (0 = none)

	// CancelAfter, when positive, withdraws the job from the queue if it
	// has not started within that many seconds of submission (user
	// cancellations, a routine event in production traces). Zero means the
	// user waits forever.
	CancelAfter int64

	// Simulation outputs.
	StartTime int64
	EndTime   int64
	// Cancelled reports that the job was withdrawn before starting; its
	// StartTime/EndTime remain zero and it is excluded from metrics.
	Cancelled bool
	// Shed reports that an admission controller rejected the job at
	// submission: it never joined the queue, its StartTime/EndTime remain
	// zero, and it is excluded from the wait and utilization metrics.
	Shed bool
}

// Characteristic returns the job's value for the given template
// characteristic.
func (j *Job) Characteristic(c Char) string {
	switch c {
	case CharType:
		return j.Type
	case CharQueue:
		return j.Queue
	case CharClass:
		return j.Class
	case CharUser:
		return j.User
	case CharScript:
		return j.Script
	case CharExec:
		return j.Executable
	case CharArgs:
		return j.Arguments
	case CharNetAdaptor:
		return j.NetAdaptor
	}
	return ""
}

// WaitTime returns StartTime - SubmitTime. It is meaningful only after a
// simulation has assigned a start time.
func (j *Job) WaitTime() int64 { return j.StartTime - j.SubmitTime }

// Work returns the job's resource demand: nodes × actual run time,
// in node-seconds. LWF orders jobs by the predicted version of this value.
func (j *Job) Work() int64 { return int64(j.Nodes) * j.RunTime }

// Clone returns a copy of the job with simulation outputs reset.
func (j *Job) Clone() *Job {
	c := *j
	c.StartTime = 0
	c.EndTime = 0
	c.Cancelled = false
	c.Shed = false
	return &c
}

// Workload is a set of jobs recorded on (or generated for) one machine.
type Workload struct {
	Name         string
	MachineNodes int
	Jobs         []*Job   // sorted by SubmitTime
	Chars        CharMask // characteristics the trace records
	HasMaxRT     bool     // whether user-supplied maximum run times exist
}

// Clone deep-copies the workload with simulation outputs reset, so multiple
// simulations can run on the same trace without interference.
func (w *Workload) Clone() *Workload {
	jobs := make([]*Job, len(w.Jobs))
	for i, j := range w.Jobs {
		jobs[i] = j.Clone()
	}
	c := *w
	c.Jobs = jobs
	return &c
}

// Validate checks internal consistency: jobs sorted by submit time,
// positive run times, node requests within the machine size.
//
// taint: sanitizer rejects workloads whose jobs would corrupt histories or simulations
func (w *Workload) Validate() error {
	if w.MachineNodes <= 0 {
		return fmt.Errorf("workload %s: nonpositive machine size %d", w.Name, w.MachineNodes)
	}
	var prev int64 = -1 << 62
	for i, j := range w.Jobs {
		if j.SubmitTime < prev {
			return fmt.Errorf("workload %s: job %d submitted before its predecessor", w.Name, i)
		}
		prev = j.SubmitTime
		if j.RunTime <= 0 {
			return fmt.Errorf("workload %s: job %d has run time %d", w.Name, i, j.RunTime)
		}
		if j.Nodes <= 0 || j.Nodes > w.MachineNodes {
			return fmt.Errorf("workload %s: job %d requests %d of %d nodes",
				w.Name, i, j.Nodes, w.MachineNodes)
		}
		if w.HasMaxRT && j.MaxRunTime <= 0 {
			return fmt.Errorf("workload %s: job %d missing maximum run time", w.Name, i)
		}
	}
	return nil
}

// DeriveQueueMaxRunTimes returns, for each queue, the longest run time of
// any job submitted to it. The paper derives maximum run times for the SDSC
// workloads this way ("we determine the longest running job in each queue
// and use that as the maximum run time for all jobs in that queue", §3).
func (w *Workload) DeriveQueueMaxRunTimes() map[string]int64 {
	m := make(map[string]int64)
	for _, j := range w.Jobs {
		if j.RunTime > m[j.Queue] {
			m[j.Queue] = j.RunTime
		}
	}
	return m
}

// ApplyQueueMaxRunTimes sets each job's MaxRunTime from the per-queue map
// (used with DeriveQueueMaxRunTimes for the SDSC-style workloads).
func (w *Workload) ApplyQueueMaxRunTimes(limits map[string]int64) {
	for _, j := range w.Jobs {
		if limit, ok := limits[j.Queue]; ok && limit > 0 {
			j.MaxRunTime = limit
		}
	}
	w.HasMaxRT = true
}

// OfferedLoad returns Σ(nodes×runtime) / (machineNodes × span) where span is
// the interval from the first submission to the last possible completion if
// every job ran immediately. It approximates the utilization the trace would
// impose on an ideal scheduler.
func (w *Workload) OfferedLoad() float64 {
	if len(w.Jobs) == 0 {
		return 0
	}
	var work int64
	var first, last int64 = w.Jobs[0].SubmitTime, 0
	for _, j := range w.Jobs {
		work += j.Work()
		if end := j.SubmitTime + j.RunTime; end > last {
			last = end
		}
	}
	span := last - first
	if span <= 0 {
		return 0
	}
	return float64(work) / (float64(w.MachineNodes) * float64(span))
}
