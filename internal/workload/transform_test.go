package workload

import (
	"strings"
	"testing"
)

func transformFixture() *Workload {
	return &Workload{
		Name: "fix", MachineNodes: 16,
		Jobs: []*Job{
			{ID: 1, User: "a", Queue: "q1", SubmitTime: 0, RunTime: 100, Nodes: 1, MaxRunTime: 200},
			{ID: 2, User: "b", Queue: "q2", SubmitTime: 100, RunTime: 100, Nodes: 2, MaxRunTime: 200},
			{ID: 3, User: "a", Queue: "q1", SubmitTime: 200, RunTime: 100, Nodes: 4, MaxRunTime: 200},
			{ID: 4, User: "c", Queue: "q3", SubmitTime: 300, RunTime: 100, Nodes: 8, MaxRunTime: 200},
		},
		HasMaxRT: true,
	}
}

func TestWindow(t *testing.T) {
	w := transformFixture()
	win := w.Window(100, 300)
	if len(win.Jobs) != 2 {
		t.Fatalf("window has %d jobs", len(win.Jobs))
	}
	if win.Jobs[0].ID != 2 || win.Jobs[1].ID != 3 {
		t.Fatalf("window jobs = %d, %d", win.Jobs[0].ID, win.Jobs[1].ID)
	}
	// Rebased.
	if win.Jobs[0].SubmitTime != 0 || win.Jobs[1].SubmitTime != 100 {
		t.Fatalf("window not rebased: %d, %d", win.Jobs[0].SubmitTime, win.Jobs[1].SubmitTime)
	}
	// Original untouched.
	if w.Jobs[1].SubmitTime != 100 {
		t.Fatal("window mutated the original")
	}
	if !strings.Contains(win.Name, "fix[") {
		t.Errorf("window name = %q", win.Name)
	}
	if err := win.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestWindowEmpty(t *testing.T) {
	w := transformFixture()
	win := w.Window(1000, 2000)
	if len(win.Jobs) != 0 {
		t.Fatal("window should be empty")
	}
}

func TestHead(t *testing.T) {
	w := transformFixture()
	h := w.Head(2)
	if len(h.Jobs) != 2 || h.Jobs[1].ID != 2 {
		t.Fatalf("head = %v", len(h.Jobs))
	}
	if len(w.Head(100).Jobs) != 4 {
		t.Fatal("oversized head should return everything")
	}
	if len(w.Head(-1).Jobs) != 0 {
		t.Fatal("negative head should be empty")
	}
}

func TestFilterUsers(t *testing.T) {
	w := transformFixture()
	f := w.FilterUsers("a")
	if len(f.Jobs) != 2 {
		t.Fatalf("filtered %d jobs", len(f.Jobs))
	}
	for _, j := range f.Jobs {
		if j.User != "a" {
			t.Fatalf("wrong user %q", j.User)
		}
	}
}

func TestFilterQueues(t *testing.T) {
	w := transformFixture()
	f := w.FilterQueues("q1", "q3")
	if len(f.Jobs) != 3 {
		t.Fatalf("filtered %d jobs", len(f.Jobs))
	}
}

func TestScaleRuntimes(t *testing.T) {
	w := transformFixture()
	s := w.ScaleRuntimes(2.5)
	if s.Jobs[0].RunTime != 250 || s.Jobs[0].MaxRunTime != 500 {
		t.Fatalf("scaled job = %+v", s.Jobs[0])
	}
	if w.Jobs[0].RunTime != 100 {
		t.Fatal("scaling mutated the original")
	}
	// Floor at one second and keep maxRT >= runtime.
	tiny := w.ScaleRuntimes(1e-9)
	for _, j := range tiny.Jobs {
		if j.RunTime < 1 || (j.MaxRunTime > 0 && j.MaxRunTime < j.RunTime) {
			t.Fatalf("degenerate scaled job %+v", j)
		}
	}
	// Nonpositive factor is a no-op copy.
	same := w.ScaleRuntimes(0)
	if same.Jobs[0].RunTime != 100 {
		t.Fatal("zero factor should not scale")
	}
}

func TestInjectRuntimeStep(t *testing.T) {
	w := transformFixture()
	s := w.InjectRuntimeStep(2, 0.95)
	// Pre-step jobs untouched; post-step jobs run at 95% of their limit.
	if s.Jobs[0].RunTime != 100 || s.Jobs[1].RunTime != 100 {
		t.Fatalf("pre-step jobs changed: %d, %d", s.Jobs[0].RunTime, s.Jobs[1].RunTime)
	}
	if s.Jobs[2].RunTime != 190 || s.Jobs[3].RunTime != 190 {
		t.Fatalf("post-step run times = %d, %d, want 190", s.Jobs[2].RunTime, s.Jobs[3].RunTime)
	}
	if w.Jobs[2].RunTime != 100 {
		t.Fatal("step mutated the original")
	}
	if !strings.Contains(s.Name, "step@2") {
		t.Fatalf("name = %q", s.Name)
	}
	// Fill above 1 clamps to the limit; jobs without a limit are skipped.
	w.Jobs[3].MaxRunTime = 0
	c := w.InjectRuntimeStep(2, 2)
	if c.Jobs[2].RunTime != 200 {
		t.Fatalf("overfilled run time = %d, want clamp to 200", c.Jobs[2].RunTime)
	}
	if c.Jobs[3].RunTime != 100 {
		t.Fatalf("limitless job changed: %d", c.Jobs[3].RunTime)
	}
	// Out-of-range step index or nonpositive fill is a no-op copy.
	if n := w.InjectRuntimeStep(99, 0.95); n.Jobs[2].RunTime != 100 {
		t.Fatal("out-of-range step should not change run times")
	}
	if n := w.InjectRuntimeStep(2, 0); n.Jobs[2].RunTime != 100 {
		t.Fatal("zero fill should not change run times")
	}
}

func TestScaleRuntimesChangesLoad(t *testing.T) {
	// Large enough that the trace span dwarfs individual run times (the
	// load denominator includes the trailing span of the last jobs).
	w, err := Study("SDSC95", 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	up := w.ScaleRuntimes(2)
	if r := up.OfferedLoad() / w.OfferedLoad(); r < 1.5 || r > 2.5 {
		t.Fatalf("load ratio after 2x runtime scaling = %.2f", r)
	}
}
