package workload

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements a reader and writer for the Standard Workload Format
// (SWF) of the Parallel Workloads Archive. The four traces the paper studies
// (ANL SP2, CTC SP2, SDSC Paragon 95/96) are archived in this format, so a
// downstream user can run the identical pipeline on the real data:
//
//	w, err := workload.ReadSWF(f, workload.SWFOptions{Name: "CTC", MachineNodes: 512})
//
// SWF is a line-oriented format: comment lines start with ';', data lines
// have 18 whitespace-separated integer fields:
//
//	 1 job number          10 requested memory
//	 2 submit time         11 status
//	 3 wait time           12 user id
//	 4 run time            13 group id
//	 5 allocated procs     14 executable (application) number
//	 6 avg cpu time        15 queue number
//	 7 used memory         16 partition number
//	 8 requested procs     17 preceding job number
//	 9 requested time      18 think time
//
// Missing values are recorded as -1.

// SWFOptions configures ReadSWF.
type SWFOptions struct {
	Name         string
	MachineNodes int  // if 0, inferred from the MaxProcs header or max procs seen
	KeepFailed   bool // keep jobs with status 0/5 (failed/cancelled); default drop
}

// swfHeaderMaxProcs extracts MaxProcs from an SWF header comment line.
func swfHeaderMaxProcs(line string) (int, bool) {
	s := strings.TrimSpace(strings.TrimPrefix(line, ";"))
	if !strings.HasPrefix(s, "MaxProcs:") {
		return 0, false
	}
	v := strings.TrimSpace(strings.TrimPrefix(s, "MaxProcs:"))
	n, err := strconv.Atoi(v)
	if err != nil || n <= 0 {
		return 0, false
	}
	return n, true
}

// ReadSWF parses a Standard Workload Format trace into a Workload.
// Jobs with nonpositive run times or node requests are dropped (they cannot
// be scheduled). User, executable, and queue numbers become the string
// characteristics "u<N>", "e<N>", and "q<N>". Requested time becomes the
// user-supplied maximum run time when present.
//
// taint: source SWF trace rows are external input and can violate workload invariants
func ReadSWF(r io.Reader, opts SWFOptions) (*Workload, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	w := &Workload{Name: opts.Name, MachineNodes: opts.MachineNodes}
	maxProcsSeen := 0
	allMaxRT := true
	lineNo := 0
	var baseSubmit int64 = -1
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ";") {
			if n, ok := swfHeaderMaxProcs(line); ok && w.MachineNodes == 0 {
				w.MachineNodes = n
			}
			continue
		}
		f := strings.Fields(line)
		if len(f) < 18 {
			return nil, fmt.Errorf("swf: line %d: %d fields, want 18", lineNo, len(f))
		}
		var v [18]int64
		for i := 0; i < 18; i++ {
			n, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("swf: line %d field %d: %v", lineNo, i+1, err)
			}
			v[i] = n
		}
		status := v[10]
		if !opts.KeepFailed && (status == 0 || status == 5) {
			continue
		}
		nodes := v[7] // requested procs
		if nodes <= 0 {
			nodes = v[4] // fall back to allocated procs
		}
		runTime := v[3]
		if runTime <= 0 || nodes <= 0 {
			continue
		}
		if baseSubmit < 0 {
			baseSubmit = v[1]
		}
		j := &Job{
			ID:         int(v[0]),
			SubmitTime: v[1] - baseSubmit,
			RunTime:    runTime,
			Nodes:      int(nodes),
		}
		if v[11] >= 0 {
			j.User = "u" + strconv.FormatInt(v[11], 10)
		}
		if v[13] >= 0 {
			j.Executable = "e" + strconv.FormatInt(v[13], 10)
		}
		if v[14] >= 0 {
			j.Queue = "q" + strconv.FormatInt(v[14], 10)
		}
		if v[8] > 0 {
			j.MaxRunTime = v[8]
		} else {
			allMaxRT = false
		}
		if int(nodes) > maxProcsSeen {
			maxProcsSeen = int(nodes)
		}
		w.Jobs = append(w.Jobs, j)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("swf: %v", err)
	}
	if w.MachineNodes == 0 {
		w.MachineNodes = maxProcsSeen
	}
	// HasMaxRT asserts that *every* job carries a user-supplied limit;
	// partially covered traces keep per-job limits but don't claim coverage.
	w.HasMaxRT = allMaxRT && len(w.Jobs) > 0
	mask := MaskOf(CharUser)
	if anyField(w.Jobs, func(j *Job) string { return j.Queue }) {
		mask |= MaskOf(CharQueue)
	}
	if anyField(w.Jobs, func(j *Job) string { return j.Executable }) {
		mask |= MaskOf(CharExec)
	}
	w.Chars = mask
	sortJobsBySubmit(w.Jobs)
	return w, w.Validate()
}

func anyField(jobs []*Job, get func(*Job) string) bool {
	for _, j := range jobs {
		if get(j) != "" {
			return true
		}
	}
	return false
}

// WriteSWF writes the workload in Standard Workload Format. String
// characteristics are mapped back to dense integer identifiers; fields the
// job model does not carry are written as -1.
func WriteSWF(w io.Writer, wl *Workload) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "; SWF export of workload %s\n", wl.Name)
	fmt.Fprintf(bw, "; MaxProcs: %d\n", wl.MachineNodes)
	users := newInterner()
	execs := newInterner()
	queues := newInterner()
	for i, j := range wl.Jobs {
		maxRT := int64(-1)
		if j.MaxRunTime > 0 {
			maxRT = j.MaxRunTime
		}
		wait := int64(-1)
		if j.StartTime > 0 || j.EndTime > 0 {
			wait = j.WaitTime()
		}
		_, err := fmt.Fprintf(bw, "%d %d %d %d %d -1 -1 %d %d -1 1 %d -1 %d %d -1 -1 -1\n",
			i+1, j.SubmitTime, wait, j.RunTime, j.Nodes, j.Nodes, maxRT,
			users.id(j.User), execs.id(j.Executable), queues.id(j.Queue))
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// interner maps strings to dense positive integers, with "" → -1.
type interner struct {
	ids  map[string]int
	next int
}

func newInterner() *interner { return &interner{ids: make(map[string]int), next: 1} }

func (in *interner) id(s string) int {
	if s == "" {
		return -1
	}
	if id, ok := in.ids[s]; ok {
		return id
	}
	id := in.next
	in.next++
	in.ids[s] = id
	return id
}

func sortJobsBySubmit(jobs []*Job) {
	// Insertion-style stable sort on SubmitTime; traces are nearly sorted so
	// this is effectively linear, and it keeps arrival order deterministic
	// for equal submit times.
	for i := 1; i < len(jobs); i++ {
		j := jobs[i]
		k := i - 1
		for k >= 0 && jobs[k].SubmitTime > j.SubmitTime {
			jobs[k+1] = jobs[k]
			k--
		}
		jobs[k+1] = j
	}
}
