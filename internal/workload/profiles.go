package workload

import "fmt"

// This file defines the four calibrated study profiles substituting for the
// archival traces of Table 1, with the recorded-characteristic sets of
// Table 2 and the offered loads implied by the utilizations of Table 10:
//
//	Workload  System         Nodes  Requests  Mean run time  Utilization
//	ANL       IBM SP2        80*    7994       97.75 min     ~70%
//	CTC       IBM SP2        512   13217      171.14 min     ~51%
//	SDSC95    Intel Paragon  400   22885      108.21 min     ~41%
//	SDSC96    Intel Paragon  400   22337      166.98 min     ~47%
//
// (*) The paper reduces the ANL machine from 120 to 80 nodes to compensate
// for a recording error that dropped one-third of the requests.

// sdscQueues builds the SDSC-style queue grid: node classes × duration
// classes (short/medium/long), 30 queues, matching the paper's "29 to 35
// queues" on the Paragon.
func sdscQueues() []QueueSpec {
	nodeClasses := []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 400}
	durations := []struct {
		suffix string
		limit  int64
	}{
		{"s", 1 * 3600},
		{"m", 4 * 3600},
		{"l", 12 * 3600},
	}
	var qs []QueueSpec
	for _, n := range nodeClasses {
		for _, d := range durations {
			qs = append(qs, QueueSpec{
				Name:     fmt.Sprintf("q%d%s", n, d.suffix),
				MaxNodes: n,
				MaxTime:  d.limit,
			})
		}
	}
	return qs
}

// StudyNames lists the four study workloads in the paper's order.
var StudyNames = []string{"ANL", "CTC", "SDSC95", "SDSC96"}

// StudyConfig returns the calibrated generator configuration for one of the
// four study workloads. scale divides the job count (scale=1 reproduces the
// full Table-1 trace sizes; larger scales give proportionally smaller
// workloads for fast tests). The seed perturbs the generator while keeping
// the calibration.
func StudyConfig(name string, scale int, seed int64) (SynthConfig, error) {
	if scale < 1 {
		scale = 1
	}
	base := SynthConfig{Name: name, Seed: seed}
	switch name {
	case "ANL":
		base.MachineNodes = 80 // reduced from 120 per the paper's footnote
		base.NumJobs = 7994
		base.NumUsers = 90
		base.MeanRunTime = 97.75 * 60
		base.TargetLoad = 0.71
		base.Chars = MaskOf(CharType, CharUser, CharExec, CharArgs)
		base.HasMaxRT = true
		base.InteractiveFrac = 0.25
		base.Types = []string{"batch"}
	case "CTC":
		base.MachineNodes = 512
		base.NumJobs = 13217
		base.NumUsers = 180
		base.MeanRunTime = 171.14 * 60
		base.TargetLoad = 0.52
		base.Chars = MaskOf(CharType, CharClass, CharUser, CharScript, CharNetAdaptor)
		base.HasMaxRT = true
		base.Types = []string{"serial", "parallel", "pvm3"}
		base.Classes = []string{"", "DSI", "PIOFS"}
		base.NetAdaptors = []string{"en0", "css0"}
	case "SDSC95":
		base.MachineNodes = 400
		base.NumJobs = 22885
		base.NumUsers = 250
		base.MeanRunTime = 108.21 * 60
		base.TargetLoad = 0.42
		base.Chars = MaskOf(CharQueue, CharUser)
		base.HasMaxRT = false
		base.Queues = sdscQueues()
		base.MaxRunTimeCap = 12 * 3600 // longest queue limit
	case "SDSC96":
		base.MachineNodes = 400
		base.NumJobs = 22337
		base.NumUsers = 250
		base.MeanRunTime = 166.98 * 60
		base.TargetLoad = 0.47
		base.Chars = MaskOf(CharQueue, CharUser)
		base.HasMaxRT = false
		base.Queues = sdscQueues()
		base.MaxRunTimeCap = 12 * 3600
	default:
		return SynthConfig{}, fmt.Errorf("workload: unknown study workload %q (want one of %v)", name, StudyNames)
	}
	base.NumJobs /= scale
	if base.NumJobs < 50 {
		base.NumJobs = 50
	}
	return base, nil
}

// Study generates one of the four calibrated study workloads.
//
// taint: sanitizer rejects unknown study-workload names and emits only generator-calibrated workloads
func Study(name string, scale int, seed int64) (*Workload, error) {
	cfg, err := StudyConfig(name, scale, seed)
	if err != nil {
		return nil, err
	}
	return Generate(cfg)
}

// AllStudies generates the four study workloads at the given scale.
func AllStudies(scale int, seed int64) ([]*Workload, error) {
	out := make([]*Workload, 0, len(StudyNames))
	for i, name := range StudyNames {
		w, err := Study(name, scale, seed+int64(i)*1000)
		if err != nil {
			return nil, err
		}
		out = append(out, w)
	}
	return out, nil
}

// Compress divides every interarrival gap by factor, raising the offered
// load. Section 4 of the paper compresses the SDSC interarrival times by a
// factor of two to test whether prediction accuracy matters more when
// scheduling becomes "hard". The returned workload is a deep copy.
func Compress(w *Workload, factor float64) *Workload {
	c := w.Clone()
	if factor <= 0 || len(c.Jobs) == 0 {
		return c
	}
	c.Name = fmt.Sprintf("%s/x%.3g", w.Name, factor)
	base := c.Jobs[0].SubmitTime
	for _, j := range c.Jobs {
		j.SubmitTime = base + int64(float64(j.SubmitTime-base)/factor)
	}
	return c
}
