package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSWF throws arbitrary bytes at the SWF parser. The parser must
// never panic, and whenever it accepts an input the resulting workload
// must satisfy the schedulability invariants every downstream consumer
// (simulator, predictor, service) assumes: positive run times and node
// counts within the machine, nondecreasing submit times, and maximum run
// times present when the workload claims to carry them.
func FuzzReadSWF(f *testing.F) {
	f.Add([]byte(""))
	f.Add([]byte("; comment only\n"))
	f.Add([]byte("; MaxProcs: 128\n1 0 5 600 8 -1 -1 8 1200 -1 1 3 1 7 2 1 -1 -1\n"))
	f.Add([]byte("1 0 5 600 8 -1 -1 8 1200 -1 1 3 1 7 2 1 -1 -1\n" +
		"2 10 0 30 4 -1 -1 4 -1 -1 1 4 1 9 1 1 -1 -1\n"))
	f.Add([]byte("not an swf line\n"))
	f.Add([]byte("1 0 5 600 8\n"))                                  // too few fields
	f.Add([]byte(strings.Repeat("9", 400) + " 0 0 0 0\n"))          // huge number
	f.Add([]byte("1 -5 5 -600 8 -1 -1 0 0 -1 1 3 1 7 2 1 -1 -1\n")) // negatives

	// One seed from the real writer, so the corpus includes a fully valid
	// multi-job trace.
	w, err := Study("SDSC95", 400, 11)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, w); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())

	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := ReadSWF(bytes.NewReader(data), SWFOptions{Name: "fuzz"})
		if err != nil {
			return
		}
		if w == nil {
			t.Fatal("nil workload with nil error")
		}
		if w.MachineNodes <= 0 {
			t.Fatalf("accepted workload with machine size %d", w.MachineNodes)
		}
		var prev int64 = -1 << 62
		for i, j := range w.Jobs {
			if j.RunTime <= 0 {
				t.Fatalf("job %d: run time %d", i, j.RunTime)
			}
			if j.Nodes <= 0 || j.Nodes > w.MachineNodes {
				t.Fatalf("job %d: %d nodes on a %d-node machine", i, j.Nodes, w.MachineNodes)
			}
			if j.SubmitTime < prev {
				t.Fatalf("job %d: submit %d before predecessor %d", i, j.SubmitTime, prev)
			}
			prev = j.SubmitTime
			if w.HasMaxRT && j.MaxRunTime <= 0 {
				t.Fatalf("job %d: HasMaxRT workload without a maximum", i)
			}
		}
		// Accepted traces survive a write/read round trip.
		var out bytes.Buffer
		if err := WriteSWF(&out, w); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		w2, err := ReadSWF(bytes.NewReader(out.Bytes()), SWFOptions{Name: "fuzz2", MachineNodes: w.MachineNodes})
		if err != nil {
			t.Fatalf("reparse: %v", err)
		}
		if len(w2.Jobs) != len(w.Jobs) {
			t.Fatalf("round trip changed job count %d -> %d", len(w.Jobs), len(w2.Jobs))
		}
	})
}
