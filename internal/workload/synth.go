package workload

import (
	"fmt"
	"math"
	"math/rand"
)

// This file implements the synthetic workload generator that substitutes for
// the archival ANL/CTC/SDSC traces (see DESIGN.md §3). The generator follows
// the structure that makes history-based run-time prediction work in the
// first place, as observed by the paper and the studies it cites
// (Feitelson & Nitzberg; Downey; Gibbons):
//
//   - a Zipf-distributed user population: a few users submit most jobs;
//   - each user repeatedly runs a small set of applications, and repeated
//     runs of one application have similar run times (lognormal with a small
//     per-application sigma) and similar node counts;
//   - node requests are biased toward powers of two;
//   - arrivals follow a daily and weekly cycle;
//   - user-supplied maximum run times overestimate actual run times by large,
//     user-dependent factors (they are still hard caps: run time ≤ max);
//   - the offered load is calibrated to the utilizations of Table 10.

// QueueSpec describes one submission queue of an SDSC-style system: a node
// ceiling and a wall-clock ceiling. Jobs are routed to the cheapest queue
// whose limits cover the request.
type QueueSpec struct {
	Name     string
	MaxNodes int
	MaxTime  int64 // seconds
}

// SynthConfig parameterizes the synthetic workload generator. The four
// calibrated study profiles in profiles.go fill these in from Tables 1, 2,
// and 10 of the paper.
type SynthConfig struct {
	Name         string
	Seed         int64
	MachineNodes int
	NumJobs      int
	NumUsers     int

	// MeanRunTime is the target mean run time in seconds (Table 1).
	MeanRunTime float64
	// AppSigma is the lognormal sigma of per-application median run times
	// (dispersion across applications).
	AppSigma float64
	// JobSigma is the lognormal sigma of run times within one application
	// (repetitiveness: smaller = more predictable).
	JobSigma float64
	// MinRunTime floors generated run times (seconds).
	MinRunTime int64
	// MaxRunTimeCap caps generated run times (seconds); 0 = machine default
	// of 7 days.
	MaxRunTimeCap int64

	// TargetLoad is the offered load (≈ the utilizations of Table 10).
	TargetLoad float64

	// Chars lists which characteristics this trace records (Table 2).
	Chars CharMask
	// HasMaxRT controls whether user-supplied maximum run times are
	// recorded (true for ANL and CTC; false for SDSC, where they are later
	// derived per queue).
	HasMaxRT bool

	// Queues, when non-empty, routes jobs SDSC-style. When empty a single
	// anonymous queue is used and CharQueue should not be in Chars.
	Queues []QueueSpec

	// InteractiveFrac is the fraction of applications that are interactive
	// (short) jobs; only meaningful when CharType is recorded (ANL).
	InteractiveFrac float64

	// Types, Classes, NetAdaptors list the categorical values for the
	// corresponding characteristics when recorded (CTC: Types =
	// serial/parallel/pvm3, Classes = DSI/PIOFS, NetAdaptors).
	Types       []string
	Classes     []string
	NetAdaptors []string

	// OverestimateMean is the mean of the exponential distribution of
	// (maxRunTime/runTime - 1) per application. Users overestimate their
	// run times by this much on average. The literature puts typical
	// requested-vs-actual ratios between 2 and 5.
	OverestimateMean float64
}

// app is one recurring application owned by a user.
type app struct {
	user        string
	name        string // executable
	args        string
	script      string
	typ         string
	class       string
	netAdaptor  string
	medianRT    float64 // seconds
	sigma       float64
	nodes       int
	nodeJitter  bool // occasionally runs at 2x/0.5x nodes
	overFactor  float64
	interactive bool
}

// Generate builds a synthetic workload from the configuration. The same
// (config, seed) always yields the identical workload.
func Generate(cfg SynthConfig) (*Workload, error) {
	if cfg.NumJobs <= 0 || cfg.MachineNodes <= 0 || cfg.NumUsers <= 0 {
		return nil, fmt.Errorf("synth: NumJobs, MachineNodes, NumUsers must be positive")
	}
	if cfg.TargetLoad <= 0 || cfg.TargetLoad >= 1.5 {
		return nil, fmt.Errorf("synth: TargetLoad %v out of range (0, 1.5)", cfg.TargetLoad)
	}
	if cfg.MeanRunTime <= 0 {
		return nil, fmt.Errorf("synth: MeanRunTime must be positive")
	}
	if cfg.MinRunTime <= 0 {
		cfg.MinRunTime = 15
	}
	if cfg.MaxRunTimeCap <= 0 {
		cfg.MaxRunTimeCap = 24 * 3600
	}
	if cfg.OverestimateMean <= 0 {
		cfg.OverestimateMean = 2.0
	}
	if cfg.AppSigma <= 0 {
		cfg.AppSigma = 1.4
	}
	if cfg.JobSigma <= 0 {
		cfg.JobSigma = 0.35
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	apps := buildApps(cfg, rng)
	userWeights := zipfWeights(cfg.NumUsers, 1.2)

	// Draw per-job (user, app, raw runtime, nodes) first. The lognormal
	// tail makes the realized mean of any finite sample drift far from its
	// expectation, so a global scale factor is then calibrated by bisection
	// so that the clamped run times hit the Table-1 mean exactly. Finally
	// arrivals are laid out to hit the target offered load.
	type drawRec struct {
		a     *app
		rawRT float64
		nodes int
	}
	draws := make([]drawRec, cfg.NumJobs)
	raws := make([]float64, cfg.NumJobs)
	for i := range draws {
		u := sampleIndex(rng, userWeights)
		ua := apps[u]
		a := &ua[sampleGeometric(rng, len(ua))]
		rt := lognormal(rng, a.medianRT, a.sigma)
		nodes := a.nodes
		if a.nodeJitter {
			switch r := rng.Float64(); {
			case r < 0.10 && nodes*2 <= cfg.MachineNodes:
				nodes *= 2
			case r < 0.20 && nodes >= 2:
				nodes /= 2
			}
		}
		draws[i] = drawRec{a: a, rawRT: rt, nodes: nodes}
		raws[i] = rt
	}
	scale := calibrateScale(raws, cfg.MeanRunTime, float64(cfg.MinRunTime), float64(cfg.MaxRunTimeCap))

	jobs := make([]*Job, 0, cfg.NumJobs)
	var totalWork float64
	for i, d := range draws {
		a := d.a
		rt := clampF(d.rawRT*scale, float64(cfg.MinRunTime), float64(cfg.MaxRunTimeCap))
		j := &Job{
			ID:      i + 1,
			User:    a.user,
			Nodes:   d.nodes,
			RunTime: int64(math.Round(rt)),
		}
		if cfg.Chars.Has(CharExec) {
			j.Executable = a.name
			if cfg.Chars.Has(CharArgs) {
				j.Arguments = a.args
			}
		}
		if cfg.Chars.Has(CharScript) {
			j.Script = a.script
		}
		if cfg.Chars.Has(CharType) {
			j.Type = a.typ
		}
		if cfg.Chars.Has(CharClass) {
			j.Class = a.class
		}
		if cfg.Chars.Has(CharNetAdaptor) {
			j.NetAdaptor = a.netAdaptor
		}
		if cfg.HasMaxRT {
			j.MaxRunTime = roundUpLimit(int64(math.Ceil(rt * a.overFactor)))
			if j.MaxRunTime > cfg.MaxRunTimeCap {
				j.MaxRunTime = cfg.MaxRunTimeCap
			}
			if j.MaxRunTime < j.RunTime {
				j.MaxRunTime = j.RunTime
			}
		}
		if len(cfg.Queues) > 0 {
			q := routeQueue(cfg.Queues, j)
			j.Queue = q.Name
			if j.RunTime > q.MaxTime {
				j.RunTime = q.MaxTime // queue limits are hard caps
			}
		}
		totalWork += float64(j.Nodes) * float64(j.RunTime)
		jobs = append(jobs, j)
	}

	// Arrival layout: span chosen so Σwork/(nodes·span) = TargetLoad, then
	// arrivals placed by a nonhomogeneous Poisson process with daily and
	// weekly intensity cycles.
	span := totalWork / (float64(cfg.MachineNodes) * cfg.TargetLoad)
	placeArrivals(rng, jobs, span)
	sortJobsBySubmit(jobs)
	for i, j := range jobs {
		j.ID = i + 1
	}

	w := &Workload{
		Name:         cfg.Name,
		MachineNodes: cfg.MachineNodes,
		Jobs:         jobs,
		Chars:        cfg.Chars,
		HasMaxRT:     cfg.HasMaxRT,
	}
	if len(cfg.Queues) > 0 && !cfg.HasMaxRT {
		// SDSC-style: derive maximum run times from the longest job per
		// queue, exactly as the paper does (§3).
		w.ApplyQueueMaxRunTimes(w.DeriveQueueMaxRunTimes())
	}
	return w, w.Validate()
}

// buildApps creates every user's recurring applications.
func buildApps(cfg SynthConfig, rng *rand.Rand) [][]app {
	// Calibrate the global median so that the overall mean run time comes
	// out near cfg.MeanRunTime: mean = M0·exp((σa²+σj²)/2) for a lognormal
	// mixture of lognormals.
	m0 := cfg.MeanRunTime / math.Exp((cfg.AppSigma*cfg.AppSigma+cfg.JobSigma*cfg.JobSigma)/2)
	maxNodePow := int(math.Floor(math.Log2(float64(cfg.MachineNodes))))
	apps := make([][]app, cfg.NumUsers)
	for u := 0; u < cfg.NumUsers; u++ {
		n := 1 + rng.Intn(6) // 1..6 applications per user
		userName := fmt.Sprintf("user%03d", u)
		over := 1 + rng.ExpFloat64()*cfg.OverestimateMean
		list := make([]app, n)
		for k := 0; k < n; k++ {
			a := app{
				user:       userName,
				name:       fmt.Sprintf("%s/app%d", userName, k),
				args:       fmt.Sprintf("-n %d", rng.Intn(4)),
				script:     fmt.Sprintf("%s/job%d.ll", userName, k),
				medianRT:   lognormal(rng, m0, cfg.AppSigma),
				sigma:      cfg.JobSigma * (0.5 + rng.Float64()),
				overFactor: over * (0.8 + 0.4*rng.Float64()),
				nodeJitter: rng.Float64() < 0.4,
			}
			// Node preference: power of two, biased small (geometric over
			// exponents), as observed in production parallel workloads.
			pow := sampleGeometric(rng, maxNodePow+1)
			a.nodes = 1 << pow
			if a.nodes > cfg.MachineNodes {
				a.nodes = cfg.MachineNodes
			}
			if cfg.InteractiveFrac > 0 && rng.Float64() < cfg.InteractiveFrac {
				a.interactive = true
				a.typ = "interactive"
				a.medianRT = math.Max(float64(cfg.MinRunTime), a.medianRT/24)
				if a.nodes > 16 {
					a.nodes = 1 << uint(rng.Intn(5)) // interactive jobs are small
				}
			} else if cfg.Chars.Has(CharType) {
				if len(cfg.Types) > 0 {
					a.typ = cfg.Types[rng.Intn(len(cfg.Types))]
				} else {
					a.typ = "batch"
				}
			}
			if len(cfg.Classes) > 0 {
				a.class = cfg.Classes[rng.Intn(len(cfg.Classes))]
			}
			if len(cfg.NetAdaptors) > 0 {
				a.netAdaptor = cfg.NetAdaptors[rng.Intn(len(cfg.NetAdaptors))]
			}
			list[k] = a
		}
		apps[u] = list
	}
	return apps
}

// placeArrivals assigns submit times over [0, span] following a diurnal and
// weekly intensity profile, normalized so the expected job count matches.
func placeArrivals(rng *rand.Rand, jobs []*Job, span float64) {
	// Build a piecewise-constant intensity over hour-of-week, then sample
	// arrival times by inverse transform over its integral.
	const hoursPerWeek = 168
	intensity := make([]float64, hoursPerWeek)
	for h := 0; h < hoursPerWeek; h++ {
		day := h / 24
		hod := h % 24
		v := 0.35 // overnight background
		if hod >= 8 && hod < 18 {
			v = 1.0 // working hours
		} else if hod >= 18 && hod < 23 {
			v = 0.6
		}
		if day >= 5 { // weekend
			v *= 0.45
		}
		intensity[h] = v
	}
	// Rejection sampling over the continuous span: draw a uniform time,
	// accept with probability proportional to the intensity at its
	// hour-of-week. This respects the exact span (no rounding to whole
	// weeks), which is what calibrates the offered load.
	const maxIntensity = 1.0
	for _, j := range jobs {
		for {
			t := rng.Float64() * span
			h := int(t/3600) % hoursPerWeek
			if rng.Float64()*maxIntensity < intensity[h] {
				j.SubmitTime = int64(t)
				break
			}
		}
	}
}

// routeQueue picks the cheapest queue whose limits cover the job, using the
// user's requested maximum (or actual run time when no request exists) as
// the duration estimate.
func routeQueue(queues []QueueSpec, j *Job) QueueSpec {
	dur := j.MaxRunTime
	if dur == 0 {
		dur = j.RunTime
	}
	best := -1
	for i, q := range queues {
		if j.Nodes > q.MaxNodes || dur > q.MaxTime {
			continue
		}
		if best == -1 || queues[i].MaxNodes < queues[best].MaxNodes ||
			(queues[i].MaxNodes == queues[best].MaxNodes && queues[i].MaxTime < queues[best].MaxTime) {
			best = i
		}
	}
	if best == -1 {
		// Nothing fits: take the largest queue and cap the job to it.
		best = 0
		for i, q := range queues {
			if q.MaxNodes > queues[best].MaxNodes ||
				(q.MaxNodes == queues[best].MaxNodes && q.MaxTime > queues[best].MaxTime) {
				best = i
			}
		}
		if j.Nodes > queues[best].MaxNodes {
			j.Nodes = queues[best].MaxNodes
		}
	}
	return queues[best]
}

// clampF limits x to [lo, hi].
func clampF(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// calibrateScale finds, by bisection, the multiplier m such that the mean of
// clamp(m·raw, lo, hi) equals target. The clamped mean is monotone in m, so
// bisection converges; if the target is unreachable (above hi or below lo)
// the nearest achievable scale is returned.
func calibrateScale(raws []float64, target, lo, hi float64) float64 {
	if len(raws) == 0 {
		return 1
	}
	meanAt := func(m float64) float64 {
		var sum float64
		for _, r := range raws {
			sum += clampF(r*m, lo, hi)
		}
		return sum / float64(len(raws))
	}
	mLo, mHi := 1e-9, 1e9
	if meanAt(mLo) >= target {
		return mLo
	}
	if meanAt(mHi) <= target {
		return mHi
	}
	for i := 0; i < 80; i++ {
		mid := math.Sqrt(mLo * mHi) // geometric bisection over 18 decades
		if meanAt(mid) < target {
			mLo = mid
		} else {
			mHi = mid
		}
	}
	return math.Sqrt(mLo * mHi)
}

// lognormal draws from a lognormal distribution with the given median and
// log-space sigma.
func lognormal(rng *rand.Rand, median, sigma float64) float64 {
	return median * math.Exp(rng.NormFloat64()*sigma)
}

// zipfWeights returns weights[i] ∝ 1/(i+1)^s, normalized to sum to 1.
func zipfWeights(n int, s float64) []float64 {
	w := make([]float64, n)
	var sum float64
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
		sum += w[i]
	}
	for i := range w {
		w[i] /= sum
	}
	return w
}

// sampleIndex draws an index from the normalized weight vector.
func sampleIndex(rng *rand.Rand, weights []float64) int {
	r := rng.Float64()
	var acc float64
	for i, w := range weights {
		acc += w
		if r < acc {
			return i
		}
	}
	return len(weights) - 1
}

// sampleGeometric draws from {0..n-1} with geometrically decaying
// probability (p = 0.5), truncated and renormalized by rejection.
func sampleGeometric(rng *rand.Rand, n int) int {
	if n <= 1 {
		return 0
	}
	for {
		k := 0
		for rng.Float64() < 0.5 && k < n-1 {
			k++
		}
		return k
	}
}

// roundUpLimit rounds a requested duration up to the next "human" limit:
// 5-minute granularity below an hour, 30-minute granularity below 8 hours,
// and whole hours beyond, mirroring how users fill in batch limits.
func roundUpLimit(sec int64) int64 {
	switch {
	case sec <= 0:
		return 300
	case sec < 3600:
		return ((sec + 299) / 300) * 300
	case sec < 8*3600:
		return ((sec + 1799) / 1800) * 1800
	default:
		return ((sec + 3599) / 3600) * 3600
	}
}
