package workload

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
)

// Summary holds the Table-1-style descriptive statistics of a workload.
type Summary struct {
	Name           string
	MachineNodes   int
	NumRequests    int
	MeanRunTimeMin float64 // minutes, as reported in Table 1
	MeanNodes      float64
	NumUsers       int
	NumQueues      int
	OfferedLoad    float64
	MaxRTCoverage  float64 // fraction of jobs with a user-supplied max run time
	MeanOverFactor float64 // mean maxRunTime/runTime over covered jobs
	TraceSpanDays  float64
}

// Summarize computes descriptive statistics for w.
func Summarize(w *Workload) Summary {
	s := Summary{
		Name:         w.Name,
		MachineNodes: w.MachineNodes,
		NumRequests:  len(w.Jobs),
		OfferedLoad:  w.OfferedLoad(),
	}
	if len(w.Jobs) == 0 {
		return s
	}
	users := map[string]bool{}
	queues := map[string]bool{}
	var rtSum, nodeSum, overSum float64
	var covered int
	var first, last int64 = w.Jobs[0].SubmitTime, w.Jobs[0].SubmitTime
	for _, j := range w.Jobs {
		rtSum += float64(j.RunTime)
		nodeSum += float64(j.Nodes)
		if j.User != "" {
			users[j.User] = true
		}
		if j.Queue != "" {
			queues[j.Queue] = true
		}
		if j.MaxRunTime > 0 {
			covered++
			overSum += float64(j.MaxRunTime) / float64(j.RunTime)
		}
		if j.SubmitTime < first {
			first = j.SubmitTime
		}
		if j.SubmitTime > last {
			last = j.SubmitTime
		}
	}
	n := float64(len(w.Jobs))
	s.MeanRunTimeMin = rtSum / n / 60
	s.MeanNodes = nodeSum / n
	s.NumUsers = len(users)
	s.NumQueues = len(queues)
	if covered > 0 {
		s.MaxRTCoverage = float64(covered) / n
		s.MeanOverFactor = overSum / float64(covered)
	}
	s.TraceSpanDays = float64(last-first) / 86400
	return s
}

// WriteTable renders Table-1-style rows for the given workloads.
func WriteTable(w io.Writer, workloads []*Workload) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Workload\tNodes\tRequests\tMeanRunTime(min)\tMeanNodes\tUsers\tQueues\tOfferedLoad\tSpan(days)")
	for _, wl := range workloads {
		s := Summarize(wl)
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.2f\t%.1f\t%d\t%d\t%.3f\t%.1f\n",
			s.Name, s.MachineNodes, s.NumRequests, s.MeanRunTimeMin,
			s.MeanNodes, s.NumUsers, s.NumQueues, s.OfferedLoad, s.TraceSpanDays)
	}
	return tw.Flush()
}

// UserActivity returns users sorted by descending job count, with counts.
// It is used by tests to verify the Zipf-population property and by the
// wlgen tool's -users report.
func UserActivity(w *Workload) ([]string, []int) {
	counts := map[string]int{}
	for _, j := range w.Jobs {
		counts[j.User]++
	}
	users := make([]string, 0, len(counts))
	for u := range counts {
		users = append(users, u)
	}
	sort.Slice(users, func(a, b int) bool {
		if counts[users[a]] != counts[users[b]] {
			return counts[users[a]] > counts[users[b]]
		}
		return users[a] < users[b]
	})
	ns := make([]int, len(users))
	for i, u := range users {
		ns[i] = counts[u]
	}
	return users, ns
}
