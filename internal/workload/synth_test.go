package workload

import (
	"math"
	"strings"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg, err := StudyConfig("ANL", 50, 7)
	if err != nil {
		t.Fatal(err)
	}
	w1, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Jobs) != len(w2.Jobs) {
		t.Fatal("nondeterministic job count")
	}
	for i := range w1.Jobs {
		a, b := w1.Jobs[i], w2.Jobs[i]
		if *a != *b {
			t.Fatalf("job %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGenerateSeedChangesWorkload(t *testing.T) {
	a, _ := Study("CTC", 100, 1)
	b, _ := Study("CTC", 100, 2)
	same := true
	for i := range a.Jobs {
		if i < len(b.Jobs) && a.Jobs[i].RunTime != b.Jobs[i].RunTime {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should change the workload")
	}
}

func TestGenerateValidates(t *testing.T) {
	bad := []SynthConfig{
		{},
		{NumJobs: 10, MachineNodes: 8, NumUsers: 2, MeanRunTime: 100, TargetLoad: 2},
		{NumJobs: 10, MachineNodes: 8, NumUsers: 2, TargetLoad: 0.5},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestGenerateCalibration(t *testing.T) {
	for _, name := range StudyNames {
		cfg, err := StudyConfig(name, 4, 11)
		if err != nil {
			t.Fatal(err)
		}
		w, err := Generate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s := Summarize(w)
		// Mean run time within 40% of the Table-1 target (lognormal tails
		// make tight tolerance unrealistic at reduced scale).
		target := cfg.MeanRunTime / 60
		if s.MeanRunTimeMin < target*0.6 || s.MeanRunTimeMin > target*1.4 {
			t.Errorf("%s: mean run time %.1f min, target %.1f", name, s.MeanRunTimeMin, target)
		}
		// Offered load within 25% of the target (it is set by construction;
		// deviation comes only from span rounding).
		if math.Abs(s.OfferedLoad-cfg.TargetLoad) > 0.25*cfg.TargetLoad {
			t.Errorf("%s: offered load %.3f, target %.3f", name, s.OfferedLoad, cfg.TargetLoad)
		}
		if s.NumRequests != cfg.NumJobs {
			t.Errorf("%s: %d requests, want %d", name, s.NumRequests, cfg.NumJobs)
		}
	}
}

func TestGenerateCharacteristicPresence(t *testing.T) {
	anl, _ := Study("ANL", 50, 3)
	for _, j := range anl.Jobs {
		if j.User == "" || j.Executable == "" || j.Type == "" {
			t.Fatalf("ANL job missing recorded characteristic: %+v", j)
		}
		if j.Queue != "" || j.Script != "" || j.NetAdaptor != "" {
			t.Fatalf("ANL job has unrecorded characteristic: %+v", j)
		}
		if j.MaxRunTime < j.RunTime {
			t.Fatalf("max run time below actual: %+v", j)
		}
	}
	ctc, _ := Study("CTC", 50, 3)
	for _, j := range ctc.Jobs {
		if j.User == "" || j.Script == "" || j.Type == "" || j.NetAdaptor == "" {
			t.Fatalf("CTC job missing recorded characteristic: %+v", j)
		}
		if j.Executable != "" || j.Arguments != "" {
			t.Fatalf("CTC job has unrecorded characteristic: %+v", j)
		}
	}
	sdsc, _ := Study("SDSC95", 50, 3)
	queues := map[string]bool{}
	for _, j := range sdsc.Jobs {
		if j.User == "" || j.Queue == "" {
			t.Fatalf("SDSC job missing recorded characteristic: %+v", j)
		}
		if j.MaxRunTime <= 0 {
			t.Fatal("SDSC max run times should be derived per queue")
		}
		queues[j.Queue] = true
	}
	if len(queues) < 10 {
		t.Errorf("SDSC should use many queues, got %d", len(queues))
	}
}

func TestGenerateUserRepetition(t *testing.T) {
	// History-based prediction requires that users repeat applications.
	w, _ := Study("ANL", 20, 9)
	byExec := map[string]int{}
	for _, j := range w.Jobs {
		byExec[j.Executable]++
	}
	repeated := 0
	for _, n := range byExec {
		if n >= 5 {
			repeated += n
		}
	}
	frac := float64(repeated) / float64(len(w.Jobs))
	if frac < 0.5 {
		t.Errorf("only %.0f%% of jobs are from applications run ≥5 times", frac*100)
	}
}

func TestGenerateZipfUsers(t *testing.T) {
	w, _ := Study("SDSC95", 20, 5)
	_, counts := UserActivity(w)
	if len(counts) < 10 {
		t.Fatalf("too few active users: %d", len(counts))
	}
	// Top 10% of users should submit a disproportionate share (>30%).
	top := len(counts) / 10
	if top == 0 {
		top = 1
	}
	var topSum, total int
	for i, n := range counts {
		total += n
		if i < top {
			topSum += n
		}
	}
	if frac := float64(topSum) / float64(total); frac < 0.3 {
		t.Errorf("top users submit only %.0f%% of jobs; want a heavy-tailed population", frac*100)
	}
}

func TestGenerateQueueConsistency(t *testing.T) {
	w, _ := Study("SDSC96", 40, 13)
	specs := map[string]QueueSpec{}
	for _, q := range sdscQueues() {
		specs[q.Name] = q
	}
	for _, j := range w.Jobs {
		q, ok := specs[j.Queue]
		if !ok {
			t.Fatalf("unknown queue %q", j.Queue)
		}
		if j.Nodes > q.MaxNodes {
			t.Fatalf("job with %d nodes in queue %s (limit %d)", j.Nodes, q.Name, q.MaxNodes)
		}
		if j.RunTime > q.MaxTime {
			t.Fatalf("job running %ds in queue %s (limit %ds)", j.RunTime, q.Name, q.MaxTime)
		}
	}
}

func TestCompress(t *testing.T) {
	// Large enough that the trace span dwarfs individual run times;
	// otherwise the last job's runtime dominates the load denominator.
	w, _ := Study("SDSC95", 10, 17)
	c := Compress(w, 2)
	if !strings.HasPrefix(c.Name, "SDSC95/") {
		t.Errorf("compressed name = %q", c.Name)
	}
	base := w.Jobs[0].SubmitTime
	for i := range w.Jobs {
		want := base + (w.Jobs[i].SubmitTime-base)/2
		if c.Jobs[i].SubmitTime != want {
			t.Fatalf("job %d: compressed submit %d, want %d", i, c.Jobs[i].SubmitTime, want)
		}
	}
	// Compression must not mutate the original.
	if w.Jobs[len(w.Jobs)-1].SubmitTime <= c.Jobs[len(c.Jobs)-1].SubmitTime && len(w.Jobs) > 1 {
		if w.Jobs[len(w.Jobs)-1].SubmitTime == c.Jobs[len(c.Jobs)-1].SubmitTime {
			t.Error("compression had no effect")
		}
	}
	// Offered load roughly doubles.
	if r := c.OfferedLoad() / w.OfferedLoad(); r < 1.5 || r > 2.5 {
		t.Errorf("load ratio after 2x compression = %.2f", r)
	}
}

func TestRoundUpLimit(t *testing.T) {
	cases := []struct{ in, want int64 }{
		{-5, 300},
		{1, 300},
		{300, 300},
		{301, 600},
		{3599, 3600},
		{3600, 3600},
		{3601, 5400},
		{8 * 3600, 8 * 3600},
		{8*3600 + 1, 9 * 3600},
	}
	for _, c := range cases {
		if got := roundUpLimit(c.in); got != c.want {
			t.Errorf("roundUpLimit(%d) = %d, want %d", c.in, got, c.want)
		}
	}
}

func TestStudyConfigUnknown(t *testing.T) {
	if _, err := StudyConfig("NERSC", 1, 1); err == nil {
		t.Error("unknown workload should be rejected")
	}
}

func TestAllStudies(t *testing.T) {
	ws, err := AllStudies(200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 4 {
		t.Fatalf("got %d workloads", len(ws))
	}
	for i, w := range ws {
		if w.Name != StudyNames[i] {
			t.Errorf("workload %d = %s", i, w.Name)
		}
	}
}

func TestZipfWeightsNormalized(t *testing.T) {
	w := zipfWeights(100, 1.2)
	var sum float64
	for i, x := range w {
		sum += x
		if i > 0 && x > w[i-1] {
			t.Fatal("weights should be decreasing")
		}
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("weights sum to %v", sum)
	}
}

func TestSummaryTable(t *testing.T) {
	w, _ := Study("ANL", 100, 1)
	var sb strings.Builder
	if err := WriteTable(&sb, []*Workload{w}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "ANL") || !strings.Contains(out, "Workload") {
		t.Errorf("table output:\n%s", out)
	}
}
