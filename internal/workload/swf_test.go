package workload

import (
	"bytes"
	"strings"
	"testing"
)

const sampleSWF = `; Sample trace
; MaxProcs: 128
; Note: header continues
1 0 10 300 16 -1 -1 16 600 -1 1 3 1 7 2 -1 -1 -1
2 60 -1 120 8 -1 -1 8 -1 -1 1 4 1 -1 1 -1 -1 -1
3 120 0 50 1 -1 -1 -1 900 -1 0 3 1 7 2 -1 -1 -1
4 180 5 0 4 -1 -1 4 100 -1 1 5 1 8 3 -1 -1 -1
5 240 2 40 4 -1 -1 4 100 -1 5 5 1 8 3 -1 -1 -1
`

func TestReadSWF(t *testing.T) {
	w, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{Name: "sample"})
	if err != nil {
		t.Fatal(err)
	}
	// Job 3 is status 0 (failed) and dropped; job 4 has zero run time and is
	// dropped; job 5 is status 5 (cancelled) and dropped. Two jobs remain.
	if len(w.Jobs) != 2 {
		t.Fatalf("got %d jobs, want 2", len(w.Jobs))
	}
	if w.MachineNodes != 128 {
		t.Errorf("MachineNodes = %d, want 128 (from header)", w.MachineNodes)
	}
	j := w.Jobs[0]
	if j.User != "u3" || j.Executable != "e7" || j.Queue != "q2" {
		t.Errorf("characteristics = %q %q %q", j.User, j.Executable, j.Queue)
	}
	if j.Nodes != 16 || j.RunTime != 300 || j.MaxRunTime != 600 {
		t.Errorf("job fields = %+v", j)
	}
	if j.SubmitTime != 0 || w.Jobs[1].SubmitTime != 60 {
		t.Errorf("submit times not rebased: %d %d", j.SubmitTime, w.Jobs[1].SubmitTime)
	}
	if w.HasMaxRT {
		t.Error("HasMaxRT should be false: job 2 has no requested time")
	}
	if !w.Chars.Has(CharUser) || !w.Chars.Has(CharExec) || !w.Chars.Has(CharQueue) {
		t.Errorf("char mask = %v", w.Chars)
	}
	// Second job has no requested procs: falls back to allocated (8).
	if w.Jobs[1].Nodes != 8 {
		t.Errorf("fallback nodes = %d", w.Jobs[1].Nodes)
	}
}

func TestReadSWFKeepFailed(t *testing.T) {
	w, err := ReadSWF(strings.NewReader(sampleSWF), SWFOptions{Name: "s", KeepFailed: true})
	if err != nil {
		t.Fatal(err)
	}
	// Only the zero-run-time job is dropped.
	if len(w.Jobs) != 4 {
		t.Fatalf("got %d jobs, want 4", len(w.Jobs))
	}
}

func TestReadSWFErrors(t *testing.T) {
	if _, err := ReadSWF(strings.NewReader("1 2 3\n"), SWFOptions{}); err == nil {
		t.Error("short line should fail")
	}
	if _, err := ReadSWF(strings.NewReader(strings.Repeat("x ", 18)+"\n"), SWFOptions{}); err == nil {
		t.Error("non-numeric field should fail")
	}
}

func TestReadSWFInfersMachineFromJobs(t *testing.T) {
	trace := "1 0 0 100 64 -1 -1 64 -1 -1 1 1 1 -1 -1 -1 -1 -1\n"
	w, err := ReadSWF(strings.NewReader(trace), SWFOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if w.MachineNodes != 64 {
		t.Errorf("inferred MachineNodes = %d", w.MachineNodes)
	}
}

func TestSWFRoundTrip(t *testing.T) {
	orig, err := Study("ANL", 100, 42)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSWF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadSWF(&buf, SWFOptions{Name: orig.Name, MachineNodes: orig.MachineNodes})
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Jobs) != len(orig.Jobs) {
		t.Fatalf("round trip lost jobs: %d -> %d", len(orig.Jobs), len(back.Jobs))
	}
	base := orig.Jobs[0].SubmitTime // ReadSWF rebases submit times to zero
	for i := range orig.Jobs {
		o, b := orig.Jobs[i], back.Jobs[i]
		if o.SubmitTime-base != b.SubmitTime || o.RunTime != b.RunTime ||
			o.Nodes != b.Nodes || o.MaxRunTime != b.MaxRunTime {
			t.Fatalf("job %d mismatch:\norig %+v\nback %+v", i, o, b)
		}
	}
	// User identity must be preserved up to renaming: the partition of jobs
	// by user must be identical.
	origUser := map[string]string{}
	for i := range orig.Jobs {
		o, b := orig.Jobs[i], back.Jobs[i]
		if mapped, seen := origUser[o.User]; seen {
			if mapped != b.User {
				t.Fatalf("user partition broken at job %d", i)
			}
		} else {
			origUser[o.User] = b.User
		}
	}
}

func TestSortJobsBySubmit(t *testing.T) {
	jobs := []*Job{
		{ID: 1, SubmitTime: 50},
		{ID: 2, SubmitTime: 10},
		{ID: 3, SubmitTime: 50},
		{ID: 4, SubmitTime: 0},
	}
	sortJobsBySubmit(jobs)
	want := []int{4, 2, 1, 3} // stable for equal times
	for i, id := range want {
		if jobs[i].ID != id {
			t.Fatalf("order[%d] = job %d, want %d", i, jobs[i].ID, id)
		}
	}
}
