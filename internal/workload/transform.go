package workload

import (
	"fmt"
	"math/rand"
)

// This file provides trace transformations used in scheduling research
// workflows: slicing a window out of a long trace, filtering by user or
// queue, truncation, and load scaling (Compress, in profiles.go, is the
// §4 interarrival transformation).

// Window returns a deep copy containing the jobs submitted in [from, to),
// with submit times rebased so the first job arrives at zero.
func (w *Workload) Window(from, to int64) *Workload {
	c := w.Clone()
	var jobs []*Job
	for _, j := range c.Jobs {
		if j.SubmitTime >= from && j.SubmitTime < to {
			jobs = append(jobs, j)
		}
	}
	if len(jobs) > 0 {
		base := jobs[0].SubmitTime
		for _, j := range jobs {
			j.SubmitTime -= base
		}
	}
	c.Jobs = jobs
	c.Name = fmt.Sprintf("%s[%d:%d)", w.Name, from, to)
	return c
}

// Head returns a deep copy containing only the first n jobs (all jobs when
// n exceeds the trace length).
func (w *Workload) Head(n int) *Workload {
	c := w.Clone()
	if n < 0 {
		n = 0
	}
	if n > len(c.Jobs) {
		n = len(c.Jobs)
	}
	c.Jobs = c.Jobs[:n]
	c.Name = fmt.Sprintf("%s[:%d]", w.Name, n)
	return c
}

// Filter returns a deep copy containing the jobs for which keep returns
// true, preserving submit order and times.
func (w *Workload) Filter(keep func(*Job) bool) *Workload {
	c := w.Clone()
	var jobs []*Job
	for _, j := range c.Jobs {
		if keep(j) {
			jobs = append(jobs, j)
		}
	}
	c.Jobs = jobs
	return c
}

// FilterUsers returns a deep copy with only the given users' jobs.
func (w *Workload) FilterUsers(users ...string) *Workload {
	set := make(map[string]bool, len(users))
	for _, u := range users {
		set[u] = true
	}
	c := w.Filter(func(j *Job) bool { return set[j.User] })
	c.Name = fmt.Sprintf("%s/users=%d", w.Name, len(users))
	return c
}

// FilterQueues returns a deep copy with only the given queues' jobs.
func (w *Workload) FilterQueues(queues ...string) *Workload {
	set := make(map[string]bool, len(queues))
	for _, q := range queues {
		set[q] = true
	}
	c := w.Filter(func(j *Job) bool { return set[j.Queue] })
	c.Name = fmt.Sprintf("%s/queues=%d", w.Name, len(queues))
	return c
}

// InjectCancellations returns a deep copy in which each job independently
// becomes cancellable with probability frac: if it has not started within
// an exponentially distributed patience (mean patienceMean seconds, floored
// at one minute), the user withdraws it. This is the failure-injection knob
// for exercising schedulers and predictors against the queue withdrawals
// that production traces contain.
func (w *Workload) InjectCancellations(frac float64, patienceMean int64, seed int64) *Workload {
	c := w.Clone()
	if frac <= 0 || patienceMean <= 0 {
		return c
	}
	rng := rand.New(rand.NewSource(seed))
	n := 0
	for _, j := range c.Jobs {
		if rng.Float64() < frac {
			patience := int64(rng.ExpFloat64() * float64(patienceMean))
			if patience < 60 {
				patience = 60
			}
			j.CancelAfter = patience
			n++
		}
	}
	c.Name = fmt.Sprintf("%s/cancel=%.0f%%", w.Name, frac*100)
	return c
}

// InjectRuntimeStep returns a deep copy with a regime change at job index
// at (submit order): every later job that carries a maximum run time has
// its run time replaced by fill·MaxRunTime (clamped to [1, MaxRunTime]).
// A predictor trained on the pre-step regime — where users typically use
// a small fraction of their limit — suddenly under-predicts by most of
// the limit, which is the drift the re-selection controller exists to
// catch: after the step, the maximum-run-time predictor is near-exact by
// construction. Jobs without a limit are left untouched.
func (w *Workload) InjectRuntimeStep(at int, fill float64) *Workload {
	c := w.Clone()
	if at < 0 || at >= len(c.Jobs) || fill <= 0 {
		return c
	}
	for _, j := range c.Jobs[at:] {
		if j.MaxRunTime <= 0 {
			continue
		}
		rt := int64(fill * float64(j.MaxRunTime))
		if rt < 1 {
			rt = 1
		}
		if rt > j.MaxRunTime {
			rt = j.MaxRunTime
		}
		j.RunTime = rt
	}
	c.Name = fmt.Sprintf("%s/step@%d fill=%.2f", w.Name, at, fill)
	return c
}

// ScaleRuntimes multiplies every run time (and maximum run time) by factor,
// flooring run times at one second. It changes the offered load without
// touching the arrival process — the complement of Compress.
func (w *Workload) ScaleRuntimes(factor float64) *Workload {
	c := w.Clone()
	if factor <= 0 {
		return c
	}
	for _, j := range c.Jobs {
		j.RunTime = int64(float64(j.RunTime) * factor)
		if j.RunTime < 1 {
			j.RunTime = 1
		}
		if j.MaxRunTime > 0 {
			j.MaxRunTime = int64(float64(j.MaxRunTime) * factor)
			if j.MaxRunTime < j.RunTime {
				j.MaxRunTime = j.RunTime
			}
		}
	}
	c.Name = fmt.Sprintf("%s/rt*%.3g", w.Name, factor)
	return c
}
