package workload

import (
	"strings"
	"testing"
)

func TestAnalyzeEmpty(t *testing.T) {
	a := Analyze(&Workload{Name: "empty", MachineNodes: 4})
	if a.Summary.NumRequests != 0 || a.RepeatShare != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
	var sb strings.Builder
	if err := a.Report(&sb); err != nil {
		t.Fatal(err)
	}
}

func TestAnalyzeStudyWorkload(t *testing.T) {
	w, err := Study("ANL", 20, 9)
	if err != nil {
		t.Fatal(err)
	}
	a := Analyze(w)
	if a.RunTimeSec.N != len(w.Jobs) {
		t.Fatalf("runtime samples = %d", a.RunTimeSec.N)
	}
	if a.RunTimeSec.Mean <= 0 || a.Nodes.Mean < 1 {
		t.Fatalf("degenerate distributions: %+v", a)
	}
	// ANL records max run times on every job.
	if a.OverFactor.N != len(w.Jobs) {
		t.Fatalf("over-factor coverage = %d of %d", a.OverFactor.N, len(w.Jobs))
	}
	if a.OverFactor.Min < 1 {
		t.Fatalf("max run time below actual: %v", a.OverFactor.Min)
	}
	// Structure properties the generator guarantees.
	if a.TopUserShare < 0.2 {
		t.Errorf("top-user share = %.2f, expected heavy-tailed", a.TopUserShare)
	}
	if a.RepeatShare < 0.5 {
		t.Errorf("repeat share = %.2f, expected repetitive workload", a.RepeatShare)
	}
	// Diurnal cycle: working hours beat the small hours.
	if a.HourOfDay[14] <= a.HourOfDay[3] {
		t.Errorf("no diurnal cycle: 14:00=%d 03:00=%d", a.HourOfDay[14], a.HourOfDay[3])
	}
	// No waits before simulation.
	if a.WaitSec.N != 0 {
		t.Errorf("wait samples before simulation: %d", a.WaitSec.N)
	}
}

func TestAnalyzeReportRenders(t *testing.T) {
	w, err := Study("SDSC95", 50, 3)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := Analyze(w).Report(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"run time", "nodes", "arrivals by hour", "node request distribution", "top 10%"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestBar(t *testing.T) {
	if bar(0, 100, 40) != "" {
		t.Error("zero bar should be empty")
	}
	if bar(1, 100, 40) != "#" {
		t.Error("nonzero bar should show at least one mark")
	}
	if got := len(bar(100, 100, 40)); got != 40 {
		t.Errorf("full bar length = %d", got)
	}
	if bar(5, 0, 40) != "" {
		t.Error("degenerate max should render empty")
	}
}

func TestFmtDur(t *testing.T) {
	cases := []struct {
		sec  float64
		want string
	}{
		{30, "30s"},
		{120, "2.0m"},
		{7200, "2.0h"},
	}
	for _, c := range cases {
		if got := fmtDur(c.sec); got != c.want {
			t.Errorf("fmtDur(%v) = %q, want %q", c.sec, got, c.want)
		}
	}
}
