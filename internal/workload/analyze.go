package workload

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/stats"
)

// This file provides the workload characterization behind cmd/wlstat:
// run-time and node-count distributions, the hour-of-day arrival cycle,
// user concentration, and the user run-time overestimation profile — the
// properties that determine whether history-based prediction can work on a
// trace (§2.1 of the paper and the workload studies it cites).

// Analysis is the full characterization of a workload.
type Analysis struct {
	Summary      Summary
	RunTimeSec   stats.Summary
	Nodes        stats.Summary
	WaitSec      stats.Summary // meaningful only after a simulation
	OverFactor   stats.Summary // maxRunTime/runTime over covered jobs
	HourOfDay    [24]int       // arrivals per hour of day
	NodePow2Hist map[int]int   // ⌈log2(nodes)⌉ → count
	TopUserShare float64       // fraction of jobs from the top 10% of users
	RepeatShare  float64       // fraction of jobs whose (user, exec/queue) key repeats ≥ 5 times
}

// Analyze characterizes w.
func Analyze(w *Workload) Analysis {
	a := Analysis{Summary: Summarize(w), NodePow2Hist: map[int]int{}}
	if len(w.Jobs) == 0 {
		return a
	}
	rts := make([]float64, 0, len(w.Jobs))
	nodes := make([]float64, 0, len(w.Jobs))
	var waits, overs []float64
	keyCounts := map[string]int{}
	for _, j := range w.Jobs {
		rts = append(rts, float64(j.RunTime))
		nodes = append(nodes, float64(j.Nodes))
		if j.StartTime > 0 || j.EndTime > 0 {
			waits = append(waits, float64(j.WaitTime()))
		}
		if j.MaxRunTime > 0 {
			overs = append(overs, float64(j.MaxRunTime)/float64(j.RunTime))
		}
		a.HourOfDay[int(j.SubmitTime/3600)%24]++
		pow := 0
		for (1 << pow) < j.Nodes {
			pow++
		}
		a.NodePow2Hist[pow]++
		keyCounts[j.User+"|"+j.Executable+"|"+j.Queue]++
	}
	a.RunTimeSec = stats.Summarize(rts)
	a.Nodes = stats.Summarize(nodes)
	a.WaitSec = stats.Summarize(waits)
	a.OverFactor = stats.Summarize(overs)

	// User concentration.
	_, counts := UserActivity(w)
	top := len(counts) / 10
	if top == 0 {
		top = 1
	}
	var topSum int
	for i := 0; i < top && i < len(counts); i++ {
		topSum += counts[i]
	}
	a.TopUserShare = float64(topSum) / float64(len(w.Jobs))

	// Repetition: the property history-based prediction needs.
	repeated := 0
	for _, n := range keyCounts {
		if n >= 5 {
			repeated += n
		}
	}
	a.RepeatShare = float64(repeated) / float64(len(w.Jobs))
	return a
}

// bar renders a proportional text bar.
func bar(n, max, width int) string {
	if max <= 0 {
		return ""
	}
	k := n * width / max
	if k == 0 && n > 0 {
		k = 1
	}
	return strings.Repeat("#", k)
}

// fmtDur renders seconds as a compact human duration.
func fmtDur(sec float64) string {
	if math.IsNaN(sec) {
		return "-"
	}
	switch {
	case sec < 90:
		return fmt.Sprintf("%.0fs", sec)
	case sec < 90*60:
		return fmt.Sprintf("%.1fm", sec/60)
	default:
		return fmt.Sprintf("%.1fh", sec/3600)
	}
}

// Report renders the analysis as text.
func (a Analysis) Report(w io.Writer) error {
	s := a.Summary
	fmt.Fprintf(w, "workload %s: %d jobs on %d nodes, %d users, %d queues, %.1f days, offered load %.2f\n",
		s.Name, s.NumRequests, s.MachineNodes, s.NumUsers, s.NumQueues, s.TraceSpanDays, s.OfferedLoad)

	dist := func(label string, d stats.Summary, f func(float64) string) {
		fmt.Fprintf(w, "%-12s mean %-8s p50 %-8s p90 %-8s p99 %-8s max %-8s\n",
			label, f(d.Mean), f(d.P50), f(d.P90), f(d.P99), f(d.Max))
	}
	dist("run time", a.RunTimeSec, fmtDur)
	dist("nodes", a.Nodes, func(v float64) string {
		if math.IsNaN(v) {
			return "-"
		}
		return fmt.Sprintf("%.0f", v)
	})
	if a.WaitSec.N > 0 {
		dist("wait", a.WaitSec, fmtDur)
	}
	if a.OverFactor.N > 0 {
		fmt.Fprintf(w, "%-12s mean %.1fx p50 %.1fx p90 %.1fx (coverage %.0f%%)\n",
			"max/actual", a.OverFactor.Mean, a.OverFactor.P50, a.OverFactor.P90,
			100*float64(a.OverFactor.N)/float64(s.NumRequests))
	}
	fmt.Fprintf(w, "top 10%% of users submit %.0f%% of jobs; %.0f%% of jobs repeat a (user,app,queue) key ≥5 times\n",
		100*a.TopUserShare, 100*a.RepeatShare)

	fmt.Fprintln(w, "\narrivals by hour of day:")
	maxH := 0
	for _, n := range a.HourOfDay {
		if n > maxH {
			maxH = n
		}
	}
	for h, n := range a.HourOfDay {
		fmt.Fprintf(w, "  %02d:00 %6d %s\n", h, n, bar(n, maxH, 40))
	}

	fmt.Fprintln(w, "\nnode request distribution (power-of-two buckets):")
	maxP := 0
	maxN := 0
	for p, n := range a.NodePow2Hist {
		if p > maxP {
			maxP = p
		}
		if n > maxN {
			maxN = n
		}
	}
	for p := 0; p <= maxP; p++ {
		n := a.NodePow2Hist[p]
		lo := 1
		if p > 0 {
			lo = 1<<(p-1) + 1
		}
		fmt.Fprintf(w, "  %4d-%-4d %6d %s\n", lo, 1<<p, n, bar(n, maxN, 40))
	}
	return nil
}
