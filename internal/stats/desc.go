// Package stats provides the statistical substrate used by the run-time
// predictors: descriptive statistics, Student-t quantiles, confidence and
// prediction intervals, and the linear, inverse, and logarithmic regressions
// described in the paper (Smith, Taylor, Foster, IPPS/SPDP 1999, §2.1).
//
// Everything is implemented from scratch on top of the standard library so
// the repository has no external dependencies.
package stats

import (
	"errors"
	"math"
)

// ErrInsufficientData is returned when an estimator needs more data points
// than it was given (for example a regression over fewer than three points,
// or a confidence interval over fewer than two).
var ErrInsufficientData = errors.New("stats: insufficient data")

// Sum returns the sum of xs. An empty slice sums to zero.
func Sum(xs []float64) float64 {
	// Kahan summation keeps long category histories (up to 65536 points in
	// the paper's encoding) numerically stable.
	var sum, c float64
	for _, x := range xs {
		y := x - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	return Sum(xs) / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1),
// or NaN when fewer than two points are given.
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return math.NaN()
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// MeanVar returns the mean and unbiased sample variance in a single pass
// (Welford's algorithm). For n < 2 the variance is NaN.
func MeanVar(xs []float64) (mean, variance float64) {
	var m, m2 float64
	var n int
	for _, x := range xs {
		n++
		d := x - m
		m += d / float64(n)
		m2 += d * (x - m)
	}
	if n == 0 {
		return math.NaN(), math.NaN()
	}
	if n < 2 {
		return m, math.NaN()
	}
	return m, m2 / float64(n-1)
}

// Min returns the minimum of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MeanAbs returns the mean of |xs[i]|, or NaN for an empty slice.
func MeanAbs(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += math.Abs(x)
	}
	return sum / float64(len(xs))
}

// Online accumulates a running mean and variance using Welford's algorithm.
// The zero value is ready to use.
type Online struct {
	n  int
	m  float64
	m2 float64
}

// Add incorporates x into the accumulator.
func (o *Online) Add(x float64) {
	o.n++
	d := x - o.m
	o.m += d / float64(o.n)
	o.m2 += d * (x - o.m)
}

// N returns the number of points accumulated so far.
func (o *Online) N() int { return o.n }

// Mean returns the running mean, or NaN if no points were added.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.m
}

// Variance returns the running unbiased sample variance, or NaN for n < 2.
func (o *Online) Variance() float64 {
	if o.n < 2 {
		return math.NaN()
	}
	return o.m2 / float64(o.n-1)
}

// StdDev returns the running sample standard deviation.
func (o *Online) StdDev() float64 { return math.Sqrt(o.Variance()) }

// MeanCI returns the mean of xs together with the half-width of its
// two-sided confidence interval at the given confidence level
// (e.g. 0.90 for 90%), using the Student-t distribution with n-1 degrees
// of freedom: half = t * s / sqrt(n).
//
// The paper selects, among all categories that can provide a valid
// prediction, the estimate with the smallest confidence interval; this is
// the routine that computes those intervals.
func MeanCI(xs []float64, level float64) (mean, half float64, err error) {
	n := len(xs)
	if n < 2 {
		return math.NaN(), math.NaN(), ErrInsufficientData
	}
	m, v := MeanVar(xs)
	if v == 0 { //lint:allow floatcmp exact-zero variance guard; near-zero takes the general path harmlessly
		// A category of identical run times predicts itself exactly.
		return m, 0, nil
	}
	t := TQuantile(0.5+level/2, float64(n-1))
	return m, t * math.Sqrt(v/float64(n)), nil
}
