package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestWelchTNoDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 50)
	ys := make([]float64, 50)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64()
	}
	r, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r.P < 0.01 {
		t.Fatalf("same-distribution samples flagged significant: %+v", r)
	}
}

func TestWelchTClearDifference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 30)
	ys := make([]float64, 30)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		ys[i] = rng.NormFloat64() + 3
	}
	r, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if r.P > 1e-6 {
		t.Fatalf("3-sigma shift not detected: %+v", r)
	}
	if r.T >= 0 {
		t.Fatalf("direction wrong: %+v", r)
	}
}

func TestWelchTKnownValue(t *testing.T) {
	// Classic worked example (unequal variances).
	xs := []float64{27.5, 21.0, 19.0, 23.6, 17.0, 17.9, 16.9, 20.1, 21.9, 22.6, 23.1, 19.6, 19.0, 21.7, 21.4}
	ys := []float64{27.1, 22.0, 20.8, 23.4, 23.4, 23.5, 25.8, 22.0, 24.8, 20.2, 21.9, 22.1, 22.9, 30.5, 24.2}
	r, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	// Reference values computed independently for this data:
	// t = -2.84132, df = 27.8825 (Welch–Satterthwaite).
	if math.Abs(r.T+2.84132) > 1e-4 || math.Abs(r.DF-27.8825) > 1e-3 {
		t.Fatalf("got %+v, want t≈-2.84132 df≈27.8825", r)
	}
	// The p-value must be the two-sided tail of the t distribution at
	// (T, DF) — TCDF itself is validated against tables elsewhere.
	if want := 2 * TCDF(-math.Abs(r.T), r.DF); math.Abs(r.P-want) > 1e-12 {
		t.Fatalf("p = %v inconsistent with TCDF tail %v", r.P, want)
	}
	if r.P > 0.01 || r.P < 0.005 {
		t.Fatalf("p = %v out of the expected ~0.008 neighbourhood", r.P)
	}
}

func TestWelchTDegenerate(t *testing.T) {
	if _, err := WelchT([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("tiny sample should error")
	}
	// Identical constants: p = 1.
	r, err := WelchT([]float64{5, 5, 5}, []float64{5, 5})
	if err != nil || r.P != 1 {
		t.Errorf("identical constants: %+v, %v", r, err)
	}
	// Distinct constants: no variance to test against.
	if _, err := WelchT([]float64{5, 5}, []float64{6, 6}); err == nil {
		t.Error("zero-variance difference should error (Welch)")
	}
}

func TestPairedT(t *testing.T) {
	// Paired with consistent small improvement: significant even when the
	// unpaired test is not.
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 20)
	ys := make([]float64, 20)
	for i := range xs {
		base := rng.NormFloat64() * 100 // huge between-pair variance
		xs[i] = base
		ys[i] = base + 1 // constant-ish improvement
	}
	paired, err := PairedT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if paired.P > 1e-6 {
		t.Fatalf("paired test missed the consistent difference: %+v", paired)
	}
	unpaired, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if unpaired.P < 0.5 {
		t.Fatalf("unpaired test should drown in between-pair variance: %+v", unpaired)
	}
}

func TestPairedTDegenerate(t *testing.T) {
	if _, err := PairedT([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	r, err := PairedT([]float64{3, 4}, []float64{3, 4})
	if err != nil || r.P != 1 {
		t.Errorf("identical pairs: %+v, %v", r, err)
	}
	r, err = PairedT([]float64{4, 5}, []float64{3, 4})
	if err != nil || r.P != 0 || !math.IsInf(r.T, 1) {
		t.Errorf("constant difference: %+v, %v", r, err)
	}
}

// TestWelchTMomentsMatchesSlices checks the streaming-summary variant is
// exactly the slice variant: identical T, DF, and P on the same data.
func TestWelchTMomentsMatchesSlices(t *testing.T) {
	xs := []float64{1.5, 2.25, 3.75, 2.0, 1.25, 4.5}
	ys := []float64{5.5, 6.25, 4.75, 7.0, 5.0}
	var mx, my Moments
	for _, x := range xs {
		mx.Add(x)
	}
	for _, y := range ys {
		my.Add(y)
	}
	want, err := WelchT(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	got, err := WelchTMoments(mx, my)
	if err != nil {
		t.Fatal(err)
	}
	if got.T != want.T || got.DF != want.DF || got.P != want.P {
		t.Fatalf("WelchTMoments = %+v, WelchT = %+v; must be identical", got, want)
	}
}

func TestWelchTMomentsDegenerate(t *testing.T) {
	var one, two Moments
	one.Add(1)
	two.Add(1)
	two.Add(2)
	if _, err := WelchTMoments(one, two); err == nil {
		t.Error("single-sample aggregate should error")
	}
	var ca, cb Moments
	for i := 0; i < 4; i++ {
		ca.Add(3)
		cb.Add(3)
	}
	r, err := WelchTMoments(ca, cb)
	if err != nil || r.P != 1 {
		t.Errorf("identical constants: %+v, %v", r, err)
	}
}
