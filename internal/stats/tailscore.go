package stats

import "math"

// Tail-weighted asymmetric scoring, the TARE-style view of prediction
// error: schedulers do not pay for the mean miss, they pay for the tails,
// and they pay differently for the two signs. An over-prediction
// (predicted > actual) wastes backfill holes the scheduler reserved for
// nothing; an under-prediction (predicted < actual) breaks reservations
// that were made on the strength of the estimate. The functions here are
// the single shared implementation of that cost model: the online
// accuracy tracker (internal/obs/accuracy) computes them from streaming
// state, and the experiment harness (internal/exp) recomputes them
// offline from retained samples — the bit-equality tests hold the two
// together.
//
// All errors are signed predicted − actual, in seconds.

// Tail quantile weights for TailComposite. The tails dominate by design:
// the p99 miss carries half the score, because one reservation broken by
// a 99th-percentile under-prediction costs more scheduler goodput than
// many median-sized misses (the TARE argument).
const (
	TailWeightP50 = 0.2
	TailWeightP90 = 0.3
	TailWeightP99 = 0.5
)

// DefaultCostRatio is the default relative cost of under-prediction:
// each second of under-prediction costs twice a second of
// over-prediction, the asymmetry of a scheduler that loses a reservation
// versus one that loses a backfill hole.
const DefaultCostRatio = 2.0

// AsymCost is the per-sample asymmetric penalty of one signed error e
// (predicted − actual): e itself when the prediction was over, ratio·|e|
// when it was under, zero when exact. Ratios at or below zero fall back
// to DefaultCostRatio. The result is never negative.
func AsymCost(e, ratio float64) float64 {
	if ratio <= 0 {
		ratio = DefaultCostRatio
	}
	switch {
	case e > 0:
		return e
	case e < 0:
		return ratio * -e
	}
	return 0
}

// TailComposite folds three signed-error quantiles (p50, p90, p99) into
// one tail-weighted asymmetric score: Σ w_q · AsymCost(e_q, ratio) with
// the TailWeight constants. Lower is better; zero means every quantile
// of the error distribution is exact. The composite is what the shadow
// scoreboard ranks predictors by and what the re-selection controller
// compares against its hysteresis margin.
func TailComposite(p50, p90, p99, ratio float64) float64 {
	return TailWeightP50*AsymCost(p50, ratio) +
		TailWeightP90*AsymCost(p90, ratio) +
		TailWeightP99*AsymCost(p99, ratio)
}

// TailCompositeSample computes TailComposite from retained signed-error
// samples: type-7 quantiles over a copy of errs, then the same fold the
// streaming scorer applies. It is the offline-recomputation counterpart
// used by the drift-injection experiment and the bit-equality tests; an
// empty sample scores NaN (no evidence is not a perfect score).
func TailCompositeSample(errs []float64, ratio float64) float64 {
	if len(errs) == 0 {
		return math.NaN()
	}
	qs := []float64{
		Quantile(errs, 0.50),
		Quantile(errs, 0.90),
		Quantile(errs, 0.99),
	}
	return TailComposite(qs[0], qs[1], qs[2], ratio)
}
