package stats

import (
	"math"
	"testing"
)

func TestLogGamma(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{1, 0},
		{2, 0},
		{3, math.Log(2)},
		{4, math.Log(6)},
		{5, math.Log(24)},
		{0.5, math.Log(math.Sqrt(math.Pi))},
		{10.5, 13.940625219404},
	}
	for _, c := range cases {
		if got := LogGamma(c.x); !almostEq(got, c.want, 1e-9) {
			t.Errorf("LogGamma(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestLogGammaRecurrence(t *testing.T) {
	// Γ(x+1) = x Γ(x)  =>  lnΓ(x+1) = ln x + lnΓ(x)
	for _, x := range []float64{0.3, 0.7, 1.4, 2.9, 7.6, 33.2} {
		lhs := LogGamma(x + 1)
		rhs := math.Log(x) + LogGamma(x)
		if !almostEq(lhs, rhs, 1e-10) {
			t.Errorf("recurrence failed at x=%v: %v vs %v", x, lhs, rhs)
		}
	}
}

func TestRegIncBetaBounds(t *testing.T) {
	if got := RegIncBeta(2, 3, 0); got != 0 {
		t.Errorf("I_0 = %v", got)
	}
	if got := RegIncBeta(2, 3, 1); got != 1 {
		t.Errorf("I_1 = %v", got)
	}
}

func TestRegIncBetaKnown(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0.1, 0.25, 0.5, 0.9} {
		if got := RegIncBeta(1, 1, x); !almostEq(got, x, 1e-10) {
			t.Errorf("I_%v(1,1) = %v", x, got)
		}
	}
	// I_x(2,2) = x^2(3-2x).
	for _, x := range []float64{0.2, 0.5, 0.8} {
		want := x * x * (3 - 2*x)
		if got := RegIncBeta(2, 2, x); !almostEq(got, want, 1e-10) {
			t.Errorf("I_%v(2,2) = %v, want %v", x, got, want)
		}
	}
}

func TestRegIncBetaSymmetry(t *testing.T) {
	// I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, c := range []struct{ a, b, x float64 }{
		{2, 5, 0.3}, {0.5, 0.5, 0.7}, {10, 3, 0.9}, {1.5, 4.5, 0.05},
	} {
		lhs := RegIncBeta(c.a, c.b, c.x)
		rhs := 1 - RegIncBeta(c.b, c.a, 1-c.x)
		if !almostEq(lhs, rhs, 1e-10) {
			t.Errorf("symmetry failed for %+v: %v vs %v", c, lhs, rhs)
		}
	}
}

func TestTCDFKnown(t *testing.T) {
	// With 1 df, the t distribution is Cauchy: CDF(t) = 1/2 + atan(t)/π.
	for _, x := range []float64{-3, -1, 0, 0.5, 2, 10} {
		want := 0.5 + math.Atan(x)/math.Pi
		if got := TCDF(x, 1); !almostEq(got, want, 1e-9) {
			t.Errorf("TCDF(%v,1) = %v, want %v", x, got, want)
		}
	}
	if got := TCDF(0, 7); !almostEq(got, 0.5, 1e-12) {
		t.Errorf("TCDF(0,7) = %v", got)
	}
}

func TestTCDFSymmetry(t *testing.T) {
	for _, nu := range []float64{1, 2, 5, 30, 200} {
		for _, x := range []float64{0.1, 1, 2.5, 7} {
			if got := TCDF(x, nu) + TCDF(-x, nu); !almostEq(got, 1, 1e-10) {
				t.Errorf("TCDF(%v,%v)+TCDF(-x) = %v, want 1", x, nu, got)
			}
		}
	}
}

func TestTQuantileTableValues(t *testing.T) {
	// Classic two-sided 95% critical values t_{0.975,ν}.
	cases := []struct{ nu, want float64 }{
		{1, 12.7062},
		{2, 4.30265},
		{3, 3.18245},
		{5, 2.57058},
		{10, 2.22814},
		{30, 2.04227},
		{120, 1.97993},
	}
	for _, c := range cases {
		if got := TQuantile(0.975, c.nu); !almostEq(got, c.want, 1e-4) {
			t.Errorf("TQuantile(0.975, %v) = %v, want %v", c.nu, got, c.want)
		}
	}
}

func TestTQuantileRoundTrip(t *testing.T) {
	for _, nu := range []float64{1, 3, 9, 42} {
		for _, p := range []float64{0.01, 0.2, 0.5, 0.8, 0.95, 0.999} {
			q := TQuantile(p, nu)
			if got := TCDF(q, nu); !almostEq(got, p, 1e-8) {
				t.Errorf("round trip p=%v nu=%v: CDF(Q)=%v", p, nu, got)
			}
		}
	}
}

func TestTQuantileEdges(t *testing.T) {
	if !math.IsInf(TQuantile(0, 5), -1) || !math.IsInf(TQuantile(1, 5), 1) {
		t.Error("quantile at 0/1 should be ∓Inf")
	}
	if got := TQuantile(0.5, 5); got != 0 {
		t.Errorf("median should be 0, got %v", got)
	}
	// Symmetry: Q(p) = -Q(1-p).
	if got := TQuantile(0.1, 7) + TQuantile(0.9, 7); !almostEq(got, 0, 1e-9) {
		t.Errorf("quantile symmetry violated: %v", got)
	}
}

func TestNormQuantileKnown(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.8413447460685429, 1}, // Φ(1)
		{0.9772498680518208, 2}, // Φ(2)
		{0.975, 1.959963984540054},
		{0.995, 2.5758293035489},
	}
	for _, c := range cases {
		if got := NormQuantile(c.p); !almostEq(got, c.want, 1e-6) {
			t.Errorf("NormQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Round trip through the normal CDF for asymmetric probabilities.
	for _, p := range []float64{0.0228, 0.12, 0.5, 0.77, 0.9999} {
		q := NormQuantile(p)
		if got := 0.5 * math.Erfc(-q/math.Sqrt2); !almostEq(got, p, 1e-9) {
			t.Errorf("Φ(Φ⁻¹(%v)) = %v", p, got)
		}
	}
}

func TestTQuantileApproachesNormal(t *testing.T) {
	// For large ν the t quantile converges to the normal quantile.
	for _, p := range []float64{0.9, 0.975, 0.999} {
		tq := TQuantile(p, 1e6)
		nq := NormQuantile(p)
		if !almostEq(tq, nq, 1e-4) {
			t.Errorf("p=%v: t quantile %v, normal %v", p, tq, nq)
		}
	}
}
