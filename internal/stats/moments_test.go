package stats

import (
	"math"
	"math/rand"
	"testing"
)

func recompute(vals []float64) (mean, variance float64, n int) {
	var sum float64
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		sum += v
		n++
	}
	if n == 0 {
		return math.NaN(), math.NaN(), 0
	}
	mean = sum / float64(n)
	if n < 2 {
		return mean, math.NaN(), n
	}
	var m2 float64
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		m2 += (v - mean) * (v - mean)
	}
	return mean, m2 / float64(n-1), n
}

func TestMomentsMatchesRecomputeUnderSlidingWindow(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, window := range []int{1, 2, 7, 32} {
		var m Moments
		var live []float64
		for i := 0; i < 5000; i++ {
			x := 3600 + rng.NormFloat64()*90 // large mean, small spread: the hostile regime
			if rng.Intn(10) == 0 {
				x = math.NaN()
			}
			live = append(live, x)
			m.Add(x)
			if len(live) > window {
				m.Remove(live[0])
				live = live[1:]
			}
			wm, wv, wn := recompute(live)
			if m.N != wn {
				t.Fatalf("window %d step %d: n = %d, want %d", window, i, m.N, wn)
			}
			gm, gv := m.MeanVar()
			if wn == 0 {
				continue
			}
			if math.Abs(gm-wm) > 1e-9*(1+math.Abs(wm)) {
				t.Fatalf("window %d step %d: mean %v, want %v", window, i, gm, wm)
			}
			if wn < 2 {
				if !math.IsNaN(gv) {
					t.Fatalf("window %d step %d: variance %v, want NaN for n<2", window, i, gv)
				}
				continue
			}
			if math.Abs(gv-wv) > 1e-6*(1+math.Abs(wv)) {
				t.Fatalf("window %d step %d: variance %v, want %v", window, i, gv, wv)
			}
		}
	}
}

func TestMomentsEmptyAndSingle(t *testing.T) {
	var m Moments
	if mean, v := m.MeanVar(); !math.IsNaN(mean) || !math.IsNaN(v) {
		t.Fatalf("empty moments = (%v, %v), want NaN", mean, v)
	}
	m.Add(42)
	mean, v := m.MeanVar()
	if mean != 42 || !math.IsNaN(v) {
		t.Fatalf("single sample = (%v, %v), want (42, NaN)", mean, v)
	}
	m.Remove(42)
	if m.N != 0 || m.Mean != 0 || m.M2 != 0 {
		t.Fatalf("remove-to-empty left residue: %+v", m)
	}
}

func TestMomentsIgnoresNaN(t *testing.T) {
	var m Moments
	m.Add(math.NaN())
	m.Add(10)
	m.Add(20)
	m.Remove(math.NaN())
	mean, v := m.MeanVar()
	if m.N != 2 || mean != 15 || v != 50 {
		t.Fatalf("moments = n=%d (%v, %v), want n=2 (15, 50)", m.N, mean, v)
	}
}

func TestMomentsIdenticalValuesZeroVariance(t *testing.T) {
	var m Moments
	for i := 0; i < 100; i++ {
		m.Add(1234.5)
	}
	mean, v := m.MeanVar()
	if mean != 1234.5 || v != 0 {
		t.Fatalf("identical stream = (%v, %v), want (1234.5, 0)", mean, v)
	}
}
