package stats

import "math"

// Moments maintains running first and second central moments of a stream
// with Welford's algorithm, extended with exact reversal so a bounded
// history can evict its oldest point in O(1). Welford's update is the
// numerically stable choice for long-lived streaming aggregates: unlike the
// Σx/Σx² formulation, the variance never suffers catastrophic cancellation
// when the mean is large relative to the spread, which is exactly the shape
// of run-time categories (hours-long jobs with minutes of jitter).
//
// The zero value is an empty aggregate ready for use. NaN samples are
// ignored by both Add and Remove, so optional values (a relative run time
// for a job without a user-supplied maximum) can be streamed unguarded.
type Moments struct {
	// N is the number of samples currently contributing.
	N int
	// Mean is the running mean (0 when N == 0).
	Mean float64
	// M2 is the sum of squared deviations from the running mean.
	M2 float64
}

// Add incorporates one sample.
func (m *Moments) Add(x float64) {
	if math.IsNaN(x) {
		return
	}
	m.N++
	d := x - m.Mean
	m.Mean += d / float64(m.N)
	m.M2 += d * (x - m.Mean)
}

// Remove reverses a previous Add of x. Removing a value that was never
// added gives meaningless moments; callers (the bounded category ring)
// only remove values they inserted.
func (m *Moments) Remove(x float64) {
	if math.IsNaN(x) || m.N == 0 {
		return
	}
	if m.N == 1 {
		*m = Moments{}
		return
	}
	n1 := float64(m.N - 1)
	prevMean := (float64(m.N)*m.Mean - x) / n1
	m.M2 -= (x - prevMean) * (x - m.Mean)
	if m.M2 < 0 {
		m.M2 = 0 // guard the tiny negative residue of float reversal
	}
	m.Mean = prevMean
	m.N--
}

// MeanVar returns the mean and the unbiased sample variance. The mean is
// NaN when the aggregate is empty and the variance is NaN when fewer than
// two samples contribute, mirroring the contract prediction code relies on
// to reject under-populated categories.
func (m *Moments) MeanVar() (mean, variance float64) {
	if m.N == 0 {
		return math.NaN(), math.NaN()
	}
	if m.N < 2 {
		return m.Mean, math.NaN()
	}
	v := m.M2 / float64(m.N-1)
	if v < 0 {
		v = 0
	}
	return m.Mean, v
}
