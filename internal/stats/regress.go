package stats

import "math"

// The paper's template predictor supports four prediction types within a
// category: the mean, a linear regression, an inverse regression, and a
// logarithmic regression of run time against the requested number of nodes
// (§2.1, citing Draper & Smith). The regressions here return both point
// predictions and prediction-interval half-widths so the predictor can
// select the estimate with the smallest interval, exactly as it does with
// mean confidence intervals.

// LinReg holds a fitted simple linear regression y = Intercept + Slope*x.
type LinReg struct {
	Slope, Intercept float64
	N                int     // number of points
	XMean            float64 // mean of the regressor
	SXX              float64 // sum of squared regressor deviations
	ResidStd         float64 // residual standard error (n-2 df)
}

// FitLinear fits y = a + b*x by ordinary least squares.
// It returns ErrInsufficientData for fewer than three points or a
// degenerate regressor (all x equal).
func FitLinear(xs, ys []float64) (*LinReg, error) {
	n := len(xs)
	if n != len(ys) || n < 3 {
		return nil, ErrInsufficientData
	}
	xm := Mean(xs)
	ym := Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - xm
		sxx += dx * dx
		sxy += dx * (ys[i] - ym)
	}
	if sxx == 0 { //lint:allow floatcmp exact-zero spread guard: all x identical, slope undefined
		return nil, ErrInsufficientData
	}
	b := sxy / sxx
	a := ym - b*xm
	var sse float64
	for i := range xs {
		r := ys[i] - (a + b*xs[i])
		sse += r * r
	}
	return &LinReg{ //lint:allow hotpath one result struct per regression fit; part of the committed allocs/op floor
		Slope:     b,
		Intercept: a,
		N:         n,
		XMean:     xm,
		SXX:       sxx,
		ResidStd:  math.Sqrt(sse / float64(n-2)),
	}, nil
}

// Predict returns the point prediction at x.
func (r *LinReg) Predict(x float64) float64 {
	return r.Intercept + r.Slope*x
}

// PredictInterval returns the point prediction at x and the half-width of
// the two-sided prediction interval for a single new observation at the
// given confidence level:
//
//	half = t(level, n-2) * s * sqrt(1 + 1/n + (x - x̄)²/Sxx)
func (r *LinReg) PredictInterval(x, level float64) (pred, half float64) {
	pred = r.Predict(x)
	if r.ResidStd == 0 { //lint:allow floatcmp exact-zero residual guard; a perfect fit predicts exactly
		return pred, 0
	}
	t := TQuantile(0.5+level/2, float64(r.N-2))
	dx := x - r.XMean
	half = t * r.ResidStd * math.Sqrt(1+1/float64(r.N)+dx*dx/r.SXX)
	return pred, half
}

// FitInverse fits y = a + b/x (the paper's "inverse regression") by
// transforming the regressor to 1/x. All x must be nonzero.
func FitInverse(xs, ys []float64) (*TransformedReg, error) {
	tx := make([]float64, len(xs)) //lint:allow hotpath one transformed-regressor slice per fit; part of the committed allocs/op floor
	for i, x := range xs {
		if x == 0 { //lint:allow floatcmp exact zero is the only x where 1/x is undefined
			return nil, ErrInsufficientData
		}
		tx[i] = 1 / x
	}
	lr, err := FitLinear(tx, ys)
	if err != nil {
		return nil, err
	}
	return &TransformedReg{lr: lr, transform: func(x float64) float64 { return 1 / x }}, nil //lint:allow hotpath one result struct per regression fit; part of the committed allocs/op floor
}

// FitLog fits y = a + b*ln(x) (the paper's "logarithmic regression").
// All x must be positive.
func FitLog(xs, ys []float64) (*TransformedReg, error) {
	tx := make([]float64, len(xs)) //lint:allow hotpath one transformed-regressor slice per fit; part of the committed allocs/op floor
	for i, x := range xs {
		if x <= 0 {
			return nil, ErrInsufficientData
		}
		tx[i] = math.Log(x)
	}
	lr, err := FitLinear(tx, ys)
	if err != nil {
		return nil, err
	}
	return &TransformedReg{lr: lr, transform: math.Log}, nil //lint:allow hotpath one result struct per regression fit; part of the committed allocs/op floor
}

// TransformedReg is a linear regression on a transformed regressor
// (1/x for the inverse regression, ln x for the logarithmic regression).
type TransformedReg struct {
	lr        *LinReg
	transform func(float64) float64
}

// Predict returns the point prediction at the untransformed x.
func (r *TransformedReg) Predict(x float64) float64 {
	return r.lr.Predict(r.transform(x))
}

// PredictInterval returns the prediction and prediction-interval half-width
// at the untransformed x.
func (r *TransformedReg) PredictInterval(x, level float64) (pred, half float64) {
	return r.lr.PredictInterval(r.transform(x), level)
}

// WeightedLinReg holds a weighted least-squares fit y = Intercept + Slope*x.
// Gibbons's predictor performs a weighted linear regression on the
// (mean nodes, mean run time) of each subcategory, weighting each pair by
// the inverse of the run-time variance of the subcategory (§2.2).
type WeightedLinReg struct {
	Slope, Intercept float64
	N                int
}

// FitWeightedLinear fits y = a + b*x minimizing Σ w_i (y_i - a - b x_i)².
// Weights must be positive; at least two points with distinct x are needed.
func FitWeightedLinear(xs, ys, ws []float64) (*WeightedLinReg, error) {
	n := len(xs)
	if n != len(ys) || n != len(ws) || n < 2 {
		return nil, ErrInsufficientData
	}
	var sw, swx, swy float64
	for i := range xs {
		if ws[i] <= 0 || math.IsNaN(ws[i]) || math.IsInf(ws[i], 0) {
			return nil, ErrInsufficientData
		}
		sw += ws[i]
		swx += ws[i] * xs[i]
		swy += ws[i] * ys[i]
	}
	xm := swx / sw
	ym := swy / sw
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - xm
		sxx += ws[i] * dx * dx
		sxy += ws[i] * dx * (ys[i] - ym)
	}
	if sxx == 0 { //lint:allow floatcmp exact-zero spread guard: all x identical, slope undefined
		return nil, ErrInsufficientData
	}
	b := sxy / sxx
	return &WeightedLinReg{Slope: b, Intercept: ym - b*xm, N: n}, nil
}

// Predict returns the point prediction at x.
func (r *WeightedLinReg) Predict(x float64) float64 {
	return r.Intercept + r.Slope*x
}
