package stats

import (
	"math"
	"sync"
)

// This file implements the Student-t distribution from scratch: log-gamma
// (Lanczos), the regularized incomplete beta function (Lentz continued
// fraction), the t CDF, and the t quantile (bisection + Newton polish).
// These are the primitives behind the confidence intervals the template
// predictor uses to rank category estimates.

// lanczosCoef holds the g=7, n=9 Lanczos coefficients.
var lanczosCoef = [9]float64{
	0.99999999999980993,
	676.5203681218851,
	-1259.1392167224028,
	771.32342877765313,
	-176.61502916214059,
	12.507343278686905,
	-0.13857109526572012,
	9.9843695780195716e-6,
	1.5056327351493116e-7,
}

// LogGamma returns ln Γ(x) for x > 0.
func LogGamma(x float64) float64 {
	if x < 0.5 {
		// Reflection formula: Γ(x)Γ(1-x) = π / sin(πx).
		return math.Log(math.Pi/math.Sin(math.Pi*x)) - LogGamma(1-x)
	}
	x--
	a := lanczosCoef[0]
	t := x + 7.5
	for i := 1; i < 9; i++ {
		a += lanczosCoef[i] / (x + float64(i))
	}
	return 0.5*math.Log(2*math.Pi) + (x+0.5)*math.Log(t) - t + math.Log(a)
}

// RegIncBeta returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and 0 <= x <= 1, computed with the continued-fraction
// expansion (Numerical-Recipes-style modified Lentz algorithm).
func RegIncBeta(a, b, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x >= 1:
		return 1
	}
	lbeta := LogGamma(a+b) - LogGamma(a) - LogGamma(b) +
		a*math.Log(x) + b*math.Log(1-x)
	front := math.Exp(lbeta)
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	return 1 - math.Exp(lbeta)*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for the incomplete beta function.
func betaCF(a, b, x float64) float64 {
	const (
		maxIter = 300
		eps     = 3e-14
		tiny    = 1e-300
	)
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return h
}

// TCDF returns P(T <= t) for a Student-t random variable with nu degrees of
// freedom (nu > 0).
func TCDF(t, nu float64) float64 {
	if math.IsInf(t, 1) {
		return 1
	}
	if math.IsInf(t, -1) {
		return 0
	}
	x := nu / (nu + t*t)
	p := 0.5 * RegIncBeta(nu/2, 0.5, x)
	if t > 0 {
		return 1 - p
	}
	return p
}

// tqKey keys the quantile cache.
type tqKey struct{ p, nu float64 }

// tqCache memoizes TQuantile: predictors evaluate the same (level, df)
// pairs millions of times during a simulation, and each fresh evaluation
// costs a bisection over the incomplete beta function.
var tqCache sync.Map

// TQuantile returns the p-quantile of the Student-t distribution with nu
// degrees of freedom: the t such that TCDF(t, nu) = p, for 0 < p < 1.
// Results for p outside (0,1) are ±Inf. Results are memoized.
func TQuantile(p, nu float64) float64 {
	if v, ok := tqCache.Load(tqKey{p, nu}); ok { //lint:allow hotpath boxing the cache key is the price of sync.Map memoization; the steady state is one lock-free load
		return v.(float64)
	}
	v := tQuantileSlow(p, nu)
	tqCache.Store(tqKey{p, nu}, v) //lint:allow hotpath warm-up-only store; each (level, df) pair is computed once
	return v
}

// tQuantileSlow computes the quantile by bracketed bisection.
func tQuantileSlow(p, nu float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	case p == 0.5: //lint:allow floatcmp exact symmetry point of the t distribution; 0.5 is representable
		return 0
	case p < 0.5:
		return -TQuantile(1-p, nu)
	}
	// Bracket the root, then bisect. The normal quantile seeds the upper
	// bracket; t has heavier tails so widen until the CDF crosses p.
	lo := 0.0
	hi := math.Max(2, 2*NormQuantile(p))
	for TCDF(hi, nu) < p {
		hi *= 2
		if hi > 1e12 {
			break
		}
	}
	for i := 0; i < 200; i++ {
		mid := (lo + hi) / 2
		if TCDF(mid, nu) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo < 1e-12*(1+hi) {
			break
		}
	}
	return (lo + hi) / 2
}

// NormQuantile returns the p-quantile of the standard normal distribution
// using Acklam's rational approximation (relative error < 1.15e-9),
// refined with one Halley step against math.Erfc.
func NormQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}

	const plow = 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-plow:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement step.
	e := 0.5*math.Erfc(-x/math.Sqrt2) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	x = x - u/(1+x*u/2)
	return x
}
