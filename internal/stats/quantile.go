package stats

import (
	"math"
	"sort"
)

// Quantile returns the p-quantile (0 ≤ p ≤ 1) of xs using linear
// interpolation between order statistics (type-7, the common default).
// The input is not modified. NaN is returned for an empty slice.
func Quantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return quantileSorted(sorted, p)
}

// QuantilesSorted computes several quantiles in one pass over a pre-sorted
// slice; it is the allocation-free companion to Quantile for reporting.
func QuantilesSorted(sorted []float64, ps ...float64) []float64 {
	out := make([]float64, len(ps))
	for i, p := range ps {
		out[i] = quantileSorted(sorted, p)
	}
	return out
}

func quantileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	h := p * float64(n-1)
	lo := int(math.Floor(h))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := h - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Summary is a five-number-plus descriptive summary of a sample.
type Summary struct {
	N                  int
	Mean, StdDev       float64
	Min, P50, P90, P99 float64
	Max                float64
}

// Summarize computes a Summary of xs. The input is not modified.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if len(xs) == 0 {
		s.Mean, s.StdDev = math.NaN(), math.NaN()
		s.Min, s.P50, s.P90, s.P99, s.Max = math.NaN(), math.NaN(), math.NaN(), math.NaN(), math.NaN()
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Mean, _ = MeanVar(xs)
	if len(xs) > 1 {
		s.StdDev = StdDev(xs)
	}
	qs := QuantilesSorted(sorted, 0.5, 0.9, 0.99)
	s.Min = sorted[0]
	s.P50, s.P90, s.P99 = qs[0], qs[1], qs[2]
	s.Max = sorted[len(sorted)-1]
	return s
}
