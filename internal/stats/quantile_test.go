package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQuantileKnown(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{0.125, 15}, // interpolation
	}
	for _, c := range cases {
		if got := Quantile(xs, c.p); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestQuantileSingleAndEmpty(t *testing.T) {
	if got := Quantile([]float64{7}, 0.9); got != 7 {
		t.Errorf("single-element quantile = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Quantile(xs, 0.5)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("input mutated")
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(100)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
		}
		prev := math.Inf(-1)
		for p := 0.0; p <= 1.0; p += 0.1 {
			q := Quantile(xs, p)
			if q < prev-1e-9 {
				return false
			}
			prev = q
		}
		// Bounds.
		return Quantile(xs, 0) == Min(xs) && Quantile(xs, 1) == Max(xs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	s := Summarize(xs)
	if s.N != 10 || s.Min != 1 || s.Max != 10 {
		t.Fatalf("summary = %+v", s)
	}
	if !almostEq(s.Mean, 5.5, 1e-12) || !almostEq(s.P50, 5.5, 1e-12) {
		t.Fatalf("mean/median = %v/%v", s.Mean, s.P50)
	}
	if s.P90 <= s.P50 || s.P99 < s.P90 {
		t.Fatalf("quantile ordering: %+v", s)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || !math.IsNaN(s.Mean) || !math.IsNaN(s.P99) {
		t.Fatalf("empty summary = %+v", s)
	}
}
