package stats

import "math"

// TTestResult reports a two-sample Welch t-test.
type TTestResult struct {
	T  float64 // test statistic
	DF float64 // Welch–Satterthwaite degrees of freedom
	P  float64 // two-sided p-value
}

// WelchT performs Welch's two-sample t-test for a difference in means
// between xs and ys (unequal variances, unpaired). It returns
// ErrInsufficientData when either sample has fewer than two points or both
// variances are zero.
//
// The replication harness uses it to ask whether a predictor's mean-wait
// advantage over another survives the seed-to-seed noise of the synthetic
// workloads.
func WelchT(xs, ys []float64) (TTestResult, error) {
	if len(xs) < 2 || len(ys) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	mx, vx := MeanVar(xs)
	my, vy := MeanVar(ys)
	return welchFromSummary(mx, vx, float64(len(xs)), my, vy, float64(len(ys)))
}

// WelchTMoments is WelchT computed from streaming summaries instead of
// retained samples: the online accuracy tracker tests its recent error
// window against the lifetime baseline without holding either sample in
// memory. Both aggregates need at least two points.
func WelchTMoments(x, y Moments) (TTestResult, error) {
	if x.N < 2 || y.N < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	mx, vx := x.MeanVar()
	my, vy := y.MeanVar()
	return welchFromSummary(mx, vx, float64(x.N), my, vy, float64(y.N))
}

// welchFromSummary is the shared Welch machinery over (mean, variance, n)
// summaries; WelchT and WelchTMoments differ only in how they summarize.
func welchFromSummary(mx, vx, nx, my, vy, ny float64) (TTestResult, error) {
	se2 := vx/nx + vy/ny
	if se2 <= 0 {
		if mx == my { //lint:allow floatcmp degenerate zero-variance case: means of identical constants compare exactly
			// Identical constants: no evidence of difference.
			return TTestResult{T: 0, DF: nx + ny - 2, P: 1}, nil
		}
		return TTestResult{}, ErrInsufficientData
	}
	t := (mx - my) / math.Sqrt(se2)
	// Welch–Satterthwaite.
	num := se2 * se2
	den := (vx*vx)/(nx*nx*(nx-1)) + (vy*vy)/(ny*ny*(ny-1))
	df := num / den
	if math.IsNaN(df) || df < 1 {
		df = 1
	}
	p := 2 * TCDF(-math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

// PairedT performs a paired t-test on the differences xs[i]-ys[i]
// (the replication harness draws paired workloads per seed, so the paired
// test is the sharper instrument).
func PairedT(xs, ys []float64) (TTestResult, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return TTestResult{}, ErrInsufficientData
	}
	diffs := make([]float64, len(xs))
	for i := range xs {
		diffs[i] = xs[i] - ys[i]
	}
	m, v := MeanVar(diffs)
	n := float64(len(diffs))
	if v <= 0 {
		if m == 0 { //lint:allow floatcmp degenerate zero-variance case: exact-zero constant difference
			return TTestResult{T: 0, DF: n - 1, P: 1}, nil
		}
		// Constant nonzero difference: infinitely strong evidence.
		return TTestResult{T: math.Inf(sign(m)), DF: n - 1, P: 0}, nil
	}
	t := m / math.Sqrt(v/n)
	df := n - 1
	p := 2 * TCDF(-math.Abs(t), df)
	return TTestResult{T: t, DF: df, P: p}, nil
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}
