package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= tol*(1+math.Abs(a)+math.Abs(b))
}

func TestSumEmpty(t *testing.T) {
	if got := Sum(nil); got != 0 {
		t.Fatalf("Sum(nil) = %v, want 0", got)
	}
}

func TestSumKahan(t *testing.T) {
	// 1 followed by many tiny values that naive summation loses.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-13 {
		t.Fatalf("Kahan Sum = %.18f, want %.18f", got, want)
	}
}

func TestMean(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{1, 2, 3}, 2},
		{[]float64{5}, 5},
		{[]float64{-1, 1}, 0},
		{[]float64{2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := Mean(c.xs); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
}

func TestVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance with n-1 denominator: ss = 32, n-1 = 7.
	want := 32.0 / 7.0
	if got := Variance(xs); !almostEq(got, want, 1e-12) {
		t.Fatalf("Variance = %v, want %v", got, want)
	}
	if !math.IsNaN(Variance([]float64{1})) {
		t.Error("Variance of one point should be NaN")
	}
}

func TestMeanVarMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(200)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*100 + 1000
		}
		m1, v1 := MeanVar(xs)
		m2, v2 := Mean(xs), Variance(xs)
		if !almostEq(m1, m2, 1e-10) || !almostEq(v1, v2, 1e-8) {
			t.Fatalf("MeanVar (%v,%v) != two-pass (%v,%v)", m1, v1, m2, v2)
		}
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v, want 7", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestMeanAbs(t *testing.T) {
	if got := MeanAbs([]float64{-2, 2, -4, 4}); got != 3 {
		t.Fatalf("MeanAbs = %v, want 3", got)
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var o Online
	var xs []float64
	for i := 0; i < 500; i++ {
		x := rng.ExpFloat64() * 50
		o.Add(x)
		xs = append(xs, x)
	}
	if o.N() != 500 {
		t.Fatalf("N = %d", o.N())
	}
	if !almostEq(o.Mean(), Mean(xs), 1e-10) {
		t.Errorf("online mean %v != batch %v", o.Mean(), Mean(xs))
	}
	if !almostEq(o.Variance(), Variance(xs), 1e-8) {
		t.Errorf("online var %v != batch %v", o.Variance(), Variance(xs))
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Variance()) {
		t.Error("empty Online should report NaN mean/variance")
	}
}

func TestMeanCI(t *testing.T) {
	// Known small-sample case: n=4, values {1,2,3,4}: mean 2.5,
	// s = sqrt(5/3) ≈ 1.29099, t(0.975, 3) ≈ 3.18245.
	mean, half, err := MeanCI([]float64{1, 2, 3, 4}, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(mean, 2.5, 1e-12) {
		t.Errorf("mean = %v", mean)
	}
	wantHalf := 3.182446305 * math.Sqrt(5.0/3.0) / 2
	if !almostEq(half, wantHalf, 1e-6) {
		t.Errorf("half = %v, want %v", half, wantHalf)
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, _, err := MeanCI([]float64{1}, 0.95); err != ErrInsufficientData {
		t.Fatalf("want ErrInsufficientData, got %v", err)
	}
	// Identical points: zero-width interval, no error.
	_, half, err := MeanCI([]float64{5, 5, 5}, 0.95)
	if err != nil || half != 0 {
		t.Fatalf("identical points: half=%v err=%v", half, err)
	}
}

// Property: the CI half-width shrinks as the confidence level drops and as
// the sample grows (for a fixed underlying distribution).
func TestMeanCIMonotonicity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	_, h90, _ := MeanCI(xs, 0.90)
	_, h99, _ := MeanCI(xs, 0.99)
	if h90 >= h99 {
		t.Errorf("90%% CI (%v) should be narrower than 99%% CI (%v)", h90, h99)
	}
}

// quick-check property: mean is translation-equivariant and within [min,max].
func TestMeanPropertyQuick(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		return m >= Min(xs)-1e-9 && m <= Max(xs)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// quick-check property: variance is non-negative and shift-invariant.
func TestVariancePropertyQuick(t *testing.T) {
	f := func(raw []float64, shift float64) bool {
		if math.IsNaN(shift) || math.IsInf(shift, 0) || math.Abs(shift) > 1e6 {
			shift = 1
		}
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		if len(xs) < 2 {
			return true
		}
		v := Variance(xs)
		shifted := make([]float64, len(xs))
		for i, x := range xs {
			shifted[i] = x + shift
		}
		v2 := Variance(shifted)
		return v >= -1e-9 && almostEq(v, v2, 1e-6)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
