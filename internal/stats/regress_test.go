package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitLinearExact(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{3, 5, 7, 9, 11} // y = 1 + 2x
	r, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Slope, 2, 1e-12) || !almostEq(r.Intercept, 1, 1e-12) {
		t.Fatalf("fit = %v + %v x", r.Intercept, r.Slope)
	}
	if r.ResidStd != 0 {
		t.Errorf("perfect fit should have zero residual std, got %v", r.ResidStd)
	}
	if got := r.Predict(10); !almostEq(got, 21, 1e-12) {
		t.Errorf("Predict(10) = %v", got)
	}
	_, half := r.PredictInterval(10, 0.95)
	if half != 0 {
		t.Errorf("perfect fit should have zero interval, got %v", half)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 500
	xs := make([]float64, n)
	ys := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
		ys[i] = 4 + 0.5*xs[i] + rng.NormFloat64()*2
	}
	r, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Slope-0.5) > 0.05 || math.Abs(r.Intercept-4) > 1 {
		t.Fatalf("fit = %v + %v x", r.Intercept, r.Slope)
	}
	if math.Abs(r.ResidStd-2) > 0.3 {
		t.Errorf("residual std = %v, want ≈2", r.ResidStd)
	}
	// Prediction interval grows away from the regressor mean.
	_, hNear := r.PredictInterval(r.XMean, 0.95)
	_, hFar := r.PredictInterval(r.XMean+200, 0.95)
	if hFar <= hNear {
		t.Errorf("interval should widen away from mean: near=%v far=%v", hNear, hFar)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, err := FitLinear([]float64{1, 2}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("n<3 should fail, got %v", err)
	}
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err != ErrInsufficientData {
		t.Errorf("degenerate x should fail, got %v", err)
	}
	if _, err := FitLinear([]float64{1, 2, 3}, []float64{1, 2}); err != ErrInsufficientData {
		t.Errorf("length mismatch should fail, got %v", err)
	}
}

func TestFitInverseExact(t *testing.T) {
	// y = 2 + 6/x
	xs := []float64{1, 2, 3, 6}
	ys := []float64{8, 5, 4, 3}
	r, err := FitInverse(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict(12); !almostEq(got, 2.5, 1e-9) {
		t.Errorf("Predict(12) = %v, want 2.5", got)
	}
	_, half := r.PredictInterval(12, 0.9)
	if half != 0 {
		t.Errorf("perfect inverse fit: half = %v", half)
	}
}

func TestFitInverseRejectsZeroX(t *testing.T) {
	if _, err := FitInverse([]float64{0, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("x=0 should be rejected")
	}
}

func TestFitLogExact(t *testing.T) {
	// y = 1 + 3 ln x
	xs := []float64{1, math.E, math.E * math.E, 10}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 1 + 3*math.Log(x)
	}
	r, err := FitLog(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Predict(100); !almostEq(got, 1+3*math.Log(100), 1e-9) {
		t.Errorf("Predict(100) = %v", got)
	}
}

func TestFitLogRejectsNonPositive(t *testing.T) {
	if _, err := FitLog([]float64{-1, 1, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("x<=0 should be rejected")
	}
}

func TestFitWeightedLinear(t *testing.T) {
	// Equal weights must reproduce OLS.
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	ols, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	w := []float64{1, 1, 1, 1, 1}
	wls, err := FitWeightedLinear(xs, ys, w)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(ols.Slope, wls.Slope, 1e-10) || !almostEq(ols.Intercept, wls.Intercept, 1e-10) {
		t.Fatalf("WLS with unit weights (%v,%v) != OLS (%v,%v)",
			wls.Intercept, wls.Slope, ols.Intercept, ols.Slope)
	}
}

func TestFitWeightedLinearDominantWeight(t *testing.T) {
	// A huge weight forces the line through that point (with another anchor).
	xs := []float64{0, 10, 5}
	ys := []float64{0, 10, 100} // outlier at x=5
	ws := []float64{1e9, 1e9, 1e-9}
	r, err := FitWeightedLinear(xs, ys, ws)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEq(r.Predict(0), 0, 1e-5) || !almostEq(r.Predict(10), 10, 1e-5) {
		t.Fatalf("dominant weights ignored: f(0)=%v f(10)=%v", r.Predict(0), r.Predict(10))
	}
}

func TestFitWeightedLinearErrors(t *testing.T) {
	if _, err := FitWeightedLinear([]float64{1}, []float64{1}, []float64{1}); err == nil {
		t.Error("n<2 should fail")
	}
	if _, err := FitWeightedLinear([]float64{1, 2}, []float64{1, 2}, []float64{1, -1}); err == nil {
		t.Error("negative weight should fail")
	}
	if _, err := FitWeightedLinear([]float64{3, 3}, []float64{1, 2}, []float64{1, 1}); err == nil {
		t.Error("degenerate x should fail")
	}
}

// Property: OLS residuals sum to ~0 and predictions at x̄ equal ȳ.
func TestLinearRegressionProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(50)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64()*50 + float64(i)*0.01 // distinct x
			ys[i] = rng.NormFloat64() * 10
		}
		r, err := FitLinear(xs, ys)
		if err != nil {
			return true
		}
		var resid float64
		for i := range xs {
			resid += ys[i] - r.Predict(xs[i])
		}
		return math.Abs(resid) < 1e-6*float64(n) &&
			almostEq(r.Predict(Mean(xs)), Mean(ys), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
