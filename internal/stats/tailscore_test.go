package stats

import (
	"math"
	"testing"
)

func TestAsymCost(t *testing.T) {
	cases := []struct {
		e, ratio, want float64
	}{
		{e: 10, ratio: 2, want: 10},     // over-prediction costs its own size
		{e: -10, ratio: 2, want: 20},    // under-prediction costs ratio times
		{e: 0, ratio: 2, want: 0},       // exact is free
		{e: -5, ratio: 1, want: 5},      // symmetric ratio
		{e: -5, ratio: 0, want: 10},     // non-positive ratio falls back to default
		{e: -5, ratio: -3, want: 10},    // negative ratio falls back to default
		{e: 2.5, ratio: 100, want: 2.5}, // ratio never touches over-predictions
	}
	for _, c := range cases {
		if got := AsymCost(c.e, c.ratio); got != c.want {
			t.Errorf("AsymCost(%v, %v) = %v, want %v", c.e, c.ratio, got, c.want)
		}
	}
}

func TestAsymCostNonNegative(t *testing.T) {
	for _, e := range []float64{-1e9, -1, -1e-12, 0, 1e-12, 1, 1e9} {
		for _, r := range []float64{0.25, 1, 2, 10} {
			if got := AsymCost(e, r); got < 0 {
				t.Fatalf("AsymCost(%v, %v) = %v < 0", e, r, got)
			}
		}
	}
}

func TestTailCompositeWeights(t *testing.T) {
	if w := TailWeightP50 + TailWeightP90 + TailWeightP99; w != 1.0 {
		t.Fatalf("tail weights sum to %v, want 1", w)
	}
	// All-over quantiles: plain weighted sum, ratio irrelevant.
	if got, want := TailComposite(10, 20, 40, 2), 0.2*10+0.3*20+0.5*40; got != want {
		t.Fatalf("TailComposite over = %v, want %v", got, want)
	}
	// All-under quantiles: every term scaled by the ratio.
	if got, want := TailComposite(-10, -20, -40, 2), 2*(0.2*10+0.3*20+0.5*40); got != want {
		t.Fatalf("TailComposite under = %v, want %v", got, want)
	}
	// Perfect predictor scores zero.
	if got := TailComposite(0, 0, 0, 2); got != 0 {
		t.Fatalf("TailComposite exact = %v, want 0", got)
	}
}

func TestTailCompositeSample(t *testing.T) {
	// A constant error stream: every quantile is that constant.
	errs := []float64{-30, -30, -30, -30}
	if got, want := TailCompositeSample(errs, 2), TailComposite(-30, -30, -30, 2); got != want {
		t.Fatalf("TailCompositeSample = %v, want %v", got, want)
	}
	if got := TailCompositeSample(nil, 2); !math.IsNaN(got) {
		t.Fatalf("TailCompositeSample(empty) = %v, want NaN", got)
	}
	// Matches a hand-built quantile computation on a mixed sample.
	mixed := []float64{-100, -10, 0, 5, 50}
	want := TailComposite(Quantile(mixed, 0.5), Quantile(mixed, 0.9), Quantile(mixed, 0.99), 3)
	if got := TailCompositeSample(mixed, 3); got != want {
		t.Fatalf("TailCompositeSample mixed = %v, want %v", got, want)
	}
}
