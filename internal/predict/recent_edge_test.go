package predict

import (
	"testing"

	"repro/internal/workload"
)

func rjob(user string, rt int64) *workload.Job {
	return &workload.Job{User: user, Nodes: 1, RunTime: rt}
}

// TestRecentUserMeanRingWraparound pushes more completions than the ring
// holds and checks the mean tracks exactly the last K values through
// several full wraps of the ring.
func TestRecentUserMeanRingWraparound(t *testing.T) {
	p := NewRecentUserMean(3)
	vals := []int64{10, 20, 30, 40, 50, 60, 70, 80}
	for i, v := range vals {
		p.Observe(rjob("u", v))
		// Expected mean of the last min(i+1, 3) values.
		lo := i + 1 - 3
		if lo < 0 {
			lo = 0
		}
		var sum int64
		for _, w := range vals[lo : i+1] {
			sum += w
		}
		want := sum / int64(i+1-lo)
		got, ok := p.Predict(rjob("u", 0), 0)
		if !ok || got != want {
			t.Fatalf("after %d observes: predict = %d/%v, want %d", i+1, got, ok, want)
		}
	}
}

// TestRecentUserMeanZeroCapacity: K ≤ 0 must fall back to DefaultRecentK
// both at construction and for a zero-value struct used directly.
func TestRecentUserMeanZeroCapacity(t *testing.T) {
	p := NewRecentUserMean(0)
	if p.K != DefaultRecentK {
		t.Fatalf("K = %d, want DefaultRecentK %d", p.K, DefaultRecentK)
	}
	for _, v := range []int64{100, 200, 300} {
		p.Observe(rjob("u", v))
	}
	got, ok := p.Predict(rjob("u", 0), 0)
	if !ok || got != 250 {
		t.Fatalf("predict = %d/%v, want 250 (last-2 mean)", got, ok)
	}

	// A RecentUserMean created with a negative K behaves the same.
	n := NewRecentUserMean(-5)
	for _, v := range []int64{100, 200, 300} {
		n.Observe(rjob("u", v))
	}
	got, ok = n.Predict(rjob("u", 0), 0)
	if !ok || got != 250 {
		t.Fatalf("negative-K predict = %d/%v, want 250", got, ok)
	}
}

// TestRecentUserMeanDuplicateCompletions: repeated identical run times
// (the common case of a user resubmitting the same job) keep the running
// sum exact — the ring's incremental sum must not drift.
func TestRecentUserMeanDuplicateCompletions(t *testing.T) {
	p := NewRecentUserMean(4)
	for i := 0; i < 1000; i++ {
		p.Observe(rjob("u", 77))
	}
	got, ok := p.Predict(rjob("u", 0), 0)
	if !ok || got != 77 {
		t.Fatalf("predict = %d/%v, want 77 after duplicate completions", got, ok)
	}
	// Mixed duplicates across the wrap boundary.
	for _, v := range []int64{1, 1, 9, 9} {
		p.Observe(rjob("u", v))
	}
	got, ok = p.Predict(rjob("u", 0), 0)
	if !ok || got != 5 {
		t.Fatalf("predict = %d/%v, want 5", got, ok)
	}
	// The floor at 1 second holds for tiny histories.
	q := NewRecentUserMean(2)
	q.Observe(rjob("v", 0))
	got, ok = q.Predict(rjob("v", 0), 0)
	if !ok || got != 1 {
		t.Fatalf("predict = %d/%v, want floor of 1", got, ok)
	}

	// Users are independent: u's flood never touches w's history.
	if _, ok := p.Predict(rjob("w", 0), 0); ok {
		t.Fatal("prediction for a user with no history")
	}
}
