package predict

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func noisyJob(id int) *workload.Job {
	return &workload.Job{ID: id, Nodes: 1, RunTime: 3600, MaxRunTime: 7200}
}

func TestNoisyZeroScaleIsIdentity(t *testing.T) {
	n := Noisy{Inner: Oracle{}, Scale: 0, Bias: 1, Seed: 42}
	for id := 1; id <= 100; id++ {
		j := noisyJob(id)
		got, ok := n.Predict(j, 0)
		want, _ := Oracle{}.Predict(j, 0)
		if !ok || got != want {
			t.Fatalf("job %d: (%d, %v), want identity %d", id, got, ok, want)
		}
	}
}

func TestNoisyDeterministic(t *testing.T) {
	n := Noisy{Inner: Oracle{}, Scale: 0.8, Bias: 0, Seed: 7}
	j := noisyJob(13)
	first, _ := n.Predict(j, 0)
	for i := 0; i < 10; i++ {
		if got, _ := n.Predict(j, 0); got != first {
			t.Fatalf("prediction changed across calls: %d then %d", first, got)
		}
	}
	// A different seed decorrelates at least some jobs.
	other := Noisy{Inner: Oracle{}, Scale: 0.8, Bias: 0, Seed: 8}
	diff := 0
	for id := 1; id <= 50; id++ {
		a, _ := n.Predict(noisyJob(id), 0)
		b, _ := other.Predict(noisyJob(id), 0)
		if a != b {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("seeds 7 and 8 produced identical noise for 50 jobs")
	}
}

func TestNoisyBiasSign(t *testing.T) {
	// Bias +1 draws noise from [0, 2): never under-predicts (beyond
	// rounding). Bias -1 draws from [-2, 0): never over-predicts.
	over := Noisy{Inner: Oracle{}, Scale: 0.5, Bias: 1, Seed: 3}
	under := Noisy{Inner: Oracle{}, Scale: 0.5, Bias: -1, Seed: 3}
	for id := 1; id <= 200; id++ {
		j := noisyJob(id)
		truth := j.RunTime
		if got, _ := over.Predict(j, 0); got < truth {
			t.Fatalf("job %d: bias +1 predicted %d < %d", id, got, truth)
		}
		if got, _ := under.Predict(j, 0); got > truth {
			t.Fatalf("job %d: bias -1 predicted %d > %d", id, got, truth)
		}
	}
}

func TestNoisyScaleBoundsError(t *testing.T) {
	n := Noisy{Inner: Oracle{}, Scale: 1.0, Bias: 0, Seed: 11}
	bound := math.Exp(1.0)
	for id := 1; id <= 200; id++ {
		j := noisyJob(id)
		got, _ := n.Predict(j, 0)
		ratio := float64(got) / float64(j.RunTime)
		if ratio > bound*1.01 || ratio < 1/(bound*1.01) {
			t.Fatalf("job %d: ratio %.3f outside e^±1", id, ratio)
		}
	}
}

func TestNoisyClampsToPositive(t *testing.T) {
	// A tiny true runtime under heavy under-prediction must stay ≥ 1 so a
	// valid prediction never becomes nonpositive.
	n := Noisy{Inner: Oracle{}, Scale: 3, Bias: -1, Seed: 5}
	j := &workload.Job{ID: 9, Nodes: 1, RunTime: 2}
	got, ok := n.Predict(j, 0)
	if !ok || got < 1 {
		t.Fatalf("(%d, %v), want clamped ≥ 1", got, ok)
	}
}

func TestNoisyForwardsMissAndObserve(t *testing.T) {
	rm := &RunningMean{}
	n := Noisy{Inner: rm, Scale: 0.5, Seed: 1}
	j := noisyJob(1)
	if _, ok := n.Predict(j, 0); ok {
		t.Fatal("empty inner predictor produced a prediction through Noisy")
	}
	// Observe flows to the inner predictor untouched.
	j.StartTime = 0
	j.EndTime = j.RunTime
	n.Observe(j)
	if got, ok := rm.Predict(noisyJob(2), 0); !ok || got != j.RunTime {
		t.Fatalf("inner after Observe: (%d, %v), want %d", got, ok, j.RunTime)
	}
}

func TestNoisyName(t *testing.T) {
	n := Noisy{Inner: Oracle{}, Scale: 0.5, Bias: -1}
	if got := n.Name(); got != "actual+err(0.5,-1)" {
		t.Fatalf("Name() = %q", got)
	}
}
