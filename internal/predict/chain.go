package predict

import (
	"strings"

	"repro/internal/workload"
)

// Chain composes predictors as a fallback sequence: Predict returns the
// first constituent's valid prediction, and Observe feeds every
// constituent. It is how a deployment combines a sharp-but-sparse
// predictor (the template predictor early in its ramp-up) with an
// always-available one (maximum run times or a global mean), and how the
// Gibbons-style "try templates in order" strategy is expressed with
// independent predictors.
type Chain []Predictor

// NewChain builds a chain, flattening nested chains.
func NewChain(ps ...Predictor) Chain {
	var out Chain
	for _, p := range ps {
		if c, ok := p.(Chain); ok {
			out = append(out, c...)
			continue
		}
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Name joins the constituent names: "smith>maxrt".
func (c Chain) Name() string {
	names := make([]string, len(c))
	for i, p := range c {
		names[i] = p.Name()
	}
	return strings.Join(names, ">")
}

// Predict returns the first valid positive prediction in chain order.
func (c Chain) Predict(j *workload.Job, age int64) (int64, bool) {
	for _, p := range c {
		if est, ok := p.Predict(j, age); ok && est > 0 {
			return est, true
		}
	}
	return 0, false
}

// Observe feeds the completion to every constituent.
func (c Chain) Observe(j *workload.Job) {
	for _, p := range c {
		p.Observe(j)
	}
}

// Static check.
var _ Predictor = Chain(nil)
