package downey

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/workload"
)

func qj(queue string, rt int64) *workload.Job {
	return &workload.Job{Queue: queue, Nodes: 1, RunTime: rt}
}

// seedLogUniform fills a queue with run times drawn so that ln t is uniform
// over [0, ln tmax] — exactly Downey's model, so the fit should recover it.
func seedLogUniform(d *Predictor, queue string, tmax float64, n int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		rt := math.Exp(rng.Float64() * math.Log(tmax))
		d.Observe(qj(queue, int64(math.Max(1, math.Round(rt)))))
	}
}

func TestNoHistoryNoPrediction(t *testing.T) {
	d := New(ConditionalMedian)
	if _, ok := d.Predict(qj("q16m", 0), 0); ok {
		t.Fatal("empty predictor predicted")
	}
}

func TestMinPointsEnforced(t *testing.T) {
	d := New(ConditionalMedian)
	for i := 0; i < minPoints-1; i++ {
		d.Observe(qj("q", int64(100+i*50)))
	}
	if _, ok := d.Predict(qj("q", 0), 0); ok {
		t.Fatalf("predicted with %d points (min %d)", minPoints-1, minPoints)
	}
}

func TestRecoverLogUniformModel(t *testing.T) {
	const tmax = 10000.0
	d := New(ConditionalMedian)
	seedLogUniform(d, "q", tmax, 2000, 3)
	// Unconditional (age 0 → a=1) median should be ≈ sqrt(tmax) = 100.
	got, ok := d.Predict(qj("q", 0), 0)
	if !ok {
		t.Fatal("no prediction")
	}
	if math.Abs(float64(got)-100) > 30 {
		t.Fatalf("median = %d, want ≈100", got)
	}

	avg := New(ConditionalAverage)
	seedLogUniform(avg, "q", tmax, 2000, 3)
	// Unconditional mean of log-uniform on [1, tmax] ≈ tmax/ln(tmax) ≈ 1086.
	got, ok = avg.Predict(qj("q", 0), 0)
	if !ok {
		t.Fatal("no average prediction")
	}
	want := (tmax - 1) / math.Log(tmax)
	if math.Abs(float64(got)-want) > want*0.35 {
		t.Fatalf("average = %d, want ≈%.0f", got, want)
	}
}

func TestConditionalGrowsWithAge(t *testing.T) {
	for _, mode := range []Mode{ConditionalMedian, ConditionalAverage} {
		d := New(mode)
		seedLogUniform(d, "q", 10000, 1000, 7)
		p0, ok0 := d.Predict(qj("q", 0), 0)
		p1, ok1 := d.Predict(qj("q", 0), 500)
		p2, ok2 := d.Predict(qj("q", 0), 5000)
		if !ok0 || !ok1 || !ok2 {
			t.Fatalf("mode %v: predictions failed", mode)
		}
		if !(p0 < p1 && p1 < p2) {
			t.Fatalf("mode %v: conditional estimate should grow with age: %d, %d, %d",
				mode, p0, p1, p2)
		}
		// A conditional estimate never falls below the current age.
		if p2 < 5000 {
			t.Fatalf("mode %v: estimate %d below age 5000", mode, p2)
		}
	}
}

func TestMedianFormula(t *testing.T) {
	// With a perfectly fitted model, conditional median = sqrt(a·tmax).
	d := New(ConditionalMedian)
	seedLogUniform(d, "q", 10000, 5000, 11)
	a := int64(400)
	got, ok := d.Predict(qj("q", 0), a)
	if !ok {
		t.Fatal("no prediction")
	}
	want := math.Sqrt(float64(a) * 10000)
	if math.Abs(float64(got)-want) > want*0.3 {
		t.Fatalf("conditional median = %d, want ≈%.0f", got, want)
	}
}

func TestAgeBeyondTmax(t *testing.T) {
	d := New(ConditionalAverage)
	seedLogUniform(d, "q", 1000, 500, 13)
	got, ok := d.Predict(qj("q", 0), 1e9)
	if !ok || got < 1e9 {
		t.Fatalf("age beyond tmax: got %d, %v", got, ok)
	}
}

func TestQueueIsolation(t *testing.T) {
	d := New(ConditionalMedian)
	seedLogUniform(d, "short", 100, 500, 17)
	seedLogUniform(d, "long", 100000, 500, 19)
	s, _ := d.Predict(qj("short", 0), 0)
	l, _ := d.Predict(qj("long", 0), 0)
	if s >= l {
		t.Fatalf("queue distributions leaked: short=%d long=%d", s, l)
	}
}

func TestDegenerateIdenticalRuntimes(t *testing.T) {
	d := New(ConditionalMedian)
	for i := 0; i < 50; i++ {
		d.Observe(qj("q", 600))
	}
	// All-identical run times give a degenerate (vertical) CDF in ln t;
	// the regression cannot fit and the predictor must decline, not panic.
	if _, ok := d.Predict(qj("q", 0), 0); ok {
		t.Log("degenerate category still predicted (acceptable if positive)")
	}
}

func TestRefitPicksUpNewData(t *testing.T) {
	d := New(ConditionalMedian)
	seedLogUniform(d, "q", 100, 200, 23)
	before, _ := d.Predict(qj("q", 0), 0)
	// Shift the distribution upward with many new long jobs.
	seedLogUniform(d, "q", 1e6, 2000, 29)
	after, ok := d.Predict(qj("q", 0), 0)
	if !ok || after <= before {
		t.Fatalf("fit not refreshed: before=%d after=%d", before, after)
	}
}

func TestNames(t *testing.T) {
	if New(ConditionalMedian).Name() != "downey-med" ||
		New(ConditionalAverage).Name() != "downey-avg" {
		t.Error("bad names")
	}
}
