// Package downey implements Downey's run-time predictor (Downey, IPPS 1997,
// as summarized in §2.2 of the reproduced paper), the second baseline.
//
// Downey categorizes applications by submission queue, models the cumulative
// distribution of run times in each category with the log-linear form
//
//	F(t) = β0 + β1·ln t,
//
// and predicts from the fitted distribution conditioned on the job's current
// age a:
//
//	conditional median  = sqrt(a · e^((1.0−β0)/β1))
//	conditional average = (tmax − a) / (ln tmax − ln a),  tmax = e^((1.0−β0)/β1)
//
// For a queued job (a = 0) the formulas are evaluated at a = 1 second, which
// reduces them to the unconditional median sqrt(tmax) and the unconditional
// mean of the fitted log-uniform distribution, (tmax−1)/ln tmax.
package downey

import (
	"math"
	"sort"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Mode selects between Downey's two estimators.
type Mode int

const (
	// ConditionalMedian is the median lifetime estimator (Table 9 / 15).
	ConditionalMedian Mode = iota
	// ConditionalAverage is the average lifetime estimator (Table 8 / 14).
	ConditionalAverage
)

// minPoints is the fewest completed jobs a category needs before its
// distribution fit is considered valid.
const minPoints = 8

// refitInterval controls how stale a cached fit may get: a category refits
// after this many new observations (or on first use).
const refitInterval = 32

// category models one queue's run-time distribution.
type category struct {
	runTimes []float64
	sinceFit int
	fitted   bool
	beta0    float64
	beta1    float64
	tmax     float64
	valid    bool
}

func (c *category) add(rt float64) {
	c.runTimes = append(c.runTimes, rt)
	c.sinceFit++
}

// fit regresses the empirical CDF against ln t. The fit is cached and
// refreshed every refitInterval observations.
func (c *category) fit() {
	if c.fitted && c.sinceFit < refitInterval {
		return
	}
	c.fitted = true
	c.sinceFit = 0
	c.valid = false
	n := len(c.runTimes)
	if n < minPoints {
		return
	}
	sorted := append([]float64(nil), c.runTimes...)
	sort.Float64s(sorted)
	xs := make([]float64, 0, n)
	ys := make([]float64, 0, n)
	for i, t := range sorted {
		if t < 1 {
			t = 1
		}
		xs = append(xs, math.Log(t))
		ys = append(ys, (float64(i)+0.5)/float64(n))
	}
	r, err := stats.FitLinear(xs, ys)
	if err != nil || r.Slope <= 0 {
		// A non-increasing CDF fit means the category is degenerate
		// (e.g. all identical run times); no valid prediction.
		return
	}
	c.beta0 = r.Intercept
	c.beta1 = r.Slope
	c.tmax = math.Exp((1.0 - c.beta0) / c.beta1)
	if math.IsInf(c.tmax, 0) || math.IsNaN(c.tmax) || c.tmax < 1 {
		return
	}
	c.valid = true
}

// predict evaluates the conditional estimator at age a.
func (c *category) predict(mode Mode, age int64) (float64, bool) {
	c.fit()
	if !c.valid {
		return 0, false
	}
	a := float64(age)
	if a < 1 {
		a = 1
	}
	if a >= c.tmax {
		// The job has outlived the fitted distribution; the best the model
		// can say is "it ends imminently".
		return a + 1, true
	}
	switch mode {
	case ConditionalMedian:
		return math.Sqrt(a * c.tmax), true
	case ConditionalAverage:
		den := math.Log(c.tmax) - math.Log(a)
		if den <= 0 {
			return 0, false
		}
		return (c.tmax - a) / den, true
	}
	return 0, false
}

// Predictor implements Downey's technique for one estimator mode.
type Predictor struct {
	mode Mode
	cats map[string]*category
}

// New creates an empty Downey predictor with the given mode.
func New(mode Mode) *Predictor {
	return &Predictor{mode: mode, cats: make(map[string]*category)}
}

// Name implements predict.Predictor.
func (d *Predictor) Name() string {
	if d.mode == ConditionalMedian {
		return "downey-med"
	}
	return "downey-avg"
}

// key categorizes by queue; traces without queues share one category,
// matching Downey's note that other characteristics could be used.
func key(j *workload.Job) string { return j.Queue }

// Predict implements predict.Predictor.
func (d *Predictor) Predict(j *workload.Job, age int64) (int64, bool) {
	c, ok := d.cats[key(j)]
	if !ok {
		return 0, false
	}
	v, ok := c.predict(d.mode, age)
	if !ok || v <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return 0, false
	}
	r := int64(math.Round(v))
	if r < 1 {
		r = 1
	}
	return r, true
}

// Observe implements predict.Predictor.
func (d *Predictor) Observe(j *workload.Job) {
	c, ok := d.cats[key(j)]
	if !ok {
		c = &category{}
		d.cats[key(j)] = c
	}
	c.add(float64(j.RunTime))
}

// Static checks.
var _ predict.Predictor = (*Predictor)(nil)
