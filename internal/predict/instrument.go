package predict

import (
	"time"

	"repro/internal/obs"
	"repro/internal/workload"
)

// Instrumented wraps a Predictor and records its traffic into an obs
// registry: counters predict.<name>.predictions / .misses / .observations,
// latency histograms predict.<name>.predict_seconds and .observe_seconds,
// and — when the wrapped predictor exposes them — gauges
// predict.<name>.categories and predict.<name>.history_size.
//
// Instrumented adds no synchronization: it is exactly as concurrency-safe
// as the predictor it wraps (the obs primitives themselves are atomic).
type Instrumented struct {
	inner Predictor

	predictions  *obs.Counter
	misses       *obs.Counter
	observations *obs.Counter
	predictLat   *obs.Histogram
	observeLat   *obs.Histogram
	categories   *obs.Gauge
	historySize  *obs.Gauge
}

// categoryCounter is implemented by predictors that can report how many
// categories they currently store (core.Predictor does).
type categoryCounter interface{ Categories() int }

// historySizer is implemented by predictors that can report their stored
// data-point count (core.Predictor does).
type historySizer interface{ HistorySize() int }

// Instrument wraps p so its predictions and observations are measured into
// reg, under the metric prefix predict.<p.Name()>.
func Instrument(p Predictor, reg *obs.Registry) *Instrumented {
	prefix := "predict." + p.Name() + "."
	return &Instrumented{
		inner:        p,
		predictions:  reg.Counter(prefix + "predictions"),
		misses:       reg.Counter(prefix + "misses"),
		observations: reg.Counter(prefix + "observations"),
		predictLat:   reg.Histogram(prefix + "predict_seconds"),
		observeLat:   reg.Histogram(prefix + "observe_seconds"),
		categories:   reg.Gauge(prefix + "categories"),
		historySize:  reg.Gauge(prefix + "history_size"),
	}
}

// Name implements Predictor, delegating to the wrapped predictor.
func (i *Instrumented) Name() string { return i.inner.Name() }

// Predict implements Predictor, timing the inner call and tallying misses.
func (i *Instrumented) Predict(j *workload.Job, age int64) (int64, bool) {
	start := time.Now() //lint:allow wallclock measures real predictor latency, never fed back into results
	sec, ok := i.inner.Predict(j, age)
	i.predictLat.Observe(time.Since(start).Seconds()) //lint:allow wallclock measures real predictor latency, never fed back into results
	i.predictions.Inc()
	if !ok {
		i.misses.Inc()
	}
	return sec, ok
}

// Observe implements Predictor, timing the inner call and refreshing the
// category/history gauges when the wrapped predictor exposes them.
func (i *Instrumented) Observe(j *workload.Job) {
	start := time.Now() //lint:allow wallclock measures real observation latency, never fed back into results
	i.inner.Observe(j)
	i.observeLat.Observe(time.Since(start).Seconds()) //lint:allow wallclock measures real observation latency, never fed back into results
	i.observations.Inc()
	if c, ok := i.inner.(categoryCounter); ok {
		i.categories.SetInt(int64(c.Categories()))
	}
	if h, ok := i.inner.(historySizer); ok {
		i.historySize.SetInt(int64(h.HistorySize()))
	}
}

// Unwrap returns the wrapped predictor (for tests and type probes).
func (i *Instrumented) Unwrap() Predictor { return i.inner }

// Static check.
var _ Predictor = (*Instrumented)(nil)
