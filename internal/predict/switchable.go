package predict

import (
	"sync/atomic"

	"repro/internal/workload"
)

// Switchable is a Predictor whose implementation can be replaced while
// serving: the re-selection controller (internal/obs/accuracy) swaps in
// the shadow-scoreboard winner when drift is confirmed. Reads are one
// atomic pointer load — the predict hot path never sees a lock — and a
// swap is one pointer store, so a prediction in flight finishes on the
// predictor it started with.
type Switchable struct {
	cur atomic.Pointer[switchBox]
}

// switchBox wraps the interface value so the atomic pointer always
// stores one concrete type regardless of which Predictor is installed.
type switchBox struct {
	p Predictor
}

// NewSwitchable starts serving p.
func NewSwitchable(p Predictor) *Switchable {
	s := &Switchable{}
	s.cur.Store(&switchBox{p: p})
	return s
}

// Use atomically replaces the serving predictor.
func (s *Switchable) Use(p Predictor) {
	s.cur.Store(&switchBox{p: p})
}

// Current returns the serving predictor.
func (s *Switchable) Current() Predictor {
	return s.cur.Load().p
}

// Name reports the serving predictor's name; it changes across a switch.
func (s *Switchable) Name() string { return s.Current().Name() }

// Predict delegates to the serving predictor: one atomic pointer load,
// then whatever the installed predictor costs.
func (s *Switchable) Predict(j *workload.Job, age int64) (int64, bool) {
	return s.Current().Predict(j, age)
}

// Observe delegates to the serving predictor. Under a re-selection
// controller this is not called — the controller observes the whole
// stable itself so shadow members keep learning — but a bare Switchable
// remains a complete Predictor.
func (s *Switchable) Observe(j *workload.Job) {
	s.Current().Observe(j)
}
