package predict

import (
	"testing"

	"repro/internal/workload"
)

func uj(user string, rt int64) *workload.Job {
	return &workload.Job{User: user, Nodes: 1, RunTime: rt}
}

func TestRecentUserMeanBasics(t *testing.T) {
	p := NewRecentUserMean(2)
	if _, ok := p.Predict(uj("a", 0), 0); ok {
		t.Fatal("no history: must not predict")
	}
	p.Observe(uj("a", 100))
	got, ok := p.Predict(uj("a", 0), 0)
	if !ok || got != 100 {
		t.Fatalf("one observation: %d, %v", got, ok)
	}
	p.Observe(uj("a", 300))
	if got, _ := p.Predict(uj("a", 0), 0); got != 200 {
		t.Fatalf("last-2 mean = %d, want 200", got)
	}
	// Third observation evicts the first.
	p.Observe(uj("a", 500))
	if got, _ := p.Predict(uj("a", 0), 0); got != 400 {
		t.Fatalf("ring mean = %d, want (300+500)/2", got)
	}
}

func TestRecentUserMeanIsolatesUsers(t *testing.T) {
	p := NewRecentUserMean(0) // default K
	p.Observe(uj("a", 100))
	p.Observe(uj("b", 9000))
	if got, _ := p.Predict(uj("a", 0), 0); got != 100 {
		t.Fatalf("user a = %d", got)
	}
	if _, ok := p.Predict(uj("c", 0), 0); ok {
		t.Fatal("unknown user predicted")
	}
}

func TestRecentUserMeanLongRing(t *testing.T) {
	p := NewRecentUserMean(4)
	for _, v := range []int64{10, 20, 30, 40, 50, 60} {
		p.Observe(uj("a", v))
	}
	// Ring holds {30,40,50,60}.
	if got, _ := p.Predict(uj("a", 0), 0); got != 45 {
		t.Fatalf("ring-4 mean = %d, want 45", got)
	}
}

// On the repetitive synthetic workloads, last-2-per-user is decent but the
// template predictor (which can split per executable and use relative run
// times) should beat it.
func TestRecentUserMeanVsTemplates(t *testing.T) {
	w, err := workload.Study("ANL", 20, 77)
	if err != nil {
		t.Fatal(err)
	}
	recent := NewRecentUserMean(2)
	var recentErr, maxErr float64
	var n int
	for _, j := range w.Jobs {
		if est, ok := recent.Predict(j, 0); ok {
			d := float64(est - j.RunTime)
			if d < 0 {
				d = -d
			}
			recentErr += d
			d = float64(j.MaxRunTime - j.RunTime)
			if d < 0 {
				d = -d
			}
			maxErr += d
			n++
		}
		recent.Observe(j)
	}
	if n == 0 {
		t.Fatal("no predictions")
	}
	if recentErr >= maxErr {
		t.Fatalf("recent-user (%.0f) should beat maxrt (%.0f) on repetitive load",
			recentErr/float64(n), maxErr/float64(n))
	}
}
