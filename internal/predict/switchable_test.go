package predict

import (
	"testing"

	"repro/internal/workload"
)

func TestSwitchableDelegatesAndSwaps(t *testing.T) {
	sw := NewSwitchable(MaxRuntime{})
	j := &workload.Job{RunTime: 123, MaxRunTime: 600}
	if sw.Name() != "maxrt" {
		t.Fatalf("Name = %q, want maxrt", sw.Name())
	}
	if got, ok := sw.Predict(j, 0); !ok || got != 600 {
		t.Fatalf("Predict = %d,%v, want 600,true", got, ok)
	}

	sw.Use(Oracle{})
	if sw.Name() != "actual" {
		t.Fatalf("Name after Use = %q, want actual", sw.Name())
	}
	if got, ok := sw.Predict(j, 0); !ok || got != 123 {
		t.Fatalf("Predict after Use = %d,%v, want 123,true", got, ok)
	}
	if _, ok := sw.Current().(Oracle); !ok {
		t.Fatalf("Current = %T, want Oracle", sw.Current())
	}
}

func TestSwitchableObserveDelegates(t *testing.T) {
	m := &RunningMean{}
	sw := NewSwitchable(m)
	sw.Observe(&workload.Job{RunTime: 50})
	if got, ok := sw.Predict(&workload.Job{}, 0); !ok || got != 50 {
		t.Fatalf("mean after observe = %d,%v, want 50,true", got, ok)
	}
}
