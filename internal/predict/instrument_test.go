package predict

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/workload"
)

// countingPred is a minimal predictor that also reports category/history
// sizes, standing in for core.Predictor without an import cycle.
type countingPred struct {
	observed int
}

func (p *countingPred) Name() string { return "counting" }
func (p *countingPred) Predict(j *workload.Job, age int64) (int64, bool) {
	if p.observed == 0 {
		return 0, false
	}
	return 100, true
}
func (p *countingPred) Observe(j *workload.Job) { p.observed++ }
func (p *countingPred) Categories() int         { return p.observed * 2 }
func (p *countingPred) HistorySize() int        { return p.observed * 3 }

func TestInstrumentCountsAndGauges(t *testing.T) {
	reg := obs.NewRegistry()
	inner := &countingPred{}
	p := Instrument(inner, reg)
	if p.Name() != "counting" {
		t.Fatalf("name = %q", p.Name())
	}
	if p.Unwrap() != inner {
		t.Fatal("Unwrap should return the wrapped predictor")
	}

	j := &workload.Job{ID: 1, Nodes: 4, RunTime: 100}
	if _, ok := p.Predict(j, 0); ok {
		t.Fatal("empty predictor should miss")
	}
	p.Observe(j)
	p.Observe(j)
	if sec, ok := p.Predict(j, 0); !ok || sec != 100 {
		t.Fatalf("predict = %d, %v", sec, ok)
	}

	s := reg.Snapshot()
	if got := s.Counters["predict.counting.predictions"]; got != 2 {
		t.Fatalf("predictions = %d, want 2", got)
	}
	if got := s.Counters["predict.counting.misses"]; got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if got := s.Counters["predict.counting.observations"]; got != 2 {
		t.Fatalf("observations = %d, want 2", got)
	}
	if got := s.Gauges["predict.counting.categories"]; got != 4 {
		t.Fatalf("categories gauge = %g, want 4", got)
	}
	if got := s.Gauges["predict.counting.history_size"]; got != 6 {
		t.Fatalf("history gauge = %g, want 6", got)
	}
	if s.Histograms["predict.counting.predict_seconds"].Count != 2 ||
		s.Histograms["predict.counting.observe_seconds"].Count != 2 {
		t.Fatalf("latency histograms = %+v", s.Histograms)
	}
}

// TestInstrumentPlainPredictor: wrapping a predictor without the size
// interfaces leaves the gauges untouched but still counts traffic.
func TestInstrumentPlainPredictor(t *testing.T) {
	reg := obs.NewRegistry()
	p := Instrument(MaxRuntime{}, reg)
	j := &workload.Job{ID: 1, Nodes: 1, MaxRunTime: 500}
	p.Observe(j)
	if sec, ok := p.Predict(j, 0); !ok || sec != 500 {
		t.Fatalf("predict = %d, %v", sec, ok)
	}
	s := reg.Snapshot()
	if s.Counters["predict.maxrt.predictions"] != 1 ||
		s.Counters["predict.maxrt.observations"] != 1 {
		t.Fatalf("counters = %+v", s.Counters)
	}
	if s.Gauges["predict.maxrt.categories"] != 0 {
		t.Fatalf("categories gauge = %g, want 0", s.Gauges["predict.maxrt.categories"])
	}
}
