package predict

import (
	"fmt"
	"math"

	"repro/internal/workload"
)

// Noisy wraps a predictor and injects controlled multiplicative error into
// its predictions — the instrument of the price-of-misprediction regret
// experiment (Mitzenmacher, arXiv 1902.00732): scheduler and admission
// decisions are driven through a predictor whose error scale and sign bias
// are knobs, so regret can be measured as a function of prediction quality
// instead of being tied to whatever error a particular history happens to
// produce.
//
// Each job's noise factor is a pure function of (Seed, job ID): the same
// job always gets the same distortion within a run, as a real systematic
// mispredictor would produce, and the whole experiment stays bit-for-bit
// reproducible without any global randomness.
type Noisy struct {
	// Inner supplies the base predictions (and receives Observe calls).
	Inner Predictor
	// Scale is the error magnitude: each prediction is multiplied by
	// exp(Scale × u) with u uniform in [-1, 1), so Scale 0 is the identity
	// and Scale 1 distorts predictions by up to e^±1 ≈ 2.7×.
	Scale float64
	// Bias shifts the noise: u is drawn from [Bias-1, Bias+1), so Bias +1
	// only over-predicts and Bias -1 only under-predicts — the asymmetric
	// cases whose costs TARE (arXiv 2607.04935) argues are what schedulers
	// actually pay.
	Bias float64
	// Seed decorrelates replicates.
	Seed int64
}

// Name implements Predictor.
func (n Noisy) Name() string {
	return fmt.Sprintf("%s+err(%.2g,%+.2g)", n.Inner.Name(), n.Scale, n.Bias)
}

// Predict returns the inner prediction distorted by the job's noise factor.
// The result is clamped to at least 1 second so a valid prediction stays
// valid.
func (n Noisy) Predict(j *workload.Job, age int64) (int64, bool) {
	sec, ok := n.Inner.Predict(j, age)
	if !ok || n.Scale == 0 { //lint:allow floatcmp Scale==0 is the exact identity configuration, not a computed value
		return sec, ok
	}
	u := unitNoise(uint64(n.Seed), uint64(j.ID)) // [0,1)
	f := math.Exp(n.Scale * (n.Bias + 2*u - 1))
	out := int64(math.Round(float64(sec) * f))
	if out < 1 {
		out = 1
	}
	return out, true
}

// Observe forwards to the inner predictor: the history stays truthful,
// only the read side is distorted.
func (n Noisy) Observe(j *workload.Job) { n.Inner.Observe(j) }

// unitNoise hashes (seed, id) into [0, 1) with a splitmix64 finalizer — a
// tiny, allocation-free, deterministic source that keeps math/rand (and
// the detrand lint it would trip) out of the predictor.
func unitNoise(seed, id uint64) float64 {
	x := seed ^ (id+1)*0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / (1 << 53)
}

// Static check.
var _ Predictor = Noisy{}
