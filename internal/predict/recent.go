package predict

import (
	"repro/internal/workload"
)

// RecentUserMean predicts a job's run time as the mean of the submitting
// user's last K completed run times. This is the family of estimators the
// later backfilling literature converged on (Tsafrir, Etsion & Feitelson's
// "last-2 average" being the famous instance) and serves here as the
// simplest competitive baseline for the template predictor: it is the
// degenerate template (u) with MaxHistory = K and a mean prediction,
// without confidence-interval selection.
type RecentUserMean struct {
	// K bounds the per-user history (0 means DefaultRecentK).
	K    int
	hist map[string]*userRing
}

// DefaultRecentK is the history bound when K is zero (the literature's
// "last 2").
const DefaultRecentK = 2

// userRing is a fixed-size ring of run times with running sum.
type userRing struct {
	vals []int64
	head int
	full bool
	sum  int64
}

func (r *userRing) add(v int64, k int) {
	if len(r.vals) < k {
		r.vals = append(r.vals, v)
		r.sum += v
		return
	}
	r.sum += v - r.vals[r.head]
	r.vals[r.head] = v
	r.head = (r.head + 1) % k
	r.full = true
}

// NewRecentUserMean creates the predictor with history bound k
// (0 = DefaultRecentK).
func NewRecentUserMean(k int) *RecentUserMean {
	if k <= 0 {
		k = DefaultRecentK
	}
	return &RecentUserMean{K: k, hist: make(map[string]*userRing)}
}

// Name implements Predictor.
func (p *RecentUserMean) Name() string { return "recent-user" }

// Predict implements Predictor.
func (p *RecentUserMean) Predict(j *workload.Job, age int64) (int64, bool) {
	r, ok := p.hist[j.User]
	if !ok || len(r.vals) == 0 {
		return 0, false
	}
	est := r.sum / int64(len(r.vals))
	if est < 1 {
		est = 1
	}
	return est, true
}

// Observe implements Predictor.
func (p *RecentUserMean) Observe(j *workload.Job) {
	r, ok := p.hist[j.User]
	if !ok {
		r = &userRing{}
		p.hist[j.User] = r
	}
	k := p.K
	if k <= 0 {
		k = DefaultRecentK
	}
	r.add(j.RunTime, k)
}

// Static check.
var _ Predictor = (*RecentUserMean)(nil)
