package predict

import (
	"testing"

	"repro/internal/workload"
)

func TestOracle(t *testing.T) {
	j := &workload.Job{RunTime: 1234, MaxRunTime: 9999}
	got, ok := Oracle{}.Predict(j, 0)
	if !ok || got != 1234 {
		t.Fatalf("Predict = %d, %v", got, ok)
	}
	got, ok = Oracle{}.Predict(j, 500)
	if !ok || got != 1234 {
		t.Fatalf("Predict with age = %d, %v", got, ok)
	}
	Oracle{}.Observe(j) // must not panic
}

func TestMaxRuntime(t *testing.T) {
	j := &workload.Job{RunTime: 100, MaxRunTime: 3600}
	got, ok := MaxRuntime{}.Predict(j, 0)
	if !ok || got != 3600 {
		t.Fatalf("Predict = %d, %v", got, ok)
	}
	if _, ok := (MaxRuntime{}).Predict(&workload.Job{RunTime: 100}, 0); ok {
		t.Fatal("job without max run time should not predict")
	}
}

func TestRunningMean(t *testing.T) {
	var m RunningMean
	if _, ok := m.Predict(nil, 0); ok {
		t.Fatal("empty history should not predict")
	}
	m.Observe(&workload.Job{RunTime: 100})
	m.Observe(&workload.Job{RunTime: 300})
	got, ok := m.Predict(nil, 0)
	if !ok || got != 200 {
		t.Fatalf("Predict = %d, %v", got, ok)
	}
}

func TestEstimateFallbacks(t *testing.T) {
	var m RunningMean // empty: cannot predict
	// Falls back to max run time.
	j := &workload.Job{RunTime: 50, MaxRunTime: 500}
	if got := Estimate(&m, j, 0, 999); got != 500 {
		t.Errorf("fallback to maxRT = %d, want 500", got)
	}
	// Falls back to the default when no max run time exists.
	j2 := &workload.Job{RunTime: 50}
	if got := Estimate(&m, j2, 0, 999); got != 999 {
		t.Errorf("fallback to default = %d, want 999", got)
	}
}

func TestEstimateClampsToMaxRT(t *testing.T) {
	m := RunningMean{}
	m.Observe(&workload.Job{RunTime: 10000})
	j := &workload.Job{RunTime: 100, MaxRunTime: 600}
	if got := Estimate(&m, j, 0, 999); got != 600 {
		t.Errorf("estimate above max run time should clamp: got %d", got)
	}
}

func TestEstimateOutlivedFallsBack(t *testing.T) {
	// A job that has run 1000s has outlived a 100s estimate: the estimate
	// is invalid, and the fallback chain applies.
	m := RunningMean{}
	m.Observe(&workload.Job{RunTime: 100})
	// With a maximum run time: fall back to it.
	withMax := &workload.Job{RunTime: 2000, MaxRunTime: 3000}
	if got := Estimate(&m, withMax, 1000, 999); got != 3000 {
		t.Errorf("outlived estimate should fall back to maxRT: got %d", got)
	}
	// Without one, and with the default also outlived: double the age.
	noMax := &workload.Job{RunTime: 2000}
	if got := Estimate(&m, noMax, 1000, 999); got != 2002 {
		t.Errorf("outlived estimate without maxRT should double the age: got %d", got)
	}
	// Default still ahead of the age: use it.
	if got := Estimate(&m, noMax, 1000, 5000); got != 5000 {
		t.Errorf("default above age should be used: got %d", got)
	}
}

func TestEstimateAgeBeyondMaxRT(t *testing.T) {
	// Degenerate but must stay sane: age beyond the job's limit.
	j := &workload.Job{RunTime: 2000, MaxRunTime: 600}
	if got := Estimate(Oracle{}, j, 700, 999); got != 701 {
		t.Errorf("got %d, want age+1=701", got)
	}
}

func TestNames(t *testing.T) {
	if (Oracle{}).Name() != "actual" || (MaxRuntime{}).Name() != "maxrt" {
		t.Error("unexpected names")
	}
	var m RunningMean
	if m.Name() != "globalmean" {
		t.Error("unexpected RunningMean name")
	}
}
