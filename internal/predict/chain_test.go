package predict

import (
	"testing"

	"repro/internal/workload"
)

func TestChainFallbackOrder(t *testing.T) {
	var mean RunningMean
	c := NewChain(&mean, MaxRuntime{})
	j := &workload.Job{RunTime: 100, MaxRunTime: 900}
	// Empty mean: falls through to maxrt.
	got, ok := c.Predict(j, 0)
	if !ok || got != 900 {
		t.Fatalf("fallback = %d, %v", got, ok)
	}
	// After observations the mean takes precedence.
	c.Observe(&workload.Job{RunTime: 100})
	c.Observe(&workload.Job{RunTime: 300})
	got, ok = c.Predict(j, 0)
	if !ok || got != 200 {
		t.Fatalf("primary = %d, %v", got, ok)
	}
}

func TestChainObserveFeedsAll(t *testing.T) {
	var a, b RunningMean
	c := NewChain(&a, &b)
	c.Observe(&workload.Job{RunTime: 500})
	if a.n != 1 || b.n != 1 {
		t.Fatalf("observations not propagated: %d, %d", a.n, b.n)
	}
}

func TestChainName(t *testing.T) {
	c := NewChain(Oracle{}, MaxRuntime{})
	if c.Name() != "actual>maxrt" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestChainFlattensAndSkipsNil(t *testing.T) {
	inner := NewChain(Oracle{})
	c := NewChain(nil, inner, MaxRuntime{})
	if len(c) != 2 {
		t.Fatalf("chain length = %d, want 2", len(c))
	}
}

func TestChainEmpty(t *testing.T) {
	c := NewChain()
	if _, ok := c.Predict(&workload.Job{RunTime: 1}, 0); ok {
		t.Fatal("empty chain predicted")
	}
	c.Observe(&workload.Job{RunTime: 1}) // must not panic
}
