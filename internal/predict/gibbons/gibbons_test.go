package gibbons

import (
	"math"
	"testing"

	"repro/internal/workload"
)

func gj(user, exec string, nodes int, rt int64) *workload.Job {
	return &workload.Job{User: user, Executable: exec, Nodes: nodes, RunTime: rt}
}

func TestNodeBucket(t *testing.T) {
	// Gibbons's exponential ranges: 1 | 2-3 | 4-7 | 8-15 | ...
	cases := []struct{ nodes, want int }{
		{1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3}, {15, 3}, {16, 4}, {512, 9},
	}
	for _, c := range cases {
		if got := nodeBucket(c.nodes); got != c.want {
			t.Errorf("nodeBucket(%d) = %d, want %d", c.nodes, got, c.want)
		}
	}
	if nodeBucket(0) != 0 {
		t.Error("degenerate node count should land in bucket 0")
	}
}

func TestChainOrder(t *testing.T) {
	g := New()
	// Seed (u,e,n,rtime): alice ran a.out on 4 nodes (bucket 2).
	g.Observe(gj("alice", "a.out", 4, 100))
	g.Observe(gj("alice", "a.out", 4, 200))
	// Template 1 hit: same user, exec, bucket.
	got, ok := g.Predict(gj("alice", "a.out", 5, 0), 0)
	if !ok || got != 150 {
		t.Fatalf("(u,e,n,rtime) mean = %d, %v; want 150", got, ok)
	}
	// Different bucket (32 → bucket 5): falls through to (u,e) regression,
	// which with one subcategory degenerates to the weighted mean 150.
	got, ok = g.Predict(gj("alice", "a.out", 32, 0), 0)
	if !ok || got != 150 {
		t.Fatalf("(u,e) fallback = %d, %v; want 150", got, ok)
	}
	// Different user, same exec: template 3 hit.
	got, ok = g.Predict(gj("bob", "a.out", 4, 0), 0)
	if !ok || got != 150 {
		t.Fatalf("(e,n,rtime) mean = %d, %v; want 150", got, ok)
	}
	// Different user and exec, same bucket: template 5 hit.
	got, ok = g.Predict(gj("bob", "b.out", 4, 0), 0)
	if !ok || got != 150 {
		t.Fatalf("(n,rtime) mean = %d, %v; want 150", got, ok)
	}
	// Nothing matches node bucket but history exists: template 6.
	got, ok = g.Predict(gj("bob", "b.out", 64, 0), 0)
	if !ok || got <= 0 {
		t.Fatalf("() regression = %d, %v", got, ok)
	}
}

func TestEmptyPredictor(t *testing.T) {
	g := New()
	if _, ok := g.Predict(gj("alice", "a.out", 4, 0), 0); ok {
		t.Fatal("empty history must not predict")
	}
}

func TestRtimeConditioning(t *testing.T) {
	g := New()
	for i := 0; i < 5; i++ {
		g.Observe(gj("alice", "a.out", 4, 60))
	}
	g.Observe(gj("alice", "a.out", 4, 3600))
	g.Observe(gj("alice", "a.out", 4, 3600))
	// Unconditioned mean is pulled down by the short runs.
	got0, _ := g.Predict(gj("alice", "a.out", 4, 0), 0)
	if got0 >= 3600 {
		t.Fatalf("unconditioned mean = %d", got0)
	}
	// After surviving 10 minutes, only the hour-long runs remain.
	got, ok := g.Predict(gj("alice", "a.out", 4, 0), 600)
	if !ok || got != 3600 {
		t.Fatalf("conditioned mean = %d, %v; want 3600", got, ok)
	}
}

func TestWeightedRegressionAcrossBuckets(t *testing.T) {
	g := New()
	// alice/a.out scales linearly with nodes: rt = 100·n, consistent within
	// each bucket (variance ~0 → weight boosted via the 1-second floor).
	for _, n := range []int{1, 2, 4, 8} {
		for k := 0; k < 3; k++ {
			g.Observe(gj("alice", "a.out", n, int64(100*n)))
		}
	}
	// A bucket with no direct history (32 nodes → bucket 5) uses the (u,e)
	// regression: expect ≈ 3200.
	got, ok := g.Predict(gj("alice", "a.out", 32, 0), 0)
	if !ok {
		t.Fatal("regression failed")
	}
	if math.Abs(float64(got)-3200) > 320 {
		t.Fatalf("regression extrapolation = %d, want ≈3200", got)
	}
}

func TestRegressionWeightsFavorLowVariance(t *testing.T) {
	g := New()
	// Low-variance subcategory at n=1: rt ≈ 100.
	for _, rt := range []int64{99, 100, 101} {
		g.Observe(gj("alice", "a.out", 1, rt))
	}
	// High-variance subcategory at n=8: wildly scattered around 5000.
	for _, rt := range []int64{100, 5000, 9900} {
		g.Observe(gj("alice", "a.out", 8, rt))
	}
	// Prediction at n=1 via regression (bucket 0 has direct history, so ask
	// at n=2/bucket 1 to force template 2).
	got, ok := g.Predict(gj("alice", "a.out", 2, 0), 0)
	if !ok {
		t.Fatal("no prediction")
	}
	// The regression should pass near the tight subcategory's point
	// (100 at n=1) rather than splitting the difference equally.
	if got > 2500 {
		t.Fatalf("prediction %d ignores inverse-variance weighting", got)
	}
}

func TestWorksWithoutExecutable(t *testing.T) {
	// SDSC-style jobs have no executable: (u,e) degenerates to (u).
	g := New()
	j1 := &workload.Job{User: "alice", Nodes: 4, RunTime: 500}
	g.Observe(j1)
	g.Observe(j1)
	got, ok := g.Predict(&workload.Job{User: "alice", Nodes: 4}, 0)
	if !ok || got != 500 {
		t.Fatalf("predict without exec = %d, %v", got, ok)
	}
}

func TestPredictionsArePositive(t *testing.T) {
	g := New()
	// Steeply decreasing run time with nodes could extrapolate negative;
	// the chain must never return a nonpositive prediction.
	for _, n := range []int{1, 2, 4} {
		g.Observe(gj("alice", "a.out", n, int64(1000-240*n)))
	}
	if got, ok := g.Predict(gj("alice", "a.out", 64, 0), 0); ok && got < 1 {
		t.Fatalf("nonpositive prediction %d", got)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "gibbons" {
		t.Error("bad name")
	}
}
