// Package gibbons implements Gibbons's historical run-time predictor
// (Gibbons 1997, as summarized in §2.2 of the reproduced paper), the first
// baseline the paper compares against.
//
// Gibbons uses the fixed template/predictor chain of the paper's Table 3:
//
//  1. (u,e,n,rtime)  mean
//  2. (u,e)          linear regression
//  3. (e,n,rtime)    mean
//  4. (e)            linear regression
//  5. (n,rtime)      mean
//  6. ()             linear regression
//
// Categories are examined in that order until one can provide a valid
// prediction. Node counts use the fixed exponential ranges 1, 2–3, 4–7,
// 8–15, … (unlike the paper's tunable equal-width ranges). The rtime
// attribute conditions a mean on how long the application has already been
// executing: only historical points that ran longer contribute. The linear
// regressions at (u,e), (e), and () are weighted regressions over the
// (mean nodes, mean run time) of each node-range subcategory, each pair
// weighted by the inverse of the run-time variance of its subcategory.
package gibbons

import (
	"math"
	"math/bits"

	"repro/internal/predict"
	"repro/internal/stats"
	"repro/internal/workload"
)

// point is one completed job.
type point struct {
	runTime float64
	nodes   float64
}

// subcat is the node-range subcategory holding raw points.
type subcat struct {
	points []point
}

func (s *subcat) add(p point) { s.points = append(s.points, p) }

// meanWithAge returns the mean run time over points that ran longer than
// age, with the count used.
func (s *subcat) meanWithAge(age int64) (float64, int) {
	var sum float64
	var n int
	for _, p := range s.points {
		if age > 0 && p.runTime <= float64(age) {
			continue
		}
		sum += p.runTime
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), n
}

// moments returns the subcategory's mean nodes, mean run time, run-time
// variance, and size (unconditioned — the regression templates of Table 3
// carry no rtime attribute).
func (s *subcat) moments() (meanNodes, meanRT, varRT float64, n int) {
	n = len(s.points)
	if n == 0 {
		return 0, 0, 0, 0
	}
	for _, p := range s.points {
		meanNodes += p.nodes
		meanRT += p.runTime
	}
	meanNodes /= float64(n)
	meanRT /= float64(n)
	for _, p := range s.points {
		d := p.runTime - meanRT
		varRT += d * d
	}
	if n > 1 {
		varRT /= float64(n - 1)
	}
	return meanNodes, meanRT, varRT, n
}

// nodeBucket returns Gibbons's exponential node range index:
// 1 → 0, 2–3 → 1, 4–7 → 2, 8–15 → 3, …
func nodeBucket(nodes int) int {
	if nodes < 1 {
		nodes = 1
	}
	return bits.Len(uint(nodes)) - 1
}

// family is one of the three category families ((u,e), (e), ()), holding
// node-range subcategories per parent key.
type family struct {
	subs map[string]map[int]*subcat
}

func newFamily() *family { return &family{subs: make(map[string]map[int]*subcat)} }

func (f *family) add(key string, bucket int, p point) {
	m, ok := f.subs[key]
	if !ok {
		m = make(map[int]*subcat)
		f.subs[key] = m
	}
	s, ok := m[bucket]
	if !ok {
		s = &subcat{}
		m[bucket] = s
	}
	s.add(p)
}

// meanPredict is the (…,n,rtime) mean template over one subcategory.
func (f *family) meanPredict(key string, bucket int, age int64) (float64, bool) {
	m, ok := f.subs[key]
	if !ok {
		return 0, false
	}
	s, ok := m[bucket]
	if !ok {
		return 0, false
	}
	mean, n := s.meanWithAge(age)
	if n < 1 || mean <= 0 {
		return 0, false
	}
	return mean, true
}

// regressPredict is the parent-template weighted linear regression over the
// subcategory moments, evaluated at the job's node count.
func (f *family) regressPredict(key string, nodes int) (float64, bool) {
	m, ok := f.subs[key]
	if !ok {
		return 0, false
	}
	var xs, ys, ws []float64
	for _, s := range m {
		mn, mr, v, n := s.moments()
		if n == 0 {
			continue
		}
		if n < 2 || v <= 0 {
			// A degenerate subcategory still carries information; give it
			// the weight of a 1-second² variance rather than dropping it.
			v = 1
		}
		xs = append(xs, mn)
		ys = append(ys, mr)
		ws = append(ws, 1/v)
	}
	r, err := stats.FitWeightedLinear(xs, ys, ws)
	if err != nil {
		// Degenerate regressor (e.g. a single subcategory): fall back to
		// the weighted mean of the subcategory means, which is the best
		// the parent category can do.
		if len(ys) == 0 {
			return 0, false
		}
		var sw, swy float64
		for i := range ys {
			sw += ws[i]
			swy += ws[i] * ys[i]
		}
		mean := swy / sw
		if mean <= 0 {
			return 0, false
		}
		return mean, true
	}
	pred := r.Predict(float64(nodes))
	if pred <= 0 || math.IsNaN(pred) || math.IsInf(pred, 0) {
		return 0, false
	}
	return pred, true
}

// Predictor implements Gibbons's fixed-template chain.
type Predictor struct {
	ue  *family // keyed by user|executable
	e   *family // keyed by executable
	all *family // single key
}

// New creates an empty Gibbons predictor.
func New() *Predictor {
	return &Predictor{ue: newFamily(), e: newFamily(), all: newFamily()}
}

// Name implements predict.Predictor.
func (*Predictor) Name() string { return "gibbons" }

func ueKey(j *workload.Job) string { return j.User + "|" + j.Executable }
func eKey(j *workload.Job) string  { return j.Executable }

// Predict walks the Table-3 chain in order until a category provides a
// valid prediction.
func (g *Predictor) Predict(j *workload.Job, age int64) (int64, bool) {
	b := nodeBucket(j.Nodes)
	if v, ok := g.ue.meanPredict(ueKey(j), b, age); ok { // 1. (u,e,n,rtime)
		return round(v), true
	}
	if v, ok := g.ue.regressPredict(ueKey(j), j.Nodes); ok { // 2. (u,e)
		return round(v), true
	}
	if v, ok := g.e.meanPredict(eKey(j), b, age); ok { // 3. (e,n,rtime)
		return round(v), true
	}
	if v, ok := g.e.regressPredict(eKey(j), j.Nodes); ok { // 4. (e)
		return round(v), true
	}
	if v, ok := g.all.meanPredict("", b, age); ok { // 5. (n,rtime)
		return round(v), true
	}
	if v, ok := g.all.regressPredict("", j.Nodes); ok { // 6. ()
		return round(v), true
	}
	return 0, false
}

// Observe inserts the completed job into all three families.
func (g *Predictor) Observe(j *workload.Job) {
	p := point{runTime: float64(j.RunTime), nodes: float64(j.Nodes)}
	b := nodeBucket(j.Nodes)
	g.ue.add(ueKey(j), b, p)
	g.e.add(eKey(j), b, p)
	g.all.add("", b, p)
}

func round(v float64) int64 {
	r := int64(math.Round(v))
	if r < 1 {
		r = 1
	}
	return r
}

// Static check.
var _ predict.Predictor = (*Predictor)(nil)
