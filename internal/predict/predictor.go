// Package predict defines the run-time predictor interface shared by the
// schedulers, the queue wait-time predictor, and the experiment harness,
// together with the two reference predictors of the paper's evaluation:
// the oracle (actual run times, Tables 4 and 10) and user-supplied maximum
// run times (Tables 5 and 11, the EASY-scheduler convention).
//
// The paper's own template-based predictor lives in internal/core; the
// Gibbons and Downey baselines live in subpackages of this package.
package predict

import (
	"repro/internal/workload"
)

// Predictor estimates application run times from whatever history it has
// observed so far.
//
// Predict returns the predicted TOTAL run time in seconds for job j, given
// that the job has already been executing for age seconds (age == 0 for a
// queued job). Predictors that condition on age (Downey's, Gibbons's rtime
// templates, the core predictor's running-time attribute) use it to sharpen
// the estimate; others may ignore it. The boolean reports whether the
// predictor can make a valid prediction for this job; callers fall back
// (see Estimate) when it cannot.
//
// Observe incorporates a completed job into the predictor's history. The
// scheduling simulator calls Observe exactly once per job, at the job's
// completion time, matching the paper's step 3 ("at the time each
// application a completes execution").
type Predictor interface {
	Name() string
	Predict(j *workload.Job, age int64) (seconds int64, ok bool)
	Observe(j *workload.Job)
}

// Estimate produces a usable run-time estimate for scheduling: the
// predictor's output when valid, otherwise the user-supplied maximum run
// time, otherwise defaultRT.
//
// An estimate the job has ALREADY OUTLIVED (est ≤ age) is treated as
// invalid, not merely clamped: the job's survival proves the estimate
// wrong, and propagating "it ends any instant now" into a backfill profile
// collapses the backfill window and starves the queue. The fallback (the
// user-supplied maximum run time) is a true upper bound on the remaining
// occupancy.
//
// The result is clamped to at least age+1 (a job that has run for age
// seconds cannot have a smaller total) and, when the job carries a maximum
// run time, to at most that maximum (batch systems kill jobs at their
// limit, so no larger estimate is ever useful).
func Estimate(p Predictor, j *workload.Job, age int64, defaultRT int64) int64 {
	est, ok := p.Predict(j, age)
	if !ok || est <= 0 || est <= age {
		if j.MaxRunTime > 0 {
			est = j.MaxRunTime
		} else if defaultRT > age {
			est = defaultRT
		} else {
			est = 2 * (age + 1) // no limit to fall back on: double the age
		}
	}
	if j.MaxRunTime > 0 && est > j.MaxRunTime {
		est = j.MaxRunTime
	}
	if est < age+1 {
		est = age + 1
	}
	return est
}

// DefaultRuntime is the estimate of last resort when a job has neither a
// valid prediction nor a user-supplied maximum run time (30 minutes).
const DefaultRuntime int64 = 30 * 60

// Oracle predicts every job's run time exactly. It bounds the achievable
// performance of both the wait-time predictor (Table 4) and the schedulers
// (Table 10).
type Oracle struct{}

// Name implements Predictor.
func (Oracle) Name() string { return "actual" }

// Predict returns the job's actual run time.
func (Oracle) Predict(j *workload.Job, age int64) (int64, bool) { return j.RunTime, true }

// Observe is a no-op: the oracle needs no history.
func (Oracle) Observe(*workload.Job) {}

// MaxRuntime predicts every job's run time as its user-supplied maximum run
// time, the convention of production schedulers such as EASY (Tables 5 and
// 11). Jobs without a recorded maximum yield no prediction.
type MaxRuntime struct{}

// Name implements Predictor.
func (MaxRuntime) Name() string { return "maxrt" }

// Predict returns the job's user-supplied maximum run time.
func (MaxRuntime) Predict(j *workload.Job, age int64) (int64, bool) {
	if j.MaxRunTime <= 0 {
		return 0, false
	}
	return j.MaxRunTime, true
}

// Observe is a no-op: maximum run times need no history.
func (MaxRuntime) Observe(*workload.Job) {}

// RunningMean predicts every job's run time as the mean run time of all
// completed jobs. It is the simplest possible history-based predictor and
// serves as a sanity baseline in tests and ablations.
type RunningMean struct {
	n   int
	sum float64
}

// Name implements Predictor.
func (*RunningMean) Name() string { return "globalmean" }

// Predict returns the global mean of observed run times.
func (m *RunningMean) Predict(j *workload.Job, age int64) (int64, bool) {
	if m.n == 0 {
		return 0, false
	}
	return int64(m.sum / float64(m.n)), true
}

// Observe adds the completed job's run time to the global mean.
func (m *RunningMean) Observe(j *workload.Job) {
	m.n++
	m.sum += float64(j.RunTime)
}

// Static checks.
var (
	_ Predictor = Oracle{}
	_ Predictor = MaxRuntime{}
	_ Predictor = (*RunningMean)(nil)
)
