package exp

import (
	"fmt"
	"math"

	"repro/internal/predict"
	"repro/internal/workload"
)

// Walk-forward validation: train a predictor on a time prefix of the trace,
// then score it on the NEXT segment without letting it observe the test
// jobs. Unlike the online protocol of the paper's experiments (observe
// every completion immediately), this measures how quickly a history goes
// stale — the question an operator asks before trusting a predictor whose
// feed has gaps.

// FoldResult is one fold of a walk-forward validation.
type FoldResult struct {
	Fold       int
	TrainJobs  int
	TestJobs   int
	Covered    int     // test jobs the predictor could answer (before fallback)
	MeanErrMin float64 // mean |pred − actual| over the fold, minutes (with fallback)
	PctMeanRT  float64 // as % of the fold's mean run time
}

// WalkForward splits the trace (in submit order) into folds+1 equal
// segments: fold i trains on segments [0, i] and tests on segment i+1.
func WalkForward(w *workload.Workload, kind PredictorKind, folds int, cfg Config) ([]FoldResult, error) {
	if folds < 1 {
		return nil, fmt.Errorf("exp: need at least one fold")
	}
	n := len(w.Jobs)
	if n < (folds+1)*2 {
		return nil, fmt.Errorf("exp: %d jobs is too few for %d folds", n, folds)
	}
	defaultRT := cfg.DefaultRT
	if defaultRT <= 0 {
		defaultRT = predict.DefaultRuntime
	}
	seg := n / (folds + 1)
	out := make([]FoldResult, 0, folds)
	for f := 1; f <= folds; f++ {
		pred, err := NewPredictor(kind, w)
		if err != nil {
			return nil, err
		}
		trainEnd := f * seg
		testEnd := (f + 1) * seg
		if f == folds {
			testEnd = n
		}
		for _, j := range w.Jobs[:trainEnd] {
			pred.Observe(j)
		}
		var absErr, rtSum float64
		covered := 0
		for _, j := range w.Jobs[trainEnd:testEnd] {
			if _, ok := pred.Predict(j, 0); ok {
				covered++
			}
			est := predict.Estimate(pred, j, 0, defaultRT)
			absErr += math.Abs(float64(est - j.RunTime))
			rtSum += float64(j.RunTime)
		}
		tested := testEnd - trainEnd
		fr := FoldResult{
			Fold:       f,
			TrainJobs:  trainEnd,
			TestJobs:   tested,
			Covered:    covered,
			MeanErrMin: absErr / float64(tested) / 60,
		}
		if rtSum > 0 {
			fr.PctMeanRT = 100 * absErr / rtSum
		}
		out = append(out, fr)
	}
	return out, nil
}

// WalkForwardTable renders a 4-fold walk-forward validation of the history
// predictors on every study workload.
func WalkForwardTable(cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	kinds := []PredictorKind{KindSmith, KindGibbons, KindDowneyAvg, KindDowneyMed}
	t := &Table{
		ID:      "Validation",
		Caption: "Walk-forward holdout: run-time error as % of mean run time, averaged over 4 folds (coverage in parentheses)",
		Headers: []string{"Workload", "smith", "gibbons", "downey-avg", "downey-med"},
	}
	for _, w := range ws {
		row := []string{w.Name}
		for _, kind := range kinds {
			frs, err := WalkForward(w, kind, 4, cfg)
			if err != nil {
				return nil, fmt.Errorf("walk-forward %s/%s: %w", w.Name, kind, err)
			}
			var pct, cov float64
			var tested int
			for _, fr := range frs {
				pct += fr.PctMeanRT
				cov += float64(fr.Covered)
				tested += fr.TestJobs
			}
			row = append(row, fmt.Sprintf("%.0f (%.0f%%)",
				pct/float64(len(frs)), 100*cov/float64(tested)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
