// Package exp drives the paper's experiments: the wait-time prediction
// study of Tables 4–9 and the scheduling study of Tables 10–15, plus the
// §4 interarrival-compression experiment and the ablations called out in
// DESIGN.md. Each table of the paper has a driver here and a benchmark in
// the repository root that regenerates it.
package exp

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/predict"
	"repro/internal/predict/downey"
	"repro/internal/predict/gibbons"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// Config scopes an experiment run. Scale divides the Table-1 trace sizes
// (Scale 1 = full size); Seed perturbs the synthetic workloads.
type Config struct {
	Scale int
	Seed  int64
	// DefaultRT is the estimate of last resort (0 = predict.DefaultRuntime).
	DefaultRT int64
}

// DefaultConfig is sized so the full table suite runs in seconds.
var DefaultConfig = Config{Scale: 10, Seed: 42}

// PredictorKind names the run-time predictors of the study.
type PredictorKind string

// The predictors compared throughout the paper.
const (
	KindActual    PredictorKind = "actual"
	KindMaxRT     PredictorKind = "maxrt"
	KindSmith     PredictorKind = "smith"
	KindGibbons   PredictorKind = "gibbons"
	KindDowneyAvg PredictorKind = "downey-avg"
	KindDowneyMed PredictorKind = "downey-med"
)

// NewPredictor constructs a fresh predictor of the given kind for a
// workload. The Smith predictor uses the default template set unless
// templates were registered for the workload via SetTemplates (e.g. from a
// GA search).
//
// taint: sanitizer rejects unknown predictor kinds, the grammar of the -predictor flag
func NewPredictor(kind PredictorKind, w *workload.Workload) (predict.Predictor, error) {
	switch kind {
	case KindActual:
		return predict.Oracle{}, nil
	case KindMaxRT:
		return predict.MaxRuntime{}, nil
	case KindSmith:
		if ts, ok := searchedTemplates[w.Name]; ok {
			return core.New(ts), nil
		}
		return core.NewDefault(w), nil
	case KindGibbons:
		return gibbons.New(), nil
	case KindDowneyAvg:
		return downey.New(downey.ConditionalAverage), nil
	case KindDowneyMed:
		return downey.New(downey.ConditionalMedian), nil
	}
	return nil, fmt.Errorf("exp: unknown predictor kind %q", kind)
}

// searchedTemplates lets callers (cmd/gasearch, tests) install searched
// template sets per workload name, overriding the defaults.
var searchedTemplates = map[string][]core.Template{}

// SetTemplates installs a searched template set for a workload name.
// Passing nil removes the override.
func SetTemplates(workloadName string, ts []core.Template) {
	if ts == nil {
		delete(searchedTemplates, workloadName)
		return
	}
	searchedTemplates[workloadName] = ts
}

// WaitResult is one row of a wait-time prediction table (Tables 4–9).
type WaitResult struct {
	Workload    string
	Policy      string
	Predictor   string
	MeanErrMin  float64 // mean |predicted − actual wait|, minutes
	PctMeanWait float64 // the error as a percentage of the mean wait time
	MeanWaitMin float64 // the workload's mean wait under the policy
	N           int     // jobs predicted
}

// WaitTimeExperiment reproduces one (workload, policy, predictor) cell of
// Tables 4–9: the ground-truth schedule is produced by the policy running
// with maximum run times (the deployed-scheduler configuration; the paper
// notes "scheduling is performed using maximum run times"), and the wait
// time of each application is predicted at submission by forward-simulating
// the same policy with the predictor under test. The predictor observes
// every completion as it happens, exactly as in the paper's step 3.
func WaitTimeExperiment(w *workload.Workload, pol sim.Policy, kind PredictorKind, cfg Config) (WaitResult, error) {
	underTest, err := NewPredictor(kind, w)
	if err != nil {
		return WaitResult{}, err
	}
	defaultRT := cfg.DefaultRT
	if defaultRT <= 0 {
		defaultRT = predict.DefaultRuntime
	}
	predicted := make(map[*workload.Job]int64, len(w.Jobs))
	var predErr error
	opts := sim.Options{
		OnSubmit: func(now int64, j *workload.Job, queue, running []*workload.Job) {
			if predErr != nil {
				return
			}
			// Durations come from the predictor under test; the simulated
			// scheduler's decisions use maximum run times, matching the
			// ground-truth scheduler below.
			wait, err := waitpred.PredictWait(now, j, queue, running,
				w.MachineNodes, pol, underTest, predict.MaxRuntime{}, defaultRT)
			if err != nil {
				predErr = err
				return
			}
			predicted[j] = wait
		},
		OnFinish: func(now int64, j *workload.Job) {
			underTest.Observe(j)
		},
	}
	if _, err := sim.Run(w, pol, predict.MaxRuntime{}, opts); err != nil {
		return WaitResult{}, err
	}
	if predErr != nil {
		return WaitResult{}, predErr
	}

	var absErr, waitSum float64
	var n int
	for j, pw := range predicted {
		absErr += math.Abs(float64(pw - j.WaitTime()))
		waitSum += float64(j.WaitTime())
		n++
	}
	if n == 0 {
		return WaitResult{}, fmt.Errorf("exp: no predictions recorded")
	}
	out := WaitResult{
		Workload:    w.Name,
		Policy:      pol.Name(),
		Predictor:   string(kind),
		MeanErrMin:  absErr / float64(n) / 60,
		MeanWaitMin: waitSum / float64(n) / 60,
		N:           n,
	}
	if waitSum > 0 {
		out.PctMeanWait = 100 * absErr / waitSum
	}
	return out, nil
}

// SchedResult is one row of a scheduling performance table (Tables 10–15).
type SchedResult struct {
	Workload    string
	Policy      string
	Predictor   string
	Utilization float64 // percent
	MeanWaitMin float64 // minutes
}

// SchedulingExperiment reproduces one cell of Tables 10–15: run the policy
// with the predictor under test supplying its run-time estimates and report
// utilization and mean wait time.
func SchedulingExperiment(w *workload.Workload, pol sim.Policy, kind PredictorKind, cfg Config) (SchedResult, error) {
	pred, err := NewPredictor(kind, w)
	if err != nil {
		return SchedResult{}, err
	}
	res, err := sim.Run(w, pol, pred, sim.Options{DefaultRuntime: cfg.DefaultRT})
	if err != nil {
		return SchedResult{}, err
	}
	return SchedResult{
		Workload:    w.Name,
		Policy:      pol.Name(),
		Predictor:   string(kind),
		Utilization: 100 * res.Utilization,
		MeanWaitMin: res.MeanWaitMinutes(),
	}, nil
}

// RuntimeErrorResult reports a predictor's raw run-time prediction accuracy
// on the prediction workload generated by a policy/trace pair (the paper
// quotes these as percentages of mean run times in §3 and §4).
type RuntimeErrorResult struct {
	Workload   string
	Policy     string
	Predictor  string
	MeanErrMin float64
	PctMeanRT  float64
	N          int
}

// RuntimePredictionError replays the policy's prediction workload through a
// fresh predictor of the given kind.
func RuntimePredictionError(w *workload.Workload, pol sim.Policy, kind PredictorKind, cfg Config) (RuntimeErrorResult, error) {
	pred, err := NewPredictor(kind, w)
	if err != nil {
		return RuntimeErrorResult{}, err
	}
	defaultRT := cfg.DefaultRT
	if defaultRT <= 0 {
		defaultRT = predict.DefaultRuntime
	}
	var absErr, rtSum float64
	var n int
	opts := sim.Options{
		OnSubmit: func(now int64, j *workload.Job, queue, running []*workload.Job) {
			for _, q := range queue {
				est := predict.Estimate(pred, q, 0, defaultRT)
				absErr += math.Abs(float64(est - q.RunTime))
				rtSum += float64(q.RunTime)
				n++
			}
			for _, r := range running {
				age := now - r.StartTime
				est := predict.Estimate(pred, r, age, defaultRT)
				absErr += math.Abs(float64(est - r.RunTime))
				rtSum += float64(r.RunTime)
				n++
			}
		},
		OnFinish: func(now int64, j *workload.Job) { pred.Observe(j) },
	}
	if _, err := sim.Run(w, pol, predict.MaxRuntime{}, opts); err != nil {
		return RuntimeErrorResult{}, err
	}
	out := RuntimeErrorResult{
		Workload: w.Name, Policy: pol.Name(), Predictor: string(kind),
		MeanErrMin: absErr / float64(n) / 60,
		N:          n,
	}
	if rtSum > 0 {
		out.PctMeanRT = 100 * absErr / rtSum
	}
	return out, nil
}
