package exp

import (
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func TestStableMembers(t *testing.T) {
	w, err := workload.Study("CTC", 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	stable, err := Stable(w)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"smith", "gibbons", "downey-avg", "maxrt", "globalmean", "smith>maxrt"}
	if len(stable) != len(want) {
		t.Fatalf("stable has %d members, want %d", len(stable), len(want))
	}
	seen := map[string]bool{}
	for i, m := range stable {
		if m.Name != want[i] {
			t.Fatalf("member %d = %q, want %q", i, m.Name, want[i])
		}
		if m.P == nil || m.P.Name() != m.Name {
			t.Fatalf("member %q predictor mismatch", m.Name)
		}
		if seen[m.Name] {
			t.Fatalf("duplicate member %q", m.Name)
		}
		seen[m.Name] = true
	}
}

// TestReselectExperimentEndToEnd is the acceptance test for the control
// loop: the injected step fires drift, the controller leaves the template
// predictor for a shadow winner, and the adaptive arm's post-step tail
// beats the pinned baseline.
func TestReselectExperimentEndToEnd(t *testing.T) {
	w, err := workload.Study("CTC", 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ReselectExperiment(w, sched.ByName("Backfill"), DefaultDriftConfig(), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if res.Baseline.Reselect || !res.Adaptive.Reselect {
		t.Fatalf("variant labels: %+v / %+v", res.Baseline, res.Adaptive)
	}
	if res.Baseline.Predictor != "smith" {
		t.Fatalf("baseline served %q, want smith", res.Baseline.Predictor)
	}
	if res.Adaptive.Switches < 1 {
		t.Fatalf("no switch fired: %+v", res.Adaptive)
	}
	ev := res.Adaptive.Events[0]
	if ev.From != "smith" || ev.To == "smith" {
		t.Fatalf("first switch %+v, want away from smith", ev)
	}
	if !ev.Drift.Drifting {
		t.Fatalf("switch event without confirmed drift: %+v", ev)
	}
	if !(ev.ToScore < ev.FromScore) {
		t.Fatalf("switched to a worse scoreboard entry: %+v", ev)
	}
	if res.Baseline.N == 0 || res.Baseline.N != res.Adaptive.N {
		t.Fatalf("post-step sample counts differ: %d vs %d", res.Baseline.N, res.Adaptive.N)
	}
	// The headline: adapting reduces the post-step asymmetric cost.
	if !(res.Adaptive.PostMeanCost < res.Baseline.PostMeanCost) {
		t.Fatalf("adaptive post-step cost %.1f not below baseline %.1f",
			res.Adaptive.PostMeanCost, res.Baseline.PostMeanCost)
	}
	if res.P == 0 || res.T == 0 {
		t.Fatalf("Welch comparison missing: t=%v p=%v", res.T, res.P)
	}
}

// TestReselectExperimentDeterministic: same inputs, same result — the
// controller adds no hidden randomness or clock dependence.
func TestReselectExperimentDeterministic(t *testing.T) {
	w, err := workload.Study("SDSC96", 60, 7)
	if err != nil {
		t.Fatal(err)
	}
	pol := sched.ByName("Backfill")
	a, err := ReselectExperiment(w, pol, DefaultDriftConfig(), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ReselectExperiment(w, pol, DefaultDriftConfig(), DefaultConfig)
	if err != nil {
		t.Fatal(err)
	}
	if a.Adaptive.Switches != b.Adaptive.Switches ||
		a.Adaptive.Predictor != b.Adaptive.Predictor ||
		a.Adaptive.PostMeanCost != b.Adaptive.PostMeanCost ||
		a.T != b.T {
		t.Fatalf("nondeterministic experiment:\n%+v\n%+v", a, b)
	}
}
