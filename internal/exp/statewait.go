package exp

import (
	"fmt"
	"math"

	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// This file runs the experiment the paper proposes as future work (§5):
// predicting queue wait times from historical waits observed in similar
// scheduler STATES, instead of simulating the scheduler forward. The paper
// hoped the state-based method would "improve wait-time prediction error,
// particularly for the LWF algorithm, which has a large built-in error".

// StateWaitResult compares the two wait-prediction methods on one
// workload/policy pair.
type StateWaitResult struct {
	Workload    string
	Policy      string
	MeanWaitMin float64
	// SimErrMin / SimPct: the paper's simulation-based method with the
	// template run-time predictor (Table 6 configuration).
	SimErrMin float64
	SimPct    float64
	// StateErrMin / StatePct: the future-work state-based method.
	StateErrMin float64
	StatePct    float64
	N           int
}

// StateWaitExperiment runs both predictors side by side over the
// ground-truth schedule (scheduling with maximum run times, as everywhere
// in the wait-time study).
func StateWaitExperiment(w *workload.Workload, pol sim.Policy, cfg Config) (StateWaitResult, error) {
	underTest, err := NewPredictor(KindSmith, w)
	if err != nil {
		return StateWaitResult{}, err
	}
	statePred := waitpred.NewStatePredictor(
		waitpred.DefaultStateTemplates(w.Chars.Has(workload.CharQueue)))
	defaultRT := cfg.DefaultRT
	if defaultRT <= 0 {
		defaultRT = predict.DefaultRuntime
	}
	decisionEst := func(j *workload.Job, age int64) int64 {
		return predict.Estimate(predict.MaxRuntime{}, j, age, defaultRT)
	}

	type pending struct {
		state   waitpred.State
		jobWork int64
	}
	simPred := make(map[*workload.Job]int64, len(w.Jobs))
	statePredOut := make(map[*workload.Job]int64, len(w.Jobs))
	states := make(map[*workload.Job]pending, len(w.Jobs))
	var predErr error

	opts := sim.Options{
		OnSubmit: func(now int64, j *workload.Job, queue, running []*workload.Job) {
			if predErr != nil {
				return
			}
			// Simulation-based prediction (§3 technique).
			wait, err := waitpred.PredictWait(now, j, queue, running,
				w.MachineNodes, pol, underTest, predict.MaxRuntime{}, defaultRT)
			if err != nil {
				predErr = err
				return
			}
			simPred[j] = wait

			// State-based prediction (§5 future work).
			st := waitpred.CaptureState(now, queue, running, w.MachineNodes, decisionEst)
			jobWork := int64(j.Nodes) * decisionEst(j, 0)
			states[j] = pending{state: st, jobWork: jobWork}
			if sw, ok := statePred.PredictWait(st, j, jobWork); ok {
				statePredOut[j] = sw
			} else {
				// Ramp-up fallback: predict the current queue drain time, a
				// crude state summary (queued work over machine size).
				statePredOut[j] = st.QueuedWork / int64(w.MachineNodes)
			}
		},
		OnStart: func(now int64, j *workload.Job) {
			if p, ok := states[j]; ok {
				statePred.ObserveWait(p.state, j, p.jobWork, j.WaitTime())
				delete(states, j)
			}
		},
		OnFinish: func(now int64, j *workload.Job) { underTest.Observe(j) },
	}
	if _, err := sim.Run(w, pol, predict.MaxRuntime{}, opts); err != nil {
		return StateWaitResult{}, err
	}
	if predErr != nil {
		return StateWaitResult{}, predErr
	}

	var simAbs, stateAbs, waitSum float64
	var n int
	for j, sw := range simPred {
		simAbs += math.Abs(float64(sw - j.WaitTime()))
		stateAbs += math.Abs(float64(statePredOut[j] - j.WaitTime()))
		waitSum += float64(j.WaitTime())
		n++
	}
	if n == 0 {
		return StateWaitResult{}, fmt.Errorf("exp: no predictions recorded")
	}
	out := StateWaitResult{
		Workload:    w.Name,
		Policy:      pol.Name(),
		MeanWaitMin: waitSum / float64(n) / 60,
		SimErrMin:   simAbs / float64(n) / 60,
		StateErrMin: stateAbs / float64(n) / 60,
		N:           n,
	}
	if waitSum > 0 {
		out.SimPct = 100 * simAbs / waitSum
		out.StatePct = 100 * stateAbs / waitSum
	}
	return out, nil
}

// FutureWorkStateWait renders the comparison for every workload under LWF
// and backfill.
func FutureWorkStateWait(cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Future Work",
		Caption: "Simulation-based (§3) vs state-based (§5) wait-time prediction, % of mean wait",
		Headers: []string{"Workload", "Scheduling Algorithm", "Simulation %", "State-based %"},
	}
	for _, w := range ws {
		for _, pol := range lwfBF() {
			r, err := StateWaitExperiment(w, pol, cfg)
			if err != nil {
				return nil, fmt.Errorf("future-work %s/%s: %w", w.Name, pol.Name(), err)
			}
			t.Rows = append(t.Rows, []string{
				r.Workload, r.Policy,
				fmt.Sprintf("%.0f", r.SimPct),
				fmt.Sprintf("%.0f", r.StatePct),
			})
		}
	}
	return t, nil
}
