package exp

import (
	"fmt"
	"math"

	"repro/internal/admission"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file is the price-of-misprediction (regret) experiment for the
// predictive SLO admission control loop: how much scheduler and admission
// performance is lost as the run-time predictions driving them degrade?
//
// Two schemes run on each study workload:
//
//   - fcfs-always: FCFS with every job admitted — the paper's baseline
//     scheduler with no prediction consumer at all;
//   - sjf-admit: SJF ordered by the (noise-injected) predictions, behind
//     the admission controller whose wait estimates come from forward
//     simulation under the same noisy predictor.
//
// The noise is predict.Noisy over the oracle, so the error scale and sign
// bias are exact experimental knobs: scale 0 is perfect prediction, and
// the regret of a cell is its SLO cost minus the cost of the same
// configuration at scale 0 (Mitzenmacher's price of misprediction,
// arXiv 1902.00732, measured on the paper's workloads). Costs are
// tail-weighted: a shed job costs 1, an admitted job costs its budget
// overrun ratio capped at maxOverrunCost — the asymmetric accounting TARE
// (arXiv 2607.04935) argues schedulers actually face.

// RegretConfig scopes the regret sweep.
type RegretConfig struct {
	Config
	// ErrScales are the injected error magnitudes (0 = perfect predictions;
	// scale s distorts each prediction by up to e^±s).
	ErrScales []float64
	// Biases are the noise sign biases (+1 only over-predicts, -1 only
	// under-predicts, 0 symmetric). Scale 0 runs only with bias 0 — all
	// biases collapse to the identity there.
	Biases []float64
	// Headrooms are the admission budget multipliers to sweep.
	Headrooms []float64
}

// DefaultRegretConfig sizes the sweep to run in well under a minute while
// covering both signs of error and both directions of the headroom knob.
func DefaultRegretConfig() RegretConfig {
	return RegretConfig{
		Config:    Config{Scale: 10, Seed: 42},
		ErrScales: []float64{0, 0.5, 1, 2},
		Biases:    []float64{-1, 0, 1},
		Headrooms: []float64{1, 2},
	}
}

// RegretClasses is the SLO class table of the regret experiment: the
// admission controller's default three-tier contract.
func RegretClasses() map[string]admission.ClassConfig {
	return admission.DefaultClasses()
}

// RegretClassOf assigns a job's SLO class deterministically from its ID
// (20% interactive, 50% standard, 30% batch). The job's own Class field is
// deliberately not consulted: the CTC workload generator conditions on it
// (DSI/PIOFS), so overwriting or reusing it would entangle the SLO mix
// with one trace's job characteristics.
func RegretClassOf(j *workload.Job) string {
	switch m := j.ID % 10; {
	case m <= 1:
		return "interactive"
	case m <= 6:
		return "standard"
	default:
		return "batch"
	}
}

// maxOverrunCost caps one admitted job's cost at this multiple of its
// budget, so a single pathological wait cannot dominate a cell.
const maxOverrunCost = 2.0

// shedCost is the cost of rejecting a job outright: worse than meeting the
// budget, better than the worst admitted overrun.
const shedCost = 1.0

// RegretCell is one (workload, scheme, error, headroom) point of the sweep.
type RegretCell struct {
	Workload string  `json:"workload"`
	Scheme   string  `json:"scheme"`
	ErrScale float64 `json:"errScale"`
	Bias     float64 `json:"bias"`
	Headroom float64 `json:"headroom"`

	Arrivals    int     `json:"arrivals"`
	Shed        int     `json:"shed"`
	ShedRate    float64 `json:"shedRate"`
	MeanWaitMin float64 `json:"meanWaitMin"` // admitted jobs
	Utilization float64 `json:"utilization"` // fraction of capacity over the makespan
	GoodputFrac float64 `json:"goodputFrac"` // completed work / offered work

	// Attainment is the fraction of non-shed jobs of each class that met
	// the class wait budget, plus an "all" aggregate.
	Attainment map[string]float64 `json:"attainment"`

	// Cost is the mean per-arrival SLO cost; Regret is the cost increase
	// over the same configuration at error scale 0 (always 0 there, and
	// meaningless for the prediction-free baseline scheme).
	Cost   float64 `json:"cost"`
	Regret float64 `json:"regret"`

	// WaitVsBaselineP is the Welch p-value of the admitted-wait difference
	// against the fcfs-always baseline on the same workload;
	// WaitBelowBaseline reports a significantly lower mean (p < 0.05).
	WaitVsBaselineP   float64 `json:"waitVsBaselineP,omitempty"`
	WaitBelowBaseline bool    `json:"waitBelowBaseline,omitempty"`
}

// RegretReport is the machine-readable result of the sweep.
type RegretReport struct {
	Scale     int                              `json:"scale"`
	Seed      int64                            `json:"seed"`
	Classes   map[string]admission.ClassConfig `json:"classes"`
	ErrScales []float64                        `json:"errScales"`
	Biases    []float64                        `json:"biases"`
	Headrooms []float64                        `json:"headrooms"`
	Cells     []RegretCell                     `json:"cells"`
}

// schemeRun is the raw material of one cell before scoring.
type schemeRun struct {
	res   *sim.Result
	waits stats.Moments
}

// scoreCell fills a cell's outcome fields from a finished run.
func scoreCell(cell *RegretCell, run schemeRun, classes map[string]admission.ClassConfig, offeredWork int64) {
	attainedBy := map[string]int{}
	totalBy := map[string]int{}
	var cost float64
	var goodWork int64
	arrivals := 0
	for _, j := range run.res.Jobs {
		if j.Cancelled {
			continue
		}
		arrivals++
		if j.Shed {
			cost += shedCost
			continue
		}
		goodWork += j.Work()
		cls := RegretClassOf(j)
		budget := classes[cls].WaitBudgetSec
		totalBy[cls]++
		totalBy["all"]++
		if budget == 0 || j.WaitTime() <= budget {
			attainedBy[cls]++
			attainedBy["all"]++
			continue
		}
		over := float64(j.WaitTime()-budget) / float64(budget)
		if over > maxOverrunCost {
			over = maxOverrunCost
		}
		cost += over
	}
	cell.Arrivals = arrivals
	cell.Shed = run.res.Shed
	if arrivals > 0 {
		cell.ShedRate = float64(run.res.Shed) / float64(arrivals)
		cell.Cost = cost / float64(arrivals)
	}
	cell.MeanWaitMin = run.res.MeanWaitMinutes()
	cell.Utilization = run.res.Utilization
	if offeredWork > 0 {
		cell.GoodputFrac = float64(goodWork) / float64(offeredWork)
	}
	cell.Attainment = map[string]float64{}
	for cls, total := range totalBy {
		cell.Attainment[cls] = float64(attainedBy[cls]) / float64(total)
	}
}

// collectWaits summarizes the admitted jobs' waits for the Welch test.
func collectWaits(res *sim.Result) stats.Moments {
	var m stats.Moments
	for _, j := range res.Jobs {
		if j.Cancelled || j.Shed {
			continue
		}
		m.Add(float64(j.WaitTime()))
	}
	return m
}

// runBaseline runs fcfs-always: FCFS, no admission, no predictions used.
func runBaseline(w *workload.Workload) (schemeRun, error) {
	res, err := sim.Run(w, sched.FCFS{}, predict.MaxRuntime{}, sim.Options{})
	if err != nil {
		return schemeRun{}, err
	}
	return schemeRun{res: res, waits: collectWaits(res)}, nil
}

// runPredictive runs sjf-admit: SJF ordered by the noisy predictions with
// the admission controller estimating waits by forward simulation under
// the same noisy predictor and policy.
func runPredictive(w *workload.Workload, pred predict.Predictor,
	classes map[string]admission.ClassConfig, headroom float64, defaultRT int64) (schemeRun, error) {

	pol := sched.SJF{}
	acfg := admission.Config{
		Classes:      classes,
		DefaultClass: "standard",
		Headroom:     headroom,
		Classifier:   RegretClassOf,
		TotalNodes:   w.MachineNodes,
		Policy:       pol,
		Predictor:    pred,
		Decision:     pred, // the simulated scheduler is the real one: both rank by the noisy estimates
		DefaultRT:    defaultRT,
	}
	// The headroom sweep values come from a flag; validate the assembled
	// config before the class tables are built from it.
	if err := acfg.Validate(); err != nil {
		return schemeRun{}, err
	}
	ctrl, err := admission.New(acfg)
	if err != nil {
		return schemeRun{}, err
	}
	var opts sim.Options
	ctrl.Attach(&opts)
	res, err := sim.Run(w, pol, pred, opts)
	if err != nil {
		return schemeRun{}, err
	}
	return schemeRun{res: res, waits: collectWaits(res)}, nil
}

// welchAgainst fills the Welch comparison fields of a cell.
func welchAgainst(cell *RegretCell, run, baseline schemeRun) {
	t, err := stats.WelchTMoments(run.waits, baseline.waits)
	if err != nil {
		return
	}
	cell.WaitVsBaselineP = t.P
	cell.WaitBelowBaseline = t.T < 0 && t.P < 0.05
}

// RegretExperiment runs the full sweep: on each study workload, the
// fcfs-always baseline once, then sjf-admit at every (error scale, bias,
// headroom) combination, scoring each cell and computing regret against
// the zero-error cell of the same configuration.
func RegretExperiment(cfg RegretConfig) (*RegretReport, error) {
	if len(cfg.ErrScales) == 0 || len(cfg.Headrooms) == 0 {
		return nil, fmt.Errorf("exp: regret sweep needs error scales and headrooms")
	}
	biases := cfg.Biases
	if len(biases) == 0 {
		biases = []float64{0}
	}
	defaultRT := cfg.DefaultRT
	if defaultRT <= 0 {
		defaultRT = predict.DefaultRuntime
	}
	classes := RegretClasses()
	ws, err := studyWorkloads(cfg.Config)
	if err != nil {
		return nil, err
	}

	report := &RegretReport{
		Scale: cfg.Scale, Seed: cfg.Seed, Classes: classes,
		ErrScales: cfg.ErrScales, Biases: biases, Headrooms: cfg.Headrooms,
	}
	for _, w := range ws {
		offered := int64(0)
		for _, j := range w.Jobs {
			offered += j.Work()
		}
		baseline, err := runBaseline(w)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", w.Name, err)
		}
		base := RegretCell{Workload: w.Name, Scheme: "fcfs-always", Headroom: 1}
		scoreCell(&base, baseline, classes, offered)
		report.Cells = append(report.Cells, base)

		for _, headroom := range cfg.Headrooms {
			// The zero-error anchor runs exactly once per headroom (every
			// bias collapses to the identity at scale 0) and its cost is the
			// baseline every noisy cell's regret is measured against.
			anchor := RegretCell{Workload: w.Name, Scheme: "sjf-admit", Headroom: headroom}
			run, err := runPredictive(w,
				predict.Noisy{Inner: predict.Oracle{}, Seed: cfg.Seed}, classes, headroom, defaultRT)
			if err != nil {
				return nil, fmt.Errorf("%s sjf-admit anchor: %w", w.Name, err)
			}
			scoreCell(&anchor, run, classes, offered)
			welchAgainst(&anchor, run, baseline)
			report.Cells = append(report.Cells, anchor)

			for _, scale := range cfg.ErrScales {
				if scale == 0 { //lint:allow floatcmp exact sweep knob, not a computed value
					continue // covered by the anchor cell
				}
				for _, bias := range biases {
					pred := predict.Noisy{Inner: predict.Oracle{}, Scale: scale, Bias: bias, Seed: cfg.Seed}
					run, err := runPredictive(w, pred, classes, headroom, defaultRT)
					if err != nil {
						return nil, fmt.Errorf("%s sjf-admit scale %g: %w", w.Name, scale, err)
					}
					cell := RegretCell{
						Workload: w.Name, Scheme: "sjf-admit",
						ErrScale: scale, Bias: bias, Headroom: headroom,
					}
					scoreCell(&cell, run, classes, offered)
					welchAgainst(&cell, run, baseline)
					cell.Regret = cell.Cost - anchor.Cost
					report.Cells = append(report.Cells, cell)
				}
			}
		}
	}
	return report, nil
}

// MeanRegretByScale aggregates a report's sjf-admit cells at one headroom:
// mean regret per error scale across all workloads and biases — the series
// whose monotone growth is the experiment's headline claim.
func (r *RegretReport) MeanRegretByScale(headroom float64) map[float64]float64 {
	sum := map[float64]float64{}
	n := map[float64]int{}
	for _, c := range r.Cells {
		if c.Scheme != "sjf-admit" || c.Headroom != headroom { //lint:allow floatcmp sweep knobs are exact flag values
			continue
		}
		sum[c.ErrScale] += c.Regret
		n[c.ErrScale]++
	}
	out := map[float64]float64{}
	for scale, s := range sum {
		out[scale] = s / float64(n[scale])
	}
	return out
}

// TableRegret renders the report in the repository's table idiom: one row
// per cell, attainment by class, cost and regret.
func TableRegret(r *RegretReport) *Table {
	t := &Table{
		ID:      "Regret",
		Caption: "Price of misprediction: SJF + predictive SLO admission vs FCFS/always-admit",
		Headers: []string{"Workload", "Scheme", "Err", "Bias", "Headroom",
			"MeanWait(min)", "Shed%", "SLO(int)", "SLO(std)", "SLO(batch)", "SLO(all)", "Cost", "Regret", "p(vs FCFS)"},
	}
	fmtAttain := func(c RegretCell, cls string) string {
		v, ok := c.Attainment[cls]
		if !ok {
			return "-"
		}
		return fmt.Sprintf("%.0f%%", 100*v)
	}
	for _, c := range r.Cells {
		p := "-"
		if c.Scheme == "sjf-admit" && !math.IsNaN(c.WaitVsBaselineP) && c.WaitVsBaselineP > 0 {
			p = fmt.Sprintf("%.3f", c.WaitVsBaselineP)
			if c.WaitBelowBaseline {
				p += "*"
			}
		}
		t.Rows = append(t.Rows, []string{
			c.Workload, c.Scheme,
			fmt.Sprintf("%.1f", c.ErrScale), fmt.Sprintf("%+.0f", c.Bias),
			fmt.Sprintf("%.1f", c.Headroom),
			fmt.Sprintf("%.1f", c.MeanWaitMin),
			fmt.Sprintf("%.1f%%", 100*c.ShedRate),
			fmtAttain(c, "interactive"), fmtAttain(c, "standard"), fmtAttain(c, "batch"), fmtAttain(c, "all"),
			fmt.Sprintf("%.4f", c.Cost), fmt.Sprintf("%.4f", c.Regret),
			p,
		})
	}
	return t
}
