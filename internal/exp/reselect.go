package exp

import (
	"fmt"

	"repro/internal/obs/accuracy"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// The drift-injection experiment: prove end-to-end that the re-selection
// controller earns its keep. A step change is injected into a study
// workload (every post-step job runs at a fixed fraction of its maximum
// run time — InjectRuntimeStep), which makes any history-trained
// predictor under-predict by most of the limit while the maximum-run-time
// predictor becomes near-exact by construction. The workload is then
// scheduled twice: once with the template predictor pinned (baseline),
// once under a Reselector over the full stable. Both variants score every
// post-step completion identically — the serving estimate immediately
// before the predictor observes it — and the variants are compared by
// per-completion asymmetric cost with a Welch t-test.

// Stable builds the full predictor stable for w: the template predictor
// (first — re-selection starts from it), Gibbons, Downey, maximum run
// times, the global mean, and the deployment chain smith>maxrt. Every
// member is a fresh instance so shadow training is independent.
func Stable(w *workload.Workload) ([]accuracy.Member, error) {
	smith, err := NewPredictor(KindSmith, w)
	if err != nil {
		return nil, err
	}
	gib, err := NewPredictor(KindGibbons, w)
	if err != nil {
		return nil, err
	}
	dow, err := NewPredictor(KindDowneyAvg, w)
	if err != nil {
		return nil, err
	}
	chainSmith, err := NewPredictor(KindSmith, w)
	if err != nil {
		return nil, err
	}
	chain := predict.NewChain(chainSmith, predict.MaxRuntime{})
	return []accuracy.Member{
		{Name: smith.Name(), P: smith},
		{Name: gib.Name(), P: gib},
		{Name: dow.Name(), P: dow},
		{Name: predict.MaxRuntime{}.Name(), P: predict.MaxRuntime{}},
		{Name: (&predict.RunningMean{}).Name(), P: &predict.RunningMean{}},
		{Name: chain.Name(), P: chain},
	}, nil
}

// DriftConfig tunes the injected regime change and the controller.
type DriftConfig struct {
	StepFrac  float64 // step position as a fraction of the trace (default 0.5)
	Fill      float64 // post-step run time as a fraction of MaxRunTime (default 0.95)
	CostRatio float64 // asymmetric cost ratio (default stats.DefaultCostRatio)
	Window    int     // tracker window for serving + shadow streams (default 32)
	MinDwell  int64   // completions between switches (default 2×Window)
}

// DefaultDriftConfig returns the EXPERIMENTS.md sweep configuration.
func DefaultDriftConfig() DriftConfig {
	return DriftConfig{StepFrac: 0.5, Fill: 0.95, CostRatio: stats.DefaultCostRatio, Window: 32, MinDwell: 64}
}

func (dc *DriftConfig) fill() {
	if dc.StepFrac <= 0 || dc.StepFrac >= 1 {
		dc.StepFrac = 0.5
	}
	if dc.Fill <= 0 {
		dc.Fill = 0.95
	}
	if dc.CostRatio <= 0 {
		dc.CostRatio = stats.DefaultCostRatio
	}
	if dc.Window < 2 {
		dc.Window = 32
	}
	if dc.MinDwell <= 0 {
		dc.MinDwell = 2 * int64(dc.Window)
	}
}

// ReselectVariant is one arm of the comparison.
type ReselectVariant struct {
	Reselect     bool                   `json:"reselect"`
	Predictor    string                 `json:"predictor"` // serving predictor at the end of the run
	Switches     int64                  `json:"switches"`
	Events       []accuracy.SwitchEvent `json:"events,omitempty"`
	N            int                    `json:"postStepCompletions"`
	PostTail     float64                `json:"postTailScore"`       // TailCompositeSample over post-step signed errors
	PostMeanCost float64                `json:"postMeanCostSeconds"` // mean per-completion asymmetric cost
	costs        []float64              // per-completion asymmetric cost, for the t-test
}

// ReselectResult is one workload's baseline-versus-adaptive comparison.
type ReselectResult struct {
	Workload  string          `json:"workload"`
	Policy    string          `json:"policy"`
	StepAt    int             `json:"stepAt"`
	Fill      float64         `json:"fill"`
	CostRatio float64         `json:"costRatio"`
	Baseline  ReselectVariant `json:"baseline"`
	Adaptive  ReselectVariant `json:"adaptive"`
	// T and P compare the two variants' per-completion post-step
	// asymmetric costs (Welch, two-sided).
	T float64 `json:"t"`
	P float64 `json:"p"`
}

// ReselectExperiment runs the drift-injection comparison on one workload.
func ReselectExperiment(w *workload.Workload, pol sim.Policy, dc DriftConfig, cfg Config) (ReselectResult, error) {
	dc.fill()
	stepAt := int(dc.StepFrac * float64(len(w.Jobs)))
	wl := w.InjectRuntimeStep(stepAt, dc.Fill)
	post := make(map[int]bool, len(wl.Jobs)-stepAt)
	for _, j := range wl.Jobs[stepAt:] {
		post[j.ID] = true
	}

	base, err := reselectVariant(wl, pol, dc, post, false)
	if err != nil {
		return ReselectResult{}, err
	}
	adapt, err := reselectVariant(wl, pol, dc, post, true)
	if err != nil {
		return ReselectResult{}, err
	}
	out := ReselectResult{
		Workload: w.Name, Policy: pol.Name(),
		StepAt: stepAt, Fill: dc.Fill, CostRatio: dc.CostRatio,
		Baseline: base, Adaptive: adapt,
	}
	var mb, ma stats.Moments
	for _, c := range base.costs {
		mb.Add(c)
	}
	for _, c := range adapt.costs {
		ma.Add(c)
	}
	if r, err := stats.WelchTMoments(ma, mb); err == nil {
		out.T, out.P = r.T, r.P
	}
	return out, nil
}

// reselectVariant schedules wl once, serving either the pinned template
// predictor or the full re-selection pipeline, and scores every post-step
// completion with the estimate in force immediately before the predictor
// observes it.
func reselectVariant(wl *workload.Workload, pol sim.Policy, dc DriftConfig, post map[int]bool, reselect bool) (ReselectVariant, error) {
	stable, err := Stable(wl)
	if err != nil {
		return ReselectVariant{}, err
	}
	var pred predict.Predictor = stable[0].P
	var r *accuracy.Reselector
	if reselect {
		sw := predict.NewSwitchable(stable[0].P)
		shadowTr := accuracy.New(accuracy.WithWindow(dc.Window), accuracy.WithCostRatio(dc.CostRatio))
		sh := accuracy.NewShadow(stable, shadowTr, dc.Window)
		serving := accuracy.New(
			accuracy.WithWindow(dc.Window),
			accuracy.WithMinBaseline(dc.Window),
			accuracy.WithCostRatio(dc.CostRatio),
		)
		r = accuracy.NewReselector(sw, sh, serving, accuracy.ReselectConfig{MinDwell: dc.MinDwell})
		pred = r
	}

	v := ReselectVariant{Reselect: reselect}
	var errs []float64
	opts := sim.Options{
		// OnFinish runs before the engine feeds the completion to the
		// predictor, so the estimate is the one a queued job would have
		// been given at this instant.
		OnFinish: func(now int64, j *workload.Job) {
			if !post[j.ID] {
				return
			}
			e := float64(predict.Estimate(pred, j, 0, predict.DefaultRuntime) - j.RunTime)
			errs = append(errs, e)
			v.costs = append(v.costs, stats.AsymCost(e, dc.CostRatio))
		},
	}
	if _, err := sim.Run(wl, pol, pred, opts); err != nil {
		return ReselectVariant{}, err
	}
	v.Predictor = pred.Name()
	if r != nil {
		v.Switches = r.Switches()
		v.Events = r.Events()
	}
	v.N = len(errs)
	if len(errs) > 0 {
		v.PostTail = stats.TailCompositeSample(errs, dc.CostRatio)
		var m stats.Moments
		for _, c := range v.costs {
			m.Add(c)
		}
		v.PostMeanCost = m.Mean
	}
	return v, nil
}

// ReselectSweep runs the drift-injection comparison across the study
// workloads (or the single named one) under Backfill.
func ReselectSweep(names []string, dc DriftConfig, cfg Config) ([]ReselectResult, error) {
	if len(names) == 0 {
		names = workload.StudyNames
	}
	pol := sched.ByName("Backfill")
	if pol == nil {
		return nil, fmt.Errorf("exp: Backfill policy unavailable")
	}
	out := make([]ReselectResult, 0, len(names))
	for i, name := range names {
		w, err := workload.Study(name, cfg.Scale, cfg.Seed+int64(i)*1000)
		if err != nil {
			return nil, err
		}
		res, err := ReselectExperiment(w, pol, dc, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}
