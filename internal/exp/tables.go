package exp

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"text/tabwriter"

	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Table is a rendered experiment table: a caption, column headers, and
// string rows, mirroring the layout of the paper's tables.
type Table struct {
	ID      string // e.g. "Table 6"
	Caption string
	Headers []string
	Rows    [][]string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	fmt.Fprintf(w, "%s. %s\n", t.ID, t.Caption)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(t.Headers, "\t"))
	for _, r := range t.Rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	_, err := fmt.Fprintln(w)
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var sb strings.Builder
	_ = t.Render(&sb)
	return sb.String()
}

// studyWorkloads generates the four study workloads for a config.
func studyWorkloads(cfg Config) ([]*workload.Workload, error) {
	return workload.AllStudies(cfg.Scale, cfg.Seed)
}

// Table1 reproduces Table 1: the characteristics of the (synthetic stand-in)
// trace data.
func Table1(cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Table 1",
		Caption: "Characteristics of the trace data used in our studies (synthetic stand-ins)",
		Headers: []string{"Workload", "Nodes", "Requests", "MeanRunTime(min)", "OfferedLoad"},
	}
	for _, w := range ws {
		s := workload.Summarize(w)
		t.Rows = append(t.Rows, []string{
			s.Name,
			fmt.Sprintf("%d", s.MachineNodes),
			fmt.Sprintf("%d", s.NumRequests),
			fmt.Sprintf("%.2f", s.MeanRunTimeMin),
			fmt.Sprintf("%.2f", s.OfferedLoad),
		})
	}
	return t, nil
}

// forEachCell fans the (workload × policy) grid out to one goroutine per
// cell — every experiment builds its own predictor and clones its workload,
// so cells are independent — and assembles the rows in presentation order.
func forEachCell(ws []*workload.Workload, policies []sim.Policy,
	run func(w *workload.Workload, pol sim.Policy) ([]string, error)) ([][]string, error) {
	type slot struct {
		row []string
		err error
	}
	slots := make([]slot, len(ws)*len(policies))
	var wg sync.WaitGroup
	for wi, w := range ws {
		for pi, pol := range policies {
			wg.Add(1)
			go func(idx int, w *workload.Workload, pol sim.Policy) {
				defer wg.Done()
				row, err := run(w, pol)
				slots[idx] = slot{row: row, err: err}
			}(wi*len(policies)+pi, w, pol)
		}
	}
	wg.Wait()
	rows := make([][]string, 0, len(slots))
	for _, s := range slots {
		if s.err != nil {
			return nil, s.err
		}
		rows = append(rows, s.row)
	}
	return rows, nil
}

// waitTable runs the wait-time prediction experiment for every workload and
// the given policies under one predictor kind.
func waitTable(id, caption string, kind PredictorKind, policies []sim.Policy, cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Caption: caption,
		Headers: []string{"Workload", "Scheduling Algorithm", "Mean Error (minutes)", "Percentage of Mean Wait Time"},
	}
	rows, err := forEachCell(ws, policies, func(w *workload.Workload, pol sim.Policy) ([]string, error) {
		r, err := WaitTimeExperiment(w, pol, kind, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s %s/%s: %w", id, w.Name, pol.Name(), err)
		}
		return []string{
			r.Workload, r.Policy,
			fmt.Sprintf("%.2f", r.MeanErrMin),
			fmt.Sprintf("%.0f", r.PctMeanWait),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// schedTable runs the scheduling experiment for every workload under LWF
// and backfill with one predictor kind.
func schedTable(id, caption string, kind PredictorKind, cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      id,
		Caption: caption,
		Headers: []string{"Workload", "Scheduling Algorithm", "Utilization (percent)", "Mean Wait Time (minutes)"},
	}
	rows, err := forEachCell(ws, lwfBF(), func(w *workload.Workload, pol sim.Policy) ([]string, error) {
		r, err := SchedulingExperiment(w, pol, kind, cfg)
		if err != nil {
			return nil, fmt.Errorf("%s %s/%s: %w", id, w.Name, pol.Name(), err)
		}
		return []string{
			r.Workload, r.Policy,
			fmt.Sprintf("%.2f", r.Utilization),
			fmt.Sprintf("%.2f", r.MeanWaitMin),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

// lwfBF are the two policies of Table 4 (FCFS has zero error with actual
// run times, so the paper omits it).
func lwfBF() []sim.Policy { return []sim.Policy{sched.LWF{}, sched.Backfill{}} }

// allPolicies are the three policies of Tables 5–9.
func allPolicies() []sim.Policy {
	return []sim.Policy{sched.FCFS{}, sched.LWF{}, sched.Backfill{}}
}

// Table4 — wait-time prediction performance using actual run times.
func Table4(cfg Config) (*Table, error) {
	return waitTable("Table 4", "Wait-time prediction performance using actual run times",
		KindActual, lwfBF(), cfg)
}

// Table5 — wait-time prediction performance using maximum run times.
func Table5(cfg Config) (*Table, error) {
	return waitTable("Table 5", "Wait-time prediction performance using maximum run times",
		KindMaxRT, allPolicies(), cfg)
}

// Table6 — wait-time prediction performance using our run-time predictor.
func Table6(cfg Config) (*Table, error) {
	return waitTable("Table 6", "Wait-time prediction performance using our run-time predictor",
		KindSmith, allPolicies(), cfg)
}

// Table7 — wait-time prediction performance using Gibbons's predictor.
func Table7(cfg Config) (*Table, error) {
	return waitTable("Table 7", "Wait-time prediction performance using Gibbons's run-time predictor",
		KindGibbons, allPolicies(), cfg)
}

// Table8 — wait-time prediction performance using Downey's conditional
// average predictor.
func Table8(cfg Config) (*Table, error) {
	return waitTable("Table 8", "Wait-time prediction performance using Downey's conditional average run-time predictor",
		KindDowneyAvg, allPolicies(), cfg)
}

// Table9 — wait-time prediction performance using Downey's conditional
// median predictor.
func Table9(cfg Config) (*Table, error) {
	return waitTable("Table 9", "Wait-time prediction performance using Downey's conditional median run-time predictor",
		KindDowneyMed, allPolicies(), cfg)
}

// Table10 — scheduling performance using actual run times.
func Table10(cfg Config) (*Table, error) {
	return schedTable("Table 10", "Scheduling performance using actual run times", KindActual, cfg)
}

// Table11 — scheduling performance using maximum run times.
func Table11(cfg Config) (*Table, error) {
	return schedTable("Table 11", "Scheduling performance using maximum run times", KindMaxRT, cfg)
}

// Table12 — scheduling performance using our run-time prediction technique.
func Table12(cfg Config) (*Table, error) {
	return schedTable("Table 12", "Scheduling performance using our run-time prediction technique", KindSmith, cfg)
}

// Table13 — scheduling performance using Gibbons's predictor.
func Table13(cfg Config) (*Table, error) {
	return schedTable("Table 13", "Scheduling performance using Gibbons's run-time prediction technique", KindGibbons, cfg)
}

// Table14 — scheduling performance using Downey's conditional average.
func Table14(cfg Config) (*Table, error) {
	return schedTable("Table 14", "Scheduling performance using Downey's conditional average run-time predictor", KindDowneyAvg, cfg)
}

// Table15 — scheduling performance using Downey's conditional median.
func Table15(cfg Config) (*Table, error) {
	return schedTable("Table 15", "Scheduling performance using Downey's conditional median run-time predictor", KindDowneyMed, cfg)
}

// Section4Compression reproduces the §4 experiment: compress the SDSC
// interarrival times by 2× and compare all predictors' mean wait times
// under LWF and backfill.
func Section4Compression(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Section 4",
		Caption: "Mean wait times (minutes) on the 2x-compressed SDSC workloads",
		Headers: []string{"Workload", "Scheduling Algorithm", "actual", "maxrt", "smith", "gibbons", "downey-avg", "downey-med"},
	}
	kinds := []PredictorKind{KindActual, KindMaxRT, KindSmith, KindGibbons, KindDowneyAvg, KindDowneyMed}
	for i, name := range []string{"SDSC95", "SDSC96"} {
		base, err := workload.Study(name, cfg.Scale, cfg.Seed+int64(2+i)*1000)
		if err != nil {
			return nil, err
		}
		w := workload.Compress(base, 2)
		for _, pol := range lwfBF() {
			row := []string{w.Name, pol.Name()}
			for _, kind := range kinds {
				r, err := SchedulingExperiment(w, pol, kind, cfg)
				if err != nil {
					return nil, err
				}
				row = append(row, fmt.Sprintf("%.2f", r.MeanWaitMin))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	return t, nil
}

// AblationBackfillVariants compares the paper's conservative backfill with
// the EASY variant under actual and maximum run times.
func AblationBackfillVariants(cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "Ablation A1",
		Caption: "Conservative vs EASY backfill: mean wait time (minutes)",
		Headers: []string{"Workload", "Predictor", "Conservative", "EASY"},
	}
	for _, w := range ws {
		for _, kind := range []PredictorKind{KindActual, KindMaxRT} {
			cons, err := SchedulingExperiment(w, sched.Backfill{}, kind, cfg)
			if err != nil {
				return nil, err
			}
			easy, err := SchedulingExperiment(w, sched.Backfill{EASY: true}, kind, cfg)
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				w.Name, string(kind),
				fmt.Sprintf("%.2f", cons.MeanWaitMin),
				fmt.Sprintf("%.2f", easy.MeanWaitMin),
			})
		}
	}
	return t, nil
}

// AblationCancellations injects queue withdrawals (30% of jobs cancellable,
// 30-minute mean patience) into the two compressed SDSC workloads and
// re-runs the backfill scheduling comparison: the failure-injection check
// that the predictor ranking survives a workload where queued jobs
// disappear. Withdrawn jobs are excluded from the mean wait.
func AblationCancellations(cfg Config) (*Table, error) {
	t := &Table{
		ID:      "Ablation A2",
		Caption: "Backfill under 30% queue cancellations (2x-compressed SDSC): mean wait (minutes) / jobs withdrawn",
		Headers: []string{"Workload", "Predictor", "Mean Wait", "Withdrawn"},
	}
	for i, name := range []string{"SDSC95", "SDSC96"} {
		base, err := workload.Study(name, cfg.Scale, cfg.Seed+int64(2+i)*1000)
		if err != nil {
			return nil, err
		}
		w := workload.Compress(base, 2).InjectCancellations(0.3, 1800, cfg.Seed)
		for _, kind := range []PredictorKind{KindActual, KindMaxRT, KindSmith} {
			pred, err := NewPredictor(kind, w)
			if err != nil {
				return nil, err
			}
			res, err := sim.Run(w, sched.Backfill{}, pred, sim.Options{DefaultRuntime: cfg.DefaultRT})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				w.Name, string(kind),
				fmt.Sprintf("%.2f", res.MeanWaitMinutes()),
				fmt.Sprintf("%d", res.Cancelled),
			})
		}
	}
	return t, nil
}

// RuntimeErrors reports every predictor's raw run-time prediction accuracy
// on the LWF prediction workload of each trace — the numbers the paper
// quotes in the §3 and §4 prose ("run-time prediction errors that are from
// 33 to 73 percent of mean application run times", and the predictor
// ordering claims).
func RuntimeErrors(cfg Config) (*Table, error) {
	ws, err := studyWorkloads(cfg)
	if err != nil {
		return nil, err
	}
	kinds := []PredictorKind{KindSmith, KindGibbons, KindDowneyAvg, KindDowneyMed, KindMaxRT}
	t := &Table{
		ID:      "Run-time errors",
		Caption: "Mean absolute run-time prediction error as % of mean run time (LWF prediction workload)",
		Headers: append([]string{"Workload"}, func() []string {
			hs := make([]string, len(kinds))
			for i, k := range kinds {
				hs[i] = string(k)
			}
			return hs
		}()...),
	}
	for _, w := range ws {
		row := []string{w.Name}
		for _, kind := range kinds {
			r, err := RuntimePredictionError(w, sched.LWF{}, kind, cfg)
			if err != nil {
				return nil, fmt.Errorf("runtime-errors %s/%s: %w", w.Name, kind, err)
			}
			row = append(row, fmt.Sprintf("%.0f", r.PctMeanRT))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// TableFunc is the signature every table driver shares.
type TableFunc func(Config) (*Table, error)

// AllTables maps table identifiers to their drivers, in presentation order.
func AllTables() []struct {
	ID string
	Fn TableFunc
} {
	return []struct {
		ID string
		Fn TableFunc
	}{
		{"table1", Table1},
		{"table4", Table4},
		{"table5", Table5},
		{"table6", Table6},
		{"table7", Table7},
		{"table8", Table8},
		{"table9", Table9},
		{"table10", Table10},
		{"table11", Table11},
		{"table12", Table12},
		{"table13", Table13},
		{"table14", Table14},
		{"table15", Table15},
		{"section4", Section4Compression},
		{"ablation-backfill", AblationBackfillVariants},
		{"ablation-cancellations", AblationCancellations},
		{"futurework-statewait", FutureWorkStateWait},
		{"runtime-errors", RuntimeErrors},
		{"walkforward", WalkForwardTable},
		{"replication", ReplicationTable},
		{"metascheduling", MetaschedulingTable},
	}
}

// MarshalJSON renders the table as a JSON object with id, caption, headers,
// and rows, for machine-readable pipelines (cmd/tables -json).
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      string     `json:"id"`
		Caption string     `json:"caption"`
		Headers []string   `json:"headers"`
		Rows    [][]string `json:"rows"`
	}{t.ID, t.Caption, t.Headers, t.Rows})
}
