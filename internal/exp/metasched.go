package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metasim"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/workload"
)

// MetaschedulingTable quantifies the paper's motivating use case (§1):
// routing jobs across several systems by predicted turnaround. A
// three-machine pool serves a compressed SDSC95 workload under backfill;
// routers range from uninformed (random, round-robin) through
// queue-state-informed (least-work) to the paper's proposal
// (forward-simulated predicted turnaround with the template predictor).
func MetaschedulingTable(cfg Config) (*Table, error) {
	w, err := workload.Study("SDSC95", cfg.Scale, cfg.Seed+2000)
	if err != nil {
		return nil, err
	}
	// Compress to create contention; the pool has the same aggregate
	// capacity as two original machines.
	w = workload.Compress(w, 2)
	specs := []metasim.MachineSpec{
		{Name: "alpha", Nodes: 400, Policy: sched.Backfill{}},
		{Name: "beta", Nodes: 256, Policy: sched.Backfill{}},
		{Name: "gamma", Nodes: 144, Policy: sched.Backfill{}},
	}

	t := &Table{
		ID:      "Metascheduling",
		Caption: "Routing a 2x-compressed SDSC95 workload across three machines (backfill everywhere)",
		Headers: []string{"Router", "Mean Wait (min)", "Max Wait (min)", "alpha/beta/gamma jobs"},
	}
	type entry struct {
		router func() (metasim.Router, predict.Predictor)
	}
	entries := []entry{
		{func() (metasim.Router, predict.Predictor) {
			return metasim.NewRandom(cfg.Seed), predict.MaxRuntime{}
		}},
		{func() (metasim.Router, predict.Predictor) {
			return &metasim.RoundRobin{}, predict.MaxRuntime{}
		}},
		{func() (metasim.Router, predict.Predictor) {
			return metasim.LeastWork{}, predict.MaxRuntime{}
		}},
		{func() (metasim.Router, predict.Predictor) {
			p := predict.MaxRuntime{}
			return metasim.PredictedTurnaround{Pred: p, Policy: sched.Backfill{}}, p
		}},
		{func() (metasim.Router, predict.Predictor) {
			p := core.NewDefault(w)
			return metasim.PredictedTurnaround{Pred: p, Policy: sched.Backfill{}}, p
		}},
	}
	names := []string{"random", "round-robin", "least-work",
		"predicted-turnaround (maxrt)", "predicted-turnaround (smith)"}
	for i, e := range entries {
		router, pred := e.router()
		res, err := metasim.Run(w.Jobs, specs, router, pred)
		if err != nil {
			return nil, fmt.Errorf("metascheduling %s: %w", names[i], err)
		}
		t.Rows = append(t.Rows, []string{
			names[i],
			fmt.Sprintf("%.2f", res.MeanWaitMin),
			fmt.Sprintf("%.1f", res.MaxWaitMin),
			fmt.Sprintf("%d/%d/%d", res.Routed[0], res.Routed[1], res.Routed[2]),
		})
	}
	return t, nil
}
