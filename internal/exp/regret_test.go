package exp

import (
	"encoding/json"
	"sort"
	"strings"
	"testing"

	"repro/internal/workload"
)

func TestRegretClassOfDistribution(t *testing.T) {
	counts := map[string]int{}
	for id := 0; id < 1000; id++ {
		counts[RegretClassOf(&workload.Job{ID: id})]++
	}
	want := map[string]int{"interactive": 200, "standard": 500, "batch": 300}
	for cls, n := range want {
		if counts[cls] != n {
			t.Errorf("class %s: %d jobs per 1000, want %d", cls, counts[cls], n)
		}
	}
	// Deterministic: the class is a pure function of the ID.
	j := &workload.Job{ID: 7, Class: "DSI"}
	if RegretClassOf(j) != "batch" || RegretClassOf(j) != RegretClassOf(&workload.Job{ID: 7}) {
		t.Errorf("class of ID 7 = %s, want batch regardless of Class field", RegretClassOf(j))
	}
}

func TestRegretConfigValidation(t *testing.T) {
	if _, err := RegretExperiment(RegretConfig{}); err == nil {
		t.Fatal("empty sweep accepted")
	}
}

// TestRegretExperimentAcceptance runs the committed default sweep and checks
// the experiment's two qualitative claims: with perfect predictions the
// predictive stack dominates the FCFS/always-admit baseline on most
// workloads, and mean regret grows monotonically with the injected error
// scale at headroom 1.
func TestRegretExperimentAcceptance(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweep")
	}
	cfg := DefaultRegretConfig()
	r, err := RegretExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}

	baselines := map[string]RegretCell{}
	zeroErr := map[string]RegretCell{} // headroom 1 anchors
	for _, c := range r.Cells {
		if c.ShedRate < 0 || c.ShedRate > 1 {
			t.Errorf("%s %s: shed rate %v", c.Workload, c.Scheme, c.ShedRate)
		}
		switch {
		case c.Scheme == "fcfs-always":
			baselines[c.Workload] = c
		case c.ErrScale == 0 && c.Headroom == 1: //lint:allow floatcmp sweep knobs are exact values
			zeroErr[c.Workload] = c
			if c.Regret != 0 { //lint:allow floatcmp the anchor cell defines regret zero
				t.Errorf("%s anchor regret = %v, want 0", c.Workload, c.Regret)
			}
		}
	}
	if len(baselines) != 4 || len(zeroErr) != 4 {
		t.Fatalf("cells cover %d baselines / %d anchors, want 4/4", len(baselines), len(zeroErr))
	}

	dominated := 0
	for name, base := range baselines {
		z := zeroErr[name]
		if z.MeanWaitMin < base.MeanWaitMin &&
			z.Attainment["all"] >= base.Attainment["all"] && z.WaitBelowBaseline {
			dominated++
		} else {
			t.Logf("%s: not dominated (wait %.1f vs %.1f, SLO %.2f vs %.2f)",
				name, z.MeanWaitMin, base.MeanWaitMin, z.Attainment["all"], base.Attainment["all"])
		}
	}
	if dominated < 3 {
		t.Errorf("zero-error dominance on %d/4 workloads, want >= 3", dominated)
	}

	mean := r.MeanRegretByScale(1)
	scales := make([]float64, 0, len(mean))
	for s := range mean {
		scales = append(scales, s)
	}
	sort.Float64s(scales)
	if len(scales) != len(cfg.ErrScales) {
		t.Fatalf("regret series over %d scales, want %d", len(scales), len(cfg.ErrScales))
	}
	if mean[0] != 0 { //lint:allow floatcmp regret is exactly anchored at scale 0
		t.Errorf("mean regret at scale 0 = %v, want 0", mean[0])
	}
	for i := 1; i < len(scales); i++ {
		if mean[scales[i]] < mean[scales[i-1]] {
			t.Errorf("mean regret not monotone: scale %g -> %v after scale %g -> %v",
				scales[i], mean[scales[i]], scales[i-1], mean[scales[i-1]])
		}
	}
	if mean[scales[len(scales)-1]] <= 0 {
		t.Errorf("mean regret at max scale = %v, want > 0", mean[scales[len(scales)-1]])
	}
}

func TestRegretReportRenderAndJSON(t *testing.T) {
	cfg := RegretConfig{
		Config:    Config{Scale: 100, Seed: 7},
		ErrScales: []float64{0, 1},
		Biases:    []float64{0},
		Headrooms: []float64{1},
	}
	r, err := RegretExperiment(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads x (1 baseline + 1 anchor + 1 noisy cell).
	if len(r.Cells) != 12 {
		t.Fatalf("%d cells, want 12", len(r.Cells))
	}

	text := TableRegret(r).String()
	for _, want := range []string{"fcfs-always", "sjf-admit", "Regret", "SLO(all)"} {
		if !strings.Contains(text, want) {
			t.Errorf("rendered table missing %q", want)
		}
	}

	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back RegretReport
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Cells) != len(r.Cells) || back.Scale != cfg.Scale {
		t.Fatalf("round-trip lost cells: %d/%d", len(back.Cells), len(r.Cells))
	}
	if back.Classes["interactive"].WaitBudgetSec != 600 {
		t.Errorf("classes did not survive JSON: %+v", back.Classes)
	}
}
