package exp

import (
	"fmt"
	"sync"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Replication: the paper reports single-trace numbers (its traces are
// fixed); our synthetic stand-ins let us re-draw the workload and check
// that the headline comparison — scheduling with the template predictor vs
// actual and maximum run times — is stable across seeds rather than an
// artifact of one draw.

// ReplicateSeeds is the number of workload seeds per cell.
const ReplicateSeeds = 5

// CellStats summarizes one (workload, policy, predictor) cell across seeds.
type CellStats struct {
	Workload  string
	Policy    string
	Predictor PredictorKind
	// MeanWaitMin are the per-seed mean waits (minutes).
	MeanWaitMin []float64
	Mean        float64
	StdDev      float64
}

// ReplicateScheduling reruns the scheduling experiment for each predictor
// kind over ReplicateSeeds independently drawn workloads per study profile.
// Cells run concurrently.
func ReplicateScheduling(kinds []PredictorKind, cfg Config) ([]CellStats, error) {
	type cellKey struct {
		wi, pi, ki int
	}
	policies := lwfBF()
	cells := make([]CellStats, 0, len(workload.StudyNames)*len(policies)*len(kinds))
	idx := map[cellKey]int{}
	for wi, name := range workload.StudyNames {
		for pi, pol := range policies {
			for ki, kind := range kinds {
				idx[cellKey{wi, pi, ki}] = len(cells)
				cells = append(cells, CellStats{
					Workload: name, Policy: pol.Name(), Predictor: kind,
					MeanWaitMin: make([]float64, ReplicateSeeds),
				})
			}
		}
	}

	var wg sync.WaitGroup
	errs := make([]error, len(cells)*ReplicateSeeds)
	slot := 0
	for wi, name := range workload.StudyNames {
		for s := 0; s < ReplicateSeeds; s++ {
			// One workload draw serves all (policy, kind) pairs of this
			// seed so comparisons are paired.
			seed := cfg.Seed + int64(wi)*1000 + int64(s)*7777
			for pi, pol := range policies {
				for ki, kind := range kinds {
					wg.Add(1)
					go func(slot int, name string, seed int64, wi, pi, ki, s int, pol sim.Policy, kind PredictorKind) {
						defer wg.Done()
						w, err := workload.Study(name, cfg.Scale, seed)
						if err != nil {
							errs[slot] = err
							return
						}
						r, err := SchedulingExperiment(w, pol, kind, cfg)
						if err != nil {
							errs[slot] = err
							return
						}
						cells[idx[cellKey{wi, pi, ki}]].MeanWaitMin[s] = r.MeanWaitMin
					}(slot, name, seed, wi, pi, ki, s, pol, kind)
					slot++
				}
			}
		}
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i := range cells {
		m, v := stats.MeanVar(cells[i].MeanWaitMin)
		cells[i].Mean = m
		if v > 0 {
			cells[i].StdDev = stats.StdDev(cells[i].MeanWaitMin)
		}
	}
	return cells, nil
}

// ReplicationTable renders mean wait (mean ± sd over ReplicateSeeds seeds)
// for the oracle, maximum run times, and the template predictor.
func ReplicationTable(cfg Config) (*Table, error) {
	kinds := []PredictorKind{KindActual, KindMaxRT, KindSmith}
	cells, err := ReplicateScheduling(kinds, cfg)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID: "Replication",
		Caption: fmt.Sprintf("Mean wait (minutes, mean±sd over %d workload seeds; paired p for smith vs maxrt)",
			ReplicateSeeds),
		Headers: []string{"Workload", "Scheduling Algorithm", "actual", "maxrt", "smith", "p(smith≠maxrt)"},
	}
	// Cells arrive grouped by (workload, policy, kind) in construction
	// order: for each workload, for each policy, the three kinds.
	for i := 0; i < len(cells); i += len(kinds) {
		row := []string{cells[i].Workload, cells[i].Policy}
		for k := 0; k < len(kinds); k++ {
			c := cells[i+k]
			row = append(row, fmt.Sprintf("%.2f±%.2f", c.Mean, c.StdDev))
		}
		// The seeds are paired draws (same workload per seed), so the
		// paired test isolates the predictor effect from draw-to-draw
		// variance. kinds[1] = maxrt, kinds[2] = smith.
		pStr := "-"
		if r, err := stats.PairedT(cells[i+2].MeanWaitMin, cells[i+1].MeanWaitMin); err == nil {
			pStr = fmt.Sprintf("%.3f", r.P)
		}
		row = append(row, pStr)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
