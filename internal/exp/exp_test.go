package exp

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// testCfg keeps experiment tests fast: ~1% of full trace sizes.
var testCfg = Config{Scale: 100, Seed: 5}

func testWorkload(t *testing.T, name string) *workload.Workload {
	t.Helper()
	w, err := workload.Study(name, testCfg.Scale, testCfg.Seed)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestNewPredictorKinds(t *testing.T) {
	w := testWorkload(t, "ANL")
	for _, kind := range []PredictorKind{KindActual, KindMaxRT, KindSmith,
		KindGibbons, KindDowneyAvg, KindDowneyMed} {
		p, err := NewPredictor(kind, w)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p == nil {
			t.Fatalf("%s: nil predictor", kind)
		}
	}
	if _, err := NewPredictor("bogus", w); err == nil {
		t.Fatal("unknown kind should error")
	}
}

func TestWaitTimeExperimentFCFSActualIsExact(t *testing.T) {
	// With FCFS, the ground-truth scheduler ignores predictions and later
	// arrivals cannot overtake, so the oracle's wait predictions are exact:
	// Table 4 has no FCFS rows for precisely this reason.
	w := testWorkload(t, "SDSC95")
	r, err := WaitTimeExperiment(w, sched.FCFS{}, KindActual, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.MeanErrMin != 0 {
		t.Fatalf("FCFS+actual mean error = %v, want 0", r.MeanErrMin)
	}
	if r.N != len(w.Jobs) {
		t.Fatalf("predicted %d of %d", r.N, len(w.Jobs))
	}
}

func TestWaitTimeExperimentOrdering(t *testing.T) {
	// The paper's headline shape: with the backfill algorithm, the error
	// using actual run times is far below the error using maximum run
	// times; the template predictor falls in between.
	w := testWorkload(t, "ANL")
	actual, err := WaitTimeExperiment(w, sched.Backfill{}, KindActual, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	maxrt, err := WaitTimeExperiment(w, sched.Backfill{}, KindMaxRT, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	smith, err := WaitTimeExperiment(w, sched.Backfill{}, KindSmith, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if actual.MeanErrMin > maxrt.MeanErrMin {
		t.Errorf("actual (%v) should beat maxrt (%v)", actual.MeanErrMin, maxrt.MeanErrMin)
	}
	if smith.MeanErrMin > maxrt.MeanErrMin {
		t.Errorf("smith (%v) should beat maxrt (%v)", smith.MeanErrMin, maxrt.MeanErrMin)
	}
}

func TestSchedulingExperimentBasics(t *testing.T) {
	w := testWorkload(t, "CTC")
	r, err := SchedulingExperiment(w, sched.LWF{}, KindActual, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.Utilization <= 0 || r.Utilization > 100 {
		t.Fatalf("utilization = %v", r.Utilization)
	}
	if r.MeanWaitMin < 0 {
		t.Fatalf("mean wait = %v", r.MeanWaitMin)
	}
	if r.Workload != "CTC" || r.Policy != "LWF" || r.Predictor != "actual" {
		t.Fatalf("labels: %+v", r)
	}
}

func TestSchedulingUtilizationPredictorInsensitive(t *testing.T) {
	// Paper §4: "the accuracy of the run-time predictions has a minimal
	// effect on the utilization of the systems we are simulating."
	w := testWorkload(t, "SDSC96")
	var utils []float64
	for _, kind := range []PredictorKind{KindActual, KindMaxRT, KindSmith} {
		r, err := SchedulingExperiment(w, sched.Backfill{}, kind, testCfg)
		if err != nil {
			t.Fatal(err)
		}
		utils = append(utils, r.Utilization)
	}
	for i := 1; i < len(utils); i++ {
		diff := utils[i] - utils[0]
		if diff < 0 {
			diff = -diff
		}
		if diff > 5 { // percentage points
			t.Fatalf("utilization varies with predictor: %v", utils)
		}
	}
}

func TestRuntimePredictionError(t *testing.T) {
	w := testWorkload(t, "ANL")
	smith, err := RuntimePredictionError(w, sched.LWF{}, KindSmith, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	maxrt, err := RuntimePredictionError(w, sched.LWF{}, KindMaxRT, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := RuntimePredictionError(w, sched.LWF{}, KindActual, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if oracle.MeanErrMin != 0 {
		t.Fatalf("oracle run-time error = %v", oracle.MeanErrMin)
	}
	if smith.MeanErrMin >= maxrt.MeanErrMin {
		t.Fatalf("smith run-time error (%v) should beat maxrt (%v)",
			smith.MeanErrMin, maxrt.MeanErrMin)
	}
	if smith.N == 0 || smith.PctMeanRT <= 0 {
		t.Fatalf("degenerate result: %+v", smith)
	}
}

func TestSetTemplates(t *testing.T) {
	w := testWorkload(t, "ANL")
	custom := []core.Template{{Chars: workload.MaskOf(workload.CharUser), Pred: core.PredMean}}
	SetTemplates(w.Name, custom)
	defer SetTemplates(w.Name, nil)
	p, err := NewPredictor(KindSmith, w)
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := p.(*core.Predictor)
	if !ok {
		t.Fatalf("smith predictor has type %T", p)
	}
	if got := cp.Templates(); len(got) != 1 || got[0] != custom[0] {
		t.Fatalf("override not used: %+v", got)
	}
	// Removing the override restores the defaults.
	SetTemplates(w.Name, nil)
	p2, _ := NewPredictor(KindSmith, w)
	if len(p2.(*core.Predictor).Templates()) == 1 {
		t.Fatal("override not removed")
	}
}

func TestTable1(t *testing.T) {
	tab, err := Table1(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("Table 1 has %d rows", len(tab.Rows))
	}
	out := tab.String()
	for _, name := range workload.StudyNames {
		if !strings.Contains(out, name) {
			t.Errorf("Table 1 missing %s:\n%s", name, out)
		}
	}
}

func TestWaitAndSchedTableShapes(t *testing.T) {
	t4, err := Table4(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 8 { // 4 workloads × {LWF, Backfill}
		t.Fatalf("Table 4 has %d rows, want 8", len(t4.Rows))
	}
	t10, err := Table10(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(t10.Rows) != 8 {
		t.Fatalf("Table 10 has %d rows, want 8", len(t10.Rows))
	}
	if !strings.Contains(t10.String(), "Utilization") {
		t.Error("Table 10 missing utilization header")
	}
}

func TestAllTablesRegistryComplete(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range AllTables() {
		if e.Fn == nil {
			t.Fatalf("%s has nil driver", e.ID)
		}
		if ids[e.ID] {
			t.Fatalf("duplicate table id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"table1", "table4", "table5", "table6", "table7",
		"table8", "table9", "table10", "table11", "table12", "table13",
		"table14", "table15", "section4", "ablation-backfill"} {
		if !ids[want] {
			t.Errorf("registry missing %s", want)
		}
	}
}

func TestStateWaitExperiment(t *testing.T) {
	w := testWorkload(t, "ANL")
	r, err := StateWaitExperiment(w, sched.LWF{}, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if r.N != len(w.Jobs) {
		t.Fatalf("predicted %d of %d", r.N, len(w.Jobs))
	}
	if r.SimErrMin < 0 || r.StateErrMin < 0 {
		t.Fatalf("negative errors: %+v", r)
	}
	if r.Workload != "ANL" || r.Policy != "LWF" {
		t.Fatalf("labels: %+v", r)
	}
}

func TestRuntimeErrorsTable(t *testing.T) {
	tab, err := RuntimeErrors(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 4 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	if len(tab.Headers) != 6 { // workload + 5 predictors
		t.Fatalf("headers = %v", tab.Headers)
	}
}

func TestFutureWorkStateWaitTable(t *testing.T) {
	tab, err := FutureWorkStateWait(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 8 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
}

func TestWalkForward(t *testing.T) {
	w := testWorkload(t, "ANL")
	frs, err := WalkForward(w, KindSmith, 3, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(frs) != 3 {
		t.Fatalf("folds = %d", len(frs))
	}
	total := 0
	for i, fr := range frs {
		if fr.Fold != i+1 || fr.TestJobs <= 0 || fr.MeanErrMin < 0 {
			t.Fatalf("fold %d malformed: %+v", i, fr)
		}
		if fr.Covered > fr.TestJobs {
			t.Fatalf("coverage exceeds test size: %+v", fr)
		}
		total += fr.TestJobs
	}
	// All non-training jobs are tested exactly once.
	if want := len(w.Jobs) - len(w.Jobs)/4; total != want {
		t.Fatalf("tested %d jobs, want %d", total, want)
	}
	// Later folds have more history and should answer at least as many
	// test jobs in absolute terms is not guaranteed; but errors stay finite.
	if _, err := WalkForward(w, KindSmith, 0, testCfg); err == nil {
		t.Fatal("zero folds should error")
	}
	tiny := &workload.Workload{Name: "tiny", MachineNodes: 4,
		Jobs: w.Jobs[:3], Chars: w.Chars, HasMaxRT: w.HasMaxRT}
	if _, err := WalkForward(tiny, KindSmith, 3, testCfg); err == nil {
		t.Fatal("too-small trace should error")
	}
}

func TestReplicateScheduling(t *testing.T) {
	cells, err := ReplicateScheduling([]PredictorKind{KindActual, KindMaxRT}, testCfg)
	if err != nil {
		t.Fatal(err)
	}
	// 4 workloads × 2 policies × 2 kinds.
	if len(cells) != 16 {
		t.Fatalf("cells = %d", len(cells))
	}
	for _, c := range cells {
		if len(c.MeanWaitMin) != ReplicateSeeds {
			t.Fatalf("cell %v: %d seeds", c, len(c.MeanWaitMin))
		}
		if c.Mean < 0 || c.StdDev < 0 {
			t.Fatalf("cell stats: %+v", c)
		}
	}
	// Paired construction: the first cells belong to the first workload.
	if cells[0].Workload != "ANL" || cells[0].Policy != "LWF" {
		t.Fatalf("ordering: %+v", cells[0])
	}
}

func TestMetaschedulingTable(t *testing.T) {
	tab, err := MetaschedulingTable(testCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 5 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, r := range tab.Rows {
		names[r[0]] = true
	}
	for _, want := range []string{"random", "least-work", "predicted-turnaround (smith)"} {
		if !names[want] {
			t.Fatalf("missing router %q", want)
		}
	}
}

// TestAllTablesRunTiny executes every registered table driver end to end at
// a tiny scale: every driver must produce a non-empty, well-formed table.
func TestAllTablesRunTiny(t *testing.T) {
	tiny := Config{Scale: 200, Seed: 11}
	for _, e := range AllTables() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tab, err := e.Fn(tiny)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tab.Rows) == 0 || len(tab.Headers) == 0 {
				t.Fatalf("%s: empty table", e.ID)
			}
			for i, r := range tab.Rows {
				if len(r) != len(tab.Headers) {
					t.Fatalf("%s: row %d has %d cells, want %d",
						e.ID, i, len(r), len(tab.Headers))
				}
			}
			if tab.String() == "" {
				t.Fatalf("%s: empty rendering", e.ID)
			}
		})
	}
}
