package admission

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// DefaultClasses is the three-class SLO table the daemon and the
// experiments start from, mirroring sched.DefaultPriorities: interactive
// traffic has a tight budget and is never shed (a human is waiting and a
// wrong shed is worse than a missed SLO), standard work has an hour and is
// shed when the queue cannot honor it, and batch is the loose sheddable
// overflow tier.
func DefaultClasses() map[string]ClassConfig {
	return map[string]ClassConfig{
		"interactive": {WaitBudgetSec: 600, AlwaysAdmit: true},
		"standard":    {WaitBudgetSec: 3600, Sheddable: true},
		"batch":       {WaitBudgetSec: 4 * 3600, Sheddable: true},
	}
}

// ParseClasses parses a class-table flag value of the form
//
//	name=budget[:always|:shed][:tokens=N],name=budget...
//
// where budget is either a plain number of seconds or a Go duration
// ("45m", "2h"). Zero budget means no wait SLO. ":shed" marks the class
// sheddable, ":always" marks it always-admit (mutually exclusive), and
// ":tokens=N" caps admissions per token window. Example:
//
//	interactive=10m:always,standard=1h:shed,batch=4h:shed:tokens=200
//
// taint: sanitizer rejects malformed class specs before they shape admission budgets
func ParseClasses(spec string) (map[string]ClassConfig, error) {
	out := make(map[string]ClassConfig)
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		name, rest, ok := strings.Cut(field, "=")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("admission: class spec %q: want name=budget[:flags]", field)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("admission: class %q specified twice", name)
		}
		parts := strings.Split(rest, ":")
		budget, err := parseBudget(strings.TrimSpace(parts[0]))
		if err != nil {
			return nil, fmt.Errorf("admission: class %q: %v", name, err)
		}
		cc := ClassConfig{WaitBudgetSec: budget}
		for _, opt := range parts[1:] {
			opt = strings.TrimSpace(opt)
			switch {
			case opt == "shed":
				cc.Sheddable = true
			case opt == "always":
				cc.AlwaysAdmit = true
			case strings.HasPrefix(opt, "tokens="):
				n, err := strconv.ParseInt(opt[len("tokens="):], 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("admission: class %q: bad token budget %q", name, opt)
				}
				cc.TokensPerWindow = n
			default:
				return nil, fmt.Errorf("admission: class %q: unknown option %q", name, opt)
			}
		}
		if cc.Sheddable && cc.AlwaysAdmit {
			return nil, fmt.Errorf("admission: class %q is both sheddable and always-admit", name)
		}
		out[name] = cc
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("admission: empty class spec %q", spec)
	}
	return out, nil
}

// parseBudget accepts plain seconds ("3600") or a Go duration ("1h").
func parseBudget(s string) (int64, error) {
	if s == "" {
		return 0, fmt.Errorf("missing wait budget")
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		if n < 0 {
			return 0, fmt.Errorf("negative wait budget %d", n)
		}
		return n, nil
	}
	d, err := time.ParseDuration(s)
	if err != nil || d < 0 {
		return 0, fmt.Errorf("bad wait budget %q (want seconds or duration)", s)
	}
	return int64(d / time.Second), nil
}

// FormatClasses renders a class table back into ParseClasses syntax with
// deterministic (sorted) class order — used for logging the effective
// configuration.
func FormatClasses(classes map[string]ClassConfig) string {
	names := make([]string, 0, len(classes))
	for name := range classes {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		cc := classes[name]
		fmt.Fprintf(&b, "%s=%d", name, cc.WaitBudgetSec)
		if cc.AlwaysAdmit {
			b.WriteString(":always")
		}
		if cc.Sheddable {
			b.WriteString(":shed")
		}
		if cc.TokensPerWindow > 0 {
			fmt.Fprintf(&b, ":tokens=%d", cc.TokensPerWindow)
		}
	}
	return b.String()
}
