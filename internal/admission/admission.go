// Package admission closes the loop the paper leaves open: its wait-time
// predictor (§3, §5) is consumed offline, but a production scheduler would
// run the estimate at each arrival and decide — before the job ever queues
// — whether admitting it can meet the job's service-level objective.
//
// The AdmissionController here does exactly that. On arrival it estimates
// the job's queue wait against the live scheduler state (the state-based
// predictor of §5 when it has matching history, the §3 forward simulation
// otherwise) and compares the estimate with the job's SLO class budget:
//
//   - every job belongs to an SLO class (interactive / standard / batch by
//     default) with a wait budget;
//   - a headroom multiplier widens or tightens every budget at once — the
//     operator's knob for trading shed rate against SLO attainment;
//   - classes marked sheddable are rejected when their estimated wait
//     exceeds the (headroom-scaled) budget, optionally after trying to
//     overflow into a designated lower-SLO class's remaining budget;
//   - classes not marked sheddable are admitted anyway but counted, so
//     over-budget admissions are visible;
//   - per-class token budgets cap how many admissions a class may consume
//     per window, so a flood in one class cannot starve the rest.
//
// The decision entry point (Decide) carries a // hotpath: contract: it is
// pure arithmetic over atomics — no locks, no clock reads — so it can sit
// on a scheduler's submission path. The wait estimation (Evaluate) does
// the forward simulation and is traced as an "admission.decide" span.
//
// The shape of the controller follows the inference-sim iter-14
// PredictiveSLOAdmission design (SNIPPETS.md): physics-informed admission
// using the same predictions that drive the scheduler, per-class budgets,
// a headroom knob, and never shedding traffic whose class forbids it.
package admission

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/predict"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

// ClassConfig is the SLO contract of one admission class.
type ClassConfig struct {
	// WaitBudgetSec is the class's wait SLO in seconds: a job whose
	// estimated wait exceeds Headroom × WaitBudgetSec is over budget.
	// Zero means the class has no wait SLO (every estimate is within
	// budget).
	WaitBudgetSec int64 `json:"waitBudgetSec"`
	// AlwaysAdmit bypasses both the budget and the token cap — for
	// critical traffic that must never be shed (the iter-14 rule:
	// "Critical: ALWAYS admit").
	AlwaysAdmit bool `json:"alwaysAdmit,omitempty"`
	// Sheddable jobs are rejected when over budget; non-sheddable jobs
	// are admitted anyway and counted as over-budget admissions.
	Sheddable bool `json:"sheddable,omitempty"`
	// TokensPerWindow caps admissions of this class per token window
	// (0 = uncapped). Tokens are consumed only by admitted jobs.
	TokensPerWindow int64 `json:"tokensPerWindow,omitempty"`
}

// Config assembles an AdmissionController.
type Config struct {
	// Classes maps class names to their SLO contracts. Required.
	Classes map[string]ClassConfig
	// DefaultClass receives jobs whose class label is empty or unknown.
	// It must be a key of Classes. Empty selects "standard" when present,
	// otherwise construction fails.
	DefaultClass string
	// Headroom multiplies every budget at decision time: 1.0 admits up to
	// the exact budget, 2.0 admits estimates up to twice the budget, 0.5
	// sheds anything beyond half. Zero defaults to 1.0; negative values
	// are rejected.
	Headroom float64
	// OverflowClass, when set, names the class whose remaining budget and
	// tokens an over-budget sheddable job may fall back to before being
	// shed (admitted with Overflow=true). Must be a key of Classes.
	OverflowClass string
	// TokenWindowSec is the token-replenishment window in seconds
	// (default 3600). Windows are anchored to the decision clock passed
	// into Decide, so simulated and wall-clock deployments both work.
	TokenWindowSec int64
	// Classifier extracts a job's class label; nil uses Job.Class.
	// Labels not present in Classes fall back to DefaultClass.
	Classifier func(j *workload.Job) string

	// TotalNodes is the machine size the wait estimates simulate against.
	TotalNodes int
	// Policy is the scheduling policy the forward simulation replays.
	Policy sim.Policy
	// Predictor supplies the assumed durations of queued and running jobs
	// for the forward simulation (the predictor under test, §3).
	Predictor predict.Predictor
	// Decision supplies the estimates the simulated scheduler itself uses
	// (maximum run times in the paper's deployed configuration). Nil uses
	// Predictor.
	Decision predict.Predictor
	// DefaultRT is the estimate of last resort (0 = predict.DefaultRuntime).
	DefaultRT int64
	// StatePred, when non-nil, is consulted first: if the state-based
	// predictor (§5) has history for the current scheduler state, its
	// estimate is used and the forward simulation is skipped. Feed it
	// realized waits with RecordStart (Attach wires this automatically).
	StatePred *waitpred.StatePredictor
	// Metrics, when non-nil, receives the admission.* counters and gauges.
	Metrics *obs.Registry
}

// Reason explains an admission decision.
type Reason string

// The decision reasons, in rough order of desirability.
const (
	// ReasonAlways: the class is marked AlwaysAdmit.
	ReasonAlways Reason = "always"
	// ReasonWithinBudget: the estimated wait fits the headroom-scaled budget.
	ReasonWithinBudget Reason = "within_budget"
	// ReasonNoPrediction: no wait estimate was available; the controller
	// fails open (an admission controller that sheds blind is worse than
	// none).
	ReasonNoPrediction Reason = "no_prediction"
	// ReasonOverBudget: over budget but the class is not sheddable.
	ReasonOverBudget Reason = "over_budget"
	// ReasonOverflow: over its own budget but admitted into the overflow
	// class's remaining budget and tokens.
	ReasonOverflow Reason = "overflow"
	// ReasonShedBudget: over budget and sheddable — rejected.
	ReasonShedBudget Reason = "shed_budget"
	// ReasonShedTokens: the class exhausted its admission tokens for the
	// current window — rejected.
	ReasonShedTokens Reason = "shed_tokens"
)

// Decision is the outcome of one admission evaluation.
type Decision struct {
	// Admit reports whether the job may enter the queue.
	Admit bool `json:"admit"`
	// Class is the SLO class the job was filed under.
	Class string `json:"class"`
	// Reason explains the outcome.
	Reason Reason `json:"reason"`
	// Source names the wait estimator used: "state" (§5 state-based),
	// "forward" (§3 forward simulation), or "none".
	Source string `json:"source,omitempty"`
	// PredictedWaitSec is the estimated queue wait (0 when Source is "none").
	PredictedWaitSec int64 `json:"predictedWaitSec"`
	// BudgetSec is the class's base wait budget.
	BudgetSec int64 `json:"budgetSec"`
	// EffectiveBudgetSec is the headroom-scaled budget the estimate was
	// compared against.
	EffectiveBudgetSec int64 `json:"effectiveBudgetSec"`
	// Overflow reports admission via the overflow class.
	Overflow bool `json:"overflow,omitempty"`
}

// classState is one class's runtime state: its config, its token bucket,
// and its cached per-class counters. Token state is atomics-only so the
// decision path takes no locks.
type classState struct {
	cfg         ClassConfig
	name        string
	effBudget   int64 // Headroom × WaitBudgetSec, precomputed
	windowStart atomic.Int64
	taken       atomic.Int64
	admitted    *obs.Counter
	shed        *obs.Counter
}

// Controller decides admission per SLO class from online wait estimates.
// All methods are safe for concurrent use; Decide is lock-free.
type Controller struct {
	cfg Config
	// bounded by the validated Config: the class table is populated once in
	// New from cfg.Classes and never grows afterward
	classes     map[string]*classState
	defaultCls  *classState
	overflowCls *classState // nil when no overflow is configured
	tokenWindow int64

	mDecisions    *obs.Counter
	mAdmitted     *obs.Counter
	mShed         *obs.Counter
	mShedBudget   *obs.Counter
	mShedTokens   *obs.Counter
	mOverflow     *obs.Counter
	mOverBudget   *obs.Counter
	mNoPrediction *obs.Counter
	mStateEst     *obs.Counter
	mForwardEst   *obs.Counter
}

// Validate checks the configuration without mutating it: the class table,
// budgets, headroom, machine size, and the policy/predictor wiring must all
// be coherent before a controller is built from them. Fields with a
// documented zero-value default (DefaultClass, Headroom, TokenWindowSec,
// Decision, DefaultRT) are treated as unset rather than invalid; New applies
// those defaults after validation. Callers assembling a Config from
// operator input (flags, environment, request bodies) should call Validate
// themselves so a bad knob is rejected before it reaches New.
//
// taint: sanitizer rejects class tables and knobs no controller should be built from
func (cfg Config) Validate() error {
	if len(cfg.Classes) == 0 {
		return fmt.Errorf("admission: no classes configured")
	}
	if cfg.Headroom < 0 {
		return fmt.Errorf("admission: negative headroom %g", cfg.Headroom)
	}
	if math.IsNaN(cfg.Headroom) || math.IsInf(cfg.Headroom, 0) {
		return fmt.Errorf("admission: headroom %g must be finite", cfg.Headroom)
	}
	dc := cfg.DefaultClass
	if dc == "" {
		dc = "standard" // the default New will apply; it must still exist
	}
	if _, ok := cfg.Classes[dc]; !ok {
		return fmt.Errorf("admission: default class %q not configured", dc)
	}
	if cfg.OverflowClass != "" {
		if _, ok := cfg.Classes[cfg.OverflowClass]; !ok {
			return fmt.Errorf("admission: overflow class %q not configured", cfg.OverflowClass)
		}
	}
	if cfg.TotalNodes <= 0 {
		return fmt.Errorf("admission: nonpositive machine size %d", cfg.TotalNodes)
	}
	if cfg.Policy == nil {
		return fmt.Errorf("admission: no scheduling policy configured")
	}
	if cfg.Predictor == nil {
		return fmt.Errorf("admission: no run-time predictor configured")
	}
	for name, cc := range cfg.Classes {
		if cc.WaitBudgetSec < 0 {
			return fmt.Errorf("admission: class %q has negative wait budget", name)
		}
		if cc.TokensPerWindow < 0 {
			return fmt.Errorf("admission: class %q has negative token budget", name)
		}
	}
	return nil
}

// New validates the configuration, applies the documented defaults, and
// builds a controller. The class table it installs is consulted on every
// subsequent admission decision, so the configuration must come through
// Validate (called here, and again by flag-parsing callers before they
// hand the config over).
//
// taint: sink installs the class tables and budgets every admission decision consults
func New(cfg Config) (*Controller, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Headroom == 0 { //lint:allow floatcmp zero is the unset flag value, not a computed quantity
		cfg.Headroom = 1.0
	}
	if cfg.DefaultClass == "" {
		cfg.DefaultClass = "standard"
	}
	if cfg.TokenWindowSec <= 0 {
		cfg.TokenWindowSec = 3600
	}
	if cfg.Decision == nil {
		cfg.Decision = cfg.Predictor
	}
	if cfg.DefaultRT <= 0 {
		cfg.DefaultRT = predict.DefaultRuntime
	}

	c := &Controller{cfg: cfg, classes: make(map[string]*classState, len(cfg.Classes)), tokenWindow: cfg.TokenWindowSec}
	reg := cfg.Metrics
	counter := func(name string) *obs.Counter {
		if reg == nil {
			return new(obs.Counter) // unregistered but functional, so Decide never nil-checks
		}
		return reg.Counter(name) //lint:allow obsnames registration helper; every call site passes a literal admission.* name
	}
	// Deterministic registration order keeps metric snapshots stable.
	names := make([]string, 0, len(cfg.Classes))
	for name := range cfg.Classes {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		cc := cfg.Classes[name]
		st := &classState{
			cfg:       cc,
			name:      name,
			effBudget: int64(cfg.Headroom * float64(cc.WaitBudgetSec)),
			admitted:  counter("admission.class." + name + ".admitted"),
			shed:      counter("admission.class." + name + ".shed"),
		}
		st.windowStart.Store(-1 << 62) // first decision opens the first window
		c.classes[name] = st
	}
	c.defaultCls = c.classes[cfg.DefaultClass]
	if cfg.OverflowClass != "" {
		c.overflowCls = c.classes[cfg.OverflowClass]
	}
	c.mDecisions = counter("admission.decisions")
	c.mAdmitted = counter("admission.admitted")
	c.mShed = counter("admission.shed")
	c.mShedBudget = counter("admission.shed_budget")
	c.mShedTokens = counter("admission.shed_tokens")
	c.mOverflow = counter("admission.overflow")
	c.mOverBudget = counter("admission.over_budget")
	c.mNoPrediction = counter("admission.no_prediction")
	c.mStateEst = counter("admission.estimates_state")
	c.mForwardEst = counter("admission.estimates_forward")
	if reg != nil {
		reg.Gauge("admission.headroom").Set(cfg.Headroom)
		reg.Gauge("admission.classes").SetInt(int64(len(cfg.Classes)))
		reg.Gauge("admission.token_window_seconds").SetInt(cfg.TokenWindowSec)
	}
	return c, nil
}

// Headroom returns the controller's headroom multiplier.
func (c *Controller) Headroom() float64 { return c.cfg.Headroom }

// classOf resolves the job's class state, falling back to the default
// class for empty or unknown labels.
func (c *Controller) classOf(j *workload.Job) *classState {
	label := ""
	if c.cfg.Classifier != nil {
		label = c.cfg.Classifier(j)
	} else {
		label = j.Class
	}
	if st, ok := c.classes[label]; ok {
		return st
	}
	return c.defaultCls
}

// takeToken consumes one admission token from the class's current window,
// reporting whether one was available. Classes without a token cap always
// succeed. The window rolls forward lazily off the decision clock; all
// state is atomics, no locks.
func (st *classState) takeToken(now, window int64) bool {
	if st.cfg.TokensPerWindow <= 0 {
		return true
	}
	for {
		ws := st.windowStart.Load()
		if now-ws < window {
			break
		}
		if st.windowStart.CompareAndSwap(ws, now) {
			st.taken.Store(0)
			break
		}
	}
	return st.taken.Add(1) <= st.cfg.TokensPerWindow
}

// Decide is the pure admission decision: given a job and its wait
// estimate (havePrediction=false when no estimator could produce one), it
// applies the class budget, headroom, token, and overflow rules and
// updates the admission.* counters. It is the entry point a scheduler
// calls on its submission path, so it must not stall: all state it
// touches is atomic, and the decision clock is the caller's (simulated
// or wall) time.
//
// hotpath: no-lock no-clock
func (c *Controller) Decide(now int64, j *workload.Job, predictedWait int64, havePrediction bool) Decision {
	st := c.classOf(j)
	c.mDecisions.Inc()
	d := Decision{
		Class:              st.name,
		PredictedWaitSec:   predictedWait,
		BudgetSec:          st.cfg.WaitBudgetSec,
		EffectiveBudgetSec: st.effBudget,
	}
	if !havePrediction {
		d.PredictedWaitSec = 0
	}

	admit := func(reason Reason, counted *classState) Decision {
		d.Admit = true
		d.Reason = reason
		c.mAdmitted.Inc()
		counted.admitted.Inc()
		return d
	}
	shed := func(reason Reason) Decision {
		d.Admit = false
		d.Reason = reason
		c.mShed.Inc()
		st.shed.Inc()
		if reason == ReasonShedTokens {
			c.mShedTokens.Inc()
		} else {
			c.mShedBudget.Inc()
		}
		return d
	}

	if st.cfg.AlwaysAdmit {
		return admit(ReasonAlways, st)
	}
	switch {
	case !havePrediction:
		if !st.takeToken(now, c.tokenWindow) {
			return shed(ReasonShedTokens)
		}
		c.mNoPrediction.Inc()
		return admit(ReasonNoPrediction, st)
	case st.cfg.WaitBudgetSec == 0 || predictedWait <= st.effBudget:
		if !st.takeToken(now, c.tokenWindow) {
			return shed(ReasonShedTokens)
		}
		return admit(ReasonWithinBudget, st)
	case !st.cfg.Sheddable:
		if !st.takeToken(now, c.tokenWindow) {
			return shed(ReasonShedTokens)
		}
		c.mOverBudget.Inc()
		return admit(ReasonOverBudget, st)
	}
	// Over budget and sheddable: try the overflow class, then shed.
	if of := c.overflowCls; of != nil && of != st &&
		(of.cfg.WaitBudgetSec == 0 || predictedWait <= of.effBudget) &&
		of.takeToken(now, c.tokenWindow) {
		d.Overflow = true
		c.mOverflow.Inc()
		return admit(ReasonOverflow, of)
	}
	return shed(ReasonShedBudget)
}

// decisionEst is the estimator the simulated scheduler (and the state
// capture) uses — the same estimates the real scheduler would schedule by.
func (c *Controller) decisionEst(j *workload.Job, age int64) int64 {
	return predict.Estimate(c.cfg.Decision, j, age, c.cfg.DefaultRT)
}

// estimateWait produces the job's wait estimate for the current scheduler
// state: the state-based predictor when it has matching history, the
// forward simulation otherwise. queue must not contain target (the job is
// being admitted, not yet queued).
func (c *Controller) estimateWait(ctx context.Context, now int64, target *workload.Job,
	queue, running []*workload.Job) (wait int64, ok bool, source string) {

	if sp := c.cfg.StatePred; sp != nil {
		st := waitpred.CaptureState(now, queue, running, c.cfg.TotalNodes, c.decisionEst)
		jobWork := int64(target.Nodes) * c.decisionEst(target, 0)
		if w, ok := sp.PredictWait(st, target, jobWork); ok {
			c.mStateEst.Inc()
			return w, true, "state"
		}
	}
	vq := make([]*workload.Job, 0, len(queue)+1)
	vq = append(vq, queue...)
	vq = append(vq, target)
	start, err := waitpred.PredictStartCtx(ctx, now, target, vq, running,
		c.cfg.TotalNodes, c.cfg.Policy, c.cfg.Predictor, c.cfg.Decision, c.cfg.DefaultRT)
	if err != nil {
		return 0, false, "none"
	}
	c.mForwardEst.Inc()
	wait = start - now
	if wait < 0 {
		wait = 0
	}
	return wait, true, "forward"
}

// EvaluateCtx estimates the target's wait against the given scheduler
// state and decides admission, recording the whole evaluation as an
// "admission.decide" span (class, estimate source, predicted wait,
// budget, verdict) when ctx carries an active trace. queue is the current
// queue in arrival order WITHOUT the target; running is the running set.
func (c *Controller) EvaluateCtx(ctx context.Context, now int64, target *workload.Job,
	queue, running []*workload.Job) Decision {

	ctx, span := trace.StartSpan(ctx, "admission.decide")
	wait, ok, source := c.estimateWait(ctx, now, target, queue, running)
	d := c.Decide(now, target, wait, ok)
	d.Source = source
	if span != nil {
		span.SetAttr("class", d.Class)
		span.SetAttr("reason", string(d.Reason))
		span.SetAttr("source", d.Source)
		span.SetAttrInt("predicted_wait_seconds", d.PredictedWaitSec)
		span.SetAttrInt("budget_seconds", d.EffectiveBudgetSec)
		if d.Admit {
			span.SetAttrInt("admit", 1)
		} else {
			span.SetAttrInt("admit", 0)
		}
		span.End()
	}
	return d
}

// Evaluate is EvaluateCtx without tracing.
func (c *Controller) Evaluate(now int64, target *workload.Job, queue, running []*workload.Job) Decision {
	return c.EvaluateCtx(context.Background(), now, target, queue, running)
}

// Attach wires the controller into simulator options: arrivals pass
// through Evaluate, and — when a state predictor is configured — realized
// waits of admitted jobs feed back into it at start time, closing the §5
// learning loop online. Existing OnStart/OnShed handlers are preserved.
// The binding assumes the single-threaded simulator event loop.
func (c *Controller) Attach(opts *sim.Options) {
	type pendingState struct {
		state   waitpred.State
		jobWork int64
	}
	pending := make(map[int]pendingState)
	opts.Admission = func(now int64, j *workload.Job, queue, running []*workload.Job, free, total int) bool {
		d := c.Evaluate(now, j, queue, running)
		if d.Admit && c.cfg.StatePred != nil {
			st := waitpred.CaptureState(now, queue, running, total, c.decisionEst)
			pending[j.ID] = pendingState{state: st, jobWork: int64(j.Nodes) * c.decisionEst(j, 0)}
		}
		return d.Admit
	}
	prevStart := opts.OnStart
	opts.OnStart = func(now int64, j *workload.Job) {
		if p, ok := pending[j.ID]; ok {
			c.cfg.StatePred.ObserveWait(p.state, j, p.jobWork, j.WaitTime())
			delete(pending, j.ID)
		}
		if prevStart != nil {
			prevStart(now, j)
		}
	}
}
