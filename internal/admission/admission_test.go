package admission

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/predict"
	"repro/internal/sched"
	"repro/internal/sim"
	"repro/internal/waitpred"
	"repro/internal/workload"
)

func job(id, nodes int, rt int64, class string) *workload.Job {
	return &workload.Job{ID: id, Nodes: nodes, RunTime: rt, MaxRunTime: rt, Class: class}
}

func testConfig() Config {
	return Config{
		Classes:    DefaultClasses(),
		TotalNodes: 8,
		Policy:     sched.FCFS{},
		Predictor:  predict.Oracle{},
	}
}

func mustNew(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewValidation(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
		want   string
	}{
		{"no classes", func(c *Config) { c.Classes = nil }, "no classes"},
		{"negative headroom", func(c *Config) { c.Headroom = -1 }, "negative headroom"},
		{"unknown default", func(c *Config) { c.DefaultClass = "gold" }, "default class"},
		{"unknown overflow", func(c *Config) { c.OverflowClass = "gold" }, "overflow class"},
		{"no machine", func(c *Config) { c.TotalNodes = 0 }, "machine size"},
		{"no policy", func(c *Config) { c.Policy = nil }, "policy"},
		{"no predictor", func(c *Config) { c.Predictor = nil }, "predictor"},
		{"negative budget", func(c *Config) {
			c.Classes["bad"] = ClassConfig{WaitBudgetSec: -1}
		}, "negative wait budget"},
		{"negative tokens", func(c *Config) {
			c.Classes["bad"] = ClassConfig{TokensPerWindow: -1}
		}, "negative token budget"},
	}
	for _, tc := range cases {
		cfg := testConfig()
		tc.mutate(&cfg)
		if _, err := New(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func TestNewDefaults(t *testing.T) {
	c := mustNew(t, testConfig())
	if c.Headroom() != 1.0 { //lint:allow floatcmp exact default
		t.Errorf("default headroom = %g, want 1", c.Headroom())
	}
	if c.defaultCls == nil || c.defaultCls.name != "standard" {
		t.Errorf("default class = %+v, want standard", c.defaultCls)
	}
}

func TestDecideBudgets(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := testConfig()
	cfg.Metrics = reg
	c := mustNew(t, cfg)

	// Interactive is always-admit: even an absurd estimate admits.
	d := c.Decide(0, job(1, 1, 60, "interactive"), 1<<40, true)
	if !d.Admit || d.Reason != ReasonAlways {
		t.Fatalf("interactive: %+v, want always-admit", d)
	}
	// Standard within its 3600s budget.
	d = c.Decide(0, job(2, 1, 60, "standard"), 3600, true)
	if !d.Admit || d.Reason != ReasonWithinBudget {
		t.Fatalf("standard within: %+v", d)
	}
	// Standard over budget and sheddable: shed.
	d = c.Decide(0, job(3, 1, 60, "standard"), 3601, true)
	if d.Admit || d.Reason != ReasonShedBudget {
		t.Fatalf("standard over: %+v, want shed_budget", d)
	}
	// Unknown class falls back to the default class (standard).
	d = c.Decide(0, job(4, 1, 60, "mystery"), 10, true)
	if !d.Admit || d.Class != "standard" {
		t.Fatalf("unknown class: %+v, want standard fallback", d)
	}
	// No prediction fails open.
	d = c.Decide(0, job(5, 1, 60, "standard"), 0, false)
	if !d.Admit || d.Reason != ReasonNoPrediction {
		t.Fatalf("no prediction: %+v, want fail-open", d)
	}

	snap := reg.Snapshot()
	checks := map[string]int64{
		"admission.decisions":                  5,
		"admission.admitted":                   4,
		"admission.shed":                       1,
		"admission.shed_budget":                1,
		"admission.no_prediction":              1,
		"admission.class.standard.admitted":    3,
		"admission.class.standard.shed":        1,
		"admission.class.interactive.admitted": 1,
	}
	for name, want := range checks {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestDecideNonSheddableOverBudget(t *testing.T) {
	cfg := testConfig()
	cfg.Classes = map[string]ClassConfig{
		"standard": {WaitBudgetSec: 100}, // not sheddable
	}
	c := mustNew(t, cfg)
	d := c.Decide(0, job(1, 1, 60, "standard"), 500, true)
	if !d.Admit || d.Reason != ReasonOverBudget {
		t.Fatalf("non-sheddable over budget: %+v, want over_budget admit", d)
	}
}

func TestDecideHeadroom(t *testing.T) {
	cfg := testConfig()
	cfg.Classes = map[string]ClassConfig{"standard": {WaitBudgetSec: 100, Sheddable: true}}
	cfg.Headroom = 2.0
	c := mustNew(t, cfg)
	if d := c.Decide(0, job(1, 1, 60, "standard"), 199, true); !d.Admit {
		t.Fatalf("headroom 2.0, wait 199 of budget 100: %+v, want admit", d)
	}
	if d := c.Decide(0, job(2, 1, 60, "standard"), 201, true); d.Admit {
		t.Fatalf("headroom 2.0, wait 201 of budget 100: %+v, want shed", d)
	}

	// Tight headroom sheds below the nominal budget.
	cfg.Headroom = 0.5
	c = mustNew(t, cfg)
	if d := c.Decide(0, job(3, 1, 60, "standard"), 60, true); d.Admit {
		t.Fatalf("headroom 0.5, wait 60 of budget 100: %+v, want shed", d)
	}
}

func TestDecideZeroBudgetMeansNoSLO(t *testing.T) {
	cfg := testConfig()
	cfg.Classes = map[string]ClassConfig{"standard": {WaitBudgetSec: 0, Sheddable: true}}
	c := mustNew(t, cfg)
	if d := c.Decide(0, job(1, 1, 60, "standard"), 1<<40, true); !d.Admit {
		t.Fatalf("zero budget: %+v, want admit (no wait SLO)", d)
	}
}

func TestDecideOverflow(t *testing.T) {
	cfg := testConfig()
	cfg.Classes = map[string]ClassConfig{
		"standard": {WaitBudgetSec: 100, Sheddable: true},
		"batch":    {WaitBudgetSec: 1000, Sheddable: true, TokensPerWindow: 1},
	}
	cfg.OverflowClass = "batch"
	c := mustNew(t, cfg)

	// Over standard's budget but within batch's: admitted via overflow.
	d := c.Decide(0, job(1, 1, 60, "standard"), 500, true)
	if !d.Admit || d.Reason != ReasonOverflow || !d.Overflow {
		t.Fatalf("overflow: %+v, want overflow admit", d)
	}
	if d.Class != "standard" {
		t.Errorf("overflow decision class = %q, want the job's own class", d.Class)
	}
	// Batch's single token is spent: the next overflow attempt sheds.
	d = c.Decide(0, job(2, 1, 60, "standard"), 500, true)
	if d.Admit || d.Reason != ReasonShedBudget {
		t.Fatalf("overflow with exhausted tokens: %+v, want shed_budget", d)
	}
	// Over even batch's budget: shed without consuming overflow tokens.
	d = c.Decide(0, job(3, 1, 60, "standard"), 5000, true)
	if d.Admit {
		t.Fatalf("beyond overflow budget: %+v, want shed", d)
	}
}

func TestDecideTokens(t *testing.T) {
	cfg := testConfig()
	cfg.Classes = map[string]ClassConfig{
		"standard": {WaitBudgetSec: 1000, TokensPerWindow: 2},
	}
	cfg.TokenWindowSec = 100
	c := mustNew(t, cfg)

	for i := 0; i < 2; i++ {
		if d := c.Decide(10, job(i, 1, 60, "standard"), 1, true); !d.Admit {
			t.Fatalf("token %d: %+v, want admit", i, d)
		}
	}
	d := c.Decide(10, job(3, 1, 60, "standard"), 1, true)
	if d.Admit || d.Reason != ReasonShedTokens {
		t.Fatalf("exhausted tokens: %+v, want shed_tokens", d)
	}
	// Shed decisions do not consume tokens for later arrivals in the window.
	if d = c.Decide(50, job(4, 1, 60, "standard"), 1, true); d.Admit {
		t.Fatalf("still within window: %+v, want shed_tokens", d)
	}
	// A new window replenishes.
	if d = c.Decide(110, job(5, 1, 60, "standard"), 1, true); !d.Admit {
		t.Fatalf("new window: %+v, want admit", d)
	}
}

func TestEvaluateForwardSimulation(t *testing.T) {
	cfg := testConfig()
	cfg.TotalNodes = 4
	c := mustNew(t, cfg)

	// Empty machine: zero wait, admit, forward source.
	target := job(10, 2, 600, "standard")
	d := c.Evaluate(0, target, nil, nil)
	if !d.Admit || d.Source != "forward" || d.PredictedWaitSec != 0 {
		t.Fatalf("empty machine: %+v", d)
	}

	// Machine held for 2 hours by a running job: a standard job's wait
	// estimate (7200s) exceeds its 3600s budget — shed.
	hog := job(1, 4, 7200, "standard")
	hog.StartTime = 0
	d = c.Evaluate(0, target, nil, []*workload.Job{hog})
	if d.Admit || d.PredictedWaitSec != 7200 || d.Reason != ReasonShedBudget {
		t.Fatalf("hogged machine: %+v, want shed at 7200s", d)
	}

	// Same state, interactive class: admitted regardless.
	d = c.Evaluate(0, job(11, 2, 600, "interactive"), nil, []*workload.Job{hog})
	if !d.Admit || d.Reason != ReasonAlways {
		t.Fatalf("interactive on hogged machine: %+v", d)
	}
}

func TestEvaluateQueueAhead(t *testing.T) {
	// Queued jobs ahead of the target delay it under FCFS: 4-node machine,
	// a 1000s hog running, one 4-node 500s job queued ahead. The target
	// (sheddable, 1200s budget) starts at 1500s — over budget.
	cfg := testConfig()
	cfg.TotalNodes = 4
	cfg.Classes = map[string]ClassConfig{"standard": {WaitBudgetSec: 1200, Sheddable: true}}
	c := mustNew(t, cfg)

	hog := job(1, 4, 1000, "standard")
	hog.StartTime = 0
	ahead := job(2, 4, 500, "standard")
	target := job(3, 4, 100, "standard")
	d := c.Evaluate(0, target, []*workload.Job{ahead}, []*workload.Job{hog})
	if d.Admit || d.PredictedWaitSec != 1500 {
		t.Fatalf("queued-ahead: %+v, want shed at 1500s", d)
	}
}

func TestEvaluateStateSource(t *testing.T) {
	cfg := testConfig()
	cfg.TotalNodes = 4
	sp := waitpred.NewStatePredictor(waitpred.DefaultStateTemplates(false))
	cfg.StatePred = sp
	c := mustNew(t, cfg)

	target := job(10, 2, 600, "standard")
	// No history yet: falls back to the forward simulation.
	if d := c.Evaluate(0, target, nil, nil); d.Source != "forward" {
		t.Fatalf("no history: source %q, want forward", d.Source)
	}
	// Seed matching history (two observations so the CI is defined) for the
	// empty-machine state, then the state path must win.
	st := waitpred.CaptureState(0, nil, nil, 4, c.decisionEst)
	jw := int64(target.Nodes) * c.decisionEst(target, 0)
	sp.ObserveWait(st, target, jw, 100)
	sp.ObserveWait(st, target, jw, 100)
	d := c.Evaluate(0, target, nil, nil)
	if d.Source != "state" || d.PredictedWaitSec != 100 {
		t.Fatalf("with history: %+v, want state source at 100s", d)
	}
}

func TestAttachSimSheds(t *testing.T) {
	// 4-node machine, three identical 4-node 7200s jobs at t=0. The first
	// admits (empty machine), the rest would wait ≥ 7200s ≥ the 3600s
	// standard budget and must be shed. The shed jobs never start.
	cfg := testConfig()
	cfg.TotalNodes = 4
	c := mustNew(t, cfg)

	jobs := []*workload.Job{
		job(1, 4, 7200, "standard"),
		job(2, 4, 7200, "standard"),
		job(3, 4, 7200, "standard"),
	}
	w := &workload.Workload{Name: "shed", MachineNodes: 4, Jobs: jobs}
	var opts sim.Options
	c.Attach(&opts)
	var shedIDs []int
	opts.OnShed = func(now int64, j *workload.Job) { shedIDs = append(shedIDs, j.ID) }

	res, err := sim.Run(w, sched.FCFS{}, predict.Oracle{}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shed != 2 {
		t.Fatalf("Shed = %d, want 2 (got shed IDs %v)", res.Shed, shedIDs)
	}
	if len(shedIDs) != 2 || shedIDs[0] != 2 || shedIDs[1] != 3 {
		t.Fatalf("shed IDs = %v, want [2 3]", shedIDs)
	}
	for _, j := range res.Jobs {
		if j.Shed {
			if j.StartTime != 0 || j.EndTime != 0 {
				t.Errorf("shed job %d has start %d end %d, want never started", j.ID, j.StartTime, j.EndTime)
			}
			continue
		}
		if j.EndTime == 0 {
			t.Errorf("admitted job %d never completed", j.ID)
		}
	}
	if res.Jobs[0].Shed || !res.Jobs[1].Shed || !res.Jobs[2].Shed {
		t.Fatalf("shed flags = %v %v %v, want [false true true]",
			res.Jobs[0].Shed, res.Jobs[1].Shed, res.Jobs[2].Shed)
	}
}

func TestAttachFeedsStatePredictor(t *testing.T) {
	cfg := testConfig()
	cfg.TotalNodes = 4
	sp := waitpred.NewStatePredictor(waitpred.DefaultStateTemplates(false))
	cfg.StatePred = sp
	c := mustNew(t, cfg)

	jobs := []*workload.Job{
		job(1, 2, 300, "standard"),
		job(2, 2, 300, "standard"),
		job(3, 2, 300, "standard"),
	}
	w := &workload.Workload{Name: "learn", MachineNodes: 4, Jobs: jobs}
	var opts sim.Options
	c.Attach(&opts)
	if _, err := sim.Run(w, sched.FCFS{}, predict.Oracle{}, opts); err != nil {
		t.Fatal(err)
	}
	if sp.Categories() == 0 {
		t.Fatal("state predictor learned nothing from admitted starts")
	}
}

func TestAttachPreservesOnStart(t *testing.T) {
	cfg := testConfig()
	cfg.TotalNodes = 4
	c := mustNew(t, cfg)
	var opts sim.Options
	var started []int
	opts.OnStart = func(now int64, j *workload.Job) { started = append(started, j.ID) }
	c.Attach(&opts)
	w := &workload.Workload{Name: "chain", MachineNodes: 4,
		Jobs: []*workload.Job{job(1, 2, 300, "standard")}}
	if _, err := sim.Run(w, sched.FCFS{}, predict.Oracle{}, opts); err != nil {
		t.Fatal(err)
	}
	if len(started) != 1 || started[0] != 1 {
		t.Fatalf("chained OnStart saw %v, want [1]", started)
	}
}

func TestParseClasses(t *testing.T) {
	got, err := ParseClasses("interactive=10m:always,standard=3600:shed,batch=4h:shed:tokens=200")
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]ClassConfig{
		"interactive": {WaitBudgetSec: 600, AlwaysAdmit: true},
		"standard":    {WaitBudgetSec: 3600, Sheddable: true},
		"batch":       {WaitBudgetSec: 14400, Sheddable: true, TokensPerWindow: 200},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d classes, want %d", len(got), len(want))
	}
	for name, w := range want {
		if got[name] != w {
			t.Errorf("class %q = %+v, want %+v", name, got[name], w)
		}
	}

	bad := []string{
		"",
		"=600",
		"a",
		"a=abc",
		"a=-5",
		"a=600:gold",
		"a=600:tokens=x",
		"a=600:shed:always",
		"a=600,a=700",
	}
	for _, spec := range bad {
		if _, err := ParseClasses(spec); err == nil {
			t.Errorf("ParseClasses(%q) accepted, want error", spec)
		}
	}
}

func TestFormatClassesRoundTrip(t *testing.T) {
	classes := DefaultClasses()
	spec := FormatClasses(classes)
	back, err := ParseClasses(spec)
	if err != nil {
		t.Fatalf("round-trip of %q: %v", spec, err)
	}
	for name, cc := range classes {
		if back[name] != cc {
			t.Errorf("round-trip class %q = %+v, want %+v", name, back[name], cc)
		}
	}
}

func TestClassifierOverride(t *testing.T) {
	cfg := testConfig()
	cfg.Classifier = func(j *workload.Job) string {
		if j.Nodes >= 4 {
			return "batch"
		}
		return "interactive"
	}
	c := mustNew(t, cfg)
	if d := c.Decide(0, job(1, 8, 60, "standard"), 0, true); d.Class != "batch" {
		t.Fatalf("classifier override: class %q, want batch", d.Class)
	}
	if d := c.Decide(0, job(2, 1, 60, "standard"), 0, true); d.Class != "interactive" {
		t.Fatalf("classifier override: class %q, want interactive", d.Class)
	}
}

// BenchmarkAdmissionDecide measures the pure decision path — the part on
// the scheduler's submission hot path (estimation excluded, as in a
// deployment where the estimate is computed asynchronously or cached).
func BenchmarkAdmissionDecide(b *testing.B) {
	cfg := testConfig()
	cfg.Classes["standard"] = ClassConfig{WaitBudgetSec: 3600, Sheddable: true, TokensPerWindow: 1 << 40}
	c, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	jb := job(1, 2, 600, "standard")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := c.Decide(int64(i), jb, int64(i)%7200, true)
		if d.Class == "" {
			b.Fatal("empty class")
		}
	}
}
