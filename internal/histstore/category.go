// Package histstore is the online category-history store behind the
// paper's prediction technique. Every completed job is inserted into the
// category of each matching template (§2.1 step 3), and predictions are
// means or regressions over those categories — so at production scale the
// category database is the hot shared state: millions of inserts streaming
// in while every submission fans out into dozens of category reads.
//
// The store keeps that state
//
//   - incremental: each category carries Welford count/mean/M2 moments
//     (stats.Moments) maintained across insertion and ring-buffer eviction,
//     so the paper's mean predictions and confidence intervals are O(1)
//     per category instead of a batch recompute;
//   - concurrent: categories are sharded by key hash, each shard
//     publishing an immutable copy-on-write view through an atomic
//     pointer, so predictions are lock-free pointer loads from any number
//     of goroutines while inserts serialize only against other inserts to
//     the same shard;
//   - durable: an append-only write-ahead log records every insert before
//     it is applied, and periodic snapshots (written to a temporary file
//     and atomically renamed) bound recovery time; recovery is snapshot
//     load + WAL replay, and the WAL is compacted after each snapshot.
//
// The package is deliberately ignorant of jobs and templates: keys are
// opaque strings (internal/core builds them from template/value
// combinations) and values are Points. internal/core layers the paper's
// estimate selection on top via its store-backed predictor mode.
package histstore

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Point is one completed job's contribution to a category.
type Point struct {
	// RunTime is the absolute run time in seconds.
	RunTime float64
	// Ratio is RunTime divided by the user-supplied maximum run time, or
	// NaN when the job carried no maximum.
	Ratio float64
	// Nodes is the job's node count (a float so regressions can consume
	// it directly).
	Nodes float64
}

// Validate reports whether the point may enter a category: run time and
// node count must be positive and finite (Ratio may be NaN for jobs
// without a user-supplied maximum). Store.Insert enforces this on the
// write path so the WAL and snapshots never hold a point that recovery
// would reject — recovery-time validation must never be the first gate
// for data the write path accepted.
//
// taint: sanitizer rejects non-positive and non-finite points before they are journaled
func (p Point) Validate() error {
	if !(p.RunTime > 0) || math.IsInf(p.RunTime, 0) {
		return fmt.Errorf("histstore: point run time %v must be positive and finite", p.RunTime)
	}
	if !(p.Nodes > 0) || math.IsInf(p.Nodes, 0) {
		return fmt.Errorf("histstore: point node count %v must be positive and finite", p.Nodes)
	}
	return nil
}

// Category is the bounded history of one (template, value-combination)
// pair: a ring buffer of the most recent points plus running Welford
// moments over the current contents, for absolute run times and for
// run-time/maximum ratios. The moments are finalized (mean and variance
// materialized) on every mutation, so the predict path reads them with two
// plain loads instead of re-deriving them per request.
//
// A Category is not internally synchronized. The batch (single-goroutine)
// predictor mutates one in place through Insert; the Store instead treats
// every published category as immutable and mutates through cowInsert,
// which returns a successor snapshot — that is what makes the store's
// read path lock-free.
type Category struct {
	maxHistory int // 0 = unlimited
	points     []Point
	head       int // ring start when bounded and full

	abs stats.Moments // moments of Point.RunTime
	rat stats.Moments // moments of Point.Ratio (NaN-skipping)

	// Finalized aggregates, recomputed by finalize() after every
	// mutation: the MeanVar() of abs and rat at observe time, bit-for-bit
	// what a read-time MeanVar() on the same moments would return.
	absMean, absVar float64
	ratMean, ratVar float64
}

// NewCategory creates an empty category retaining at most maxHistory
// points (0 = unlimited).
func NewCategory(maxHistory int) *Category {
	if maxHistory < 0 {
		maxHistory = 0
	}
	return &Category{maxHistory: maxHistory}
}

// MaxHistory returns the category's history bound (0 = unlimited).
func (c *Category) MaxHistory() int { return c.maxHistory }

// Size returns the number of points currently stored.
func (c *Category) Size() int { return len(c.points) }

// Abs returns the running moments of the absolute run times.
func (c *Category) Abs() *stats.Moments { return &c.abs }

// Rat returns the running moments of the run-time/maximum ratios.
func (c *Category) Rat() *stats.Moments { return &c.rat }

// AbsStats returns the finalized absolute-run-time aggregates: the mean,
// variance, and sample count materialized at observe time. The values are
// bit-for-bit Abs().MeanVar() and Abs().N.
func (c *Category) AbsStats() (mean, variance float64, n int) {
	return c.absMean, c.absVar, c.abs.N
}

// RatStats returns the finalized run-time/maximum-ratio aggregates,
// bit-for-bit Rat().MeanVar() and Rat().N.
func (c *Category) RatStats() (mean, variance float64, n int) {
	return c.ratMean, c.ratVar, c.rat.N
}

// finalize materializes the moment aggregates the predict path consumes.
// Called after every mutation and restore, so readers of a published
// category never touch MeanVar.
func (c *Category) finalize() {
	c.absMean, c.absVar = c.abs.MeanVar()
	c.ratMean, c.ratVar = c.rat.MeanVar()
}

// Insert adds a completed job's point, evicting the oldest point when the
// bounded history is full (paper step 3(b)ii). Moments are updated
// incrementally: the evicted point is removed before the new one is added,
// so they always describe exactly the ring's current contents.
func (c *Category) Insert(p Point) {
	if c.maxHistory > 0 && len(c.points) == c.maxHistory {
		old := c.points[c.head]
		c.abs.Remove(old.RunTime)
		c.rat.Remove(old.Ratio)
		c.points[c.head] = p
		c.head = (c.head + 1) % c.maxHistory
	} else {
		c.points = append(c.points, p)
	}
	c.abs.Add(p.RunTime)
	c.rat.Add(p.Ratio)
	c.finalize()
}

// cowInsert returns a successor snapshot with p inserted, leaving c
// untouched — the Store's copy-on-write path. The arithmetic is exactly
// Insert's (the moments are copied by value and stepped identically), so a
// chain of cowInserts is bit-for-bit a chain of Inserts.
//
// While the ring is still filling, the clone appends to the shared backing
// array instead of copying: the new element lands at index len(c.points),
// which is past the length of every previously published snapshot, so no
// reader can observe the write. Only the writer (serialized by the shard
// mutex) extends the array, always from the newest snapshot, so two clones
// never contend for the same slot. Once the bounded ring is full, eviction
// must overwrite a slot readers can see, and the clone degrades to a full
// O(maxHistory) copy — the price of keeping readers lock-free, paid by the
// rare writes instead of the dominant reads.
func (c *Category) cowInsert(p Point) *Category {
	nc := &Category{maxHistory: c.maxHistory, head: c.head, abs: c.abs, rat: c.rat}
	if c.maxHistory > 0 && len(c.points) == c.maxHistory {
		nc.points = make([]Point, c.maxHistory)
		copy(nc.points, c.points)
		old := nc.points[nc.head]
		nc.abs.Remove(old.RunTime)
		nc.rat.Remove(old.Ratio)
		nc.points[nc.head] = p
		nc.head = (nc.head + 1) % nc.maxHistory
	} else {
		nc.points = append(c.points, p)
	}
	nc.abs.Add(p.RunTime)
	nc.rat.Add(p.Ratio)
	nc.finalize()
	return nc
}

// ForEach visits every stored point (order unspecified).
func (c *Category) ForEach(f func(Point)) {
	for _, p := range c.points {
		f(p)
	}
}

// persistState is the category's full durable state: the raw ring slice
// (in storage order, with the head index), plus both moment sets verbatim.
// Snapshots persist the moments rather than rebuilding them from the
// points because the live moments are the product of the category's whole
// add/evict history; rebuilding from the surviving points alone would
// drift from the live values in the low bits and break the store's
// bit-for-bit recovery guarantee.
type persistState struct {
	MaxHistory int
	Head       int
	Points     []Point
	Abs, Rat   stats.Moments
}

// state captures the category's durable state. The points slice is a copy.
func (c *Category) state() persistState {
	return persistState{
		MaxHistory: c.maxHistory,
		Head:       c.head,
		Points:     append([]Point(nil), c.points...),
		Abs:        c.abs,
		Rat:        c.rat,
	}
}

// restoreCategory rebuilds a category from persisted state, validating the
// ring invariants.
//
// taint: sanitizer rejects persisted state whose ring shape or points are invalid
func restoreCategory(ps persistState) (*Category, error) {
	if ps.MaxHistory < 0 {
		return nil, fmt.Errorf("histstore: negative maxHistory %d", ps.MaxHistory)
	}
	if ps.MaxHistory > 0 && len(ps.Points) > ps.MaxHistory {
		return nil, fmt.Errorf("histstore: %d points exceed history bound %d",
			len(ps.Points), ps.MaxHistory)
	}
	if ps.Head != 0 && (ps.MaxHistory == 0 || ps.Head < 0 || ps.Head >= ps.MaxHistory) {
		return nil, fmt.Errorf("histstore: ring head %d out of range for history %d",
			ps.Head, ps.MaxHistory)
	}
	for _, p := range ps.Points {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("histstore: invalid point %+v: %w", p, err)
		}
	}
	c := NewCategory(ps.MaxHistory)
	c.points = append(c.points, ps.Points...)
	c.head = ps.Head
	c.abs = ps.Abs
	c.rat = ps.Rat
	c.finalize()
	return c, nil
}

// RestorePoints rebuilds a category from a bare point sequence (no saved
// moments), recomputing moments by sequential insertion. This is the
// compatibility path for legacy core checkpoints, which predate moment
// persistence; it restores the same predictions but not necessarily the
// same low-order moment bits as the process that wrote the file.
func RestorePoints(maxHistory, head int, pts []Point) (*Category, error) {
	c, err := restoreCategory(persistState{MaxHistory: maxHistory, Head: head, Points: pts})
	if err != nil {
		return nil, err
	}
	c.abs = stats.Moments{}
	c.rat = stats.Moments{}
	for _, p := range pts {
		c.abs.Add(p.RunTime)
		c.rat.Add(p.Ratio)
	}
	c.finalize()
	return c, nil
}

// Head returns the ring-start index (for persistence).
func (c *Category) Head() int { return c.head }

// Points returns a copy of the raw ring contents in storage order (for
// persistence; pair with Head to reconstruct the ring).
func (c *Category) Points() []Point { return append([]Point(nil), c.points...) }
