// Package histstore is the online category-history store behind the
// paper's prediction technique. Every completed job is inserted into the
// category of each matching template (§2.1 step 3), and predictions are
// means or regressions over those categories — so at production scale the
// category database is the hot shared state: millions of inserts streaming
// in while every submission fans out into dozens of category reads.
//
// The store keeps that state
//
//   - incremental: each category carries Welford count/mean/M2 moments
//     (stats.Moments) maintained across insertion and ring-buffer eviction,
//     so the paper's mean predictions and confidence intervals are O(1)
//     per category instead of a batch recompute;
//   - concurrent: categories are sharded by key hash, each shard guarded
//     by its own RWMutex, so inserts and predictions from many goroutines
//     proceed in parallel and only collide within a shard;
//   - durable: an append-only write-ahead log records every insert before
//     it is applied, and periodic snapshots (written to a temporary file
//     and atomically renamed) bound recovery time; recovery is snapshot
//     load + WAL replay, and the WAL is compacted after each snapshot.
//
// The package is deliberately ignorant of jobs and templates: keys are
// opaque strings (internal/core builds them from template/value
// combinations) and values are Points. internal/core layers the paper's
// estimate selection on top via its store-backed predictor mode.
package histstore

import (
	"fmt"
	"math"

	"repro/internal/stats"
)

// Point is one completed job's contribution to a category.
type Point struct {
	// RunTime is the absolute run time in seconds.
	RunTime float64
	// Ratio is RunTime divided by the user-supplied maximum run time, or
	// NaN when the job carried no maximum.
	Ratio float64
	// Nodes is the job's node count (a float so regressions can consume
	// it directly).
	Nodes float64
}

// Validate reports whether the point may enter a category: run time and
// node count must be positive and finite (Ratio may be NaN for jobs
// without a user-supplied maximum). Store.Insert enforces this on the
// write path so the WAL and snapshots never hold a point that recovery
// would reject — recovery-time validation must never be the first gate
// for data the write path accepted.
func (p Point) Validate() error {
	if !(p.RunTime > 0) || math.IsInf(p.RunTime, 0) {
		return fmt.Errorf("histstore: point run time %v must be positive and finite", p.RunTime)
	}
	if !(p.Nodes > 0) || math.IsInf(p.Nodes, 0) {
		return fmt.Errorf("histstore: point node count %v must be positive and finite", p.Nodes)
	}
	return nil
}

// Category is the bounded history of one (template, value-combination)
// pair: a ring buffer of the most recent points plus running Welford
// moments over the current contents, for absolute run times and for
// run-time/maximum ratios.
//
// A Category is not internally synchronized; the Store serializes access
// through its shard locks, and a batch (single-goroutine) predictor may
// use one directly.
type Category struct {
	maxHistory int // 0 = unlimited
	points     []Point
	head       int // ring start when bounded and full

	abs stats.Moments // moments of Point.RunTime
	rat stats.Moments // moments of Point.Ratio (NaN-skipping)
}

// NewCategory creates an empty category retaining at most maxHistory
// points (0 = unlimited).
func NewCategory(maxHistory int) *Category {
	if maxHistory < 0 {
		maxHistory = 0
	}
	return &Category{maxHistory: maxHistory}
}

// MaxHistory returns the category's history bound (0 = unlimited).
func (c *Category) MaxHistory() int { return c.maxHistory }

// Size returns the number of points currently stored.
func (c *Category) Size() int { return len(c.points) }

// Abs returns the running moments of the absolute run times.
func (c *Category) Abs() *stats.Moments { return &c.abs }

// Rat returns the running moments of the run-time/maximum ratios.
func (c *Category) Rat() *stats.Moments { return &c.rat }

// Insert adds a completed job's point, evicting the oldest point when the
// bounded history is full (paper step 3(b)ii). Moments are updated
// incrementally: the evicted point is removed before the new one is added,
// so they always describe exactly the ring's current contents.
func (c *Category) Insert(p Point) {
	if c.maxHistory > 0 && len(c.points) == c.maxHistory {
		old := c.points[c.head]
		c.abs.Remove(old.RunTime)
		c.rat.Remove(old.Ratio)
		c.points[c.head] = p
		c.head = (c.head + 1) % c.maxHistory
	} else {
		c.points = append(c.points, p)
	}
	c.abs.Add(p.RunTime)
	c.rat.Add(p.Ratio)
}

// ForEach visits every stored point (order unspecified).
func (c *Category) ForEach(f func(Point)) {
	for _, p := range c.points {
		f(p)
	}
}

// persistState is the category's full durable state: the raw ring slice
// (in storage order, with the head index), plus both moment sets verbatim.
// Snapshots persist the moments rather than rebuilding them from the
// points because the live moments are the product of the category's whole
// add/evict history; rebuilding from the surviving points alone would
// drift from the live values in the low bits and break the store's
// bit-for-bit recovery guarantee.
type persistState struct {
	MaxHistory int
	Head       int
	Points     []Point
	Abs, Rat   stats.Moments
}

// state captures the category's durable state. The points slice is a copy.
func (c *Category) state() persistState {
	return persistState{
		MaxHistory: c.maxHistory,
		Head:       c.head,
		Points:     append([]Point(nil), c.points...),
		Abs:        c.abs,
		Rat:        c.rat,
	}
}

// restoreCategory rebuilds a category from persisted state, validating the
// ring invariants.
func restoreCategory(ps persistState) (*Category, error) {
	if ps.MaxHistory < 0 {
		return nil, fmt.Errorf("histstore: negative maxHistory %d", ps.MaxHistory)
	}
	if ps.MaxHistory > 0 && len(ps.Points) > ps.MaxHistory {
		return nil, fmt.Errorf("histstore: %d points exceed history bound %d",
			len(ps.Points), ps.MaxHistory)
	}
	if ps.Head != 0 && (ps.MaxHistory == 0 || ps.Head < 0 || ps.Head >= ps.MaxHistory) {
		return nil, fmt.Errorf("histstore: ring head %d out of range for history %d",
			ps.Head, ps.MaxHistory)
	}
	for _, p := range ps.Points {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("histstore: invalid point %+v: %w", p, err)
		}
	}
	c := NewCategory(ps.MaxHistory)
	c.points = append(c.points, ps.Points...)
	c.head = ps.Head
	c.abs = ps.Abs
	c.rat = ps.Rat
	return c, nil
}

// RestorePoints rebuilds a category from a bare point sequence (no saved
// moments), recomputing moments by sequential insertion. This is the
// compatibility path for legacy core checkpoints, which predate moment
// persistence; it restores the same predictions but not necessarily the
// same low-order moment bits as the process that wrote the file.
func RestorePoints(maxHistory, head int, pts []Point) (*Category, error) {
	c, err := restoreCategory(persistState{MaxHistory: maxHistory, Head: head, Points: pts})
	if err != nil {
		return nil, err
	}
	c.abs = stats.Moments{}
	c.rat = stats.Moments{}
	for _, p := range pts {
		c.abs.Add(p.RunTime)
		c.rat.Add(p.Ratio)
	}
	return c, nil
}

// Head returns the ring-start index (for persistence).
func (c *Category) Head() int { return c.head }

// Points returns a copy of the raw ring contents in storage order (for
// persistence; pair with Head to reconstruct the ring).
func (c *Category) Points() []Point { return append([]Point(nil), c.points...) }
