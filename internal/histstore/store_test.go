package histstore

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/obs"
)

func pt(rt, maxRT, nodes float64) Point {
	ratio := math.NaN()
	if maxRT > 0 {
		ratio = rt / maxRT
	}
	return Point{RunTime: rt, Ratio: ratio, Nodes: nodes}
}

func TestStoreInsertAndView(t *testing.T) {
	s := New()
	if err := s.Insert("k1", 0, pt(100, 200, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("k1", 0, pt(120, 0, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Insert("k2", 0, pt(7, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Categories() != 2 || s.Points() != 3 {
		t.Fatalf("categories=%d points=%d, want 2/3", s.Categories(), s.Points())
	}
	var mean float64
	var n int
	if !s.View("k1", func(c *Category) {
		mean, _ = c.Abs().MeanVar()
		n = c.Size()
	}) {
		t.Fatal("k1 missing")
	}
	if n != 2 || mean != 110 {
		t.Fatalf("k1: n=%d mean=%v, want 2/110", n, mean)
	}
	if s.View("nope", func(*Category) { t.Fatal("callback on missing key") }) {
		t.Fatal("missing key reported present")
	}
	// Ratio moments only count points that carried a maximum.
	s.View("k1", func(c *Category) {
		if c.Rat().N != 1 {
			t.Fatalf("ratio n = %d, want 1", c.Rat().N)
		}
	})
}

func TestStoreBoundedEviction(t *testing.T) {
	s := New(WithShards(4))
	for i := 0; i < 10; i++ {
		if err := s.Insert("k", 4, pt(100, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if err := s.Insert("k", 4, pt(500, 0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Points() != 4 {
		t.Fatalf("points = %d, want history bound 4", s.Points())
	}
	s.View("k", func(c *Category) {
		mean, v := c.Abs().MeanVar()
		if mean != 500 || v != 0 {
			t.Fatalf("post-eviction moments = (%v, %v), want (500, 0)", mean, v)
		}
	})
}

// TestCategoryMomentsMatchRecompute hammers a bounded category and checks
// the incremental Welford moments against a from-scratch recomputation of
// the surviving ring contents.
func TestCategoryMomentsMatchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	c := NewCategory(32)
	for i := 0; i < 10_000; i++ {
		rt := float64(1 + rng.Intn(100000))
		maxRT := 0.0
		if rng.Intn(3) > 0 {
			maxRT = rt + float64(rng.Intn(100000))
		}
		c.Insert(pt(rt, maxRT, 1))
	}
	var abs, rat []float64
	c.ForEach(func(p Point) {
		abs = append(abs, p.RunTime)
		if !math.IsNaN(p.Ratio) {
			rat = append(rat, p.Ratio)
		}
	})
	checkMoments := func(name string, n int, mean, variance float64, vals []float64) {
		t.Helper()
		var sum float64
		for _, v := range vals {
			sum += v
		}
		wantMean := sum / float64(len(vals))
		var m2 float64
		for _, v := range vals {
			m2 += (v - wantMean) * (v - wantMean)
		}
		wantVar := m2 / float64(len(vals)-1)
		if n != len(vals) {
			t.Fatalf("%s: n=%d, recount %d", name, n, len(vals))
		}
		if math.Abs(mean-wantMean) > 1e-9*(1+math.Abs(wantMean)) {
			t.Fatalf("%s: mean %v, want %v", name, mean, wantMean)
		}
		if math.Abs(variance-wantVar) > 1e-6*(1+math.Abs(wantVar)) {
			t.Fatalf("%s: variance %v, want %v", name, variance, wantVar)
		}
	}
	am, av := c.Abs().MeanVar()
	checkMoments("abs", c.Abs().N, am, av, abs)
	rm, rv := c.Rat().MeanVar()
	checkMoments("rat", c.Rat().N, rm, rv, rat)
}

func TestStorePutResetAndForEach(t *testing.T) {
	s := New()
	c := NewCategory(2)
	c.Insert(pt(10, 0, 1))
	c.Insert(pt(20, 0, 1))
	s.Put("a", c)
	if err := s.Insert("b", 0, pt(5, 0, 1)); err != nil {
		t.Fatal(err)
	}
	if s.Categories() != 2 || s.Points() != 3 {
		t.Fatalf("categories=%d points=%d", s.Categories(), s.Points())
	}
	// Replacing a key keeps the aggregate counts right.
	s.Put("a", NewCategory(0))
	if s.Categories() != 2 || s.Points() != 1 {
		t.Fatalf("after replace: categories=%d points=%d, want 2/1", s.Categories(), s.Points())
	}
	seen := map[string]int{}
	s.ForEach(func(k string, c *Category) { seen[k] = c.Size() })
	if len(seen) != 2 || seen["a"] != 0 || seen["b"] != 1 {
		t.Fatalf("ForEach saw %v", seen)
	}
	s.Reset()
	if s.Categories() != 0 || s.Points() != 0 {
		t.Fatalf("after reset: categories=%d points=%d", s.Categories(), s.Points())
	}
}

// TestStoreConcurrentInsertPredict drives parallel writers and readers
// through the sharded maps; run under -race this is the store's
// concurrency-safety proof.
func TestStoreConcurrentInsertPredict(t *testing.T) {
	s := New(WithShards(8))
	reg := obs.NewRegistry()
	s.SetMetrics(reg)
	const (
		writers = 4
		readers = 4
		keys    = 37
		inserts = 400
	)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < inserts; i++ {
				k := fmt.Sprintf("cat-%d", rng.Intn(keys))
				if err := s.Insert(k, 16, pt(float64(1+rng.Intn(1000)), 0, 1)); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < inserts; i++ {
				k := fmt.Sprintf("cat-%d", rng.Intn(keys))
				s.View(k, func(c *Category) {
					mean, _ := c.Abs().MeanVar()
					if c.Size() > 0 && (math.IsNaN(mean) || mean <= 0) {
						t.Errorf("key %s: mean %v with %d points", k, mean, c.Size())
					}
				})
			}
		}(r)
	}
	wg.Wait()
	if s.Categories() != keys {
		t.Fatalf("categories = %d, want %d", s.Categories(), keys)
	}
	if s.Points() != keys*16 {
		t.Fatalf("points = %d, want every category at its bound (%d)", s.Points(), keys*16)
	}
	s.RefreshMetrics()
	snap := reg.Snapshot()
	if snap.Gauges["histstore.categories"] != float64(keys) {
		t.Fatalf("categories gauge = %v", snap.Gauges["histstore.categories"])
	}
	if snap.Histograms["histstore.insert.latency_seconds"].Count != writers*inserts {
		t.Fatalf("insert latency count = %d", snap.Histograms["histstore.insert.latency_seconds"].Count)
	}
	if snap.Histograms["histstore.predict.latency_seconds"].Count != readers*inserts {
		t.Fatalf("predict latency count = %d", snap.Histograms["histstore.predict.latency_seconds"].Count)
	}
}

func TestWithShardsRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{0, 1}, {1, 1}, {3, 4}, {64, 64}, {65, 128}} {
		s := New(WithShards(tc.in))
		if len(s.shards) != tc.want {
			t.Errorf("WithShards(%d) -> %d shards, want %d", tc.in, len(s.shards), tc.want)
		}
	}
}

func TestRestorePointsValidation(t *testing.T) {
	if _, err := RestorePoints(2, 0, []Point{{RunTime: -1, Nodes: 1}}); err == nil {
		t.Error("negative run time accepted")
	}
	if _, err := RestorePoints(2, 0, make([]Point, 3)); err == nil {
		t.Error("points beyond history bound accepted")
	}
	if _, err := RestorePoints(2, 5, []Point{{RunTime: 1, Nodes: 1, Ratio: math.NaN()}}); err == nil {
		t.Error("out-of-range head accepted")
	}
	c, err := RestorePoints(2, 1, []Point{
		{RunTime: 10, Nodes: 1, Ratio: math.NaN()},
		{RunTime: 20, Nodes: 2, Ratio: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	if c.Size() != 2 || c.Abs().N != 2 || c.Rat().N != 1 {
		t.Fatalf("restored category: size=%d absN=%d ratN=%d", c.Size(), c.Abs().N, c.Rat().N)
	}
}

// TestInsertRejectsInvalidPoints: the write path refuses every point that
// recovery (restoreCategory) would reject, so a durable store can never
// journal or snapshot data that bricks its own next boot.
func TestInsertRejectsInvalidPoints(t *testing.T) {
	bad := []Point{
		{RunTime: 0, Ratio: math.NaN(), Nodes: 1},
		{RunTime: -5, Ratio: math.NaN(), Nodes: 1},
		{RunTime: math.NaN(), Ratio: math.NaN(), Nodes: 1},
		{RunTime: math.Inf(1), Ratio: math.NaN(), Nodes: 1},
		{RunTime: 10, Ratio: math.NaN(), Nodes: 0},
		{RunTime: 10, Ratio: math.NaN(), Nodes: -2},
		{RunTime: 10, Ratio: math.NaN(), Nodes: math.NaN()},
	}
	s := New()
	for _, p := range bad {
		if err := s.Insert("k", 0, p); err == nil {
			t.Errorf("invalid point %+v accepted", p)
		}
	}
	if s.Categories() != 0 || s.Points() != 0 {
		t.Fatalf("rejected points mutated the store: %d categories, %d points",
			s.Categories(), s.Points())
	}
}

// TestMemoryStoreWALRecordsMetricSilent: a memory-only store journals
// nothing, so the WAL-records counter must stay at zero across inserts.
func TestMemoryStoreWALRecordsMetricSilent(t *testing.T) {
	s := New()
	reg := obs.NewRegistry()
	s.SetMetrics(reg)
	for i := 0; i < 5; i++ {
		if err := s.Insert("k", 0, pt(100, 200, 4)); err != nil {
			t.Fatal(err)
		}
	}
	snap := reg.Snapshot()
	if n := snap.Counters["histstore.wal.records"]; n != 0 {
		t.Fatalf("wal.records = %d on a memory-only store, want 0", n)
	}
}
