package histstore

import (
	"fmt"
	"math/rand"
	"sync/atomic"
	"testing"
)

// benchKeys precomputes a realistic key population: a few thousand
// (template, value-combination) categories, zipf-free uniform access.
func benchKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%d|u%d|e%d", i%12, i%997, i%311)
	}
	return keys
}

// BenchmarkStoreInsert measures parallel streaming inserts into the
// sharded in-memory store — the per-completion cost of the online path.
func BenchmarkStoreInsert(b *testing.B) {
	s := New()
	keys := benchKeys(4096)
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(ctr.Add(1)))
		for pb.Next() {
			k := keys[rng.Intn(len(keys))]
			if err := s.Insert(k, 1024, pt(float64(1+rng.Intn(5000)), 6000, 8)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkStoreInsertPredict interleaves writers and readers 1:4 — the
// production mix, where every submission triggers a fan-out of category
// reads while completions stream in.
func BenchmarkStoreInsertPredict(b *testing.B) {
	s := New()
	keys := benchKeys(4096)
	warm := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<14; i++ {
		k := keys[warm.Intn(len(keys))]
		if err := s.Insert(k, 1024, pt(float64(1+warm.Intn(5000)), 6000, 8)); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		id := ctr.Add(1)
		rng := rand.New(rand.NewSource(id))
		write := id%5 == 0
		for pb.Next() {
			k := keys[rng.Intn(len(keys))]
			if write {
				if err := s.Insert(k, 1024, pt(float64(1+rng.Intn(5000)), 6000, 8)); err != nil {
					b.Fatal(err)
				}
				continue
			}
			s.View(k, func(c *Category) {
				mean, v := c.Abs().MeanVar()
				_ = mean
				_ = v
			})
		}
	})
}

// BenchmarkStoreGet measures one lock-free category read — a pointer load
// of the shard view plus a map probe — against a warmed store. This is the
// unit the predict fan-out multiplies by the template count, and it must
// stay allocation-free.
func BenchmarkStoreGet(b *testing.B) {
	s := New()
	keys := benchKeys(4096)
	warm := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<14; i++ {
		k := keys[warm.Intn(len(keys))]
		if err := s.Insert(k, 1024, pt(float64(1+warm.Intn(5000)), 6000, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c, ok := s.Get(keys[i%len(keys)])
		if ok {
			_, _, _ = c.AbsStats()
		}
	}
}

// BenchmarkStoreGetParallel is BenchmarkStoreGet under concurrent readers
// (run with -cpu 1,2,4,8): reads are independent atomic loads of immutable
// snapshots, so per-op time should not degrade as readers are added.
func BenchmarkStoreGetParallel(b *testing.B) {
	s := New()
	keys := benchKeys(4096)
	warm := rand.New(rand.NewSource(1))
	for i := 0; i < 1<<14; i++ {
		k := keys[warm.Intn(len(keys))]
		if err := s.Insert(k, 1024, pt(float64(1+warm.Intn(5000)), 6000, 8)); err != nil {
			b.Fatal(err)
		}
	}
	var ctr atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(ctr.Add(1)))
		for pb.Next() {
			c, ok := s.Get(keys[rng.Intn(len(keys))])
			if ok {
				_, _, _ = c.AbsStats()
			}
		}
	})
}

// BenchmarkStoreInsertDurable is BenchmarkStoreInsert through the WAL —
// the journaling overhead per insert (flush-per-record, no fsync).
func BenchmarkStoreInsertDurable(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close() //lint:allow errdrop benchmark teardown; Close errors cannot affect timings
	keys := benchKeys(4096)
	var ctr atomic.Int64
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		rng := rand.New(rand.NewSource(ctr.Add(1)))
		for pb.Next() {
			k := keys[rng.Intn(len(keys))]
			if err := s.Insert(k, 1024, pt(float64(1+rng.Intn(5000)), 6000, 8)); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSnapshot measures snapshotting a populated store (the
// stop-the-writers pause an operator pays per checkpoint).
func BenchmarkSnapshot(b *testing.B) {
	s, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close() //lint:allow errdrop benchmark teardown; Close errors cannot affect timings
	rng := rand.New(rand.NewSource(2))
	keys := benchKeys(2048)
	for i := 0; i < 1<<15; i++ {
		k := keys[rng.Intn(len(keys))]
		if err := s.Insert(k, 64, pt(float64(1+rng.Intn(5000)), 6000, 8)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Snapshot(); err != nil {
			b.Fatal(err)
		}
	}
}
