package histstore

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/stats"
)

// Snapshots are line-oriented JSON: a header line, then one line per
// category in sorted key order. The header's lastSeq binds the snapshot to
// a WAL position — recovery loads the snapshot, then replays only WAL
// records with a larger sequence number. Category lines persist the ring
// (points in storage order plus the head index) and both Welford moment
// sets verbatim, so recovery restores the exact live moments rather than
// approximations rebuilt from the surviving points. Snapshot files are
// written to a temporary name, synced, and atomically renamed, so a crash
// mid-snapshot leaves the previous snapshot intact.

const (
	snapshotVersion = 1
	// SnapshotFile and WALFile are the file names inside a store directory.
	SnapshotFile = "snapshot.hist"
	WALFile      = "wal.log"
)

// snapHeader is the first line of a snapshot.
type snapHeader struct {
	Version    int    `json:"version"`
	LastSeq    uint64 `json:"lastSeq"`
	Categories int    `json:"categories"`
}

// snapMoments serializes stats.Moments. JSON numbers round-trip float64
// exactly (Go emits the shortest representation that parses back to the
// same bits), so persisted moments are bit-identical after recovery.
type snapMoments struct {
	N    int     `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
}

// snapPoint mirrors Point; Ratio uses -1 for "absent" (NaN is not valid
// JSON).
type snapPoint struct {
	RunTime float64 `json:"rt"`
	Ratio   float64 `json:"ratio"`
	Nodes   float64 `json:"nodes"`
}

// snapCategory is one category line.
type snapCategory struct {
	Key        string      `json:"key"`
	MaxHistory int         `json:"maxHistory,omitempty"`
	Head       int         `json:"head,omitempty"`
	Abs        snapMoments `json:"abs"`
	Rat        snapMoments `json:"rat"`
	Points     []snapPoint `json:"points"`
}

// Open creates a durable store rooted at dir: it loads the snapshot if one
// exists, replays the WAL tail past it, truncates any torn record left by
// a crash, and arranges for every future Insert to be journaled. The
// directory is created if missing.
//
// taint: sanitizer validated recovery boundary — every recovered category and WAL record passes restoreCategory or validateRecord before it is published
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	s := New(opts...)
	s.dir = dir
	lastSeq, err := loadSnapshotFile(filepath.Join(dir, SnapshotFile), s)
	if err != nil {
		return nil, err
	}
	w, _, err := openWAL(filepath.Join(dir, WALFile), s, lastSeq, s.walSync)
	if err != nil {
		return nil, err
	}
	s.wal = w
	return s, nil
}

// Dir returns the store's durability directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the WAL. The store must not be used afterwards.
func (s *Store) Close() error {
	if s.wal == nil {
		return nil
	}
	return s.wal.close()
}

// Snapshot persists the full category database and compacts the WAL. It
// quiesces writers (every shard's writer mutex is held for the duration —
// lock-free reads still proceed untouched), writes the snapshot to a
// temporary file, fsyncs, renames it over the previous snapshot, and then
// rotates the WAL so it restarts empty at the snapshot's sequence number.
// Every intermediate crash point recovers correctly: the rename is atomic,
// and an un-rotated WAL only holds records the new snapshot already
// covers, which replay skips.
func (s *Store) Snapshot() error {
	return s.snapshot()
}

// SnapshotCtx is Snapshot recorded as a child span of the trace active in
// ctx ("histstore.snapshot"). Without an active trace it is exactly
// Snapshot.
func (s *Store) SnapshotCtx(ctx context.Context) error {
	_, sp := trace.StartSpan(ctx, "histstore.snapshot")
	if sp == nil {
		return s.snapshot()
	}
	err := s.snapshot()
	if err != nil {
		sp.SetAttr("error", err.Error())
	}
	sp.End()
	return err
}

func (s *Store) snapshot() error {
	if s.dir == "" {
		return fmt.Errorf("histstore: memory-only store has no snapshot directory")
	}
	s.snapMu.Lock()
	defer s.snapMu.Unlock()
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}

	// Quiesce writers: with every shard's writer mutex held no Insert can
	// run, so the WAL sequence and the published views are mutually
	// consistent. Readers never take these mutexes and proceed throughout.
	for i := range s.shards {
		s.shards[i].mu.Lock()
	}
	defer func() {
		for i := range s.shards {
			s.shards[i].mu.Unlock()
		}
	}()
	seq := s.wal.lastSeq()

	path := filepath.Join(s.dir, SnapshotFile)
	if err := writeSnapshotFile(path, s, seq); err != nil {
		return err
	}
	if err := s.wal.rotate(seq); err != nil {
		return fmt.Errorf("histstore: snapshot written but wal compaction failed: %w", err)
	}
	if m != nil {
		m.snapSeconds.Observe(time.Since(start).Seconds())
		s.refreshGauges(m)
	}
	return nil
}

// writeSnapshotFile writes the snapshot to path via temp-file + rename.
// The caller holds every shard's writer mutex, so the published views are
// the definitive state and cannot advance mid-write.
func writeSnapshotFile(path string, s *Store, seq uint64) error {
	var keys []string
	byKey := make(map[string]*Category)
	for i := range s.shards {
		for k, h := range s.shards[i].loadView().cats {
			keys = append(keys, k)
			byKey[k] = h.cur.Load()
		}
	}
	sort.Strings(keys)

	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	err = func() error {
		bw := bufio.NewWriterSize(f, 1<<20)
		enc := json.NewEncoder(bw)
		if err := enc.Encode(snapHeader{
			Version: snapshotVersion, LastSeq: seq, Categories: len(keys),
		}); err != nil {
			return err
		}
		for _, k := range keys {
			if err := enc.Encode(encodeCategory(k, byKey[k])); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return f.Sync()
	}()
	if err != nil {
		_ = f.Close()      //lint:allow errdrop the write error is the one worth reporting
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of a partial snapshot
		return err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of a partial snapshot
		return err
	}
	return os.Rename(tmp, path)
}

// encodeCategory converts a category to its snapshot line.
func encodeCategory(key string, c *Category) snapCategory {
	st := c.state()
	sc := snapCategory{
		Key:        key,
		MaxHistory: st.MaxHistory,
		Head:       st.Head,
		Abs:        snapMoments{N: st.Abs.N, Mean: st.Abs.Mean, M2: st.Abs.M2},
		Rat:        snapMoments{N: st.Rat.N, Mean: st.Rat.Mean, M2: st.Rat.M2},
		Points:     make([]snapPoint, 0, len(st.Points)),
	}
	for _, p := range st.Points {
		sp := snapPoint{RunTime: p.RunTime, Ratio: p.Ratio, Nodes: p.Nodes}
		if math.IsNaN(sp.Ratio) {
			sp.Ratio = -1
		}
		sc.Points = append(sc.Points, sp)
	}
	return sc
}

// momentsOf converts the wire form back to stats.Moments.
func momentsOf(m snapMoments) stats.Moments {
	return stats.Moments{N: m.N, Mean: m.Mean, M2: m.M2}
}

// loadSnapshotFile loads a snapshot into an empty store. A missing file is
// a cold start (lastSeq 0).
func loadSnapshotFile(path string, s *Store) (lastSeq uint64, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	defer f.Close() //lint:allow errdrop read-only file; a close error cannot lose data
	return loadSnapshot(f, s)
}

// loadSnapshot reads a snapshot stream into the store.
func loadSnapshot(r io.Reader, s *Store) (lastSeq uint64, err error) {
	dec := json.NewDecoder(bufio.NewReaderSize(r, 1<<20))
	var hdr snapHeader
	if err := dec.Decode(&hdr); err != nil {
		return 0, fmt.Errorf("histstore: snapshot header: %v", err)
	}
	if hdr.Version != snapshotVersion {
		return 0, fmt.Errorf("histstore: unsupported snapshot version %d", hdr.Version)
	}
	for i := 0; i < hdr.Categories; i++ {
		var sc snapCategory
		if err := dec.Decode(&sc); err != nil {
			return 0, fmt.Errorf("histstore: snapshot category %d/%d: %v", i+1, hdr.Categories, err)
		}
		ps := persistState{
			MaxHistory: sc.MaxHistory,
			Head:       sc.Head,
			Points:     make([]Point, 0, len(sc.Points)),
			Abs:        momentsOf(sc.Abs),
			Rat:        momentsOf(sc.Rat),
		}
		for _, sp := range sc.Points {
			p := Point{RunTime: sp.RunTime, Ratio: sp.Ratio, Nodes: sp.Nodes}
			if sp.Ratio < 0 {
				p.Ratio = math.NaN()
			}
			ps.Points = append(ps.Points, p)
		}
		c, err := restoreCategory(ps)
		if err != nil {
			return 0, fmt.Errorf("histstore: snapshot category %q: %v", sc.Key, err)
		}
		s.Put(sc.Key, c)
	}
	return hdr.LastSeq, nil
}
