package histstore

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"sync"
)

// The write-ahead log is a sequence of length-prefixed, checksummed
// records (all integers little-endian):
//
//	uint32 payloadLen | uint32 crc32(payload, IEEE) | payload
//
// The first record is the file header, payload:
//
//	magic "HISTWAL1" (8 bytes) | uint64 baseSeq
//
// Every later record is one insert, payload:
//
//	uint64 seq | uint64 runTimeBits | uint64 ratioBits | uint64 nodesBits |
//	uint32 maxHistory | uint32 keyLen | key bytes
//
// Sequence numbers increase monotonically across the store's lifetime.
// A snapshot records the last sequence it contains; recovery replays only
// records with seq greater than that, which makes the
// snapshot-then-compact sequence crash-safe at every intermediate point
// (a crash between the snapshot rename and the WAL rotation replays an
// old WAL whose records are all covered by the snapshot and skipped).
// Float values travel as raw IEEE-754 bits, so NaN ratios (jobs without
// a user-supplied maximum) survive the round trip exactly.
//
// Replay stops at the first truncated or corrupt record — the torn tail
// of a crash mid-append — and the file is truncated back to the last
// intact record before new appends continue.

const (
	walMagic      = "HISTWAL1"
	walHeaderLen  = 8 + 8           // magic + baseSeq
	walRecFixed   = 8*3 + 8 + 4 + 4 // three float64s + seq + maxHistory + keyLen
	walMaxRecord  = 1 << 20         // sanity bound; category keys are short
	walFrameBytes = 4 + 4           // length + CRC
)

// errWALBroken is returned by appends after a write error: the tail of the
// file is no longer trustworthy, so the log refuses to interleave further
// records after the damage.
var errWALBroken = errors.New("histstore: wal is broken after a write error; reopen the store")

// wal is the append side of the log. Its mutex serializes appends from
// different shards (appends for the same key are already ordered by that
// key's shard lock, so per-category replay order matches apply order) and
// guards the handle swap done by rotation.
type wal struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	bw      *bufio.Writer
	seq     uint64 // last assigned sequence number; guarded by mu
	nbytes  int64
	syncAll bool // fsync after every append
	broken  bool // guarded by mu
}

// frame writes one framed record to w.
func frame(w io.Writer, payload []byte) error {
	var hdr [walFrameBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// headerPayload builds the header record payload.
func headerPayload(baseSeq uint64) []byte {
	p := make([]byte, walHeaderLen)
	copy(p, walMagic)
	binary.LittleEndian.PutUint64(p[8:], baseSeq)
	return p
}

// recordPayload builds one insert record payload.
func recordPayload(seq uint64, key string, maxHistory int, pt Point) []byte {
	p := make([]byte, walRecFixed+len(key))
	binary.LittleEndian.PutUint64(p[0:], seq)
	binary.LittleEndian.PutUint64(p[8:], math.Float64bits(pt.RunTime))
	binary.LittleEndian.PutUint64(p[16:], math.Float64bits(pt.Ratio))
	binary.LittleEndian.PutUint64(p[24:], math.Float64bits(pt.Nodes))
	binary.LittleEndian.PutUint32(p[32:], uint32(maxHistory))
	binary.LittleEndian.PutUint32(p[36:], uint32(len(key)))
	copy(p[walRecFixed:], key)
	return p
}

// parseRecord decodes an insert record payload. It checks structure
// (lengths) only; validateRecord judges the decoded values.
//
// taint: source wal bytes come from disk and can be corrupt, truncated, or forged
func parseRecord(p []byte) (seq uint64, key string, maxHistory int, pt Point, err error) {
	if len(p) < walRecFixed {
		return 0, "", 0, Point{}, fmt.Errorf("histstore: wal record too short (%d bytes)", len(p))
	}
	keyLen := binary.LittleEndian.Uint32(p[36:])
	if int(keyLen) != len(p)-walRecFixed {
		return 0, "", 0, Point{}, fmt.Errorf("histstore: wal record key length %d disagrees with payload", keyLen)
	}
	seq = binary.LittleEndian.Uint64(p[0:])
	pt.RunTime = math.Float64frombits(binary.LittleEndian.Uint64(p[8:]))
	pt.Ratio = math.Float64frombits(binary.LittleEndian.Uint64(p[16:]))
	pt.Nodes = math.Float64frombits(binary.LittleEndian.Uint64(p[24:]))
	maxHistory = int(binary.LittleEndian.Uint32(p[32:]))
	key = string(p[walRecFixed:])
	return seq, key, maxHistory, pt, nil
}

// validateRecord rejects a decoded wal record whose values no healthy
// writer produces: append only ever journals points that passed
// Point.Validate, non-empty keys, and non-negative history bounds, so a
// record violating any of those is disk corruption that happened to
// parse — replay must not let it poison a live category.
//
// taint: sanitizer rejects decoded wal records no healthy writer could have journaled
func validateRecord(key string, maxHistory int, pt Point) error {
	if err := pt.Validate(); err != nil {
		return err
	}
	if key == "" {
		return errors.New("histstore: wal record has an empty category key")
	}
	if maxHistory < 0 {
		return fmt.Errorf("histstore: wal record has negative history bound %d", maxHistory)
	}
	return nil
}

// append journals one insert and flushes it to the operating system. The
// assigned sequence number becomes the wal's new last.
//
// taint: sink appended records replay into live categories on every open
func (w *wal) append(key string, maxHistory int, pt Point) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.broken {
		return errWALBroken
	}
	seq := w.seq + 1
	payload := recordPayload(seq, key, maxHistory, pt)
	if len(payload) > walMaxRecord {
		// Replay treats any frame longer than walMaxRecord as a torn tail
		// and truncates there, discarding every record after it — so an
		// oversized record (an absurdly long category key) must never be
		// written in the first place. Nothing has hit the file, so the log
		// stays usable.
		return fmt.Errorf("histstore: wal record of %d bytes exceeds the %d-byte bound (category key too long)",
			len(payload), walMaxRecord)
	}
	if err := frame(w.bw, payload); err != nil {
		w.broken = true
		return err
	}
	if err := w.bw.Flush(); err != nil {
		w.broken = true
		return err
	}
	if w.syncAll {
		if err := w.f.Sync(); err != nil {
			w.broken = true
			return err
		}
	}
	w.seq = seq
	w.nbytes += int64(walFrameBytes + len(payload))
	return nil
}

// size returns the current log size in bytes.
func (w *wal) size() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nbytes
}

// lastSeq returns the last assigned sequence number.
func (w *wal) lastSeq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// close flushes, syncs, and closes the log file.
func (w *wal) close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		_ = w.f.Close() //lint:allow errdrop the flush error is the one worth reporting
		return err
	}
	if err := w.f.Sync(); err != nil {
		_ = w.f.Close() //lint:allow errdrop the sync error is the one worth reporting
		return err
	}
	return w.f.Close()
}

// rotate compacts the log after a snapshot covering everything up to and
// including baseSeq: the current file is atomically replaced by a fresh
// one whose header records baseSeq, and appends continue on the new file.
// The caller must have quiesced appends (the store holds every shard lock).
func (w *wal) rotate(baseSeq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return err
	}
	nw, err := createWAL(w.path, baseSeq, w.syncAll)
	if err != nil {
		return err
	}
	_ = w.f.Close() //lint:allow errdrop old handle already flushed; its file was just renamed away
	w.f = nw.f
	w.bw = nw.bw
	w.nbytes = nw.nbytes
	if baseSeq > w.seq {
		w.seq = baseSeq
	}
	w.broken = false
	return nil
}

// createWAL writes a fresh log containing only a header with the given
// base sequence, atomically replacing path (write to a temporary file,
// sync, rename).
func createWAL(path string, baseSeq uint64, syncAll bool) (*wal, error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return nil, err
	}
	if err := frame(f, headerPayload(baseSeq)); err != nil {
		_ = f.Close()      //lint:allow errdrop the frame error is the one worth reporting
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of a partial log
		return nil, err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()      //lint:allow errdrop the sync error is the one worth reporting
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of a partial log
		return nil, err
	}
	if err := f.Close(); err != nil {
		_ = os.Remove(tmp) //lint:allow errdrop best-effort cleanup of a partial log
		return nil, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return nil, err
	}
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, err
	}
	return &wal{
		path:    path,
		f:       nf,
		bw:      bufio.NewWriter(nf),
		seq:     baseSeq,
		nbytes:  int64(walFrameBytes + walHeaderLen),
		syncAll: syncAll,
	}, nil
}

// readFrame reads one framed record. It returns io.EOF for a clean end of
// file, errTornRecord for a truncated or corrupt tail (safe to truncate
// away), and any other error verbatim — a genuine I/O failure, where
// nothing says the bytes past it are bad, so the caller must NOT truncate.
var errTornRecord = errors.New("histstore: torn wal record")

// tornOrIO maps short reads (the torn tail a crash mid-append leaves) to
// errTornRecord and passes genuine I/O failures through unchanged.
func tornOrIO(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return errTornRecord
	}
	return err
}

func readFrame(r *bufio.Reader) ([]byte, int, error) {
	var hdr [walFrameBytes]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, 0, io.EOF // clean boundary
		}
		return nil, 0, err // a one-byte ReadFull fails with EOF or a real error
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		return nil, 0, tornOrIO(err)
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > walMaxRecord {
		return nil, 0, errTornRecord
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, 0, tornOrIO(err)
	}
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:8]) {
		return nil, 0, errTornRecord
	}
	return payload, walFrameBytes + int(n), nil
}

// openWAL opens (or creates) the log at path, replays every record with
// seq > afterSeq into the store, truncates any torn tail, and returns the
// log positioned for appending. It reports how many records it applied.
func openWAL(path string, s *Store, afterSeq uint64, syncAll bool) (w *wal, applied int, err error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		nw, cerr := createWAL(path, afterSeq, syncAll)
		return nw, 0, cerr
	}
	if err != nil {
		return nil, 0, err
	}
	br := bufio.NewReader(f)
	hdrPayload, n, err := readFrame(br)
	if err != nil || len(hdrPayload) != walHeaderLen || string(hdrPayload[:8]) != walMagic {
		_ = f.Close() //lint:allow errdrop read-only handle; the header error is the one worth reporting
		return nil, 0, fmt.Errorf("histstore: %s: bad wal header", path)
	}
	goodOffset := int64(n)
	lastSeq := binary.LittleEndian.Uint64(hdrPayload[8:])
	if lastSeq < afterSeq {
		lastSeq = afterSeq
	}
	for {
		payload, n, rerr := readFrame(br)
		if errors.Is(rerr, io.EOF) {
			break
		}
		if errors.Is(rerr, errTornRecord) {
			break // crash tail: recover the clean prefix, drop the rest
		}
		if rerr != nil {
			// A genuine read failure, not evidence of a torn tail:
			// truncating here would discard records that may be intact, so
			// fail the open and leave the file untouched.
			_ = f.Close() //lint:allow errdrop read-only handle; the read error is the one worth reporting
			return nil, 0, fmt.Errorf("histstore: %s: reading wal: %w", path, rerr)
		}
		seq, key, maxHistory, pt, perr := parseRecord(payload)
		if perr != nil {
			break // structurally corrupt: treat like a torn tail
		}
		if verr := validateRecord(key, maxHistory, pt); verr != nil {
			// Parses but could not have been written by a healthy append:
			// semantic corruption, treated exactly like a torn tail so the
			// poisoned suffix never reaches a live category.
			break
		}
		goodOffset += int64(n)
		if seq > lastSeq {
			lastSeq = seq
		}
		if seq <= afterSeq {
			continue // already covered by the snapshot
		}
		sh := s.shardOf(key)
		sh.mu.Lock()
		aerr := s.applyLocked(sh, key, maxHistory, pt)
		sh.mu.Unlock()
		if aerr != nil {
			continue // at the category cap: keep the record, skip the apply
		}
		applied++
	}
	if err := f.Close(); err != nil {
		return nil, 0, err
	}
	// Drop the torn tail (if any) so new appends continue from an intact
	// record boundary.
	if err := os.Truncate(path, goodOffset); err != nil {
		return nil, 0, err
	}
	nf, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		return nil, 0, err
	}
	return &wal{
		path:    path,
		f:       nf,
		bw:      bufio.NewWriter(nf),
		seq:     lastSeq,
		nbytes:  goodOffset,
		syncAll: syncAll,
	}, applied, nil
}
