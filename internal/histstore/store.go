package histstore

import (
	"context"
	"errors"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// DefaultShards is the default shard count. Category keys hash uniformly
// (user/executable/queue combinations), so 64 shards keep write collisions
// rare well past the point where the WAL, not the locks, bounds insert
// throughput.
const DefaultShards = 64

// The store's read side is lock-free by copy-on-write: each shard
// publishes an immutable view through an atomic pointer, and every write
// builds replacement state off to the side before swapping it in. The
// structure is two-level so the two write frequencies pay for themselves
// separately:
//
//   - shardView maps keys to category handles. The map is immutable once
//     published and is cloned-and-swapped only when a key is added or
//     replaced (rare after warm-up), so the steady-state insert never
//     clones a map.
//   - catHandle carries the current immutable *Category for one key. Every
//     insert clones the category (see Category.cowInsert for why the clone
//     is usually an O(1) shared-backing append) and swaps the handle's
//     pointer.
//
// Readers therefore do two atomic loads and one map lookup — no mutex, no
// allocation — and always observe a category that was fully built before
// publication. Writers serialize per shard on a plain Mutex. Memory
// reclamation is the garbage collector's: a reader that loaded an old view
// keeps it alive until it is done, and nothing ever mutates a published
// view, so there is no torn state and no ABA hazard to manage.

// shard is one write-serialization domain of the category map.
type shard struct {
	mu   sync.Mutex                // serializes writers (clone-and-swap)
	view atomic.Pointer[shardView] // swapped under mu
}

// shardView is one shard's immutable key table. The map must never be
// mutated after it is published; writers clone it to add or replace a key.
type shardView struct {
	// bounded by Store.maxCats: applyLocked refuses to publish a new key
	// once nCats reaches the cap, so the union of all shards' tables stays
	// finite no matter what keys the observe path is fed; Put, the other
	// publish path, reinstalls snapshots that were written under the same cap
	cats map[string]*catHandle
}

// catHandle is the mutation point for one category: inserts swap cur to
// the next immutable snapshot while the handle itself stays in the map, so
// per-point writes never have to republish the key table.
type catHandle struct {
	// cur is replaced only while the owning shard's mu is held; it cannot
	// carry a "swapped under" annotation because its guard lives in a
	// different struct, which is exactly why inserts route through the
	// shard's writer mutex before touching it.
	cur atomic.Pointer[Category]
}

// loadView returns the shard's current immutable view.
func (sh *shard) loadView() *shardView { return sh.view.Load() }

// Store is the concurrency-safe category-statistics store. Reads
// (Get/View/Categories) are lock-free: they follow per-shard copy-on-write
// snapshots and can run in parallel with any number of writers. Inserts
// take one shard's writer mutex. A store opened with Open additionally
// journals every insert to a write-ahead log and can persist snapshots;
// a store from New is memory-only.
type Store struct {
	shards []shard
	seed   maphash.Seed

	// maxCats caps the total number of categories (keys) across all
	// shards; 0 disables the cap. Without it, a stream of never-repeating
	// keys — a misconfigured template or a hostile observe feed — grows
	// the key tables without bound for the life of the daemon.
	maxCats int

	// Aggregate sizes, maintained on the insert path so gauges and
	// capacity planning never need a full sweep.
	nCats   atomic.Int64
	nPoints atomic.Int64

	wal     *wal       // nil for memory-only stores
	dir     string     // snapshot/WAL directory; "" for memory-only
	walSync bool       // fsync the WAL after every append
	snapMu  sync.Mutex // serializes Snapshot callers
	metrics atomic.Pointer[storeMetrics]
}

// storeMetrics caches obs instrument handles for the store's hot paths.
// Every instrument here is internally atomic, so recording on the read
// path keeps it lock-free.
type storeMetrics struct {
	categories  *obs.Gauge
	points      *obs.Gauge
	walRecords  *obs.Counter
	walBytes    *obs.Gauge
	walErrors   *obs.Counter
	snapSeconds *obs.Histogram
	insertLat   *obs.Histogram
	predictLat  *obs.Histogram
}

// Option configures a Store.
type Option func(*Store)

// WithShards sets the shard count (rounded up to a power of two; minimum 1).
func WithShards(n int) Option {
	return func(s *Store) {
		if n < 1 {
			n = 1
		}
		p := 1
		for p < n {
			p <<= 1
		}
		s.shards = make([]shard, p)
	}
}

// DefaultMaxCategories is the default cap on the total number of
// categories a store will hold. The paper's template sets produce at most
// a few thousand categories per workload; a store that reaches a million
// distinct keys is being fed garbage, and refusing the million-and-first
// is strictly better than growing until the daemon is OOM-killed.
const DefaultMaxCategories = 1 << 20

// ErrCategoryLimit is returned by Insert when creating one more category
// would exceed the store's cap (WithMaxCategories). Points for existing
// categories are unaffected.
var ErrCategoryLimit = errors.New("histstore: category limit reached")

// WithMaxCategories caps the total number of categories (0 disables the
// cap; the default is DefaultMaxCategories).
func WithMaxCategories(n int) Option {
	return func(s *Store) {
		if n < 0 {
			n = 0
		}
		s.maxCats = n
	}
}

// WithSync makes a durable store fsync the WAL after every append. The
// default flushes each record to the operating system (surviving a process
// kill) without forcing it to the device (an OS crash can lose the tail);
// WithSync trades insert throughput for device-level durability.
func WithSync() Option {
	return func(s *Store) { s.walSync = true }
}

// New creates a memory-only store (no WAL, no snapshots). Open creates a
// durable one.
func New(opts ...Option) *Store {
	s := &Store{
		shards:  make([]shard, DefaultShards),
		seed:    maphash.MakeSeed(),
		maxCats: DefaultMaxCategories,
	}
	for _, o := range opts {
		o(s)
	}
	empty := &shardView{cats: map[string]*catHandle{}}
	for i := range s.shards {
		s.shards[i].view.Store(empty)
	}
	return s
}

// SetMetrics registers the store's metrics on reg and starts recording.
// Call once, before concurrent use; a nil registry detaches metrics.
func (s *Store) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics.Store(nil)
		return
	}
	m := &storeMetrics{
		categories:  reg.Gauge("histstore.categories"),
		points:      reg.Gauge("histstore.points"),
		walRecords:  reg.Counter("histstore.wal.records"),
		walBytes:    reg.Gauge("histstore.wal.bytes"),
		walErrors:   reg.Counter("histstore.wal.errors"),
		snapSeconds: reg.Histogram("histstore.snapshot.seconds"),
		insertLat:   reg.Histogram("histstore.insert.latency_seconds"),
		predictLat:  reg.Histogram("histstore.predict.latency_seconds"),
	}
	s.metrics.Store(m)
	s.refreshGauges(m)
}

// refreshGauges pushes the current aggregate sizes into the gauges.
func (s *Store) refreshGauges(m *storeMetrics) {
	if m == nil {
		return
	}
	m.categories.SetInt(s.nCats.Load())
	m.points.SetInt(s.nPoints.Load())
	if s.wal != nil {
		m.walBytes.SetInt(s.wal.size())
	}
}

// RefreshMetrics re-publishes the size gauges (categories, points, WAL
// bytes); handlers that serve metrics snapshots call it first.
func (s *Store) RefreshMetrics() { s.refreshGauges(s.metrics.Load()) }

// shardOf returns the shard owning key.
func (s *Store) shardOf(key string) *shard {
	h := maphash.String(s.seed, key)
	return &s.shards[h&uint64(len(s.shards)-1)]
}

// Insert records one completed-job point under key, creating the category
// (with the given history bound) on first use. Invalid points (see
// Point.Validate) are rejected up front, before they can reach memory or
// the WAL. For durable stores the point is appended to the WAL before it
// is applied — the write-ahead contract — and a WAL append failure leaves
// the in-memory state unchanged so memory never runs ahead of the log.
func (s *Store) Insert(key string, maxHistory int, p Point) error {
	return s.insert(nil, key, maxHistory, p)
}

// InsertCtx is Insert with the shard operation recorded as a child span of
// the trace active in ctx ("histstore.insert", with a nested
// "histstore.wal_append" around the journal write for durable stores).
// Without an active trace it is exactly Insert.
func (s *Store) InsertCtx(ctx context.Context, key string, maxHistory int, p Point) error {
	_, sp := trace.StartSpan(ctx, "histstore.insert")
	if sp != nil {
		sp.SetAttr("category", key)
		defer sp.End()
	}
	return s.insert(sp, key, maxHistory, p)
}

// insert is the shared Insert body; sp, when non-nil, receives a child
// span around the WAL append (the usual suspect when an insert is slow).
func (s *Store) insert(sp *trace.Span, key string, maxHistory int, p Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	sh := s.shardOf(key)
	sh.mu.Lock()
	// Check the category cap before journaling: a rejected insert must not
	// leave a record the next replay would also have to reject.
	if err := s.roomFor(sh, key); err != nil {
		sh.mu.Unlock()
		return err
	}
	if s.wal != nil {
		wsp := sp.StartChild("histstore.wal_append")
		err := s.wal.append(key, maxHistory, p)
		wsp.End()
		if err != nil {
			sh.mu.Unlock()
			if m != nil {
				m.walErrors.Inc()
			}
			return fmt.Errorf("histstore: wal append: %w", err)
		}
	}
	aerr := s.applyLocked(sh, key, maxHistory, p)
	sh.mu.Unlock()
	if aerr != nil {
		return aerr
	}
	if m != nil {
		m.insertLat.Observe(time.Since(start).Seconds())
		if s.wal != nil {
			m.walRecords.Inc()
		}
		s.refreshGauges(m)
	}
	return nil
}

// roomFor reports whether key can be inserted under the category cap:
// nil for existing keys, and for new keys while the store-wide count is
// below maxCats. The caller holds sh's writer mutex, so the answer stays
// true through the subsequent applyLocked for this shard's keys.
func (s *Store) roomFor(sh *shard, key string) error {
	if s.maxCats <= 0 {
		return nil
	}
	if _, ok := sh.loadView().cats[key]; ok {
		return nil
	}
	if s.nCats.Load() >= int64(s.maxCats) {
		return fmt.Errorf("%w (%d categories; raise WithMaxCategories or fix the category key template)",
			ErrCategoryLimit, s.maxCats)
	}
	return nil
}

// applyLocked inserts a point into a shard whose writer mutex the caller
// holds: clone the current category snapshot (or start a new one), insert
// off to the side, and publish with an atomic swap. Readers racing with
// this observe either the old snapshot or the fully built new one. The
// only error is ErrCategoryLimit, when publishing a new key would exceed
// the store's category cap.
//
// taint: sink publishes the key and point into the live category table
func (s *Store) applyLocked(sh *shard, key string, maxHistory int, p Point) error {
	v := sh.loadView()
	if h, ok := v.cats[key]; ok {
		c := h.cur.Load()
		before := c.Size()
		nc := c.cowInsert(p)
		h.cur.Store(nc)
		s.nPoints.Add(int64(nc.Size() - before))
		return nil
	}
	if err := s.roomFor(sh, key); err != nil {
		return err
	}
	c := NewCategory(maxHistory)
	c.Insert(p)
	h := &catHandle{}
	h.cur.Store(c)
	sh.view.Store(v.withKey(key, h))
	s.nCats.Add(1)
	s.nPoints.Add(int64(c.Size()))
	return nil
}

// withKey clones the view's key table with key bound to h.
func (v *shardView) withKey(key string, h *catHandle) *shardView {
	cats := make(map[string]*catHandle, len(v.cats)+1)
	for k, old := range v.cats {
		cats[k] = old
	}
	cats[key] = h
	return &shardView{cats: cats}
}

// Get returns the current immutable snapshot of the category stored under
// key. The lookup is lock-free (two atomic loads and a map probe) and the
// returned category is never mutated afterwards — an insert racing with
// Get builds and publishes a successor snapshot instead — so the caller
// may read it for as long as it likes, but must not modify it.
//
// hotpath: no-lock no-alloc no-clock
func (s *Store) Get(key string) (*Category, bool) {
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now() //lint:allow hotpath self-instrumentation: the predict-latency metric needs the clock; skipped when metrics are off
	}
	c, ok := s.get(key)
	if m != nil {
		m.predictLat.Observe(time.Since(start).Seconds()) //lint:allow hotpath self-instrumentation clock read; skipped when metrics are off
	}
	return c, ok
}

// GetCtx is Get with the lookup recorded as a child span of the trace
// active in ctx ("histstore.view", category and hit attributes). Without
// an active trace it is exactly Get.
//
// hotpath: exempt span plumbing runs only when a trace is sampled; untraced requests take Get directly
func (s *Store) GetCtx(ctx context.Context, key string) (*Category, bool) {
	_, sp := trace.StartSpan(ctx, "histstore.view")
	if sp == nil {
		return s.Get(key)
	}
	sp.SetAttr("category", key)
	c, ok := s.Get(key)
	if !ok {
		sp.SetAttr("hit", "false")
	}
	sp.End()
	return c, ok
}

// get is the uninstrumented snapshot lookup.
func (s *Store) get(key string) (*Category, bool) {
	h, ok := s.shardOf(key).loadView().cats[key]
	if !ok {
		return nil, false
	}
	return h.cur.Load(), true
}

// View runs f on the current snapshot of the category stored under key and
// reports whether the key exists. Reads are lock-free; f must not mutate
// the snapshot (retaining it is safe — it is immutable). Kept alongside
// Get for callers structured around a visitor.
//
// hotpath: no-lock no-alloc no-clock
func (s *Store) View(key string, f func(*Category)) bool {
	c, ok := s.Get(key)
	if ok {
		f(c)
	}
	return ok
}

// ViewCtx is View with the lookup recorded as a child span of the trace
// active in ctx ("histstore.view", category and hit attributes). Without
// an active trace it is exactly View.
func (s *Store) ViewCtx(ctx context.Context, key string, f func(*Category)) bool {
	c, ok := s.GetCtx(ctx, key)
	if ok {
		f(c)
	}
	return ok
}

// Put installs a fully built category under key, replacing any existing
// one. The store takes ownership: the caller must not mutate c after Put.
// It is the bulk-restore path (snapshot load, legacy-checkpoint migration)
// and does not journal; durable callers snapshot afterwards to make the
// restored state recoverable.
//
// taint: sink installs a fully built category into the live table without journaling
func (s *Store) Put(key string, c *Category) {
	c.finalize()
	sh := s.shardOf(key)
	sh.mu.Lock()
	v := sh.loadView()
	if h, ok := v.cats[key]; ok {
		old := h.cur.Load()
		s.nPoints.Add(int64(c.Size() - old.Size()))
		h.cur.Store(c)
		sh.mu.Unlock()
		return
	}
	h := &catHandle{}
	h.cur.Store(c)
	sh.view.Store(v.withKey(key, h))
	s.nCats.Add(1)
	s.nPoints.Add(int64(c.Size()))
	sh.mu.Unlock()
}

// Reset drops every category (the in-memory half of a full restore).
func (s *Store) Reset() {
	empty := &shardView{cats: map[string]*catHandle{}}
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.view.Store(empty)
		sh.mu.Unlock()
	}
	s.nCats.Store(0)
	s.nPoints.Store(0)
}

// Categories returns the number of categories currently stored.
func (s *Store) Categories() int { return int(s.nCats.Load()) }

// Points returns the total number of points stored across all categories.
func (s *Store) Points() int { return int(s.nPoints.Load()) }

// ForEach visits every (key, category) pair, one shard snapshot at a time,
// in an unspecified order. The visit is lock-free: each category is the
// immutable snapshot current when its shard's view was loaded, so a
// concurrent insert is either fully visible or fully absent, never torn.
// f must not mutate the category.
func (s *Store) ForEach(f func(key string, c *Category)) {
	for i := range s.shards {
		for k, h := range s.shards[i].loadView().cats {
			f(k, h.cur.Load())
		}
	}
}

// sortedKeys returns every category key in sorted order (deterministic
// snapshot layout and tests).
func (s *Store) sortedKeys() []string {
	keys := make([]string, 0, s.Categories())
	for i := range s.shards {
		for k := range s.shards[i].loadView().cats {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}
