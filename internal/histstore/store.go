package histstore

import (
	"context"
	"fmt"
	"hash/maphash"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// DefaultShards is the default shard count. Category keys hash uniformly
// (user/executable/queue combinations), so 64 shards keep write collisions
// rare well past the point where the WAL, not the locks, bounds insert
// throughput.
const DefaultShards = 64

// shard is one lock domain of the category map.
type shard struct {
	mu   sync.RWMutex
	cats map[string]*Category // guarded by mu
}

// Store is the concurrency-safe category-statistics store. Reads
// (View/Categories) take shard read locks and proceed in parallel; inserts
// take one shard's write lock. A store opened with Open additionally
// journals every insert to a write-ahead log and can persist snapshots;
// a store from New is memory-only.
type Store struct {
	shards []shard
	seed   maphash.Seed

	// Aggregate sizes, maintained on the insert path so gauges and
	// capacity planning never need a full sweep.
	nCats   atomic.Int64
	nPoints atomic.Int64

	wal     *wal       // nil for memory-only stores
	dir     string     // snapshot/WAL directory; "" for memory-only
	walSync bool       // fsync the WAL after every append
	snapMu  sync.Mutex // serializes Snapshot callers
	metrics atomic.Pointer[storeMetrics]
}

// storeMetrics caches obs instrument handles for the store's hot paths.
type storeMetrics struct {
	categories  *obs.Gauge
	points      *obs.Gauge
	walRecords  *obs.Counter
	walBytes    *obs.Gauge
	walErrors   *obs.Counter
	snapSeconds *obs.Histogram
	insertLat   *obs.Histogram
	predictLat  *obs.Histogram
}

// Option configures a Store.
type Option func(*Store)

// WithShards sets the shard count (rounded up to a power of two; minimum 1).
func WithShards(n int) Option {
	return func(s *Store) {
		if n < 1 {
			n = 1
		}
		p := 1
		for p < n {
			p <<= 1
		}
		s.shards = make([]shard, p)
	}
}

// WithSync makes a durable store fsync the WAL after every append. The
// default flushes each record to the operating system (surviving a process
// kill) without forcing it to the device (an OS crash can lose the tail);
// WithSync trades insert throughput for device-level durability.
func WithSync() Option {
	return func(s *Store) { s.walSync = true }
}

// New creates a memory-only store (no WAL, no snapshots). Open creates a
// durable one.
func New(opts ...Option) *Store {
	s := &Store{
		shards: make([]shard, DefaultShards),
		seed:   maphash.MakeSeed(),
	}
	for _, o := range opts {
		o(s)
	}
	for i := range s.shards {
		s.shards[i].cats = make(map[string]*Category)
	}
	return s
}

// SetMetrics registers the store's metrics on reg and starts recording.
// Call once, before concurrent use; a nil registry detaches metrics.
func (s *Store) SetMetrics(reg *obs.Registry) {
	if reg == nil {
		s.metrics.Store(nil)
		return
	}
	m := &storeMetrics{
		categories:  reg.Gauge("histstore.categories"),
		points:      reg.Gauge("histstore.points"),
		walRecords:  reg.Counter("histstore.wal.records"),
		walBytes:    reg.Gauge("histstore.wal.bytes"),
		walErrors:   reg.Counter("histstore.wal.errors"),
		snapSeconds: reg.Histogram("histstore.snapshot.seconds"),
		insertLat:   reg.Histogram("histstore.insert.latency_seconds"),
		predictLat:  reg.Histogram("histstore.predict.latency_seconds"),
	}
	s.metrics.Store(m)
	s.refreshGauges(m)
}

// refreshGauges pushes the current aggregate sizes into the gauges.
func (s *Store) refreshGauges(m *storeMetrics) {
	if m == nil {
		return
	}
	m.categories.SetInt(s.nCats.Load())
	m.points.SetInt(s.nPoints.Load())
	if s.wal != nil {
		m.walBytes.SetInt(s.wal.size())
	}
}

// RefreshMetrics re-publishes the size gauges (categories, points, WAL
// bytes); handlers that serve metrics snapshots call it first.
func (s *Store) RefreshMetrics() { s.refreshGauges(s.metrics.Load()) }

// shardOf returns the shard owning key.
func (s *Store) shardOf(key string) *shard {
	h := maphash.String(s.seed, key)
	return &s.shards[h&uint64(len(s.shards)-1)]
}

// Insert records one completed-job point under key, creating the category
// (with the given history bound) on first use. Invalid points (see
// Point.Validate) are rejected up front, before they can reach memory or
// the WAL. For durable stores the point is appended to the WAL before it
// is applied — the write-ahead contract — and a WAL append failure leaves
// the in-memory state unchanged so memory never runs ahead of the log.
func (s *Store) Insert(key string, maxHistory int, p Point) error {
	return s.insert(nil, key, maxHistory, p)
}

// InsertCtx is Insert with the shard operation recorded as a child span of
// the trace active in ctx ("histstore.insert", with a nested
// "histstore.wal_append" around the journal write for durable stores).
// Without an active trace it is exactly Insert.
func (s *Store) InsertCtx(ctx context.Context, key string, maxHistory int, p Point) error {
	_, sp := trace.StartSpan(ctx, "histstore.insert")
	if sp != nil {
		sp.SetAttr("category", key)
		defer sp.End()
	}
	return s.insert(sp, key, maxHistory, p)
}

// insert is the shared Insert body; sp, when non-nil, receives a child
// span around the WAL append (the usual suspect when an insert is slow).
func (s *Store) insert(sp *trace.Span, key string, maxHistory int, p Point) error {
	if err := p.Validate(); err != nil {
		return err
	}
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	sh := s.shardOf(key)
	sh.mu.Lock()
	if s.wal != nil {
		wsp := sp.StartChild("histstore.wal_append")
		err := s.wal.append(key, maxHistory, p)
		wsp.End()
		if err != nil {
			sh.mu.Unlock()
			if m != nil {
				m.walErrors.Inc()
			}
			return fmt.Errorf("histstore: wal append: %w", err)
		}
	}
	s.applyLocked(sh, key, maxHistory, p)
	sh.mu.Unlock()
	if m != nil {
		m.insertLat.Observe(time.Since(start).Seconds())
		if s.wal != nil {
			m.walRecords.Inc()
		}
		s.refreshGauges(m)
	}
	return nil
}

// applyLocked inserts a point into a shard the caller has write-locked.
func (s *Store) applyLocked(sh *shard, key string, maxHistory int, p Point) {
	c, ok := sh.cats[key]
	if !ok {
		c = NewCategory(maxHistory)
		sh.cats[key] = c
		s.nCats.Add(1)
	}
	before := c.Size()
	c.Insert(p)
	s.nPoints.Add(int64(c.Size() - before))
}

// View runs f on the category stored under key while holding the shard's
// read lock, and reports whether the key exists. f must not retain the
// category or mutate it; concurrent Views proceed in parallel.
func (s *Store) View(key string, f func(*Category)) bool {
	return s.view(key, f)
}

// ViewCtx is View with the shard read recorded as a child span of the
// trace active in ctx ("histstore.view", category and hit attributes).
// Without an active trace it is exactly View.
func (s *Store) ViewCtx(ctx context.Context, key string, f func(*Category)) bool {
	_, sp := trace.StartSpan(ctx, "histstore.view")
	if sp == nil {
		return s.view(key, f)
	}
	sp.SetAttr("category", key)
	ok := s.view(key, f)
	if !ok {
		sp.SetAttr("hit", "false")
	}
	sp.End()
	return ok
}

func (s *Store) view(key string, f func(*Category)) bool {
	m := s.metrics.Load()
	var start time.Time
	if m != nil {
		start = time.Now()
	}
	sh := s.shardOf(key)
	sh.mu.RLock()
	c, ok := sh.cats[key]
	if ok {
		f(c)
	}
	sh.mu.RUnlock()
	if m != nil {
		m.predictLat.Observe(time.Since(start).Seconds())
	}
	return ok
}

// Put installs a fully built category under key, replacing any existing
// one. It is the bulk-restore path (snapshot load, legacy-checkpoint
// migration) and does not journal; durable callers snapshot afterwards to
// make the restored state recoverable.
func (s *Store) Put(key string, c *Category) {
	sh := s.shardOf(key)
	sh.mu.Lock()
	if old, ok := sh.cats[key]; ok {
		s.nCats.Add(-1)
		s.nPoints.Add(int64(-old.Size()))
	}
	sh.cats[key] = c
	s.nCats.Add(1)
	s.nPoints.Add(int64(c.Size()))
	sh.mu.Unlock()
}

// Reset drops every category (the in-memory half of a full restore).
func (s *Store) Reset() {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		sh.cats = make(map[string]*Category)
		sh.mu.Unlock()
	}
	s.nCats.Store(0)
	s.nPoints.Store(0)
}

// Categories returns the number of categories currently stored.
func (s *Store) Categories() int { return int(s.nCats.Load()) }

// Points returns the total number of points stored across all categories.
func (s *Store) Points() int { return int(s.nPoints.Load()) }

// ForEach visits every (key, category) pair, one shard at a time under
// that shard's read lock, in an unspecified order. f must not mutate the
// category.
func (s *Store) ForEach(f func(key string, c *Category)) {
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k, c := range sh.cats {
			f(k, c)
		}
		sh.mu.RUnlock()
	}
}

// sortedKeys returns every category key in sorted order (deterministic
// snapshot layout and tests).
func (s *Store) sortedKeys() []string {
	keys := make([]string, 0, s.Categories())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.RLock()
		for k := range sh.cats {
			keys = append(keys, k)
		}
		sh.mu.RUnlock()
	}
	sort.Strings(keys)
	return keys
}
