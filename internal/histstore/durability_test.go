package histstore

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fill streams a deterministic workload of inserts into the store,
// exercising bounded and unbounded categories and NaN ratios.
func fill(t *testing.T, s *Store, seed int64, n int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("t%d|u%d", rng.Intn(3), rng.Intn(7))
		maxHist := 0
		if rng.Intn(2) == 0 {
			maxHist = 8
		}
		rt := float64(1 + rng.Intn(10000))
		maxRT := 0.0
		if rng.Intn(4) > 0 {
			maxRT = rt * float64(1+rng.Intn(3))
		}
		if err := s.Insert(key, maxHist, pt(rt, maxRT, float64(1+rng.Intn(64)))); err != nil {
			t.Fatal(err)
		}
	}
}

// mustEqualStores compares every category of two stores bit-for-bit:
// sizes, ring layout, points, and both Welford moment sets.
func mustEqualStores(t *testing.T, want, got *Store) {
	t.Helper()
	if want.Categories() != got.Categories() || want.Points() != got.Points() {
		t.Fatalf("store shape: %d/%d categories, %d/%d points",
			want.Categories(), got.Categories(), want.Points(), got.Points())
	}
	want.ForEach(func(key string, wc *Category) {
		ok := got.View(key, func(gc *Category) {
			ws, gs := wc.state(), gc.state()
			if ws.MaxHistory != gs.MaxHistory || ws.Head != gs.Head || len(ws.Points) != len(gs.Points) {
				t.Fatalf("key %s: ring mismatch %+v vs %+v", key, ws, gs)
			}
			for i := range ws.Points {
				if !samePoint(ws.Points[i], gs.Points[i]) {
					t.Fatalf("key %s point %d: %+v vs %+v", key, i, ws.Points[i], gs.Points[i])
				}
			}
			if ws.Abs != gs.Abs {
				t.Fatalf("key %s: abs moments %+v vs %+v", key, ws.Abs, gs.Abs)
			}
			if ws.Rat.N != gs.Rat.N ||
				math.Float64bits(ws.Rat.Mean) != math.Float64bits(gs.Rat.Mean) ||
				math.Float64bits(ws.Rat.M2) != math.Float64bits(gs.Rat.M2) {
				t.Fatalf("key %s: rat moments %+v vs %+v", key, ws.Rat, gs.Rat)
			}
		})
		if !ok {
			t.Fatalf("key %s missing after recovery", key)
		}
	})
}

func samePoint(a, b Point) bool {
	return math.Float64bits(a.RunTime) == math.Float64bits(b.RunTime) &&
		math.Float64bits(a.Ratio) == math.Float64bits(b.Ratio) &&
		math.Float64bits(a.Nodes) == math.Float64bits(b.Nodes)
}

// TestRecoveryFromWALOnly simulates a kill before any snapshot: the store
// is abandoned without Close or Snapshot and reopened from the WAL alone.
func TestRecoveryFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, live, 1, 500)
	// Simulated kill: no Snapshot, no Close — recovery sees only the WAL.
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered)
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecoverySnapshotPlusWAL is the acceptance scenario: snapshot
// mid-stream, more inserts (including evictions on bounded categories),
// kill, recover = snapshot + WAL replay, and every category's moments are
// bit-identical to the live store's.
func TestRecoverySnapshotPlusWAL(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, live, 2, 600)
	if err := live.Snapshot(); err != nil {
		t.Fatal(err)
	}
	fill(t, live, 3, 400) // the WAL tail past the snapshot
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered)

	// Recovery is idempotent: a second reopen (after the first one
	// truncated/kept the same files) yields the same state again.
	again, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, again)
}

// TestSnapshotCompactsWAL verifies the WAL restarts (nearly) empty after a
// snapshot and that a store recovered from snapshot alone matches.
func TestSnapshotCompactsWAL(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, live, 4, 800)
	before, err := os.Stat(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after, err := os.Stat(filepath.Join(dir, WALFile))
	if err != nil {
		t.Fatal(err)
	}
	if after.Size() >= before.Size() || after.Size() != walFrameBytes+walHeaderLen {
		t.Fatalf("wal not compacted: %d -> %d bytes", before.Size(), after.Size())
	}
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered)

	// Inserts after compaction land in the fresh WAL and still recover.
	fill(t, live, 5, 100)
	recovered2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered2)
}

// TestRecoveryTornTail corrupts the WAL the way a crash mid-append does —
// a partial record at the end — and verifies the clean prefix recovers and
// the tail is dropped for good.
func TestRecoveryTornTail(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, live, 6, 50)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, WALFile)
	intact, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}

	for name, mutate := range map[string]func([]byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-7] },
		"bitflip":   func(b []byte) []byte { b[len(b)-3] ^= 0x40; return b },
		"garbage":   func(b []byte) []byte { return append(b, 0xde, 0xad, 0xbe) },
	} {
		t.Run(name, func(t *testing.T) {
			damaged := mutate(append([]byte(nil), intact...))
			if err := os.WriteFile(walPath, damaged, 0o644); err != nil {
				t.Fatal(err)
			}
			recovered, err := Open(dir)
			if err != nil {
				t.Fatalf("torn tail must not fail recovery: %v", err)
			}
			// All but the damaged final record(s) survive.
			if recovered.Points() == 0 || recovered.Points() >= live.Points()+1 {
				t.Fatalf("recovered %d points from a %d-point log", recovered.Points(), live.Points())
			}
			// The file was truncated back to intact records: reopening
			// yields the identical store.
			again, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualStores(t, recovered, again)
		})
	}
}

// TestRecoverySkipsRecordsCoveredBySnapshot reproduces the crash window
// between the snapshot rename and the WAL rotation: the snapshot exists
// but the WAL still holds every pre-snapshot record. Replay must skip them
// or categories would double-count.
func TestRecoverySkipsRecordsCoveredBySnapshot(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	fill(t, live, 7, 300)
	// Preserve the pre-snapshot WAL, snapshot, then put the old WAL back —
	// exactly the on-disk state of a crash before rotation.
	walPath := filepath.Join(dir, WALFile)
	oldWAL, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(walPath, oldWAL, 0o644); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered)
}

func TestSnapshotOnMemoryOnlyStoreFails(t *testing.T) {
	s := New()
	if err := s.Snapshot(); err == nil {
		t.Fatal("memory-only snapshot must fail")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("memory-only close: %v", err)
	}
	if err := s.Insert("k", 0, pt(1, 0, 1)); err != nil {
		t.Fatalf("memory-only insert: %v", err)
	}
}

func TestOpenRejectsCorruptSnapshotHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile), []byte("not json\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("corrupt snapshot header accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, SnapshotFile),
		[]byte(`{"version":99,"lastSeq":0,"categories":0}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("unknown snapshot version accepted")
	}
}

func TestOpenRejectsBadWALHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, WALFile), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil {
		t.Fatal("bad wal header accepted")
	}
}

// TestDurableConcurrentInsertThenRecover runs concurrent durable inserts
// (WAL appends interleaving across shards) and verifies recovery matches
// the live store exactly.
func TestDurableConcurrentInsertThenRecover(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir, WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(40 + w)))
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("w%d-k%d", w, rng.Intn(5)) // writer-private keys: deterministic per-key order
				if err := live.Insert(key, 16, pt(float64(1+rng.Intn(5000)), 0, 2)); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for i := 0; i < 4; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered)
}

// TestDurableInsertRejectsOversizedKey: a record that would exceed the
// replay size bound must be refused at append time — if it were written,
// recovery would misread it as a torn tail and truncate away every record
// after it. The log must stay usable for normal keys afterwards.
func TestDurableInsertRejectsOversizedKey(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Insert("before", 0, pt(100, 200, 4)); err != nil {
		t.Fatal(err)
	}
	huge := strings.Repeat("k", walMaxRecord)
	if err := live.Insert(huge, 0, pt(100, 200, 4)); err == nil {
		t.Fatal("oversized key accepted")
	}
	if live.Categories() != 1 {
		t.Fatalf("rejected key mutated the store: %d categories", live.Categories())
	}
	if err := live.Insert("after", 0, pt(50, 0, 2)); err != nil {
		t.Fatalf("log unusable after oversized-key rejection: %v", err)
	}
	recovered, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualStores(t, live, recovered)
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableInsertRejectsInvalidPointBeforeWAL: an invalid point must be
// rejected before it reaches the journal, so the next boot replays cleanly
// instead of failing on data the write path accepted.
func TestDurableInsertRejectsInvalidPointBeforeWAL(t *testing.T) {
	dir := t.TempDir()
	live, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := live.Insert("good", 0, pt(100, 200, 4)); err != nil {
		t.Fatal(err)
	}
	if err := live.Insert("bad", 0, Point{RunTime: 10, Ratio: math.NaN(), Nodes: 0}); err == nil {
		t.Fatal("invalid point accepted")
	}
	if err := live.Close(); err != nil {
		t.Fatal(err)
	}
	recovered, err := Open(dir)
	if err != nil {
		t.Fatalf("recovery failed after rejected insert: %v", err)
	}
	if recovered.Categories() != 1 || recovered.Points() != 1 {
		t.Fatalf("recovered %d categories / %d points, want 1/1",
			recovered.Categories(), recovered.Points())
	}
	if err := recovered.Close(); err != nil {
		t.Fatal(err)
	}
}

// failingReader serves its data then fails with a non-EOF error, simulating
// a device-level read fault in the middle of a WAL.
type failingReader struct {
	data []byte
	err  error
}

func (r *failingReader) Read(p []byte) (int, error) {
	if len(r.data) == 0 {
		return 0, r.err
	}
	n := copy(p, r.data)
	r.data = r.data[n:]
	return n, nil
}

// TestReadFrameDistinguishesIOErrors: only a genuine torn tail (short read
// or checksum mismatch) maps to errTornRecord — the signal openWAL is
// allowed to truncate on. A real I/O error must surface as itself so
// recovery fails instead of silently discarding intact records past it.
func TestReadFrameDistinguishesIOErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := frame(&buf, recordPayload(1, "k", 0, pt(10, 0, 1))); err != nil {
		t.Fatal(err)
	}
	whole := buf.Bytes()

	errDisk := errors.New("simulated disk fault")
	// Fault at a record boundary: the first frame reads fine, the fault
	// surfaces verbatim on the next read.
	r := bufio.NewReader(&failingReader{data: whole, err: errDisk})
	if _, _, err := readFrame(r); err != nil {
		t.Fatalf("intact frame: %v", err)
	}
	if _, _, err := readFrame(r); !errors.Is(err, errDisk) || errors.Is(err, errTornRecord) {
		t.Fatalf("disk fault at boundary surfaced as %v", err)
	}
	// Fault mid-frame: still the real error, not a torn tail.
	r = bufio.NewReader(&failingReader{data: whole[:len(whole)/2], err: errDisk})
	if _, _, err := readFrame(r); !errors.Is(err, errDisk) || errors.Is(err, errTornRecord) {
		t.Fatalf("disk fault mid-frame surfaced as %v", err)
	}
	// A short file (EOF mid-frame) is the torn tail truncation exists for.
	r = bufio.NewReader(bytes.NewReader(whole[:len(whole)/2]))
	if _, _, err := readFrame(r); !errors.Is(err, errTornRecord) {
		t.Fatalf("truncated frame surfaced as %v, want errTornRecord", err)
	}
	// A corrupt payload (checksum mismatch) is likewise a torn tail.
	mangled := append([]byte(nil), whole...)
	mangled[len(mangled)-1] ^= 0xff
	r = bufio.NewReader(bytes.NewReader(mangled))
	if _, _, err := readFrame(r); !errors.Is(err, errTornRecord) {
		t.Fatalf("corrupt frame surfaced as %v, want errTornRecord", err)
	}
}
