package lint

import (
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"

	"repro/internal/lint/cache"
)

// keyer computes cache keys for one run. All hashing happens on raw file
// bytes and import declarations (parser.ImportsOnly) — no type-checking —
// so a fully warm run's cost is reading the module's sources once.
//
// A key folds together, in order: the cache format version, the Go
// toolchain version (standard-library behavior), the hash of the lint
// tool's own sources (analyzer semantics), the strict flag, the analyzer
// group's names, the package path, and the content hash of what the
// group's findings can depend on — the package's transitive module-
// internal import closure for package-scope groups, the whole module for
// module-scope groups. An empty key means "not cacheable" (unreadable
// file, import cycle); the runner then just analyzes normally.
type keyer struct {
	loader   *Loader
	hasher   *cache.Hasher
	fset     *token.FileSet // private: ImportsOnly parses, positions unused
	strict   string
	tool     string
	mod      string
	modDone  bool
	toolDone bool
	closure  map[string]string
	visiting map[string]bool
}

func newKeyer(l *Loader, strict bool) *keyer {
	s := "lenient"
	if strict {
		s = "strict"
	}
	return &keyer{
		loader:   l,
		hasher:   cache.NewHasher(),
		fset:     token.NewFileSet(),
		strict:   s,
		closure:  make(map[string]string),
		visiting: make(map[string]bool),
	}
}

// groupNames renders an analyzer group's identity for the key.
func groupNames(group []*Analyzer) string {
	names := make([]string, len(group))
	for i, a := range group {
		names[i] = a.Name
	}
	sort.Strings(names)
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ","
		}
		out += n
	}
	return out
}

// packageKey is the cache key for path's package-scope entry, or "" when
// the closure cannot be hashed.
func (k *keyer) packageKey(path string, group []*Analyzer) string {
	ch := k.closureHash(path)
	if ch == "" || k.toolHash() == "" {
		return ""
	}
	return cache.Key(cache.Version, runtime.Version(), k.tool, k.strict,
		"pkg", groupNames(group), path, ch)
}

// moduleKey is the cache key for path's module-scope entry, or "" when
// the group is empty (nothing to cache) or the module cannot be hashed.
func (k *keyer) moduleKey(path string, group []*Analyzer) string {
	if len(group) == 0 {
		return ""
	}
	if k.moduleHash() == "" || k.toolHash() == "" {
		return ""
	}
	return cache.Key(cache.Version, runtime.Version(), k.tool, k.strict,
		"mod", groupNames(group), path, k.mod)
}

// closureHash hashes a package's sources and, recursively, its module-
// internal imports. Standard-library (and any other extern) imports
// reduce to a sentinel: their identity is in the hashed import lines and
// their behavior in the toolchain version already folded into the key.
func (k *keyer) closureHash(path string) string {
	if h, ok := k.closure[path]; ok {
		return h
	}
	if k.visiting[path] {
		return "" // import cycle: a type error anyway, never cacheable
	}
	k.visiting[path] = true
	defer delete(k.visiting, path)

	dir, ok := k.loader.moduleResolve(path)
	if !ok {
		k.closure[path] = "extern"
		return "extern"
	}
	names, err := goFileNames(dir)
	if err != nil || len(names) == 0 {
		return ""
	}
	parts := []string{path}
	importSet := make(map[string]bool)
	for _, name := range names {
		full := filepath.Join(dir, name)
		sum, err := k.hasher.File(full)
		if err != nil {
			return ""
		}
		parts = append(parts, name, sum)
		f, err := parser.ParseFile(k.fset, full, nil, parser.ImportsOnly)
		if err != nil {
			return ""
		}
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil {
				importSet[p] = true
			}
		}
	}
	imports := make([]string, 0, len(importSet))
	for p := range importSet {
		imports = append(imports, p)
	}
	sort.Strings(imports)
	for _, p := range imports {
		ch := k.closureHash(p)
		if ch == "" {
			return ""
		}
		parts = append(parts, p, ch)
	}
	h := cache.Key(parts...)
	k.closure[path] = h
	return h
}

// dirsHash hashes every buildable Go file under each root (recursively,
// with the loader's testdata/vendor/hidden skips), returning "" on any
// read error. Missing roots contribute nothing.
func (k *keyer) dirsHash(roots []string, extraFiles []string) string {
	pairs := make(map[string]string)
	for _, root := range roots {
		if _, err := os.Stat(root); err != nil {
			continue
		}
		dirs, err := k.loader.walkModule(root)
		if err != nil {
			return ""
		}
		for _, dir := range dirs {
			names, err := goFileNames(dir)
			if err != nil {
				return ""
			}
			for _, name := range names {
				full := filepath.Join(dir, name)
				sum, err := k.hasher.File(full)
				if err != nil {
					return ""
				}
				pairs[full] = sum
			}
		}
	}
	for _, full := range extraFiles {
		sum, err := k.hasher.File(full)
		if err != nil {
			continue // optional files (go.mod is checked by the loader)
		}
		pairs[full] = sum
	}
	return cache.Files(pairs)
}

// toolHash covers the lint tool's own sources, so editing an analyzer
// invalidates package-scope entries whose closures do not import it.
func (k *keyer) toolHash() string {
	if !k.toolDone {
		k.toolDone = true
		k.tool = k.dirsHash([]string{
			filepath.Join(k.loader.moduleDir, "internal", "lint"),
			filepath.Join(k.loader.moduleDir, "cmd", "repolint"),
		}, nil)
	}
	return k.tool
}

// moduleHash covers every buildable Go file in the module plus go.mod.
func (k *keyer) moduleHash() string {
	if !k.modDone {
		k.modDone = true
		k.mod = k.dirsHash(
			[]string{k.loader.moduleDir},
			[]string{filepath.Join(k.loader.moduleDir, "go.mod")},
		)
	}
	return k.mod
}
