// Package service exercises goleak: goroutines started in daemon
// packages must have a termination path.
package service

import "context"

func leakyLiteral(work chan int) {
	go func() { // want `goroutine runs func literal in leakyLiteral, which can never return`
		for {
			<-work
		}
	}()
}

func okCtxLoop(ctx context.Context, tick chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick:
			}
		}
	}()
}

func spin() {
	for {
	}
}

func leakyNamed() {
	go spin() // want `goroutine runs spin, which can never return`
}

func leakyIndirect() {
	go wraps() // want `goroutine runs wraps, which can never return`
}

// wraps diverges only through its callee.
func wraps() {
	spin()
}

func okRange(c chan int) {
	go func() {
		for range c {
		}
	}()
}

func okStraightLine(errc chan error, f func() error) {
	go func() { errc <- f() }()
}

type worker struct{ done chan struct{} }

func (w *worker) loop() {
	for {
		select {
		case <-w.done:
			return
		}
	}
}

func okMethod(w *worker) {
	go w.loop()
}

func justified() {
	go spin() //lint:allow goleak fixture: process-lifetime worker by design
}

func unresolvable(f func()) {
	go f() // indirect: the graph cannot see the target, so no finding
}
