// Package service seeds goleak's strict mode: goroutine spawns whose
// target the call graph cannot resolve (function values, interface
// methods) are silent by default and findings under -strict. The
// assertions live in a RunRawWith test so both modes run over the same
// fixture.
package service

type runner interface{ Run() }

// startValue spawns a caller-supplied function value: the target is
// unresolvable, so strict mode flags it and lenient mode stays quiet.
func startValue(run func()) {
	go run()
}

// startIface spawns through an interface method: also unresolvable.
func startIface(r runner) {
	go r.Run()
}

// startNamed spawns a resolvable, terminating function: quiet in both
// modes.
func startNamed(done chan struct{}) {
	go drain(done)
}

func drain(done chan struct{}) {
	<-done
}
