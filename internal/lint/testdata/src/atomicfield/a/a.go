// Package a is the atomicfield fixture: fields accessed both atomically
// and plainly, and atomic.Value stores that violate the one-concrete-type
// protocol.
package a

import (
	"sync"
	"sync/atomic"
	"unsafe"
)

type stats struct {
	hits  int64
	other int64
	box   atomic.Value
}

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

func atomicRead(s *stats) int64 {
	return atomic.LoadInt64(&s.hits)
}

func plainRead(s *stats) int64 {
	return s.hits // want `field hits is accessed atomically \(first at line \d+\) but plainly here; mixed access is a data race`
}

func plainWrite(s *stats) {
	s.hits = 0 // want `field hits is accessed atomically .* but plainly here`
}

func plainIncrement(s *stats) {
	s.hits++ // want `field hits is accessed atomically .* but plainly here`
}

// other is never touched atomically: plain access is plain correct.
func plainOther(s *stats) int64 {
	return s.other
}

// Constructors touch fields of values nobody else can see yet.
func newStats() *stats {
	s := &stats{}
	s.hits = 42
	return s
}

type payloadA struct{ n int }

type payloadB struct{ s string }

func storeA(s *stats) {
	s.box.Store(payloadA{n: 1})
}

func storeB(s *stats) {
	s.box.Store(payloadB{s: "x"}) // want `stores .*payloadB here but .*payloadA at line \d+; inconsistently typed stores panic`
}

func storeInterface(s *stats, err error) {
	s.box.Store(err) // want `stores a value of interface type error; store one consistent concrete type`
}

func swapMismatch(s *stats) {
	s.box.Swap(payloadB{s: "y"}) // want `stores .*payloadB here but .*payloadA at line \d+`
}

// --- copy-on-write view publication ---

type cowView struct{ m map[string]int }

// The generic atomic.Pointer form is clean by construction: every access
// goes through Load/Store methods, so no plain access can race with them.
// This is the shape the histstore shard views use.
type cowStore struct {
	mu   sync.Mutex
	view atomic.Pointer[cowView]
}

func (s *cowStore) read(k string) int {
	v := s.view.Load()
	if v == nil {
		return 0
	}
	return v.m[k]
}

func (s *cowStore) publish(k string, n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old := s.view.Load()
	nm := make(map[string]int, len(old.m)+1)
	for key, val := range old.m {
		nm[key] = val
	}
	nm[k] = n
	s.view.Store(&cowView{m: nm})
}

// The legacy unsafe.Pointer form has no such protection: the same field is
// reachable plainly, and mixing the two is the data race the atomic methods
// exist to prevent.
type legacyCow struct {
	view unsafe.Pointer // *cowView
}

func (s *legacyCow) read() *cowView {
	return (*cowView)(atomic.LoadPointer(&s.view))
}

func (s *legacyCow) publish(v *cowView) {
	atomic.StorePointer(&s.view, unsafe.Pointer(v))
}

func (s *legacyCow) torn() *cowView {
	return (*cowView)(s.view) // want `field view is accessed atomically .* but plainly here`
}
