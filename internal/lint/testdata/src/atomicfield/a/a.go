// Package a is the atomicfield fixture: fields accessed both atomically
// and plainly, and atomic.Value stores that violate the one-concrete-type
// protocol.
package a

import "sync/atomic"

type stats struct {
	hits  int64
	other int64
	box   atomic.Value
}

func bump(s *stats) {
	atomic.AddInt64(&s.hits, 1)
}

func atomicRead(s *stats) int64 {
	return atomic.LoadInt64(&s.hits)
}

func plainRead(s *stats) int64 {
	return s.hits // want `field hits is accessed atomically \(first at line \d+\) but plainly here; mixed access is a data race`
}

func plainWrite(s *stats) {
	s.hits = 0 // want `field hits is accessed atomically .* but plainly here`
}

func plainIncrement(s *stats) {
	s.hits++ // want `field hits is accessed atomically .* but plainly here`
}

// other is never touched atomically: plain access is plain correct.
func plainOther(s *stats) int64 {
	return s.other
}

// Constructors touch fields of values nobody else can see yet.
func newStats() *stats {
	s := &stats{}
	s.hits = 42
	return s
}

type payloadA struct{ n int }

type payloadB struct{ s string }

func storeA(s *stats) {
	s.box.Store(payloadA{n: 1})
}

func storeB(s *stats) {
	s.box.Store(payloadB{s: "x"}) // want `stores .*payloadB here but .*payloadA at line \d+; inconsistently typed stores panic`
}

func storeInterface(s *stats, err error) {
	s.box.Store(err) // want `stores a value of interface type error; store one consistent concrete type`
}

func swapMismatch(s *stats) {
	s.box.Swap(payloadB{s: "y"}) // want `stores .*payloadB here but .*payloadA at line \d+`
}
