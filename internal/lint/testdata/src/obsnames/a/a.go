// Package a is an obsnames fixture. It exercises the real
// repro/internal/obs API so the analyzer's method matching is tested
// against the actual types.
package a

import (
	"io"

	"repro/internal/obs"
)

const submitted = "jobs_submitted" // named constants are validated by value

func metrics(reg *obs.Registry, endpoint string) {
	reg.Counter("sim.events").Inc()                        // ok
	reg.Counter(submitted).Inc()                           // ok: constant resolves to snake_case
	reg.Gauge("queueDepth").Set(1)                         // want `metric name "queueDepth" is not snake_case`
	reg.Histogram("http." + endpoint + ".latency_seconds") // ok: literal fragments around a dynamic part
	reg.Counter("Bad." + endpoint).Inc()                   // want `metric name fragment "Bad\." is not snake_case`
	reg.Counter(endpoint).Inc()                            // want `must contain a literal snake_case part`
}

// histstore exercises the history-store metric names the production code
// registers, so a rename there that breaks the convention fails this
// fixture before it reaches review.
func histstore(reg *obs.Registry) {
	reg.Gauge("histstore.categories").SetInt(3)                       // ok
	reg.Gauge("histstore.points").SetInt(48)                          // ok
	reg.Gauge("histstore.wal.bytes").SetInt(1 << 12)                  // ok
	reg.Counter("histstore.wal.records").Inc()                        // ok
	reg.Counter("histstore.wal.errors").Inc()                         // ok
	reg.Histogram("histstore.snapshot.seconds").Observe(0.01)         // ok
	reg.Histogram("histstore.insert.latency_seconds").Observe(0.001)  // ok
	reg.Histogram("histstore.predict.latency_seconds").Observe(0.001) // ok
	reg.Gauge("histstore.walBytes").SetInt(0)                         // want `metric name "histstore.walBytes" is not snake_case`
}

// tracing exercises the tracer counters and per-key accuracy gauges the
// observability layer registers, so those name families stay snake_case.
func tracing(reg *obs.Registry, key string) {
	reg.Counter("trace.spans").Inc()                               // ok
	reg.Counter("trace.spans.dropped").Inc()                       // ok
	reg.Counter("trace.traces.kept").Inc()                         // ok
	reg.Counter("trace.traces.dropped").Inc()                      // ok
	reg.Gauge("accuracy." + key + ".mean_error_seconds").Set(0)    // ok: literal fragments around the key
	reg.Gauge("accuracy." + key + ".rms_error_seconds").Set(0)     // ok
	reg.Gauge("accuracy." + key + ".p99_abs_error_seconds").Set(0) // ok
	reg.Gauge("accuracy." + key + ".drift_p").Set(1)               // ok
	reg.Counter("trace.Spans").Inc()                               // want `metric name "trace\.Spans" is not snake_case`
	reg.Gauge("accuracy." + key + ".driftP").Set(1)                // want `metric name fragment "\.driftP" is not snake_case`
}

// admissionMetrics exercises the admission-controller counter families, so
// the names the controller registers at construction stay snake_case.
func admissionMetrics(reg *obs.Registry, class string) {
	reg.Counter("admission.decisions").Inc()                    // ok
	reg.Counter("admission.admitted").Inc()                     // ok
	reg.Counter("admission.shed").Inc()                         // ok
	reg.Counter("admission.shed_budget").Inc()                  // ok
	reg.Counter("admission.shed_tokens").Inc()                  // ok
	reg.Counter("admission.overflow").Inc()                     // ok
	reg.Counter("admission.over_budget").Inc()                  // ok
	reg.Counter("admission.no_prediction").Inc()                // ok
	reg.Counter("admission.estimates_state").Inc()              // ok
	reg.Counter("admission.estimates_forward").Inc()            // ok
	reg.Counter("admission.class." + class + ".admitted").Inc() // ok: class name is the dynamic part
	reg.Counter("admission.class." + class + ".shed").Inc()     // ok
	reg.Gauge("admission.headroom").Set(1)                      // ok
	reg.Gauge("admission.token_window_seconds").SetInt(3600)    // ok
	reg.Counter("admission.shedBudget").Inc()                   // want `metric name "admission.shedBudget" is not snake_case`
	reg.Counter("admission.class." + class + ".Admitted").Inc() // want `metric name fragment "\.Admitted" is not snake_case`
}

// tailAndReselect exercises the tail-score gauge family the accuracy
// tracker publishes per key, the shadow scoreboard family (member name is
// the dynamic part), and the re-selection controller counters, so the
// observability surface added with predictor re-selection stays
// snake_case.
func tailAndReselect(reg *obs.Registry, key, member string) {
	reg.Gauge("accuracy." + key + ".p50_error_seconds").Set(0)            // ok
	reg.Gauge("accuracy." + key + ".p90_error_seconds").Set(0)            // ok
	reg.Gauge("accuracy." + key + ".p99_error_seconds").Set(0)            // ok
	reg.Gauge("accuracy." + key + ".mean_asym_cost_seconds").Set(0)       // ok
	reg.Gauge("accuracy." + key + ".tail_score").Set(0)                   // ok
	reg.Gauge("accuracy." + key + ".window_tail_score").Set(0)            // ok
	reg.Gauge("accuracy.shadow." + member + ".count").SetInt(0)           // ok
	reg.Gauge("accuracy.shadow." + member + ".window_tail_score").Set(0)  // ok
	reg.Gauge("accuracy.reselect.switches").SetInt(0)                     // ok
	reg.Gauge("accuracy.reselect.considered").SetInt(0)                   // ok
	reg.Gauge("accuracy.reselect.held_dwell").SetInt(0)                   // ok
	reg.Gauge("accuracy.reselect.held_hysteresis").SetInt(0)              // ok
	reg.Gauge("accuracy.reselect.held_incumbent").SetInt(0)               // ok
	reg.Gauge("accuracy.reselect.held_improving").SetInt(0)               // ok
	reg.Gauge("accuracy.reselect.completions").SetInt(0)                  // ok
	reg.Gauge("accuracy." + key + ".tailScore").Set(0)                    // want `metric name fragment "\.tailScore" is not snake_case`
	reg.Gauge("accuracy.reselect.heldDwell").SetInt(0)                    // want `metric name "accuracy.reselect.heldDwell" is not snake_case`
	reg.Gauge("accuracy.shadow." + member + ".windowTailScore").SetInt(0) // want `metric name fragment "\.windowTailScore" is not snake_case`
}

func logging(endpoint string) {
	l := obs.NewLogger(io.Discard, obs.LevelDebug)
	l.Info("listening", "addr", ":8080", "badKey", 2)       // want `log key "badKey" is not snake_case`
	l.With("component", "sim").Debug("tick", "an-other", 4) // want `log key "an-other" is not snake_case`
	l.Error("free text message is fine", "err", io.EOF)     // ok
}
