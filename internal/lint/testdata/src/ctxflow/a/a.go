// Package a is the ctxflow fixture: callers with and without contexts,
// calling module APIs with and without *Ctx variants.
package a

import (
	"context"

	"ctxflow/b"
)

// A ctx-holding caller using the ctx-less function variant severs the
// span tree.
func dropsFunc(ctx context.Context, n int) int {
	return b.Fetch(n) // want `call to Fetch drops the caller's ctx; call FetchCtx`
}

// Method variants are found through the receiver type.
func dropsMethod(ctx context.Context, d *b.DB) int {
	return d.Get("k") // want `call to Get drops the caller's ctx; call GetCtx`
}

// Calling the variant but feeding it a fresh root context is the same
// bug wearing a disguise.
func severs(ctx context.Context, n int) int {
	return b.FetchCtx(context.Background(), n) // want `FetchCtx is called with context\.Background\(\) although the caller has its own ctx`
}

func seversTODO(ctx context.Context, d *b.DB) int {
	return d.GetCtx(context.TODO(), "k") // want `GetCtx is called with context\.TODO\(\) although the caller has its own ctx`
}

// Closures capture the enclosing ctx and are held to the same rule.
func closureInherits(ctx context.Context, n int) int {
	f := func() int {
		return b.Fetch(n) // want `call to Fetch drops the caller's ctx`
	}
	return f()
}

// --- clean code ---

// Passing the caller's own ctx to the variant is the point.
func passes(ctx context.Context, n int) int {
	return b.FetchCtx(ctx, n)
}

// No variant exists: nothing to propagate into.
func noVariant(ctx context.Context, n int) int {
	return b.Plain(n)
}

// SumCtx's signature is not Sum-plus-context, so Sum is not gated.
func shapeMismatch(ctx context.Context, n int) int {
	return b.Sum(n, n)
}

// A caller without a ctx cannot propagate one.
func noCtxHere(n int) int {
	return b.Fetch(n)
}

// Root contexts are exactly right at the top of a call tree.
func topLevel(n int) int {
	return b.FetchCtx(context.Background(), n)
}

// A closure with its own ctx parameter is a fresh propagation scope.
func ownParam() func(context.Context, int) int {
	return func(ctx context.Context, n int) int {
		return b.FetchCtx(ctx, n)
	}
}

// Local has a same-package LocalCtx variant.
func Local(n int) int { return n }

// LocalCtx implementing itself via Local is the delegation pattern, not
// a dropped context.
func LocalCtx(ctx context.Context, n int) int {
	_ = ctx
	return Local(n)
}

// Any other ctx-holding caller of Local is still held to the rule.
func dropsLocal(ctx context.Context, n int) int {
	return Local(n) // want `call to Local drops the caller's ctx; call LocalCtx`
}

// --- transitive drops through ctx-less helpers ---

// The severing call can hide inside ctx-less helpers: the call graph
// follows them down to the API that has a variant.
func dropsTransitively(ctx context.Context, n int) int {
	return b.Indirect(n) // want `call to Indirect drops the caller's ctx before it reaches Fetch, which has a FetchCtx variant; plumb ctx through \(path: Indirect → hop → Fetch\)`
}

// Helpers whose call trees never reach a *Ctx-sibling API are fine.
func cleanTransitively(ctx context.Context, n int) int {
	return b.PlainIndirect(n)
}

// The walk stops at context-taking callees: what they were handed is
// their own callers' business.
func stopsAtCtxTaker(ctx context.Context, n int) int {
	return b.Stops(n)
}
