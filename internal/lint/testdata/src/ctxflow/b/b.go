// Package b provides the callee side of the ctxflow fixture: APIs with
// and without *Ctx trace-propagating variants.
package b

import "context"

// DB is a method-carrying callee type.
type DB struct{}

// Get has a GetCtx sibling, so ctx-holding callers must use that.
func (d *DB) Get(key string) int { return len(key) }

// GetCtx is the trace-propagating variant of Get.
func (d *DB) GetCtx(ctx context.Context, key string) int {
	_ = ctx
	return len(key)
}

// Fetch has a FetchCtx sibling.
func Fetch(n int) int { return n }

// FetchCtx is the trace-propagating variant of Fetch.
func FetchCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Plain has no *Ctx sibling; calling it from a ctx-holding function is
// fine.
func Plain(n int) int { return n }

// Sum has a same-named *Ctx sibling whose signature is not Sum's plus a
// leading context (wrong parameter count), so it is not a variant and
// Sum stays callable from ctx-holding functions.
func Sum(n, m int) int { return n + m }

// SumCtx is not a trace variant of Sum: see Sum.
func SumCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}
