// Package b provides the callee side of the ctxflow fixture: APIs with
// and without *Ctx trace-propagating variants.
package b

import "context"

// DB is a method-carrying callee type.
type DB struct{}

// Get has a GetCtx sibling, so ctx-holding callers must use that.
func (d *DB) Get(key string) int { return len(key) }

// GetCtx is the trace-propagating variant of Get.
func (d *DB) GetCtx(ctx context.Context, key string) int {
	_ = ctx
	return len(key)
}

// Fetch has a FetchCtx sibling.
func Fetch(n int) int { return n }

// FetchCtx is the trace-propagating variant of Fetch.
func FetchCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Plain has no *Ctx sibling; calling it from a ctx-holding function is
// fine.
func Plain(n int) int { return n }

// Sum has a same-named *Ctx sibling whose signature is not Sum's plus a
// leading context (wrong parameter count), so it is not a variant and
// Sum stays callable from ctx-holding functions.
func Sum(n, m int) int { return n + m }

// SumCtx is not a trace variant of Sum: see Sum.
func SumCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Indirect is a ctx-less helper with no *Ctx sibling of its own; its body
// reaches Fetch (which has one) through another hop.
func Indirect(n int) int { return hop(n) }

func hop(n int) int { return Fetch(n) }

// PlainIndirect only reaches APIs without *Ctx variants.
func PlainIndirect(n int) int { return Plain(n) }

// Stops hands FetchCtx a fresh root on purpose: it accepts no ctx, so the
// transitive walk does not descend past a context-taking callee.
func Stops(n int) int { return FetchCtx(context.Background(), n) }
