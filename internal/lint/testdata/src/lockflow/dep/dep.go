// Package dep is the callee side of the lockflow cross-package summary
// fixture: its functions acquire locks that callers in package a may
// already hold.
package dep

import "sync"

// Mu is a package-level lock callers in other packages share.
var Mu sync.Mutex

// Box carries its own lock.
type Box struct {
	Mu sync.Mutex
	n  int
}

// Touch acquires the receiver's lock.
func (b *Box) Touch() {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.n++
}

// WithGlobal acquires the package-level lock.
func WithGlobal() {
	Mu.Lock()
	defer Mu.Unlock()
}
