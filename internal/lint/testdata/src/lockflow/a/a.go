// Package a is a lockflow fixture: each function exercises one path
// shape the lockset analysis must get right, and the want comments mark
// the findings it must (and must not) produce.
package a

import (
	"errors"
	"sync"
	"sync/atomic"

	"lockflow/dep"
)

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int // guarded by mu
	m  int
}

var errBoom = errors.New("boom")

// The error path returns with the lock still held: the classic leak.
func earlyReturn(c *counter, fail bool) error {
	c.mu.Lock()
	if fail {
		return errBoom // want `returns while c\.mu \(locked at line 25\) is still held`
	}
	c.mu.Unlock()
	return nil
}

func fallsOffEnd(c *counter) {
	c.mu.Lock()
	c.n++
} // want `returns while c\.mu \(locked at line 34\) is still held`

func doubleLock(c *counter) {
	c.mu.Lock()
	c.mu.Lock() // want `Lock of c\.mu while it is already held \(locked at line 39\); this deadlocks`
	c.mu.Unlock()
}

// RLock→Lock on the same RWMutex deadlocks just like Lock→Lock.
func upgrade(c *counter) {
	c.rw.RLock()
	c.rw.Lock() // want `Lock of c\.rw while it is already held`
	c.rw.RUnlock()
}

func mismatch(c *counter) {
	c.rw.RLock()
	c.rw.Unlock() // want `Unlock of c\.rw releases a read lock \(RLock at line 52\); use RUnlock`
}

func (c *counter) incr() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

func (c *counter) reacquires() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.incr() // want `call to incr re-acquires c\.mu, which is already held \(locked at line 63\); this deadlocks`
}

// chained reaches incr's Lock through an intermediate same-package call.
func (c *counter) chained() {
	c.incr()
}

func (c *counter) reacquiresTransitively() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.chained() // want `call to chained re-acquires c\.mu`
}

func unguarded(c *counter) int {
	return c.n // want `c\.n is declared // guarded by mu, but c\.mu is not held here`
}

type badGuard struct {
	mu sync.Mutex
	// guarded by missing
	v int // want `// guarded by missing: the struct has no field named missing`
}

// --- clean code the analysis must stay silent on ---

func guardedOK(c *counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

// A release inside a deferred closure still counts as deferred.
func deferredClosure(c *counter) {
	c.mu.Lock()
	defer func() {
		c.mu.Unlock()
	}()
	c.n++
}

// Unguarded sibling fields need no lock.
func unannotatedField(c *counter) int {
	return c.m
}

// Conditional acquire/release pairs: held on some paths only, so no
// must-held finding at the end.
func conditional(c *counter, b bool) {
	if b {
		c.mu.Lock()
	}
	if b {
		c.mu.Unlock()
	}
}

// Lock/unlock per iteration: the back edge must not accumulate state.
func loopLock(c *counter, xs []int) int {
	total := 0
	for _, x := range xs {
		c.mu.Lock()
		total += x + c.n
		c.mu.Unlock()
	}
	return total
}

func selectLock(c *counter, ch chan int) {
	select {
	case v := <-ch:
		c.mu.Lock()
		c.n = v
		c.mu.Unlock()
	default:
	}
}

// Functions named *Locked are callee-side critical sections: the caller
// holds the lock, so guard checks do not apply inside them.
func bumpLocked(c *counter) {
	c.n++
}

// Constructors touch guarded fields of values nobody else can see yet.
func newCounter() *counter {
	c := &counter{}
	c.n = 1
	return c
}

// Embedded mutexes promote: e.Lock() locks e.Mu, satisfying the guard.
type embedded struct {
	sync.Mutex
	v int // guarded by Mutex
}

func (e *embedded) get() int {
	e.Lock()
	defer e.Unlock()
	return e.v
}

// Read lock under read lock on the same RWMutex does not self-deadlock.
func (c *counter) peek() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.m
}

func (c *counter) doublePeek() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	return c.peek()
}

// --- the "// swapped under <field>" copy-on-write discipline ---

type view struct{ m map[string]int }

type cow struct {
	mu   sync.Mutex
	rw   sync.RWMutex
	view atomic.Pointer[view] // swapped under mu
	rv   atomic.Pointer[view] // swapped under rw
}

// Readers Load freely from anywhere: no lock, no finding.
func (c *cow) read(k string) int {
	v := c.view.Load()
	if v == nil {
		return 0
	}
	return v.m[k]
}

// The writer protocol: clone and swap with the guard write-held.
func (c *cow) publish(k string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.view.Load()
	nm := make(map[string]int, len(old.m)+1)
	for key, val := range old.m {
		nm[key] = val
	}
	nm[k] = n
	c.view.Store(&view{m: nm})
}

func (c *cow) unguardedStore(v *view) {
	c.view.Store(v) // want `Store of c\.view, which is declared // swapped under mu, but c\.mu is not write-held here`
}

func (c *cow) unguardedSwap(v *view) *view {
	return c.view.Swap(v) // want `Swap of c\.view, which is declared // swapped under mu, but c\.mu is not write-held here`
}

func (c *cow) unguardedCAS(old, v *view) bool {
	return c.view.CompareAndSwap(old, v) // want `CompareAndSwap of c\.view, which is declared // swapped under mu`
}

// A read lock does not serialize writers: swapping under RLock still races.
func (c *cow) storeUnderRLock(v *view) {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.rv.Store(v) // want `Store of c\.rv, which is declared // swapped under rw, but c\.rw is not write-held here`
}

func (c *cow) storeUnderWriteLock(v *view) {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.rv.Store(v)
}

// Constructors publish into values nobody else can see yet.
func newCow() *cow {
	c := &cow{}
	c.view.Store(&view{m: map[string]int{}})
	return c
}

// *Locked functions run inside the caller's critical section by contract.
func (c *cow) swapLocked(v *view) {
	c.view.Store(v)
}

type badSwap struct {
	mu sync.Mutex
	// swapped under missing
	p atomic.Pointer[view] // want `// swapped under missing: the struct has no field named missing`
}

// --- cross-package summaries ---

// The call graph resolves callees in other packages, so a re-acquisition
// is caught even when the deadlocking Lock lives across a package
// boundary.
func reacquiresAcrossPackages(b *dep.Box) {
	b.Mu.Lock()
	defer b.Mu.Unlock()
	b.Touch() // want `call to Touch re-acquires b\.Mu, which is already held \(locked at line \d+\); this deadlocks`
}

// Package-level locks match by object identity across packages.
func globalAcrossPackages() {
	dep.Mu.Lock()
	defer dep.Mu.Unlock()
	dep.WithGlobal() // want `call to WithGlobal re-acquires Mu, which is already held`
}

// Not holding the lock makes the same calls fine.
func cleanAcrossPackages(b *dep.Box) {
	b.Touch()
	dep.WithGlobal()
}
