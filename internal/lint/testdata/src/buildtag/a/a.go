// Package a pairs a normal file with a build-tag-excluded one; the loader
// must skip the excluded file exactly as `go build` would.
package a

// N is the only declaration the build context should see.
const N = 1
