//go:build ignore

// This file is excluded by its build constraint. It deliberately fails to
// type-check (undefinedSymbol does not exist), so if the loader ever stops
// honoring build tags the buildtag loader test breaks loudly.
package a

var broken = undefinedSymbol
