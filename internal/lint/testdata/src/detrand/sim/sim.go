// Package sim is a detrand fixture: its import path ends in /sim, so the
// analyzer treats it as one of the deterministic packages.
package sim

import (
	"math/rand"
	"time"
)

func globalFuncs(xs []int) int {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand\.Shuffle`
	return rand.Intn(10)                                                  // want `global math/rand\.Intn`
}

func timeSeeded() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `rand\.NewSource seeded from time\.Now`
}

func explicitlySeeded(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed)) // ok: reproducible seed from configuration
}

func injected(rng *rand.Rand) float64 {
	return rng.Float64() // ok: method on an injected generator
}

func allowed() int {
	return rand.Int() //lint:allow detrand fixture demonstrating a justified suppression
}
