// Package a seeds validflow's source→sink flows: direct sink calls,
// interprocedural flows through callee summaries, sanitizer cleansing
// (function and method form), extern sources (os.Getenv), and the
// accumulator pattern where taint rides a strings.Builder.
package a

import (
	"errors"
	"os"
	"strings"
)

// taint: source reads the request payload straight off the wire
func readInput() string { return "x" }

// taint: sanitizer rejects payloads that are not lowercase identifiers
func validate(s string) (string, error) {
	if s != strings.ToLower(s) {
		return "", errors.New("not lowercase")
	}
	return s, nil
}

// taint: sink installs the payload into the durable class table
func persist(s string) { _ = s }

var table = map[string]bool{}

func direct() {
	v := readInput()
	persist(v) // want `value from a\.readInput \(a\.go:\d+\) reaches sink a\.persist \(a\.go:\d+\) without passing a declared sanitizer`
}

func sanitized() {
	v := readInput()
	v, err := validate(v)
	if err != nil {
		return
	}
	persist(v)
}

// sinkVia reaches the sink one call deep; its summary carries the flow
// and the finding materialises at the caller's frontier call.
func sinkVia(s string) { persist(s) }

func deep() {
	sinkVia(readInput()) // want `value from a\.readInput .* reaches sink a\.persist .* via sinkVia \(a\.go:\d+\)`
}

func env() {
	persist(os.Getenv("QWAIT_CLASSES")) // want `value from environment variable Getenv .* reaches sink a\.persist`
}

type trace struct{ name string }

// taint: source parses the uploaded trace file
func parseTrace() (*trace, error) { return &trace{}, nil }

// taint: sanitizer rejects traces with inconsistent job records
func (t *trace) Validate() error { return nil }

func methodSanitized() {
	tr, err := parseTrace()
	if err != nil {
		return
	}
	if err := tr.Validate(); err != nil {
		return
	}
	persist(tr.name)
}

func methodUnsanitized() {
	tr, err := parseTrace()
	if err != nil {
		return
	}
	persist(tr.name) // want `value from a\.parseTrace .* reaches sink a\.persist`
}

// builder proves taint survives a pointer-receiver accumulator: the
// WriteString receiver is a plain value, but the method writes through
// its implicit address, so the rendered key stays tainted.
func builder() {
	var b strings.Builder
	b.WriteString(readInput())
	persist(b.String()) // want `value from a\.readInput .* reaches sink a\.persist`
}
