// Package hygiene seeds validflow's annotation-hygiene findings:
// malformed directives and well-formed directives outside a function
// declaration's doc comment. The assertions live in a RunRaw test
// because these diagnostics land on the directive comment's own line.
package hygiene

// taint: wizard does magic
func unknownRole() {}

// taint:
func bareDirective() {}

// taint: source
func missingJustification() {}

// taint: sink this one is fine and silent
func wellFormed() {}

// taint: sanitizer misplaced on a variable declaration
var notAFunc = 1

func body() {
	// taint: source misplaced inside a function body
	_ = notAFunc
}
