// Package a is a floatcmp fixture.
package a

type meters float64

func eq(a, b float64) bool {
	return a == b // want `floating-point == comparison`
}

func neq(a, b float32) bool {
	return a != b // want `floating-point != comparison`
}

func named(a, b meters) bool {
	return a == b // want `floating-point == comparison`
}

func zeroSentinel(v float64) bool {
	return v == 0 // want `floating-point == comparison`
}

func ints(a, b int) bool {
	return a == b // ok: integers compare exactly
}

const half = 0.5

func constants() bool {
	return half == 0.5 // ok: both operands are compile-time constants
}

func allowed(a, b float64) bool {
	return a == b //lint:allow floatcmp fixture demonstrating a justified suppression
}
