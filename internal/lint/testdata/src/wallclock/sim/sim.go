// Package sim is a wallclock fixture: its import path ends in /sim, so the
// analyzer treats it as one of the deterministic packages.
package sim

import "time"

func elapsed() time.Duration {
	start := time.Now()          // want `time\.Now reads the wall clock`
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Since(start)     // want `time\.Since reads the wall clock`
}

func pureTime(sec int64) time.Time {
	return time.Unix(sec, 0) // ok: conversion, no clock access
}

type clocked struct {
	now func() time.Time // ok: the injected-clock pattern the check asks for
}

func (c clocked) read() time.Time { return c.now() }

func allowed() time.Time {
	return time.Now() //lint:allow wallclock fixture demonstrating a justified suppression
}
