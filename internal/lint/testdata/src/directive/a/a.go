// Package a exercises the //lint:allow directive machinery: justified
// directives suppress (trailing and standalone forms), unjustified or
// malformed ones are themselves reported.
package a

import "os"

func trailing() {
	os.Remove("a") //lint:allow errdrop trailing directive with a justification
}

func standalone() {
	//lint:allow errdrop standalone directive covers the next line
	os.Remove("b")
}

func unjustified() {
	//lint:allow errdrop
	os.Remove("c")
}

func unknownCheck() {
	os.Remove("d") //lint:allow nosuchcheck with a justification
}

func bare() {
	//lint:allow
	os.Remove("e")
}
