// Package dep is the cross-package half of the hotpath fixture: effect
// sites here are reached from annotated roots in hotpath/a, and the
// diagnostics must land on these lines with the full call chain.
package dep

import "sync"

var mu sync.Mutex

// Locked taints any hot path that reaches it.
func Locked(x int) int {
	mu.Lock() // want `acquires \(\*sync\.Mutex\)\.Lock, violating the no-lock contract on Tainted; call chain: Tainted \(a\.go:\d+\) → viaDep \(a\.go:\d+\) → Locked`
	defer mu.Unlock()
	return x
}

// Quiet's map write is justified where it happens, even though the
// analyzed package is hotpath/a — suppression is module-wide.
func Quiet(m map[string]int) {
	m["q"] = 2 //lint:allow hotpath fixture: warm-up-only write, proven off the steady-state path
}
