// Package a exercises the hotpath analyzer: functions declaring a
// // hotpath: contract must not reach forbidden operations on any call
// path, with violations reported at the effect site.
package a

import (
	"time"

	"hotpath/dep"
)

// Predict is the clean hot path: arithmetic, value structs, no effects.
// hotpath: no-lock no-alloc no-clock
func Predict(x int) int {
	return helper(x) + 1
}

func helper(x int) int { return x * 2 }

// Tainted reaches a mutex two hops away in another package; the finding
// lands in dep/dep.go with this chain.
// hotpath: no-lock no-alloc no-clock
func Tainted(x int) int {
	return viaDep(x)
}

func viaDep(x int) int {
	return dep.Locked(x)
}

// Clocky reads the wall clock directly.
// hotpath: no-clock
func Clocky() int64 {
	return time.Now().Unix() // want `reads the wall clock \(time\.Now\), violating the no-clock contract on Clocky; call chain: Clocky`
}

// AllocViaClosure allocates inside a nested literal.
// hotpath: no-alloc
func AllocViaClosure(xs []int) []int {
	grow := func(ys []int) []int {
		return append(ys, 1) // want `allocates \(append may grow\), violating the no-alloc contract on AllocViaClosure; call chain: AllocViaClosure \(a\.go:\d+\) → func literal in AllocViaClosure`
	}
	return grow(xs)
}

// Chatty blocks on a channel, which no-lock forbids.
// hotpath: no-lock
func Chatty(c chan int) int {
	return <-c // want `channel receive, violating the no-lock contract on Chatty; call chain: Chatty`
}

// instrument stands in for nil-guarded tracing plumbing: statically it
// locks, but the hot path never executes it with tracing disabled.
// hotpath: exempt fixture: nil-guarded instrumentation, off the steady-state path
func instrument(x int) int {
	c := make(chan int, 1)
	c <- x
	return <-c
}

// ExemptBoundary calls the exempt function; the traversal must not
// descend into it.
// hotpath: no-lock no-alloc no-clock
func ExemptBoundary(x int) int {
	return instrument(x)
}

// verified carries its own contract, so callers trust it and do not
// re-traverse it.
// hotpath: no-lock no-alloc no-clock
func verified(x int) int { return x + 1 }

// TrustsCallee leans on verified's contract.
// hotpath: no-lock no-alloc no-clock
func TrustsCallee(x int) int {
	return verified(x)
}

// partial declares only no-lock, so a no-alloc caller must still see
// through it to the allocation.
// hotpath: no-lock
func partial(xs []int) []int {
	return append(xs, 1) // want `allocates \(append may grow\), violating the no-alloc contract on PartialBoundary; call chain: PartialBoundary \(a\.go:\d+\) → partial`
}

// PartialBoundary requires no-alloc; partial's no-lock contract covers
// only the lock bits.
// hotpath: no-lock no-alloc no-clock
func PartialBoundary(xs []int) []int {
	return partial(xs)
}

// Justified suppresses its own map write with a sited justification.
// hotpath: no-alloc
func Justified(m map[string]int) {
	m["k"] = 1 //lint:allow hotpath fixture: warm-up-only write, converges after first call
}

// CrossJustified reaches a justified site in dep; the directive there
// silences the finding even though dep is not the analyzed package.
// hotpath: no-alloc
func CrossJustified(m map[string]int) {
	dep.Quiet(m)
}
