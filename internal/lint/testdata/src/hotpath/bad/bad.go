// Package bad holds malformed hotpath annotations; the analyzer reports
// them on the comment itself, so the assertions live in hotpath_test.go
// (a want comment cannot annotate a directive's own line).
package bad

// hotpath:
func Empty() {}

// hotpath: no-latency
func UnknownToken() {}

// hotpath: exempt
func BareExempt() {}
