// Package a half of a deliberate import cycle: the loader must reject it
// with a clean error, not recurse forever.
package a

import "cycle/b"

// V depends on b so the import is used.
var V = b.V + 1
