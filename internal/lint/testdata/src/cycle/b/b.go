// Package b closes the cycle back to package a.
package b

import "cycle/a"

// V depends on a so the import is used.
var V = a.V + 1
