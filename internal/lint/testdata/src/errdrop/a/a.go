// Package a is an errdrop fixture.
package a

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func bareCall() {
	os.Remove("x") // want `call discards its error result`
}

func deferred(f *os.File) {
	defer f.Close() // want `deferred call discards its error result`
}

func goStmt() {
	go os.Remove("x") // want `go call discards its error result`
}

func indirect(f func() error) {
	f() // want `call discards its error result`
}

func acknowledged() {
	_ = os.Remove("x") // ok: explicit, reviewable discard
}

func handled() error {
	return os.Remove("x") // ok: propagated
}

func exemptPrinters(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("hello")           // ok: stdio printing is exempt
	fmt.Fprintf(sb, "x=%d", 1)     // ok
	sb.WriteString("y")            // ok: strings.Builder never fails
	buf.WriteString("z")           // ok: bytes.Buffer never fails
	fmt.Fprintln(os.Stderr, "err") // ok
}

func allowed(f *os.File) {
	defer f.Close() //lint:allow errdrop fixture file opened read-only
}

func deferredClosureBlank(f *os.File) {
	defer func() {
		_ = f.Close() // want `assignment to _ inside a deferred closure discards its error result`
	}()
}

func goClosureBlank() {
	go func() {
		_ = os.Remove("x") // want `assignment to _ inside a go closure discards its error result`
	}()
}

func deferredClosureHandled(f *os.File, errc chan<- error) {
	defer func() {
		errc <- f.Close() // ok: the error leaves the closure
	}()
}

func deferredClosureExempt(sb *strings.Builder) {
	defer func() {
		_, _ = fmt.Fprintf(sb, "done") // ok: exempt printer
	}()
}

func syncBlankStaysLegal() {
	_ = os.Remove("x") // ok: synchronous acknowledgement is reviewable
}
