// Package a is an errdrop fixture.
package a

import (
	"bytes"
	"fmt"
	"os"
	"strings"
)

func bareCall() {
	os.Remove("x") // want `call discards its error result`
}

func deferred(f *os.File) {
	defer f.Close() // want `deferred call discards its error result`
}

func goStmt() {
	go os.Remove("x") // want `go call discards its error result`
}

func indirect(f func() error) {
	f() // want `call discards its error result`
}

func acknowledged() {
	_ = os.Remove("x") // ok: explicit, reviewable discard
}

func handled() error {
	return os.Remove("x") // ok: propagated
}

func exemptPrinters(sb *strings.Builder, buf *bytes.Buffer) {
	fmt.Println("hello")           // ok: stdio printing is exempt
	fmt.Fprintf(sb, "x=%d", 1)     // ok
	sb.WriteString("y")            // ok: strings.Builder never fails
	buf.WriteString("z")           // ok: bytes.Buffer never fails
	fmt.Fprintln(os.Stderr, "err") // ok
}

func allowed(f *os.File) {
	defer f.Close() //lint:allow errdrop fixture file opened read-only
}
