// Package service seeds boundflow's annotation hygiene: a bounded
// annotation without a justification is itself a finding, while text
// that merely shares the prefix ("bounded byzantine") is prose. The
// assertions live in a RunRaw test because the diagnostic lands on the
// directive comment's own line.
package service

type Server struct {
	// bounded by
	bare map[string]int
	// bounded byzantine generals reaching consensus
	prose map[string]int
}

func (s *Server) grow(k string) {
	s.bare[k] = 1
	s.prose[k] = 1
}
