// Package service seeds boundflow: growable fields in daemon-resident
// structs with and without bound evidence, the copy-on-write publish
// pattern, reachability through nested structs and generic type
// arguments, and justified annotations.
package service

import "sync/atomic"

type shard struct {
	hot map[string]int // want `map field hot grows at a\.go:\d+ without a statically evident bound`
}

type Server struct {
	sessions map[string]int // want `map field sessions grows at a\.go:\d+, a\.go:\d+ without a statically evident bound`
	// bounded by the LRU eviction in trim, capped at maxCache entries
	cache   map[string]int
	ring    []int
	log     []string // want `slice field log grows at a\.go:\d+ without a statically evident bound`
	capped  map[string]int
	dropped map[string]int
	shards  []*shard
	routes  atomic.Pointer[map[string]int] // reachability only; the map type itself has no fields
	idle    map[string]int
	swap    []string // want `slice field swap grows at a\.go:\d+ without a statically evident bound`
}

const maxCache = 128

func (s *Server) observe(k string) {
	s.sessions[k] = 1
	s.sessions[k+"!"] = 2
	s.cache[k] = 3
	s.log = append(s.log, k)
}

func (s *Server) trim() {
	if len(s.capped) > maxCache {
		return
	}
	s.capped["k"] = 1
	delete(s.dropped, "old")
	s.dropped["new"] = 1
	s.ring = append(s.ring, 1)
	s.ring = s.ring[:0]
}

func (s *Server) shard0(k string) {
	s.shards[0].hot[k] = 1
}

// publish grows a local and installs it into the field: the classic
// copy-on-write pattern. The growth sites charge the published field.
func (s *Server) publish(keys []string) {
	next := make([]string, 0, len(keys))
	for _, k := range keys {
		next = append(next, k)
	}
	s.swap = next
}

// idleOnly never grows idle — a field with no growth site needs no
// evidence at all.
func (s *Server) idleOnly() int { return len(s.idle) }
