package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
)

// TestRepoIsClean runs every analyzer over the real module tree and
// requires zero diagnostics, pinning the invariant that `repolint ./...`
// stays clean: any new wall-clock read, global rand draw, float equality,
// dropped error, or camelCase metric name in checked packages fails the
// ordinary test suite, not just the lint CI step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short mode")
	}
	root := selfModuleRoot(t)
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	paths, err := loader.ExpandPatterns([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Run(loader, lint.All(), paths)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("repolint finding on the real tree: %s", d)
	}
}

func selfModuleRoot(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs(".")
	if err != nil {
		t.Fatal(err)
	}
	for {
		if fi, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil && !fi.IsDir() {
			return dir
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			t.Fatal("no go.mod above test working directory")
		}
		dir = parent
	}
}
