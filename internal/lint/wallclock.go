package lint

import (
	"go/ast"
)

// WallClock forbids reading or waiting on the wall clock inside
// deterministic packages. The simulator, schedulers, GA search, and
// predictors all run on a simulated clock (int64 seconds); a time.Now or
// time.Sleep in those packages either leaks real time into results that
// must be reproducible or stalls a simulation that should run as fast as
// the hardware allows. Code that genuinely needs elapsed wall time (e.g.
// per-generation progress reporting) must accept an injected
// `now func() time.Time`, defaulted at the edge in cmd/, the way
// obs.Logger does — or carry a justified //lint:allow wallclock directive.
var WallClock = &Analyzer{
	Name:      "wallclock",
	Doc:       "forbid wall-clock access (time.Now, time.Since, time.Sleep, …) in deterministic packages",
	AppliesTo: isDeterministicPkg,
	Run:       runWallClock,
}

// wallClockFuncs are the time-package functions that read or wait on the
// real clock. Pure types and conversions (time.Duration, time.Unix) are
// fine; timers and tickers are as forbidden as Now itself.
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTicker": true,
	"NewTimer":  true,
	"AfterFunc": true,
}

func runWallClock(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			name, ok := pkgSelector(pass.Pkg.Info, sel, "time")
			if !ok || !wallClockFuncs[name] {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s reads the wall clock in a deterministic package; inject a clock (now func() time.Time) from cmd/ instead",
				name)
			return true
		})
	}
}
