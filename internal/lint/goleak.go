package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/callgraph"
)

// GoLeak requires every goroutine started in a daemon package to have a
// termination path. The daemon packages (service, histstore, qwaitd) run
// for the process lifetime and restart subsystems across config reloads;
// a goroutine whose only exit is process death leaks once per restart
// cycle and pins whatever it captured.
//
// The check is structural and interprocedural: the spawned function (a
// literal, a named function, or a method value) diverges when its
// control-flow graph has no path from entry to exit — a `for {}` or
// for-select with no returning case — treating calls to functions that
// themselves diverge as cutting the path. A goroutine that can return is
// fine regardless of how it is shut down; the fix for a divergent one is
// to tie an exit to ctx.Done(), a channel closed on shutdown, or a
// WaitGroup the owner waits on. Spawns the graph cannot resolve (calls
// through function-typed variables or interface methods) are normally
// not reported — the analyzer is biased toward silence over noise — but
// under -strict each unresolvable spawn site becomes a finding, so an
// audit can see exactly where the conservative silence lives.
var GoLeak = &Analyzer{
	Name: "goleak",
	Doc: "goroutines started in daemon packages (service, histstore, qwaitd) " +
		"must have a termination path (ctx.Done(), a closed channel, or a WaitGroup)",
	Scope:     ScopeModule,
	AppliesTo: isDaemonPkg,
	Run:       runGoLeak,
}

// daemonPackages are the long-running packages held to the goleak
// invariant, matched by import-path segment (so fixture packages under
// testdata/src/goleak/service are recognised like the real tree).
var daemonPackages = map[string]bool{
	"service":   true,
	"histstore": true,
	"qwaitd":    true,
}

func isDaemonPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if daemonPackages[seg] {
			return true
		}
	}
	return false
}

func runGoLeak(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			encl := pass.Graph.NodeOf(fn)
			if encl == nil {
				continue
			}
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				g, ok := x.(*ast.GoStmt)
				if !ok {
					return true
				}
				var target *callgraph.Node
				switch fun := ast.Unparen(g.Call.Fun).(type) {
				case *ast.FuncLit:
					target = pass.Graph.FuncLitNode(encl, fun)
				default:
					if callee := calleeFunc(info, g.Call); callee != nil {
						target = pass.Graph.NodeOf(callee)
					}
				}
				if target != nil && pass.Graph.Diverges(target) {
					pass.Reportf(g.Pos(), "goroutine runs %s, which can never return; tie an exit path to ctx.Done(), a channel closed on shutdown, or a WaitGroup", target.Name())
				}
				if target == nil && pass.Strict {
					pass.Reportf(g.Pos(), "goroutine target cannot be resolved statically (function value or interface method), so its termination path is unverified; spawn a named function or verify and suppress")
				}
				return true
			})
		}
	}
}
