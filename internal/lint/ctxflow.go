package lint

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/callgraph"
)

// CtxFlow enforces trace-context propagation. The tracing layer threads a
// context.Context through the request path (PredictDetailedCtx → ViewCtx
// → wal_append spans); a single call to the ctx-less variant of an API
// silently severs the span tree below it, and nothing fails — the trace
// is just mysteriously shallow. So, inside any function that has a
// context.Context parameter (closures inherit the enclosing function's
// ctx), calling a module function or method f for which an "fCtx" sibling
// exists is a finding: the variant must be called, with this function's
// ctx. Passing context.Background() or context.TODO() to a
// context-taking callee while the caller has a perfectly good ctx of its
// own is reported for the same reason.
//
// The severing call need not be direct: a ctx-less helper with no *Ctx
// sibling of its own can bury the Get call three frames down. When the
// driver built a call graph, a ctx-holding caller invoking such a helper
// is reported too, with the path to the API that has a variant. The walk
// is conservative: it follows static module calls only, and stops at any
// callee that accepts a ctx itself (that callee's own callers are
// responsible for what it was given).
//
// Only callees whose package the driver loaded with syntax (this module,
// or fixture packages under test) are held to the rule: the standard
// library's foo/fooContext pairs have different semantics and stay out of
// scope.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "Context-propagation analysis: a function holding a " +
		"context.Context must call the *Ctx variant of any module API " +
		"that has one — directly or through ctx-less helpers (resolved " +
		"via the call graph) — passing its own ctx rather than " +
		"context.Background()/TODO(), so trace span trees stay connected.",
	Scope: ScopeModule,
	Run:   runCtxFlow,
}

// ctxDrop is a transitive context-severing path: chain leads from the
// first callee inside the summarized function to the API that has a *Ctx
// variant (the chain's last element).
type ctxDrop struct {
	chain   []*types.Func
	variant *types.Func
}

// ctxAnalysis carries the per-run memo of transitive drop summaries.
type ctxAnalysis struct {
	pass     *Pass
	memo     map[*types.Func]*ctxDrop
	visiting map[*types.Func]bool
}

func runCtxFlow(pass *Pass) {
	a := &ctxAnalysis{
		pass:     pass,
		memo:     make(map[*types.Func]*ctxDrop),
		visiting: make(map[*types.Func]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.ctxWalk(fd.Body, fd.Name.Name, funcTypeHasCtx(pass, fd.Type))
		}
	}
}

// ctxWalk checks every call in body. hasCtx reports whether the enclosing
// function (or one it is nested in) has a context.Context parameter in
// scope; caller is the enclosing FuncDecl's name, used to recognise the
// delegation pattern. Function literals are walked with their own
// parameter list considered first, falling back to the inherited flag — a
// closure capturing ctx is as able to propagate it as its parent.
func (a *ctxAnalysis) ctxWalk(body *ast.BlockStmt, caller string, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			a.ctxWalk(n.Body, caller, hasCtx || funcTypeHasCtx(a.pass, n.Type))
			return false
		case *ast.CallExpr:
			if hasCtx {
				a.checkCall(n, caller)
			}
		}
		return true
	})
}

// funcTypeHasCtx reports whether a function type declares a
// context.Context parameter.
func funcTypeHasCtx(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fl := range ft.Params.List {
		if tv, ok := pass.Pkg.Info.Types[fl.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCall inspects one call made while a ctx is in scope.
func (a *ctxAnalysis) checkCall(call *ast.CallExpr, caller string) {
	pass := a.pass
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	// A context-taking callee fed a fresh root context: the caller's own
	// ctx (and the trace riding on it) is thrown away.
	if sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) && len(call.Args) > 0 {
		if name, ok := rootContextCall(pass.Pkg.Info, call.Args[0]); ok {
			pass.Reportf(call.Args[0].Pos(),
				"%s is called with context.%s() although the caller has its own ctx; pass ctx so the trace stays connected",
				fn.Name(), name)
		}
		return
	}
	// Ctx-less call to a module API that has a *Ctx sibling.
	if !moduleCallee(pass, fn) {
		return
	}
	variant := ctxVariant(fn, sig)
	if variant == nil {
		// No variant of its own: does it reach one through ctx-less module
		// helpers the call graph can see?
		a.checkTransitive(call, fn, sig)
		return
	}
	// The delegation pattern: FooCtx's own body calling Foo is the
	// variant's implementation, not a dropped context.
	if caller == variant.Name() && fn.Pkg() == pass.Pkg.Types {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s drops the caller's ctx; call %s with it so the trace stays connected",
		fn.Name(), variant.Name())
}

// checkTransitive reports a ctx-holding caller invoking a ctx-less module
// function whose body reaches, through other ctx-less module functions, an
// API that does have a *Ctx variant: the context is severed just as surely
// as by the direct call, only harder to see.
func (a *ctxAnalysis) checkTransitive(call *ast.CallExpr, fn *types.Func, sig *types.Signature) {
	if a.pass.Graph == nil || sigHasCtx(sig) {
		return
	}
	d := a.dropOf(fn)
	if d == nil {
		return
	}
	names := make([]string, 0, len(d.chain)+1)
	names = append(names, fn.Name())
	for _, f := range d.chain {
		names = append(names, f.Name())
	}
	target := d.chain[len(d.chain)-1]
	a.pass.Reportf(call.Pos(),
		"call to %s drops the caller's ctx before it reaches %s, which has a %s variant; plumb ctx through (path: %s)",
		fn.Name(), target.Name(), d.variant.Name(), strings.Join(names, " → "))
}

// dropOf summarizes (memoized) whether fn's body transitively reaches a
// module API that has a *Ctx variant without a context crossing any hop.
func (a *ctxAnalysis) dropOf(fn *types.Func) *ctxDrop {
	if d, done := a.memo[fn]; done {
		return d
	}
	if a.visiting[fn] {
		return nil // recursion: a severing path surfaces on the acyclic route
	}
	a.visiting[fn] = true
	defer delete(a.visiting, fn)
	n := a.pass.Graph.NodeOf(fn)
	var d *ctxDrop
	if n != nil && n.Decl != nil {
		d = a.dropFromNode(n, make(map[*callgraph.Node]bool))
	}
	a.memo[fn] = d
	return d
}

// dropFromNode scans one node's static outgoing edges. Nested function
// literals count as part of the enclosing function; dynamic (interface
// dispatch) edges are skipped — over-approximating them here would flag
// every caller of every interface, which is noise, not analysis.
func (a *ctxAnalysis) dropFromNode(n *callgraph.Node, seen map[*callgraph.Node]bool) *ctxDrop {
	if seen[n] {
		return nil
	}
	seen[n] = true
	for _, e := range a.pass.Graph.Calls(n) {
		c := e.Callee
		if e.Dynamic {
			continue
		}
		if c.Fn == nil {
			if d := a.dropFromNode(c, seen); d != nil {
				return d
			}
			continue
		}
		csig, ok := c.Fn.Type().(*types.Signature)
		if !ok {
			continue
		}
		if v := ctxVariant(c.Fn, csig); v != nil {
			return &ctxDrop{chain: []*types.Func{c.Fn}, variant: v}
		}
		if sigHasCtx(csig) {
			continue // takes a ctx itself; what it was handed is its caller's business
		}
		if d := a.dropOf(c.Fn); d != nil {
			return &ctxDrop{chain: append([]*types.Func{c.Fn}, d.chain...), variant: d.variant}
		}
	}
	return nil
}

// sigHasCtx reports whether any parameter of sig is a context.Context.
func sigHasCtx(sig *types.Signature) bool {
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// moduleCallee reports whether fn's package was loaded with syntax — the
// module's own packages (or test fixtures), as opposed to the standard
// library.
func moduleCallee(pass *Pass, fn *types.Func) bool {
	if fn.Pkg() == pass.Pkg.Types {
		return true
	}
	return pass.Lookup != nil && pass.Lookup(fn.Pkg().Path()) != nil
}

// ctxVariant finds a sibling of fn named fn.Name()+"Ctx" whose signature
// is fn's with a leading context.Context parameter: the shape the module
// uses for trace-propagating variants. Methods are looked up on the
// receiver type (so embedding works); package functions in the package
// scope.
func ctxVariant(fn *types.Func, sig *types.Signature) *types.Func {
	name := fn.Name() + "Ctx"
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	v, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	vsig, ok := v.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if vsig.Params().Len() != sig.Params().Len()+1 {
		return nil
	}
	if vsig.Params().Len() == 0 || !isContextType(vsig.Params().At(0).Type()) {
		return nil
	}
	return v
}

// rootContextCall matches context.Background() and context.TODO(),
// returning the function name.
func rootContextCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	name, ok := pkgSelector(info, call.Fun, "context")
	if !ok || (name != "Background" && name != "TODO") {
		return "", false
	}
	return name, true
}
