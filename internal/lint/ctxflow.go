package lint

import (
	"go/ast"
	"go/types"
)

// CtxFlow enforces trace-context propagation. The tracing layer threads a
// context.Context through the request path (PredictDetailedCtx → ViewCtx
// → wal_append spans); a single call to the ctx-less variant of an API
// silently severs the span tree below it, and nothing fails — the trace
// is just mysteriously shallow. So, inside any function that has a
// context.Context parameter (closures inherit the enclosing function's
// ctx), calling a module function or method f for which an "fCtx" sibling
// exists is a finding: the variant must be called, with this function's
// ctx. Passing context.Background() or context.TODO() to a
// context-taking callee while the caller has a perfectly good ctx of its
// own is reported for the same reason.
//
// Only callees whose package the driver loaded with syntax (this module,
// or fixture packages under test) are held to the rule: the standard
// library's foo/fooContext pairs have different semantics and stay out of
// scope.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc: "Context-propagation analysis: a function holding a " +
		"context.Context must call the *Ctx variant of any module API " +
		"that has one, passing its own ctx rather than " +
		"context.Background()/TODO(), so trace span trees stay connected.",
	Run: runCtxFlow,
}

func runCtxFlow(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ctxWalk(pass, fd.Body, fd.Name.Name, funcTypeHasCtx(pass, fd.Type))
		}
	}
}

// ctxWalk checks every call in body. hasCtx reports whether the enclosing
// function (or one it is nested in) has a context.Context parameter in
// scope; caller is the enclosing FuncDecl's name, used to recognise the
// delegation pattern. Function literals are walked with their own
// parameter list considered first, falling back to the inherited flag — a
// closure capturing ctx is as able to propagate it as its parent.
func ctxWalk(pass *Pass, body *ast.BlockStmt, caller string, hasCtx bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			ctxWalk(pass, n.Body, caller, hasCtx || funcTypeHasCtx(pass, n.Type))
			return false
		case *ast.CallExpr:
			if hasCtx {
				checkCall(pass, n, caller)
			}
		}
		return true
	})
}

// funcTypeHasCtx reports whether a function type declares a
// context.Context parameter.
func funcTypeHasCtx(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, fl := range ft.Params.List {
		if tv, ok := pass.Pkg.Info.Types[fl.Type]; ok && isContextType(tv.Type) {
			return true
		}
	}
	return false
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// checkCall inspects one call made while a ctx is in scope.
func checkCall(pass *Pass, call *ast.CallExpr, caller string) {
	fn := calleeFunc(pass.Pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	// A context-taking callee fed a fresh root context: the caller's own
	// ctx (and the trace riding on it) is thrown away.
	if sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type()) && len(call.Args) > 0 {
		if name, ok := rootContextCall(pass.Pkg.Info, call.Args[0]); ok {
			pass.Reportf(call.Args[0].Pos(),
				"%s is called with context.%s() although the caller has its own ctx; pass ctx so the trace stays connected",
				fn.Name(), name)
		}
		return
	}
	// Ctx-less call to a module API that has a *Ctx sibling.
	if !moduleCallee(pass, fn) {
		return
	}
	variant := ctxVariant(fn, sig)
	if variant == nil {
		return
	}
	// The delegation pattern: FooCtx's own body calling Foo is the
	// variant's implementation, not a dropped context.
	if caller == variant.Name() && fn.Pkg() == pass.Pkg.Types {
		return
	}
	pass.Reportf(call.Pos(),
		"call to %s drops the caller's ctx; call %s with it so the trace stays connected",
		fn.Name(), variant.Name())
}

// moduleCallee reports whether fn's package was loaded with syntax — the
// module's own packages (or test fixtures), as opposed to the standard
// library.
func moduleCallee(pass *Pass, fn *types.Func) bool {
	if fn.Pkg() == pass.Pkg.Types {
		return true
	}
	return pass.Lookup != nil && pass.Lookup(fn.Pkg().Path()) != nil
}

// ctxVariant finds a sibling of fn named fn.Name()+"Ctx" whose signature
// is fn's with a leading context.Context parameter: the shape the module
// uses for trace-propagating variants. Methods are looked up on the
// receiver type (so embedding works); package functions in the package
// scope.
func ctxVariant(fn *types.Func, sig *types.Signature) *types.Func {
	name := fn.Name() + "Ctx"
	var obj types.Object
	if recv := sig.Recv(); recv != nil {
		obj, _, _ = types.LookupFieldOrMethod(recv.Type(), true, fn.Pkg(), name)
	} else {
		obj = fn.Pkg().Scope().Lookup(name)
	}
	v, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	vsig, ok := v.Type().(*types.Signature)
	if !ok {
		return nil
	}
	if vsig.Params().Len() != sig.Params().Len()+1 {
		return nil
	}
	if vsig.Params().Len() == 0 || !isContextType(vsig.Params().At(0).Type()) {
		return nil
	}
	return v
}

// rootContextCall matches context.Background() and context.TODO(),
// returning the function name.
func rootContextCall(info *types.Info, e ast.Expr) (string, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", false
	}
	name, ok := pkgSelector(info, call.Fun, "context")
	if !ok || (name != "Background" && name != "TODO") {
		return "", false
	}
	return name, true
}
