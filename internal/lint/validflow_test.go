package lint

import (
	"strings"
	"testing"
)

func TestParseTaintDirective(t *testing.T) {
	tests := []struct {
		text   string
		role   string
		why    string
		errMsg bool
		ok     bool
	}{
		{"// taint: source HTTP bodies are attacker-controlled", "source", "HTTP bodies are attacker-controlled", false, true},
		{"//taint: sanitizer rejects bad points", "sanitizer", "rejects bad points", false, true},
		{"// taint: sink replayed into live categories", "sink", "replayed into live categories", false, true},
		{"// taint: sink   collapses   spacing", "sink", "collapses spacing", false, true},
		{"// taint:", "", "", true, true},
		{"// taint: wizard does magic", "", "", true, true},
		{"// taint: source", "source", "", true, true},
		{"/* taint: source block comments cannot */", "", "", false, false},
		{"// just prose", "", "", false, false},
		{"// tainted by history", "", "", false, false},
	}
	for _, tt := range tests {
		role, why, errMsg, ok := parseTaintDirective(tt.text)
		if ok != tt.ok || (errMsg != "") != tt.errMsg || role != tt.role || why != tt.why {
			t.Errorf("parseTaintDirective(%q) = %q, %q, %q, %v; want role %q, why %q, err %v, ok %v",
				tt.text, role, why, errMsg, ok, tt.role, tt.why, tt.errMsg, tt.ok)
		}
	}
}

// FuzzParseTaintDirective drives the catalog annotation parser — the
// grammar the whole validflow catalog is declared in — with hostile
// comment bodies, checking structural invariants rather than exact
// outputs: a recognised directive either yields a known role with a
// justification or an error message, never both and never neither.
func FuzzParseTaintDirective(f *testing.F) {
	for _, seed := range []string{
		"// taint: source HTTP bodies are attacker-controlled",
		"//taint: sanitizer rejects bad points",
		"// taint: sink why",
		"// taint:",
		"// taint: wizard does magic",
		"// taint: source",
		"/* taint: source x */",
		"// taint:source fused",
		"//\ttaint:\tsink\ttabbed why",
		"//",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		role, why, errMsg, ok := parseTaintDirective(text)
		if !ok {
			if role != "" || why != "" || errMsg != "" {
				t.Errorf("parseTaintDirective(%q): not a directive but returned %q, %q, %q", text, role, why, errMsg)
			}
			return
		}
		if errMsg != "" {
			if why != "" {
				t.Errorf("parseTaintDirective(%q): error %q with justification %q", text, errMsg, why)
			}
			return
		}
		if !taintRoles[role] {
			t.Errorf("parseTaintDirective(%q): accepted unknown role %q", text, role)
		}
		if why == "" {
			t.Errorf("parseTaintDirective(%q): accepted role %q without a justification", text, role)
		}
		if strings.ContainsAny(role, " \t\n") {
			t.Errorf("parseTaintDirective(%q): role %q contains whitespace", text, role)
		}
	})
}

func TestParseBoundedDirective(t *testing.T) {
	tests := []struct {
		text   string
		why    string
		errMsg bool
		ok     bool
	}{
		{"// bounded by the retention cap enforced in trim", "the retention cap enforced in trim", false, true},
		{"//bounded by maxCache entries", "maxCache entries", false, true},
		{"// bounded by\tthe tab-separated cap", "the tab-separated cap", false, true},
		{"// bounded by", "", true, true},
		{"// bounded by   ", "", true, true},
		{"// bounded byzantine generals", "", false, false},
		{"/* bounded by a block comment */", "", false, false},
		{"// the map is bounded by the cap", "", false, false}, // prefix must open the comment
		{"// unbounded by design", "", false, false},
	}
	for _, tt := range tests {
		why, errMsg, ok := parseBoundedDirective(tt.text)
		if ok != tt.ok || (errMsg != "") != tt.errMsg || why != tt.why {
			t.Errorf("parseBoundedDirective(%q) = %q, %q, %v; want why %q, err %v, ok %v",
				tt.text, why, errMsg, ok, tt.why, tt.errMsg, tt.ok)
		}
	}
}

// FuzzParseBoundedDirective drives the field-bound annotation parser
// with hostile comment bodies: a recognised directive either carries a
// non-empty justification or an error, and nothing sharing a prefix
// ("bounded byzantine") may parse as one.
func FuzzParseBoundedDirective(f *testing.F) {
	for _, seed := range []string{
		"// bounded by the retention cap",
		"//bounded by maxCache",
		"// bounded by",
		"// bounded byzantine generals",
		"/* bounded by x */",
		"// bounded by\twhy",
		"//   bounded by   spaced   why",
		"//",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		why, errMsg, ok := parseBoundedDirective(text)
		if !ok {
			if why != "" || errMsg != "" {
				t.Errorf("parseBoundedDirective(%q): not a directive but returned %q, %q", text, why, errMsg)
			}
			return
		}
		body, isLine := strings.CutPrefix(text, "//")
		if !isLine {
			t.Fatalf("parseBoundedDirective(%q): accepted a non-line comment", text)
		}
		rest := strings.TrimSpace(body)
		if !strings.HasPrefix(rest, boundedPrefix) {
			t.Fatalf("parseBoundedDirective(%q): accepted text without the prefix", text)
		}
		if tail := rest[len(boundedPrefix):]; tail != "" && tail[0] != ' ' && tail[0] != '\t' {
			t.Errorf("parseBoundedDirective(%q): accepted a fused prefix word", text)
		}
		if errMsg == "" && why == "" {
			t.Errorf("parseBoundedDirective(%q): accepted an empty justification without error", text)
		}
		if errMsg != "" && why != "" {
			t.Errorf("parseBoundedDirective(%q): returned both %q and error %q", text, why, errMsg)
		}
	})
}
