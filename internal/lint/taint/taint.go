// Package taint is an interprocedural, field-insensitive value-flow
// engine for the lint suite. It layers on the two substrates the suite
// already has — per-function control-flow graphs with a forward fixpoint
// engine (internal/lint/cfg) and the module-wide call graph
// (internal/lint/callgraph) — and answers one question: can a value
// born at a declared untrusted *source* reach a declared *sink* without
// passing through a declared *sanitizer* on the way?
//
// The client (the validflow analyzer) supplies the catalog as three
// predicates over *types.Func; the engine supplies the flow reasoning:
//
//   - Within a function, taint propagates through assignments, composite
//     literals, unary/binary operators, conversions, selector and index
//     reads, channel receives, and range statements. The analysis is
//     flow-sensitive (an assignment of a clean value kills taint; a
//     sanitizer call cleanses the objects it names) but field-insensitive:
//     one taint value per named object, so a struct with one tainted
//     field is a tainted struct.
//   - Across calls, the engine computes one memoized Summary per
//     call-graph node: which parameters flow to the result, whether the
//     result is unconditionally tainted by a source inside the callee,
//     which parameters the callee cleanses, and which parameters reach a
//     sink inside the callee (with the call chain to report). Summaries
//     compose: a caller maps its argument taint through the callee's
//     summary instead of re-analyzing the callee body.
//   - Dynamic edges (interface dispatch) are resolved conservatively
//     through the call graph's implements sets: the call joins the
//     summaries of every possible callee.
//   - Callees without source (the standard library) propagate
//     conservatively: the result carries the union of the argument
//     taints, and writable arguments (pointers, slices, maps,
//     interfaces) are tainted too, because the callee may store through
//     them (io.ReadFull filling a buffer from a tainted reader).
//
// Known holes, accepted for a linter biased toward a quiet, fixable
// finding set: function literals are analyzed only when reachable as
// call-graph nodes and do not see their free variables' taint; calls
// through function-typed variables fall back to the conservative
// propagate-only rule (no sink checking); recursive cycles are resolved
// optimistically (the in-progress callee contributes an empty summary).
package taint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/cfg"
)

// Source describes where a tainted value was born.
type Source struct {
	Pos  token.Pos // the call that produced the value
	Desc string    // the catalog's description of the source
}

// Val is the taint carried by one value: the set of enclosing-function
// parameters it may derive from (a bitmask over parameter indices,
// receiver first) and, independently, a concrete source it may derive
// from. Both can be set at once — a value joined from a parameter on one
// path and a source on another.
type Val struct {
	Params uint64
	Src    *Source
}

func (v Val) zero() bool { return v.Params == 0 && v.Src == nil }

// joinVal unions two taints; among two sources the least position wins,
// so fixpoints are deterministic and the reported source is stable.
// joinVals folds a slice of values into their join.
func joinVals(vs []Val) Val {
	var out Val
	for _, v := range vs {
		out = joinVal(out, v)
	}
	return out
}

func joinVal(a, b Val) Val {
	out := Val{Params: a.Params | b.Params, Src: a.Src}
	if b.Src != nil && (out.Src == nil || b.Src.Pos < out.Src.Pos) {
		out.Src = b.Src
	}
	return out
}

// Step is one hop of a reported call chain.
type Step struct {
	Name string
	Site token.Pos
}

// Flow records that some parameters of a function reach a sink inside it
// (directly or through callees). Callers consult flows to extend taint
// across the call: if any parameter in Params is tainted at a call site,
// the argument's taint reaches the sink.
type Flow struct {
	Params  uint64
	Sink    string    // sink description from the catalog
	SinkPos token.Pos // the sink call deep in the chain
	Via     []Step    // chain from this function to the sink, first hop inside this function
}

// Finding is one complete source→sink flow, detected at the frontier
// call inside the function under analysis: either a direct sink call
// with source-tainted arguments, or a call into a callee whose summary
// sinks a parameter the caller passes source-tainted.
type Finding struct {
	Src     *Source
	Sink    string
	SinkPos token.Pos
	Pos     token.Pos // frontier call site — where the diagnostic lands
	Via     []Step
}

// Summary is the memoized interprocedural fact set of one function.
type Summary struct {
	ResultParams uint64  // result taint: union of these parameters' taint
	ResultSrc    *Source // result taint: unconditionally from this source
	Cleanses     uint64  // parameters whose objects a call to this function cleanses
	Flows        []Flow
	Findings     []Finding
}

// Catalog is the client's source/sanitizer/sink declarations, plus a
// table for functions without source (flag.String, os.Getenv).
type Catalog struct {
	// Source returns the description of fn when fn is a declared source.
	Source func(fn *types.Func) (string, bool)
	// Sanitizer reports whether fn is a declared sanitizer. A sanitizer
	// call cleanses the objects named by its receiver and arguments, and
	// its results are clean.
	Sanitizer func(fn *types.Func) bool
	// Sink returns the description of fn when fn is a declared sink. Any
	// tainted argument (receiver included) reaching a sink is a finding.
	Sink func(fn *types.Func) (string, bool)
}

// Engine computes and memoizes summaries over one call graph.
type Engine struct {
	graph *callgraph.Graph
	cat   Catalog
	sums  map[*callgraph.Node]*Summary
	busy  map[*callgraph.Node]bool
}

// New creates an engine over the graph with the given catalog.
func New(g *callgraph.Graph, cat Catalog) *Engine {
	return &Engine{
		graph: g,
		cat:   cat,
		sums:  make(map[*callgraph.Node]*Summary),
		busy:  make(map[*callgraph.Node]bool),
	}
}

// Summary returns (computing once) the node's interprocedural summary.
// Nodes without a body and nodes re-entered through recursion yield the
// empty summary.
func (e *Engine) Summary(n *callgraph.Node) *Summary {
	if n == nil {
		return &Summary{}
	}
	if s, ok := e.sums[n]; ok {
		return s
	}
	if e.busy[n] {
		return &Summary{} // optimistic resolution of recursive cycles
	}
	e.busy[n] = true
	s := e.analyze(n)
	delete(e.busy, n)
	e.sums[n] = s
	return s
}

// state is the per-block dataflow fact: taint per named object.
type state map[types.Object]Val

func cloneState(s state) state {
	out := make(state, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinState(a, b state) state {
	out := cloneState(a)
	for k, v := range b {
		out[k] = joinVal(out[k], v)
	}
	return out
}

func equalState(a, b state) bool {
	if len(a) != len(b) {
		return false
	}
	for k, v := range a {
		w, ok := b[k]
		if !ok || v.Params != w.Params {
			return false
		}
		if (v.Src == nil) != (w.Src == nil) {
			return false
		}
		if v.Src != nil && v.Src.Pos != w.Src.Pos {
			return false
		}
	}
	return true
}

// analyzer carries one function's analysis.
type analyzer struct {
	eng    *Engine
	node   *callgraph.Node
	info   *types.Info
	params []*types.Var // receiver first, then parameters
	sum    *Summary

	// report gates finding/flow recording: off during the fixpoint,
	// on during the final deterministic pass over the blocks.
	report bool
	seen   map[string]bool // dedup key for findings/flows

	// dynamic call targets by call position, built lazily.
	dynAt map[token.Pos][]*callgraph.Node
}

func (e *Engine) analyze(n *callgraph.Node) *Summary {
	body := n.Body()
	if body == nil {
		return &Summary{}
	}
	a := &analyzer{
		eng:  e,
		node: n,
		info: n.Src.Info,
		sum:  &Summary{},
		seen: make(map[string]bool),
	}
	sig := a.signature()
	if sig == nil {
		return a.sum
	}
	if r := sig.Recv(); r != nil {
		a.params = append(a.params, r)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		a.params = append(a.params, sig.Params().At(i))
	}

	entry := make(state, len(a.params))
	for i, p := range a.params {
		if i < 64 {
			entry[p] = Val{Params: 1 << uint(i)}
		}
	}
	g := cfg.New(body)
	in := cfg.Forward(g, entry, cloneState, joinState, equalState, a.transfer)

	// Reporting pass: replay every reachable block's transfer on its
	// settled in-state, in block order, with recording enabled.
	a.report = true
	for _, b := range g.Blocks {
		s, ok := in[b]
		if !ok {
			continue
		}
		a.transfer(b, cloneState(s))
	}
	sortFlows(a.sum)
	return a.sum
}

func (a *analyzer) signature() *types.Signature {
	if a.node.Fn != nil {
		sig, _ := a.node.Fn.Type().(*types.Signature)
		return sig
	}
	if tv, ok := a.info.Types[a.node.Lit]; ok {
		sig, _ := tv.Type.(*types.Signature)
		return sig
	}
	return nil
}

// sortFlows orders the summary's findings and flows by position so
// memoized summaries are deterministic regardless of analysis order.
func sortFlows(s *Summary) {
	sort.Slice(s.Findings, func(i, j int) bool {
		if s.Findings[i].Pos != s.Findings[j].Pos {
			return s.Findings[i].Pos < s.Findings[j].Pos
		}
		return s.Findings[i].Sink < s.Findings[j].Sink
	})
	sort.Slice(s.Flows, func(i, j int) bool {
		if s.Flows[i].SinkPos != s.Flows[j].SinkPos {
			return s.Flows[i].SinkPos < s.Flows[j].SinkPos
		}
		return s.Flows[i].Params < s.Flows[j].Params
	})
}

// transfer applies one block's nodes to the state.
func (a *analyzer) transfer(b *cfg.Block, s state) state {
	for _, n := range b.Nodes {
		a.apply(n, s)
	}
	return s
}

func (a *analyzer) apply(n ast.Node, s state) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(n, s)
	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			a.valueSpec(vs, s)
		}
	case *ast.ExprStmt:
		a.eval(n.X, s)
	case *ast.ReturnStmt:
		a.returnStmt(n, s)
	case *ast.IncDecStmt:
		a.eval(n.X, s)
	case *ast.SendStmt:
		// ch <- v: the channel object becomes as tainted as the value.
		v := a.eval(n.Value, s)
		a.eval(n.Chan, s)
		a.weakAssign(n.Chan, v, s)
	case *ast.DeferStmt:
		a.evalCall(n.Call, s)
	case *ast.GoStmt:
		a.evalCall(n.Call, s)
	case *ast.RangeStmt:
		v := a.eval(n.X, s)
		if n.Key != nil {
			a.assignTo(n.Key, v, s, n.Tok == token.DEFINE)
		}
		if n.Value != nil {
			a.assignTo(n.Value, v, s, n.Tok == token.DEFINE)
		}
	case ast.Expr:
		// Control expressions (conditions, switch tags, case lists):
		// evaluated for the calls they contain.
		a.eval(n, s)
	case *ast.LabeledStmt:
		if n.Stmt != nil {
			a.apply(n.Stmt, s)
		}
	}
}

func (a *analyzer) valueSpec(vs *ast.ValueSpec, s state) {
	if len(vs.Values) == 0 {
		return
	}
	if len(vs.Values) == 1 && len(vs.Names) > 1 {
		v := a.eval(vs.Values[0], s)
		for _, name := range vs.Names {
			a.bind(name, v, s)
		}
		return
	}
	for i, name := range vs.Names {
		if i < len(vs.Values) {
			a.bind(name, a.eval(vs.Values[i], s), s)
		}
	}
}

func (a *analyzer) assign(n *ast.AssignStmt, s state) {
	define := n.Tok == token.DEFINE
	compound := n.Tok != token.ASSIGN && n.Tok != token.DEFINE
	if len(n.Rhs) == 1 && len(n.Lhs) > 1 {
		// a, b = f(): every left-hand side gets the call's joined taint
		// (the engine is result-insensitive).
		v := a.eval(n.Rhs[0], s)
		for _, lhs := range n.Lhs {
			a.assignTo(lhs, v, s, define)
		}
		return
	}
	for i, lhs := range n.Lhs {
		if i >= len(n.Rhs) {
			break
		}
		v := a.eval(n.Rhs[i], s)
		if compound {
			v = joinVal(v, a.eval(lhs, s))
		}
		a.assignTo(lhs, v, s, define)
	}
}

// assignTo routes taint into a left-hand side: a strong update for plain
// identifiers, a weak update on the root object for selector, index, and
// dereference targets (x.f = v taints x — field-insensitivity).
func (a *analyzer) assignTo(lhs ast.Expr, v Val, s state, define bool) {
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		a.bind(lhs, v, s)
	default:
		a.eval(lhs, s)
		a.weakAssign(lhs, v, s)
	}
}

func (a *analyzer) bind(id *ast.Ident, v Val, s state) {
	if id.Name == "_" {
		return
	}
	obj := a.info.Defs[id]
	if obj == nil {
		obj = a.info.Uses[id]
	}
	if obj == nil {
		return
	}
	if v.zero() {
		delete(s, obj)
		return
	}
	s[obj] = v
}

// weakAssign joins v into the root object of an lvalue expression.
func (a *analyzer) weakAssign(lhs ast.Expr, v Val, s state) {
	if v.zero() {
		return
	}
	obj := a.rootObj(lhs)
	if obj == nil {
		return
	}
	s[obj] = joinVal(s[obj], v)
}

// rootObj descends selector/index/star/slice chains to the identifier at
// the base of an lvalue, returning its object (nil when the base is not
// a plain identifier).
func (a *analyzer) rootObj(e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			obj := a.info.Uses[x]
			if obj == nil {
				obj = a.info.Defs[x]
			}
			return obj
		case *ast.SelectorExpr:
			// A qualified reference (pkg.Var) roots at the package-level
			// var; a field selector roots at its base.
			if _, isPkg := a.info.Uses[x.Sel].(*types.PkgName); isPkg {
				return nil
			}
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
					return a.info.Uses[x.Sel]
				}
			}
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.IndexListExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// eval computes the taint of an expression, recording sink findings for
// the calls it contains.
func (a *analyzer) eval(e ast.Expr, s state) Val {
	switch e := e.(type) {
	case nil:
		return Val{}
	case *ast.Ident:
		obj := a.info.Uses[e]
		if obj == nil {
			obj = a.info.Defs[e]
		}
		if obj == nil {
			return Val{}
		}
		return s[obj]
	case *ast.BasicLit, *ast.FuncLit:
		return Val{}
	case *ast.ParenExpr:
		return a.eval(e.X, s)
	case *ast.BinaryExpr:
		return joinVal(a.eval(e.X, s), a.eval(e.Y, s))
	case *ast.UnaryExpr:
		return a.eval(e.X, s)
	case *ast.StarExpr:
		return a.eval(e.X, s)
	case *ast.SelectorExpr:
		if _, isPkg := a.info.Uses[e.Sel].(*types.PkgName); isPkg {
			return Val{}
		}
		if id, ok := e.X.(*ast.Ident); ok {
			if _, isPkg := a.info.Uses[id].(*types.PkgName); isPkg {
				if obj := a.info.Uses[e.Sel]; obj != nil {
					return s[obj] // qualified package-level var
				}
				return Val{}
			}
		}
		return a.eval(e.X, s)
	case *ast.IndexExpr:
		if tv, ok := a.info.Types[e.X]; ok && tv.IsType() {
			return Val{}
		}
		return a.eval(e.X, s)
	case *ast.IndexListExpr:
		return a.eval(e.X, s)
	case *ast.SliceExpr:
		return a.eval(e.X, s)
	case *ast.TypeAssertExpr:
		return a.eval(e.X, s)
	case *ast.CompositeLit:
		var v Val
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				v = joinVal(v, a.eval(kv.Value, s))
				if _, isIdent := kv.Key.(*ast.Ident); !isIdent {
					v = joinVal(v, a.eval(kv.Key, s)) // map literal keys carry taint
				}
				continue
			}
			v = joinVal(v, a.eval(el, s))
		}
		return v
	case *ast.CallExpr:
		return a.evalCall(e, s)
	}
	return Val{}
}

// evalCall handles calls: conversions, builtins, catalog hits, summary
// composition, dynamic dispatch, and the conservative extern fallback.
func (a *analyzer) evalCall(call *ast.CallExpr, s state) Val {
	fun := ast.Unparen(call.Fun)

	// Type conversions pass taint through.
	if tv, ok := a.info.Types[fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return a.eval(call.Args[0], s)
		}
		return Val{}
	}

	// Builtins.
	if id, ok := fun.(*ast.Ident); ok {
		if _, ok := a.info.Uses[id].(*types.Builtin); ok {
			return a.builtin(id.Name, call, s)
		}
	}

	// Evaluate arguments (and the receiver, for method calls) once.
	var recvExpr ast.Expr
	if sel, ok := fun.(*ast.SelectorExpr); ok {
		if sl, ok := a.info.Selections[sel]; ok && sl.Kind() == types.MethodVal {
			recvExpr = sel.X
		}
	}
	argExprs := call.Args
	argVals := make([]Val, 0, len(argExprs)+1)
	if recvExpr != nil {
		argVals = append(argVals, a.eval(recvExpr, s))
	}
	for _, arg := range argExprs {
		argVals = append(argVals, a.eval(arg, s))
	}
	allArgs := func() Val {
		var v Val
		for _, av := range argVals {
			v = joinVal(v, av)
		}
		return v
	}
	rootExprs := func() []ast.Expr {
		out := make([]ast.Expr, 0, len(argExprs)+1)
		if recvExpr != nil {
			out = append(out, recvExpr)
		}
		out = append(out, argExprs...)
		return out
	}

	fn := calleeOf(a.info, call)
	if fn != nil && !isAbstract(fn) {
		return a.applyCallee(call, fn, recvExpr != nil, rootExprs(), argVals, s)
	}

	// Interface dispatch: join the effect of every possible callee.
	if targets := a.dynTargets(call.Pos()); len(targets) > 0 {
		var v Val
		for _, t := range targets {
			if t.Fn == nil {
				continue
			}
			v = joinVal(v, a.applyCallee(call, t.Fn, recvExpr != nil, rootExprs(), argVals, s))
		}
		return v
	}

	// Unknown callee (extern without a summary, function-typed variable,
	// closure call): propagate conservatively — the result and every
	// writable argument carry the union of the argument taints.
	v := allArgs()
	if !v.zero() {
		for i, arg := range rootExprs() {
			if i < len(argVals) && writableArg(a.info, arg) {
				a.weakAssign(arg, v, s)
			}
		}
	}
	return v
}

// applyCallee folds one resolved callee into the call's taint: catalog
// roles first (source, sanitizer, sink), then summary composition.
func (a *analyzer) applyCallee(call *ast.CallExpr, fn *types.Func, haveRecv bool, roots []ast.Expr, argVals []Val, s state) Val {
	cat := a.eng.cat
	if cat.Source != nil {
		if desc, ok := cat.Source(fn); ok {
			src := &Source{Pos: call.Pos(), Desc: desc}
			// A source fills its writable arguments (decode(w, r, &v)) but
			// not its receiver: the receiver is the parser or flag set doing
			// the minting, and tainting it would smear the first source call
			// over everything later accessed through the same object.
			for i, arg := range roots {
				if haveRecv && i == 0 {
					continue
				}
				if writableArg(a.info, arg) {
					a.weakAssign(arg, Val{Src: src}, s)
				}
			}
			return Val{Src: src}
		}
	}
	if cat.Sanitizer != nil && cat.Sanitizer(fn) {
		// A sanitizer cleanses the objects its receiver and arguments
		// name, and its results are clean.
		for _, arg := range roots {
			if obj := a.rootObj(arg); obj != nil {
				delete(s, obj)
			}
		}
		return Val{}
	}
	if cat.Sink != nil {
		if desc, ok := cat.Sink(fn); ok {
			v := joinVals(argVals)
			a.recordSink(call, fn, desc, v)
			return Val{}
		}
	}

	node := a.eng.graph.NodeOf(fn)
	if node == nil {
		// Extern without source: conservative propagation. A pointer-receiver
		// method implicitly takes the address of an addressable receiver, so
		// the receiver expression is writable even when its static type is a
		// plain value (b.WriteString taints b for a strings.Builder b).
		v := joinVals(argVals)
		if !v.zero() {
			for i, arg := range roots {
				if writableArg(a.info, arg) || (haveRecv && i == 0 && pointerRecv(fn)) {
					a.weakAssign(arg, v, s)
				}
			}
		}
		return v
	}

	sum := a.eng.Summary(node)
	callee := mapArgs(fn, haveRecv, argVals)

	// Cleansing: the callee validated these parameters' objects.
	if sum.Cleanses != 0 {
		for i, arg := range roots {
			idx := calleeIndex(fn, haveRecv, i)
			if idx >= 0 && idx < 64 && sum.Cleanses&(1<<uint(idx)) != 0 {
				if obj := a.rootObj(arg); obj != nil {
					delete(s, obj)
				}
			}
		}
	}

	// Param-dependent sink flows inside the callee.
	for _, fl := range sum.Flows {
		var v Val
		for i, av := range callee {
			if i < 64 && fl.Params&(1<<uint(i)) != 0 {
				v = joinVal(v, av)
			}
		}
		if v.zero() {
			continue
		}
		via := append([]Step{{Name: fn.Name(), Site: call.Pos()}}, fl.Via...)
		if v.Src != nil {
			a.addFinding(Finding{Src: v.Src, Sink: fl.Sink, SinkPos: fl.SinkPos, Pos: call.Pos(), Via: via})
		}
		if v.Params != 0 {
			a.addFlow(Flow{Params: v.Params, Sink: fl.Sink, SinkPos: fl.SinkPos, Via: via})
		}
	}

	// Result taint through the callee's summary.
	var out Val
	if sum.ResultSrc != nil {
		out = Val{Src: sum.ResultSrc}
	}
	for i, av := range callee {
		if i < 64 && sum.ResultParams&(1<<uint(i)) != 0 {
			out = joinVal(out, av)
		}
	}
	return out
}

// recordSink reports every tainted argument arriving at a direct sink
// call: a finding when a source reaches it, a flow when a parameter does.
func (a *analyzer) recordSink(call *ast.CallExpr, fn *types.Func, desc string, v Val) {
	if v.zero() {
		return
	}
	via := []Step{{Name: fn.Name(), Site: call.Pos()}}
	if v.Src != nil {
		a.addFinding(Finding{Src: v.Src, Sink: desc, SinkPos: call.Pos(), Pos: call.Pos(), Via: via})
	}
	if v.Params != 0 {
		a.addFlow(Flow{Params: v.Params, Sink: desc, SinkPos: call.Pos(), Via: via})
	}
}

func (a *analyzer) addFinding(f Finding) {
	if !a.report {
		return
	}
	key := "f" + posKey(f.Pos) + posKey(f.SinkPos) + posKey(f.Src.Pos) + f.Sink
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	a.sum.Findings = append(a.sum.Findings, f)
}

func (a *analyzer) addFlow(f Flow) {
	if !a.report {
		return
	}
	key := "p" + posKey(f.SinkPos) + posKey(f.Via[0].Site) + f.Sink
	if a.seen[key] {
		// Merge parameter masks for an already-recorded flow.
		for i := range a.sum.Flows {
			if a.sum.Flows[i].SinkPos == f.SinkPos && a.sum.Flows[i].Sink == f.Sink &&
				len(a.sum.Flows[i].Via) > 0 && a.sum.Flows[i].Via[0].Site == f.Via[0].Site {
				a.sum.Flows[i].Params |= f.Params
			}
		}
		return
	}
	a.seen[key] = true
	a.sum.Flows = append(a.sum.Flows, f)
}

func posKey(p token.Pos) string {
	const digits = "0123456789"
	if p == token.NoPos {
		return "-:"
	}
	n := int(p)
	var buf [24]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = digits[n%10]
		n /= 10
	}
	return string(buf[i:]) + ":"
}

func (a *analyzer) returnStmt(n *ast.ReturnStmt, s state) {
	results := n.Results
	if len(results) == 0 {
		// Naked return: named results carry the taint.
		sig := a.signature()
		if sig == nil {
			return
		}
		for i := 0; i < sig.Results().Len(); i++ {
			r := sig.Results().At(i)
			if r.Name() == "" {
				continue
			}
			a.foldResult(s[r])
		}
		return
	}
	for _, r := range results {
		a.foldResult(a.eval(r, s))
	}
}

func (a *analyzer) foldResult(v Val) {
	a.sum.ResultParams |= v.Params
	if v.Src != nil && (a.sum.ResultSrc == nil || v.Src.Pos < a.sum.ResultSrc.Pos) {
		a.sum.ResultSrc = v.Src
	}
}

func (a *analyzer) builtin(name string, call *ast.CallExpr, s state) Val {
	switch name {
	case "append":
		var v Val
		for _, arg := range call.Args {
			v = joinVal(v, a.eval(arg, s))
		}
		return v
	case "copy":
		if len(call.Args) == 2 {
			v := a.eval(call.Args[1], s)
			a.eval(call.Args[0], s)
			a.weakAssign(call.Args[0], v, s)
		}
		return Val{}
	case "len", "cap", "delete", "close", "make", "new", "clear", "min", "max":
		for _, arg := range call.Args {
			a.eval(arg, s)
		}
		return Val{}
	default: // panic, print, println, complex, real, imag, recover, ...
		var v Val
		for _, arg := range call.Args {
			v = joinVal(v, a.eval(arg, s))
		}
		return v
	}
}

// dynTargets returns the dynamic-dispatch callees recorded at a call
// position, indexing the node's call-graph edges once.
func (a *analyzer) dynTargets(pos token.Pos) []*callgraph.Node {
	if a.dynAt == nil {
		a.dynAt = make(map[token.Pos][]*callgraph.Node)
		for _, e := range a.eng.graph.Calls(a.node) {
			if e.Dynamic {
				a.dynAt[e.Site] = append(a.dynAt[e.Site], e.Callee)
			}
		}
	}
	return a.dynAt[pos]
}

// mapArgs places call-site taints into the callee's parameter slots
// (receiver first), folding variadic surplus into the last slot.
func mapArgs(fn *types.Func, haveRecv bool, argVals []Val) []Val {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return argVals
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]Val, n)
	for i, v := range argVals {
		idx := i
		if sig.Recv() != nil && !haveRecv {
			// Method expression: the receiver travels as the first
			// ordinary argument and the slots already line up.
			idx = i
		}
		if idx >= n {
			idx = n - 1 // variadic surplus
		}
		out[idx] = joinVal(out[idx], v)
	}
	return out
}

// calleeIndex maps a call-site root index (receiver first when present)
// to the callee's parameter index, or -1 when out of range.
func calleeIndex(fn *types.Func, haveRecv bool, i int) int {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		return -1
	}
	n := sig.Params().Len()
	if sig.Recv() != nil {
		n++
	}
	if sig.Recv() != nil && !haveRecv {
		// Method expression: positions line up already.
	}
	if i >= n {
		return n - 1
	}
	return i
}

// isAbstract reports whether fn is an interface method (no body to
// analyze; calls dispatch dynamically).
func isAbstract(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	return sig != nil && sig.Recv() != nil && types.IsInterface(sig.Recv().Type())
}

// pointerRecv reports whether fn is a method with a pointer receiver.
func pointerRecv(fn *types.Func) bool {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	_, ok := sig.Recv().Type().(*types.Pointer)
	return ok
}

// writableArg reports whether an argument expression could be written
// through by the callee: pointers, slices, maps, channels, interfaces,
// and address-of expressions.
func writableArg(info *types.Info, arg ast.Expr) bool {
	if _, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
		return true // &x
	}
	tv, ok := info.Types[arg]
	if !ok || tv.Type == nil {
		return false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Chan, *types.Interface, *types.Signature:
		return true
	}
	return false
}

// calleeOf resolves a call to the *types.Func it statically invokes.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		f, _ := info.Uses[fun].(*types.Func)
		return f
	case *ast.SelectorExpr:
		f, _ := info.Uses[fun.Sel].(*types.Func)
		return f
	case *ast.IndexExpr:
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			f, _ := info.Uses[id].(*types.Func)
			return f // generic instantiation
		}
	}
	return nil
}
