package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/lint/cfg"
)

// LockFlow is a lockset analysis of sync.Mutex and sync.RWMutex use. It
// runs a forward data-flow pass over each function's control-flow graph,
// tracking which locks are held on which paths, and reports:
//
//   - a return (or fall-off-the-end) while a lock acquired in the same
//     function is still held and no deferred release is registered — the
//     bug class behind leaked critical sections on error paths;
//   - a second Lock of a mutex already held on some path (self-deadlock),
//     including RLock→Lock upgrades on the same RWMutex;
//   - a read lock released with Unlock, or a write lock with RUnlock;
//   - a call into a module function — same package or, through the call
//     graph, any other loaded package — that re-acquires a lock the
//     caller still holds;
//   - a plain access to a struct field annotated "// guarded by <field>"
//     outside a critical section of its guard;
//   - a Store/Swap/CompareAndSwap on a sync/atomic field annotated
//     "// swapped under <field>" without the named sibling mutex
//     write-held — the copy-on-write publication discipline, where any
//     number of readers Load freely but only a serialized writer may swap
//     the published pointer.
//
// Lock identity is an identifier-rooted selector chain (s.mu, w.mu,
// pkgVar.mu); anything more complex — s.shards[i].mu, locks reached
// through calls — is deliberately not tracked, so the analysis stays
// silent rather than guessing about aliasing. Function literals get their
// own independent pass with an empty lockset (the caller's locks are
// unknown, so guard checking is disabled inside them), and functions
// whose name ends in "Locked" are exempt from guard checks by convention:
// their contract is that the caller holds the lock.
var LockFlow = &Analyzer{
	Name: "lockflow",
	Doc: "Lockset flow analysis: reports paths that return while a " +
		"sync.Mutex/RWMutex is still held without a deferred release, " +
		"double-Lock self-deadlocks, RLock/Unlock pair mismatches, calls " +
		"into module functions (cross-package, resolved through the call " +
		"graph) that re-acquire a held lock, plain " +
		"access to '// guarded by <field>' annotated struct fields " +
		"outside their guard's critical section, and atomic " +
		"Store/Swap/CompareAndSwap on '// swapped under <field>' " +
		"annotated fields without the sibling mutex write-held.",
	Scope: ScopeModule,
	Run:   runLockFlow,
}

// lockOp classifies one method of sync.Mutex/RWMutex.
type lockOp struct {
	acquire bool
	write   bool // Lock/Unlock as opposed to RLock/RUnlock
}

// lockOps maps the fully-qualified method names the analysis interprets.
// TryLock/TryRLock are conditional acquisitions and are ignored: modelling
// them needs path-sensitive branch correlation this lattice does not have.
var lockOps = map[string]lockOp{
	"(*sync.Mutex).Lock":      {acquire: true, write: true},
	"(*sync.Mutex).Unlock":    {acquire: false, write: true},
	"(*sync.RWMutex).Lock":    {acquire: true, write: true},
	"(*sync.RWMutex).Unlock":  {acquire: false, write: true},
	"(*sync.RWMutex).RLock":   {acquire: true, write: false},
	"(*sync.RWMutex).RUnlock": {acquire: false, write: false},
}

// lockRef is the resolved identity of a lock (or of a guarded field's
// base): a root object plus the field path selected from it.
type lockRef struct {
	root types.Object
	path string // ".mu"-style chain after the root; "" for the root itself
}

func (r lockRef) key() string {
	// The root's declaration position disambiguates shadowed names.
	return r.root.Name() + "@" + itoa(int(r.root.Pos())) + r.path
}

func (r lockRef) display() string { return r.root.Name() + r.path }

func (r lockRef) child(name string) lockRef {
	return lockRef{root: r.root, path: r.path + "." + name}
}

// itoa is strconv.Itoa without the import: keys are internal only.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// resolveLockRef resolves an identifier-rooted selector chain to a lock
// identity. It follows parentheses, pointer dereferences, and &; any
// index expression, call, or other computed base makes the expression
// untrackable and the function reports ok=false, which every caller
// treats as "stay silent".
func resolveLockRef(info *types.Info, e ast.Expr) (lockRef, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := info.Uses[e]
		if obj == nil {
			obj = info.Defs[e]
		}
		if v, ok := obj.(*types.Var); ok {
			return lockRef{root: v}, true
		}
	case *ast.SelectorExpr:
		// pkg.GlobalVar: the qualified identifier is itself the root.
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[e.Sel].(*types.Var); ok {
					return lockRef{root: v}, true
				}
				return lockRef{}, false
			}
		}
		base, ok := resolveLockRef(info, e.X)
		if !ok {
			return lockRef{}, false
		}
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && v.IsField() {
			return base.child(e.Sel.Name), true
		}
	case *ast.StarExpr:
		return resolveLockRef(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			return resolveLockRef(info, e.X)
		}
	}
	return lockRef{}, false
}

// lockMethodRef resolves the lock a sync.Mutex/RWMutex method call
// operates on, including implicitly-selected embedded fields: e.Lock() on
// a struct embedding sync.Mutex really locks e.Mutex, and the guard
// annotation machinery needs that full path.
func lockMethodRef(info *types.Info, sel *ast.SelectorExpr) (lockRef, bool) {
	ref, ok := resolveLockRef(info, sel.X)
	if !ok {
		return lockRef{}, false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return ref, true
	}
	idx := s.Index()
	if len(idx) < 2 {
		return ref, true
	}
	t := s.Recv()
	for _, i := range idx[:len(idx)-1] {
		if p, isPtr := t.Underlying().(*types.Pointer); isPtr {
			t = p.Elem()
		}
		st, isStruct := t.Underlying().(*types.Struct)
		if !isStruct || i >= st.NumFields() {
			return ref, true
		}
		f := st.Field(i)
		ref = ref.child(f.Name())
		t = f.Type()
	}
	return ref, true
}

// lockHeld is the per-lock state tracked through the flow analysis.
type lockHeld struct {
	display  string
	write    bool      // held for writing (Lock) vs reading (RLock)
	deferred bool      // a deferred release has been registered
	must     bool      // held on every path reaching this point
	pos      token.Pos // acquisition site (earliest across joined paths)
}

// lockState maps lockRef keys to their held state. Presence in the map is
// the "may be held" set; the must flag marks the "held on all paths"
// subset. Return-while-held reports only on must (no false positives from
// conditional acquisition); double-lock reports on may (a deadlock on any
// path is a bug).
type lockState map[string]lockHeld

func cloneLockState(s lockState) lockState {
	out := make(lockState, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

func joinLockState(a, b lockState) lockState {
	out := make(lockState, len(a)+len(b))
	for k, ea := range a {
		if eb, ok := b[k]; ok {
			e := ea
			if eb.pos < e.pos {
				e.pos = eb.pos
				e.display = eb.display
			}
			e.write = ea.write || eb.write
			e.must = ea.must && eb.must
			e.deferred = ea.deferred && eb.deferred
			out[k] = e
			continue
		}
		ea.must = false
		out[k] = ea
	}
	for k, eb := range b {
		if _, ok := a[k]; !ok {
			eb.must = false
			out[k] = eb
		}
	}
	return out
}

func equalLockState(a, b lockState) bool {
	if len(a) != len(b) {
		return false
	}
	for k, ea := range a {
		eb, ok := b[k]
		if !ok || ea != eb {
			return false
		}
	}
	return true
}

// acqEntry is one lock acquisition in a function's summary, used for the
// re-acquisition check. Receiver-relative entries translate to the
// caller's receiver expression at the call site; global entries name a
// package-level lock directly by key.
type acqEntry struct {
	relative bool
	path     string // relative: ".mu"-style suffix; global: the lockRef key
	display  string
	write    bool
}

type lockAnalysis struct {
	pass      *Pass
	guards    map[*types.Var]string // annotated field -> guard field name
	swaps     map[*types.Var]string // "swapped under" field -> guard field name
	funcs     map[*types.Func]*ast.FuncDecl
	summaries map[*types.Func][]acqEntry
	visiting  map[*types.Func]bool
}

// reportCtx is non-nil during the reporting pass over the settled
// in-states and nil during fixpoint iteration, when nothing may report.
type reportCtx struct {
	guardChecks bool
	fresh       map[types.Object]bool // locals holding freshly-allocated values
}

func runLockFlow(pass *Pass) {
	a := &lockAnalysis{
		pass:      pass,
		guards:    collectAnnotated(pass, guardRe, "guarded by"),
		swaps:     collectAnnotated(pass, swapRe, "swapped under"),
		funcs:     make(map[*types.Func]*ast.FuncDecl),
		summaries: make(map[*types.Func][]acqEntry),
		visiting:  make(map[*types.Func]bool),
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func); ok {
				a.funcs[fn] = fd
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			a.checkFunc(fd.Name.Name, fd.Body, true)
			// Function literals run on their own activation: each body is
			// analysed independently with an empty lockset. Guard checks stay
			// off inside them — the literal may run under a caller's lock the
			// analysis cannot see.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					a.checkFunc(fd.Name.Name, lit.Body, false)
				}
				return true
			})
		}
	}
}

// checkFunc analyses one function (or function-literal) body: fixpoint
// first, then a deterministic reporting pass over the settled in-states.
func (a *lockAnalysis) checkFunc(name string, body *ast.BlockStmt, guardChecks bool) {
	g := cfg.New(body)
	in := cfg.Forward(g, lockState{}, cloneLockState, joinLockState, equalLockState,
		func(b *cfg.Block, st lockState) lockState {
			for _, n := range b.Nodes {
				a.node(n, st, nil)
			}
			return st
		})
	rctx := &reportCtx{
		// Functions named *Locked document that the caller holds the lock;
		// guard checking inside them would only produce noise.
		guardChecks: guardChecks && !strings.HasSuffix(name, "Locked"),
		fresh:       freshLocals(a.pass.Pkg.Info, body),
	}
	for _, b := range g.Blocks {
		st, ok := in[b]
		if !ok {
			continue // unreachable code
		}
		st = cloneLockState(st)
		for _, n := range b.Nodes {
			a.node(n, st, rctx)
			if ret, isRet := n.(*ast.ReturnStmt); isRet {
				a.checkHeldAt(ret.Pos(), st)
			}
		}
		if fallsToExit(g, b) {
			a.checkHeldAt(body.Rbrace, st)
		}
	}
}

// fallsToExit reports whether b reaches the exit block by falling off the
// end of the function rather than through an explicit return or panic.
func fallsToExit(g *cfg.Graph, b *cfg.Block) bool {
	toExit := false
	for _, s := range b.Succs {
		if s == g.Exit {
			toExit = true
		}
	}
	if !toExit {
		return false
	}
	if n := len(b.Nodes); n > 0 {
		switch last := b.Nodes[n-1].(type) {
		case *ast.ReturnStmt:
			return false
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(last.X).(*ast.CallExpr); ok {
				if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
					return false
				}
			}
		}
	}
	return true
}

// checkHeldAt reports every lock that is held on all paths to pos with no
// deferred release registered.
func (a *lockAnalysis) checkHeldAt(pos token.Pos, st lockState) {
	keys := make([]string, 0, len(st))
	for k := range st {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := st[k]
		if e.must && !e.deferred {
			a.pass.Reportf(pos,
				"returns while %s (locked at line %d) is still held; unlock on this path or defer the unlock",
				e.display, a.pass.Fset.Position(e.pos).Line)
		}
	}
}

// node applies one CFG node to the lockset. With rctx == nil it only
// transforms state (fixpoint iteration); with rctx non-nil it also
// reports.
func (a *lockAnalysis) node(n ast.Node, st lockState, rctx *reportCtx) {
	switch n := n.(type) {
	case *ast.DeferStmt:
		a.deferNode(n, st)
		return
	case *ast.RangeStmt:
		// The range head holds the whole RangeStmt for the per-iteration
		// assignment; its body lives in other blocks and must not be
		// processed here too.
		if n.Key != nil {
			a.node(n.Key, st, rctx)
		}
		if n.Value != nil {
			a.node(n.Value, st, rctx)
		}
		return
	case *ast.GoStmt:
		// The spawned call runs on another goroutine: re-acquiring a held
		// lock there blocks until the caller releases it, it does not
		// self-deadlock. Only the synchronously-evaluated arguments count.
		for _, arg := range n.Call.Args {
			a.node(arg, st, rctx)
		}
		return
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false // analysed separately, on its own activation
		case *ast.CallExpr:
			a.call(x, st, rctx)
		case *ast.SelectorExpr:
			if rctx != nil && rctx.guardChecks {
				a.guardAccess(x, st, rctx)
			}
		}
		return true
	})
}

// deferNode registers deferred lock releases: both the direct
// `defer mu.Unlock()` form and releases inside a deferred function
// literal (`defer func() { ...; mu.Unlock() }()`).
func (a *lockAnalysis) deferNode(d *ast.DeferStmt, st lockState) {
	info := a.pass.Pkg.Info
	markRelease := func(call *ast.CallExpr) {
		fn := calleeFunc(info, call)
		if fn == nil {
			return
		}
		op, ok := lockOps[fn.FullName()]
		if !ok || op.acquire {
			return
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		if ref, ok := lockMethodRef(info, sel); ok {
			if e, held := st[ref.key()]; held {
				e.deferred = true
				st[ref.key()] = e
			}
		}
	}
	markRelease(d.Call)
	if lit, ok := d.Call.Fun.(*ast.FuncLit); ok {
		ast.Inspect(lit.Body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok {
				markRelease(call)
			}
			return true
		})
	}
}

// call interprets one call expression: a lock operation updates the
// lockset; a call into the same package is checked against its
// acquisition summary for re-acquiring a held lock.
func (a *lockAnalysis) call(call *ast.CallExpr, st lockState, rctx *reportCtx) {
	info := a.pass.Pkg.Info
	fn := calleeFunc(info, call)
	if fn == nil {
		return
	}
	if op, ok := lockOps[fn.FullName()]; ok {
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return
		}
		ref, ok := lockMethodRef(info, sel)
		if !ok {
			return // untrackable lock expression: stay silent
		}
		k := ref.key()
		held, exists := st[k]
		if op.acquire {
			if exists {
				// Two read locks may coexist; everything else self-deadlocks.
				if rctx != nil && (op.write || held.write) {
					verb := "Lock"
					if !op.write {
						verb = "RLock"
					}
					a.pass.Reportf(call.Pos(),
						"%s of %s while it is already held (locked at line %d); this deadlocks",
						verb, ref.display(), a.pass.Fset.Position(held.pos).Line)
				}
				return // keep the original acquisition's state
			}
			st[k] = lockHeld{
				display: ref.display(),
				write:   op.write,
				must:    true,
				pos:     call.Pos(),
			}
			return
		}
		if exists {
			if rctx != nil && held.write != op.write {
				if op.write {
					a.pass.Reportf(call.Pos(),
						"Unlock of %s releases a read lock (RLock at line %d); use RUnlock",
						ref.display(), a.pass.Fset.Position(held.pos).Line)
				} else {
					a.pass.Reportf(call.Pos(),
						"RUnlock of %s releases a write lock (Lock at line %d); use Unlock",
						ref.display(), a.pass.Fset.Position(held.pos).Line)
				}
			}
			delete(st, k)
		}
		// Releasing a lock this function never acquired is a lock handoff
		// from the caller; nothing to track, nothing to report.
		return
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic" {
		if rctx != nil && rctx.guardChecks {
			a.swapCall(call, fn, st, rctx)
		}
		return
	}
	// Module callee while holding a lock: consult its acquisition summary.
	// declFor resolves same-package callees from the local index and
	// everything else through the call graph, so the check crosses package
	// boundaries.
	if len(st) == 0 || rctx == nil {
		return
	}
	summary := a.summarize(fn)
	if len(summary) == 0 {
		return
	}
	var recvRef lockRef
	recvOK := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recvRef, recvOK = resolveLockRef(info, sel.X)
	}
	for _, acq := range summary {
		var k, disp string
		if acq.relative {
			if !recvOK {
				continue
			}
			k = recvRef.key() + acq.path
			disp = recvRef.display() + acq.path
		} else {
			k = acq.path
			disp = acq.display
		}
		held, ok := st[k]
		if !ok {
			continue
		}
		if !acq.write && !held.write {
			continue // read lock under read lock: no self-deadlock
		}
		a.pass.Reportf(call.Pos(),
			"call to %s re-acquires %s, which is already held (locked at line %d); this deadlocks",
			fn.Name(), disp, a.pass.Fset.Position(held.pos).Line)
	}
}

// declFor resolves the declaration, type info, and package scope a
// summary for fn must be computed against: same-package functions come
// from the local index, everything else from the module call graph (when
// the driver built one — hand-built passes may run without it).
func (a *lockAnalysis) declFor(fn *types.Func) (*ast.FuncDecl, *types.Info, *types.Scope) {
	if fd := a.funcs[fn]; fd != nil {
		return fd, a.pass.Pkg.Info, a.pass.Pkg.Types.Scope()
	}
	if a.pass.Graph != nil {
		if n := a.pass.Graph.NodeOf(fn); n != nil && n.Decl != nil {
			return n.Decl, n.Src.Info, n.Src.Types.Scope()
		}
	}
	return nil, nil, nil
}

// summarize computes (and memoizes) the set of locks a module function
// acquires, directly or through module calls on its own receiver:
// receiver-relative paths for methods, keys for package-level locks.
// Callees in other packages resolve through the call graph, so a held
// lock handed across a package boundary is still checked. Function
// literals inside the body run asynchronously or deferred and are
// excluded.
func (a *lockAnalysis) summarize(fn *types.Func) []acqEntry {
	if s, done := a.summaries[fn]; done {
		return s
	}
	if a.visiting[fn] {
		return nil // recursion: the cycle's locks surface on the other path
	}
	fd, info, pkgScope := a.declFor(fn)
	if fd == nil {
		a.summaries[fn] = nil
		return nil
	}
	a.visiting[fn] = true
	defer delete(a.visiting, fn)

	var recvObj types.Object
	if fd.Recv != nil && len(fd.Recv.List) == 1 && len(fd.Recv.List[0].Names) == 1 {
		recvObj = info.Defs[fd.Recv.List[0].Names[0]]
	}

	var out []acqEntry
	seen := make(map[string]bool)
	add := func(e acqEntry) {
		k := e.path
		if e.relative {
			k = "recv" + k
		}
		if !seen[k] {
			seen[k] = true
			out = append(out, e)
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		cf := calleeFunc(info, call)
		if cf == nil {
			return true
		}
		if op, ok := lockOps[cf.FullName()]; ok {
			if !op.acquire {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ref, ok := lockMethodRef(info, sel)
			if !ok {
				return true
			}
			switch {
			case recvObj != nil && ref.root == recvObj:
				add(acqEntry{relative: true, path: ref.path, display: ref.path, write: op.write})
			case ref.root.Parent() == pkgScope:
				add(acqEntry{path: ref.key(), display: ref.display(), write: op.write})
			}
			return true
		}
		if cf != fn {
			onOwnRecv := false
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && recvObj != nil {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					onOwnRecv = info.Uses[id] == recvObj
				}
			}
			for _, e := range a.summarize(cf) {
				if e.relative {
					if onOwnRecv {
						add(e)
					}
					continue
				}
				add(e)
			}
		}
		return true
	})
	a.summaries[fn] = out
	return out
}

// swapCall enforces the "// swapped under <field>" publication discipline
// on a sync/atomic method call: Load (and every other read) is free from
// anywhere, but Store, Swap, and CompareAndSwap on an annotated field
// require the named sibling mutex to be write-held — otherwise two writers
// could clone the same snapshot and one update would be silently lost.
func (a *lockAnalysis) swapCall(call *ast.CallExpr, fn *types.Func, st lockState, rctx *reportCtx) {
	switch fn.Name() {
	case "Store", "Swap", "CompareAndSwap":
	default:
		return
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// The receiver must itself be a selection of an annotated struct field
	// (sh.view.Store(...)); anything else is not ours to police.
	fsel, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
	if !ok {
		return
	}
	info := a.pass.Pkg.Info
	v, ok := info.Uses[fsel.Sel].(*types.Var)
	if !ok {
		return
	}
	guard, ok := a.swaps[v]
	if !ok {
		return
	}
	ref, ok := resolveLockRef(info, fsel.X)
	if !ok {
		return // computed base: cannot name the guard instance, stay silent
	}
	if rctx.fresh[ref.root] {
		return // freshly allocated, not yet shared: no serialization needed
	}
	if held, ok := st[ref.child(guard).key()]; ok && held.write {
		return
	}
	a.pass.Reportf(sel.Sel.Pos(),
		"%s of %s.%s, which is declared // swapped under %s, but %s.%s is not write-held here",
		fn.Name(), ref.display(), fsel.Sel.Name, guard, ref.display(), guard)
}

// guardAccess checks a selector against the // guarded by annotations:
// touching an annotated field requires the sibling guard to be held.
func (a *lockAnalysis) guardAccess(sel *ast.SelectorExpr, st lockState, rctx *reportCtx) {
	info := a.pass.Pkg.Info
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok {
		return
	}
	guard, ok := a.guards[v]
	if !ok {
		return
	}
	ref, ok := resolveLockRef(info, sel.X)
	if !ok {
		return // computed base: cannot name the guard instance, stay silent
	}
	if rctx.fresh[ref.root] {
		return // freshly allocated, not yet shared: no lock needed
	}
	if _, held := st[ref.child(guard).key()]; held {
		return
	}
	a.pass.Reportf(sel.Sel.Pos(),
		"%s.%s is declared // guarded by %s, but %s.%s is not held here",
		ref.display(), sel.Sel.Name, guard, ref.display(), guard)
}

// guardRe extracts the guard field name from a "// guarded by <field>"
// struct-field comment; swapRe does the same for "// swapped under
// <field>", the copy-on-write publication annotation.
var (
	guardRe = regexp.MustCompile(`guarded by ([A-Za-z_][A-Za-z0-9_]*)`)
	swapRe  = regexp.MustCompile(`swapped under ([A-Za-z_][A-Za-z0-9_]*)`)
)

// collectAnnotated gathers one annotation kind from struct field comments,
// validating that the named guard is a sibling field. label is the
// annotation's literal prefix, used in diagnostics.
func collectAnnotated(pass *Pass, re *regexp.Regexp, label string) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			siblings := make(map[string]bool)
			for _, fl := range st.Fields.List {
				for _, nm := range fl.Names {
					siblings[nm.Name] = true
				}
				if len(fl.Names) == 0 {
					if name := embeddedFieldName(fl.Type); name != "" {
						siblings[name] = true
					}
				}
			}
			for _, fl := range st.Fields.List {
				m := re.FindStringSubmatch(fieldCommentText(fl))
				if m == nil {
					continue
				}
				guard := m[1]
				if !siblings[guard] {
					pass.Reportf(fl.Pos(),
						"// %s %s: the struct has no field named %s", label, guard, guard)
					continue
				}
				for _, nm := range fl.Names {
					if nm.Name == guard {
						pass.Reportf(nm.Pos(),
							"field %s cannot be guarded by itself", guard)
						continue
					}
					if v, ok := pass.Pkg.Info.Defs[nm].(*types.Var); ok {
						out[v] = guard
					}
				}
			}
			return true
		})
	}
	return out
}

// fieldCommentText joins a struct field's doc and trailing comments.
func fieldCommentText(fl *ast.Field) string {
	var parts []string
	if fl.Doc != nil {
		parts = append(parts, fl.Doc.Text())
	}
	if fl.Comment != nil {
		parts = append(parts, fl.Comment.Text())
	}
	return strings.Join(parts, " ")
}

// embeddedFieldName is the implicit field name of an embedded type.
func embeddedFieldName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.StarExpr:
		return embeddedFieldName(e.X)
	case *ast.SelectorExpr:
		return e.Sel.Name
	}
	return ""
}

// freshLocals collects local variables bound to freshly allocated values
// (composite literals, &composites, new(T), or zero-value declarations):
// until such a value is shared, accessing its guarded fields without the
// lock is fine — this is what makes constructors clean.
func freshLocals(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	out := make(map[types.Object]bool)
	bind := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			out[obj] = true
		} else if obj := info.Uses[id]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if !isFreshExpr(rhs) {
					continue
				}
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					bind(id)
				}
			}
		case *ast.ValueSpec:
			if len(n.Values) == 0 {
				for _, id := range n.Names {
					bind(id)
				}
				return true
			}
			if len(n.Values) == len(n.Names) {
				for i, v := range n.Values {
					if isFreshExpr(v) {
						bind(n.Names[i])
					}
				}
			}
		}
		return true
	})
	return out
}

// isFreshExpr reports whether e evaluates to a freshly allocated value.
func isFreshExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if e.Op == token.AND {
			_, ok := ast.Unparen(e.X).(*ast.CompositeLit)
			return ok
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(e.Fun).(*ast.Ident); ok {
			return id.Name == "new"
		}
	}
	return false
}
