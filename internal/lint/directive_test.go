package lint

import (
	"strings"
	"testing"
)

func TestParseAllowDirective(t *testing.T) {
	tests := []struct {
		text      string
		checks    []string
		justified bool
		ok        bool
	}{
		{"//lint:allow wallclock measures real latency", []string{"wallclock"}, true, true},
		{"//lint:allow errdrop,detrand shared justification", []string{"errdrop", "detrand"}, true, true},
		{"//lint:allow wallclock", []string{"wallclock"}, false, true},
		{"//lint:allow", nil, false, true},
		{"// lint:allow wallclock spaced marker still counts", []string{"wallclock"}, true, true},
		{"//lint:allowother", nil, false, false},
		{"/* lint:allow wallclock */", nil, false, false},
		{"// just a comment", nil, false, false},
		{"//lint:allow ,,, prose without any check name", nil, false, true},
	}
	for _, tt := range tests {
		checks, justified, ok := parseAllowDirective(tt.text)
		if ok != tt.ok || justified != tt.justified || strings.Join(checks, "|") != strings.Join(tt.checks, "|") {
			t.Errorf("parseAllowDirective(%q) = %v, %v, %v; want %v, %v, %v",
				tt.text, checks, justified, ok, tt.checks, tt.justified, tt.ok)
		}
	}
}

// FuzzParseAllowDirective drives the directive parser — the one piece of
// suppression handling exposed to arbitrary source text — with hostile
// comment bodies, checking its structural invariants rather than exact
// outputs.
func FuzzParseAllowDirective(f *testing.F) {
	for _, seed := range []string{
		"//lint:allow wallclock measures real latency",
		"//lint:allow errdrop,detrand why",
		"//lint:allow",
		"//lint:allowother",
		"/* lint:allow x y */",
		"// lint:allow x y",
		"//lint:allow ,,, why",
		"//lint:allow\twallclock\ttabbed",
		"//",
		"",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, text string) {
		checks, justified, ok := parseAllowDirective(text)
		if !ok {
			if checks != nil || justified {
				t.Errorf("parseAllowDirective(%q): not a directive but returned %v, %v", text, checks, justified)
			}
			return
		}
		for _, c := range checks {
			if c == "" || strings.ContainsAny(c, " \t\n,") {
				t.Errorf("parseAllowDirective(%q): malformed check name %q", text, c)
			}
		}
		if justified && len(checks) == 0 {
			t.Errorf("parseAllowDirective(%q): justified without any check", text)
		}
	})
}
