package lint

import "repro/internal/lint/callgraph"

// newCallGraph wires a call graph over the loader's live package state.
// The callgraph package cannot import lint (lint imports it), so packages
// cross the boundary as callgraph.Source values; the conversion is
// memoized per *Package because the graph keys its own caches on Source
// identity.
func newCallGraph(l *Loader) *callgraph.Graph {
	srcs := make(map[*Package]*callgraph.Source)
	conv := func(p *Package) *callgraph.Source {
		if p == nil || len(p.Files) == 0 {
			return nil
		}
		if s, ok := srcs[p]; ok {
			return s
		}
		s := &callgraph.Source{Path: p.Path, Files: p.Files, Types: p.Types, Info: p.Info}
		srcs[p] = s
		return s
	}
	return callgraph.New(l.Fset,
		func(path string) *callgraph.Source { return conv(l.Loaded(path)) },
		func() []*callgraph.Source {
			var all []*callgraph.Source
			for _, p := range l.AllLoaded() {
				if s := conv(p); s != nil {
					all = append(all, s)
				}
			}
			return all
		})
}
