package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp forbids == and != between floating-point operands in non-test
// code. Run times, utilizations, scaled fitnesses, and t-distribution
// quantiles are all float64 here; exact equality on values that went
// through arithmetic is almost always a latent bug (two mathematically
// equal expressions routinely differ in the last ulp). Compare against a
// tolerance (math.Abs(a-b) <= eps) or restructure; where exact equality is
// genuinely intended — bit-level sentinel checks, de-duplication of stored
// values — say so with //lint:allow floatcmp.
//
// Comparisons where both operands are compile-time constants are exempt
// (the compiler evaluates them exactly, no runtime rounding is involved).
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "forbid ==/!= between floating-point operands; use an epsilon or math.Abs",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) {
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloat(info, be.X) && !isFloat(info, be.Y) {
				return true
			}
			if isConst(info, be.X) && isConst(info, be.Y) {
				return true
			}
			pass.Reportf(be.OpPos,
				"floating-point %s comparison; use math.Abs(a-b) <= eps or justify with //lint:allow floatcmp",
				be.Op)
			return true
		})
	}
}

// isFloat reports whether the expression's type is (or is based on)
// float32 or float64.
func isFloat(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// isConst reports whether the expression is a compile-time constant.
func isConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
