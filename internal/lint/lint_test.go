package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// One golden-file fixture per analyzer: each fixture seeds violations and
// marks the expected diagnostics with // want comments, so these tests
// fail both when a check misses a seeded violation and when it
// over-reports clean code.

func TestDetRandFixture(t *testing.T)   { linttest.Run(t, lint.DetRand, "detrand/sim") }
func TestWallClockFixture(t *testing.T) { linttest.Run(t, lint.WallClock, "wallclock/sim") }
func TestFloatCmpFixture(t *testing.T)  { linttest.Run(t, lint.FloatCmp, "floatcmp/a") }
func TestErrDropFixture(t *testing.T)   { linttest.Run(t, lint.ErrDrop, "errdrop/a") }
func TestObsNamesFixture(t *testing.T)  { linttest.Run(t, lint.ObsNames, "obsnames/a") }
func TestLockFlowFixture(t *testing.T)  { linttest.Run(t, lint.LockFlow, "lockflow/a") }
func TestCtxFlowFixture(t *testing.T)   { linttest.Run(t, lint.CtxFlow, "ctxflow/a") }

func TestAtomicFieldFixture(t *testing.T) { linttest.Run(t, lint.AtomicField, "atomicfield/a") }
func TestHotPathFixture(t *testing.T)     { linttest.Run(t, lint.HotPath, "hotpath/a") }
func TestGoLeakFixture(t *testing.T)      { linttest.Run(t, lint.GoLeak, "goleak/service") }
func TestValidFlowFixture(t *testing.T)   { linttest.Run(t, lint.ValidFlow, "validflow/a") }
func TestBoundFlowFixture(t *testing.T)   { linttest.Run(t, lint.BoundFlow, "boundflow/service") }

// TestGoLeakStrictFixture runs the unresolvable-spawn fixture in both
// modes: lenient stays silent (bias toward no noise), strict surfaces
// every spawn whose termination path the graph cannot verify, and the
// resolvable spawn stays quiet in both.
func TestGoLeakStrictFixture(t *testing.T) {
	lenient, _ := linttest.RunRawWith(t, []*lint.Analyzer{lint.GoLeak}, "goleak/strict/service", lint.Options{})
	if len(lenient) != 0 {
		t.Fatalf("lenient mode reported %d findings, want 0:\n%v", len(lenient), lenient)
	}
	strict, _ := linttest.RunRawWith(t, []*lint.Analyzer{lint.GoLeak}, "goleak/strict/service", lint.Options{Strict: true})
	if len(strict) != 2 {
		t.Fatalf("strict mode reported %d findings, want 2:\n%v", len(strict), strict)
	}
	for _, d := range strict {
		if d.Check != "goleak" || !strings.Contains(d.Message, "cannot be resolved statically") {
			t.Errorf("unexpected strict finding: %s", d)
		}
	}
}

// TestValidFlowHygiene asserts the annotation-hygiene findings, which
// land on the directive comments' own lines (so want comments cannot
// annotate them): malformed roles, missing justifications, and
// well-formed annotations outside a function declaration's doc comment.
func TestValidFlowHygiene(t *testing.T) {
	diags := linttest.RunRaw(t, []*lint.Analyzer{lint.ValidFlow}, "validflow/hygiene")
	wantSubstrings := []string{
		`taint: unknown role "wizard"`,
		"taint: annotation needs a role",
		"taint: source needs a justification after the role",
		"taint: annotation must be in a function declaration's doc comment", // var decl
		"taint: annotation must be in a function declaration's doc comment", // function body
	}
	if len(diags) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%v", len(diags), len(wantSubstrings), diags)
	}
	for i, w := range wantSubstrings {
		if diags[i].Check != "validflow" || !strings.Contains(diags[i].Message, w) {
			t.Errorf("diagnostic %d = %s, want validflow containing %q", i, diags[i], w)
		}
	}
}

// TestBoundFlowHygiene: a bounded annotation without a justification is
// a finding on its own line, and it does not justify the field — the
// growth finding fires too. Prose that merely shares the prefix
// ("bounded byzantine") is not a directive.
func TestBoundFlowHygiene(t *testing.T) {
	diags := linttest.RunRaw(t, []*lint.Analyzer{lint.BoundFlow}, "boundflow/hygiene/service")
	var hygiene, growth int
	for _, d := range diags {
		switch {
		case strings.Contains(d.Message, "bounded by needs a justification"):
			hygiene++
		case strings.Contains(d.Message, "without a statically evident bound"):
			growth++
		default:
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	if hygiene != 1 || growth != 2 {
		t.Errorf("got %d hygiene + %d growth findings, want 1 + 2:\n%v", hygiene, growth, diags)
	}
}

// TestDirectives drives the suppression machinery through the directive
// fixture: justified directives (trailing and standalone) silence their
// line, while unjustified, unknown-check, and bare directives surface as
// "directive" diagnostics — a suppression that cannot say why it exists is
// itself a finding.
func TestDirectives(t *testing.T) {
	diags := linttest.RunRaw(t, []*lint.Analyzer{lint.ErrDrop}, "directive/a")
	var got []string
	for _, d := range diags {
		got = append(got, d.Check+"|"+d.Message)
	}
	wantSubstrings := []string{
		"directive|//lint:allow errdrop needs a justification",
		"errdrop|call discards its error result", // unknownCheck's os.Remove("d") stays reported
		"directive|//lint:allow names unknown check \"nosuchcheck\"",
		"directive|//lint:allow needs a check name and a justification",
		"errdrop|call discards its error result", // bare()'s os.Remove("e") stays reported
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(wantSubstrings), strings.Join(got, "\n"))
	}
	for i, w := range wantSubstrings {
		parts := strings.SplitN(w, "|", 2)
		if !strings.HasPrefix(got[i], parts[0]+"|") || !strings.Contains(got[i], parts[1]) {
			t.Errorf("diagnostic %d = %q, want check %q containing %q", i, got[i], parts[0], parts[1])
		}
	}
	// The justified trailing and standalone directives must have silenced
	// os.Remove("a") and os.Remove("b"): no errdrop diagnostic may point at
	// their lines (9 and 15).
	for _, d := range diags {
		if d.Check == "errdrop" && (d.Pos.Line == 9 || d.Pos.Line == 15) {
			t.Errorf("justified directive failed to suppress: %s", d)
		}
	}
}

// TestByName covers the check-selection flag parsing.
func TestByName(t *testing.T) {
	all, err := lint.ByName("all")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v", len(all), err)
	}
	two, err := lint.ByName("detrand, wallclock")
	if err != nil || len(two) != 2 || two[0].Name != "detrand" || two[1].Name != "wallclock" {
		t.Fatalf("ByName(detrand, wallclock) = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}
