package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// One golden-file fixture per analyzer: each fixture seeds violations and
// marks the expected diagnostics with // want comments, so these tests
// fail both when a check misses a seeded violation and when it
// over-reports clean code.

func TestDetRandFixture(t *testing.T)   { linttest.Run(t, lint.DetRand, "detrand/sim") }
func TestWallClockFixture(t *testing.T) { linttest.Run(t, lint.WallClock, "wallclock/sim") }
func TestFloatCmpFixture(t *testing.T)  { linttest.Run(t, lint.FloatCmp, "floatcmp/a") }
func TestErrDropFixture(t *testing.T)   { linttest.Run(t, lint.ErrDrop, "errdrop/a") }
func TestObsNamesFixture(t *testing.T)  { linttest.Run(t, lint.ObsNames, "obsnames/a") }
func TestLockFlowFixture(t *testing.T)  { linttest.Run(t, lint.LockFlow, "lockflow/a") }
func TestCtxFlowFixture(t *testing.T)   { linttest.Run(t, lint.CtxFlow, "ctxflow/a") }

func TestAtomicFieldFixture(t *testing.T) { linttest.Run(t, lint.AtomicField, "atomicfield/a") }
func TestHotPathFixture(t *testing.T)     { linttest.Run(t, lint.HotPath, "hotpath/a") }
func TestGoLeakFixture(t *testing.T)      { linttest.Run(t, lint.GoLeak, "goleak/service") }

// TestDirectives drives the suppression machinery through the directive
// fixture: justified directives (trailing and standalone) silence their
// line, while unjustified, unknown-check, and bare directives surface as
// "directive" diagnostics — a suppression that cannot say why it exists is
// itself a finding.
func TestDirectives(t *testing.T) {
	diags := linttest.RunRaw(t, []*lint.Analyzer{lint.ErrDrop}, "directive/a")
	var got []string
	for _, d := range diags {
		got = append(got, d.Check+"|"+d.Message)
	}
	wantSubstrings := []string{
		"directive|//lint:allow errdrop needs a justification",
		"errdrop|call discards its error result", // unknownCheck's os.Remove("d") stays reported
		"directive|//lint:allow names unknown check \"nosuchcheck\"",
		"directive|//lint:allow needs a check name and a justification",
		"errdrop|call discards its error result", // bare()'s os.Remove("e") stays reported
	}
	if len(got) != len(wantSubstrings) {
		t.Fatalf("got %d diagnostics, want %d:\n%s", len(got), len(wantSubstrings), strings.Join(got, "\n"))
	}
	for i, w := range wantSubstrings {
		parts := strings.SplitN(w, "|", 2)
		if !strings.HasPrefix(got[i], parts[0]+"|") || !strings.Contains(got[i], parts[1]) {
			t.Errorf("diagnostic %d = %q, want check %q containing %q", i, got[i], parts[0], parts[1])
		}
	}
	// The justified trailing and standalone directives must have silenced
	// os.Remove("a") and os.Remove("b"): no errdrop diagnostic may point at
	// their lines (9 and 15).
	for _, d := range diags {
		if d.Check == "errdrop" && (d.Pos.Line == 9 || d.Pos.Line == 15) {
			t.Errorf("justified directive failed to suppress: %s", d)
		}
	}
}

// TestByName covers the check-selection flag parsing.
func TestByName(t *testing.T) {
	all, err := lint.ByName("all")
	if err != nil || len(all) != len(lint.All()) {
		t.Fatalf("ByName(all) = %d analyzers, err %v", len(all), err)
	}
	two, err := lint.ByName("detrand, wallclock")
	if err != nil || len(two) != 2 || two[0].Name != "detrand" || two[1].Name != "wallclock" {
		t.Fatalf("ByName(detrand, wallclock) = %v, err %v", two, err)
	}
	if _, err := lint.ByName("nope"); err == nil {
		t.Fatal("ByName(nope) should fail")
	}
}
