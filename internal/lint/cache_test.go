package lint_test

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/cache"
)

// The fact-cache tests run over a throwaway module in a temp directory so
// they can edit files between runs without touching the repository. Each
// run builds a fresh loader (as a new repolint process would) against a
// shared cache directory.

// writeTempModule materialises files (paths relative to the module root)
// plus a go.mod, returning the root.
func writeTempModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpmod\n\ngo 1.22\n"
	for name, src := range files {
		full := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(full), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(full, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// runCached is one cold-start repolint run: fresh loader, shared cache.
func runCached(t *testing.T, root string, c *cache.Cache, analyzers []*lint.Analyzer, paths []string, opts lint.Options) ([]lint.Diagnostic, cache.Stats) {
	t.Helper()
	loader, err := lint.NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	opts.Cache = c
	diags, stats, err := lint.RunWith(loader, analyzers, paths, opts)
	if err != nil {
		t.Fatal(err)
	}
	return diags, stats
}

// diagStrings flattens diagnostics for order-insensitive-free equality.
func diagStrings(diags []lint.Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.String()
	}
	return out
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestCacheWarmRunHitsAndMatches: a second run over an unchanged tree is
// served entirely from the cache and reproduces the cold run's
// diagnostics exactly; editing a transitive dependency invalidates the
// dependent package's entry even though its own files are untouched.
func TestCacheWarmRunHitsAndMatches(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"a/a.go": "package a\n\nimport (\n\t\"os\"\n\n\t\"tmpmod/b\"\n)\n\nfunc F() { os.Remove(b.Name()) }\n",
		"b/b.go": "package b\n\nfunc Name() string { return \"x\" }\n",
	})
	c, err := cache.Open(filepath.Join(root, ".cache"))
	if err != nil {
		t.Fatal(err)
	}
	errdrop := []*lint.Analyzer{lint.ErrDrop}

	cold, coldStats := runCached(t, root, c, errdrop, []string{"tmpmod/a"}, lint.Options{})
	if coldStats.Hits != 0 || coldStats.Misses != 1 {
		t.Fatalf("cold run stats = %+v, want 0 hits, 1 miss", coldStats)
	}
	if len(cold) != 1 {
		t.Fatalf("cold run found %d diagnostics, want the seeded errdrop:\n%v", len(cold), cold)
	}

	warm, warmStats := runCached(t, root, c, errdrop, []string{"tmpmod/a"}, lint.Options{})
	if warmStats.Hits != 1 || warmStats.Misses != 0 {
		t.Fatalf("warm run stats = %+v, want 1 hit, 0 misses", warmStats)
	}
	if !equalStrings(diagStrings(cold), diagStrings(warm)) {
		t.Fatalf("warm run diverged from cold run:\ncold %v\nwarm %v", cold, warm)
	}

	// Transitive invalidation: touching b (which a imports) must miss a's
	// entry, and the re-analysis must agree with the original run.
	if err := os.WriteFile(filepath.Join(root, "b", "b.go"),
		[]byte("package b\n\n// edited\nfunc Name() string { return \"x\" }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	edited, editedStats := runCached(t, root, c, errdrop, []string{"tmpmod/a"}, lint.Options{})
	if editedStats.Hits != 0 || editedStats.Misses != 1 {
		t.Fatalf("post-edit stats = %+v, want 0 hits, 1 miss (transitive invalidation)", editedStats)
	}
	if !equalStrings(diagStrings(cold), diagStrings(edited)) {
		t.Fatalf("post-edit run diverged:\ncold %v\nedited %v", cold, edited)
	}
}

// TestCacheModuleScopeAndStrictKeying: module-scope entries warm-hit and
// store post-suppression results, any file edit invalidates them (the
// key folds the whole-module hash), and the strict flag is part of the
// key — a strict run never reuses a lenient entry.
func TestCacheModuleScopeAndStrictKeying(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		// The service segment opts the package into goleak; the spawn
		// target is a function value, a finding only under -strict.
		"service/a.go": "package service\n\nfunc Start(run func()) {\n\tgo run()\n}\n",
		"other/o.go":   "package other\n\nfunc Tick() {}\n",
	})
	c, err := cache.Open(filepath.Join(root, ".cache"))
	if err != nil {
		t.Fatal(err)
	}
	goleak := []*lint.Analyzer{lint.GoLeak}
	paths := []string{"tmpmod/service"}

	lenient, coldStats := runCached(t, root, c, goleak, paths, lint.Options{})
	if len(lenient) != 0 {
		t.Fatalf("lenient run found %d diagnostics, want 0:\n%v", len(lenient), lenient)
	}
	if coldStats.Hits != 0 {
		t.Fatalf("cold lenient stats = %+v, want 0 hits", coldStats)
	}

	_, warmStats := runCached(t, root, c, goleak, paths, lint.Options{})
	if warmStats.Misses != 0 || warmStats.Hits == 0 {
		t.Fatalf("warm lenient stats = %+v, want all hits", warmStats)
	}

	// Strict must miss the lenient entries and surface the finding.
	strict, strictStats := runCached(t, root, c, goleak, paths, lint.Options{Strict: true})
	if strictStats.Hits != 0 {
		t.Fatalf("first strict stats = %+v, want 0 hits (strict is part of the key)", strictStats)
	}
	if len(strict) != 1 {
		t.Fatalf("strict run found %d diagnostics, want the unresolvable spawn:\n%v", len(strict), strict)
	}
	strictWarm, strictWarmStats := runCached(t, root, c, goleak, paths, lint.Options{Strict: true})
	if strictWarmStats.Misses != 0 || !equalStrings(diagStrings(strict), diagStrings(strictWarm)) {
		t.Fatalf("warm strict run diverged: stats %+v\ncold %v\nwarm %v", strictWarmStats, strict, strictWarm)
	}

	// Editing any module file — even one outside the analyzed package's
	// import closure — invalidates the module-scope entry. The package-
	// scope entry legitimately still hits: the edit is outside the
	// package's own closure.
	if err := os.WriteFile(filepath.Join(root, "other", "o.go"),
		[]byte("package other\n\n// edited\nfunc Tick() {}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, editedStats := runCached(t, root, c, goleak, paths, lint.Options{})
	if editedStats.Misses != 1 || editedStats.Hits != 1 {
		t.Fatalf("post-edit lenient stats = %+v, want the module entry to miss and the package entry to hit", editedStats)
	}
}

// TestCacheSuppressionIsStored: cached entries are post-suppression — a
// warm run must not resurrect findings a //lint:allow directive silenced.
func TestCacheSuppressionIsStored(t *testing.T) {
	root := writeTempModule(t, map[string]string{
		"a/a.go": "package a\n\nimport \"os\"\n\nfunc F() {\n\tos.Remove(\"x\") //lint:allow errdrop best-effort cleanup\n}\n",
	})
	c, err := cache.Open(filepath.Join(root, ".cache"))
	if err != nil {
		t.Fatal(err)
	}
	errdrop := []*lint.Analyzer{lint.ErrDrop}
	cold, _ := runCached(t, root, c, errdrop, []string{"tmpmod/a"}, lint.Options{})
	if len(cold) != 0 {
		t.Fatalf("cold run: suppressed finding leaked:\n%v", cold)
	}
	warm, stats := runCached(t, root, c, errdrop, []string{"tmpmod/a"}, lint.Options{})
	if stats.Hits != 1 || len(warm) != 0 {
		t.Fatalf("warm run: stats %+v, %d diagnostics; want 1 hit, 0 diagnostics", stats, len(warm))
	}
}
