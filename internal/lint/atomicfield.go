package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// AtomicField enforces all-or-nothing atomicity on struct fields. A field
// that any code in the package accesses through sync/atomic
// (atomic.AddInt64(&x.f, 1), atomic.LoadUint64(&x.f), ...) must never be
// read or written plainly anywhere else in the package: the plain access
// races with the atomic ones, and unlike a missed lock it is invisible to
// inspection because both sites look locally correct. The race detector
// only catches the schedules it happens to see; this check catches the
// pattern itself.
//
// It also checks typed atomic.Value protocol: every Store/Swap/
// CompareAndSwap into a given atomic.Value must use one consistent
// concrete type — storing two different concrete types panics at runtime
// ("store of inconsistently typed value"), and storing an interface-typed
// expression compiles while hiding exactly that hazard. This is the class
// behind the mixed-type panic fixed in the PR 3 review.
//
// Plain access to fields of freshly allocated, not-yet-shared values
// (constructors) is exempt, matching lockflow's treatment of guards.
var AtomicField = &Analyzer{
	Name: "atomicfield",
	Doc: "Atomic-access consistency: a struct field accessed through " +
		"sync/atomic anywhere in the package must not be read or written " +
		"plainly elsewhere, and atomic.Value stores must use one " +
		"consistent concrete type.",
	Run: runAtomicField,
}

// atomicOpsArg maps sync/atomic function names to the index of their
// address argument. All of them take the address first.
func isAtomicOpName(name string) bool {
	switch name {
	case "AddInt32", "AddInt64", "AddUint32", "AddUint64", "AddUintptr",
		"LoadInt32", "LoadInt64", "LoadUint32", "LoadUint64", "LoadUintptr", "LoadPointer",
		"StoreInt32", "StoreInt64", "StoreUint32", "StoreUint64", "StoreUintptr", "StorePointer",
		"SwapInt32", "SwapInt64", "SwapUint32", "SwapUint64", "SwapUintptr", "SwapPointer",
		"CompareAndSwapInt32", "CompareAndSwapInt64", "CompareAndSwapUint32",
		"CompareAndSwapUint64", "CompareAndSwapUintptr", "CompareAndSwapPointer":
		return true
	}
	return false
}

// valueStoreArg returns the index of the stored value for the typed
// atomic.Value methods, or -1 for methods that store nothing.
func valueStoreArg(method string) int {
	switch method {
	case "Store", "Swap":
		return 0
	case "CompareAndSwap":
		return 1
	}
	return -1
}

type valueStore struct {
	pos   token.Pos
	typ   types.Type
	iface bool
}

func runAtomicField(pass *Pass) {
	info := pass.Pkg.Info

	// Phase 1: collect every atomic access. atomicAt remembers the first
	// atomic site per field (for the diagnostic), consumed marks the
	// selector expressions that ARE atomic accesses so phase 2 does not
	// report them as plain ones.
	atomicAt := make(map[*types.Var]token.Pos)
	consumed := make(map[*ast.SelectorExpr]bool)
	var valueFields []*types.Var // deterministic iteration order
	stores := make(map[*types.Var][]valueStore)

	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := pkgSelector(info, call.Fun, "sync/atomic"); ok &&
				isAtomicOpName(name) && len(call.Args) > 0 {
				if sel := addrFieldSelector(call.Args[0]); sel != nil {
					if v := selectedField(info, sel); v != nil {
						if _, seen := atomicAt[v]; !seen {
							atomicAt[v] = call.Pos()
						}
						consumed[sel] = true
					}
				}
				return true
			}
			// Typed atomic.Value protocol.
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			argIdx := valueStoreArg(fn.Name())
			if argIdx < 0 || argIdx >= len(call.Args) || fn.FullName() != "(*sync/atomic.Value)."+fn.Name() {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			recv, ok := ast.Unparen(sel.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			v := selectedField(info, recv)
			if v == nil {
				return true
			}
			arg := call.Args[argIdx]
			tv, ok := info.Types[arg]
			if !ok || tv.Type == nil {
				return true
			}
			t := tv.Type
			if b, isBasic := t.(*types.Basic); isBasic && b.Kind() == types.UntypedNil {
				return true // Store(nil) panics on its own; out of scope here
			}
			if _, tracked := stores[v]; !tracked {
				valueFields = append(valueFields, v)
			}
			stores[v] = append(stores[v], valueStore{
				pos:   arg.Pos(),
				typ:   t,
				iface: types.IsInterface(t),
			})
			return true
		})
	}

	// Phase 2: report plain accesses of atomically-accessed fields,
	// walking function bodies so constructor-fresh locals can be exempted.
	if len(atomicAt) > 0 {
		for _, f := range pass.Pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fresh := freshLocals(info, fd.Body)
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					sel, ok := n.(*ast.SelectorExpr)
					if !ok || consumed[sel] {
						return true
					}
					v := selectedField(info, sel)
					if v == nil {
						return true
					}
					first, isAtomic := atomicAt[v]
					if !isAtomic {
						return true
					}
					if ref, ok := resolveLockRef(info, sel.X); ok && fresh[ref.root] {
						return true // not yet shared: plain init is fine
					}
					pass.Reportf(sel.Sel.Pos(),
						"field %s is accessed atomically (first at line %d) but plainly here; mixed access is a data race",
						v.Name(), pass.Fset.Position(first).Line)
					return true
				})
			}
		}
	}

	// Typed atomic.Value verdicts, in deterministic field order.
	for _, v := range valueFields {
		sites := stores[v]
		var firstConcrete *valueStore
		for i := range sites {
			s := &sites[i]
			if s.iface {
				pass.Reportf(s.pos,
					"atomic.Value field %s stores a value of interface type %s; store one consistent concrete type instead",
					v.Name(), s.typ)
				continue
			}
			if firstConcrete == nil {
				firstConcrete = s
				continue
			}
			if !types.Identical(s.typ, firstConcrete.typ) {
				pass.Reportf(s.pos,
					"atomic.Value field %s stores %s here but %s at line %d; inconsistently typed stores panic at runtime",
					v.Name(), s.typ, firstConcrete.typ, pass.Fset.Position(firstConcrete.pos).Line)
			}
		}
	}
}

// addrFieldSelector matches &x.f (the address-of-field shape sync/atomic
// calls use) and returns the x.f selector.
func addrFieldSelector(e ast.Expr) *ast.SelectorExpr {
	u, ok := ast.Unparen(e).(*ast.UnaryExpr)
	if !ok || u.Op != token.AND {
		return nil
	}
	sel, _ := ast.Unparen(u.X).(*ast.SelectorExpr)
	return sel
}

// selectedField resolves a selector to the struct field it names, or nil.
func selectedField(info *types.Info, sel *ast.SelectorExpr) *types.Var {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() {
		return nil
	}
	return v
}
