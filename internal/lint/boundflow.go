package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// BoundFlow requires every growable container (map or slice field) that
// lives in a daemon-resident struct to have a statically evident bound.
// The daemon packages (service, histstore, obs, admission, accuracy)
// run for the process lifetime; a per-request or per-category map that
// grows without a cap is a latent production outage — it just takes
// weeks instead of milliseconds.
//
// The analyzer starts from the package's root daemon structs (Server,
// Store, Registry, Tracer, Tracker, Shadow, Reselector, Controller),
// closes over their field types (through pointers, slices, arrays,
// maps, and generic type arguments such as atomic.Pointer[T]), and
// collects every map/slice field of the reachable structs. A field with
// at least one growth site —
//
//   - a direct element store (x.f[k] = v) or append assigned back to
//     the field (x.f = append(x.f, ...)),
//   - or the copy-on-write publish pattern: a local map/slice that
//     grows inside the function and is then assigned (or composite-
//     literal-bound) to the field
//
// — must carry bound evidence somewhere in the declaring package: a
// len(x.f) comparison, a delete(x.f, ...), a truncating reslice
// (x.f = x.f[...]), or a justified annotation on the field declaration:
//
//	// bounded by the snapshot retention cap, enforced in trim()
//
// An annotation without a justification is itself a finding. The
// evidence search is per-field and package-wide — the analyzer proves a
// bound exists, not that every growth path consults it — which keeps it
// quiet on rings and caches whose eviction lives in a sibling method.
var BoundFlow = &Analyzer{
	Name: "boundflow",
	Doc: "maps and slices in daemon-resident structs (service, histstore, obs, " +
		"admission, accuracy) must have a statically evident bound (len check, " +
		"delete, truncating reslice) or a justified // bounded by annotation",
	AppliesTo: isBoundflowPkg,
	Run:       runBoundFlow,
}

// boundflowPackages are the daemon-resident packages, matched by
// import-path segment like the other package-set analyzers.
var boundflowPackages = map[string]bool{
	"service":   true,
	"histstore": true,
	"obs":       true,
	"admission": true,
	"accuracy":  true,
}

func isBoundflowPkg(path string) bool {
	for _, seg := range strings.Split(path, "/") {
		if boundflowPackages[seg] {
			return true
		}
	}
	return false
}

// boundflowRoots are the daemon-resident struct names the closure starts
// from. The set is deliberately a name list: the structs that hold
// process-lifetime state are few and stable, and a name list keeps the
// fixture packages honest (a fixture declares `type Server struct` and
// is analyzed exactly like the real tree).
var boundflowRoots = map[string]bool{
	"Server":     true,
	"Store":      true,
	"Registry":   true,
	"Tracer":     true,
	"Tracker":    true,
	"Shadow":     true,
	"Reselector": true,
	"Controller": true,
}

// boundedPrefix introduces a field-bound justification.
const boundedPrefix = "bounded by"

// parseBoundedDirective parses one comment's raw text (marker included)
// as a // bounded by <why> annotation. ok is false when the comment is
// not a bounded annotation; errMsg is non-empty when the justification
// is missing. The function is pure; it is the fuzz surface of the
// annotation grammar.
func parseBoundedDirective(text string) (why, errMsg string, ok bool) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return "", "", false
	}
	trimmed := strings.TrimSpace(body)
	rest, isDirective := strings.CutPrefix(trimmed, boundedPrefix)
	if !isDirective {
		return "", "", false
	}
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return "", "", false // e.g. "bounded byzantine"
	}
	why = strings.TrimSpace(rest)
	if why == "" {
		return "", "bounded by needs a justification (what enforces the bound?)", true
	}
	return why, "", true
}

func runBoundFlow(pass *Pass) {
	info := pass.Pkg.Info

	// 1. Reachable daemon structs: roots by name, closed over field types.
	reach := make(map[*types.Named]bool)
	var close func(t types.Type)
	close = func(t types.Type) {
		switch t := t.(type) {
		case *types.Named:
			// Generic containers (atomic.Pointer[T]) reach through their
			// type arguments even when the named type itself is external.
			if ta := t.TypeArgs(); ta != nil {
				for i := 0; i < ta.Len(); i++ {
					close(ta.At(i))
				}
			}
			if t.Obj().Pkg() != pass.Pkg.Types {
				return // fields declared elsewhere are that package's passes to check
			}
			if st, ok := t.Underlying().(*types.Struct); ok {
				if reach[t] {
					return
				}
				reach[t] = true
				for i := 0; i < st.NumFields(); i++ {
					close(st.Field(i).Type())
				}
			}
		case *types.Pointer:
			close(t.Elem())
		case *types.Slice:
			close(t.Elem())
		case *types.Array:
			close(t.Elem())
		case *types.Map:
			close(t.Key())
			close(t.Elem())
		case *types.Chan:
			close(t.Elem())
		}
	}
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || !boundflowRoots[name] {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			close(named)
		}
	}
	// External roots: a named generic instantiated elsewhere cannot occur
	// for roots (they are declared here), so nothing more to seed.

	// 2. The growable fields of the reachable structs.
	type fieldInfo struct {
		obj    *types.Var
		kind   string // "map" or "slice"
		growth []token.Pos
	}
	fields := make(map[*types.Var]*fieldInfo)
	for named := range reach {
		st := named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			switch f.Type().Underlying().(type) {
			case *types.Map:
				fields[f] = &fieldInfo{obj: f, kind: "map"}
			case *types.Slice:
				fields[f] = &fieldInfo{obj: f, kind: "slice"}
			}
		}
	}
	if len(fields) == 0 {
		return
	}

	// selField resolves an expression to one of the tracked field objects
	// when it is a selector (or deeper chain ending in one) onto a field.
	selField := func(e ast.Expr) *types.Var {
		sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
		if !ok {
			return nil
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return nil
		}
		if _, tracked := fields[v]; !tracked {
			return nil
		}
		return v
	}

	// 3. Scan every function for growth sites and bound evidence.
	evidence := make(map[*types.Var]bool)
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// Locals that grow inside this function, for the COW publish
			// pattern: local grows, then is stored into the field.
			grownLocals := make(map[types.Object][]token.Pos)
			localRoot := func(e ast.Expr) types.Object {
				id, ok := ast.Unparen(e).(*ast.Ident)
				if !ok {
					return nil
				}
				obj := info.Uses[id]
				if obj == nil {
					obj = info.Defs[id]
				}
				if v, ok := obj.(*types.Var); ok && !v.IsField() {
					return v
				}
				return nil
			}
			// First pass: find growing locals and direct field growth.
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				as, ok := x.(*ast.AssignStmt)
				if !ok {
					return true
				}
				for i, lhs := range as.Lhs {
					if ix, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok {
						// m[k] = v: growth of a map (field or local).
						if fv := selField(ix.X); fv != nil {
							if _, isMap := fv.Type().Underlying().(*types.Map); isMap {
								fields[fv].growth = append(fields[fv].growth, as.Pos())
							}
						} else if lo := localRoot(ix.X); lo != nil {
							if _, isMap := lo.Type().Underlying().(*types.Map); isMap {
								grownLocals[lo] = append(grownLocals[lo], as.Pos())
							}
						}
						continue
					}
					if i >= len(as.Rhs) && len(as.Rhs) != 1 {
						continue
					}
					rhs := as.Rhs[min(i, len(as.Rhs)-1)]
					if isAppendCall(info, rhs) {
						if fv := selField(lhs); fv != nil {
							fields[fv].growth = append(fields[fv].growth, as.Pos())
						} else if lo := localRoot(lhs); lo != nil {
							grownLocals[lo] = append(grownLocals[lo], as.Pos())
						}
					}
				}
				return true
			})
			// Second pass: evidence, and COW publishes of grown locals.
			ast.Inspect(fd.Body, func(x ast.Node) bool {
				switch x := x.(type) {
				case *ast.BinaryExpr:
					// A comparison with len(x.f) on either side.
					if isComparison(x.Op) {
						for _, side := range []ast.Expr{x.X, x.Y} {
							if fv := lenOfField(info, side, selField); fv != nil {
								evidence[fv] = true
							}
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" {
						if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin && len(x.Args) > 0 {
							if fv := selField(x.Args[0]); fv != nil {
								evidence[fv] = true
							}
						}
					}
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						fv := selField(lhs)
						if fv == nil || i >= len(x.Rhs) {
							continue
						}
						rhs := ast.Unparen(x.Rhs[i])
						// Truncating reslice of the same field.
						if sl, ok := rhs.(*ast.SliceExpr); ok {
							if rv := selField(sl.X); rv == fv {
								evidence[fv] = true
							}
						}
						// COW publish: x.f = local where local grew here.
						if lo := localRoot(rhs); lo != nil && len(grownLocals[lo]) > 0 {
							fields[fv].growth = append(fields[fv].growth, grownLocals[lo]...)
						}
					}
				case *ast.CompositeLit:
					// COW publish through a literal: T{f: local}.
					for _, el := range x.Elts {
						kv, ok := el.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						key, ok := kv.Key.(*ast.Ident)
						if !ok {
							continue
						}
						v, ok := info.Uses[key].(*types.Var)
						if !ok || !v.IsField() {
							continue
						}
						if _, tracked := fields[v]; !tracked {
							continue
						}
						if lo := localRoot(kv.Value); lo != nil && len(grownLocals[lo]) > 0 {
							fields[v].growth = append(fields[v].growth, grownLocals[lo]...)
						}
					}
				}
				return true
			})
		}
	}

	// 4. Annotations on field declarations (and hygiene findings).
	annotated := make(map[*types.Var]bool)
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			st, ok := x.(*ast.StructType)
			if !ok {
				return true
			}
			for _, fl := range st.Fields.List {
				var groups []*ast.CommentGroup
				if fl.Doc != nil {
					groups = append(groups, fl.Doc)
				}
				if fl.Comment != nil {
					groups = append(groups, fl.Comment)
				}
				justified := false
				for _, cg := range groups {
					for _, c := range cg.List {
						_, errMsg, ok := parseBoundedDirective(c.Text)
						if !ok {
							continue
						}
						if errMsg != "" {
							pass.Reportf(c.Pos(), "%s", errMsg)
							continue
						}
						justified = true
					}
				}
				if !justified {
					continue
				}
				for _, name := range fl.Names {
					if v, ok := info.Defs[name].(*types.Var); ok {
						annotated[v] = true
					}
				}
			}
			return true
		})
	}

	// 5. Report unbounded growth, one finding per field at its declaration.
	var flagged []*fieldInfo
	for _, fi := range fields {
		if len(fi.growth) == 0 || evidence[fi.obj] || annotated[fi.obj] {
			continue
		}
		flagged = append(flagged, fi)
	}
	sort.Slice(flagged, func(i, j int) bool { return flagged[i].obj.Pos() < flagged[j].obj.Pos() })
	for _, fi := range flagged {
		sort.Slice(fi.growth, func(i, j int) bool { return fi.growth[i] < fi.growth[j] })
		sites := make([]string, 0, len(fi.growth))
		seen := make(map[string]bool)
		for _, p := range fi.growth {
			sp := shortPos(pass, p)
			if !seen[sp] {
				seen[sp] = true
				sites = append(sites, sp)
			}
		}
		pass.Reportf(fi.obj.Pos(),
			"%s field %s grows at %s without a statically evident bound (len check, delete, truncating reslice); add eviction or justify with // bounded by <why>",
			fi.kind, fi.obj.Name(), strings.Join(sites, ", "))
	}
}

// isAppendCall reports whether e is a call to the builtin append
// (possibly wrapped in parens).
func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// isComparison reports whether op is a comparison operator.
func isComparison(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// lenOfField returns the tracked field when e is len(<selector-to-field>).
func lenOfField(info *types.Info, e ast.Expr, selField func(ast.Expr) *types.Var) *types.Var {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "len" {
		return nil
	}
	if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return selField(call.Args[0])
}
