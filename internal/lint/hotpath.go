package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint/callgraph"
)

// HotPath enforces declared hot-path contracts interprocedurally. A
// function annotated in its doc comment with
//
//	// hotpath: no-lock no-alloc no-clock
//
// must not reach, on any call path the module-wide call graph can see, an
// operation forbidden by the listed tokens:
//
//	no-lock   mutex/RWMutex acquisition, Once.Do, WaitGroup.Wait,
//	          Cond.Wait — and blocking channel operations (send, receive,
//	          select without default, range over a channel, time.Sleep):
//	          a hot path stalled on a channel is as serialized as one
//	          waiting on a mutex
//	no-alloc  heap allocation sites: make/new/append, pointer and
//	          slice/map composite literals, map writes, non-constant
//	          string concatenation, string<->[]byte conversions,
//	          allocating fmt/strconv/strings calls, and boxing a concrete
//	          value into an interface-typed argument
//	no-clock  time.Now / time.Since / time.Until
//	no-go     starting a goroutine
//
// The diagnostic lands on the offending operation (possibly in another
// package — put the //lint:allow justification there) and carries the
// full call chain from the annotated root.
//
// A callee annotated with its own contract is a verified boundary: the
// traversal trusts it for the effect kinds it declares and does not
// descend (its own analysis run proves the claim). A callee annotated
//
//	// hotpath: exempt <justification>
//
// is skipped entirely — for nil-guarded instrumentation plumbing and
// warm-up-only paths whose cost is not on the steady-state hot path; the
// justification is mandatory.
//
// This is the static counterpart of the benchmark trajectory: the bench
// gate proves the entry points allocation-free on the configurations it
// runs; this analyzer proves no code path — measured or not — can
// reintroduce a lock, allocation, or clock read.
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "functions declaring a // hotpath: contract must not reach locks, " +
		"allocations, clock reads, or blocked channels on any call path",
	Scope: ScopeModule,
	Run:   runHotPath,
}

// hotpathPrefix introduces both annotation forms.
const hotpathPrefix = "hotpath:"

// hotpathTokens maps contract tokens to the effect kinds they forbid.
var hotpathTokens = map[string]callgraph.EffectKind{
	"no-lock":  callgraph.Lock | callgraph.Chan,
	"no-alloc": callgraph.Alloc,
	"no-clock": callgraph.Clock,
	"no-go":    callgraph.Go,
}

// hotpathToken renders the contract token an effect kind violates.
func hotpathToken(k callgraph.EffectKind) string {
	switch {
	case k&(callgraph.Lock|callgraph.Chan) != 0:
		return "no-lock"
	case k&callgraph.Alloc != 0:
		return "no-alloc"
	case k&callgraph.Clock != 0:
		return "no-clock"
	case k&callgraph.Go != 0:
		return "no-go"
	}
	return k.String()
}

// parseHotpathDirective parses one comment's raw text (marker included)
// as a // hotpath: annotation. ok is false when the comment is not a
// hotpath annotation at all. When ok, either exempt is true (boundary
// exemption), or mask holds the union of the contract tokens' effect
// kinds. errMsg is non-empty for malformed annotations: an unknown
// token, an empty contract, or an exemption without a justification.
// The function is pure; it is the fuzz surface of the annotation
// grammar.
func parseHotpathDirective(text string) (mask callgraph.EffectKind, exempt bool, errMsg string, ok bool) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return 0, false, "", false // block comments cannot carry annotations
	}
	rest, isDirective := strings.CutPrefix(strings.TrimSpace(body), hotpathPrefix)
	if !isDirective {
		return 0, false, "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return 0, false, "hotpath: annotation needs tokens (no-lock no-alloc no-clock no-go) or 'exempt <justification>'", true
	}
	if fields[0] == "exempt" {
		if len(fields) == 1 {
			return 0, true, "hotpath: exempt needs a justification", true
		}
		return 0, true, "", true
	}
	for _, tok := range fields {
		kind, known := hotpathTokens[tok]
		if !known {
			return 0, false, "hotpath: unknown token " + strconv.Quote(tok) + " (want no-lock, no-alloc, no-clock, no-go)", true
		}
		mask |= kind
	}
	return mask, false, "", true
}

// hotpathContract extracts the (well-formed) annotation from a doc
// comment group: the declared effect mask, or exempt. Malformed
// annotations are reported separately by the analyzer on the annotated
// package only, so cross-package boundary lookups stay silent.
func hotpathContract(doc *ast.CommentGroup) (mask callgraph.EffectKind, exempt bool) {
	if doc == nil {
		return 0, false
	}
	for _, c := range doc.List {
		m, ex, errMsg, ok := parseHotpathDirective(c.Text)
		if !ok || errMsg != "" {
			continue
		}
		if ex {
			return 0, true
		}
		mask |= m
	}
	return mask, false
}

// nodeContract looks up the contract on a call-graph node's declaration.
// Function literals inherit nothing: only declared functions carry
// contracts.
func nodeContract(n *callgraph.Node) (callgraph.EffectKind, bool) {
	if n == nil || n.Decl == nil {
		return 0, false
	}
	return hotpathContract(n.Decl.Doc)
}

func runHotPath(pass *Pass) {
	if pass.Graph == nil {
		return
	}
	boundary := func(n *callgraph.Node) callgraph.EffectKind {
		mask, exempt := nodeContract(n)
		if exempt {
			return callgraph.AllEffects
		}
		return mask
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			var mask callgraph.EffectKind
			for _, c := range fd.Doc.List {
				m, _, errMsg, ok := parseHotpathDirective(c.Text)
				if !ok {
					continue
				}
				if errMsg != "" {
					pass.Reportf(c.Pos(), "%s", errMsg)
					continue
				}
				mask |= m
			}
			if mask == 0 || fd.Body == nil {
				continue
			}
			fn, ok := pass.Pkg.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root := pass.Graph.NodeOf(fn)
			if root == nil {
				continue
			}
			for _, finding := range pass.Graph.Reach(root, mask, boundary) {
				pass.Reportf(finding.Effect.Pos, "%s, violating the %s contract on %s; call chain: %s",
					finding.Effect.Desc, hotpathToken(finding.Effect.Kind), fd.Name.Name,
					renderChain(pass, finding))
			}
		}
	}
}

// renderChain formats a finding's call chain root-first, annotating each
// hop with the call site (file:line) inside that function that leads to
// the next one.
func renderChain(pass *Pass, f callgraph.Finding) string {
	var b strings.Builder
	for i, step := range f.Chain {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(step.Node.Name())
		if step.Site.IsValid() {
			pos := pass.Fset.Position(step.Site)
			b.WriteString(" (")
			b.WriteString(filepath.Base(pos.Filename))
			b.WriteString(":")
			b.WriteString(strconv.Itoa(pos.Line))
			b.WriteString(")")
		}
	}
	return b.String()
}
