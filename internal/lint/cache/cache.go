// Package cache is the persistent fact cache behind repolint's warm runs.
//
// An entry stores the post-suppression diagnostics one (package, analyzer
// group) pair produced, keyed by a content hash of everything those
// diagnostics could have depended on: the tool's own source, the group's
// analyzer names, and either the package's transitive import closure
// (package-scope analyzers) or the whole module (module-scope analyzers,
// whose call-graph walks can read any loaded package). The key IS the
// invalidation: any file edit changes the hash, the lookup misses, and
// the runner falls back to a normal load-and-analyze. Nothing is ever
// mutated in place and entries carry no timestamps, so a cache directory
// can be shared across branches and the worst possible failure is a miss.
//
// The package is storage and hashing only — it does not import the lint
// package; the runner converts diagnostics to and from the neutral Diag
// shape at the boundary.
package cache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// Version is folded into every key; bump it when the entry format or the
// semantics of what an entry captures change.
const Version = "repolint-cache-v1"

// Diag is the stored shape of one diagnostic, flattened so the cache
// needs no knowledge of go/token.
type Diag struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Message string `json:"message"`
}

// Cache is a directory of content-addressed entries.
type Cache struct {
	dir string
}

// Open creates (if needed) and opens a cache directory.
func Open(dir string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache directory.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get loads the entry for key. A missing or unreadable entry is a miss,
// never an error: the cache must only ever cost a recomputation.
func (c *Cache) Get(key string) ([]Diag, bool) {
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	var diags []Diag
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, false
	}
	return diags, true
}

// Put stores the entry for key, atomically (write temp file, rename), so
// a concurrent reader never observes a torn entry.
func (c *Cache) Put(key string, diags []Diag) error {
	if diags == nil {
		diags = []Diag{} // marshal as [], so Get round-trips a hit
	}
	data, err := json.Marshal(diags)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "entry-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()           // already failing; the write error is the one to report
		_ = os.Remove(tmp.Name()) // best-effort temp cleanup
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name()) // best-effort temp cleanup
		return err
	}
	return os.Rename(tmp.Name(), c.path(key))
}

// Key derives an entry key from its parts: a hex sha256 over the
// length-prefixed parts, so no concatenation of distinct part lists can
// collide.
func Key(parts ...string) string {
	h := sha256.New()
	for _, p := range parts {
		fmt.Fprintf(h, "%d:%s", len(p), p)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// Hasher memoizes per-file content hashes for one run, so a file shared
// by many import closures is read once.
type Hasher struct {
	files map[string]string
}

// NewHasher creates an empty Hasher.
func NewHasher() *Hasher {
	return &Hasher{files: make(map[string]string)}
}

// File returns the hex sha256 of one file's content, memoized by path.
func (h *Hasher) File(path string) (string, error) {
	if sum, ok := h.files[path]; ok {
		return sum, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	raw := sha256.Sum256(data)
	sum := hex.EncodeToString(raw[:])
	h.files[path] = sum
	return sum, nil
}

// Files hashes a set of (path, hash) pairs into one digest: pairs are
// sorted by path, then length-prefix-combined, so the digest is
// independent of discovery order.
func Files(pairs map[string]string) string {
	paths := make([]string, 0, len(pairs))
	for p := range pairs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	parts := make([]string, 0, 2*len(paths))
	for _, p := range paths {
		parts = append(parts, p, pairs[p])
	}
	return Key(parts...)
}

// Stats counts one run's cache traffic. The runner exposes it so CI can
// assert the warm run actually hit.
type Stats struct {
	Hits   int
	Misses int
}
