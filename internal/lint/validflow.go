package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/lint/callgraph"
	"repro/internal/lint/taint"
)

// ValidFlow enforces the validate-before-persist invariant
// interprocedurally. Values originating at declared untrusted sources —
// HTTP request decoding in internal/service, SWF trace parsing in
// internal/workload, WAL record decoding, and flag/env grammars in cmd/
// — must pass a declared sanitizer before they reach a durable or
// stateful sink (the history store's WAL append and apply paths, bulk
// category installs, admission's class tables).
//
// The catalog lives next to the code as annotations in function doc
// comments:
//
//	// taint: source HTTP request bodies are attacker-controlled
//	// taint: sanitizer rejects non-positive and non-finite points
//	// taint: sink appended records replay into live categories on open
//
// The justification after the role is mandatory — an unjustified
// annotation is itself a finding — and a small built-in table declares
// the standard-library entry points that mint external input (flag
// value accessors, os.Getenv), since their packages cannot be annotated.
//
// Taint propagates through assignments, composite literals, returns,
// and call edges using memoized per-function summaries over the
// module-wide call graph (internal/lint/taint); interface dispatch is
// resolved conservatively through the implements sets. The diagnostic
// lands on the frontier call in the function under analysis — the
// direct sink call, or the call into the callee whose summary reaches
// the sink — and carries the source, the sink, and the call chain
// between them.
var ValidFlow = &Analyzer{
	Name: "validflow",
	Doc: "values from declared untrusted sources (HTTP decode, SWF/WAL parsing, " +
		"flag/env grammars) must pass a declared sanitizer before reaching " +
		"durable sinks (WAL append, category install, admission tables)",
	Scope: ScopeModule,
	Run:   runValidFlow,
}

// taintPrefix introduces a catalog annotation in a doc comment.
const taintPrefix = "taint:"

// taintRoles are the annotation grammar's role tokens.
var taintRoles = map[string]bool{"source": true, "sanitizer": true, "sink": true}

// parseTaintDirective parses one comment's raw text (marker included) as
// a // taint: annotation. ok is false when the comment is not a taint
// annotation at all. When ok, role holds the declared role and why its
// justification; errMsg is non-empty for malformed annotations (unknown
// role, or a missing justification — the catalog is load-bearing, so
// every entry must say why the function has its role). The function is
// pure; it is the fuzz surface of the annotation grammar.
func parseTaintDirective(text string) (role, why, errMsg string, ok bool) {
	body, isLine := strings.CutPrefix(text, "//")
	if !isLine {
		return "", "", "", false // block comments cannot carry annotations
	}
	rest, isDirective := strings.CutPrefix(strings.TrimSpace(body), taintPrefix)
	if !isDirective {
		return "", "", "", false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", "", "taint: annotation needs a role (source, sanitizer, or sink) and a justification", true
	}
	role = fields[0]
	if !taintRoles[role] {
		return "", "", "taint: unknown role " + strconv.Quote(role) + " (want source, sanitizer, or sink)", true
	}
	if len(fields) == 1 {
		return role, "", "taint: " + role + " needs a justification after the role", true
	}
	return role, strings.Join(fields[1:], " "), "", true
}

// externTaintSources declares standard-library functions whose results
// (and writable arguments) are external input. Keys are types.Func
// FullName strings.
var externTaintSources = map[string]string{
	"os.Getenv":    "environment variable",
	"os.LookupEnv": "environment variable",
}

func init() {
	// The string-valued flag accessors and binders, on the package-level
	// set and on explicit FlagSets: string flags carry grammars (class
	// tables, file paths, template JSON, workload names) that must pass a
	// validator before configuring durable state. Typed flags (Int,
	// Float64, Duration, Bool) are already grammar-checked by the flag
	// package itself and their value constraints are the consumer's
	// contract, so taint-tracking them drowns the real findings in noise.
	for _, name := range []string{
		"String", "StringVar", "Arg", "Args",
	} {
		externTaintSources["flag."+name] = "command-line flag"
		externTaintSources["(*flag.FlagSet)."+name] = "command-line flag"
	}
}

// taintRoleOf extracts the first well-formed annotation from a declared
// function's doc comment. Malformed annotations are reported separately
// when the annotated package itself is analyzed.
func taintRoleOf(n *callgraph.Node) (role string) {
	if n == nil || n.Decl == nil || n.Decl.Doc == nil {
		return ""
	}
	for _, c := range n.Decl.Doc.List {
		role, _, errMsg, ok := parseTaintDirective(c.Text)
		if ok && errMsg == "" {
			return role
		}
	}
	return ""
}

// taintDescOf renders a source or sink description for diagnostics:
// the function's name qualified by its package.
func taintDescOf(fn *types.Func) string {
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// newTaintEngine builds the value-flow engine the validflow passes of
// one Run share, with the catalog backed by annotations (resolved
// through the call graph) and the extern source table.
func newTaintEngine(graph *callgraph.Graph) *taint.Engine {
	type roleCache struct {
		role string
	}
	memo := make(map[*types.Func]roleCache)
	roleOf := func(fn *types.Func) string {
		if rc, ok := memo[fn]; ok {
			return rc.role
		}
		role := ""
		if node := graph.NodeOf(fn); node != nil {
			role = taintRoleOf(node)
		} else if _, ok := externTaintSources[fn.FullName()]; ok {
			role = "source"
		}
		memo[fn] = roleCache{role: role}
		return role
	}
	return taint.New(graph, taint.Catalog{
		Source: func(fn *types.Func) (string, bool) {
			if roleOf(fn) != "source" {
				return "", false
			}
			if desc, ok := externTaintSources[fn.FullName()]; ok {
				return desc + " " + fn.Name(), true
			}
			return taintDescOf(fn), true
		},
		Sanitizer: func(fn *types.Func) bool { return roleOf(fn) == "sanitizer" },
		Sink: func(fn *types.Func) (string, bool) {
			if roleOf(fn) != "sink" {
				return "", false
			}
			return taintDescOf(fn), true
		},
	})
}

func runValidFlow(pass *Pass) {
	if pass.Graph == nil || pass.Taint == nil {
		return
	}
	info := pass.Pkg.Info

	// Annotation hygiene: malformed or misplaced directives are findings.
	// A well-formed annotation must be part of a function declaration's
	// doc comment — anywhere else it silently declares nothing, which is
	// worse than an error.
	for _, f := range pass.Pkg.Files {
		docs := make(map[*ast.CommentGroup]bool)
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Doc != nil {
				docs[fd.Doc] = true
			}
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				_, _, errMsg, ok := parseTaintDirective(c.Text)
				if !ok {
					continue
				}
				if errMsg != "" {
					pass.Reportf(c.Pos(), "%s", errMsg)
					continue
				}
				if !docs[cg] {
					pass.Reportf(c.Pos(), "taint: annotation must be in a function declaration's doc comment")
				}
			}
		}
	}

	// Flow findings: every declared function's summary, plus the
	// summaries of the function literals its body spawns (goroutines,
	// deferred closures) — their findings belong to this package too.
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			root := pass.Graph.NodeOf(fn)
			if root == nil {
				continue
			}
			seen := make(map[*callgraph.Node]bool)
			var visit func(n *callgraph.Node)
			visit = func(n *callgraph.Node) {
				if seen[n] {
					return
				}
				seen[n] = true
				for _, fi := range pass.Taint.Summary(n).Findings {
					pass.Reportf(fi.Pos, "%s", renderTaintFinding(pass, fi))
				}
				for _, e := range pass.Graph.Calls(n) {
					if e.Callee.Lit != nil && e.Callee.Src == n.Src {
						visit(e.Callee)
					}
				}
			}
			visit(root)
		}
	}
}

// renderTaintFinding formats one complete source→sink flow.
func renderTaintFinding(pass *Pass, f taint.Finding) string {
	var b strings.Builder
	b.WriteString("value from ")
	b.WriteString(f.Src.Desc)
	b.WriteString(" (")
	b.WriteString(shortPos(pass, f.Src.Pos))
	b.WriteString(") reaches sink ")
	b.WriteString(f.Sink)
	b.WriteString(" (")
	b.WriteString(shortPos(pass, f.SinkPos))
	b.WriteString(") without passing a declared sanitizer; via ")
	for i, step := range f.Via {
		if i > 0 {
			b.WriteString(" → ")
		}
		b.WriteString(step.Name)
		if step.Site.IsValid() {
			b.WriteString(" (")
			b.WriteString(shortPos(pass, step.Site))
			b.WriteString(")")
		}
	}
	return b.String()
}

// shortPos renders a position as base-filename:line.
func shortPos(pass *Pass, p token.Pos) string {
	pos := pass.Fset.Position(p)
	return filepath.Base(pos.Filename) + ":" + strconv.Itoa(pos.Line)
}
