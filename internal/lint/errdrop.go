package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ErrDrop forbids silently discarding error return values: a call whose
// results include an error must not appear as a bare expression, defer, or
// go statement. Assigning the error to the blank identifier (`_ = f()`) is
// accepted as an explicit, reviewable acknowledgement; a bare call is not,
// because nothing distinguishes "considered and dismissed" from
// "forgotten". The acknowledgement idiom does NOT extend into closures
// launched by defer or go: `defer func() { _ = f() }()` is the classic
// wrapper that makes a dropped error look handled while moving it
// somewhere no caller can ever see it, so all-blank assignments of
// error-returning calls inside such closures are findings too.
// Print-style helpers writing to in-memory buffers or stdio
// (fmt.Print*, fmt.Fprint*, strings.Builder, bytes.Buffer methods) are
// exempt — their error paths are unreachable or conventionally ignored.
//
// The check applies everywhere except the runnable examples, which favour
// brevity.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "forbid discarding error results in bare call, defer, and go statements",
	AppliesTo: func(pkgPath string) bool {
		for _, seg := range strings.Split(pkgPath, "/") {
			if seg == "examples" {
				return false
			}
		}
		return true
	},
	Run: runErrDrop,
}

// errdropExempt lists callees whose dropped errors are conventionally
// acceptable, by types.Func.FullName (exact for package functions, prefix
// for methods of a type).
var errdropExemptFuncs = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,
}

var errdropExemptRecvPrefixes = []string{
	"(*strings.Builder).",
	"(*bytes.Buffer).",
}

func runErrDrop(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var call *ast.CallExpr
			var kind string
			switch s := n.(type) {
			case *ast.ExprStmt:
				call, _ = s.X.(*ast.CallExpr)
				kind = "call"
			case *ast.DeferStmt:
				call, kind = s.Call, "deferred call"
				checkAsyncBlankAssigns(pass, s.Call, "deferred closure")
			case *ast.GoStmt:
				call, kind = s.Call, "go call"
				checkAsyncBlankAssigns(pass, s.Call, "go closure")
			default:
				return true
			}
			if call == nil || !returnsError(pass.Pkg.Info, call) || errdropExempt(pass.Pkg.Info, call) {
				return true
			}
			pass.Reportf(call.Pos(),
				"%s discards its error result; handle it, assign to _, or justify with //lint:allow errdrop",
				kind)
			return true
		})
	}
}

// checkAsyncBlankAssigns reports `_ = f()` inside a closure launched
// directly by defer or go. Synchronously, a blank assignment is an
// explicit acknowledgement the reviewer sees in control flow; inside an
// async closure it is the standard evasion of the bare-call rule — the
// error is dropped at a point no caller, test, or reviewer observes —
// so there it is a finding, not an acknowledgement.
func checkAsyncBlankAssigns(pass *Pass, call *ast.CallExpr, kind string) {
	lit, ok := call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || as.Tok != token.ASSIGN || len(as.Rhs) != 1 {
			return true
		}
		for _, l := range as.Lhs {
			if id, ok := l.(*ast.Ident); !ok || id.Name != "_" {
				return true
			}
		}
		inner, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || !returnsError(pass.Pkg.Info, inner) || errdropExempt(pass.Pkg.Info, inner) {
			return true
		}
		pass.Reportf(as.Pos(),
			"assignment to _ inside a %s discards its error result where no caller can see it; handle it or justify with //lint:allow errdrop",
			kind)
		return true
	})
}

// returnsError reports whether the call's results include an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool { return types.Identical(t, errorType) }

func errdropExempt(info *types.Info, call *ast.CallExpr) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false
	}
	full := fn.FullName()
	if errdropExemptFuncs[full] {
		return true
	}
	for _, p := range errdropExemptRecvPrefixes {
		if strings.HasPrefix(full, p) {
			return true
		}
	}
	return false
}
